// Offline/near-line operator dashboard: replay or follow a telemetry JSONL
// stream (`--telemetry-out=` from any example CLI) through the same
// renderer `--live` uses, so the offline view is pixel-identical to the
// in-process one.
//
// Usage:
//   watch_tool telemetry.jsonl                 # animated replay, then exit
//   watch_tool telemetry.jsonl --follow        # tail -f: repaint as a
//                                              #   concurrent run appends
//   watch_tool telemetry.jsonl --no-ansi       # final frame only, no
//                                              #   escape codes (for pipes)
// Options:
//   --delay-ms=25    replay pacing between frames (0 = final frame only)
//   --poll-ms=250    --follow polling interval for new lines
//   --ring=N         sparkline history depth (snapshots, default 256)
//   --width=N        sparkline columns (default 32)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "obs/telemetry/dashboard.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "support/cli.hpp"

namespace {

struct Watcher {
  easched::obs::SnapshotRing ring;
  easched::obs::DashboardOptions options;
  std::uint64_t parsed = 0;
  std::uint64_t skipped = 0;

  explicit Watcher(std::size_t depth) : ring(depth) {}

  /// Returns true when the line carried a snapshot (ring updated).
  bool consume(const std::string& line) {
    if (line.empty()) return false;
    easched::obs::TelemetrySnapshot snap;
    if (!easched::obs::parse_snapshot_jsonl(line, &snap)) {
      ++skipped;
      return false;
    }
    ++parsed;
    ring.push(std::move(snap));
    return true;
  }

  void paint(std::ostream& os) const {
    easched::obs::render_dashboard(os, ring, options);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const bool follow = args.get_bool("follow", false);
  const bool ansi = !args.get_bool("no-ansi", false);
  const int delay_ms = args.get_int("delay-ms", 25);
  const int poll_ms = args.get_int("poll-ms", 250);
  const int ring_depth = args.get_int("ring", 256);
  const int width = args.get_int("width", 32);
  args.warn_unrecognized();

  if (args.positional().size() != 1 || ring_depth <= 0 || width <= 0 ||
      delay_ms < 0 || poll_ms <= 0) {
    std::fprintf(stderr,
                 "watch_tool <telemetry.jsonl> [--follow] [--no-ansi]\n"
                 "           [--delay-ms=25] [--poll-ms=250] [--ring=256] "
                 "[--width=32]\n");
    return 2;
  }
  const std::string path = args.positional().front();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }

  Watcher watcher(static_cast<std::size_t>(ring_depth));
  watcher.options.spark_width = static_cast<std::size_t>(width);
  watcher.options.ansi = ansi;

  // Replay what the file already holds. Animation only makes sense on a
  // repaint-in-place terminal; --no-ansi or --delay-ms=0 renders the final
  // state once.
  const bool animate = ansi && delay_ms > 0 && !follow;
  std::string line;
  while (std::getline(in, line)) {
    if (watcher.consume(line) && animate) {
      watcher.paint(std::cout);
      std::cout.flush();
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }

  if (!follow) {
    if (watcher.parsed == 0) {
      std::fprintf(stderr, "%s: no telemetry snapshots found\n",
                   path.c_str());
      return 1;
    }
    if (!animate) watcher.paint(std::cout);
    if (watcher.skipped > 0) {
      std::fprintf(stderr, "watch_tool: skipped %llu unparseable line(s)\n",
                   static_cast<unsigned long long>(watcher.skipped));
    }
    return 0;
  }

  // Follow mode: the writer appends whole lines, so a failed getline means
  // end-of-data for now — clear the stream state and poll again.
  if (watcher.parsed > 0) {
    watcher.paint(std::cout);
    std::cout.flush();
  }
  for (;;) {
    if (std::getline(in, line)) {
      if (watcher.consume(line)) {
        watcher.paint(std::cout);
        std::cout.flush();
      }
      continue;
    }
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}
