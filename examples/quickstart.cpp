// Quickstart: the smallest complete use of the public API.
//
// Builds a 10-node datacenter, synthesises a half-day workload, runs the
// paper's score-based policy against plain backfilling, and prints the
// table-style reports. Start here to see how the pieces wire together:
//   workload  ->  Datacenter + SchedulerDriver(policy)  ->  RunReport
//
// Usage: quickstart [--policy SB|BF|RD|RR|DBF|SB0|SB1|SB2] [--seed N]
//                    [--trace=out.jsonl] [--trace-format=jsonl|chrome]
//                    [--metrics-out=metrics.json] [--profile]
//                    [--summary-out=run_summary.json] [--attribution]
#include <cstdio>

#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "obs/obs_cli.hpp"
#include "support/cli.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));

  // 1. A small datacenter: 2 fast, 5 medium, 3 slow nodes.
  experiments::RunConfig config;
  config.datacenter.hosts.clear();
  for (int i = 0; i < 2; ++i)
    config.datacenter.hosts.push_back(datacenter::HostSpec::fast());
  for (int i = 0; i < 5; ++i)
    config.datacenter.hosts.push_back(datacenter::HostSpec::medium());
  for (int i = 0; i < 3; ++i)
    config.datacenter.hosts.push_back(datacenter::HostSpec::slow());
  config.datacenter.seed = seed;

  // 2. Half a day of synthetic grid jobs scaled to this small cluster.
  workload::SyntheticConfig wl;
  wl.seed = seed;
  wl.span_seconds = 12 * sim::kHour;
  wl.mean_jobs_per_hour = 6;
  const workload::Workload jobs = workload::generate(wl);
  std::printf("workload: %s\n",
              workload::describe(workload::compute_stats(jobs)).c_str());

  // 3. Run the chosen policy (paper thresholds lambda = 30-90 %).
  config.policy = args.get("policy", "SB");
  config.driver.power.lambda_min = 0.30;
  config.driver.power.lambda_max = 0.90;

  // 4. Optional observability: --trace/--metrics-out/--profile.
  const obs::ObsOptions obs_opts = obs::options_from_cli(args);
  args.warn_unrecognized();
  obs::Observability observability;
  if (obs::wants_observability(obs_opts)) {
    obs::configure(observability, obs_opts);
    config.obs = &observability;
  }

  const auto result = experiments::run_experiment(jobs, std::move(config));
  std::printf("%s\n", result.report.to_string().c_str());
  std::printf("jobs finished: %zu/%zu, events: %llu, simulated %.1f h\n",
              result.jobs_finished, result.jobs_submitted,
              static_cast<unsigned long long>(result.events_dispatched),
              result.end_time_s / sim::kHour);
  obs::finish(observability, obs_opts, &result.report);
  return 0;
}
