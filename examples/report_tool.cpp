// Offline reporting over run_summary.json artifacts (see
// docs/run_summary_schema.md): answers the attribution questions a raw
// metrics snapshot can't — which hosts burned the most energy, which score
// term dominated the scheduler's decisions, how close the runner-up
// candidates were.
//
// Usage:
//   report_tool <run_summary.json> [--top=10]
//
// Prints the energy breakdown (per state / rung / VM class), the top-N
// energy hosts, and the decision rollup (per-term contribution totals,
// dominant-term counts, counterfactual deltas). Sections whose data is
// absent from the artifact (attribution disabled) are skipped.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/attribution/decision_log.hpp"
#include "obs/attribution/summary_diff.hpp"
#include "support/cli.hpp"

namespace {

using easched::obs::FlatSummary;

constexpr double kJPerKwh = 3.6e6;

double num_or(const FlatSummary& s, const std::string& key, double fallback) {
  const auto it = s.numbers.find(key);
  return it != s.numbers.end() ? it->second : fallback;
}

bool has(const FlatSummary& s, const std::string& key) {
  return s.numbers.find(key) != s.numbers.end();
}

void print_energy(const FlatSummary& s, std::size_t top_n) {
  if (!has(s, "energy.total_j")) return;
  const double total = num_or(s, "energy.total_j", 0);
  std::printf("\n-- energy --\n");
  std::printf("total: %.3f kWh\n", total / kJPerKwh);
  const char* states[] = {"off", "boot", "idle", "load"};
  for (const char* st : states) {
    const double j = num_or(s, std::string("energy.") + st + "_j", 0);
    std::printf("  %-5s %10.3f kWh  (%.1f%%)\n", st, j / kJPerKwh,
                total > 0 ? 100.0 * j / total : 0.0);
  }
  const double mgmt = num_or(s, "energy.mgmt_j", 0);
  std::printf("  dom0  %10.3f kWh of the load share\n", mgmt / kJPerKwh);

  // Per-rung split (prefix scan: rung names are dynamic).
  const std::string rung_prefix = "energy.rungs.";
  bool rung_header = false;
  for (const auto& [key, value] : s.numbers) {
    if (key.compare(0, rung_prefix.size(), rung_prefix) != 0) continue;
    if (!rung_header) {
      std::printf("by rung:\n");
      rung_header = true;
    }
    std::printf("  %-14s %10.3f kWh  (%.1f%%)\n",
                key.substr(rung_prefix.size()).c_str(), value / kJPerKwh,
                total > 0 ? 100.0 * value / total : 0.0);
  }

  const std::string class_prefix = "energy.vm_classes.";
  bool class_header = false;
  for (const auto& [key, value] : s.numbers) {
    if (key.compare(0, class_prefix.size(), class_prefix) != 0) continue;
    if (!class_header) {
      std::printf("by VM class (load share):\n");
      class_header = true;
    }
    std::printf("  %-8s %10.3f kWh\n", key.substr(class_prefix.size()).c_str(),
                value / kJPerKwh);
  }

  // Top-N hosts by total joules.
  std::vector<std::pair<std::size_t, double>> hosts;
  for (std::size_t h = 0;; ++h) {
    const std::string key =
        "energy.hosts." + std::to_string(h) + ".total_j";
    if (!has(s, key)) break;
    hosts.emplace_back(h, num_or(s, key, 0));
  }
  if (!hosts.empty()) {
    std::stable_sort(hosts.begin(), hosts.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (hosts.size() > top_n) hosts.resize(top_n);
    std::printf("top-%zu energy hosts:\n", hosts.size());
    for (const auto& [h, j] : hosts) {
      const std::string base = "energy.hosts." + std::to_string(h) + ".";
      std::printf("  host %-4zu %10.3f kWh  (load %.3f, idle %.3f)\n", h,
                  j / kJPerKwh, num_or(s, base + "load_j", 0) / kJPerKwh,
                  num_or(s, base + "idle_j", 0) / kJPerKwh);
    }
  }
}

void print_decisions(const FlatSummary& s) {
  if (!has(s, "decisions.count")) return;
  std::printf("\n-- decisions --\n");
  std::printf(
      "count: %.0f (place %.0f, migrate %.0f, first-fit %.0f)\n",
      num_or(s, "decisions.count", 0), num_or(s, "decisions.places", 0),
      num_or(s, "decisions.migrations", 0),
      num_or(s, "decisions.first_fit", 0));
  std::printf("per-term contribution totals / dominated decisions:\n");
  for (std::size_t i = 0; i < easched::obs::kDecisionTermCount; ++i) {
    const char* term = easched::obs::decision_term_name(i);
    std::printf("  %-6s %14.4f   dominates %5.0f\n", term,
                num_or(s, std::string("decisions.term_totals.") + term, 0),
                num_or(s, std::string("decisions.dominant.") + term, 0));
  }
  std::printf(
      "runner-up: %.0f decisions had one, mean counterfactual delta %.4f\n",
      num_or(s, "decisions.with_runner_up", 0),
      num_or(s, "decisions.mean_delta", 0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const std::size_t top_n =
      static_cast<std::size_t>(args.get_int("top", 10));
  args.warn_unrecognized();
  if (args.positional().empty()) {
    std::fprintf(stderr, "report_tool <run_summary.json> [--top=N]\n");
    return 2;
  }
  const std::string path = args.positional().front();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  FlatSummary summary;
  std::string error;
  if (!obs::flatten_json(buf.str(), summary, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 2;
  }

  const auto schema = summary.strings.find("schema");
  const auto policy = summary.strings.find("policy.name");
  std::printf("%s (%s, policy %s)\n", path.c_str(),
              schema != summary.strings.end() ? schema->second.c_str()
                                              : "no schema",
              policy != summary.strings.end() ? policy->second.c_str()
                                              : "?");
  std::printf("report: %.2f kWh, satisfaction %.2f%%, delay %.2f%%, "
              "%.0f migrations\n",
              num_or(summary, "report.energy_kwh", 0),
              num_or(summary, "report.satisfaction", 0),
              num_or(summary, "report.delay_pct", 0),
              num_or(summary, "report.migrations", 0));

  print_energy(summary, top_n);
  print_decisions(summary);
  return 0;
}
