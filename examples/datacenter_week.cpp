// Full-scale reproduction run: the paper's 100-node datacenter executing a
// week of Grid-like workload under any of the implemented policies.
//
// This is the workhorse the Table II-V benches wrap; as an example it lets
// you reproduce any single cell of those tables from the command line, or
// point the simulator at a real SWF trace (e.g. Grid5000 from the Grid
// Workloads Archive) instead of the synthetic workload.
//
// Usage:
//   datacenter_week [--policy SB] [--lmin 0.3] [--lmax 0.9] [--seed N]
//                   [--swf path/to/trace.swf] [--csv]
//                   [--faults "migrate.fail=0.05,lemon=3:8" | --faults file]
//                   [--trace=out.jsonl] [--trace-format=jsonl|chrome]
//                   [--metrics-out=metrics.json] [--profile]
//                   [--summary-out=run_summary.json] [--attribution]
//                   [--telemetry-out=tl.jsonl] [--prom-out=metrics.prom]
//                   [--alerts="power_w>25000 for=300"] [--live]
#include <cstdio>

#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "faults/fault_plan.hpp"
#include "obs/obs_cli.hpp"
#include "support/cli.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);

  workload::Workload jobs;
  const std::string swf = args.get("swf", "");
  if (!swf.empty()) {
    jobs = workload::read_swf_file(swf);
  } else {
    jobs = workload::evaluation_workload(
        static_cast<std::uint64_t>(args.get_int("seed", 20071001)));
  }
  std::printf("workload: %s\n",
              workload::describe(workload::compute_stats(jobs)).c_str());

  experiments::RunConfig config;
  config.datacenter = experiments::evaluation_datacenter(
      static_cast<std::uint64_t>(args.get_int("seed", 20071001)));
  config.policy = args.get("policy", "SB");
  config.driver.power.lambda_min = args.get_double("lmin", 0.30);
  config.driver.power.lambda_max = args.get_double("lmax", 0.90);
  if (args.has("faults")) {
    config.faults = faults::parse_fault_plan(args.get("faults", ""));
  }
  const bool csv = args.get_bool("csv", false);
  const obs::ObsOptions obs_opts = obs::options_from_cli(args);
  args.warn_unrecognized();
  obs::Observability observability;
  if (obs::wants_observability(obs_opts)) {
    obs::configure(observability, obs_opts);
    config.obs = &observability;
  }

  const auto result = experiments::run_experiment(jobs, std::move(config));
  if (csv) {
    const auto& r = result.report;
    std::printf("policy,lmin,lmax,work,on,cpu_h,kwh,s,delay,migrations\n");
    std::printf("%s,%.2f,%.2f,%.2f,%.2f,%.1f,%.1f,%.2f,%.2f,%llu\n",
                r.policy.c_str(), r.lambda_min, r.lambda_max, r.avg_working,
                r.avg_online, r.cpu_hours, r.energy_kwh, r.satisfaction,
                r.delay_pct, static_cast<unsigned long long>(r.migrations));
  } else {
    std::printf("%s\n", result.report.to_string().c_str());
    std::printf("jobs %zu/%zu, events %llu, simulated %.1f days\n",
                result.jobs_finished, result.jobs_submitted,
                static_cast<unsigned long long>(result.events_dispatched),
                result.end_time_s / sim::kDay);
    const std::string robustness = result.report.robustness_to_string();
    if (!robustness.empty()) std::printf("%s\n", robustness.c_str());
  }
  obs::finish(observability, obs_opts, &result.report);
  return 0;
}
