// Delta-minimises a failing scenario repro bundle (see validate/repro.hpp).
//
// A bundle is written by the experiment runner when the invariant checker
// trips mid-run (RunConfig.validate.repro_path, or EASCHED_VALIDATE=1 via
// scripts/run_validation.sh). This tool replays the bundled scenario with
// ddmin-reduced job subsets until the violation is pinned to a minimal job
// list, then writes the minimised bundle back out:
//
//   shrink_tool --bundle=repro.txt --out=repro.min.txt [--max-tests=N]
//
// Exit codes: 0 minimised, 1 the bundle does not reproduce, 2 bad usage.
// Typically driven through scripts/shrink_repro.sh, which builds first.
#include <cstdio>
#include <string>

#include "experiments/runner.hpp"
#include "faults/fault_plan.hpp"
#include "support/cli.hpp"
#include "validate/repro.hpp"
#include "validate/shrink.hpp"

namespace {

/// Rebuilds the bundled run configuration. Fresh per replay: run_experiment
/// consumes the config (policy instance, injector wiring).
easched::experiments::RunConfig config_for(
    const easched::validate::ReproBundle& bundle) {
  easched::experiments::RunConfig config;
  config.policy = bundle.policy;
  config.datacenter.hosts = easched::validate::specs_for(bundle.host_classes);
  config.datacenter.seed = bundle.dc_seed;
  config.datacenter.inject_failures = bundle.inject_failures;
  config.datacenter.checkpoint.enabled = bundle.checkpoint_enabled;
  config.datacenter.checkpoint.period_s = bundle.checkpoint_period_s;
  config.driver.power.lambda_min = bundle.lambda_min;
  config.driver.power.lambda_max = bundle.lambda_max;
  config.horizon_s = bundle.horizon_s;
  if (!bundle.fault_spec.empty()) {
    config.faults = easched::faults::parse_fault_plan(bundle.fault_spec);
  }
  config.validate.enabled = true;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const std::string bundle_path = args.get("bundle", "");
  const std::string out_path = args.get("out", "");
  validate::ShrinkOptions options;
  options.max_tests =
      static_cast<std::size_t>(args.get_int("max-tests", 2000));
  args.warn_unrecognized();
  if (bundle_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: shrink_tool --bundle=<repro.txt> --out=<min.txt> "
                 "[--max-tests=N]\n");
    return 2;
  }

#if !EASCHED_VALIDATE_ENABLED
  std::fprintf(stderr,
               "warning: built with EASCHED_VALIDATE=OFF — the checker "
               "hooks are compiled out, nothing can reproduce\n");
#endif

  validate::ReproBundle bundle =
      validate::read_repro_bundle_file(bundle_path);
  std::printf("bundle: %s — %zu jobs, violation \"%s\" at t=%.3f\n",
              bundle_path.c_str(), bundle.jobs.size(),
              bundle.violation.c_str(), bundle.violation_t);

  std::size_t replays = 0;
  const auto still_fails = [&](const workload::Workload& jobs) {
    if (jobs.empty()) return false;  // run_experiment requires jobs
    ++replays;
    const auto result = experiments::run_experiment(jobs, config_for(bundle));
    return !result.violations.empty();
  };

  const validate::ShrinkResult result =
      validate::shrink_workload(bundle.jobs, still_fails, options);
  if (!result.reproduced) {
    std::fprintf(stderr,
                 "bundle does not reproduce a violation (was it recorded "
                 "under a different build?)\n");
    return 1;
  }

  std::printf("shrunk %zu -> %zu jobs in %zu replays\n", bundle.jobs.size(),
              result.jobs.size(), replays);
  bundle.jobs = result.jobs;
  validate::write_repro_bundle_file(out_path, bundle);
  std::printf("minimised bundle written to %s\n", out_path.c_str());
  return 0;
}
