// Workload tooling: synthesise a Grid-like trace and write it as SWF, or
// inspect an existing SWF file's aggregate statistics.
//
// Usage:
//   trace_tool generate --out trace.swf [--days 7] [--jobs-per-hour 11.5]
//                       [--seed N]
//   trace_tool inspect --swf trace.swf
#include <cstdio>
#include <fstream>

#include "support/cli.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const std::string mode =
      args.positional().empty() ? "generate" : args.positional().front();

  if (mode == "inspect") {
    const std::string path = args.get("swf", "");
    if (path.empty()) {
      std::fprintf(stderr, "trace_tool inspect --swf <file>\n");
      return 2;
    }
    const auto jobs = workload::read_swf_file(path);
    std::printf("%s\n",
                workload::describe(workload::compute_stats(jobs)).c_str());
    return 0;
  }

  if (mode == "generate") {
    workload::SyntheticConfig wl;
    wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 20071001));
    wl.span_seconds = args.get_double("days", 7) * sim::kDay;
    wl.mean_jobs_per_hour = args.get_double("jobs-per-hour", 11.5);
    const auto jobs = workload::generate(wl);
    std::printf("%s\n",
                workload::describe(workload::compute_stats(jobs)).c_str());

    const std::string out = args.get("out", "");
    if (!out.empty()) {
      std::ofstream f(out);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 2;
      }
      workload::write_swf(f, jobs);
      std::printf("wrote %zu jobs to %s\n", jobs.size(), out.c_str());
    }
    return 0;
  }

  std::fprintf(stderr, "unknown mode '%s' (generate|inspect)\n", mode.c_str());
  return 2;
}
