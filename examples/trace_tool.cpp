// Workload and run-trace tooling: synthesise a Grid-like trace and write
// it as SWF, inspect an existing SWF file's aggregate statistics, or work
// with the observability layer's run traces (obs/trace.hpp).
//
// Usage:
//   trace_tool generate --out trace.swf [--days 7] [--jobs-per-hour 11.5]
//                       [--seed N]
//   trace_tool inspect --swf trace.swf
//   trace_tool summarize --trace run.jsonl     # JSONL run trace tallies
//   trace_tool tail run.jsonl [--kind=migrate] # stream-filter JSONL events
//             [--host=17] [--limit=N]          #   by kind prefix / host id
//   trace_tool validate --trace run.json       # Chrome trace_event check
//   trace_tool diff runA.json runB.json        # run_summary regression diff
//             [--threshold=0.01]               #   global relative threshold
//             [--prefix-thresholds=energy.:0.05,decisions.:0.1]
//
// `diff` exits 0 when every metric matches within its threshold, 1 on any
// delta / missing metric / schema mismatch — the regression verdict the
// ctest gate and refresh_bench.sh rely on.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/attribution/summary_diff.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace {

/// Extracts the string value of `"key":"..."` from one JSONL event line.
/// The trace writer never emits escaped quotes in kind/label values, so a
/// plain scan is exact for the fields we tally.
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto begin = pos + needle.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return {};
  return line.substr(begin, end - begin);
}

/// Per-policy decision / migration / power-cycle tallies of one run trace.
struct PolicyTally {
  std::uint64_t placements = 0;
  std::uint64_t migration_decisions = 0;
  std::uint64_t migrations_done = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t power_ons = 0;
  std::uint64_t power_offs = 0;
  std::uint64_t events = 0;
};

int summarize_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  // Tallies keyed by policy: a JSONL file may concatenate several runs,
  // each opened by a run_begin event labelled with its policy.
  std::map<std::string, PolicyTally> tallies;
  std::string policy = "(no run-begin)";
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::string kind = json_field(line, "kind");
    if (kind == "run-begin") {
      const std::string label = json_field(line, "label");
      policy = label.empty() ? "(unnamed)" : label;
    }
    PolicyTally& t = tallies[policy];
    ++t.events;
    if (kind == "decision") {
      if (json_field(line, "label") == "migrate") {
        ++t.migration_decisions;
      } else {
        ++t.placements;
      }
    } else if (kind == "migrate-done") {
      ++t.migrations_done;
    } else if (kind == "migrate-rollback") {
      ++t.rollbacks;
    } else if (kind == "power-on") {
      ++t.power_ons;
    } else if (kind == "power-off") {
      ++t.power_offs;
    }
  }
  std::printf("%s: %llu events\n", path.c_str(),
              static_cast<unsigned long long>(lines));
  std::printf("%-12s %10s %10s %10s %10s %10s %10s\n", "policy", "place",
              "mig-dec", "mig-done", "rollback", "pwr-on", "pwr-off");
  for (const auto& [name, t] : tallies) {
    std::printf("%-12s %10llu %10llu %10llu %10llu %10llu %10llu\n",
                name.c_str(), static_cast<unsigned long long>(t.placements),
                static_cast<unsigned long long>(t.migration_decisions),
                static_cast<unsigned long long>(t.migrations_done),
                static_cast<unsigned long long>(t.rollbacks),
                static_cast<unsigned long long>(t.power_ons),
                static_cast<unsigned long long>(t.power_offs));
  }
  return 0;
}

/// Extracts the integer value of `"key":N` from one JSONL event line
/// (host ids are unquoted). Returns -1 when the key is absent.
long long json_int_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + needle.size());
}

/// `tail` mode: stream a JSONL run trace, printing only the events whose
/// kind starts with `kind_prefix` (empty = all) and whose host id equals
/// `host` (-1 = all). A grep that understands the trace schema — `alert`
/// matches both alert-fire and alert-resolve, `--host=17` isolates one
/// machine's life story.
int tail_trace(const std::string& path, const std::string& kind_prefix,
               long long host, std::uint64_t limit) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::string line;
  std::uint64_t matched = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!kind_prefix.empty() &&
        json_field(line, "kind").rfind(kind_prefix, 0) != 0) {
      continue;
    }
    if (host >= 0 && json_int_field(line, "host") != host) continue;
    std::printf("%s\n", line.c_str());
    if (limit > 0 && ++matched >= limit) break;
  }
  return 0;
}

int validate_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!easched::obs::validate_chrome_trace(buf.str(), &error)) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("%s: valid Chrome trace_event JSON\n", path.c_str());
  return 0;
}

bool load_flat_summary(const std::string& path,
                       easched::obs::FlatSummary& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!easched::obs::flatten_json(buf.str(), out, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

/// Parses `prefix:threshold` pairs separated by commas, e.g.
/// "energy.:0.05,decisions.:0.1".
bool parse_prefix_thresholds(const std::string& spec,
                             easched::obs::DiffOptions& options) {
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      std::fprintf(stderr,
                   "bad --prefix-thresholds entry '%s' (want prefix:rel)\n",
                   item.c_str());
      return false;
    }
    options.prefix_thresholds.emplace_back(
        item.substr(0, colon), std::stod(item.substr(colon + 1)));
  }
  return true;
}

int diff_summaries_cli(const std::string& path_a, const std::string& path_b,
                       const easched::obs::DiffOptions& options) {
  easched::obs::FlatSummary a;
  easched::obs::FlatSummary b;
  if (!load_flat_summary(path_a, a) || !load_flat_summary(path_b, b)) {
    return 2;
  }
  const easched::obs::DiffResult result =
      easched::obs::diff_summaries(a, b, options);
  std::fputs(easched::obs::format_diff(result, path_a, path_b).c_str(),
             stdout);
  return result.regressed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const std::string mode =
      args.positional().empty() ? "generate" : args.positional().front();

  if (mode == "diff") {
    obs::DiffOptions options;
    options.rel_threshold = args.get_double("threshold", 0.0);
    const std::string prefixes = args.get("prefix-thresholds", "");
    args.warn_unrecognized();
    if (args.positional().size() != 3) {
      std::fprintf(stderr,
                   "trace_tool diff <runA.json> <runB.json> "
                   "[--threshold=REL] [--prefix-thresholds=p:REL,...]\n");
      return 2;
    }
    if (!prefixes.empty() && !parse_prefix_thresholds(prefixes, options)) {
      return 2;
    }
    return diff_summaries_cli(args.positional()[1], args.positional()[2],
                              options);
  }

  if (mode == "tail") {
    // The trace may be a positional arg or --trace=, matching summarize.
    std::string path = args.get("trace", "");
    if (path.empty() && args.positional().size() == 2) {
      path = args.positional()[1];
    }
    const std::string kind = args.get("kind", "");
    const long long host = args.get_int("host", -1);
    const long long limit = args.get_int("limit", 0);
    args.warn_unrecognized();
    if (path.empty() || path == "true" || limit < 0) {
      std::fprintf(stderr,
                   "trace_tool tail <run.jsonl> [--kind=PREFIX] "
                   "[--host=ID] [--limit=N]\n");
      return 2;
    }
    return tail_trace(path, kind, host,
                      static_cast<std::uint64_t>(limit));
  }

  if (mode == "summarize" || mode == "validate") {
    const std::string path = args.get("trace", "");
    args.warn_unrecognized();
    if (path.empty() || path == "true") {
      std::fprintf(stderr, "trace_tool %s --trace <file>\n", mode.c_str());
      return 2;
    }
    return mode == "summarize" ? summarize_trace(path) : validate_trace(path);
  }

  if (mode == "inspect") {
    const std::string path = args.get("swf", "");
    if (path.empty()) {
      std::fprintf(stderr, "trace_tool inspect --swf <file>\n");
      return 2;
    }
    args.warn_unrecognized();
    const auto jobs = workload::read_swf_file(path);
    std::printf("%s\n",
                workload::describe(workload::compute_stats(jobs)).c_str());
    return 0;
  }

  if (mode == "generate") {
    workload::SyntheticConfig wl;
    wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 20071001));
    wl.span_seconds = args.get_double("days", 7) * sim::kDay;
    wl.mean_jobs_per_hour = args.get_double("jobs-per-hour", 11.5);
    const std::string out_path = args.get("out", "");
    args.warn_unrecognized();
    const auto jobs = workload::generate(wl);
    std::printf("%s\n",
                workload::describe(workload::compute_stats(jobs)).c_str());

    const std::string& out = out_path;
    if (!out.empty()) {
      std::ofstream f(out);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 2;
      }
      workload::write_swf(f, jobs);
      std::printf("wrote %zu jobs to %s\n", jobs.size(), out.c_str());
    }
    return 0;
  }

  std::fprintf(
      stderr,
      "unknown mode '%s' (generate|inspect|summarize|tail|validate|diff)\n",
      mode.c_str());
  return 2;
}
