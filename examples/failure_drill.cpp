// Reliability extension demo (paper sections III-A.6 and III-C): a fleet
// where some nodes fail, with checkpointing and the Pfault penalty.
//
// Half the datacenter is flaky (reliability 0.95-0.99); failures strike
// while nodes are up and their VMs bounce back to the queue, recovering
// from the last checkpoint. Run it twice to see the penalty matter:
//   failure_drill                 -> SB-full (Pfault steers VMs to the
//                                   reliable nodes, fewer restarts)
//   failure_drill --policy SB     -> reliability-blind score policy
//
// Operation-level chaos (fault-injection layer) is scripted with --faults:
//   failure_drill --faults="migrate.fail=0.05,create.hang=0.01,lemon=3:8"
// or --faults=<file> with one key=value pair per line. Add --fault-trace to
// dump the deterministic fault event trace; --trace=<path> (with
// --trace-format=, --metrics-out=, --profile) writes the structured
// observability outputs instead.
//
// The resilience control plane (solver watchdog, degradation ladder,
// admission control, per-host circuit breakers) is armed with --resilience:
//   failure_drill --resilience=on
//   failure_drill --resilience="budget=64,max_pending=48,breaker_threshold=2"
//                 --faults="create.fail=0.2,lemon=3:8"
// The report then grows a `resilience:` line with breach/ladder/shed/breaker
// counts (see docs/architecture.md, "Resilience control plane").
//
// Live telemetry rides the same observability flags: --telemetry-out=,
// --prom-out=, --alerts= and --live (in-terminal dashboard) — see
// docs/telemetry.md. A drill under --alerts="breaker_open_rate>0.1" is the
// quickest way to watch the alert engine fire.
#include <cstdio>

#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "faults/fault_plan.hpp"
#include "obs/obs_cli.hpp"
#include "resilience/resilience.hpp"
#include "support/cli.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 99));

  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(5, 12, 8);
  for (std::size_t i = 0; i < config.datacenter.hosts.size(); ++i) {
    if (i % 2 == 1) {
      config.datacenter.hosts[i].reliability = 0.95 + 0.04 * (i % 3) / 2.0;
    }
  }
  config.datacenter.inject_failures = true;
  config.datacenter.mean_repair_s = 2 * sim::kHour;
  config.datacenter.checkpoint.enabled = true;
  config.datacenter.checkpoint.period_s = 1800;
  config.datacenter.seed = seed;

  workload::SyntheticConfig wl;
  wl.seed = seed;
  wl.span_seconds = 2 * sim::kDay;
  wl.mean_jobs_per_hour = 4;
  wl.max_fault_tolerance = 0.02;
  const auto jobs = workload::generate(wl);

  config.policy = args.get("policy", "SB-full");
  // A horizon guards against a pathological stall if the fleet melts down.
  config.horizon_s = 30 * sim::kDay;

  if (args.has("faults")) {
    config.faults = faults::parse_fault_plan(args.get("faults", ""));
  }
  if (args.has("resilience")) {
    config.resilience =
        resilience::parse_resilience_spec(args.get("resilience", "on"));
  }
  const bool dump_trace = args.get_bool("fault-trace", false);
  const obs::ObsOptions obs_opts = obs::options_from_cli(args);
  args.warn_unrecognized();
  obs::Observability observability;
  // With the control plane armed, ride the energy ledger along so the
  // degraded-rung energy split below has data (null-cost otherwise).
  const bool rung_energy = args.has("resilience");
  if (rung_energy || obs::wants_observability(obs_opts)) {
    obs::configure(observability, obs_opts);
    if (rung_energy) observability.ledger.enable();
    config.obs = &observability;
  }

  const auto result = experiments::run_experiment(jobs, std::move(config));
  std::printf("%s\n", result.report.to_string().c_str());
  std::printf("failures: %llu, jobs finished %zu/%zu\n",
              static_cast<unsigned long long>(result.report.failures),
              result.jobs_finished, result.jobs_submitted);
  const std::string robustness = result.report.robustness_to_string();
  if (!robustness.empty()) std::printf("%s\n", robustness.c_str());
  const std::string resil = result.report.resilience_to_string();
  if (!resil.empty()) std::printf("%s\n", resil.c_str());
  if (dump_trace) {
    for (const auto& line : result.fault_trace) {
      std::printf("%s\n", line.c_str());
    }
  }
  if (rung_energy && observability.ledger.total_j() > 0) {
    // Resilience x attribution: how many of the run's joules were burned
    // while the ladder had degraded the solver.
    constexpr double kJPerKwh = 3.6e6;
    const auto& rungs = observability.ledger.rung_j();
    const double full_j = rungs.empty() ? 0.0 : rungs[0];
    double degraded_j = 0;
    for (std::size_t r = 1; r < rungs.size(); ++r) degraded_j += rungs[r];
    const double total_j = observability.ledger.total_j();
    std::printf(
        "attribution: energy full-solver %.2f kWh (%.1f%%), degraded rungs "
        "%.2f kWh (%.1f%%)\n",
        full_j / kJPerKwh, 100.0 * full_j / total_j, degraded_j / kJPerKwh,
        100.0 * degraded_j / total_j);
  }
  obs::finish(observability, obs_opts, &result.report);
  return 0;
}
