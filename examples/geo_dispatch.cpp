// Multi-datacenter dispatch example: three sites across timezones, jobs
// routed by a chosen dispatch policy, with per-site cost/carbon accounting.
//
// Usage: geo_dispatch [--dispatch round-robin|cheapest-energy|greenest|
//                      least-loaded] [--days 2] [--seed N]
#include <cstdio>

#include "experiments/setup.hpp"
#include "geo/dispatcher.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);

  geo::GeoConfig config;
  const struct {
    const char* name;
    double tz, price, carbon;
  } specs[] = {{"eu-central", 1.0, 0.14, 320},
               {"us-east", -5.0, 0.10, 420},
               {"ap-east", 8.0, 0.12, 520}};
  for (const auto& s : specs) {
    geo::SiteConfig site;
    site.name = s.name;
    site.datacenter.hosts = experiments::evaluation_hosts(4, 12, 8);
    site.datacenter.seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
    site.policy = "SB";
    site.energy.timezone_offset_h = s.tz;
    site.energy.base_price_eur_kwh = s.price;
    site.energy.base_carbon_g_kwh = s.carbon;
    config.sites.push_back(std::move(site));
  }

  const std::string name = args.get("dispatch", "cheapest-energy");
  if (name == "round-robin") config.dispatch = geo::DispatchPolicy::kRoundRobin;
  else if (name == "cheapest-energy")
    config.dispatch = geo::DispatchPolicy::kCheapestEnergy;
  else if (name == "greenest") config.dispatch = geo::DispatchPolicy::kGreenest;
  else if (name == "least-loaded")
    config.dispatch = geo::DispatchPolicy::kLeastLoaded;
  else {
    std::fprintf(stderr, "unknown dispatch policy '%s'\n", name.c_str());
    return 2;
  }
  config.horizon_s = 60 * sim::kDay;

  workload::SyntheticConfig wl;
  wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  wl.span_seconds = args.get_double("days", 2) * sim::kDay;
  args.warn_unrecognized();
  const auto jobs = workload::generate(wl);
  std::printf("dispatch policy: %s, %zu jobs\n\n",
              geo::to_string(config.dispatch), jobs.size());

  const auto result = geo::run_geo(jobs, config);

  support::TextTable table;
  table.header({"site", "jobs", "energy (kWh)", "cost (EUR)", "carbon (kg)",
                "S (%)"});
  for (const auto& site : result.sites) {
    table.add_row({site.name, std::to_string(site.jobs_dispatched),
                   support::TextTable::num(site.report.energy_kwh, 1),
                   support::TextTable::num(site.energy_cost_eur, 2),
                   support::TextTable::num(site.carbon_kg, 1),
                   support::TextTable::num(site.report.satisfaction, 1)});
  }
  table.add_row({"TOTAL", "",
                 support::TextTable::num(result.total_energy_kwh, 1),
                 support::TextTable::num(result.total_cost_eur, 2),
                 support::TextTable::num(result.total_carbon_kg, 1),
                 support::TextTable::num(result.mean_satisfaction, 1)});
  std::printf("%s", table.render().c_str());
  return 0;
}
