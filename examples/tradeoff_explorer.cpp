// Explore the power-vs-SLA trade-off of section V-A interactively: run the
// score-based policy over a grid of (lambda_min, lambda_max) turn-on/off
// thresholds and print both surfaces side by side (kWh and S %).
//
// A coarser, faster cousin of the Figure 2/3 benches; handy to see how the
// trade-off moves when you change the workload intensity.
//
// Usage: tradeoff_explorer [--days 2] [--jobs-per-hour 11.5] [--seed N]
//                          [--steps 4] [--policy SB]
#include <cstdio>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "experiments/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);

  workload::SyntheticConfig wl;
  wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 20071001));
  wl.span_seconds = args.get_double("days", 2) * sim::kDay;
  wl.mean_jobs_per_hour = args.get_double("jobs-per-hour", 11.5);
  const auto jobs = workload::generate(wl);
  std::printf("workload: %s\n\n",
              workload::describe(workload::compute_stats(jobs)).c_str());

  const int steps = static_cast<int>(args.get_int("steps", 4));
  const std::string policy = args.get("policy", "SB");
  args.warn_unrecognized();
  std::vector<double> lmins, lmaxs;
  for (int i = 0; i < steps; ++i) {
    lmins.push_back(0.10 + 0.80 * i / (steps - 1));  // 10 % .. 90 %
    lmaxs.push_back(0.20 + 0.80 * i / (steps - 1));  // 20 % .. 100 %
  }

  support::TextTable power, sla;
  std::vector<std::string> head{"lmin\\lmax"};
  for (double lx : lmaxs) head.push_back(support::TextTable::num(lx * 100, 0));
  power.header(head);
  sla.header(head);

  // Grid points are independent runs: fan them out across
  // EASCHED_SWEEP_THREADS workers. Submission-order results keep both
  // tables byte-identical for any thread count.
  experiments::SweepRunner sweep;
  std::vector<experiments::SweepTask> tasks;
  for (double ln : lmins) {
    for (double lx : lmaxs) {
      if (lx <= ln) continue;  // infeasible: lambda_max must exceed lambda_min
      tasks.push_back({&jobs, [seed = wl.seed, policy, ln, lx] {
                         experiments::RunConfig config;
                         config.datacenter =
                             experiments::evaluation_datacenter(seed);
                         config.policy = policy;
                         config.driver.power.lambda_min = ln;
                         config.driver.power.lambda_max = lx;
                         return config;
                       }});
    }
  }
  const auto results = sweep.run(std::move(tasks));

  std::size_t next = 0;
  for (double ln : lmins) {
    std::vector<std::string> prow{support::TextTable::num(ln * 100, 0)};
    std::vector<std::string> srow = prow;
    for (double lx : lmaxs) {
      if (lx <= ln) {
        prow.push_back("-");
        srow.push_back("-");
        continue;
      }
      const auto& result = results[next++];
      prow.push_back(support::TextTable::num(result.report.energy_kwh, 0));
      srow.push_back(support::TextTable::num(result.report.satisfaction, 1));
    }
    power.add_row(prow);
    sla.add_row(srow);
  }

  std::printf("Power consumption (kWh):\n%s\n", power.render().c_str());
  std::printf("Client satisfaction (%%):\n%s", sla.render().c_str());
  return 0;
}
