// Provider-economics example: run one policy and print the money view —
// revenue (satisfaction-discounted), energy bill, SLA breach penalties and
// profit — plus a power time-series CSV if requested.
//
// Usage: provider_economics [--policy SB] [--lmin 0.4] [--price 0.12]
//                           [--revenue 0.08] [--series power.csv]
#include <cstdio>
#include <fstream>

#include "experiments/setup.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/report.hpp"
#include "metrics/series.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);

  const auto jobs = workload::evaluation_workload(
      static_cast<std::uint64_t>(args.get_int("seed", 20071001)));

  sim::Simulator simulator;
  auto dc_config = experiments::evaluation_datacenter(
      static_cast<std::uint64_t>(args.get_int("seed", 20071001)));
  metrics::Recorder recorder(dc_config.hosts.size());
  datacenter::Datacenter dc(simulator, dc_config, recorder);

  auto policy = experiments::make_policy(args.get("policy", "SB"));
  sched::DriverConfig driver_config;
  driver_config.power.lambda_min = args.get_double("lmin", 0.40);
  driver_config.power.lambda_max = args.get_double("lmax", 0.90);
  sched::SchedulerDriver driver(simulator, dc, *policy, driver_config);

  // Optional fleet-power time series (15 min samples).
  std::unique_ptr<metrics::SeriesRecorder> series;
  const std::string series_path = args.get("series", "");
  if (!series_path.empty()) {
    series = std::make_unique<metrics::SeriesRecorder>(simulator, 900.0);
    series->add_channel("fleet_watts",
                        [&] { return recorder.watts.total_current(); });
    series->add_channel("working",
                        [&] { return recorder.working.current(); });
    series->add_channel("online", [&] { return recorder.online.current(); });
  }

  driver.submit_workload(jobs);
  driver.on_all_done = [&simulator] { simulator.stop(); };
  simulator.run();

  metrics::CostModelConfig pricing;
  pricing.energy_price_eur_kwh = args.get_double("price", 0.12);
  pricing.revenue_eur_core_hour = args.get_double("revenue", 0.08);
  args.warn_unrecognized();
  const auto cost = metrics::price_run(recorder, simulator.now(), pricing);
  const auto report = metrics::make_report(
      recorder, simulator.now(), policy->name(),
      driver_config.power.lambda_min, driver_config.power.lambda_max);

  std::printf("%s\n", report.to_string().c_str());
  std::printf("revenue:    %8.2f EUR\n", cost.revenue_eur);
  std::printf("energy:     %8.2f EUR (%.1f kWh @ %.2f)\n",
              cost.energy_cost_eur, report.energy_kwh,
              pricing.energy_price_eur_kwh);
  std::printf("penalties:  %8.2f EUR (%zu breached jobs)\n",
              cost.breach_penalties_eur, cost.breached_jobs);
  std::printf("profit:     %8.2f EUR\n", cost.profit_eur());

  if (series) {
    std::ofstream out(series_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", series_path.c_str());
      return 2;
    }
    series->write_csv(out);
    std::printf("wrote %zu samples to %s\n", series->num_samples(),
                series_path.c_str());
  }
  return 0;
}
