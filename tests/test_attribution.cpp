// Energy & decision attribution tests: ledger integration arithmetic and
// CPU-share splitting, end-to-end conservation against RunReport energy,
// byte-determinism of run_summary.json across solver thread counts,
// decision-log capture (score terms, runner-up counterfactuals), the
// summary diff engine, and the Ppwr-ablation regression the diff must
// catch.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "core/score_based_policy.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "obs/attribution/run_summary.hpp"
#include "obs/attribution/summary_diff.hpp"
#include "obs/obs.hpp"
#include "workload/synthetic.hpp"

namespace easched {
namespace {

constexpr double kJPerKwh = 3.6e6;

// ---- fixtures --------------------------------------------------------------

workload::Workload small_workload(std::uint64_t seed = 77) {
  workload::SyntheticConfig c;
  c.seed = seed;
  c.span_seconds = 1.0 * sim::kDay;
  c.mean_jobs_per_hour = 8;
  return workload::generate(c);
}

experiments::RunConfig attribution_config(int threads,
                                          core::ScoreBasedConfig sb =
                                              core::ScoreBasedConfig::sb()) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(3, 8, 4);
  config.datacenter.seed = 5;
  sb.solver_threads = threads;
  config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(sb);
  config.horizon_s = 90 * sim::kDay;
  return config;
}

struct AttributedRun {
  obs::Observability obs;
  experiments::RunResult result;
};

std::unique_ptr<AttributedRun> run_attributed(
    int threads,
    core::ScoreBasedConfig sb = core::ScoreBasedConfig::sb()) {
  auto run = std::make_unique<AttributedRun>();
  run->obs.ledger.enable();
  run->obs.decisions.enable();
  auto config = attribution_config(threads, std::move(sb));
  config.obs = &run->obs;
  run->result =
      experiments::run_experiment(small_workload(), std::move(config));
  return run;
}

std::string summary_of(const AttributedRun& run) {
  std::ostringstream os;
  obs::write_run_summary(os, run.result.report, &run.obs);
  return os.str();
}

// ---- EnergyLedger unit tests -----------------------------------------------

TEST(EnergyLedger, IntegratesStateBucketsPiecewise) {
  obs::EnergyLedger ledger;
  ledger.enable();

  obs::EnergySample off;
  off.off_w = 10;
  ledger.set_host_power(0, 0, off);  // first sample only stamps t=0

  obs::EnergySample boot;
  boot.boot_w = 100;
  ledger.set_host_power(5, 0, boot);  // 5 s off @ 10 W = 50 J

  obs::EnergySample on;
  on.idle_w = 60;
  on.load_w = 40;
  on.used_cpu_pct = 100;
  on.shares.push_back({/*vm=*/3, /*alloc_pct=*/100});
  ledger.set_host_power(15, 0, on);  // 10 s boot @ 100 W = 1000 J

  ledger.finish(25);  // 10 s on: idle 600 J + load 400 J

  ASSERT_EQ(ledger.hosts().size(), 1u);
  const obs::HostEnergy& h = ledger.hosts()[0];
  EXPECT_DOUBLE_EQ(h.off_j, 50.0);
  EXPECT_DOUBLE_EQ(h.boot_j, 1000.0);
  EXPECT_DOUBLE_EQ(h.idle_j, 600.0);
  EXPECT_DOUBLE_EQ(h.load_j, 400.0);
  EXPECT_DOUBLE_EQ(h.total_j(), 2050.0);
  EXPECT_DOUBLE_EQ(ledger.total_j(), 2050.0);
  // The single running VM owned the whole load share.
  ASSERT_GT(ledger.vm_j().size(), 3u);
  EXPECT_DOUBLE_EQ(ledger.vm_j()[3], 400.0);
  EXPECT_DOUBLE_EQ(ledger.mgmt_j(), 0.0);
}

TEST(EnergyLedger, SplitsLoadByAllocShareWithMgmtRemainder) {
  obs::EnergyLedger ledger;
  ledger.enable();

  obs::EnergySample on;
  on.idle_w = 0;
  on.load_w = 100;
  on.used_cpu_pct = 200;  // 80 + 70 guest + 50 dom0 management
  on.shares.push_back({1, 80});
  on.shares.push_back({2, 70});
  ledger.set_host_power(0, 0, on);
  ledger.finish(10);  // 1000 J of load

  EXPECT_DOUBLE_EQ(ledger.vm_j()[1], 1000.0 * 80 / 200);
  EXPECT_DOUBLE_EQ(ledger.vm_j()[2], 1000.0 * 70 / 200);
  EXPECT_DOUBLE_EQ(ledger.mgmt_j(), 1000.0 * 50 / 200);
  EXPECT_DOUBLE_EQ(ledger.load_j(), 1000.0);
}

TEST(EnergyLedger, AttributesJoulesToTheActiveRung) {
  obs::EnergyLedger ledger;
  ledger.enable();

  obs::EnergySample on;
  on.idle_w = 50;
  ledger.set_host_power(0, 0, on);
  ledger.set_rung(10, 2);   // 10 s at rung 0 (full): 500 J
  ledger.set_rung(30, 0);   // 20 s at rung 2 (first-fit): 1000 J
  ledger.finish(40);        // 10 s back at rung 0: 500 J

  ASSERT_EQ(ledger.rung_j().size(), 3u);
  EXPECT_DOUBLE_EQ(ledger.rung_j()[0], 1000.0);
  EXPECT_DOUBLE_EQ(ledger.rung_j()[1], 0.0);
  EXPECT_DOUBLE_EQ(ledger.rung_j()[2], 1000.0);
}

TEST(EnergyLedger, TopHostsRanksDescendingWithStableTies) {
  obs::EnergyLedger ledger;
  ledger.enable();
  for (std::size_t h = 0; h < 4; ++h) {
    obs::EnergySample s;
    s.idle_w = (h == 2) ? 100.0 : 10.0;  // host 2 burns the most
    ledger.set_host_power(0, h, s);
  }
  ledger.finish(10);

  const auto top = ledger.top_hosts(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_DOUBLE_EQ(top[0].second, 1000.0);
  EXPECT_EQ(top[1].first, 0u);  // tie between 0/1/3 broken by lower id
}

TEST(EnergyLedger, VmClassMapping) {
  EXPECT_STREQ(obs::vm_class_of(50), "1core");
  EXPECT_STREQ(obs::vm_class_of(100), "1core");
  EXPECT_STREQ(obs::vm_class_of(150), "2core");
  EXPECT_STREQ(obs::vm_class_of(400), "4core");
  EXPECT_STREQ(obs::vm_class_of(500), ">4core");
}

// ---- DecisionLog unit tests ------------------------------------------------

TEST(DecisionLog, SummarizesKindsTermsAndDeltas) {
  obs::DecisionLog log;
  log.enable();

  obs::DecisionRecord place;
  place.kind = obs::DecisionRecord::Kind::kPlace;
  place.terms = {1, 0, 0, 0, -5, 0, 0};  // pwr dominates by magnitude
  place.total = -4;
  place.runner_up = 7;
  place.runner_up_total = -1;
  place.delta = 3;
  log.add(place);

  obs::DecisionRecord ff;
  ff.kind = obs::DecisionRecord::Kind::kFirstFit;
  log.add(ff);  // all-zero terms: dominates nothing

  const auto s = log.summarize();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.places, 1u);
  EXPECT_EQ(s.first_fit, 1u);
  EXPECT_DOUBLE_EQ(s.term_totals[4], -5.0);  // pwr
  EXPECT_EQ(s.dominant_counts[4], 1u);
  EXPECT_EQ(s.with_runner_up, 1u);
  EXPECT_DOUBLE_EQ(s.mean_delta(), 3.0);
  EXPECT_EQ(ff.dominant_term(), obs::kDecisionTermCount);
}

// ---- end-to-end attribution ------------------------------------------------

TEST(Attribution, LedgerConservesRunReportEnergy) {
  const auto run = run_attributed(1);
  const double ledger_kwh = run->obs.ledger.total_j() / kJPerKwh;
  const double report_kwh = run->result.report.energy_kwh;
  ASSERT_GT(report_kwh, 0.0);
  // Acceptance criterion: per-host joules sum to the aggregate within
  // 0.1%. (Identical samples at identical times — in practice exact up to
  // summation order.)
  EXPECT_NEAR(ledger_kwh, report_kwh, report_kwh * 1e-3);

  // The per-VM + mgmt split partitions the load joules exactly.
  double vm_sum = 0;
  for (double j : run->obs.ledger.vm_j()) vm_sum += j;
  EXPECT_NEAR(vm_sum + run->obs.ledger.mgmt_j(), run->obs.ledger.load_j(),
              run->obs.ledger.load_j() * 1e-9 + 1e-6);
}

TEST(Attribution, DoesNotPerturbTheSimulation) {
  const auto attributed = run_attributed(1);
  const auto baseline =
      experiments::run_experiment(small_workload(), attribution_config(1));
  EXPECT_EQ(attributed->result.events_dispatched,
            baseline.events_dispatched);
  EXPECT_DOUBLE_EQ(attributed->result.report.energy_kwh,
                   baseline.report.energy_kwh);
  EXPECT_EQ(attributed->result.report.migrations,
            baseline.report.migrations);
}

TEST(Attribution, CapturesDecisionsWithRunnerUpCounterfactuals) {
  const auto run = run_attributed(1);
  const auto& records = run->obs.decisions.records();
  ASSERT_FALSE(records.empty());
  std::size_t with_runner_up = 0;
  for (const auto& r : records) {
    // Winner's terms sum to its total (left-to-right, matching
    // ScoreBreakdown's construction).
    double sum = 0;
    for (double t : r.terms) sum += t;
    EXPECT_DOUBLE_EQ(sum, r.total);
    if (r.runner_up >= 0) {
      ++with_runner_up;
      EXPECT_NE(r.runner_up, r.host);
      // The solver picked the argmin, so the runner-up can't beat it.
      EXPECT_GE(r.delta, 0.0);
      EXPECT_DOUBLE_EQ(r.delta, r.runner_up_total - r.total);
    }
  }
  EXPECT_GT(with_runner_up, 0u);
}

TEST(Attribution, RunSummaryIsByteIdenticalAcrossSolverThreads) {
  const auto t1 = run_attributed(1);
  const auto t4 = run_attributed(4);
  const std::string s1 = summary_of(*t1);
  const std::string s4 = summary_of(*t4);
  ASSERT_FALSE(s1.empty());
  EXPECT_EQ(s1, s4);  // acceptance criterion: byte-identical at 1 vs N
}

TEST(Attribution, RunSummaryRoundTripsThroughTheFlattener) {
  const auto run = run_attributed(1);
  const std::string doc = summary_of(*run);

  obs::FlatSummary flat;
  std::string error;
  ASSERT_TRUE(obs::flatten_json(doc, flat, &error)) << error;
  EXPECT_EQ(flat.strings.at("schema"), obs::kRunSummarySchema);
  EXPECT_EQ(flat.strings.at("policy.name"), run->result.report.policy);
  // %.9g keeps 9 significant digits, so compare relatively, not absolutely.
  const double total = run->obs.ledger.total_j();
  EXPECT_NEAR(flat.numbers.at("energy.total_j"), total, 1e-8 * total);
  EXPECT_GT(flat.numbers.at("decisions.count"), 0.0);
  // Per-host rows surfaced with dotted array paths.
  EXPECT_TRUE(flat.numbers.count("energy.hosts.0.total_j") == 1);
  // Everything ran at full solver quality: rung 0 holds all the joules.
  EXPECT_NEAR(flat.numbers.at("energy.rungs.full"),
              flat.numbers.at("energy.total_j"),
              1e-8 * flat.numbers.at("energy.total_j"));
}

// ---- diff engine -----------------------------------------------------------

TEST(SummaryDiff, SameRunProducesZeroDeltas) {
  const auto a = run_attributed(1);
  const auto b = run_attributed(1);
  obs::FlatSummary fa, fb;
  ASSERT_TRUE(obs::flatten_json(summary_of(*a), fa));
  ASSERT_TRUE(obs::flatten_json(summary_of(*b), fb));
  const auto result = obs::diff_summaries(fa, fb, {});
  EXPECT_FALSE(result.regressed());  // acceptance: same seed/config -> 0
  EXPECT_TRUE(result.deltas.empty());
}

TEST(SummaryDiff, FlagsMissingKeysAndSchemaMismatch) {
  obs::FlatSummary a, b;
  ASSERT_TRUE(obs::flatten_json(
      R"({"schema":"easched.run_summary/1","x":1,"gone":2})", a));
  ASSERT_TRUE(obs::flatten_json(
      R"({"schema":"easched.run_summary/2","x":1})", b));
  const auto result = obs::diff_summaries(a, b, {});
  EXPECT_TRUE(result.schema_mismatch);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_EQ(result.deltas[0].key, "gone");
  EXPECT_TRUE(result.deltas[0].missing_b);
  EXPECT_TRUE(result.regressed());
}

TEST(SummaryDiff, AppliesGlobalAndPrefixThresholds) {
  obs::FlatSummary a, b;
  ASSERT_TRUE(obs::flatten_json(
      R"({"schema":"s","energy":{"total":100},"sla":{"delay":10}})", a));
  ASSERT_TRUE(obs::flatten_json(
      R"({"schema":"s","energy":{"total":104},"sla":{"delay":10.2}})", b));

  obs::DiffOptions options;
  options.rel_threshold = 0.05;  // both within 5%
  EXPECT_FALSE(obs::diff_summaries(a, b, options).regressed());

  // Tighten just the energy family: 4% delta now regresses, sla survives.
  options.prefix_thresholds.emplace_back("energy.", 0.01);
  const auto result = obs::diff_summaries(a, b, options);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_EQ(result.deltas[0].key, "energy.total");
}

TEST(SummaryDiff, CatchesPpwrAblationRegression) {
  // Acceptance criterion: a run with the Ppwr term disabled consolidates
  // worse; diffing against the baseline must exit nonzero and name the
  // regressed energy metrics.
  const auto baseline = run_attributed(1);
  core::ScoreBasedConfig no_pwr = core::ScoreBasedConfig::sb();
  no_pwr.params.use_pwr = false;
  no_pwr.label = "SB-noPwr";
  const auto ablated = run_attributed(1, no_pwr);

  obs::FlatSummary fa, fb;
  ASSERT_TRUE(obs::flatten_json(summary_of(*baseline), fa));
  ASSERT_TRUE(obs::flatten_json(summary_of(*ablated), fb));
  obs::DiffOptions options;
  options.rel_threshold = 0.01;
  const auto result = obs::diff_summaries(fa, fb, options);
  EXPECT_TRUE(result.regressed());
  bool energy_named = false;
  for (const auto& d : result.deltas) {
    if (d.key.rfind("energy.", 0) == 0 || d.key == "report.energy_kwh") {
      energy_named = true;
    }
  }
  EXPECT_TRUE(energy_named)
      << format_diff(result, "baseline", "no-pwr");
}

TEST(SummaryDiff, FormatNamesTheRegressedMetrics) {
  obs::FlatSummary a, b;
  ASSERT_TRUE(obs::flatten_json(R"({"schema":"s","m":1})", a));
  ASSERT_TRUE(obs::flatten_json(R"({"schema":"s","m":2})", b));
  const auto result = obs::diff_summaries(a, b, {});
  const std::string text = obs::format_diff(result, "A", "B");
  EXPECT_NE(text.find("m: 1 -> 2"), std::string::npos);
}

}  // namespace
}  // namespace easched
