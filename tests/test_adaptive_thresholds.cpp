// Tests for the dynamic-threshold controller (section V-A future work).
#include <gtest/gtest.h>

#include "sched/adaptive_thresholds.hpp"

namespace easched::sched {
namespace {

AdaptiveThresholdConfig config() {
  AdaptiveThresholdConfig c;
  c.enabled = true;
  c.target_satisfaction = 98.0;
  c.step = 0.05;
  return c;
}

PowerControllerConfig initial(double lmin = 0.30, double lmax = 0.90) {
  PowerControllerConfig p;
  p.lambda_min = lmin;
  p.lambda_max = lmax;
  return p;
}

TEST(AdaptiveThresholds, BacksOffWhenSatisfactionLow) {
  AdaptiveThresholds at(config(), initial());
  const auto next = at.adjust(90.0, 10);
  EXPECT_NEAR(next.lambda_min, 0.25, 1e-9);
  EXPECT_NEAR(next.lambda_max, 0.85, 1e-9);
}

TEST(AdaptiveThresholds, ProbesWhenFullySatisfied) {
  AdaptiveThresholds at(config(), initial());
  const auto next = at.adjust(100.0, 10);
  EXPECT_NEAR(next.lambda_min, 0.35, 1e-9);
  EXPECT_NEAR(next.lambda_max, 0.925, 1e-9);
}

TEST(AdaptiveThresholds, SatisfiedButNotPerfectRaisesOnlyLambdaMin) {
  AdaptiveThresholds at(config(), initial());
  const auto next = at.adjust(99.0, 10);
  EXPECT_NEAR(next.lambda_min, 0.35, 1e-9);
  EXPECT_NEAR(next.lambda_max, 0.90, 1e-9);
}

TEST(AdaptiveThresholds, IdleWindowCarriesNoSignal) {
  AdaptiveThresholds at(config(), initial());
  const auto next = at.adjust(0.0, 0);
  EXPECT_NEAR(next.lambda_min, 0.30, 1e-9);
  EXPECT_NEAR(next.lambda_max, 0.90, 1e-9);
}

TEST(AdaptiveThresholds, ClampsToCeilings) {
  AdaptiveThresholds at(config(), initial(0.58, 0.97));
  for (int i = 0; i < 20; ++i) at.adjust(100.0, 5);
  EXPECT_LE(at.current().lambda_min, config().lambda_min_ceil + 1e-9);
  EXPECT_LE(at.current().lambda_max, config().lambda_max_ceil + 1e-9);
}

TEST(AdaptiveThresholds, ClampsToFloors) {
  AdaptiveThresholds at(config(), initial(0.12, 0.52));
  for (int i = 0; i < 20; ++i) at.adjust(50.0, 5);
  EXPECT_GE(at.current().lambda_min, config().lambda_min_floor - 1e-9);
  EXPECT_GE(at.current().lambda_max, config().lambda_max_floor - 1e-9);
}

TEST(AdaptiveThresholds, MaintainsGap) {
  auto c = config();
  c.gap = 0.30;
  AdaptiveThresholds at(c, initial(0.45, 0.60));
  for (int i = 0; i < 30; ++i) at.adjust(99.0, 5);  // raises lambda_min only
  EXPECT_GE(at.current().lambda_max - at.current().lambda_min,
            c.gap - 1e-9);
}

TEST(AdaptiveThresholds, ConvergesUnderAlternatingSignal) {
  AdaptiveThresholds at(config(), initial());
  // Feedback loop with the signal flipping around the target: thresholds
  // must stay inside their bands, not run away.
  for (int i = 0; i < 100; ++i) {
    at.adjust(i % 2 == 0 ? 97.0 : 99.5, 5);
    EXPECT_GE(at.current().lambda_min, config().lambda_min_floor - 1e-9);
    EXPECT_LE(at.current().lambda_max, config().lambda_max_ceil + 1e-9);
    EXPECT_LT(at.current().lambda_min, at.current().lambda_max);
  }
}

}  // namespace
}  // namespace easched::sched
