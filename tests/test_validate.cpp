// Tests for the run-time invariant checker (validate/): the transition
// legality matrix, one seeded mutation per rule (each must trip exactly
// that rule and no other), the repro-bundle round trip, and the end-to-end
// guarantee that clean runs — including fault-heavy ones — stay
// violation-free with checking enabled.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/score_matrix.hpp"
#include "experiments/runner.hpp"
#include "test_random_instances.hpp"
#include "validate/invariant_checker.hpp"
#include "validate/repro.hpp"
#include "validate/validate.hpp"

namespace easched::validate {
namespace {

using datacenter::HostState;
using easched::testing::chaos_experiment_plan;
using easched::testing::chaos_workload;
using easched::testing::make_job;
using easched::testing::make_random_instance;
using easched::testing::SmallDc;
using easched::testing::small_config;
using easched::testing::small_week;

/// Sum of all per-rule counts except `rule` — the "exactly one rule trips"
/// assertions below hinge on this staying zero.
std::uint64_t other_rule_count(const InvariantChecker& ck, Rule rule) {
  std::uint64_t total = 0;
  for (int i = 0; i < kNumRules; ++i) {
    if (static_cast<Rule>(i) != rule) total += ck.count(static_cast<Rule>(i));
  }
  return total;
}

// ---- transition legality matrix ---------------------------------------------

TEST(TransitionLegality, MatchesTheHostStateMachine) {
  using S = HostState;
  const std::pair<S, S> legal[] = {
      {S::kOff, S::kBooting},                                 // power on
      {S::kBooting, S::kOn},   {S::kBooting, S::kOff},        // done / failed
      {S::kOn, S::kShuttingDown}, {S::kOn, S::kFailed},       // off / crash
      {S::kShuttingDown, S::kOff}, {S::kShuttingDown, S::kOn},// done / abort
      {S::kFailed, S::kOff},                                  // repaired
  };
  for (const auto& [from, to] : legal) {
    EXPECT_TRUE(InvariantChecker::transition_legal(from, to))
        << datacenter::to_string(from) << " -> " << datacenter::to_string(to);
  }
  // Everything else — including self-transitions — is illegal.
  const S all[] = {S::kOff, S::kBooting, S::kOn, S::kShuttingDown, S::kFailed};
  int legal_seen = 0;
  for (S from : all) {
    for (S to : all) {
      if (InvariantChecker::transition_legal(from, to)) ++legal_seen;
      EXPECT_FALSE(from == to && InvariantChecker::transition_legal(from, to));
    }
  }
  EXPECT_EQ(legal_seen, static_cast<int>(std::size(legal)));
}

// ---- seeded mutations: each trips exactly one rule --------------------------

TEST(InvariantChecker, CleanDatacenterPasses) {
  SmallDc f(2);
  f.admit_and_place(make_job(), 0);
  f.simulator.run_until(100.0);  // creation settles into Running
  InvariantChecker ck;
  ck.check_datacenter(f.dc);
  EXPECT_TRUE(ck.ok());
  EXPECT_EQ(ck.checks_run(), 1u);
}

TEST(InvariantChecker, CatchesDuplicatedResident) {
  SmallDc f(2);
  const auto v = f.admit_and_place(make_job(), 0);
  f.simulator.run_until(100.0);
  InvariantChecker ck;
  ck.check_datacenter(f.dc);
  ASSERT_TRUE(ck.ok());

  f.dc.debug_add_resident(1, v);  // the VM now lives twice
  ck.check_datacenter(f.dc);
  EXPECT_GT(ck.count(Rule::kVmConservation), 0u);
  EXPECT_EQ(other_rule_count(ck, Rule::kVmConservation), 0u);
}

TEST(InvariantChecker, CatchesMemoryOversubscription) {
  SmallDc f(2);
  // A medium host offers 4096 MB; force-place an 8 GB job with otherwise
  // coherent bookkeeping so only the capacity rule can object.
  const auto v = f.dc.admit_job(make_job(100, 8192));
  f.dc.debug_force_place(v, 0);
  InvariantChecker ck;
  ck.check_datacenter(f.dc);
  EXPECT_GT(ck.count(Rule::kCapacity), 0u);
  EXPECT_EQ(other_rule_count(ck, Rule::kCapacity), 0u);
}

TEST(InvariantChecker, CatchesIllegalPowerTransition) {
  InvariantChecker ck;
  ck.on_host_transition(5.0, 0, HostState::kOff, HostState::kBooting);
  EXPECT_TRUE(ck.ok());
  ck.on_host_transition(10.0, 0, HostState::kOff, HostState::kOn);
  EXPECT_EQ(ck.count(Rule::kPowerLegality), 1u);
  EXPECT_EQ(other_rule_count(ck, Rule::kPowerLegality), 0u);
  ASSERT_EQ(ck.violations().size(), 1u);
  EXPECT_EQ(ck.violations()[0].t, 10.0);
}

TEST(InvariantChecker, CatchesCorruptedScoreCache) {
  support::Rng rng{42};
  auto inst = make_random_instance(rng, 42, 0);
  core::ScoreModel model(inst.fixture->dc, inst.queue, inst.params,
                         inst.migration);
  ASSERT_GT(model.cols(), 0);

  InvariantChecker ck;
  ck.check_score_model(model, 1.0);
  ASSERT_TRUE(ck.ok());

  model.debug_corrupt_cache(0, 0, 1e-3);
  ck.check_score_model(model, 2.0);
  EXPECT_EQ(ck.count(Rule::kScoreCache), 1u);
  EXPECT_EQ(other_rule_count(ck, Rule::kScoreCache), 0u);
}

TEST(InvariantChecker, CatchesEventTimeRegression) {
  InvariantChecker ck;
  ck.on_event_dispatched(100.0);
  ASSERT_TRUE(ck.ok());
  ck.on_event_dispatched(50.0);  // time ran backwards
  EXPECT_EQ(ck.count(Rule::kEventMonotonicity), 1u);
  EXPECT_EQ(other_rule_count(ck, Rule::kEventMonotonicity), 0u);
  // The high-water mark survives the glitch: moving past it is clean again.
  ck.on_event_dispatched(100.0);
  ck.on_event_dispatched(101.0);
  EXPECT_EQ(ck.count(Rule::kEventMonotonicity), 1u);
}

TEST(InvariantChecker, CatchesEnergyModelDivergence) {
  SmallDc f(2);
  f.admit_and_place(make_job(), 0);
  f.simulator.run_until(100.0);
  InvariantChecker ck;
  ck.check_datacenter(f.dc);
  ASSERT_TRUE(ck.ok());

  // Overwrite host 0's recorded power draw with a value the power model
  // cannot produce for its state.
  f.recorder.watts.set(f.simulator.now(), 0, 9999.0);
  ck.check_datacenter(f.dc);
  EXPECT_GT(ck.count(Rule::kEnergyConsistency), 0u);
  EXPECT_EQ(other_rule_count(ck, Rule::kEnergyConsistency), 0u);
}

// ---- reporting plumbing -----------------------------------------------------

TEST(InvariantChecker, OnViolationFiresAndClearResets) {
  InvariantChecker ck;
  std::vector<Violation> seen;
  ck.on_violation = [&seen](const Violation& v) { seen.push_back(v); };
  ck.on_event_dispatched(10.0);
  ck.on_event_dispatched(5.0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].rule, Rule::kEventMonotonicity);
  EXPECT_EQ(seen[0].t, 5.0);
  EXPECT_FALSE(seen[0].message.empty());

  ck.clear();
  EXPECT_TRUE(ck.ok());
  EXPECT_EQ(ck.checks_run(), 0u);
  EXPECT_EQ(ck.count(Rule::kEventMonotonicity), 0u);
  // last_event_t_ is reset too: an early event is legal again.
  ck.on_event_dispatched(1.0);
  EXPECT_TRUE(ck.ok());
}

TEST(InvariantChecker, MaxViolationsCapsRecordingNotCounting) {
  CheckerConfig config;
  config.max_violations = 2;
  InvariantChecker ck(config);
  for (int i = 0; i < 5; ++i) {
    ck.on_host_transition(static_cast<double>(i), 0, HostState::kOff,
                          HostState::kOn);
  }
  EXPECT_EQ(ck.violations().size(), 2u);
  EXPECT_EQ(ck.count(Rule::kPowerLegality), 5u);
}

// ---- repro bundles ----------------------------------------------------------

TEST(ReproBundle, RoundTripsLosslessly) {
  ReproBundle bundle;
  bundle.policy = "SB-full";
  bundle.dc_seed = 987654321;
  bundle.host_classes = {"fast", "medium", "slow", "low-power"};
  bundle.inject_failures = true;
  bundle.checkpoint_enabled = true;
  bundle.checkpoint_period_s = 456.75;
  bundle.lambda_min = 0.317;
  bundle.lambda_max = 0.912;
  bundle.horizon_s = 1234567.25;
  bundle.fault_spec = "seed=42,create.fail=0.2,lemon=1:4";
  bundle.violation = "capacity: host 1 memory oversubscribed: x of y";
  bundle.violation_t = 4321.0625;

  workload::Job job;
  job.id = 17;
  job.submit = 1234.5678901234;
  job.dedicated_seconds = 9876.54321;
  job.cpu_pct = 300;
  job.mem_mb = 1536.5;
  job.deadline_factor = 1.7342;
  job.arch = workload::Arch::kPpc64;
  job.software = workload::kSwXen | workload::kSwKvm;
  job.fault_tolerance = 0.123456789;
  job.weight = 512;
  bundle.jobs.push_back(job);
  bundle.jobs.push_back(easched::testing::make_job(200, 1024, 5000, 1.9, 60));

  std::stringstream buffer;
  write_repro_bundle(buffer, bundle);
  const ReproBundle back = read_repro_bundle(buffer);

  EXPECT_EQ(back.policy, bundle.policy);
  EXPECT_EQ(back.dc_seed, bundle.dc_seed);
  EXPECT_EQ(back.host_classes, bundle.host_classes);
  EXPECT_EQ(back.inject_failures, bundle.inject_failures);
  EXPECT_EQ(back.checkpoint_enabled, bundle.checkpoint_enabled);
  EXPECT_DOUBLE_EQ(back.checkpoint_period_s, bundle.checkpoint_period_s);
  EXPECT_DOUBLE_EQ(back.lambda_min, bundle.lambda_min);
  EXPECT_DOUBLE_EQ(back.lambda_max, bundle.lambda_max);
  EXPECT_DOUBLE_EQ(back.horizon_s, bundle.horizon_s);
  EXPECT_EQ(back.fault_spec, bundle.fault_spec);
  EXPECT_EQ(back.violation, bundle.violation);
  EXPECT_DOUBLE_EQ(back.violation_t, bundle.violation_t);
  ASSERT_EQ(back.jobs.size(), bundle.jobs.size());
  for (std::size_t i = 0; i < bundle.jobs.size(); ++i) {
    const workload::Job& a = bundle.jobs[i];
    const workload::Job& b = back.jobs[i];
    EXPECT_EQ(b.id, a.id);
    EXPECT_DOUBLE_EQ(b.submit, a.submit);
    EXPECT_DOUBLE_EQ(b.dedicated_seconds, a.dedicated_seconds);
    EXPECT_DOUBLE_EQ(b.cpu_pct, a.cpu_pct);
    EXPECT_DOUBLE_EQ(b.mem_mb, a.mem_mb);
    EXPECT_DOUBLE_EQ(b.deadline_factor, a.deadline_factor);
    EXPECT_EQ(b.arch, a.arch);
    EXPECT_EQ(b.software, a.software);
    EXPECT_DOUBLE_EQ(b.fault_tolerance, a.fault_tolerance);
    EXPECT_EQ(b.weight, a.weight);
  }
}

TEST(ReproBundle, SpecsForMapsClassTokens) {
  const auto specs = specs_for({"fast", "low-power", "slow", "bogus"});
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].klass, "fast");
  EXPECT_EQ(specs[1].klass, "low-power");
  EXPECT_EQ(specs[2].klass, "slow");
  EXPECT_EQ(specs[3].klass, "medium");  // unknown tokens fall back
}

TEST(ReproBundle, RejectsMalformedInput) {
  std::stringstream not_a_bundle("just some text\n");
  EXPECT_THROW(read_repro_bundle(not_a_bundle), std::runtime_error);
  EXPECT_THROW(read_repro_bundle_file("/no/such/bundle"), std::runtime_error);
}

// ---- end-to-end: validated runs stay clean ----------------------------------
//
// These drive the real hook sites (driver round sweep, datacenter power
// transitions, simulator event stream, score-policy cache audit), so they
// only exist when the hooks are compiled in.
#if EASCHED_VALIDATE_ENABLED

TEST(ValidatedRun, CleanPoliciesProduceNoViolations) {
  const auto jobs = small_week();
  for (const char* policy : {"RD", "BF", "SB"}) {
    auto config = small_config(policy);
    config.validate.enabled = true;
    const auto res = experiments::run_experiment(jobs, std::move(config));
    EXPECT_EQ(res.jobs_finished, jobs.size()) << policy;
    EXPECT_GT(res.invariant_checks, 0u) << policy;
    ASSERT_TRUE(res.violations.empty())
        << policy << ": " << to_string(res.violations[0].rule) << ": "
        << res.violations[0].message;
  }
}

TEST(ValidatedRun, FaultHeavyRunStaysClean) {
  auto config = small_config("SB", 2, 3, 2);
  config.faults = chaos_experiment_plan();
  config.horizon_s = 30 * sim::kDay;
  config.validate.enabled = true;
  const auto res = experiments::run_experiment(chaos_workload(),
                                               std::move(config));
  EXPECT_FALSE(res.hit_horizon);
  EXPECT_GT(res.faults_injected, 0u);
  EXPECT_GT(res.invariant_checks, 0u);
  ASSERT_TRUE(res.violations.empty())
      << to_string(res.violations[0].rule) << ": "
      << res.violations[0].message;
}

TEST(ValidatedRun, ViolationEmitsResultAndReproBundle) {
  // The Random baseline legitimately oversubscribes CPU under Xen-credit;
  // tightening the capacity rule turns that into a deterministic violation,
  // exercising the full violation -> RunResult -> repro-bundle path.
  const auto jobs = small_week();
  auto config = small_config("RD");
  config.validate.enabled = true;
  config.validate.checker.allow_cpu_oversubscription = false;
  const std::string path = ::testing::TempDir() + "easched_repro.txt";
  std::remove(path.c_str());
  config.validate.repro_path = path;

  const auto res = experiments::run_experiment(jobs, std::move(config));
  ASSERT_FALSE(res.violations.empty());
  EXPECT_EQ(res.violations[0].rule, Rule::kCapacity);
  EXPECT_EQ(res.repro_path, path);

  const ReproBundle bundle = read_repro_bundle_file(path);
  EXPECT_EQ(bundle.policy, "RD");
  EXPECT_EQ(bundle.host_classes.size(), 20u);
  EXPECT_FALSE(bundle.violation.empty());
  EXPECT_EQ(bundle.violation_t, res.violations[0].t);
  // The bundle holds the workload slice submitted up to the violation.
  ASSERT_FALSE(bundle.jobs.empty());
  EXPECT_LE(bundle.jobs.size(), jobs.size());
  for (const auto& job : bundle.jobs) {
    EXPECT_LE(job.submit, bundle.violation_t);
  }
  std::remove(path.c_str());
}

TEST(ValidatedRun, EnvVarSwitchesCheckingOn) {
  const auto jobs = small_week();
  ASSERT_EQ(setenv("EASCHED_VALIDATE", "1", 1), 0);
  const auto on = experiments::run_experiment(jobs, small_config("BF"));
  ASSERT_EQ(setenv("EASCHED_VALIDATE", "0", 1), 0);
  const auto off = experiments::run_experiment(jobs, small_config("BF"));
  unsetenv("EASCHED_VALIDATE");
  EXPECT_GT(on.invariant_checks, 0u);
  EXPECT_TRUE(on.violations.empty());
  EXPECT_EQ(off.invariant_checks, 0u);
  // Checking must be passive: identical results either way.
  EXPECT_EQ(on.events_dispatched, off.events_dispatched);
  EXPECT_DOUBLE_EQ(on.report.energy_kwh, off.report.energy_kwh);
}

#endif  // EASCHED_VALIDATE_ENABLED

}  // namespace
}  // namespace easched::validate
