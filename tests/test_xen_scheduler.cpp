// Unit and property tests for the Xen-credit-like CPU allocator.
#include <gtest/gtest.h>

#include <numeric>

#include "datacenter/xen_scheduler.hpp"
#include "support/rng.hpp"

namespace easched::datacenter {
namespace {

TEST(XenScheduler, EmptyHostUsesNothing) {
  const auto a = allocate_cpu(400, {});
  EXPECT_DOUBLE_EQ(a.used_pct, 0);
  EXPECT_DOUBLE_EQ(a.oversubscription, 1.0);
}

TEST(XenScheduler, UndersubscribedEveryoneGetsDemand) {
  const auto a = allocate_cpu(400, {{100, 256, 0}, {150, 256, 0}});
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 100);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[1], 150);
  EXPECT_DOUBLE_EQ(a.used_pct, 250);
  EXPECT_DOUBLE_EQ(a.oversubscription, 1.0);
}

TEST(XenScheduler, OversubscribedEqualWeightsShareEqually) {
  const auto a = allocate_cpu(400, {{300, 256, 0}, {300, 256, 0}});
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 200);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[1], 200);
  EXPECT_DOUBLE_EQ(a.oversubscription, 1.5);
}

TEST(XenScheduler, WeightsBiasShares) {
  const auto a = allocate_cpu(300, {{300, 512, 0}, {300, 256, 0}});
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 200);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[1], 100);
}

TEST(XenScheduler, WaterFillingRedistributesSurplus) {
  // VM0 wants only 50; its surplus share goes to the hungry VM1/VM2.
  const auto a =
      allocate_cpu(400, {{50, 256, 0}, {400, 256, 0}, {400, 256, 0}});
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 50);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[1], 175);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[2], 175);
  EXPECT_NEAR(a.used_pct, 400, 1e-9);
}

TEST(XenScheduler, CapLimitsAllocation) {
  // Xen cap: VM0 capped at 100 even though it demands 400.
  const auto a = allocate_cpu(400, {{400, 256, 100}, {100, 256, 0}});
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 100);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[1], 100);
}

TEST(XenScheduler, CapZeroMeansUncapped) {
  const auto a = allocate_cpu(400, {{350, 256, 0}});
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 350);
}

TEST(XenScheduler, MgmtPreemptsGuests) {
  const auto a = allocate_cpu(400, {{400, 256, 0}}, 100);
  EXPECT_DOUBLE_EQ(a.mgmt_alloc_pct, 100);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 300);
  EXPECT_DOUBLE_EQ(a.used_pct, 400);
}

TEST(XenScheduler, MgmtAloneCappedAtCapacity) {
  const auto a = allocate_cpu(400, {}, 600);
  EXPECT_DOUBLE_EQ(a.mgmt_alloc_pct, 400);
}

TEST(XenScheduler, ZeroDemandVmGetsZero) {
  const auto a = allocate_cpu(400, {{0, 256, 0}, {100, 256, 0}});
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[0], 0);
  EXPECT_DOUBLE_EQ(a.vm_alloc_pct[1], 100);
}

TEST(XenScheduler, OversubscriptionCountsCapsNotRawDemand) {
  // A capped VM's effective demand is its cap.
  const auto a = allocate_cpu(400, {{400, 256, 100}, {100, 256, 0}});
  EXPECT_DOUBLE_EQ(a.oversubscription, 1.0);
}

/// Property sweep over random demand mixes: conservation and bounds.
class XenAllocationProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(XenAllocationProperties, InvariantsHold) {
  support::Rng rng{GetParam()};
  for (int trial = 0; trial < 200; ++trial) {
    const double capacity = 100.0 * (1 + rng.uniform_int(1, 8));
    const int n = static_cast<int>(rng.uniform_int(0, 12));
    std::vector<CpuDemand> vms;
    double total_want = 0;
    for (int i = 0; i < n; ++i) {
      CpuDemand d;
      d.demand_pct = rng.uniform(0.0, 400.0);
      d.weight = 1 + static_cast<double>(rng.uniform_int(1, 1024));
      d.cap_pct = rng.uniform01() < 0.3 ? rng.uniform(10.0, 400.0) : 0.0;
      total_want +=
          d.cap_pct > 0 ? std::min(d.demand_pct, d.cap_pct) : d.demand_pct;
      vms.push_back(d);
    }
    const double mgmt = rng.uniform01() < 0.5 ? rng.uniform(0.0, 200.0) : 0.0;
    const auto a = allocate_cpu(capacity, vms, mgmt);

    // 1. No VM exceeds its demand or its cap.
    for (int i = 0; i < n; ++i) {
      EXPECT_LE(a.vm_alloc_pct[i], vms[static_cast<std::size_t>(i)].demand_pct + 1e-6);
      if (vms[static_cast<std::size_t>(i)].cap_pct > 0) {
        EXPECT_LE(a.vm_alloc_pct[i], vms[static_cast<std::size_t>(i)].cap_pct + 1e-6);
      }
      EXPECT_GE(a.vm_alloc_pct[i], -1e-9);
    }
    // 2. Conservation: used == sum of parts, never above capacity.
    double sum = a.mgmt_alloc_pct;
    for (double v : a.vm_alloc_pct) sum += v;
    EXPECT_NEAR(sum, a.used_pct, 1e-6);
    EXPECT_LE(a.used_pct, capacity + 1e-6);
    // 3. Work conservation: either demand is fully met or capacity is
    // (nearly) exhausted.
    const double met = std::min(total_want + mgmt, capacity);
    EXPECT_NEAR(a.used_pct, met, 1e-6);
    // 4. Oversubscription factor consistent.
    const double over = (total_want + mgmt) / capacity;
    EXPECT_NEAR(a.oversubscription, over > 1 ? over : 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XenAllocationProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

/// Property: weighted shares are proportional when everyone is hungry.
TEST(XenScheduler, ProportionalWhenAllHungry) {
  const auto a = allocate_cpu(
      600, {{600, 100, 0}, {600, 200, 0}, {600, 300, 0}});
  EXPECT_NEAR(a.vm_alloc_pct[0], 100, 1e-9);
  EXPECT_NEAR(a.vm_alloc_pct[1], 200, 1e-9);
  EXPECT_NEAR(a.vm_alloc_pct[2], 300, 1e-9);
}

}  // namespace
}  // namespace easched::datacenter
