// Tests for the time-weighted accumulators and run reports.
#include <gtest/gtest.h>

#include "metrics/report.hpp"

namespace easched::metrics {
namespace {

TEST(TimeWeighted, IntegralOfConstantSignal) {
  TimeWeighted tw;
  tw.set(0, 5.0);
  EXPECT_DOUBLE_EQ(tw.integral(10), 50.0);
}

TEST(TimeWeighted, PiecewiseConstantExact) {
  TimeWeighted tw;
  tw.set(0, 1.0);
  tw.set(10, 3.0);   // 10 * 1
  tw.set(15, 0.0);   // + 5 * 3
  EXPECT_DOUBLE_EQ(tw.integral(100), 25.0);
}

TEST(TimeWeighted, AverageOverWindow) {
  TimeWeighted tw;
  tw.set(0, 2.0);
  tw.set(5, 4.0);
  EXPECT_DOUBLE_EQ(tw.average(10), 3.0);
}

TEST(TimeWeighted, AverageBeforeAnySetIsZero) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.average(100), 0.0);
  EXPECT_DOUBLE_EQ(tw.integral(100), 0.0);
}

TEST(TimeWeighted, ZeroLengthWindowAverage) {
  TimeWeighted tw;
  tw.set(5, 7.0);
  EXPECT_DOUBLE_EQ(tw.average(5), 0.0);
}

TEST(TimeWeighted, RepeatedSetsAtSameInstant) {
  TimeWeighted tw;
  tw.set(0, 1.0);
  tw.set(10, 2.0);
  tw.set(10, 5.0);  // overrides with zero elapsed time
  EXPECT_DOUBLE_EQ(tw.integral(20), 10.0 + 50.0);
}

TEST(TimeWeighted, CurrentReflectsLastValue) {
  TimeWeighted tw;
  tw.set(0, 1.0);
  tw.set(3, 9.0);
  EXPECT_DOUBLE_EQ(tw.current(), 9.0);
}

TEST(PerHostMeter, TotalTracksSumOfHosts) {
  PerHostMeter m(3);
  m.set(0, 0, 100.0);
  m.set(0, 1, 50.0);
  m.set(10, 0, 0.0);
  // host0: 100 for 10 s; host1: 50 for 20 s.
  EXPECT_DOUBLE_EQ(m.host_integral(0, 20), 1000.0);
  EXPECT_DOUBLE_EQ(m.host_integral(1, 20), 1000.0);
  EXPECT_DOUBLE_EQ(m.total_integral(20), 2000.0);
  EXPECT_DOUBLE_EQ(m.total_current(), 50.0);
}

TEST(PerHostMeter, UntouchedHostsContributeNothing) {
  PerHostMeter m(4);
  m.set(0, 2, 10.0);
  EXPECT_DOUBLE_EQ(m.host_integral(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(m.total_integral(5), 50.0);
}

TEST(JobLog, Aggregates) {
  JobLog log;
  log.add({0, 0, 100, 80, 120, 100.0, 25.0});
  log.add({1, 0, 100, 80, 120, 50.0, 75.0});
  EXPECT_EQ(log.count(), 2u);
  EXPECT_DOUBLE_EQ(log.mean_satisfaction(), 75.0);
  EXPECT_DOUBLE_EQ(log.mean_delay_pct(), 50.0);
}

TEST(JobLog, EmptyAggregatesAreZero) {
  JobLog log;
  EXPECT_DOUBLE_EQ(log.mean_satisfaction(), 0.0);
  EXPECT_DOUBLE_EQ(log.mean_delay_pct(), 0.0);
}

TEST(Recorder, EnergyAndCpuConversions) {
  Recorder rec(2);
  rec.watts.set(0, 0, 230.0);
  rec.watts.set(0, 1, 230.0);
  // Two hosts at 230 W for one hour = 0.46 kWh.
  EXPECT_NEAR(rec.energy_kwh(3600), 0.46, 1e-12);

  rec.cpu_pct.set(0, 0, 400.0);
  // 4 cores for one hour = 4 core-hours.
  EXPECT_NEAR(rec.cpu_core_hours(3600), 4.0, 1e-12);
}

TEST(Report, CollectsAllColumns) {
  Recorder rec(1);
  rec.watts.set(0, 0, 1000.0);
  rec.cpu_pct.set(0, 0, 100.0);
  rec.working.set(0, 1);
  rec.online.set(0, 2);
  rec.jobs.add({0, 0, 50, 40, 60, 90.0, 10.0});
  rec.counts.migrations = 7;

  const auto r = make_report(rec, 3600, "XX", 0.3, 0.9);
  EXPECT_EQ(r.policy, "XX");
  EXPECT_DOUBLE_EQ(r.lambda_min, 0.3);
  EXPECT_DOUBLE_EQ(r.energy_kwh, 1.0);
  EXPECT_DOUBLE_EQ(r.cpu_hours, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_working, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_online, 2.0);
  EXPECT_DOUBLE_EQ(r.satisfaction, 90.0);
  EXPECT_DOUBLE_EQ(r.delay_pct, 10.0);
  EXPECT_EQ(r.migrations, 7u);
  EXPECT_EQ(r.jobs_finished, 1u);
}

TEST(Report, ToStringMentionsPolicyAndUnits) {
  Recorder rec(1);
  const auto r = make_report(rec, 100, "SB", 0.3, 0.9);
  const auto text = r.to_string();
  EXPECT_NE(text.find("SB"), std::string::npos);
  EXPECT_NE(text.find("kWh"), std::string::npos);
}

}  // namespace
}  // namespace easched::metrics
