// Unit tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace easched::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator s;
  std::vector<SimTime> seen;
  s.at(5.0, [&] { seen.push_back(s.now()); });
  s.at(1.5, [&] { seen.push_back(s.now()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{1.5, 5.0}));
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  SimTime fired_at = -1;
  s.at(10.0, [&] { s.after(2.5, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(Simulator, ZeroDelayFiresAtSameTime) {
  Simulator s;
  SimTime fired_at = -1;
  s.at(3.0, [&] { s.after(0.0, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  bool late_fired = false;
  s.at(1.0, [] {});
  s.at(100.0, [&] { late_fired = true; });
  s.run_until(50.0);
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(s.now(), 50.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, RunUntilFiresEventsExactlyAtHorizon) {
  Simulator s;
  bool fired = false;
  s.at(50.0, [&] { fired = true; });
  s.run_until(50.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesToHorizonWhenDrained) {
  Simulator s;
  s.at(1.0, [] {});
  s.run_until(99.0);
  EXPECT_DOUBLE_EQ(s.now(), 99.0);
}

TEST(Simulator, StopFreezesClock) {
  Simulator s;
  s.at(1.0, [&] { s.stop(); });
  s.at(100.0, [] {});
  s.run_until(200.0);
  // Stopped early: the clock must stay at the stop point, not jump to the
  // horizon (this regression diluted every time-averaged metric once).
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, StopInsideRunReturnsPromptly) {
  Simulator s;
  int fired = 0;
  s.at(1.0, [&] {
    ++fired;
    s.stop();
  });
  s.at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunAfterStopResumes) {
  Simulator s;
  int fired = 0;
  s.at(1.0, [&] {
    ++fired;
    s.stop();
  });
  s.at(2.0, [&] { ++fired; });
  s.run();
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator s;
  bool fired = false;
  const EventId id = s.at(1.0, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DispatchedCountsFiredEventsOnly) {
  Simulator s;
  s.at(1.0, [] {});
  const EventId id = s.at(2.0, [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(s.dispatched(), 1u);
}

TEST(Simulator, PeriodicFiresAtFixedCadence) {
  Simulator s;
  std::vector<SimTime> at;
  s.every(10.0, [&] { at.push_back(s.now()); });
  s.run_until(35.0);
  EXPECT_EQ(at, (std::vector<SimTime>{10.0, 20.0, 30.0}));
}

TEST(Simulator, CancelPeriodicStopsFutureFirings) {
  Simulator s;
  int count = 0;
  const auto handle = s.every(10.0, [&] { ++count; });
  s.at(25.0, [&, handle] { s.cancel_periodic(handle); });
  s.run_until(100.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CancelPeriodicFromInsideTask) {
  Simulator s;
  int count = 0;
  Simulator::PeriodicHandle handle = s.every(5.0, [&] {
    ++count;
    if (count == 3) s.cancel_periodic(handle);
  });
  s.run_until(1000.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, TwoPeriodicTasksInterleave) {
  Simulator s;
  std::vector<int> order;
  s.every(10.0, [&] { order.push_back(1); });
  s.every(15.0, [&] { order.push_back(2); });
  s.run_until(30.0);
  // t=10:1, t=15:2, t=20:1, t=30: task 2 first (its occurrence was queued
  // at t=15, before task 1 re-armed at t=20 — sequence order breaks ties).
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1}));
}

TEST(Simulator, EventsScheduledDuringRunAreHonored) {
  Simulator s;
  std::vector<int> order;
  s.at(1.0, [&] {
    order.push_back(1);
    s.at(2.0, [&] { order.push_back(3); });
    s.after(0.5, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace easched::sim
