// Shared helpers for datacenter-level tests: a small fleet with
// deterministic (zero-jitter) operation durations so lifecycle timings can
// be asserted exactly, plus the seeded scenario builders (workloads, fault
// plans, run configurations) the integration / fault / fuzz / validation
// tests share instead of each growing its own copy.
#pragma once

#include <string>
#include <utility>

#include "datacenter/datacenter.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace easched::testing {

inline workload::Job make_job(double cpu_pct = 100, double mem_mb = 512,
                              double dedicated_s = 1000,
                              double deadline_factor = 1.5,
                              double submit = 0) {
  workload::Job job;
  job.submit = submit;
  job.dedicated_seconds = dedicated_s;
  job.cpu_pct = cpu_pct;
  job.mem_mb = mem_mb;
  job.deadline_factor = deadline_factor;
  return job;
}

/// A fixture owning simulator + recorder + datacenter with `n` identical
/// medium hosts, zero duration jitter and no contention surprises.
struct SmallDc {
  sim::Simulator simulator;
  metrics::Recorder recorder;
  datacenter::Datacenter dc;

  static datacenter::DatacenterConfig make_config(
      std::size_t n, datacenter::DatacenterConfig base) {
    // Tests that pre-populated custom hosts keep them; otherwise n
    // identical medium nodes.
    if (base.hosts.empty()) {
      base.hosts.assign(n, datacenter::HostSpec::medium());
    }
    base.duration_sigma_ratio = 0;  // deterministic operation durations
    base.seed = 99;
    return base;
  }

  explicit SmallDc(std::size_t n = 3,
                   datacenter::DatacenterConfig base = {})
      : recorder(n), dc(simulator, make_config(n, std::move(base)), recorder) {}

  datacenter::VmId admit_and_place(const workload::Job& job,
                                   datacenter::HostId h) {
    const auto v = dc.admit_job(job);
    dc.place(v, h);
    return v;
  }
};

// ---- shared scenario builders ---------------------------------------------

/// A small 1.5-day synthetic trace (~10 jobs/hour): enough load to exercise
/// every policy end to end while a full run stays sub-second.
inline workload::Workload small_week(std::uint64_t seed = 77) {
  workload::SyntheticConfig c;
  c.seed = seed;
  c.span_seconds = 1.5 * sim::kDay;
  c.mean_jobs_per_hour = 10;
  return workload::generate(c);
}

/// RunConfig over a reduced heterogeneous fleet (default 4 fast / 10 medium
/// / 6 slow, seed 5) with a generous horizon as a stall safety net.
inline experiments::RunConfig small_config(const std::string& policy,
                                           std::size_t fast = 4,
                                           std::size_t medium = 10,
                                           std::size_t slow = 6) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(fast, medium, slow);
  config.datacenter.seed = 5;
  config.policy = policy;
  config.horizon_s = 90 * sim::kDay;
  return config;
}

/// A 6-hour synthetic trace for the fault-heavy end-to-end runs.
inline workload::Workload chaos_workload() {
  workload::SyntheticConfig wl;
  wl.seed = 7;
  wl.span_seconds = 6 * sim::kHour;
  wl.mean_jobs_per_hour = 8;
  wl.median_runtime_s = 1200;
  wl.max_runtime_s = 2 * sim::kHour;
  return workload::generate(wl);
}

/// The chaos experiments' standard fault mix, kept in the inline-spec form
/// so the test doubles as coverage of parse_fault_plan().
inline faults::FaultPlan chaos_experiment_plan() {
  return faults::parse_fault_plan(
      "seed=42,create.fail=0.2,create.hang=0.05,migrate.fail=0.1,"
      "power_on.fail=0.1,lemon=1:4,retry_base=5,retry_cap=120,"
      "quarantine_window=1800,quarantine_cooldown=900");
}

/// An aggressive operation-fault mix for the fuzz/chaos variants: every
/// actuator operation can fail, hang or run slow, and host 2 is a lemon.
inline faults::FaultPlan make_chaos_plan(std::uint64_t seed) {
  faults::FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed * 31 + 5;
  plan.spec(faults::FaultOp::kCreate) = {0.10, 0.05, 0.10, 2.5};
  plan.spec(faults::FaultOp::kMigrate) = {0.12, 0.06, 0.10, 2.5};
  plan.spec(faults::FaultOp::kPowerOn) = {0.08, 0.04, 0.05, 2.0};
  plan.spec(faults::FaultOp::kPowerOff) = {0.08, 0.04, 0.0, 1.0};
  plan.spec(faults::FaultOp::kCheckpoint) = {0.15, 0.05, 0.0, 1.0};
  plan.lemons.push_back({2, 5.0});
  plan.quarantine_window_s = 1200;
  plan.quarantine_cooldown_s = 600;
  return plan;
}

/// SmallDc wired to a FaultInjector (and an optional quarantine override);
/// medium hosts: creation 40 s, migration 60 s, boot 300 s, deterministic.
struct InjectedDc {
  faults::FaultInjector injector;
  SmallDc f;

  explicit InjectedDc(const faults::FaultPlan& plan, std::size_t hosts = 2,
                      datacenter::QuarantinePolicy quarantine = {})
      : injector(plan), f(hosts, [&] {
          datacenter::DatacenterConfig config;
          config.fault_injector = &injector;
          config.quarantine = quarantine;
          return config;
        }()) {}
};

}  // namespace easched::testing
