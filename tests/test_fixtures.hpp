// Shared helpers for datacenter-level tests: a small fleet with
// deterministic (zero-jitter) operation durations so lifecycle timings can
// be asserted exactly.
#pragma once

#include "datacenter/datacenter.hpp"
#include "sim/simulator.hpp"

namespace easched::testing {

inline workload::Job make_job(double cpu_pct = 100, double mem_mb = 512,
                              double dedicated_s = 1000,
                              double deadline_factor = 1.5,
                              double submit = 0) {
  workload::Job job;
  job.submit = submit;
  job.dedicated_seconds = dedicated_s;
  job.cpu_pct = cpu_pct;
  job.mem_mb = mem_mb;
  job.deadline_factor = deadline_factor;
  return job;
}

/// A fixture owning simulator + recorder + datacenter with `n` identical
/// medium hosts, zero duration jitter and no contention surprises.
struct SmallDc {
  sim::Simulator simulator;
  metrics::Recorder recorder;
  datacenter::Datacenter dc;

  static datacenter::DatacenterConfig make_config(
      std::size_t n, datacenter::DatacenterConfig base) {
    // Tests that pre-populated custom hosts keep them; otherwise n
    // identical medium nodes.
    if (base.hosts.empty()) {
      base.hosts.assign(n, datacenter::HostSpec::medium());
    }
    base.duration_sigma_ratio = 0;  // deterministic operation durations
    base.seed = 99;
    return base;
  }

  explicit SmallDc(std::size_t n = 3,
                   datacenter::DatacenterConfig base = {})
      : recorder(n), dc(simulator, make_config(n, std::move(base)), recorder) {}

  datacenter::VmId admit_and_place(const workload::Job& job,
                                   datacenter::HostId h) {
    const auto v = dc.admit_job(job);
    dc.place(v, h);
    return v;
  }
};

}  // namespace easched::testing
