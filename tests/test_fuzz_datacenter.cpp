// Randomized stress harness: drives the Datacenter with random (but valid)
// actuator calls interleaved with time advancement and checks structural
// invariants after every step. This is the property-based safety net for
// the bookkeeping that the scenario tests cannot cover combinatorially:
// resident lists vs. VM states, reservations vs. capacities, operation
// records vs. VM operations, meters vs. states.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hill_climb.hpp"
#include "core/score_matrix.hpp"
#include "faults/fault_injector.hpp"
#include "test_fixtures.hpp"

namespace easched::datacenter {
namespace {

using easched::testing::make_chaos_plan;
using easched::testing::make_job;

class Fuzzer {
 public:
  explicit Fuzzer(std::uint64_t seed, bool failures,
                  const faults::FaultPlan* plan = nullptr)
      : rng_(seed), recorder_(kHosts) {
    DatacenterConfig config;
    config.hosts.assign(kHosts, HostSpec::medium());
    if (failures) {
      config.inject_failures = true;
      config.mean_repair_s = 400;
      for (std::size_t i = 0; i < kHosts; i += 2) {
        config.hosts[i].reliability = 0.85;
      }
    }
    config.checkpoint.enabled = failures;
    config.checkpoint.period_s = 120;
    config.checkpoint.duration_s = 3;
    config.seed = seed ^ 0x5eed;
    if (plan != nullptr && plan->enabled) {
      injector_ = std::make_unique<faults::FaultInjector>(*plan);
      config.fault_injector = injector_.get();
      config.quarantine.failure_budget = plan->quarantine_budget;
      config.quarantine.window_s = plan->quarantine_window_s;
      config.quarantine.cooldown_s = plan->quarantine_cooldown_s;
    }
    dc_ = std::make_unique<Datacenter>(simulator_, config, recorder_);
    dc_->on_host_failed = [this](HostId, std::vector<VmId> lost) {
      for (VmId v : lost) queued_.push_back(v);
    };
    // A failed/aborted creation hands the VM back to the queue; track it so
    // it can be re-placed (the stranded-VM invariant below relies on every
    // requeue path reporting back, mirroring what the driver does).
    dc_->on_operation_failed = [this](faults::FaultOp op, VmId v, HostId,
                                      bool) {
      if (op == faults::FaultOp::kCreate) queued_.push_back(v);
    };
  }

  void step() {
    switch (rng_.uniform_int(0, 6)) {
      case 0:
        maybe_submit();
        break;
      case 1:
        maybe_place();
        break;
      case 2:
        maybe_migrate();
        break;
      case 3:
        maybe_power_cycle();
        break;
      case 4:
        maybe_boost();
        break;
      default:
        advance();
        break;
    }
    check_invariants();
  }

  void drain() {
    // Push time forward so in-flight operations and jobs settle.
    for (int i = 0; i < 50; ++i) {
      simulator_.run_until(simulator_.now() + 500.0);
      check_invariants();
    }
  }

 private:
  static constexpr std::size_t kHosts = 6;

  void maybe_submit() {
    static constexpr double kCpu[4] = {50, 100, 200, 400};
    workload::Job job = make_job(
        kCpu[rng_.uniform_int(0, 3)], rng_.uniform(128, 1500),
        rng_.uniform(200, 4000), rng_.uniform(1.2, 2.0), simulator_.now());
    queued_.push_back(dc_->admit_job(job));
  }

  void maybe_place() {
    if (queued_.empty()) return;
    const std::size_t pick = rng_.uniform_int(0, queued_.size() - 1);
    const VmId v = queued_[pick];
    if (dc_->vm(v).state != VmState::kQueued) {
      queued_.erase(queued_.begin() + static_cast<long>(pick));
      return;
    }
    std::vector<HostId> fitting;
    for (HostId h = 0; h < dc_->num_hosts(); ++h) {
      if (dc_->fits_memory(h, v)) fitting.push_back(h);
    }
    if (fitting.empty()) return;
    queued_.erase(queued_.begin() + static_cast<long>(pick));
    dc_->place(v, fitting[rng_.uniform_int(0, fitting.size() - 1)]);
  }

  void maybe_migrate() {
    std::vector<VmId> running;
    for (VmId v : dc_->active_vms()) {
      if (dc_->vm(v).state == VmState::kRunning) running.push_back(v);
    }
    if (running.empty()) return;
    const VmId v = running[rng_.uniform_int(0, running.size() - 1)];
    std::vector<HostId> targets;
    for (HostId h = 0; h < dc_->num_hosts(); ++h) {
      if (h != dc_->vm(v).host && dc_->fits_memory(h, v)) targets.push_back(h);
    }
    if (targets.empty()) return;
    dc_->migrate(v, targets[rng_.uniform_int(0, targets.size() - 1)]);
  }

  void maybe_power_cycle() {
    const HostId h =
        static_cast<HostId>(rng_.uniform_int(0, dc_->num_hosts() - 1));
    const auto& host = dc_->host(h);
    if (host.state == HostState::kOff) {
      dc_->power_on(h);
    } else if (host.is_idle_on() && dc_->online_count() > 1) {
      dc_->power_off(h);
    }
  }

  void maybe_boost() {
    for (VmId v : dc_->active_vms()) {
      if (dc_->vm(v).state == VmState::kRunning && rng_.uniform01() < 0.3) {
        if (rng_.uniform01() < 0.5) {
          dc_->boost_demand(v, dc_->vm(v).cpu_demand_pct * 1.5);
        } else {
          dc_->boost_weight(v, 2.0);
        }
        return;
      }
    }
  }

  void advance() { simulator_.run_until(simulator_.now() + rng_.uniform(1, 300)); }

  void check_invariants() {
    double expected_working = 0;
    double expected_online = 0;

    for (HostId h = 0; h < dc_->num_hosts(); ++h) {
      const Host& host = dc_->host(h);
      expected_working += host.is_working() ? 1 : 0;
      expected_online += host.is_online() ? 1 : 0;

      // Residents' states and back-pointers are consistent.
      for (VmId v : host.residents) {
        const Vm& vm = dc_->vm(v);
        ASSERT_EQ(vm.host, h);
        ASSERT_TRUE(vm.state == VmState::kCreating ||
                    vm.state == VmState::kRunning ||
                    vm.state == VmState::kMigrating)
            << to_string(vm.state);
      }
      // Only On hosts hold residents or operations.
      if (host.state != HostState::kOn) {
        ASSERT_TRUE(host.residents.empty());
        ASSERT_TRUE(host.ops.empty());
        ASSERT_DOUBLE_EQ(host.used_cpu_pct, 0.0);
      }
      // Memory reservations never exceed physical memory.
      ASSERT_LE(dc_->reserved_mem_mb(h), host.spec.mem_mb + 1e-6);
      // A quarantined host is never offered to placement.
      if (host.quarantined) ASSERT_FALSE(host.is_placeable());
      // Operation records refer to live VMs in matching states.
      for (const auto& op : host.ops) {
        const Vm& vm = dc_->vm(op.vm);
        switch (op.kind) {
          case Operation::Kind::kCreate:
            ASSERT_EQ(vm.state, VmState::kCreating);
            break;
          case Operation::Kind::kMigrateIn:
            ASSERT_EQ(vm.state, VmState::kMigrating);
            ASSERT_EQ(vm.host, h);
            break;
          case Operation::Kind::kMigrateOut:
            ASSERT_EQ(vm.state, VmState::kMigrating);
            ASSERT_EQ(vm.migration_source, h);
            break;
          case Operation::Kind::kCheckpoint:
            break;  // checkpointed VM may have been requeued meanwhile
        }
        ASSERT_GE(op.done_s, -1e9);
        ASSERT_LE(op.done_s, op.work_s + 1e-6);
        // A hung operation always has its abort deadline armed: nothing
        // can wedge forever.
        if (op.hung) ASSERT_NE(op.deadline_event, sim::kNoEvent);
      }
      // Power meter matches the host state.
      const double watts = recorder_.watts.host_current(h);
      if (host.state == HostState::kOff || host.state == HostState::kFailed) {
        ASSERT_DOUBLE_EQ(watts, host.spec.power.watts_off());
      } else {
        ASSERT_GE(watts, host.spec.power.watts_off());
        ASSERT_LE(watts, host.spec.power.watts_on(host.spec.cpu_capacity_pct,
                                                  host.spec.cpu_capacity_pct) +
                             1e-6);
      }
    }

    ASSERT_EQ(dc_->working_count(), static_cast<int>(expected_working));
    ASSERT_EQ(dc_->online_count(), static_cast<int>(expected_online));

    // Every VM's bookkeeping is sane.
    for (VmId v = 0; v < dc_->num_vms(); ++v) {
      const Vm& vm = dc_->vm(v);
      ASSERT_GE(vm.work_done_s, 0.0);
      ASSERT_LE(vm.work_done_s, vm.job.dedicated_seconds + 1e-6);
      ASSERT_LE(vm.work_checkpointed_s, vm.work_done_s + 1e-6);
      ASSERT_GE(vm.progress_rate, 0.0);
      ASSERT_LE(vm.progress_rate, 1.0 + 1e-9);
      if (vm.state == VmState::kQueued) {
        // No stranded VM: every path that hands a VM back (host crash,
        // failed or timed-out creation) must report it, or it would sit
        // queued forever with nobody retrying the placement.
        ASSERT_NE(std::find(queued_.begin(), queued_.end(), v), queued_.end())
            << "VM " << v << " queued but untracked";
      }
      if (vm.state == VmState::kQueued || vm.state == VmState::kFinished) {
        ASSERT_EQ(vm.host, kNoHost);
      } else {
        ASSERT_LT(vm.host, dc_->num_hosts());
        const auto& residents = dc_->host(vm.host).residents;
        ASSERT_NE(std::find(residents.begin(), residents.end(), v),
                  residents.end());
      }
      if (vm.state != VmState::kMigrating) {
        ASSERT_EQ(vm.migration_source, kNoHost);
      }
    }
  }

  support::Rng rng_;
  sim::Simulator simulator_;
  metrics::Recorder recorder_;
  std::unique_ptr<faults::FaultInjector> injector_;  // outlives dc_
  std::unique_ptr<Datacenter> dc_;
  std::vector<VmId> queued_;
};

/// Fuzz at the scheduling layer: interleaves score-based scheduling rounds
/// (the solver planning over the live system, plans applied like the SB
/// policy applies them) with failure injection and time advancement, and
/// checks the solver-facing safety properties after every round:
///  - no host is committed beyond its reserved CPU / memory capacity,
///  - no VM is left on the virtual row while a feasible host scores
///    negative for it (the climber must have taken that placement).
class SchedulingFuzzer {
 public:
  explicit SchedulingFuzzer(std::uint64_t seed,
                            const faults::FaultPlan* plan = nullptr)
      : rng_(seed), recorder_(kHosts) {
    DatacenterConfig config;
    config.hosts.assign(kHosts, HostSpec::medium());
    config.inject_failures = true;
    config.mean_repair_s = 500;
    for (std::size_t i = 0; i < kHosts; i += 2) {
      config.hosts[i].reliability = 0.9;
    }
    config.checkpoint.enabled = true;
    config.checkpoint.period_s = 150;
    config.checkpoint.duration_s = 3;
    config.seed = seed ^ 0xf00d;
    if (plan != nullptr && plan->enabled) {
      injector_ = std::make_unique<faults::FaultInjector>(*plan);
      config.fault_injector = injector_.get();
      config.quarantine.failure_budget = plan->quarantine_budget;
      config.quarantine.window_s = plan->quarantine_window_s;
      config.quarantine.cooldown_s = plan->quarantine_cooldown_s;
    }
    dc_ = std::make_unique<Datacenter>(simulator_, config, recorder_);
    dc_->on_host_failed = [this](HostId, std::vector<VmId> lost) {
      for (VmId v : lost) queued_.push_back(v);
    };
    dc_->on_operation_failed = [this](faults::FaultOp op, VmId v, HostId,
                                      bool) {
      if (op == faults::FaultOp::kCreate) queued_.push_back(v);
    };
    params_.use_virt = true;
    params_.use_conc = true;
    params_.use_fault = true;
  }

  void step(int i) {
    const int arrivals = static_cast<int>(rng_.uniform_int(0, 2));
    for (int a = 0; a < arrivals; ++a) {
      static constexpr double kCpu[4] = {50, 100, 200, 400};
      queued_.push_back(dc_->admit_job(make_job(
          kCpu[rng_.uniform_int(0, 3)], rng_.uniform(128, 1200),
          rng_.uniform(500, 6000), rng_.uniform(1.2, 2.0), simulator_.now())));
    }
    round(/*consolidate=*/i % 4 == 3);
    simulator_.run_until(simulator_.now() + rng_.uniform(30, 400));
    sync_queue();
  }

 private:
  static constexpr std::size_t kHosts = 6;

  void sync_queue() {
    std::vector<VmId> synced;
    for (VmId v : queued_) {
      if (dc_->vm(v).state == VmState::kQueued &&
          std::find(synced.begin(), synced.end(), v) == synced.end()) {
        synced.push_back(v);
      }
    }
    queued_ = std::move(synced);
  }

  void round(bool consolidate) {
    sync_queue();
    core::ScoreModel model(*dc_, queued_, params_, consolidate);
    core::HillClimbLimits limits;
    limits.max_moves = 512;
    limits.min_migration_gain = 35;
    const auto stats = core::hill_climb(model, limits);

    // A column left on the virtual row means every real host scored it
    // non-negative: any negative (or even merely finite-vs-infinite) cell
    // gives an astronomically negative delta the climber must take.
    if (!stats.hit_move_limit) {
      for (int c = 0; c < model.cols(); ++c) {
        if (model.original_row(c) != model.virtual_row()) continue;
        if (model.plan_row(c) != model.virtual_row()) continue;
        for (int r = 0; r < model.virtual_row(); ++r) {
          ASSERT_GE(model.cell(r, c), 0.0)
              << "VM " << model.vm_at(c) << " left queued although host row "
              << r << " scores negative";
        }
      }
    }

    // Apply the plan the way ScoreBasedPolicy emits actions, with the same
    // defensive validation the driver performs.
    int migrations = 0;
    for (int c = 0; c < model.cols(); ++c) {
      const int planned = model.plan_row(c);
      if (planned == model.original_row(c)) continue;
      if (planned == model.virtual_row()) continue;
      const VmId v = model.vm_at(c);
      const HostId h = model.host_at(planned);
      if (dc_->host(h).state != HostState::kOn) continue;
      if (!dc_->fits_memory(h, v)) continue;
      // fits_memory() rejecting quarantined hosts is what keeps degraded
      // nodes out of placement; a validated action must never target one.
      ASSERT_FALSE(dc_->host(h).quarantined);
      if (model.original_row(c) == model.virtual_row()) {
        if (dc_->vm(v).state != VmState::kQueued) continue;
        queued_.erase(std::find(queued_.begin(), queued_.end(), v));
        dc_->place(v, h);
      } else if (migrations < 8) {
        if (dc_->vm(v).state != VmState::kRunning) continue;
        if (dc_->vm(v).host == h) continue;
        dc_->migrate(v, h);
        ++migrations;
      }
    }
    check_capacity();
  }

  void check_capacity() {
    for (HostId h = 0; h < dc_->num_hosts(); ++h) {
      const Host& host = dc_->host(h);
      ASSERT_LE(dc_->reserved_mem_mb(h), host.spec.mem_mb + 1e-6)
          << "host " << h << " over-committed on memory";
      ASSERT_LE(dc_->reserved_cpu_pct(h), host.spec.cpu_capacity_pct + 1e-6)
          << "host " << h << " over-committed on CPU";
    }
  }

  support::Rng rng_;
  sim::Simulator simulator_;
  metrics::Recorder recorder_;
  std::unique_ptr<faults::FaultInjector> injector_;  // outlives dc_
  std::unique_ptr<Datacenter> dc_;
  std::vector<VmId> queued_;
  core::ScoreParams params_;
};

class FuzzDatacenter : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDatacenter, InvariantsHoldWithoutFailures) {
  Fuzzer fuzzer(GetParam(), /*failures=*/false);
  for (int i = 0; i < 600; ++i) fuzzer.step();
  fuzzer.drain();
}

TEST_P(FuzzDatacenter, InvariantsHoldWithFailureInjection) {
  Fuzzer fuzzer(GetParam() * 7919 + 1, /*failures=*/true);
  for (int i = 0; i < 600; ++i) fuzzer.step();
  fuzzer.drain();
}

TEST_P(FuzzDatacenter, SchedulingRoundsWithFailuresKeepInvariants) {
  SchedulingFuzzer fuzzer(GetParam() * 104729 + 11);
  for (int i = 0; i < 40; ++i) fuzzer.step(i);
}

// Chaos variant: deterministic operation-fault injection (fail / hang /
// slow on every actuator op, plus a lemon host) interleaved with the random
// actuator calls AND the host-crash failure model. The structural
// invariants must hold throughout: no over-commit, no stranded queued VM,
// no placements onto quarantined hosts, no operation wedged without an
// armed abort deadline.
TEST_P(FuzzDatacenter, InjectedOperationFaultsKeepInvariants) {
  const faults::FaultPlan plan = make_chaos_plan(GetParam());
  Fuzzer fuzzer(GetParam() * 271 + 9, /*failures=*/true, &plan);
  for (int i = 0; i < 600; ++i) fuzzer.step();
  fuzzer.drain();
}

// Same chaos plan under full scheduling rounds: the solver plans over a
// system where creations fail, migrations roll back and hosts get
// quarantined mid-round; the capacity and placement-validity properties
// must survive.
TEST_P(FuzzDatacenter, SchedulingRoundsWithInjectedOperationFaults) {
  const faults::FaultPlan plan = make_chaos_plan(GetParam() ^ 0xfau);
  SchedulingFuzzer fuzzer(GetParam() * 104729 + 13, &plan);
  for (int i = 0; i < 40; ++i) fuzzer.step(i);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDatacenter,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace easched::datacenter
