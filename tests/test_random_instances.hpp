// Shared generator of randomized scheduling scenarios for the solver
// property and differential tests (test_score_cache, test_solver_equivalence).
//
// Each instance is a small heterogeneous datacenter with a settled running
// population, a non-empty queue and randomized penalty configuration —
// enough variety to hit every score term (incompatible architectures,
// missing software, fault-tolerant jobs, SLA pressure) without blowing up
// the per-instance cost.
#pragma once

#include <memory>
#include <vector>

#include "core/score.hpp"
#include "support/rng.hpp"
#include "test_fixtures.hpp"

namespace easched::testing {

struct RandomInstance {
  std::unique_ptr<SmallDc> fixture;
  std::vector<datacenter::VmId> queue;
  core::ScoreParams params;
  bool migration = false;
};

inline RandomInstance make_random_instance(support::Rng& rng,
                                           int max_hosts = 6,
                                           int max_running = 8,
                                           int max_queued = 6) {
  using datacenter::DatacenterConfig;
  using datacenter::HostId;
  using datacenter::HostSpec;
  using datacenter::VmId;

  RandomInstance inst;
  const int hosts = static_cast<int>(rng.uniform_int(2, max_hosts));
  DatacenterConfig config;
  for (int i = 0; i < hosts; ++i) {
    HostSpec spec;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        spec = HostSpec::fast();
        break;
      case 1:
        spec = HostSpec::medium();
        break;
      case 2:
        spec = HostSpec::slow();
        break;
      default:
        spec = HostSpec::low_power();
        break;
    }
    spec.reliability = rng.uniform(0.8, 1.0);
    if (rng.uniform01() < 0.1) spec.arch = workload::Arch::kPpc64;
    if (rng.uniform01() < 0.3) spec.software |= workload::kSwKvm;
    config.hosts.push_back(spec);
  }
  inst.fixture =
      std::make_unique<SmallDc>(config.hosts.size(), std::move(config));
  SmallDc& f = *inst.fixture;

  const auto random_job = [&rng](double submit) {
    workload::Job job = make_job(
        100.0 * static_cast<double>(rng.uniform_int(1, 3)),
        rng.uniform(128, 1200), rng.uniform(2000, 60000),
        rng.uniform(1.2, 2.0), submit);
    if (rng.uniform01() < 0.3) job.fault_tolerance = rng.uniform01();
    if (rng.uniform01() < 0.1) job.software |= workload::kSwKvm;
    if (rng.uniform01() < 0.05) job.arch = workload::Arch::kPpc64;
    return job;
  };

  const int running = static_cast<int>(rng.uniform_int(0, max_running));
  for (int i = 0; i < running; ++i) {
    const VmId v = f.dc.admit_job(random_job(0));
    std::vector<HostId> fitting;
    for (HostId h = 0; h < f.dc.num_hosts(); ++h) {
      if (f.dc.fits(h, v)) fitting.push_back(h);
    }
    if (fitting.empty()) continue;  // stays queued, outside the instance
    f.dc.place(v, fitting[rng.uniform_int(0, fitting.size() - 1)]);
  }
  f.simulator.run_until(400.0);  // let creations settle into Running

  const int queued = static_cast<int>(rng.uniform_int(1, max_queued));
  for (int i = 0; i < queued; ++i) {
    inst.queue.push_back(f.dc.admit_job(random_job(f.simulator.now())));
  }

  inst.params.use_virt = rng.uniform01() < 0.8;
  inst.params.use_conc = rng.uniform01() < 0.8;
  inst.params.use_pwr = rng.uniform01() < 0.9;
  inst.params.use_sla = rng.uniform01() < 0.5;
  inst.params.use_fault = rng.uniform01() < 0.5;
  inst.migration = rng.uniform01() < 0.7;
  return inst;
}

}  // namespace easched::testing
