// Unit and statistical tests for the reproducible distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace easched::support {
namespace {

struct Moments {
  double mean = 0;
  double variance = 0;
};

template <typename Draw>
Moments sample_moments(Draw draw, int n = 50000) {
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = draw();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  return {mean, sq / n - mean * mean};
}

TEST(Distributions, Normal01Moments) {
  Rng rng{1};
  const auto m = sample_moments([&] { return normal01(rng); });
  EXPECT_NEAR(m.mean, 0.0, 0.02);
  EXPECT_NEAR(m.variance, 1.0, 0.03);
}

TEST(Distributions, NormalShiftScale) {
  Rng rng{2};
  const auto m = sample_moments([&] { return normal(rng, 40.0, 2.5); });
  EXPECT_NEAR(m.mean, 40.0, 0.1);
  EXPECT_NEAR(std::sqrt(m.variance), 2.5, 0.1);
}

TEST(Distributions, NormalZeroSigmaIsDeterministic) {
  Rng rng{3};
  EXPECT_DOUBLE_EQ(normal(rng, 7.0, 0.0), 7.0);
}

TEST(Distributions, TruncatedNormalRespectsFloor) {
  Rng rng{4};
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(truncated_normal(rng, 1.0, 5.0, 0.5), 0.5);
  }
}

TEST(Distributions, TruncatedNormalUntruncatedRegionUnbiased) {
  // With the floor 10 sigma below the mean, truncation is a no-op.
  Rng rng{5};
  const auto m =
      sample_moments([&] { return truncated_normal(rng, 40.0, 2.5, 15.0); });
  EXPECT_NEAR(m.mean, 40.0, 0.1);
}

TEST(Distributions, TruncatedNormalZeroSigma) {
  Rng rng{5};
  EXPECT_DOUBLE_EQ(truncated_normal(rng, 3.0, 0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(truncated_normal(rng, 8.0, 0.0, 5.0), 8.0);
}

TEST(Distributions, ExponentialMeanMatchesRate) {
  Rng rng{6};
  const auto m = sample_moments([&] { return exponential(rng, 0.25); });
  EXPECT_NEAR(m.mean, 4.0, 0.1);
}

TEST(Distributions, ExponentialIsPositive) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(exponential(rng, 2.0), 0.0);
}

TEST(Distributions, LognormalMedian) {
  Rng rng{8};
  std::vector<double> xs(20001);
  for (auto& x : xs) x = lognormal(rng, std::log(3600.0), 1.2);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(xs[10000] / 3600.0, 1.0, 0.1);
}

TEST(Distributions, ParetoBoundedBelowByScale) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(pareto(rng, 2.0, 1.5), 2.0);
}

TEST(Distributions, ParetoMeanForAlphaAboveOne) {
  Rng rng{10};
  // mean = alpha*xm/(alpha-1) = 3*1/(2) = 1.5
  const auto m = sample_moments([&] { return pareto(rng, 1.0, 3.0); }, 200000);
  EXPECT_NEAR(m.mean, 1.5, 0.05);
}

TEST(Distributions, PoissonZeroMean) {
  Rng rng{11};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(poisson(rng, 0.0), 0u);
}

TEST(Distributions, PoissonSmallMeanMoments) {
  Rng rng{12};
  const auto m =
      sample_moments([&] { return static_cast<double>(poisson(rng, 3.0)); });
  EXPECT_NEAR(m.mean, 3.0, 0.05);
  EXPECT_NEAR(m.variance, 3.0, 0.15);
}

TEST(Distributions, PoissonLargeMeanUsesNormalApprox) {
  Rng rng{13};
  const auto m =
      sample_moments([&] { return static_cast<double>(poisson(rng, 80.0)); });
  EXPECT_NEAR(m.mean, 80.0, 0.5);
  EXPECT_NEAR(m.variance, 80.0, 4.0);
}

TEST(Distributions, WeightedChoiceProportions) {
  Rng rng{14};
  const double w[3] = {1.0, 2.0, 7.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[weighted_choice(rng, w, 3)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.015);
}

TEST(Distributions, WeightedChoiceZeroWeightNeverPicked) {
  Rng rng{15};
  const double w[3] = {1.0, 0.0, 1.0};
  for (int i = 0; i < 10000; ++i) EXPECT_NE(weighted_choice(rng, w, 3), 1u);
}

TEST(Distributions, WeightedChoiceSingleEntry) {
  Rng rng{16};
  const double w[1] = {0.5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(weighted_choice(rng, w, 1), 0u);
}

/// Property sweep: every distribution is deterministic per seed.
class DistributionDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributionDeterminism, SameSeedSameDraws) {
  Rng a{GetParam()}, b{GetParam()};
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(normal01(a), normal01(b));
    EXPECT_DOUBLE_EQ(exponential(a, 1.5), exponential(b, 1.5));
    EXPECT_DOUBLE_EQ(lognormal(a, 1.0, 0.5), lognormal(b, 1.0, 0.5));
    EXPECT_DOUBLE_EQ(pareto(a, 1.0, 2.0), pareto(b, 1.0, 2.0));
    EXPECT_EQ(poisson(a, 5.0), poisson(b, 5.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionDeterminism,
                         ::testing::Values(0u, 1u, 42u, 20071001u,
                                           ~std::uint64_t{0}));

}  // namespace
}  // namespace easched::support
