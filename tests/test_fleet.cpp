// Tests for the cross-round incremental scheduling core (core/fleet.hpp):
//
//   - the headline differential: a persistent FleetState driven through
//     many mutated rounds must yield bit-identical score cells and
//     hill-climb decisions to a from-scratch legacy rebuild every round;
//   - end-to-end run identity (incremental vs reference policy, and 1 vs 4
//     solver threads on the incremental path);
//   - targeted dirty-journal behavior: maintenance flips, journal
//     deduplication, clean rounds re-reading nothing, clock-aged in-flight
//     operations caught by the force-reread scan, and persistent column
//     pruning;
//   - HostBucketIndex unit/property checks (margins, block maxima, band
//     histogram, conservative candidate bound);
//   - the kFleetSnapshot / kFleetIndex invariant rules: clean state passes,
//     seeded corruptions trip them.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "core/fleet.hpp"
#include "core/hill_climb.hpp"
#include "core/score_based_policy.hpp"
#include "core/score_matrix.hpp"
#include "core/solver_pool.hpp"
#include "experiments/runner.hpp"
#include "test_random_instances.hpp"
#include "validate/invariant_checker.hpp"

namespace easched::core {
namespace {

using datacenter::HostId;
using datacenter::VmId;
using easched::testing::make_job;
using easched::testing::make_random_instance;
using easched::testing::RandomInstance;
using easched::testing::SmallDc;

// ---- row translation --------------------------------------------------------
// Fleet-mode rows are HostIds, legacy rows are compacted placeable hosts:
// raw row indices differ between the layouts, so every comparison goes
// through host ids (virtual rows map to a sentinel).

constexpr HostId kVirtualSentinel = std::numeric_limits<HostId>::max();

HostId row_host(const ScoreModel& m, int r) {
  return r == m.virtual_row() ? kVirtualSentinel : m.host_at(r);
}

/// Bitwise cell equality between a fleet-mode and a legacy model of the
/// same round, plus column identity and the all-inf guarantee for
/// non-placeable fleet rows.
void expect_models_equal(const ScoreModel& fleet, const ScoreModel& legacy,
                         const datacenter::Datacenter& dc) {
  ASSERT_TRUE(fleet.fleet_mode());
  ASSERT_FALSE(legacy.fleet_mode());
  ASSERT_EQ(fleet.cols(), legacy.cols());
  for (int c = 0; c < legacy.cols(); ++c) {
    ASSERT_EQ(fleet.vm_at(c), legacy.vm_at(c)) << "column order diverged";
    ASSERT_EQ(fleet.movable(c), legacy.movable(c));
    ASSERT_EQ(row_host(fleet, fleet.original_row(c)),
              row_host(legacy, legacy.original_row(c)));
  }
  for (int lr = 0; lr < legacy.virtual_row(); ++lr) {
    const int fr = static_cast<int>(legacy.host_at(lr));
    for (int c = 0; c < legacy.cols(); ++c) {
      // EXPECT_EQ at zero tolerance: both layouts run the same arithmetic.
      ASSERT_EQ(fleet.cell(fr, c), legacy.cell(lr, c))
          << "cell diverged at host " << legacy.host_at(lr) << ", col " << c;
    }
  }
  // Rows the legacy layout dropped (non-placeable hosts) must be
  // constantly infinite in the fleet layout.
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    if (dc.placeable(h)) continue;
    for (int c = 0; c < fleet.cols(); ++c) {
      ASSERT_TRUE(is_inf_score(fleet.cell(static_cast<int>(h), c)))
          << "non-placeable host " << h << " has a finite cell";
    }
  }
}

/// Host-translated trace/plan equality between a fleet-mode and a legacy
/// solve: same columns, same hosts, bit-identical deltas, same final plan.
void expect_same_decisions(const HillClimbStats& sf, const HillClimbStats& sl,
                           const ScoreModel& fm, const ScoreModel& lm) {
  ASSERT_EQ(sf.trace.size(), sl.trace.size()) << "move counts diverged";
  for (std::size_t i = 0; i < sl.trace.size(); ++i) {
    ASSERT_EQ(sf.trace[i].col, sl.trace[i].col) << "move " << i;
    ASSERT_EQ(row_host(fm, sf.trace[i].from_row),
              row_host(lm, sl.trace[i].from_row))
        << "move " << i;
    ASSERT_EQ(row_host(fm, sf.trace[i].to_row),
              row_host(lm, sl.trace[i].to_row))
        << "move " << i;
    ASSERT_EQ(sf.trace[i].delta, sl.trace[i].delta) << "move " << i;
  }
  EXPECT_EQ(sf.moves, sl.moves);
  EXPECT_EQ(sf.migration_moves, sl.migration_moves);
  EXPECT_EQ(sf.hit_move_limit, sl.hit_move_limit);
  EXPECT_EQ(sf.total_gain, sl.total_gain);  // same deltas, same order
  ASSERT_EQ(fm.cols(), lm.cols());
  for (int c = 0; c < lm.cols(); ++c) {
    ASSERT_EQ(row_host(fm, fm.plan_row(c)), row_host(lm, lm.plan_row(c)))
        << "plans diverge at col " << c;
  }
}

// ---- round fuzzing ----------------------------------------------------------

workload::Job random_job(support::Rng& rng, double submit) {
  workload::Job job =
      make_job(100.0 * static_cast<double>(rng.uniform_int(1, 3)),
               rng.uniform(128, 1200), rng.uniform(2000, 60000),
               rng.uniform(1.2, 2.0), submit);
  if (rng.uniform01() < 0.3) job.fault_tolerance = rng.uniform01();
  if (rng.uniform01() < 0.1) job.software |= workload::kSwKvm;
  if (rng.uniform01() < 0.05) job.arch = workload::Arch::kPpc64;
  return job;
}

HillClimbLimits random_limits(support::Rng& rng) {
  HillClimbLimits limits;
  if (rng.uniform01() < 0.3) {
    limits.max_moves = static_cast<int>(rng.uniform_int(1, 6));
  }
  if (rng.uniform01() < 0.3) {
    limits.max_migration_moves = static_cast<int>(rng.uniform_int(0, 3));
  }
  if (rng.uniform01() < 0.3) limits.min_migration_gain = 35;
  return limits;
}

/// What the policy does between rounds, compressed: place the queued VMs
/// the (already-validated) plan put on real hosts, so the next round sees
/// the datacenter the decisions produced.
void apply_queued_placements(const ScoreModel& legacy, SmallDc& f,
                             std::vector<VmId>& queue) {
  std::vector<VmId> placed;
  for (int c = 0; c < legacy.cols(); ++c) {
    if (legacy.original_row(c) != legacy.virtual_row()) continue;
    const int plan = legacy.plan_row(c);
    if (plan == legacy.virtual_row()) continue;
    const HostId h = legacy.host_at(plan);
    const VmId v = legacy.vm_at(c);
    if (!f.dc.placeable(h) || !f.dc.fits(h, v)) continue;
    f.dc.place(v, h);
    placed.push_back(v);
  }
  std::erase_if(queue, [&placed](VmId v) {
    return std::find(placed.begin(), placed.end(), v) != placed.end();
  });
}

/// Random inter-round churn: advance the clock (operations complete, jobs
/// finish — all journaled through reallocate), flip maintenance on a
/// random host, admit fresh jobs.
void mutate_between_rounds(support::Rng& rng, SmallDc& f,
                           std::vector<VmId>& queue,
                           std::vector<unsigned char>& maint) {
  f.simulator.run_until(f.simulator.now() + rng.uniform(30, 1500));
  if (rng.uniform01() < 0.35) {
    const HostId h =
        static_cast<HostId>(rng.uniform_int(0, f.dc.num_hosts() - 1));
    maint[h] ^= 1;
    f.dc.set_maintenance(h, maint[h] != 0);
  }
  const int fresh = static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < fresh; ++i) {
    queue.push_back(f.dc.admit_job(random_job(rng, f.simulator.now())));
  }
}

class FleetDifferential : public ::testing::TestWithParam<std::uint64_t> {};

// The tentpole guarantee: a FleetState carried across mutated rounds
// produces the exact cells and the exact decisions of a full rebuild.
TEST_P(FleetDifferential, MultiRoundCellsAndDecisionsMatchLegacy) {
  const std::uint64_t seed = GetParam();
  support::Rng rng{seed};
  for (int instance = 0; instance < 12; ++instance) {
    RandomInstance inst = make_random_instance(rng, seed, instance);
    SCOPED_TRACE(inst.describe());
    SmallDc& f = *inst.fixture;
    std::vector<VmId> queue = inst.queue;
    std::vector<unsigned char> maint(f.dc.num_hosts(), 0);
    FleetState fleet;  // persists across every round of this instance

    for (int round = 0; round < 4; ++round) {
      SCOPED_TRACE(::testing::Message() << "round " << round);
      fleet.refresh(f.dc, queue);
      EXPECT_EQ(f.dc.fleet_dirty_count(), 0u);  // refresh drained it

      ScoreModel fm(fleet, f.dc, queue, inst.params, inst.migration);
      ScoreModel lm(f.dc, queue, inst.params, inst.migration);
      expect_models_equal(fm, lm, f.dc);
      if (::testing::Test::HasFatalFailure()) return;

      const HillClimbLimits limits = random_limits(rng);
      const HillClimbStats sf = hill_climb(fm, limits);
      const HillClimbStats sl = hill_climb(lm, limits);
      expect_same_decisions(sf, sl, fm, lm);
      if (::testing::Test::HasFatalFailure()) return;

      apply_queued_placements(lm, f, queue);
      mutate_between_rounds(rng, f, queue, maint);
    }
  }
}

// Threading must not change fleet-mode decisions: serial fleet, 4-thread
// fleet and the legacy reference all agree on one round. (Fresh FleetStates
// both take the full-init path, so sharing one drained journal is fine.)
TEST_P(FleetDifferential, ThreadedFleetMatchesSerialAndReference) {
  const std::uint64_t seed = GetParam() * 6151 + 11;
  support::Rng rng{seed};
  SolverPool pool4(4);
  for (int instance = 0; instance < 10; ++instance) {
    RandomInstance inst = make_random_instance(rng, seed, instance);
    SCOPED_TRACE(inst.describe());
    SmallDc& f = *inst.fixture;

    FleetState fs_ser, fs_thr;
    fs_ser.refresh(f.dc, inst.queue);
    fs_thr.refresh(f.dc, inst.queue);
    ScoreModel m_leg(f.dc, inst.queue, inst.params, inst.migration);
    ScoreModel m_ser(fs_ser, f.dc, inst.queue, inst.params, inst.migration);
    ScoreModel m_thr(fs_thr, f.dc, inst.queue, inst.params, inst.migration,
                     &pool4);

    const HillClimbLimits limits = random_limits(rng);
    HillClimbLimits l4 = limits;
    l4.pool = &pool4;
    const HillClimbStats s_leg = hill_climb(m_leg, limits);
    const HillClimbStats s_ser = hill_climb(m_ser, limits);
    const HillClimbStats s_thr = hill_climb(m_thr, l4);

    expect_same_decisions(s_ser, s_leg, m_ser, m_leg);
    if (::testing::Test::HasFatalFailure()) return;
    // Both fleet layouts index rows by HostId: traces compare raw.
    ASSERT_EQ(s_thr.trace.size(), s_ser.trace.size());
    for (std::size_t i = 0; i < s_ser.trace.size(); ++i) {
      ASSERT_TRUE(s_thr.trace[i] == s_ser.trace[i]) << "move " << i;
    }
    for (int c = 0; c < m_ser.cols(); ++c) {
      ASSERT_EQ(m_thr.plan_row(c), m_ser.plan_row(c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---- dirty-journal behavior -------------------------------------------------

TEST(FleetDirty, RefreshPicksUpMaintenanceFlip) {
  SmallDc f(3);
  f.admit_and_place(make_job(), 0);
  f.simulator.run_until(400.0);

  FleetState fleet;
  fleet.refresh(f.dc, {});
  ASSERT_EQ(fleet.snapshot().placeable[1], 1);

  f.dc.set_maintenance(1, true);
  EXPECT_GE(f.dc.fleet_dirty_count(), 1u);
  fleet.refresh(f.dc, {});
  EXPECT_EQ(fleet.snapshot().placeable[1], 0);
  EXPECT_EQ(fleet.index().free_cpu(1), -1.0);  // prunes everything
  EXPECT_GE(fleet.stats().last_reread, 1u);

  f.dc.set_maintenance(1, false);
  fleet.refresh(f.dc, {});
  EXPECT_EQ(fleet.snapshot().placeable[1], 1);
  EXPECT_GT(fleet.index().free_cpu(1), 0.0);
}

TEST(FleetDirty, JournalDeduplicates) {
  SmallDc f(3);
  FleetState fleet;
  fleet.refresh(f.dc, {});
  ASSERT_EQ(f.dc.fleet_dirty_count(), 0u);

  f.dc.set_maintenance(2, true);
  f.dc.set_maintenance(2, false);
  f.dc.set_maintenance(2, true);
  EXPECT_EQ(f.dc.fleet_dirty_count(), 1u);  // bounded by num_hosts
}

// A round with no datacenter changes re-reads nothing, and the matrix it
// produces is byte-for-byte the previous round's.
TEST(FleetDirty, CleanRoundRereadsNothingAndMatrixIsByteStable) {
  SmallDc f(4);
  f.admit_and_place(make_job(), 0);
  f.admit_and_place(make_job(200, 800), 1);
  f.simulator.run_until(400.0);  // operations settle: no force-rereads left
  std::vector<VmId> queue = {f.dc.admit_job(make_job(100, 256, 5000, 1.5,
                                                     f.simulator.now())),
                             f.dc.admit_job(make_job(200, 512, 8000, 1.5,
                                                     f.simulator.now()))};
  const ScoreParams params;  // use_sla off: persistent columns eligible

  FleetState fleet;
  fleet.refresh(f.dc, queue);
  ScoreModel a(fleet, f.dc, queue, params, /*migration_enabled=*/true);
  std::vector<double> cells_a;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) cells_a.push_back(a.cell(r, c));
  }

  fleet.refresh(f.dc, queue);
  EXPECT_EQ(fleet.stats().last_reread, 0u);  // clean dirty set

  ScoreModel b(fleet, f.dc, queue, params, /*migration_enabled=*/true);
  std::size_t i = 0;
  for (int r = 0; r < b.rows(); ++r) {
    for (int c = 0; c < b.cols(); ++c) {
      ASSERT_EQ(b.cell(r, c), cells_a[i++]) << "matrix drifted across a "
                                               "clean round at (" << r
                                            << ", " << c << ")";
    }
  }
}

// An in-flight operation's Pconc contribution ages with the clock without
// any Datacenter mutation; refresh's force-reread scan must catch it.
TEST(FleetDirty, InFlightOperationAgesWithClock) {
  SmallDc f(2);
  const VmId v = f.dc.admit_job(make_job());
  f.dc.place(v, 0);  // creation now in flight on host 0

  FleetState fleet;
  fleet.refresh(f.dc, {});
  const double conc0 = fleet.snapshot().conc_remaining_s[0];
  ASSERT_GT(conc0, 0.0);

  // Advance the clock to just before the creation completes: nothing is
  // dispatched, nothing journaled — but the remaining time shrank.
  f.simulator.run_until(f.simulator.now() + conc0 * 0.5);
  fleet.refresh(f.dc, {});
  EXPECT_GE(fleet.stats().last_reread, 1u);  // the out-of-band scan fired
  EXPECT_LT(fleet.snapshot().conc_remaining_s[0], conc0);

  // And the refreshed state satisfies the snapshot rule at the new time.
  validate::InvariantChecker ck;
  ck.check_fleet(fleet, f.dc, f.simulator.now());
  EXPECT_TRUE(ck.ok());
}

TEST(FleetDirty, PersistentColumnsFollowTheQueue) {
  SmallDc f(3);
  std::vector<VmId> queue;
  for (int i = 0; i < 3; ++i) {
    queue.push_back(f.dc.admit_job(make_job(100, 256 + 100 * i)));
  }
  const ScoreParams params;  // use_sla off: columns are persistable

  FleetState fleet;
  fleet.refresh(f.dc, queue);
  {
    ScoreModel m(fleet, f.dc, queue, params, /*migration_enabled=*/false);
    for (int r = 0; r < m.rows(); ++r) {
      for (int c = 0; c < m.cols(); ++c) (void)m.cell(r, c);
    }
  }
  EXPECT_EQ(fleet.col_cache_count(), 3u);

  // Two VMs leave the queue: their columns must be pruned at refresh.
  queue.resize(1);
  fleet.refresh(f.dc, queue);
  EXPECT_EQ(fleet.col_cache_count(), 1u);
  EXPECT_EQ(fleet.stats().cols_dropped, 2u);
}

// use_sla makes queued columns time-dependent; they must not persist.
TEST(FleetDirty, SlaColumnsAreNotPersisted) {
  SmallDc f(3);
  std::vector<VmId> queue = {f.dc.admit_job(make_job())};
  ScoreParams params;
  params.use_sla = true;

  FleetState fleet;
  fleet.refresh(f.dc, queue);
  ScoreModel m(fleet, f.dc, queue, params, /*migration_enabled=*/false);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) (void)m.cell(r, c);
  }
  EXPECT_EQ(fleet.col_cache_count(), 0u);
}

// ---- HostBucketIndex --------------------------------------------------------

FleetSnapshot uniform_snapshot(std::size_t n, double cap_cpu, double cap_mem) {
  FleetSnapshot snap;
  snap.resize(n);
  for (std::size_t h = 0; h < n; ++h) {
    snap.placeable[h] = 1;
    snap.cpu_cap[h] = cap_cpu;
    snap.mem_cap[h] = cap_mem;
  }
  return snap;
}

TEST(HostBucketIndex, MarginsBlocksAndBands) {
  // 70 hosts = two full kArgminBlock blocks plus a partial tail.
  const std::size_t n = 70;
  FleetSnapshot snap = uniform_snapshot(n, 400, 4096);
  for (std::size_t h = 0; h < n; ++h) {
    snap.cpu_res[h] = static_cast<double>(h % 5) * 80.0;
    snap.mem_res[h] = static_cast<double>(h % 3) * 1000.0;
    if (h % 7 == 0) snap.placeable[h] = 0;
  }
  HostBucketIndex index;
  index.reset(n);
  for (std::size_t h = 0; h < n; ++h) {
    index.update(static_cast<HostId>(h), snap);
  }

  int placeable = 0;
  for (std::size_t h = 0; h < n; ++h) {
    EXPECT_EQ(index.free_cpu(h),
              FleetState::expected_free_cpu(snap, static_cast<HostId>(h)));
    EXPECT_EQ(index.free_mem(h),
              FleetState::expected_free_mem(snap, static_cast<HostId>(h)));
    if (snap.placeable[h]) {
      ++placeable;
    } else {
      EXPECT_EQ(index.free_cpu(h), -1.0);
    }
  }
  const std::size_t nblocks = (n + kArgminBlock - 1) / kArgminBlock;
  ASSERT_EQ(index.block_free_cpu().size(), nblocks);
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    double best_cpu = -1.0, best_mem = -1.0;
    const std::size_t hi = std::min(n, (blk + 1) * kArgminBlock);
    for (std::size_t h = blk * kArgminBlock; h < hi; ++h) {
      best_cpu = std::max(best_cpu, index.free_cpu(h));
      best_mem = std::max(best_mem, index.free_mem(h));
    }
    EXPECT_EQ(index.block_free_cpu()[blk], best_cpu);
    EXPECT_EQ(index.block_free_mem()[blk], best_mem);
  }
  int counted = 0;
  for (int b = 0; b < HostBucketIndex::kBands; ++b) {
    counted += index.band_count(b);
  }
  EXPECT_EQ(counted, placeable);  // unplaceable hosts leave the histogram

  // Incremental update keeps everything consistent.
  snap.cpu_res[10] = 390.0;
  snap.placeable[14] = 0;
  index.update(10, snap);
  index.update(14, snap);
  EXPECT_EQ(index.free_cpu(10), FleetState::expected_free_cpu(snap, 10));
  EXPECT_EQ(index.free_cpu(14), -1.0);
}

TEST(HostBucketIndex, BandOfEdges) {
  EXPECT_EQ(HostBucketIndex::band_of(-1.0), -1);
  EXPECT_EQ(HostBucketIndex::band_of(0.0), 0);
  EXPECT_EQ(HostBucketIndex::band_of(HostBucketIndex::kBandWidthPct - 0.01),
            0);
  EXPECT_EQ(HostBucketIndex::band_of(HostBucketIndex::kBandWidthPct), 1);
  EXPECT_EQ(HostBucketIndex::band_of(1e9), HostBucketIndex::kBands - 1);
}

// The histogram bound may over-count (band granularity, the saturated top
// band) but must never under-count true candidates.
TEST(HostBucketIndex, CandidateUpperBoundIsConservative) {
  support::Rng rng{4242};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 200));
    FleetSnapshot snap = uniform_snapshot(n, 1600, 8192);
    for (std::size_t h = 0; h < n; ++h) {
      snap.cpu_res[h] = rng.uniform(0, 1800);  // some hosts oversubscribed
      if (rng.uniform01() < 0.1) snap.placeable[h] = 0;
    }
    HostBucketIndex index;
    index.reset(n);
    for (std::size_t h = 0; h < n; ++h) {
      index.update(static_cast<HostId>(h), snap);
    }
    for (double need : {10.0, 100.0, 333.0, 900.0, 1700.0}) {
      int exact = 0;
      for (std::size_t h = 0; h < n; ++h) {
        if (index.free_cpu(h) >= need) ++exact;
      }
      EXPECT_GE(index.candidate_upper_bound(need), exact)
          << "n=" << n << " need=" << need;
    }
  }
}

// ---- invariant rules --------------------------------------------------------

std::uint64_t other_rule_count(const validate::InvariantChecker& ck,
                               validate::Rule rule) {
  std::uint64_t total = 0;
  for (int i = 0; i < validate::kNumRules; ++i) {
    if (static_cast<validate::Rule>(i) != rule) {
      total += ck.count(static_cast<validate::Rule>(i));
    }
  }
  return total;
}

TEST(FleetChecker, CleanFleetPasses) {
  SmallDc f(4);
  f.admit_and_place(make_job(), 0);
  f.admit_and_place(make_job(200, 900), 2);
  f.simulator.run_until(400.0);
  FleetState fleet;
  fleet.refresh(f.dc, {});

  validate::InvariantChecker ck;
  ck.check_fleet(fleet, f.dc, f.simulator.now());
  EXPECT_TRUE(ck.ok());
  EXPECT_EQ(ck.checks_run(), 1u);
}

TEST(FleetChecker, CatchesCorruptedSnapshot) {
  SmallDc f(3);
  f.admit_and_place(make_job(), 1);
  f.simulator.run_until(400.0);
  FleetState fleet;
  fleet.refresh(f.dc, {});
  fleet.debug_corrupt_snapshot(1, 13.0);

  validate::InvariantChecker ck;
  ck.check_fleet(fleet, f.dc, f.simulator.now());
  // The index mirrors the (now corrupted) snapshot it was NOT rebuilt
  // from, so kFleetIndex legitimately co-fires; the snapshot rule is the
  // one that names the root cause.
  EXPECT_EQ(ck.count(validate::Rule::kFleetSnapshot), 1u);
  EXPECT_FALSE(ck.ok());
}

TEST(FleetChecker, CatchesCorruptedIndex) {
  SmallDc f(3);
  f.admit_and_place(make_job(), 0);
  f.simulator.run_until(400.0);
  FleetState fleet;
  fleet.refresh(f.dc, {});
  fleet.debug_corrupt_index(2, 5.0);

  validate::InvariantChecker ck;
  ck.check_fleet(fleet, f.dc, f.simulator.now());
  EXPECT_EQ(ck.count(validate::Rule::kFleetIndex), 1u);
  EXPECT_EQ(other_rule_count(ck, validate::Rule::kFleetIndex), 0u);
}

// ---- end-to-end -------------------------------------------------------------

experiments::RunConfig fleet_run_config(bool incremental, int threads = 0) {
  ScoreBasedConfig cfg = ScoreBasedConfig::sb();
  cfg.incremental = incremental;
  cfg.solver_threads = threads;
  experiments::RunConfig config = easched::testing::small_config("SB");
  config.policy_instance = std::make_unique<ScoreBasedPolicy>(cfg);
  return config;
}

void expect_same_run(const experiments::RunResult& a,
                     const experiments::RunResult& b) {
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.report.energy_kwh, b.report.energy_kwh);  // bitwise
  EXPECT_EQ(a.report.satisfaction, b.report.satisfaction);
  EXPECT_EQ(a.report.migrations, b.report.migrations);
  EXPECT_EQ(a.report.creations, b.report.creations);
  EXPECT_EQ(a.report.turn_ons, b.report.turn_ons);
  EXPECT_EQ(a.report.turn_offs, b.report.turn_offs);
  EXPECT_EQ(a.report.jobs_finished, b.report.jobs_finished);
}

// The whole-run guarantee behind the perf work: the incremental core
// changes nothing about what the policy decides.
TEST(FleetEndToEnd, IncrementalRunMatchesReferenceRun) {
  const auto jobs = easched::testing::small_week();
  const auto reference =
      experiments::run_experiment(jobs, fleet_run_config(false));
  const auto incremental =
      experiments::run_experiment(jobs, fleet_run_config(true));
  expect_same_run(incremental, reference);
}

TEST(FleetEndToEnd, SolverThreadCountDoesNotChangeDecisions) {
  const auto jobs = easched::testing::small_week();
  const auto serial =
      experiments::run_experiment(jobs, fleet_run_config(true, 1));
  const auto threaded =
      experiments::run_experiment(jobs, fleet_run_config(true, 4));
  expect_same_run(threaded, serial);
}

// Full run with the invariant checker on: every round's refresh is checked
// against a fresh re-read (the policy's check_fleet hook), and none may
// diverge.
TEST(FleetEndToEnd, ValidatedIncrementalRunIsViolationFree) {
  const auto jobs = easched::testing::small_week();
  experiments::RunConfig config = fleet_run_config(true);
  config.validate.enabled = true;
  const auto result = experiments::run_experiment(jobs, std::move(config));
  EXPECT_TRUE(result.violations.empty())
      << result.violations.size() << " violations, first: "
      << (result.violations.empty() ? std::string()
                                    : result.violations.front().message);
  EXPECT_GT(result.invariant_checks, 0u);
}

}  // namespace
}  // namespace easched::core
