// Unit tests for the event queue: ordering, tie-breaking, lazy cancel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace easched::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(7.25, [] {});
  EXPECT_DOUBLE_EQ(q.pop().time, 7.25);
}

TEST(EventQueue, NextTimeSeesEarliestLive) {
  EventQueue q;
  q.push(9.0, [] {});
  const EventId early = q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 9.0);
}

TEST(EventQueue, CancelRemovesFromLiveCount) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, CancelledEventNeverFires) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  q.cancel(id);
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(id);
  q.cancel(id);  // no-op
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelNoEventIsIgnored) {
  EventQueue q;
  q.cancel(kNoEvent);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsIgnored) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop().action();
  q.cancel(id);  // already fired
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.push(i, [] {}));
  for (EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, IdsAreUnique) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(1.0, [] {});
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNoEvent);
}

TEST(EventQueue, InterleavedPushPopCancelStress) {
  EventQueue q;
  int fired = 0;
  std::vector<EventId> cancelable;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      const EventId id =
          q.push(round * 100.0 + i, [&fired] { ++fired; });
      if (i % 3 == 0) cancelable.push_back(id);
    }
    if (round % 2 == 0) {
      for (EventId id : cancelable) q.cancel(id);
      cancelable.clear();
    }
    for (int i = 0; i < 5 && !q.empty(); ++i) q.pop().action();
  }
  for (EventId id : cancelable) q.cancel(id);
  while (!q.empty()) q.pop().action();
  // 50 rounds x 20 events, minus the ~1/3 cancelled (though some of those
  // fired before cancellation). Just assert sanity bounds and emptiness.
  EXPECT_GT(fired, 500);
  EXPECT_LE(fired, 1000);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyEventsPopSorted) {
  EventQueue q;
  // Pseudo-random times, verify globally sorted pop order.
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.push(static_cast<double>(x % 100000), [] {});
  }
  double last = -1;
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
}  // namespace easched::sim
