// End-to-end integration tests: whole simulated runs through the public
// experiment runner, cross-checking metrics consistency, determinism and
// the headline orderings the paper's evaluation rests on.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/score_based_policy.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "sched/driver.hpp"
#include "test_fixtures.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace easched::experiments {
namespace {

using easched::testing::small_config;
using easched::testing::small_week;

TEST(Integration, EveryPolicyCompletesTheWorkload) {
  const auto jobs = small_week();
  for (const char* policy :
       {"RD", "RR", "BF", "DBF", "SB0", "SB1", "SB2", "SB", "SB-full"}) {
    const auto res = run_experiment(jobs, small_config(policy));
    EXPECT_EQ(res.jobs_finished, jobs.size()) << policy;
    EXPECT_FALSE(res.hit_horizon) << policy;
    EXPECT_GT(res.report.energy_kwh, 0.0) << policy;
    EXPECT_GT(res.report.satisfaction, 0.0) << policy;
  }
}

TEST(Integration, IdenticalSeedsIdenticalResults) {
  const auto jobs = small_week();
  const auto a = run_experiment(jobs, small_config("SB"));
  const auto b = run_experiment(jobs, small_config("SB"));
  EXPECT_DOUBLE_EQ(a.report.energy_kwh, b.report.energy_kwh);
  EXPECT_DOUBLE_EQ(a.report.satisfaction, b.report.satisfaction);
  EXPECT_DOUBLE_EQ(a.report.cpu_hours, b.report.cpu_hours);
  EXPECT_EQ(a.report.migrations, b.report.migrations);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
}

TEST(Integration, DifferentSeedsPerturbResults) {
  const auto a = run_experiment(small_week(1), small_config("BF"));
  const auto b = run_experiment(small_week(2), small_config("BF"));
  EXPECT_NE(a.report.energy_kwh, b.report.energy_kwh);
}

TEST(Integration, CpuHoursCoverTheWorkloadForConsolidatingPolicies) {
  // Consolidating policies never oversubscribe, so allocated CPU must be
  // at least the workload's dedicated core-hours (plus overhead) and not
  // wildly more.
  const auto jobs = small_week();
  const auto demand = workload::compute_stats(jobs).core_hours;
  for (const char* policy : {"BF", "SB0", "SB"}) {
    const auto res = run_experiment(jobs, small_config(policy));
    EXPECT_GE(res.report.cpu_hours, demand * 0.999) << policy;
    EXPECT_LE(res.report.cpu_hours, demand * 1.15) << policy;
  }
}

TEST(Integration, ContendingPoliciesBurnMoreCpu) {
  const auto jobs = small_week();
  const auto demand = workload::compute_stats(jobs).core_hours;
  const auto rd = run_experiment(jobs, small_config("RD"));
  EXPECT_GT(rd.report.cpu_hours, demand * 1.05);
}

TEST(Integration, ConsolidationOrderingHolds) {
  // The paper's core ordering: consolidating policies beat spreading ones
  // on energy; the migrating score-based policy is at least as good as BF.
  const auto jobs = small_week();
  const auto bf = run_experiment(jobs, small_config("BF"));
  const auto rr = run_experiment(jobs, small_config("RR"));
  const auto rd = run_experiment(jobs, small_config("RD"));
  const auto sb = run_experiment(jobs, small_config("SB"));
  EXPECT_LT(bf.report.energy_kwh, rr.report.energy_kwh);
  EXPECT_LT(bf.report.energy_kwh, rd.report.energy_kwh);
  EXPECT_LE(sb.report.energy_kwh, bf.report.energy_kwh * 1.02);
  EXPECT_GE(bf.report.satisfaction, rd.report.satisfaction);
}

TEST(Integration, AggressiveThresholdsSavePower) {
  const auto jobs = small_week();
  auto lazy = small_config("SB");
  lazy.driver.power.lambda_min = 0.10;
  lazy.driver.power.lambda_max = 0.50;
  auto aggressive = small_config("SB");
  aggressive.driver.power.lambda_min = 0.50;
  aggressive.driver.power.lambda_max = 0.95;
  const auto a = run_experiment(jobs, std::move(lazy));
  const auto b = run_experiment(jobs, std::move(aggressive));
  EXPECT_LT(b.report.energy_kwh, a.report.energy_kwh);
  EXPECT_LE(b.report.satisfaction, a.report.satisfaction + 0.5);
}

TEST(Integration, ControllerDisabledKeepsFleetOn) {
  const auto jobs = small_week();
  auto config = small_config("BF");
  config.driver.power.enabled = false;
  const auto res = run_experiment(jobs, std::move(config));
  EXPECT_NEAR(res.report.avg_online,
              static_cast<double>(evaluation_hosts(4, 10, 6).size()), 0.01);

  auto with = small_config("BF");
  const auto controlled = run_experiment(jobs, std::move(with));
  // Section V: "turning on and off machines in a dynamic way can be used
  // to dramatically increase the energy efficiency". On this small, busy
  // fleet the margin is smaller than on the 100-node datacenter.
  EXPECT_LT(controlled.report.energy_kwh, 0.9 * res.report.energy_kwh);
  EXPECT_LT(controlled.report.avg_online, res.report.avg_online);
}

TEST(Integration, MetricsInternallyConsistent) {
  const auto jobs = small_week();
  const auto res = run_experiment(jobs, small_config("SB"));
  const auto& r = res.report;
  EXPECT_GE(r.avg_online, r.avg_working - 1e-9);
  EXPECT_LE(r.satisfaction, 100.0);
  EXPECT_GE(r.satisfaction, 0.0);
  EXPECT_GE(r.delay_pct, 0.0);
  EXPECT_EQ(r.jobs_finished, jobs.size());
  EXPECT_GT(r.duration_s, 0.0);
  // Energy is bounded by the whole fleet running flat out.
  const double fleet_max_kwh =
      20 * 304.0 * r.duration_s / sim::kHour / 1000.0;
  EXPECT_LT(r.energy_kwh, fleet_max_kwh);
}

TEST(Integration, ConsolidatingPoliciesNeverOversubscribe) {
  // The Pres/occupation guard is a hard invariant for BF and the
  // score-based family; RD deliberately violates it. Run via the low-level
  // pieces so the recorder's oversubscription gauge stays accessible.
  const auto jobs = small_week();
  for (const char* policy : {"BF", "SB0", "SB"}) {
    sim::Simulator simulator;
    auto dc_config = small_config(policy).datacenter;
    metrics::Recorder recorder(dc_config.hosts.size());
    datacenter::Datacenter dc(simulator, dc_config, recorder);
    auto p = make_policy(policy);
    sched::SchedulerDriver driver(simulator, dc, *p, {});
    driver.submit_workload(jobs);
    driver.on_all_done = [&simulator] { simulator.stop(); };
    simulator.run();
    EXPECT_LE(recorder.max_oversubscription, 1.0 + 1e-6) << policy;
  }
  {
    sim::Simulator simulator;
    auto dc_config = small_config("RD").datacenter;
    metrics::Recorder recorder(dc_config.hosts.size());
    datacenter::Datacenter dc(simulator, dc_config, recorder);
    auto p = make_policy("RD");
    sched::SchedulerDriver driver(simulator, dc, *p, {});
    driver.submit_workload(jobs);
    driver.on_all_done = [&simulator] { simulator.stop(); };
    simulator.run();
    EXPECT_GT(recorder.max_oversubscription, 1.0);
  }
}

TEST(Integration, MigratingPoliciesReportMigrations) {
  const auto jobs = small_week();
  const auto sb = run_experiment(jobs, small_config("SB"));
  const auto sb0 = run_experiment(jobs, small_config("SB0"));
  EXPECT_GT(sb.report.migrations, 0u);
  EXPECT_EQ(sb0.report.migrations, 0u);
}

TEST(Integration, RunnerRejectsUnknownPolicy) {
  const auto jobs = small_week();
  EXPECT_THROW(run_experiment(jobs, small_config("NOPE")),
               std::invalid_argument);
}

TEST(Integration, CustomPolicyInstanceIsUsed) {
  const auto jobs = small_week();
  auto config = small_config("ignored");
  auto custom = core::ScoreBasedConfig::sb();
  custom.label = "custom-label";
  config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(custom);
  const auto res = run_experiment(jobs, std::move(config));
  EXPECT_EQ(res.report.policy, "custom-label");
}

TEST(Integration, FailureInjectionRunCompletes) {
  auto jobs = small_week();
  auto config = small_config("SB-full");
  for (std::size_t i = 0; i < config.datacenter.hosts.size(); i += 3) {
    config.datacenter.hosts[i].reliability = 0.97;
  }
  config.datacenter.inject_failures = true;
  config.datacenter.mean_repair_s = sim::kHour;
  config.datacenter.checkpoint.enabled = true;
  const auto res = run_experiment(jobs, std::move(config));
  EXPECT_EQ(res.jobs_finished, jobs.size());
  EXPECT_FALSE(res.hit_horizon);
}

TEST(Integration, SwfTraceDrivesSimulation) {
  // Write the synthetic workload as SWF, re-read it and run: exercises the
  // full trace path end to end.
  const auto original = small_week();
  std::stringstream buffer;
  workload::write_swf(buffer, original);
  const auto reread = workload::read_swf(buffer);
  ASSERT_FALSE(reread.empty());
  const auto res = run_experiment(reread, small_config("BF"));
  EXPECT_EQ(res.jobs_finished, reread.size());
}

/// Runs the SB policy over `jobs` on a small fixed fleet and returns one
/// line per applied action, in application order.
std::vector<std::string> sb_placement_trace(const workload::Workload& jobs) {
  sim::Simulator simulator;
  datacenter::DatacenterConfig dconf;
  dconf.hosts = evaluation_hosts(3, 6, 3);
  dconf.seed = 5;
  metrics::Recorder recorder(dconf.hosts.size());
  datacenter::Datacenter dc(simulator, dconf, recorder);
  core::ScoreBasedPolicy policy(core::ScoreBasedConfig::sb());
  sched::SchedulerDriver driver(simulator, dc, policy, sched::DriverConfig{});

  std::vector<std::string> lines;
  driver.on_actions = [&lines](sim::SimTime t,
                               const std::vector<sched::Action>& actions) {
    for (const sched::Action& a : actions) {
      char buf[96];
      std::snprintf(
          buf, sizeof buf, "%.3f %s vm=%lu host=%lu", t,
          a.kind == sched::Action::Kind::kPlace ? "place" : "migrate",
          static_cast<unsigned long>(a.vm), static_cast<unsigned long>(a.host));
      lines.emplace_back(buf);
    }
  };
  driver.submit_workload(jobs);
  driver.on_all_done = [&simulator] { simulator.stop(); };
  simulator.run_until(90 * sim::kDay);
  EXPECT_TRUE(driver.all_done());
  return lines;
}

// Golden-trace regression: the exact per-round placement/migration decisions
// of the SB policy on a checked-in SWF fixture must not drift. Any change to
// score arithmetic, solver order or driver validation that alters even one
// decision fails this test. To regenerate both fixture and expectation after
// an *intentional* behavior change:
//   EASCHED_REGEN_GOLDEN=1 ./tests/test_integration \
//       --gtest_filter='*GoldenTrace*'
TEST(Integration, GoldenTraceSbPolicy) {
  const std::string dir = EASCHED_TEST_DATA_DIR;
  const std::string swf_path = dir + "/golden_small.swf";
  const std::string expected_path = dir + "/golden_trace_sb.expected";
  const bool regen = std::getenv("EASCHED_REGEN_GOLDEN") != nullptr;

  if (regen) {
    workload::SyntheticConfig c;
    c.seed = 4242;
    c.span_seconds = 0.5 * sim::kDay;
    c.mean_jobs_per_hour = 6;
    std::ofstream swf(swf_path);
    ASSERT_TRUE(swf.is_open()) << swf_path;
    workload::write_swf(swf, workload::generate(c));
  }

  const auto jobs = workload::read_swf_file(swf_path);
  ASSERT_FALSE(jobs.empty());
  const auto lines = sb_placement_trace(jobs);
  ASSERT_FALSE(lines.empty());

  if (regen) {
    std::ofstream out(expected_path);
    ASSERT_TRUE(out.is_open()) << expected_path;
    for (const std::string& line : lines) out << line << '\n';
  }

  std::ifstream in(expected_path);
  ASSERT_TRUE(in.is_open())
      << expected_path << " missing; regenerate with EASCHED_REGEN_GOLDEN=1";
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);) expected.push_back(line);

  ASSERT_EQ(lines.size(), expected.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], expected[i]) << "trace diverges at line " << i;
  }
}

}  // namespace
}  // namespace easched::experiments
