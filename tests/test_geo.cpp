// Tests for the multi-datacenter energy profiles and dispatcher.
#include <gtest/gtest.h>

#include "geo/dispatcher.hpp"
#include "workload/synthetic.hpp"

namespace easched::geo {
namespace {

// ---- EnergyProfile ----------------------------------------------------------

TEST(EnergyProfile, PriceOscillatesAroundBase) {
  EnergyProfile p;
  double lo = 1e9, hi = -1e9, sum = 0;
  const int n = 24;
  for (int h = 0; h < n; ++h) {
    const double price = p.price_eur_kwh(h * sim::kHour);
    lo = std::min(lo, price);
    hi = std::max(hi, price);
    sum += price;
  }
  EXPECT_NEAR(sum / n, p.base_price_eur_kwh, 0.01);
  EXPECT_NEAR(hi, p.base_price_eur_kwh * (1 + p.price_amplitude), 0.005);
  EXPECT_NEAR(lo, p.base_price_eur_kwh * (1 - p.price_amplitude), 0.005);
}

TEST(EnergyProfile, PeaksAtConfiguredLocalHour) {
  EnergyProfile p;
  p.price_peak_hour = 12.0;
  p.timezone_offset_h = 0.0;
  const double at_noon = p.price_eur_kwh(12 * sim::kHour);
  const double at_midnight = p.price_eur_kwh(0.0);
  EXPECT_GT(at_noon, at_midnight);
  EXPECT_NEAR(at_noon, p.base_price_eur_kwh * (1 + p.price_amplitude), 1e-9);
}

TEST(EnergyProfile, TimezoneShiftsTheCurve) {
  EnergyProfile utc;
  EnergyProfile east = utc;
  east.timezone_offset_h = 6.0;
  // The east site sees its peak 6 hours of absolute time earlier.
  EXPECT_NEAR(east.price_eur_kwh(0.0), utc.price_eur_kwh(6 * sim::kHour),
              1e-9);
}

TEST(EnergyProfile, DailyPeriodicity) {
  EnergyProfile p;
  for (double t = 0; t < sim::kDay; t += sim::kHour) {
    EXPECT_NEAR(p.price_eur_kwh(t), p.price_eur_kwh(t + 3 * sim::kDay), 1e-9);
    EXPECT_NEAR(p.carbon_g_kwh(t), p.carbon_g_kwh(t + 3 * sim::kDay), 1e-9);
  }
}

// ---- dispatcher -------------------------------------------------------------

GeoConfig two_sites(DispatchPolicy dispatch) {
  GeoConfig config;
  for (int i = 0; i < 2; ++i) {
    SiteConfig site;
    site.name = i == 0 ? "alpha" : "beta";
    site.datacenter.hosts.assign(8, datacenter::HostSpec::medium());
    site.datacenter.seed = 11 + static_cast<std::uint64_t>(i);
    site.policy = "BF";
    site.energy.timezone_offset_h = i * 12.0;  // opposite day phases
    config.sites.push_back(std::move(site));
  }
  config.dispatch = dispatch;
  config.horizon_s = 30 * sim::kDay;
  return config;
}

workload::Workload small_jobs() {
  workload::SyntheticConfig c;
  c.seed = 3;
  c.span_seconds = sim::kDay;
  c.mean_jobs_per_hour = 4;
  return workload::generate(c);
}

TEST(GeoDispatcher, AllJobsFinishAcrossSites) {
  const auto jobs = small_jobs();
  const auto result = run_geo(jobs, two_sites(DispatchPolicy::kRoundRobin));
  std::size_t finished = 0, dispatched = 0;
  for (const auto& site : result.sites) {
    finished += site.report.jobs_finished;
    dispatched += site.jobs_dispatched;
  }
  EXPECT_EQ(finished, jobs.size());
  EXPECT_EQ(dispatched, jobs.size());
  EXPECT_FALSE(result.hit_horizon);
}

TEST(GeoDispatcher, RoundRobinSplitsEvenly) {
  const auto jobs = small_jobs();
  const auto result = run_geo(jobs, two_sites(DispatchPolicy::kRoundRobin));
  const auto a = result.sites[0].jobs_dispatched;
  const auto b = result.sites[1].jobs_dispatched;
  EXPECT_LE(a > b ? a - b : b - a, 1u);
}

TEST(GeoDispatcher, CheapestFollowsTheTariff) {
  const auto jobs = small_jobs();
  const auto result =
      run_geo(jobs, two_sites(DispatchPolicy::kCheapestEnergy));
  // With opposite-phase tariffs both sites get work, but selection must be
  // price-driven: recompute the expected site for each arrival.
  const auto config = two_sites(DispatchPolicy::kCheapestEnergy);
  std::size_t expected_alpha = 0;
  for (const auto& job : jobs) {
    const double pa = config.sites[0].energy.price_eur_kwh(job.submit);
    const double pb = config.sites[1].energy.price_eur_kwh(job.submit);
    if (pa < pb) ++expected_alpha;
  }
  EXPECT_EQ(result.sites[0].jobs_dispatched, expected_alpha);
}

TEST(GeoDispatcher, CostAccountingIsPositiveAndBounded) {
  const auto jobs = small_jobs();
  const auto result = run_geo(jobs, two_sites(DispatchPolicy::kLeastLoaded));
  EXPECT_GT(result.total_cost_eur, 0.0);
  EXPECT_GT(result.total_carbon_kg, 0.0);
  // Sanity: cost within [min, max] tariff times total energy.
  const double min_price = 0.12 * 0.7, max_price = 0.12 * 1.3;
  EXPECT_GE(result.total_cost_eur, result.total_energy_kwh * min_price * 0.9);
  EXPECT_LE(result.total_cost_eur, result.total_energy_kwh * max_price * 1.1);
}

TEST(GeoDispatcher, AggregateSatisfactionIsWeightedMean) {
  const auto jobs = small_jobs();
  const auto result = run_geo(jobs, two_sites(DispatchPolicy::kRoundRobin));
  double weighted = 0;
  std::size_t count = 0;
  for (const auto& site : result.sites) {
    weighted +=
        site.report.satisfaction * static_cast<double>(site.report.jobs_finished);
    count += site.report.jobs_finished;
  }
  EXPECT_NEAR(result.mean_satisfaction,
              weighted / static_cast<double>(count), 1e-9);
}

TEST(GeoDispatcher, PolicyNames) {
  EXPECT_STREQ(to_string(DispatchPolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(DispatchPolicy::kCheapestEnergy), "cheapest-energy");
  EXPECT_STREQ(to_string(DispatchPolicy::kGreenest), "greenest");
  EXPECT_STREQ(to_string(DispatchPolicy::kLeastLoaded), "least-loaded");
}

}  // namespace
}  // namespace easched::geo
