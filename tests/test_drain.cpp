// Tests for the maintenance-drain orchestration and queue-ordering
// disciplines of the driver.
#include <gtest/gtest.h>

#include "policies/backfilling.hpp"
#include "sched/driver.hpp"
#include "test_fixtures.hpp"

namespace easched::sched {
namespace {

using datacenter::HostId;
using datacenter::HostState;
using datacenter::VmId;
using datacenter::VmState;
using easched::testing::SmallDc;
using easched::testing::make_job;

struct DrainHarness : SmallDc {
  policies::BackfillingPolicy policy;
  std::unique_ptr<SchedulerDriver> driver;

  explicit DrainHarness(std::size_t n, DriverConfig config = {})
      : SmallDc(n) {
    driver = std::make_unique<SchedulerDriver>(simulator, dc, policy, config);
  }
};

TEST(Drain, EmptyHostPowersOffImmediately) {
  DrainHarness f(3);
  f.driver->drain_host(2);
  EXPECT_FALSE(f.dc.host(2).is_placeable());
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.dc.host(2).state, HostState::kOff);
  EXPECT_FALSE(f.driver->is_draining(2));
}

TEST(Drain, EvacuatesRunningVms) {
  DrainHarness f(3);
  const VmId v = f.admit_and_place(make_job(100, 512, 50000), 0);
  f.simulator.run_until(100.0);  // running
  f.driver->drain_host(0);
  f.simulator.run_until(400.0);  // migration (60 s) + shutdown (10 s)
  EXPECT_EQ(f.dc.vm(v).state, VmState::kRunning);
  EXPECT_NE(f.dc.vm(v).host, 0u);
  EXPECT_EQ(f.dc.host(0).state, HostState::kOff);
}

TEST(Drain, WaitsForInFlightCreation) {
  DrainHarness f(2);
  const VmId v = f.admit_and_place(make_job(100, 512, 5000), 0);
  f.driver->drain_host(0);  // creation (40 s) still in flight
  EXPECT_EQ(f.dc.vm(v).state, VmState::kCreating);
  f.simulator.run_until(500.0);
  // After the creation completed, the periodic round evicted the VM.
  EXPECT_NE(f.dc.vm(v).host, 0u);
  EXPECT_EQ(f.dc.host(0).state, HostState::kOff);
}

TEST(Drain, DrainingHostReceivesNoPlacements) {
  DrainHarness f(2);
  f.driver->drain_host(0);
  workload::Workload jobs;
  for (int i = 0; i < 3; ++i) {
    workload::Job j = make_job(100, 512, 1000);
    j.submit = 10.0 + i;
    j.id = static_cast<std::uint32_t>(i);
    jobs.push_back(j);
  }
  f.driver->submit_workload(jobs);
  f.simulator.run_until(200.0);
  EXPECT_TRUE(f.dc.host(0).residents.empty());
  EXPECT_EQ(f.dc.host(1).residents.size(), 3u);
}

TEST(Drain, ControllerDoesNotRebootDrainedHost) {
  DrainHarness f(2);
  f.driver->drain_host(0);
  f.simulator.run_until(20.0);
  ASSERT_EQ(f.dc.host(0).state, HostState::kOff);
  // Saturate host 1 so the controller is desperate for capacity.
  workload::Workload jobs;
  workload::Job j = make_job(400, 512, 2000);
  j.submit = 30;
  jobs.push_back(j);
  workload::Job j2 = make_job(400, 512, 2000);
  j2.submit = 31;
  j2.id = 1;
  jobs.push_back(j2);
  f.driver->submit_workload(jobs);
  f.simulator.run_until(1000.0);
  EXPECT_EQ(f.dc.host(0).state, HostState::kOff);  // stayed down
}

TEST(Drain, CancelRestoresPlaceability) {
  DrainHarness f(2);
  const VmId v = f.admit_and_place(make_job(400, 512, 50000), 1);
  f.simulator.run_until(100.0);
  f.driver->drain_host(0);
  f.simulator.run_until(150.0);
  f.driver->cancel_drain(0);
  EXPECT_FALSE(f.driver->is_draining(0));
  // Host 0 is off (drain completed before cancel) but placeable again once
  // the controller powers it up for queued work.
  workload::Workload jobs;
  workload::Job j = make_job(400, 512, 1000);
  j.submit = 200;
  jobs.push_back(j);
  f.driver->submit_workload(jobs);
  f.simulator.run_until(5000.0);
  EXPECT_EQ(f.driver->finished(), 1u);
  (void)v;
}

TEST(Drain, CancelDuringPendingMigrationStrandsNothing) {
  DrainHarness f(2);
  const VmId v = f.admit_and_place(make_job(100, 512, 50000), 0);
  f.simulator.run_until(100.0);  // creation (40 s) done, running
  f.driver->drain_host(0);       // starts the evacuation migration (60 s)
  ASSERT_EQ(f.dc.vm(v).state, VmState::kMigrating);

  f.simulator.run_until(130.0);  // transfer still in flight
  ASSERT_EQ(f.dc.vm(v).state, VmState::kMigrating);
  f.driver->cancel_drain(0);

  // The cancel must take effect immediately: the host accepts placements
  // again (the pending outgoing transfer is no reason to refuse work).
  EXPECT_FALSE(f.driver->is_draining(0));
  EXPECT_TRUE(f.dc.host(0).is_placeable());

  // The in-flight migration still completes normally; the VM is never
  // stranded in the Migrating state or bounced back to the queue.
  f.simulator.run_until(1000.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kRunning);
  EXPECT_EQ(f.dc.vm(v).host, 1u);

  // And the cancelled host keeps serving: a new job can land on it.
  workload::Workload jobs;
  workload::Job j = make_job(100, 512, 500);
  j.submit = 1100;
  jobs.push_back(j);
  f.driver->submit_workload(jobs);
  f.simulator.run_until(1200.0);
  bool placed_somewhere = false;
  for (VmId u = 0; u < f.dc.num_vms(); ++u) {
    if (u != v && f.dc.vm(u).state != VmState::kQueued) placed_somewhere = true;
  }
  EXPECT_TRUE(placed_somewhere);
}

TEST(Drain, IsIdempotent) {
  DrainHarness f(2);
  f.driver->drain_host(0);
  f.driver->drain_host(0);
  EXPECT_TRUE(f.driver->is_draining(0) || f.dc.host(0).state != HostState::kOn);
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.dc.host(0).state, HostState::kOff);
}

// ---- queue ordering ---------------------------------------------------------

/// Builds a harness where jobs must *wait together* before the single host
/// becomes available, so the queue discipline decides who goes first: the
/// host starts by shutting down, the burst arrives while it is off, and the
/// power controller boots it back up (300 s) for the queued work.
struct BurstHarness : DrainHarness {
  explicit BurstHarness(QueueOrder order)
      : DrainHarness(1, [order] {
          DriverConfig config;
          config.queue_order = order;
          return config;
        }()) {
    dc.power_off(0);
  }

  void submit_burst() {
    // Three 400 % jobs arriving while the host is down; who goes first
    // depends on the discipline. Deadlines: 6000, 1900, 2400.
    workload::Workload jobs;
    const double runtimes[3] = {3000, 1000, 2000};
    const double factors[3] = {2.0, 1.9, 1.2};
    for (int i = 0; i < 3; ++i) {
      workload::Job j = make_job(400, 512, runtimes[i], factors[i]);
      j.submit = 20.0 + i * 0.001;
      j.id = static_cast<std::uint32_t>(i);
      jobs.push_back(j);
    }
    driver->submit_workload(jobs);
  }

  /// The VM that won the host once it booted.
  int first_started() {
    simulator.run_until(400.0);  // boot (300 s) finished, round ran
    for (VmId v = 0; v < dc.num_vms(); ++v) {
      if (dc.vm(v).state != VmState::kQueued) return static_cast<int>(v);
    }
    return -1;
  }
};

TEST(QueueOrder, FifoRunsArrivalOrder) {
  BurstHarness f(QueueOrder::kFifo);
  f.submit_burst();
  EXPECT_EQ(f.first_started(), 0);
}

TEST(QueueOrder, SjfRunsShortestFirst) {
  BurstHarness f(QueueOrder::kSjf);
  f.submit_burst();
  EXPECT_EQ(f.first_started(), 1);  // runtime 1000 is shortest
}

TEST(QueueOrder, EdfRunsTightestDeadlineFirst) {
  BurstHarness f(QueueOrder::kEdf);
  f.submit_burst();
  // Absolute deadlines: 3000*2=6000, 1000*1.9=1900, 2000*1.2=2400.
  EXPECT_EQ(f.first_started(), 1);
}

TEST(QueueOrder, EdfPrefersUrgentOverShortWhenTheyDiffer) {
  BurstHarness f(QueueOrder::kEdf);
  workload::Workload jobs;
  workload::Job longer_but_urgent = make_job(400, 512, 2000, 1.2);  // 2400
  longer_but_urgent.submit = 20;
  jobs.push_back(longer_but_urgent);
  workload::Job shorter_but_lax = make_job(400, 512, 1500, 2.0);  // 3000
  shorter_but_lax.submit = 20.001;
  shorter_but_lax.id = 1;
  jobs.push_back(shorter_but_lax);
  f.driver->submit_workload(jobs);
  EXPECT_EQ(f.first_started(), 0);
}

TEST(QueueOrder, Names) {
  EXPECT_STREQ(to_string(QueueOrder::kFifo), "fifo");
  EXPECT_STREQ(to_string(QueueOrder::kEdf), "edf");
  EXPECT_STREQ(to_string(QueueOrder::kSjf), "sjf");
}

}  // namespace
}  // namespace easched::sched
