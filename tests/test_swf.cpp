// Tests for Standard Workload Format reading/writing.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace easched::workload {
namespace {

TEST(Swf, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "; comment header\n"
      "\n"
      "   ; indented comment\n"
      "1 100 -1 3600 2 -1 -1 2 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].dedicated_seconds, 3600.0);
  EXPECT_DOUBLE_EQ(jobs[0].cpu_pct, 200.0);
}

TEST(Swf, ShiftsSubmitTimesToZero) {
  std::istringstream in(
      "1 1000 -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "2 1500 -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].submit, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].submit, 500.0);
}

TEST(Swf, SkipsCancelledAndBrokenJobs) {
  std::istringstream in(
      "1 100 -1 -1 1 -1 -1 1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1\n"   // runtime -1
      "2 100 -1 600 -1 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1\n"  // no procs
      "3 -5 -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"   // submit < 0
      "4 100 -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
}

TEST(Swf, DropsSubMinimumRuntimes) {
  SwfOptions opts;
  opts.min_runtime_s = 30;
  std::istringstream in(
      "1 0 -1 10 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "2 0 -1 31 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  EXPECT_EQ(read_swf(in, opts).size(), 1u);
}

TEST(Swf, ClampsCpuToMax) {
  std::istringstream in(
      "1 0 -1 600 64 -1 -1 64 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].cpu_pct, 400.0);
}

TEST(Swf, UsesRequestedProcsWhenAllocatedMissing) {
  std::istringstream in(
      "1 0 -1 600 -1 -1 -1 3 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].cpu_pct, 300.0);
}

TEST(Swf, MemoryFromField10PerProcKb) {
  // Field 10 = requested memory in KB per processor.
  std::istringstream in(
      "1 0 -1 600 2 -1 -1 2 -1 524288 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].mem_mb, 1024.0);
}

TEST(Swf, DefaultMemoryWhenAbsent) {
  SwfOptions opts;
  opts.default_mem_mb = 333;
  std::istringstream in(
      "1 0 -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in, opts);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].mem_mb, 333.0);
}

TEST(Swf, DeadlineFactorsInConfiguredRangeAndDeterministic) {
  std::ostringstream trace;
  for (int i = 0; i < 50; ++i) {
    trace << i + 1 << " " << i * 10
          << " -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  }
  std::istringstream in1(trace.str()), in2(trace.str());
  const auto a = read_swf(in1);
  const auto b = read_swf(in2);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].deadline_factor, 1.2);
    EXPECT_LE(a[i].deadline_factor, 2.0);
    EXPECT_DOUBLE_EQ(a[i].deadline_factor, b[i].deadline_factor);
  }
}

TEST(Swf, ThrowsOnMalformedLine) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(Swf, ThrowsOnMissingFile) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

TEST(Swf, SortsOutOfOrderSubmits) {
  std::istringstream in(
      "1 500 -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "2 100 -1 600 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const auto jobs = read_swf(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_LE(jobs[0].submit, jobs[1].submit);
  EXPECT_EQ(jobs[0].id, 0u);
  EXPECT_EQ(jobs[1].id, 1u);
}

TEST(Swf, WriteReadRoundTripPreservesEssentials) {
  SyntheticConfig c;
  c.span_seconds = sim::kDay;
  const auto original = generate(c);
  ASSERT_FALSE(original.empty());

  std::stringstream buffer;
  write_swf(buffer, original);
  const auto reread = read_swf(buffer);

  ASSERT_EQ(reread.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(reread[i].submit, original[i].submit - original[0].submit,
                1e-6);
    EXPECT_NEAR(reread[i].dedicated_seconds, original[i].dedicated_seconds,
                1e-6);
    // CPU is quantised to whole processors in SWF; 50 % becomes 100 %.
    EXPECT_GE(reread[i].cpu_pct, original[i].cpu_pct - 1e-9);
  }
}

TEST(Swf, WrittenTraceHasHeaderComment) {
  std::ostringstream out;
  write_swf(out, {});
  EXPECT_EQ(out.str().rfind(";", 0), 0u);  // first line is a comment
  EXPECT_NE(out.str().find("easched"), std::string::npos);
}

}  // namespace
}  // namespace easched::workload
