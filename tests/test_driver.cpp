// Tests for the SchedulerDriver: queue handling, rounds, callbacks, SLA
// monitoring and failure re-scheduling.
#include <gtest/gtest.h>

#include "policies/backfilling.hpp"
#include "sched/driver.hpp"
#include "test_fixtures.hpp"

namespace easched::sched {
namespace {

using datacenter::HostState;
using datacenter::VmId;
using datacenter::VmState;
using easched::testing::SmallDc;
using easched::testing::make_job;

struct DriverHarness : SmallDc {
  policies::BackfillingPolicy policy;
  std::unique_ptr<SchedulerDriver> driver;

  explicit DriverHarness(std::size_t n, DriverConfig config = {},
                         datacenter::DatacenterConfig base = {})
      : SmallDc(n, std::move(base)) {
    driver = std::make_unique<SchedulerDriver>(simulator, dc, policy, config);
  }
};

workload::Workload one_job(double cpu = 100, double dedicated = 500,
                           double submit = 10) {
  workload::Job j = make_job(cpu, 512, dedicated);
  j.submit = submit;
  j.id = 0;
  return {j};
}

TEST(Driver, RunsSingleJobToCompletion) {
  DriverHarness f(3);
  f.driver->submit_workload(one_job());
  bool done = false;
  f.driver->on_all_done = [&] { done = true; };
  f.simulator.run_until(5000.0);
  EXPECT_TRUE(done);
  EXPECT_EQ(f.driver->finished(), 1u);
  EXPECT_EQ(f.recorder.jobs.count(), 1u);
}

TEST(Driver, QueueDrainsOnPlacement) {
  DriverHarness f(3);
  f.driver->submit_workload(one_job());
  f.simulator.run_until(11.0);
  EXPECT_TRUE(f.driver->queue().empty());  // placed at arrival round
  EXPECT_EQ(f.dc.num_vms(), 1u);
  EXPECT_EQ(f.dc.vm(0).state, VmState::kCreating);
}

TEST(Driver, UnplaceableJobWaitsThenRuns) {
  datacenter::DatacenterConfig base;
  base.initially_on = 1;
  DriverHarness f(1, {}, base);
  workload::Workload jobs;
  jobs.push_back(make_job(400, 512, 300));
  jobs[0].submit = 0;
  workload::Job second = make_job(400, 512, 300);
  second.submit = 1;
  second.id = 1;
  jobs.push_back(second);
  f.driver->submit_workload(jobs);
  f.simulator.run_until(30.0);
  EXPECT_EQ(f.driver->queue().size(), 1u);  // second job cannot fit yet
  f.simulator.run_until(5000.0);
  EXPECT_EQ(f.driver->finished(), 2u);  // it ran after the first finished
}

TEST(Driver, PowerControllerShedsIdleFleet) {
  DriverHarness f(10);
  f.driver->submit_workload(one_job());
  f.simulator.run_until(4000.0);
  // Job done; periodic controller rounds shrink the fleet to minexec.
  EXPECT_EQ(f.dc.online_count(), 1);
}

TEST(Driver, BootsNodesForQueuedWork) {
  datacenter::DatacenterConfig base;
  base.initially_on = 0;
  DriverHarness f(2, {}, base);
  f.driver->submit_workload(one_job());
  f.simulator.run_until(500.0);  // arrival + boot (300 s)
  EXPECT_GE(f.dc.online_count(), 1);
  f.simulator.run_until(5000.0);
  EXPECT_EQ(f.driver->finished(), 1u);
}

TEST(Driver, FailedVmsRescheduledElsewhere) {
  datacenter::DatacenterConfig base;
  base.inject_failures = true;
  base.mean_repair_s = 1e6;
  base.hosts.assign(2, datacenter::HostSpec::medium());
  base.hosts[0].reliability = 0.05;  // fails fast (MTBF ~5.3e4 ... )
  // Make host 0 fail quickly relative to the job length.
  base.mean_repair_s = 1000;
  DriverHarness f(2, {}, base);

  workload::Workload jobs = one_job(100, 20000, 0);
  f.driver->submit_workload(jobs);
  f.simulator.run_until(200000.0);
  EXPECT_EQ(f.driver->finished(), 1u);  // survived at least one failure
}

TEST(Driver, AllDoneFiresExactlyOnce) {
  DriverHarness f(2);
  workload::Workload jobs = one_job();
  workload::Job j2 = jobs[0];
  j2.submit = 20;
  j2.id = 1;
  jobs.push_back(j2);
  f.driver->submit_workload(jobs);
  int fired = 0;
  f.driver->on_all_done = [&] { ++fired; };
  f.simulator.run_until(10000.0);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(f.driver->all_done());
}

TEST(Driver, SlaBoostRaisesWeightOfAtRiskVm) {
  DriverConfig config;
  config.dynamic_sla_boost = true;
  config.sla_check_period_s = 50;
  datacenter::DatacenterConfig base;
  base.initially_on = 1;
  DriverHarness f(1, config, base);

  // Deadline factor 1.2 but we delay the job by making it wait: submit a
  // blocking job first so the second's wait eats its whole slack.
  workload::Workload jobs;
  workload::Job blocker = make_job(400, 512, 2000, 1.2);
  blocker.submit = 0;
  blocker.id = 0;
  workload::Job tight = make_job(400, 512, 2000, 1.2);
  tight.submit = 1;
  tight.id = 1;
  tight.weight = 256;
  jobs = {blocker, tight};
  f.driver->submit_workload(jobs);
  f.simulator.run_until(4000.0);  // tight started ~2040, projected late
  f.simulator.run_until(4200.0);
  // After an SLA scan the late VM's weight must have been boosted.
  const auto& vm = f.dc.vm(1);
  if (vm.state == VmState::kRunning) {
    EXPECT_GT(vm.job.weight, 256u);
  }
  EXPECT_GT(f.recorder.counts.sla_alarms, 0u);
}

TEST(Driver, NoSlaMachineryWhenDisabled) {
  DriverHarness f(2);  // defaults: alarms and boost off
  f.driver->submit_workload(one_job());
  f.simulator.run_until(5000.0);
  EXPECT_EQ(f.recorder.counts.sla_alarms, 0u);
}

TEST(Driver, SubmittedCountsAllJobs) {
  DriverHarness f(2);
  workload::Workload jobs;
  for (int i = 0; i < 5; ++i) {
    workload::Job j = make_job();
    j.submit = i * 100.0;
    j.id = static_cast<std::uint32_t>(i);
    jobs.push_back(j);
  }
  f.driver->submit_workload(jobs);
  EXPECT_EQ(f.driver->submitted(), 5u);
  EXPECT_FALSE(f.driver->all_done());
  f.simulator.run_until(50000.0);
  EXPECT_EQ(f.driver->finished(), 5u);
}

TEST(Driver, ManualRoundIsIdempotentOnQuietSystem) {
  DriverHarness f(3);
  f.driver->round();
  const auto online = f.dc.online_count();
  f.driver->round();
  EXPECT_EQ(f.dc.online_count(), online);
}

}  // namespace
}  // namespace easched::sched
