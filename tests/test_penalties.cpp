// Tests for the individual score penalties against the paper's equations
// (section III-A).
#include <gtest/gtest.h>

#include "core/penalties.hpp"

namespace easched::core {
namespace {

// ---- Preq (III-A.1) ---------------------------------------------------------

TEST(Preq, InfinityWhenIncompatible) {
  EXPECT_TRUE(is_inf_score(p_req(false)));
  EXPECT_DOUBLE_EQ(p_req(true), 0.0);
}

// ---- Pres (III-A.2) ---------------------------------------------------------

TEST(Pres, InfinityAboveFullOccupation) {
  EXPECT_TRUE(is_inf_score(p_res(1.01)));
  EXPECT_DOUBLE_EQ(p_res(1.0), 0.0);
  EXPECT_DOUBLE_EQ(p_res(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p_res(0.999), 0.0);
}

// ---- Pm / Pvirt (III-A.3) ---------------------------------------------------

TEST(Pm, DoubleCostWhenAboutToFinish) {
  // Tr < Cm: migrating a nearly-done VM costs 2*Cm.
  EXPECT_DOUBLE_EQ(p_migration(60.0, 30.0), 120.0);
  EXPECT_DOUBLE_EQ(p_migration(60.0, -100.0), 120.0);  // overdue job
}

TEST(Pm, DecaysWithRemainingTime) {
  // Tr >= Cm: Cm^2/(2*Tr); halves when Tr doubles.
  EXPECT_DOUBLE_EQ(p_migration(60.0, 60.0), 30.0);
  EXPECT_DOUBLE_EQ(p_migration(60.0, 120.0), 15.0);
  EXPECT_DOUBLE_EQ(p_migration(60.0, 3600.0), 0.5);
}

TEST(Pm, ContinuousExceptAtBranchPoint) {
  // At Tr = Cm the formula jumps from 2*Cm to Cm/2 (the paper's piecewise
  // definition); verify both sides.
  const double just_below = p_migration(40.0, 39.999);
  const double at = p_migration(40.0, 40.0);
  EXPECT_DOUBLE_EQ(just_below, 80.0);
  EXPECT_DOUBLE_EQ(at, 20.0);
}

TEST(Pvirt, ZeroWhenAlreadyHome) {
  EXPECT_DOUBLE_EQ(p_virt(true, false, false, 40.0, 15.0), 0.0);
}

TEST(Pvirt, InfinityWhileOperationInFlight) {
  EXPECT_TRUE(is_inf_score(p_virt(false, true, false, 40.0, 15.0)));
}

TEST(Pvirt, CreationCostForNewVm) {
  EXPECT_DOUBLE_EQ(p_virt(false, false, true, 40.0, 15.0), 40.0);
}

TEST(Pvirt, MigrationTermOtherwise) {
  EXPECT_DOUBLE_EQ(p_virt(false, false, false, 40.0, 15.0), 15.0);
}

// ---- Pconc (III-A.3) --------------------------------------------------------

TEST(Pconc, ZeroWhenHome) {
  EXPECT_DOUBLE_EQ(p_conc(true, 120.0), 0.0);
}

TEST(Pconc, SumsRemainingOperationCosts) {
  EXPECT_DOUBLE_EQ(p_conc(false, 120.0), 120.0);
  EXPECT_DOUBLE_EQ(p_conc(false, 0.0), 0.0);
}

// ---- Ppwr (III-A.4) ---------------------------------------------------------

TEST(Ppwr, EmptyHostPenalised) {
  // #VM <= THempty: Tempty = 1 -> Ce - O*Cf.
  EXPECT_DOUBLE_EQ(p_pwr(0, 1, 20.0, 0.25, 40.0), 20.0 - 10.0);
  EXPECT_DOUBLE_EQ(p_pwr(1, 1, 20.0, 0.5, 40.0), 0.0);
}

TEST(Ppwr, PopulatedHostRewardedByOccupation) {
  // #VM > THempty: pure -O*Cf reward.
  EXPECT_DOUBLE_EQ(p_pwr(2, 1, 20.0, 0.75, 40.0), -30.0);
  EXPECT_DOUBLE_EQ(p_pwr(5, 1, 20.0, 1.0, 40.0), -40.0);
}

TEST(Ppwr, FullerHostsScoreLower) {
  // The consolidation gradient: more occupation -> lower (better) score.
  EXPECT_LT(p_pwr(3, 1, 20.0, 0.9, 40.0), p_pwr(3, 1, 20.0, 0.4, 40.0));
}

TEST(Ppwr, EvaluationConstants) {
  // Section V: THempty = 1, Cempty = 20, Cfill = 40. A host with one VM at
  // occupation 0.25 scores 20 - 10 = 10 (punished); a host with three VMs
  // at 0.9 scores -36 (attractive).
  EXPECT_DOUBLE_EQ(p_pwr(1, 1, 20.0, 0.25, 40.0), 10.0);
  EXPECT_DOUBLE_EQ(p_pwr(3, 1, 20.0, 0.9, 40.0), -36.0);
}

TEST(Ppwr, ZeroCostsDisableTerm) {
  EXPECT_DOUBLE_EQ(p_pwr(0, 1, 0.0, 0.9, 0.0), 0.0);
}

// ---- PSLA (III-A.5) ---------------------------------------------------------

TEST(Psla, ZeroAtFullFulfilment) {
  EXPECT_DOUBLE_EQ(p_sla(1.0, 0.5, 100.0), 0.0);
}

TEST(Psla, FlatCostInTheRecoverableBand) {
  EXPECT_DOUBLE_EQ(p_sla(0.9, 0.5, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(p_sla(0.51, 0.5, 100.0), 100.0);
}

TEST(Psla, SoftInfinityBelowThreshold) {
  const double s = p_sla(0.5, 0.5, 100.0);
  EXPECT_GE(s, kSoftInfScore);
  // Soft infinity must stay below the hard infinity so a hopeless VM still
  // beats staying in the queue (regression: queued VMs starved forever).
  EXPECT_FALSE(is_inf_score(s));
  EXPECT_LT(s, kInfScore);
}

// ---- Pfault (III-A.6) -------------------------------------------------------

TEST(Pfault, ZeroForPerfectlyReliableHost) {
  EXPECT_DOUBLE_EQ(p_fault(1.0, 0.0, 200.0), 0.0);
}

TEST(Pfault, ScalesWithFailureProbability) {
  EXPECT_DOUBLE_EQ(p_fault(0.9, 0.0, 200.0), 20.0);
  EXPECT_DOUBLE_EQ(p_fault(0.5, 0.0, 200.0), 100.0);
}

TEST(Pfault, ToleranceOffsetsAndMayGoNegative) {
  // The paper keeps the formula signed: a VM tolerating more unavailability
  // than the host exhibits yields a negative (rewarding) term.
  EXPECT_NEAR(p_fault(0.9, 0.1, 200.0), 0.0, 1e-9);
  EXPECT_NEAR(p_fault(0.95, 0.1, 200.0), -10.0, 1e-9);
}

TEST(Pfault, MoreReliableHostAlwaysPreferable) {
  for (double tol : {0.0, 0.05, 0.2}) {
    EXPECT_LT(p_fault(0.99, tol, 200.0), p_fault(0.9, tol, 200.0));
  }
}

// ---- score constants --------------------------------------------------------

TEST(ScoreConstants, InfinityDetection) {
  EXPECT_TRUE(is_inf_score(kInfScore));
  EXPECT_TRUE(is_inf_score(kInfScore * 2));
  EXPECT_FALSE(is_inf_score(kSoftInfScore));
  EXPECT_FALSE(is_inf_score(0.0));
  EXPECT_FALSE(is_inf_score(-1e9));
}

TEST(ScoreConstants, InfinityArithmeticStaysOrdered) {
  // The sentinel keeps inf - inf == 0 (the reason it is not IEEE inf).
  EXPECT_DOUBLE_EQ(kInfScore - kInfScore, 0.0);
  EXPECT_TRUE(is_inf_score(kInfScore + 100.0));
}

}  // namespace
}  // namespace easched::core
