// Tests for the datacenter model: VM lifecycle, progress under the credit
// scheduler, migration semantics, power states and accounting.
#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace easched::datacenter {
namespace {

using testing::SmallDc;
using testing::make_job;

// ---- creation & execution ---------------------------------------------------

TEST(Creation, VmRunsAfterCreationCost) {
  SmallDc f;
  const auto v = f.admit_and_place(make_job(), 0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kCreating);
  f.simulator.run_until(39.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kCreating);  // Cc = 40 s (medium)
  f.simulator.run_until(41.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kRunning);
}

TEST(Creation, FinishTimeIsCreationPlusDedicated) {
  SmallDc f;
  const auto v = f.admit_and_place(make_job(100, 512, 1000), 0);
  f.simulator.run();
  EXPECT_EQ(f.dc.vm(v).state, VmState::kFinished);
  EXPECT_NEAR(f.dc.vm(v).finished_at, 40.0 + 1000.0, 1e-6);
}

TEST(Creation, CountsRecorded) {
  SmallDc f;
  f.admit_and_place(make_job(), 0);
  f.admit_and_place(make_job(), 1);
  EXPECT_EQ(f.recorder.counts.creations, 2u);
}

TEST(Creation, ConcurrentCreationsShareIoChannel) {
  SmallDc f;
  const auto a = f.admit_and_place(make_job(), 0);
  const auto b = f.admit_and_place(make_job(), 0);
  // Two concurrent creations at 1/2 speed each: both finish near 80 s.
  f.simulator.run_until(50.0);
  EXPECT_EQ(f.dc.vm(a).state, VmState::kCreating);
  EXPECT_EQ(f.dc.vm(b).state, VmState::kCreating);
  f.simulator.run_until(81.0);
  EXPECT_EQ(f.dc.vm(a).state, VmState::kRunning);
  EXPECT_EQ(f.dc.vm(b).state, VmState::kRunning);
}

TEST(Creation, StaggeredCreationsStretchProportionally) {
  SmallDc f;
  const auto a = f.admit_and_place(make_job(), 0);
  f.simulator.run_until(20.0);  // a is half done (20 of 40)
  const auto b = f.admit_and_place(make_job(), 0);
  // From t=20 both run at 1/2 speed: a needs 40 more s -> done at 60;
  // then b (20 of 40 done at t=60) accelerates to full: done at 80.
  f.simulator.run_until(61.0);
  EXPECT_EQ(f.dc.vm(a).state, VmState::kRunning);
  EXPECT_EQ(f.dc.vm(b).state, VmState::kCreating);
  f.simulator.run_until(81.0);
  EXPECT_EQ(f.dc.vm(b).state, VmState::kRunning);
}

TEST(Execution, ContentionStretchesJobs) {
  DatacenterConfig config;
  config.contention_penalty = 1.0;
  SmallDc f(1, config);
  // Two 400 % jobs on one 400 % host: each gets 200 %, efficiency
  // 1/(1+1*(2-1)) = 0.5 -> progress rate 0.25.
  const auto a = f.admit_and_place(make_job(400, 512, 1000), 0);
  const auto b = f.admit_and_place(make_job(400, 512, 1000), 0);
  f.simulator.run();
  // Creations overlap (80 s shared), then ~4000 s of contended execution.
  EXPECT_EQ(f.dc.vm(a).state, VmState::kFinished);
  EXPECT_GT(f.dc.vm(a).finished_at, 3000.0);
  EXPECT_GT(f.dc.vm(b).finished_at, 3900.0);
}

TEST(Execution, NoContentionWithoutOversubscription) {
  SmallDc f;
  const auto a = f.admit_and_place(make_job(200, 512, 1000), 0);
  const auto b = f.admit_and_place(make_job(200, 512, 1000), 0);
  f.simulator.run();
  // Both fit exactly: no stretch beyond the shared creation window (80 s).
  EXPECT_NEAR(f.dc.vm(a).finished_at, 80.0 + 1000.0, 1.0);
  EXPECT_NEAR(f.dc.vm(b).finished_at, 80.0 + 1000.0, 1.0);
}

TEST(Execution, JobRecordWrittenOnFinish) {
  SmallDc f;
  f.admit_and_place(make_job(100, 512, 1000, 1.5), 0);
  f.simulator.run();
  ASSERT_EQ(f.recorder.jobs.count(), 1u);
  const auto& rec = f.recorder.jobs.records()[0];
  EXPECT_NEAR(rec.finish - rec.submit, 1040.0, 1e-6);
  EXPECT_DOUBLE_EQ(rec.satisfaction, 100.0);  // 1040 < 1500 deadline
  EXPECT_NEAR(rec.delay_pct, 4.0, 0.001);     // 40/1000
}

// ---- occupation / fitting ---------------------------------------------------

TEST(Occupation, MaxOfCpuAndMemory) {
  SmallDc f;
  f.admit_and_place(make_job(100, 2048), 0);  // cpu 25 %, mem 50 %
  EXPECT_DOUBLE_EQ(f.dc.occupation(0), 0.5);
  f.admit_and_place(make_job(300, 512), 0);   // cpu 100 %, mem 62.5 %
  EXPECT_DOUBLE_EQ(f.dc.occupation(0), 1.0);
}

TEST(Occupation, OccupationIfDoesNotDoubleCountResident) {
  SmallDc f;
  const auto v = f.admit_and_place(make_job(200, 1024), 0);
  EXPECT_DOUBLE_EQ(f.dc.occupation_if(0, v), f.dc.occupation(0));
}

TEST(Fits, RespectsCpuAndMemory) {
  SmallDc f;
  const auto v = f.dc.admit_job(make_job(200, 3000));
  EXPECT_TRUE(f.dc.fits(0, v));
  f.admit_and_place(make_job(300, 512), 0);
  EXPECT_FALSE(f.dc.fits(0, v));   // cpu 500 > 400
  EXPECT_TRUE(f.dc.fits(1, v));
}

TEST(Fits, MemoryOnlyVariantIgnoresCpu) {
  SmallDc f;
  f.admit_and_place(make_job(400, 512), 0);
  const auto v = f.dc.admit_job(make_job(400, 512));
  EXPECT_FALSE(f.dc.fits(0, v));
  EXPECT_TRUE(f.dc.fits_memory(0, v));
  const auto w = f.dc.admit_job(make_job(100, 4000));
  EXPECT_FALSE(f.dc.fits_memory(0, w));
}

TEST(Fits, HardwareSoftwareRequirements) {
  DatacenterConfig config;
  config.hosts = {HostSpec::medium(), HostSpec::medium()};
  config.hosts[1].arch = workload::Arch::kPpc64;
  config.hosts[0].software = workload::kSwXen | workload::kSwGpuRuntime;
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(2);
  Datacenter dc(simulator, config, recorder);

  workload::Job job = make_job();
  job.software = workload::kSwXen | workload::kSwGpuRuntime;
  const auto v = dc.admit_job(job);
  EXPECT_TRUE(dc.fits(0, v));
  EXPECT_FALSE(dc.fits(1, v));  // wrong arch
  EXPECT_FALSE(dc.hw_sw_ok(1, v));

  workload::Job plain = make_job();
  const auto w = dc.admit_job(plain);
  EXPECT_TRUE(dc.hw_sw_ok(0, w));  // superset of required software is fine
}

// ---- migration --------------------------------------------------------------

TEST(Migration, MovesVmAfterCost) {
  SmallDc f;
  const auto v = f.admit_and_place(make_job(100, 512, 5000), 0);
  f.simulator.run_until(100.0);  // running
  f.dc.migrate(v, 1);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kMigrating);
  EXPECT_EQ(f.dc.vm(v).host, 1u);
  EXPECT_EQ(f.dc.vm(v).migration_source, 0u);
  f.simulator.run_until(161.0);  // Cm = 60 s (medium)
  EXPECT_EQ(f.dc.vm(v).state, VmState::kRunning);
  EXPECT_EQ(f.dc.vm(v).migration_source, kNoHost);
  EXPECT_TRUE(f.dc.host(0).residents.empty());
  ASSERT_EQ(f.dc.host(1).residents.size(), 1u);
}

TEST(Migration, PausesProgress) {
  SmallDc f;
  const auto v = f.admit_and_place(make_job(100, 512, 1000), 0);
  f.simulator.run_until(140.0);  // 100 s of work done
  f.dc.migrate(v, 1);
  f.simulator.run();
  // 40 create + 1000 work + 60 migration pause.
  EXPECT_NEAR(f.dc.vm(v).finished_at, 1100.0, 1.0);
  EXPECT_EQ(f.dc.vm(v).migrations, 1);
}

TEST(Migration, MemoryPinnedOnBothHostsDuringTransfer) {
  SmallDc f;
  const auto v = f.admit_and_place(make_job(100, 2000, 5000), 0);
  f.simulator.run_until(100.0);
  f.dc.migrate(v, 1);
  EXPECT_DOUBLE_EQ(f.dc.reserved_mem_mb(0), 2000.0);  // outgoing pin
  EXPECT_DOUBLE_EQ(f.dc.reserved_mem_mb(1), 2000.0);  // incoming resident
  f.simulator.run_until(200.0);
  EXPECT_DOUBLE_EQ(f.dc.reserved_mem_mb(0), 0.0);
  EXPECT_DOUBLE_EQ(f.dc.reserved_mem_mb(1), 2000.0);
}

TEST(Migration, CountsRecorded) {
  SmallDc f;
  const auto v = f.admit_and_place(make_job(100, 512, 5000), 0);
  f.simulator.run_until(100.0);
  f.dc.migrate(v, 2);
  EXPECT_EQ(f.recorder.counts.migrations, 1u);
}

// ---- power states -----------------------------------------------------------

TEST(PowerStates, BootTakesConfiguredTime) {
  DatacenterConfig config;
  config.initially_on = 1;
  SmallDc f(2, config);
  EXPECT_EQ(f.dc.host(1).state, HostState::kOff);
  f.dc.power_on(1);
  EXPECT_EQ(f.dc.host(1).state, HostState::kBooting);
  EXPECT_EQ(f.dc.online_count(), 2);  // booting counts as online
  f.simulator.run_until(301.0);       // boot = 300 s (medium)
  EXPECT_EQ(f.dc.host(1).state, HostState::kOn);
  EXPECT_EQ(f.recorder.counts.turn_ons, 1u);
}

TEST(PowerStates, ShutdownReachesOff) {
  SmallDc f;
  f.dc.power_off(2);
  EXPECT_EQ(f.dc.host(2).state, HostState::kShuttingDown);
  f.simulator.run_until(11.0);
  EXPECT_EQ(f.dc.host(2).state, HostState::kOff);
  EXPECT_EQ(f.recorder.counts.turn_offs, 1u);
}

TEST(PowerStates, PowerDrawFollowsState) {
  DatacenterConfig config;
  config.initially_on = 1;
  SmallDc f(2, config);
  EXPECT_DOUBLE_EQ(f.recorder.watts.host_current(0), 230.0);  // idle on
  EXPECT_DOUBLE_EQ(f.recorder.watts.host_current(1), 10.0);   // off standby
  f.dc.power_on(1);
  EXPECT_DOUBLE_EQ(f.recorder.watts.host_current(1), 230.0);  // boot = idle
}

TEST(PowerStates, BusyHostDrawsByTable1) {
  SmallDc f(1);
  f.admit_and_place(make_job(200, 512, 10000), 0);
  f.simulator.run_until(100.0);  // running at 200 %
  EXPECT_DOUBLE_EQ(f.recorder.watts.host_current(0), 273.0);
}

TEST(PowerStates, EnergyIntegralMatchesHandComputation) {
  SmallDc f(1);
  // Idle for 3600 s: 230 Wh = 0.23 kWh.
  f.simulator.run_until(3600.0);
  EXPECT_NEAR(f.recorder.energy_kwh(3600.0), 0.23, 1e-9);
}

TEST(PowerStates, WorkingAndOnlineCounters) {
  DatacenterConfig config;
  config.initially_on = 2;
  SmallDc f(3, config);
  EXPECT_EQ(f.dc.online_count(), 2);
  EXPECT_EQ(f.dc.working_count(), 0);
  f.admit_and_place(make_job(), 0);
  EXPECT_EQ(f.dc.working_count(), 1);
  EXPECT_EQ(f.dc.offline_available_count(), 1);
}

// ---- demand boost -----------------------------------------------------------

TEST(Boost, DemandBoostClampedToCapacity) {
  SmallDc f(1);
  const auto v = f.admit_and_place(make_job(300, 512, 10000), 0);
  f.simulator.run_until(100.0);
  f.dc.boost_demand(v, 9999.0);
  EXPECT_DOUBLE_EQ(f.dc.vm(v).cpu_demand_pct, 400.0);
  f.dc.boost_demand(v, 100.0);  // cannot go below the job requirement
  EXPECT_DOUBLE_EQ(f.dc.vm(v).cpu_demand_pct, 300.0);
}

TEST(Boost, WeightBoostShiftsShares) {
  DatacenterConfig config;
  config.contention_penalty = 0;  // isolate the share arithmetic
  SmallDc f(1, config);
  const auto a = f.admit_and_place(make_job(400, 512, 10000), 0);
  const auto b = f.admit_and_place(make_job(400, 512, 10000), 0);
  f.simulator.run_until(200.0);  // both running, equal shares
  const double rate_a_before = f.dc.vm(a).progress_rate;
  f.dc.boost_weight(a, 3.0);
  EXPECT_GT(f.dc.vm(a).progress_rate, rate_a_before * 1.4);
  EXPECT_GT(f.dc.vm(a).progress_rate, f.dc.vm(b).progress_rate);
}

TEST(Boost, NoopOnQueuedVm) {
  SmallDc f;
  const auto v = f.dc.admit_job(make_job());
  f.dc.boost_demand(v, 400.0);
  EXPECT_DOUBLE_EQ(f.dc.vm(v).cpu_demand_pct, 100.0);
}

// ---- checkpointing ----------------------------------------------------------

TEST(Checkpointing, PeriodicSnapshotsRecordProgress) {
  DatacenterConfig config;
  config.checkpoint.enabled = true;
  config.checkpoint.period_s = 100;
  config.checkpoint.duration_s = 5;
  SmallDc f(1, config);
  const auto v = f.admit_and_place(make_job(100, 512, 1000), 0);
  f.simulator.run_until(500.0);
  EXPECT_GT(f.dc.vm(v).work_checkpointed_s, 100.0);
  EXPECT_GT(f.recorder.counts.checkpoints, 0u);
  // run_until, not run(): the periodic checkpoint scan never drains.
  f.simulator.run_until(5000.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kFinished);
}

TEST(Checkpointing, DisabledByDefault) {
  SmallDc f(1);
  const auto v = f.admit_and_place(make_job(100, 512, 2000), 0);
  f.simulator.run();
  EXPECT_DOUBLE_EQ(f.dc.vm(v).work_checkpointed_s, 0.0);
  EXPECT_EQ(f.recorder.counts.checkpoints, 0u);
}

// ---- projected rate ---------------------------------------------------------

TEST(ProjectedRate, FullSpeedWhenRoomy) {
  SmallDc f;
  const auto v = f.dc.admit_job(make_job(200));
  EXPECT_DOUBLE_EQ(f.dc.projected_rate(0, v), 1.0);
}

TEST(ProjectedRate, DegradesUnderOversubscription) {
  SmallDc f;
  f.admit_and_place(make_job(400, 512, 10000), 0);
  f.simulator.run_until(100.0);
  const auto v = f.dc.admit_job(make_job(400));
  const double rate = f.dc.projected_rate(0, v);
  EXPECT_LT(rate, 0.5);  // share 0.5 x efficiency < 1
  EXPECT_GT(rate, 0.0);
}

}  // namespace
}  // namespace easched::datacenter
