// Tests for the exhaustive reference solver and the hill-climbing quality
// gap it measures (section III-B's "suboptimal solution" claim).
#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/hill_climb.hpp"
#include "core/score_matrix.hpp"
#include "test_fixtures.hpp"

namespace easched::core {
namespace {

using datacenter::VmId;
using easched::testing::SmallDc;
using easched::testing::make_job;

ScoreParams params() {
  ScoreParams p;
  return p;
}

double plan_cost(const ScoreModel& m) {
  double sum = 0;
  for (int c = 0; c < m.cols(); ++c) sum += m.cell(m.plan_row(c), c);
  return sum;
}

TEST(Exhaustive, EmptyModelIsTrivial) {
  SmallDc f(2);
  ScoreModel m(f.dc, {}, params(), false);
  const auto result = exhaustive_search(m);
  EXPECT_EQ(result.evaluated, 0u);
}

TEST(Exhaustive, SingleVmPicksGlobalMinimum) {
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::slow(), datacenter::HostSpec::fast(),
                  datacenter::HostSpec::medium()};
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(3);
  datacenter::Datacenter dc(simulator, config, recorder);
  const VmId v = dc.admit_job(make_job());

  ScoreParams p = params();  // Pvirt on: creation cost differentiates hosts
  ScoreModel m(dc, {v}, p, false);
  const auto result = exhaustive_search(m);
  EXPECT_EQ(m.plan_row(0), 1);  // the fast host (Cc = 30) wins
  // (M+1)^1 plans with the queue state included.
  EXPECT_EQ(result.evaluated, 4u);
}

TEST(Exhaustive, EnumerationCountMatchesFormula) {
  SmallDc f(2);
  std::vector<VmId> queue;
  for (int i = 0; i < 3; ++i) queue.push_back(f.dc.admit_job(make_job()));
  ScoreModel m(f.dc, queue, params(), false);
  const auto result = exhaustive_search(m);
  // 3 queued columns x (2 hosts + virtual) = 3^3 = 27 complete plans.
  EXPECT_EQ(result.evaluated, 27u);
}

TEST(Exhaustive, RestoresModelToBestPlan) {
  SmallDc f(2);
  std::vector<VmId> queue{f.dc.admit_job(make_job(300, 512)),
                          f.dc.admit_job(make_job(300, 512))};
  ScoreModel m(f.dc, queue, params(), false);
  const auto result = exhaustive_search(m);
  EXPECT_NEAR(plan_cost(m), result.best_cost, 1e-9);
  // Two 300 % VMs cannot share a 400 % host: the best plan splits them.
  EXPECT_NE(m.plan_row(0), m.plan_row(1));
}

TEST(Exhaustive, RespectsPlanCap) {
  SmallDc f(3);
  std::vector<VmId> queue;
  for (int i = 0; i < 5; ++i) queue.push_back(f.dc.admit_job(make_job()));
  ScoreModel m(f.dc, queue, params(), false);
  const auto result = exhaustive_search(m, /*max_plans=*/10);
  EXPECT_LE(result.evaluated, 10u);
}

TEST(Exhaustive, HillClimbMatchesOptimumOnPlacementOnlyInstances) {
  // Placement rounds (the common case) — greedy should find the optimum
  // or land very close, on many random small instances.
  support::Rng rng{99};
  int optimal_hits = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    SmallDc f(3);
    std::vector<VmId> queue;
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < n; ++i) {
      static constexpr double kCpu[3] = {100, 200, 300};
      queue.push_back(f.dc.admit_job(
          make_job(kCpu[rng.uniform_int(0, 2)], rng.uniform(128, 1024))));
    }
    ScoreModel greedy_model(f.dc, queue, params(), false);
    hill_climb(greedy_model, HillClimbLimits{});
    const double greedy_cost = plan_cost(greedy_model);

    ScoreModel opt_model(f.dc, queue, params(), false);
    const auto opt = exhaustive_search(opt_model);

    EXPECT_GE(greedy_cost, opt.best_cost - 1e-9);  // optimum is a bound
    if (greedy_cost <= opt.best_cost + 1e-6) ++optimal_hits;
  }
  // Greedy should hit the optimum in the vast majority of small instances.
  EXPECT_GE(optimal_hits, trials * 2 / 3);
}

TEST(Exhaustive, GreedyGapBoundedOnMixedInstances) {
  // Mixed placement + migration instances: quantify the mean optimality
  // gap of Algorithm 1. The paper accepts suboptimality; we assert it is
  // modest (mean < 15 % of the optimal improvement range).
  support::Rng rng{123};
  double gap_sum = 0;
  int gap_count = 0;
  for (int t = 0; t < 20; ++t) {
    SmallDc f(3);
    // Seed some running VMs.
    for (int i = 0; i < 3; ++i) {
      f.admit_and_place(make_job(100 + 100 * (i % 2), 512, 50000),
                        static_cast<datacenter::HostId>(i % 3));
    }
    f.simulator.run_until(200.0);
    std::vector<VmId> queue{
        f.dc.admit_job(make_job(100, rng.uniform(128, 512)))};

    auto limits = HillClimbLimits{};
    limits.min_migration_gain = 1e-9;  // full freedom, like the optimum
    limits.max_migration_moves = 1000;
    ScoreModel greedy_model(f.dc, queue, params(), true);
    hill_climb(greedy_model, limits);
    const double greedy_cost = plan_cost(greedy_model);

    ScoreModel opt_model(f.dc, queue, params(), true);
    const auto opt = exhaustive_search(opt_model);

    EXPECT_GE(greedy_cost, opt.best_cost - 1e-9);
    if (std::abs(opt.best_cost) > 1e-9) {
      gap_sum += (greedy_cost - opt.best_cost) /
                 std::max(std::abs(opt.best_cost), 1.0);
      ++gap_count;
    }
  }
  ASSERT_GT(gap_count, 0);
  EXPECT_LT(gap_sum / gap_count, 0.15);
}

}  // namespace
}  // namespace easched::core
