// Tests for the time-series sampler.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/series.hpp"

namespace easched::metrics {
namespace {

TEST(Series, SamplesAtFixedCadence) {
  sim::Simulator simulator;
  SeriesRecorder series(simulator, 10.0);
  double signal = 1.0;
  series.add_channel("signal", [&] { return signal; });
  simulator.at(15.0, [&] { signal = 2.0; });
  simulator.at(100.0, [] {});  // keeps events flowing
  simulator.run_until(45.0);
  ASSERT_EQ(series.num_samples(), 4u);  // t = 10, 20, 30, 40
  EXPECT_DOUBLE_EQ(series.times()[0], 10.0);
  EXPECT_DOUBLE_EQ(series.channel(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(series.channel(0)[1], 2.0);
}

TEST(Series, MultipleChannelsStayAligned) {
  sim::Simulator simulator;
  SeriesRecorder series(simulator, 5.0);
  series.add_channel("t", [&] { return simulator.now(); });
  series.add_channel("2t", [&] { return 2.0 * simulator.now(); });
  simulator.run_until(20.0);
  ASSERT_EQ(series.num_channels(), 2u);
  ASSERT_EQ(series.num_samples(), 4u);
  for (std::size_t i = 0; i < series.num_samples(); ++i) {
    EXPECT_DOUBLE_EQ(series.channel(1)[i], 2.0 * series.channel(0)[i]);
  }
  EXPECT_EQ(series.channel_name(0), "t");
  EXPECT_EQ(series.channel_name(1), "2t");
}

TEST(Series, CsvOutputWellFormed) {
  sim::Simulator simulator;
  SeriesRecorder series(simulator, 1.0);
  series.add_channel("watts", [] { return 230.0; });
  simulator.run_until(3.0);
  std::ostringstream out;
  series.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t_s,watts");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

TEST(Series, DestructorCancelsSampling) {
  sim::Simulator simulator;
  {
    SeriesRecorder series(simulator, 1.0);
    series.add_channel("x", [] { return 0.0; });
  }
  // With the recorder gone its periodic task must not keep the queue
  // alive (run() would otherwise never return).
  simulator.at(5.0, [] {});
  simulator.run();
  EXPECT_DOUBLE_EQ(simulator.now(), 5.0);
}

}  // namespace
}  // namespace easched::metrics
