// Tests for the Lublin-Feitelson workload model.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "workload/lublin_feitelson.hpp"

namespace easched::workload {
namespace {

TEST(LublinFeitelson, DeterministicPerSeed) {
  LublinFeitelsonConfig c;
  const auto a = generate_lublin_feitelson(c);
  const auto b = generate_lublin_feitelson(c);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit, b[i].submit);
    EXPECT_DOUBLE_EQ(a[i].dedicated_seconds, b[i].dedicated_seconds);
  }
}

TEST(LublinFeitelson, FieldsWithinBounds) {
  LublinFeitelsonConfig c;
  const auto jobs = generate_lublin_feitelson(c);
  ASSERT_FALSE(jobs.empty());
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit, 0.0);
    EXPECT_LT(j.submit, c.span_seconds);
    EXPECT_GE(j.dedicated_seconds, c.min_runtime_s);
    EXPECT_LE(j.dedicated_seconds, c.max_runtime_s);
    EXPECT_GE(j.cpu_pct, 100.0);
    EXPECT_LE(j.cpu_pct, 100.0 * c.max_procs);
    EXPECT_GE(j.deadline_factor, 1.2);
    EXPECT_LE(j.deadline_factor, 2.0);
  }
}

TEST(LublinFeitelson, SerialFractionNearConfigured) {
  LublinFeitelsonConfig c;
  c.mean_jobs_per_hour = 60;  // large sample
  const auto jobs = generate_lublin_feitelson(c);
  std::size_t serial = 0;
  for (const auto& j : jobs) serial += j.cpu_pct == 100.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(serial) / jobs.size(), c.p_serial, 0.05);
}

TEST(LublinFeitelson, PowersOfTwoDominateParallelSizes) {
  LublinFeitelsonConfig c;
  c.mean_jobs_per_hour = 60;
  const auto jobs = generate_lublin_feitelson(c);
  std::size_t pow2 = 0, parallel = 0;
  for (const auto& j : jobs) {
    const int procs = static_cast<int>(j.cpu_pct / 100.0);
    if (procs == 1) continue;
    ++parallel;
    if ((procs & (procs - 1)) == 0) ++pow2;
  }
  ASSERT_GT(parallel, 100u);
  EXPECT_GT(static_cast<double>(pow2) / parallel, 0.7);
}

TEST(LublinFeitelson, RuntimeIsHeavyTailedMixture) {
  LublinFeitelsonConfig c;
  c.mean_jobs_per_hour = 60;
  const auto jobs = generate_lublin_feitelson(c);
  double sum = 0;
  std::vector<double> runtimes;
  for (const auto& j : jobs) {
    sum += j.dedicated_seconds;
    runtimes.push_back(j.dedicated_seconds);
  }
  const double mean = sum / static_cast<double>(jobs.size());
  std::nth_element(runtimes.begin(), runtimes.begin() + runtimes.size() / 2,
                   runtimes.end());
  const double median = runtimes[runtimes.size() / 2];
  // Mixture of short and long Gammas: mean well above the median.
  EXPECT_GT(mean, 1.5 * median);
}

TEST(LublinFeitelson, DailyCycleTroughAtNight) {
  LublinFeitelsonConfig c;
  c.mean_jobs_per_hour = 80;
  c.span_seconds = 5 * sim::kDay;
  const auto jobs = generate_lublin_feitelson(c);
  std::size_t night = 0, day = 0;
  for (const auto& j : jobs) {
    const double hour = std::fmod(j.submit, sim::kDay) / sim::kHour;
    if (hour >= 2 && hour < 6) ++night;   // around the 4 a.m. trough
    if (hour >= 12 && hour < 16) ++day;
    }
  EXPECT_GT(day, 2 * night);
}

TEST(LublinFeitelson, BiggerJobsRunLonger) {
  // The hyper-Gamma long branch is picked more often for larger jobs.
  LublinFeitelsonConfig c;
  c.mean_jobs_per_hour = 80;
  const auto jobs = generate_lublin_feitelson(c);
  double serial_sum = 0, big_sum = 0;
  std::size_t serial_n = 0, big_n = 0;
  for (const auto& j : jobs) {
    if (j.cpu_pct == 100.0) {
      serial_sum += j.dedicated_seconds;
      ++serial_n;
    } else if (j.cpu_pct == 400.0) {
      big_sum += j.dedicated_seconds;
      ++big_n;
    }
  }
  ASSERT_GT(serial_n, 50u);
  ASSERT_GT(big_n, 50u);
  EXPECT_GT(big_sum / big_n, serial_sum / serial_n);
}

TEST(LublinFeitelson, DrivesAFullSimulation) {
  LublinFeitelsonConfig c;
  c.span_seconds = sim::kDay;
  c.mean_jobs_per_hour = 8;
  const auto jobs = generate_lublin_feitelson(c);
  ASSERT_FALSE(jobs.empty());
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(3, 8, 5);
  config.policy = "SB";
  config.horizon_s = 60 * sim::kDay;
  const auto res = experiments::run_experiment(jobs, std::move(config));
  EXPECT_EQ(res.jobs_finished, jobs.size());
  EXPECT_GT(res.report.satisfaction, 90.0);
}

}  // namespace
}  // namespace easched::workload
