// Tests for the failure model, failure injection and checkpoint recovery.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "datacenter/failure_model.hpp"
#include "test_fixtures.hpp"

namespace easched::datacenter {
namespace {

using testing::SmallDc;
using testing::make_job;

// ---- FailureModel mathematics ----------------------------------------------

TEST(FailureModel, MtbfFromReliability) {
  FailureModel fm(3600);  // 1 h MTTR
  // Frel = MTBF/(MTBF+MTTR): Frel = 0.9 -> MTBF = 9 h.
  EXPECT_NEAR(fm.mtbf_s(0.9), 9 * 3600.0, 1e-6);
  EXPECT_NEAR(fm.mtbf_s(0.5), 3600.0, 1e-6);
}

TEST(FailureModel, PerfectReliabilityNeverFails) {
  FailureModel fm(3600);
  EXPECT_TRUE(std::isinf(fm.mtbf_s(1.0)));
  support::Rng rng{1};
  EXPECT_TRUE(std::isinf(fm.draw_time_to_failure(rng, 1.0)));
}

TEST(FailureModel, ZeroReliabilityFloorsMtbf) {
  FailureModel fm(3600);
  // Frel -> 0 sends MTBF -> 0; the model floors it at a small positive
  // value so the exponential draw never degenerates to "fails at t+0".
  EXPECT_GT(fm.mtbf_s(0.0), 0.0);
  support::Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double ttf = fm.draw_time_to_failure(rng, 0.0);
    EXPECT_GT(ttf, 0.0);
    EXPECT_TRUE(std::isfinite(ttf));
  }
}

TEST(FailureModel, OutOfRangeReliabilityIsClamped) {
  FailureModel fm(3600);
  // Estimation noise can push a measured factor past either boundary;
  // clamp instead of rejecting.
  EXPECT_DOUBLE_EQ(fm.mtbf_s(-0.5), fm.mtbf_s(0.0));
  EXPECT_TRUE(std::isinf(fm.mtbf_s(1.5)));
  support::Rng rng{12};
  EXPECT_TRUE(std::isinf(fm.draw_time_to_failure(rng, 2.0)));
  EXPECT_GT(fm.draw_time_to_failure(rng, -1.0), 0.0);
}

TEST(FailureModel, BoundariesBracketInteriorMtbf) {
  FailureModel fm(3600);
  // MTBF is monotone in reliability between the boundary cases.
  const double lo = fm.mtbf_s(0.0);
  const double mid = fm.mtbf_s(0.5);
  const double hi = fm.mtbf_s(0.999);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  EXPECT_LT(hi, fm.mtbf_s(1.0));
}

TEST(FailureModel, DrawMeansMatchMtbf) {
  FailureModel fm(3600);
  support::Rng rng{2};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += fm.draw_time_to_failure(rng, 0.9);
  EXPECT_NEAR(sum / n / 3600.0, 9.0, 0.3);
}

TEST(FailureModel, RepairDrawsAroundMttr) {
  FailureModel fm(7200);
  support::Rng rng{3};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += fm.draw_repair_time(rng);
  EXPECT_NEAR(sum / n, 7200.0, 200.0);
}

// ---- failure injection in the datacenter ------------------------------------

/// Fleet where host 0 fails fast and predictably.
struct FlakyDc : SmallDc {
  static DatacenterConfig flaky_config() {
    DatacenterConfig config;
    config.inject_failures = true;
    config.mean_repair_s = 500;
    return config;
  }
  FlakyDc() : SmallDc(3, flaky_config()) {}
};

DatacenterConfig one_flaky_host(double reliability, bool checkpoint = false) {
  DatacenterConfig config;
  config.inject_failures = true;
  config.mean_repair_s = 1000;
  config.checkpoint.enabled = checkpoint;
  config.checkpoint.period_s = 100;
  config.checkpoint.duration_s = 1;
  return config;
}

TEST(Failures, FailedHostRequeuesItsVms) {
  auto config = one_flaky_host(0.2);
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  config.hosts.assign(1, HostSpec::medium());
  config.hosts[0].reliability = 0.2;  // MTBF = 250 s: fails quickly
  config.duration_sigma_ratio = 0;
  Datacenter dc(simulator, config, recorder);

  std::vector<VmId> lost;
  dc.on_host_failed = [&](HostId, std::vector<VmId> vms) { lost = vms; };

  const auto v = dc.admit_job(make_job(100, 512, 50000));
  dc.place(v, 0);
  simulator.run_until(20000.0);

  ASSERT_FALSE(lost.empty());
  EXPECT_EQ(lost[0], v);
  EXPECT_GE(recorder.counts.failures, 1u);
  const auto& vm = dc.vm(v);
  EXPECT_GE(vm.restarts, 1);
  if (vm.state == VmState::kQueued) {
    EXPECT_EQ(vm.host, kNoHost);
    EXPECT_DOUBLE_EQ(vm.progress_rate, 0.0);
  }
}

TEST(Failures, WorkLostWithoutCheckpointing) {
  auto config = one_flaky_host(0.5);
  config.hosts.assign(1, HostSpec::medium());
  config.hosts[0].reliability = 0.5;
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  Datacenter dc(simulator, config, recorder);

  bool failed = false;
  dc.on_host_failed = [&](HostId, std::vector<VmId>) { failed = true; };
  const auto v = dc.admit_job(make_job(100, 512, 100000));
  dc.place(v, 0);
  while (!failed && simulator.pending() > 0) {
    simulator.run_until(simulator.now() + 100.0);
  }
  ASSERT_TRUE(failed);
  EXPECT_DOUBLE_EQ(dc.vm(v).work_done_s, 0.0);  // restarted from scratch
}

TEST(Failures, CheckpointPreservesProgress) {
  auto config = one_flaky_host(0.5, /*checkpoint=*/true);
  config.hosts.assign(1, HostSpec::medium());
  config.hosts[0].reliability = 0.5;
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  Datacenter dc(simulator, config, recorder);

  bool failed = false;
  dc.on_host_failed = [&](HostId, std::vector<VmId>) { failed = true; };
  const auto v = dc.admit_job(make_job(100, 512, 100000));
  dc.place(v, 0);
  while (!failed && simulator.pending() > 0) {
    simulator.run_until(simulator.now() + 100.0);
  }
  ASSERT_TRUE(failed);
  // The host ran for ~MTBF(0.5)=1000 s on average before dying; with a
  // 100 s checkpoint cadence some progress must have been preserved
  // (unless the failure struck within the very first checkpoint period).
  if (simulator.now() > 400) {
    EXPECT_GT(dc.vm(v).work_done_s, 0.0);
    EXPECT_GT(recorder.counts.checkpoint_recoveries, 0u);
  }
}

TEST(Failures, HostRepairsToOffState) {
  auto config = one_flaky_host(0.2);
  config.hosts.assign(1, HostSpec::medium());
  config.hosts[0].reliability = 0.2;
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  Datacenter dc(simulator, config, recorder);

  bool repaired = false;
  dc.on_host_repaired = [&](HostId) { repaired = true; };
  const auto v = dc.admit_job(make_job());
  dc.place(v, 0);
  simulator.run_until(50000.0);
  ASSERT_TRUE(repaired);
  EXPECT_TRUE(dc.host(0).state == HostState::kOff ||
              dc.host(0).state == HostState::kFailed);
  EXPECT_TRUE(dc.host(0).residents.empty());
}

TEST(Failures, ReliableHostsNeverFail) {
  SmallDc f(2, [] {
    DatacenterConfig c;
    c.inject_failures = true;
    return c;
  }());
  f.admit_and_place(make_job(100, 512, 5000), 0);
  f.simulator.run();
  EXPECT_EQ(f.recorder.counts.failures, 0u);
}

TEST(Failures, PowerOffCancelsPendingFailure) {
  DatacenterConfig config;
  config.inject_failures = true;
  config.hosts.assign(2, HostSpec::medium());
  config.hosts[1].reliability = 0.01;  // would fail almost immediately
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(2);
  Datacenter dc(simulator, config, recorder);
  dc.power_off(1);
  simulator.run_until(100000.0);
  EXPECT_EQ(recorder.counts.failures, 0u);
  EXPECT_EQ(dc.host(1).state, HostState::kOff);
}

TEST(Failures, MigrationSourceDiesTransferAborts) {
  DatacenterConfig config;
  config.hosts.assign(2, HostSpec::medium());
  config.duration_sigma_ratio = 0;
  // No automatic injection; we fail the host deterministically by making
  // it extremely unreliable and powering it on at t=0... instead exercise
  // the path via inject with reliability ~0 on host 0 only.
  config.inject_failures = true;
  config.hosts[0].reliability = 0.08;  // MTBF ~87 s with MTTR 1000
  config.mean_repair_s = 1000;
  sim::Simulator simulator;
  metrics::Recorder recorder(2);
  Datacenter dc(simulator, config, recorder);

  const auto v = dc.admit_job(make_job(100, 512, 100000));
  dc.place(v, 0);
  simulator.run_until(45.0);  // creation done (40 s) before typical failure
  if (dc.vm(v).state == VmState::kRunning) {
    dc.migrate(v, 1);
    simulator.run_until(20000.0);
    // Whatever happened (failure mid-transfer or afterwards), the VM must
    // be in a consistent state: never stuck Migrating forever.
    EXPECT_NE(dc.vm(v).state, VmState::kMigrating);
  }
}

// ---- deterministic mid-run kill: checkpoint recovery ------------------------

TEST(Failures, MidRunKillResumesFromLastCheckpoint) {
  DatacenterConfig config;
  config.hosts.assign(1, HostSpec::medium());
  config.duration_sigma_ratio = 0;
  config.checkpoint.enabled = true;
  config.checkpoint.period_s = 100;
  config.checkpoint.duration_s = 1;
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  Datacenter dc(simulator, config, recorder);

  const auto v = dc.admit_job(make_job(100, 512, 10000));
  dc.place(v, 0);
  simulator.run_until(500.0);
  ASSERT_EQ(dc.vm(v).state, VmState::kRunning);
  ASSERT_GT(recorder.counts.checkpoints, 0u);

  dc.inject_host_failure(0);

  // The VM resumed from its last snapshot: progress was preserved and the
  // lost work is bounded by one checkpoint period (plus the snapshot time
  // and the periodic scan's half-period granularity).
  const auto& vm = dc.vm(v);
  EXPECT_EQ(vm.state, VmState::kQueued);
  EXPECT_GT(vm.work_done_s, 0.0);
  const double creation_s = dc.host(0).spec.creation_cost_s;
  const double worked_s = 500.0 - creation_s;  // sole VM: full progress rate
  const double lost_s = worked_s - vm.work_done_s;
  EXPECT_GE(lost_s, 0.0);
  EXPECT_LE(lost_s,
            config.checkpoint.period_s + config.checkpoint.duration_s + 60.0);
  EXPECT_EQ(recorder.counts.checkpoint_recoveries, 1u);
  EXPECT_EQ(recorder.counts.recreates, 0u);
}

TEST(Failures, MidRunKillWithoutCheckpointsRecreatesFromScratch) {
  DatacenterConfig config;
  config.hosts.assign(2, HostSpec::medium());
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(2);
  Datacenter dc(simulator, config, recorder);

  const auto v = dc.admit_job(make_job(100, 512, 1000));
  dc.place(v, 0);
  simulator.run_until(500.0);
  ASSERT_EQ(dc.vm(v).state, VmState::kRunning);

  dc.inject_host_failure(0);
  EXPECT_EQ(dc.vm(v).state, VmState::kQueued);
  EXPECT_DOUBLE_EQ(dc.vm(v).work_done_s, 0.0);  // no snapshot to restore
  EXPECT_EQ(recorder.counts.recreates, 1u);
  EXPECT_EQ(recorder.counts.checkpoint_recoveries, 0u);

  // The recreated VM still runs to completion on the surviving host.
  dc.place(v, 1);
  simulator.run();
  EXPECT_EQ(dc.vm(v).state, VmState::kFinished);
}

TEST(Failures, FailureDuringCreationRequeues) {
  DatacenterConfig config;
  config.hosts.assign(1, HostSpec::medium());
  config.hosts[0].creation_cost_s = 10000;  // keep it creating for long
  config.inject_failures = true;
  config.hosts[0].reliability = 0.2;
  config.mean_repair_s = 1000;
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  Datacenter dc(simulator, config, recorder);

  bool failed = false;
  dc.on_host_failed = [&](HostId, std::vector<VmId>) { failed = true; };
  const auto v = dc.admit_job(make_job());
  dc.place(v, 0);
  simulator.run_until(5000.0);
  if (failed) {
    EXPECT_EQ(dc.vm(v).state, VmState::kQueued);
    EXPECT_TRUE(dc.host(0).ops.empty());
  }
}

}  // namespace
}  // namespace easched::datacenter
