// Unit tests for the deterministic xoshiro256** engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/rng.hpp"

namespace easched::support {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng{0};
  // SplitMix64 seeding must not produce the all-zero (absorbing) state.
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= rng() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, Uniform01InRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng{7};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.5);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng{9};
  EXPECT_DOUBLE_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng{11};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Rng, UniformIntUnbiasedAcrossBuckets) {
  Rng rng{13};
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 9)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{21};
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a{33}, b{33};
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, NamedIsDeterministic) {
  Rng a = Rng::named(42, "sched.retry");
  Rng b = Rng::named(42, "sched.retry");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, NamedStreamsAreIndependent) {
  // Different names on the same seed, and the plain stream of that seed,
  // must all diverge from each other.
  Rng retry = Rng::named(7, "sched.retry");
  Rng other = Rng::named(7, "sched.policy");
  Rng plain{7};
  int retry_vs_other = 0, retry_vs_plain = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t r = retry();
    retry_vs_other += (r == other()) ? 1 : 0;
    retry_vs_plain += (r == plain()) ? 1 : 0;
  }
  EXPECT_LT(retry_vs_other, 3);
  EXPECT_LT(retry_vs_plain, 3);
}

TEST(Rng, NamedAvoidsXorConstantCollision) {
  // Regression: deriving the stream as Rng{seed ^ hash(name)} would make
  // seed hash(name) reproduce the default-constructed stream of seed 0,
  // silently correlating two supposedly independent streams. The extra
  // splitmix64 round breaks that algebra.
  const char* name = "sched.retry";
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, mirrors rng.cpp
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;
  }
  Rng collided = Rng::named(h, name);  // seed ^ hash == 0
  Rng zero{0};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (collided() == zero()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

TEST(Rng, BitsLookBalanced) {
  Rng rng{55};
  int ones = 0;
  const int words = 10000;
  for (int i = 0; i < words; ++i) ones += __builtin_popcountll(rng());
  // Expect about 32 bits set per 64-bit word.
  EXPECT_NEAR(static_cast<double>(ones) / words, 32.0, 0.5);
}

}  // namespace
}  // namespace easched::support
