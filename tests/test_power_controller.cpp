// Tests for the lambda_min/lambda_max node power controller.
#include <gtest/gtest.h>

#include "policies/backfilling.hpp"
#include "sched/power_controller.hpp"
#include "test_fixtures.hpp"

namespace easched::sched {
namespace {

using datacenter::HostState;
using datacenter::VmId;
using easched::testing::SmallDc;
using easched::testing::make_job;

struct ControllerHarness : SmallDc {
  policies::BackfillingPolicy policy;
  support::Rng rng{5};
  std::vector<VmId> queue;

  explicit ControllerHarness(std::size_t n,
                             datacenter::DatacenterConfig base = {})
      : SmallDc(n, std::move(base)) {}

  void update(PowerControllerConfig config) {
    PowerController controller(config);
    SchedContext ctx{dc, queue, rng};
    controller.update(ctx, dc, policy);
  }
};

TEST(PowerController, TurnsOffIdleNodesBelowLambdaMin) {
  ControllerHarness f(10);
  // 1 working node out of 10 online: ratio 0.1 < 0.3 -> shed idle nodes
  // until ratio >= 0.3 (1/4 = 0.25 < 0.3, 1/3 = 0.33 >= 0.3 -> 3 online).
  f.admit_and_place(make_job(), 0);
  f.update({0.30, 0.90, 1, true});
  EXPECT_EQ(f.dc.online_count(), 3);
  EXPECT_EQ(f.dc.host(0).state, HostState::kOn);  // working host untouched
}

TEST(PowerController, TurnsOnNodesAboveLambdaMax) {
  datacenter::DatacenterConfig base;
  base.initially_on = 2;
  ControllerHarness f(10, base);
  f.admit_and_place(make_job(), 0);
  f.admit_and_place(make_job(), 1);
  // 2/2 = 1.0 > 0.9: boot nodes until 2/n <= 0.9 -> n = 3.
  f.update({0.30, 0.90, 1, true});
  EXPECT_EQ(f.dc.online_count(), 3);
  EXPECT_EQ(f.recorder.counts.turn_ons, 1u);
}

TEST(PowerController, RespectsMinexec) {
  ControllerHarness f(10);
  // Nothing working at all; minexec keeps 2 nodes online.
  f.update({0.30, 0.90, 2, true});
  EXPECT_EQ(f.dc.online_count(), 2);
}

TEST(PowerController, NoWorkMinexecOneKeepsOneNode) {
  ControllerHarness f(5);
  f.update({0.30, 0.90, 1, true});
  EXPECT_EQ(f.dc.online_count(), 1);
}

TEST(PowerController, DisabledControllerDoesNothing) {
  ControllerHarness f(10);
  f.update({0.30, 0.90, 1, false});
  EXPECT_EQ(f.dc.online_count(), 10);
}

TEST(PowerController, BandIsStable) {
  ControllerHarness f(10);
  for (int i = 0; i < 3; ++i) f.admit_and_place(make_job(), i);
  f.update({0.30, 0.90, 1, true});
  const int online = f.dc.online_count();
  // Re-running the controller on an unchanged system must change nothing.
  f.update({0.30, 0.90, 1, true});
  EXPECT_EQ(f.dc.online_count(), online);
  EXPECT_GE(3.0 / online, 0.30);
  EXPECT_LE(3.0 / online, 0.90);
}

TEST(PowerController, QueuedVmThatFitsNowhereForcesTurnOn) {
  datacenter::DatacenterConfig base;
  base.initially_on = 1;
  ControllerHarness f(3, base);
  f.admit_and_place(make_job(300, 512, 50000), 0);
  f.simulator.run_until(100.0);
  // Ratio is 1/1 = 1 > 0.9 anyway; make lambda_max huge to isolate the
  // starvation rule.
  f.queue.push_back(f.dc.admit_job(make_job(200, 512)));
  PowerControllerConfig config{0.0, 100.0, 1, true};
  f.update(config);
  EXPECT_EQ(f.dc.online_count(), 2);  // booted one node for the stuck VM
}

TEST(PowerController, NoForcedTurnOnWhileBooting) {
  datacenter::DatacenterConfig base;
  base.initially_on = 1;
  ControllerHarness f(3, base);
  f.admit_and_place(make_job(300, 512, 50000), 0);
  f.simulator.run_until(100.0);
  f.queue.push_back(f.dc.admit_job(make_job(200, 512)));
  PowerControllerConfig config{0.0, 100.0, 1, true};
  f.update(config);
  f.update(config);  // second call: a node is already booting
  EXPECT_EQ(f.dc.online_count(), 2);
}

TEST(PowerController, NeverTurnsOffWhileQueueNonEmpty) {
  ControllerHarness f(5);
  f.queue.push_back(f.dc.admit_job(make_job()));
  f.update({0.99, 1.0, 1, true});  // aggressive shedding configured
  EXPECT_EQ(f.dc.online_count(), 5);
}

TEST(PowerController, FailedHostsAreNotTurnOnCandidates) {
  datacenter::DatacenterConfig base;
  base.inject_failures = true;
  base.mean_repair_s = 1e9;  // stays failed forever
  ControllerHarness f(2, [&] {
    base.hosts.assign(2, datacenter::HostSpec::medium());
    base.hosts[1].reliability = 1e-12;  // MTBF ~1 ms: dies immediately
    return base;
  }());
  f.simulator.run_until(10.0);  // host 1 fails
  ASSERT_EQ(f.dc.host(1).state, HostState::kFailed);
  f.admit_and_place(make_job(), 0);
  f.update({0.30, 0.90, 1, true});
  // Controller wants more nodes (1/1 > 0.9) but none is available.
  EXPECT_EQ(f.dc.host(1).state, HostState::kFailed);
  EXPECT_EQ(f.dc.online_count(), 1);
}

TEST(PowerController, DefaultPolicyHooksPickSensibleNodes) {
  datacenter::DatacenterConfig base;
  base.hosts = {datacenter::HostSpec::slow(), datacenter::HostSpec::fast(),
                datacenter::HostSpec::medium()};
  base.initially_on = 0;
  base.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(3);
  datacenter::Datacenter dc(simulator, base, recorder);
  policies::BackfillingPolicy policy;
  support::Rng rng{1};
  std::vector<VmId> queue{dc.admit_job(make_job())};
  SchedContext ctx{dc, queue, rng};

  // Turn-on hook prefers the fast-booting node.
  EXPECT_EQ(policy.choose_power_on(ctx, {0, 1, 2}), 1u);
  // Turn-off hook sheds the slowest node first.
  EXPECT_EQ(policy.choose_power_off(ctx, {0, 1, 2}), 0u);
}

}  // namespace
}  // namespace easched::sched
