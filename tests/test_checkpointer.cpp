// Tests for the checkpoint cadence policy (datacenter/checkpointer.hpp)
// and the checkpoint -> restore -> resume cycle: due() semantics, progress
// preservation across a host failure, degraded mode when every snapshot
// attempt is fault-injected away, and byte-determinism of checkpointed
// fault-heavy runs on the pooled event queue.
#include <gtest/gtest.h>

#include "datacenter/checkpointer.hpp"
#include "experiments/runner.hpp"
#include "test_fixtures.hpp"

namespace easched::datacenter {
namespace {

using easched::testing::chaos_workload;
using easched::testing::make_chaos_plan;
using easched::testing::make_job;
using easched::testing::SmallDc;
using easched::testing::small_config;

TEST(CheckpointPolicy, DueIsWorkBasedAndGatedOnEnabled) {
  CheckpointPolicy policy;
  policy.period_s = 100;
  EXPECT_FALSE(policy.due(1000, 0));  // disabled: never due
  policy.enabled = true;
  EXPECT_FALSE(policy.due(99, 0));
  EXPECT_TRUE(policy.due(100, 0));
  EXPECT_TRUE(policy.due(1000, 0));
  // Only work since the last snapshot counts.
  EXPECT_FALSE(policy.due(1000, 950));
  EXPECT_TRUE(policy.due(1050, 950));
}

/// Runs one 5000 s job on host 0, kills the host at t=2000 and resumes on
/// host 1; returns the finish time. The checkpointed run must finish
/// earlier because it only replays the work since the last snapshot.
sim::SimTime failover_finish_time(bool checkpointing) {
  DatacenterConfig base;
  base.checkpoint.enabled = checkpointing;
  base.checkpoint.period_s = 100;
  base.checkpoint.duration_s = 1;
  SmallDc f(2, base);
  // The periodic checkpoint scan keeps the event queue populated forever,
  // so stop explicitly at job completion instead of draining the queue.
  sim::SimTime finish = 0;
  f.dc.on_vm_finished = [&](VmId) {
    finish = f.simulator.now();
    f.simulator.stop();
  };
  const auto v = f.admit_and_place(make_job(100, 512, 5000), 0);
  f.simulator.run_until(2000.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kRunning);

  f.dc.inject_host_failure(0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kQueued);
  if (checkpointing) {
    // Restore path: progress resumed from the last snapshot, with the loss
    // bounded by one period plus snapshot time and scan granularity.
    EXPECT_GT(f.dc.vm(v).work_done_s, 0.0);
    EXPECT_DOUBLE_EQ(f.dc.vm(v).work_done_s, f.dc.vm(v).work_checkpointed_s);
    EXPECT_EQ(f.recorder.counts.checkpoint_recoveries, 1u);
  } else {
    EXPECT_DOUBLE_EQ(f.dc.vm(v).work_done_s, 0.0);
    EXPECT_EQ(f.recorder.counts.recreates, 1u);
  }

  f.dc.place(v, 1);  // resume on the surviving host
  f.simulator.run_until(30000.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kFinished);
  return finish;
}

TEST(Checkpointer, RestoreResumesFromSnapshotAndFinishesEarlier) {
  const sim::SimTime with = failover_finish_time(true);
  const sim::SimTime without = failover_finish_time(false);
  // ~1900 s of pre-failure progress was preserved (minus at most one
  // period of loss), so the checkpointed run finishes that much earlier.
  EXPECT_LT(with + 1500.0, without);
}

TEST(Checkpointer, InjectedSnapshotFailuresDegradeToRecreate) {
  // Every snapshot attempt fails: the VM keeps running, no checkpoint ever
  // lands, and a host failure falls back to recreating from scratch.
  faults::FaultPlan plan;
  plan.enabled = true;
  plan.spec(faults::FaultOp::kCheckpoint).fail_prob = 1.0;
  faults::FaultInjector injector(plan);
  DatacenterConfig base;
  base.checkpoint.enabled = true;
  base.checkpoint.period_s = 100;
  base.checkpoint.duration_s = 1;
  base.fault_injector = &injector;
  SmallDc f(2, base);
  f.dc.on_vm_finished = [&](VmId) { f.simulator.stop(); };

  const auto v = f.admit_and_place(make_job(100, 512, 5000), 0);
  f.simulator.run_until(2000.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kRunning);  // failures are absorbed
  EXPECT_EQ(f.recorder.counts.checkpoints, 0u);
  EXPECT_GT(f.recorder.counts.op_failures, 0u);
  EXPECT_DOUBLE_EQ(f.dc.vm(v).work_checkpointed_s, 0.0);

  f.dc.inject_host_failure(0);
  EXPECT_EQ(f.recorder.counts.checkpoint_recoveries, 0u);
  EXPECT_EQ(f.recorder.counts.recreates, 1u);

  f.dc.place(v, 1);
  f.simulator.run_until(30000.0);
  EXPECT_EQ(f.dc.vm(v).state, VmState::kFinished);
}

/// A fault-heavy checkpointed run through the full experiment stack: node
/// failures, every actuator op (including checkpoints) injectable.
experiments::RunResult checkpointed_chaos_run() {
  auto config = small_config("SB", 2, 3, 2);
  config.datacenter.inject_failures = true;
  config.datacenter.mean_repair_s = 400;
  for (std::size_t i = 0; i < config.datacenter.hosts.size(); i += 2) {
    config.datacenter.hosts[i].reliability = 0.9;
  }
  config.datacenter.checkpoint.enabled = true;
  config.datacenter.checkpoint.period_s = 600;
  config.datacenter.checkpoint.duration_s = 5;
  config.faults = make_chaos_plan(11);
  config.horizon_s = 60 * sim::kDay;
  return experiments::run_experiment(chaos_workload(), std::move(config));
}

TEST(Checkpointer, FaultHeavyCheckpointedRunIsByteDeterministic) {
  const auto a = checkpointed_chaos_run();
  const auto b = checkpointed_chaos_run();
  EXPECT_FALSE(a.hit_horizon);
  EXPECT_EQ(a.jobs_finished, a.jobs_submitted);
  EXPECT_GT(a.faults_injected, 0u);
  // Bit-identical replay on the pooled event queue: same event count, same
  // fault trace, same energy integral to the last bit.
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_DOUBLE_EQ(a.report.energy_kwh, b.report.energy_kwh);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
}

}  // namespace
}  // namespace easched::datacenter
