// Differential tests locking the production hill climber to its executable
// specification: across randomized instances, hill_climb() (serial and
// threaded) must produce the exact move sequence — column, rows and
// bit-identical delta — and final plan of hill_climb_reference(), and on
// small instances selected seeds must reach the exhaustive optimum.
#include <gtest/gtest.h>

#include <vector>

#include "core/exhaustive.hpp"
#include "core/hill_climb.hpp"
#include "core/score_matrix.hpp"
#include "core/solver_pool.hpp"
#include "test_random_instances.hpp"

namespace easched::core {
namespace {

using easched::testing::RandomInstance;
using easched::testing::make_random_instance;

double plan_cost(const ScoreModel& model) {
  double sum = 0;
  for (int c = 0; c < model.cols(); ++c) {
    sum += model.cell(model.plan_row(c), c);
  }
  return sum;
}

void expect_same_outcome(const HillClimbStats& a, const HillClimbStats& b,
                         const ScoreModel& ma, const ScoreModel& mb) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_TRUE(a.trace[i] == b.trace[i])
        << "traces diverge at move " << i << ": (" << a.trace[i].col << ","
        << a.trace[i].from_row << "->" << a.trace[i].to_row << ", "
        << a.trace[i].delta << ") vs (" << b.trace[i].col << ","
        << b.trace[i].from_row << "->" << b.trace[i].to_row << ", "
        << b.trace[i].delta << ")";
  }
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.migration_moves, b.migration_moves);
  EXPECT_EQ(a.hit_move_limit, b.hit_move_limit);
  EXPECT_EQ(a.total_gain, b.total_gain);  // same deltas, same order: bitwise
  ASSERT_EQ(ma.cols(), mb.cols());
  for (int c = 0; c < ma.cols(); ++c) {
    ASSERT_EQ(ma.plan_row(c), mb.plan_row(c)) << "plans diverge at col " << c;
  }
}

class SolverEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

// The tentpole guarantee: incremental (serial) and threaded (2 and 4
// workers) hill climbing replay the reference solver's move trace exactly.
TEST_P(SolverEquivalence, IncrementalAndThreadedMatchReference) {
  const std::uint64_t seed = GetParam();
  support::Rng rng{seed};
  SolverPool pool2(2);
  SolverPool pool4(4);
  for (int instance = 0; instance < 25; ++instance) {
    RandomInstance inst = make_random_instance(rng, seed, instance);
    SCOPED_TRACE(inst.describe());
    HillClimbLimits limits;
    // Exercise the budget and threshold paths too, not just defaults.
    if (rng.uniform01() < 0.3) {
      limits.max_moves = static_cast<int>(rng.uniform_int(1, 6));
    }
    if (rng.uniform01() < 0.3) {
      limits.max_migration_moves = static_cast<int>(rng.uniform_int(0, 3));
    }
    if (rng.uniform01() < 0.3) limits.min_migration_gain = 35;

    ScoreModel m_ref(inst.fixture->dc, inst.queue, inst.params,
                     inst.migration);
    ScoreModel m_ser(inst.fixture->dc, inst.queue, inst.params,
                     inst.migration);
    ScoreModel m_p2(inst.fixture->dc, inst.queue, inst.params, inst.migration,
                    &pool2);
    ScoreModel m_p4(inst.fixture->dc, inst.queue, inst.params, inst.migration,
                    &pool4);

    const HillClimbStats s_ref = hill_climb_reference(m_ref, limits);
    const HillClimbStats s_ser = hill_climb(m_ser, limits);
    HillClimbLimits l2 = limits;
    l2.pool = &pool2;
    const HillClimbStats s_p2 = hill_climb(m_p2, l2);
    HillClimbLimits l4 = limits;
    l4.pool = &pool4;
    const HillClimbStats s_p4 = hill_climb(m_p4, l4);

    expect_same_outcome(s_ref, s_ser, m_ref, m_ser);
    expect_same_outcome(s_ref, s_p2, m_ref, m_p2);
    expect_same_outcome(s_ref, s_p4, m_ref, m_p4);
  }
}

// Re-running the threaded solver over the same pool must be stable: the
// pool carries no state between sweeps.
TEST_P(SolverEquivalence, PoolReuseIsStable) {
  const std::uint64_t seed = GetParam() * 31 + 7;
  support::Rng rng{seed};
  SolverPool pool(3);
  RandomInstance inst = make_random_instance(rng, seed, 0);
  SCOPED_TRACE(inst.describe());
  HillClimbLimits limits;
  limits.pool = &pool;

  ScoreModel a(inst.fixture->dc, inst.queue, inst.params, inst.migration,
               &pool);
  const HillClimbStats sa = hill_climb(a, limits);
  ScoreModel b(inst.fixture->dc, inst.queue, inst.params, inst.migration,
               &pool);
  const HillClimbStats sb = hill_climb(b, limits);
  expect_same_outcome(sa, sb, a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// On small instances (<= 4 hosts, <= 5 VMs) the greedy solver reaches the
// exhaustive optimum for these seeds (chosen to satisfy that; greedy is
// not optimal in general — see test_exhaustive.cpp for a counterexample
// discussion). Guards solution quality, not just internal consistency.
class SolverOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverOptimality, HillClimbReachesExhaustiveOptimum) {
  const std::uint64_t seed = GetParam();
  support::Rng rng{seed};
  RandomInstance inst = make_random_instance(rng, seed, 0, /*max_hosts=*/4,
                                             /*max_running=*/3,
                                             /*max_queued=*/2);
  SCOPED_TRACE(inst.describe());
  ScoreModel m_hc(inst.fixture->dc, inst.queue, inst.params, inst.migration);
  ScoreModel m_ex(inst.fixture->dc, inst.queue, inst.params, inst.migration);
  ASSERT_LE(m_hc.rows(), 5);
  ASSERT_LE(m_hc.cols(), 5);

  hill_climb(m_hc, HillClimbLimits{});
  const ExhaustiveResult best = exhaustive_search(m_ex);
  EXPECT_NEAR(plan_cost(m_hc), best.best_cost, 1e-9)
      << "greedy plan is suboptimal on this instance";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOptimality,
                         ::testing::Values(9001u, 9002u, 9003u, 9004u, 9005u,
                                           9006u, 9007u, 9008u));

// Degenerate shapes must not trip the incremental bookkeeping.
TEST(SolverEquivalence, EmptyQueueNoMigrationIsANoOp) {
  support::Rng rng{77};
  RandomInstance inst = make_random_instance(rng, 77, 0);
  SCOPED_TRACE(inst.describe());
  const std::vector<datacenter::VmId> empty;
  ScoreModel model(inst.fixture->dc, empty, inst.params,
                   /*migration_enabled=*/false);
  ASSERT_EQ(model.cols(), 0);
  const HillClimbStats stats = hill_climb(model, HillClimbLimits{});
  EXPECT_EQ(stats.moves, 0);
  EXPECT_TRUE(stats.trace.empty());
}

}  // namespace
}  // namespace easched::core
