// Tests for the descriptive-statistics helpers.
#include <gtest/gtest.h>
#include <cmath>

#include "support/stats.hpp"

namespace easched::support {
namespace {

TEST(Stats, EmptySampleIsZeroed) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, SingleValue) {
  const auto s = summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Stats, KnownSample) {
  const auto s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev of this classic set: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, NegativeValues) {
  const auto s = summarize({-3.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 50.0), 1.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 30.0), 7.0);
}

TEST(Percentile, TinySamplesNeverReadPastTheLastRank) {
  // The PhaseProfiler asks for p95/p99 on whatever landed in a rollup,
  // which can be a single round. The nearest-rank floor index must clamp
  // to the last sample: the high percentiles of a tiny sample are its max,
  // never garbage from one past the end.
  for (std::size_t n = 1; n <= 5; ++n) {
    std::vector<double> v;
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<double>(i + 1));
    }
    const double max = static_cast<double>(n);
    for (double p : {95.0, 99.0, 100.0}) {
      const double value = percentile(v, p);
      EXPECT_LE(value, max) << "n=" << n << " p=" << p;
      EXPECT_GE(value, v.front()) << "n=" << n << " p=" << p;
    }
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), max);
  }
  // n <= 2: p95/p99 both land in the last interpolation interval.
  EXPECT_DOUBLE_EQ(percentile({1.0}, 99.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 3.0}, 99.0), 1.0 + 2.0 * 0.99);
}

}  // namespace
}  // namespace easched::support
