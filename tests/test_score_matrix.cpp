// Tests for the ScoreModel: snapshotting, penalty composition and plan
// bookkeeping against a live datacenter.
#include <gtest/gtest.h>

#include "core/score_matrix.hpp"
#include "test_fixtures.hpp"

namespace easched::core {
namespace {

using datacenter::HostState;
using datacenter::VmId;
using datacenter::VmState;
using easched::testing::SmallDc;
using easched::testing::make_job;

ScoreParams default_params() {
  ScoreParams p;  // virt + conc + pwr on; sla + fault off
  return p;
}

TEST(ScoreModel, RowsAreOnHostsPlusVirtual) {
  SmallDc f(3);
  f.dc.power_off(2);
  f.simulator.run_until(20.0);
  ScoreModel m(f.dc, {}, default_params(), false);
  EXPECT_EQ(m.rows(), 3);  // 2 on + virtual
  EXPECT_EQ(m.virtual_row(), 2);
  EXPECT_EQ(m.cols(), 0);
}

TEST(ScoreModel, QueuedVmsAreColumnsAtVirtualRow) {
  SmallDc f(2);
  const VmId v = f.dc.admit_job(make_job());
  ScoreModel m(f.dc, {v}, default_params(), false);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_EQ(m.plan_row(0), m.virtual_row());
  EXPECT_EQ(m.original_row(0), m.virtual_row());
  EXPECT_TRUE(m.movable(0));
  EXPECT_EQ(m.vm_at(0), v);
}

TEST(ScoreModel, VirtualRowIsInfinite) {
  SmallDc f(2);
  const VmId v = f.dc.admit_job(make_job());
  ScoreModel m(f.dc, {v}, default_params(), false);
  EXPECT_TRUE(is_inf_score(m.cell(m.virtual_row(), 0)));
}

TEST(ScoreModel, RunningVmsOnlyColumnsWhenMigrating) {
  SmallDc f(2);
  f.admit_and_place(make_job(), 0);
  f.simulator.run_until(100.0);  // running
  ScoreModel without(f.dc, {}, default_params(), false);
  EXPECT_EQ(without.cols(), 0);
  ScoreModel with(f.dc, {}, default_params(), true);
  EXPECT_EQ(with.cols(), 1);
  EXPECT_EQ(with.plan_row(0), with.original_row(0));
  EXPECT_NE(with.original_row(0), with.virtual_row());
}

TEST(ScoreModel, VmWithOperationInFlightIsExcluded) {
  SmallDc f(2);
  f.admit_and_place(make_job(), 0);  // creating
  ScoreModel m(f.dc, {}, default_params(), true);
  EXPECT_EQ(m.cols(), 0);
}

TEST(ScoreModel, NewVmCellIsCreationCostMinusPowerTerm) {
  SmallDc f(1);  // one empty medium host: Cc = 40
  const VmId v = f.dc.admit_job(make_job(100, 512));
  ScoreModel m(f.dc, {v}, default_params(), false);
  // Score = Pvirt(Cc=40) + Ppwr(Tempty=1 -> 20 - O*40), O = 0.25.
  EXPECT_NEAR(m.cell(0, 0), 40.0 + 20.0 - 10.0, 1e-9);
}

TEST(ScoreModel, ResourceInfeasibilityIsInfinite) {
  SmallDc f(1);
  f.admit_and_place(make_job(300, 512, 10000), 0);
  f.simulator.run_until(100.0);
  const VmId v = f.dc.admit_job(make_job(200, 512));
  ScoreModel m(f.dc, {v}, default_params(), false);
  EXPECT_TRUE(is_inf_score(m.cell(0, 0)));  // 300+200 > 400
}

TEST(ScoreModel, HardwareMismatchIsInfinite) {
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::medium()};
  config.hosts[0].arch = workload::Arch::kArm64;
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  datacenter::Datacenter dc(simulator, config, recorder);
  const VmId v = dc.admit_job(make_job());
  ScoreModel m(dc, {v}, default_params(), false);
  EXPECT_TRUE(is_inf_score(m.cell(0, 0)));
}

TEST(ScoreModel, ConcurrencyPenaltyCountsInFlightOps) {
  SmallDc f(2);
  f.admit_and_place(make_job(), 0);  // creating: ~40 s remaining
  const VmId v = f.dc.admit_job(make_job());
  ScoreParams with_conc = default_params();
  ScoreParams no_conc = default_params();
  no_conc.use_conc = false;
  ScoreModel a(f.dc, {v}, with_conc, false);
  ScoreModel b(f.dc, {v}, no_conc, false);
  // Host 0 busy creating -> Pconc ~= 40 extra there; host 1 clean.
  EXPECT_NEAR(a.cell(0, 0) - b.cell(0, 0), 40.0, 1.0);
  EXPECT_NEAR(a.cell(1, 0), b.cell(1, 0), 1e-9);
}

TEST(ScoreModel, PowerTermPrefersFullerHost) {
  SmallDc f(2);
  f.admit_and_place(make_job(100, 512, 10000), 0);
  f.admit_and_place(make_job(100, 512, 10000), 0);  // host 0 busy-ish
  f.simulator.run_until(200.0);
  const VmId v = f.dc.admit_job(make_job(100, 512));
  ScoreModel m(f.dc, {v}, default_params(), false);
  EXPECT_LT(m.cell(0, 0), m.cell(1, 0));  // fuller host scores lower
}

TEST(ScoreModel, FaultTermPrefersReliableHost) {
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::medium(),
                  datacenter::HostSpec::medium()};
  config.hosts[1].reliability = 0.9;
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(2);
  datacenter::Datacenter dc(simulator, config, recorder);
  const VmId v = dc.admit_job(make_job());
  ScoreParams params = default_params();
  params.use_fault = true;
  ScoreModel m(dc, {v}, params, false);
  EXPECT_LT(m.cell(0, 0), m.cell(1, 0));
  EXPECT_NEAR(m.cell(1, 0) - m.cell(0, 0), 0.1 * params.c_fail, 1e-9);
}

TEST(ScoreModel, SlaTermChargesProjectedViolation) {
  SmallDc f(1);
  // A job submitted long ago with a tight deadline cannot finish in time:
  // elapsed (1500) + Cc + work (1000) > deadline (1200) -> PSLA fires.
  workload::Job job = make_job(100, 512, 1000, 1.2);
  job.submit = 0;
  const VmId v = f.dc.admit_job(job);
  f.simulator.run_until(1500.0);
  ScoreParams with_sla = default_params();
  with_sla.use_sla = true;
  ScoreModel a(f.dc, {v}, with_sla, false);
  ScoreModel b(f.dc, {v}, default_params(), false);
  const double sla_term = a.cell(0, 0) - b.cell(0, 0);
  EXPECT_GE(sla_term, with_sla.c_sla);
}

TEST(ScoreModel, MoveUpdatesPlanAndBookkeeping) {
  SmallDc f(2);
  const VmId v = f.dc.admit_job(make_job(200, 1024));
  ScoreModel m(f.dc, {v}, default_params(), false);
  const double empty_cell_before = m.cell(1, 0);
  const auto dirty = m.move(0, 0);
  EXPECT_EQ(dirty.col, 0);
  EXPECT_EQ(dirty.row_a, -1);  // came from the virtual row
  EXPECT_EQ(dirty.row_b, 0);
  EXPECT_EQ(m.plan_row(0), 0);
  EXPECT_EQ(m.original_row(0), m.virtual_row());
  // Host 1 is untouched by the move.
  EXPECT_DOUBLE_EQ(m.cell(1, 0), empty_cell_before);
}

TEST(ScoreModel, MoveMakesHostLookOccupiedToOthers) {
  SmallDc f(1);
  const VmId a = f.dc.admit_job(make_job(300, 512));
  const VmId b = f.dc.admit_job(make_job(200, 512));
  ScoreModel m(f.dc, {a, b}, default_params(), false);
  EXPECT_FALSE(is_inf_score(m.cell(0, 1)));
  m.move(0, 0);  // plan a on host 0
  EXPECT_TRUE(is_inf_score(m.cell(0, 1)));  // 300+200 > 400 hypothetically
}

TEST(ScoreModel, MoveBackAndForthRestoresScores) {
  SmallDc f(2);
  const VmId v = f.dc.admit_job(make_job());
  ScoreModel m(f.dc, {v}, default_params(), false);
  const double h0 = m.cell(0, 0);
  const double h1 = m.cell(1, 0);
  m.move(0, 0);
  m.move(1, 0);
  m.move(0, 0);
  EXPECT_DOUBLE_EQ(m.cell(0, 0), h0);
  EXPECT_DOUBLE_EQ(m.cell(1, 0), h1);
}

TEST(ScoreModel, StayingHomeCostsNoVirtTerm) {
  SmallDc f(2);
  const VmId v = f.admit_and_place(make_job(100, 512, 10000), 0);
  f.simulator.run_until(100.0);
  ScoreModel m(f.dc, {}, default_params(), true);
  ASSERT_EQ(m.cols(), 1);
  const int home = m.plan_row(0);
  const int away = home == 0 ? 1 : 0;
  ScoreParams no_virt = default_params();
  no_virt.use_virt = false;
  ScoreModel base(f.dc, {}, no_virt, true);
  // Home cell identical with/without Pvirt; away cell differs by Pm.
  EXPECT_DOUBLE_EQ(m.cell(home, 0), base.cell(home, 0));
  EXPECT_GT(m.cell(away, 0), base.cell(away, 0));
  (void)v;
}

TEST(ScoreModel, RowAggregateRanksBusyRowsHigher) {
  SmallDc f(2);
  f.admit_and_place(make_job(300, 512, 10000), 0);
  f.simulator.run_until(100.0);
  const VmId v = f.dc.admit_job(make_job(200, 512));
  ScoreModel m(f.dc, {v}, default_params(), false);
  // Host 0 cannot take the VM (infinite cell): its aggregate must exceed
  // host 1's all-finite aggregate.
  EXPECT_GT(m.row_aggregate(0), m.row_aggregate(1));
  EXPECT_TRUE(is_inf_score(m.row_aggregate(m.virtual_row())));
}

}  // namespace
}  // namespace easched::core
