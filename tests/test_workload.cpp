// Tests for the synthetic workload generator, stats and satisfaction metric.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/satisfaction.hpp"
#include "workload/synthetic.hpp"

namespace easched::workload {
namespace {

// ---- satisfaction (the paper's S metric, section V) -------------------------

TEST(Satisfaction, FullWhenOnTime) {
  EXPECT_DOUBLE_EQ(satisfaction(99.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(satisfaction(0.0, 100.0), 100.0);
}

TEST(Satisfaction, LinearDecayPastDeadline) {
  EXPECT_DOUBLE_EQ(satisfaction(150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(satisfaction(125.0, 100.0), 75.0);
}

TEST(Satisfaction, ZeroAtTwiceDeadline) {
  EXPECT_DOUBLE_EQ(satisfaction(200.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(satisfaction(500.0, 100.0), 0.0);
}

TEST(Satisfaction, PaperExample) {
  // "a job with a factor of 1.5 that takes 100 minutes ... will have a
  // deadline of 150 minutes. If it would take more than 300 minutes ...
  // satisfaction of 0% and a delay of 200%."
  const double deadline = 150.0;
  EXPECT_DOUBLE_EQ(satisfaction(300.0, deadline), 0.0);
  EXPECT_DOUBLE_EQ(delay_pct(300.0, 100.0), 200.0);
}

TEST(Satisfaction, ExactDeadlineBoundary) {
  // Texec == Tdead falls in the >= branch with zero overrun -> 100.
  EXPECT_DOUBLE_EQ(satisfaction(100.0, 100.0), 100.0);
}

TEST(Delay, ZeroWhenFasterThanDedicated) {
  EXPECT_DOUBLE_EQ(delay_pct(90.0, 100.0), 0.0);
}

TEST(Delay, PercentOfDedicated) {
  EXPECT_DOUBLE_EQ(delay_pct(130.0, 100.0), 30.0);
}

/// Property: S is non-increasing in execution time.
class SatisfactionMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(SatisfactionMonotonic, NonIncreasing) {
  const double deadline = GetParam();
  double last = 101;
  for (double exec = 0; exec < 3 * deadline; exec += deadline / 50) {
    const double s = satisfaction(exec, deadline);
    EXPECT_LE(s, last);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 100.0);
    last = s;
  }
}

INSTANTIATE_TEST_SUITE_P(Deadlines, SatisfactionMonotonic,
                         ::testing::Values(60.0, 3600.0, 86400.0));

// ---- synthetic generator ----------------------------------------------------

TEST(Synthetic, DeterministicPerSeed) {
  const auto a = evaluation_workload(7);
  const auto b = evaluation_workload(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit, b[i].submit);
    EXPECT_DOUBLE_EQ(a[i].dedicated_seconds, b[i].dedicated_seconds);
    EXPECT_DOUBLE_EQ(a[i].cpu_pct, b[i].cpu_pct);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const auto a = evaluation_workload(1);
  const auto b = evaluation_workload(2);
  EXPECT_NE(a.size(), b.size());
}

TEST(Synthetic, SortedBySubmitWithDenseIds) {
  const auto jobs = evaluation_workload();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    if (i > 0) EXPECT_GE(jobs[i].submit, jobs[i - 1].submit);
  }
}

TEST(Synthetic, FieldsWithinConfiguredBounds) {
  SyntheticConfig c;
  const auto jobs = generate(c);
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit, 0.0);
    EXPECT_LE(j.submit, c.span_seconds);
    EXPECT_GE(j.dedicated_seconds, c.min_runtime_s);
    EXPECT_LE(j.dedicated_seconds, c.max_runtime_s);
    EXPECT_GE(j.deadline_factor, c.deadline_factor_lo);
    EXPECT_LE(j.deadline_factor, c.deadline_factor_hi);
    EXPECT_TRUE(j.cpu_pct == 50 || j.cpu_pct == 100 || j.cpu_pct == 200 ||
                j.cpu_pct == 400);
    EXPECT_GT(j.mem_mb, 0.0);
    EXPECT_LE(j.mem_mb, 4096.0);  // must fit the evaluation hosts
    EXPECT_DOUBLE_EQ(j.fault_tolerance, 0.0);
  }
}

TEST(Synthetic, EvaluationWorkloadMatchesPaperAggregates) {
  // The substitution contract (DESIGN.md): ~6000 core-hours over one week.
  const auto stats = compute_stats(evaluation_workload());
  EXPECT_GT(stats.jobs, 800u);
  EXPECT_LT(stats.jobs, 3000u);
  EXPECT_NEAR(stats.core_hours, 6055.0, 1500.0);
  EXPECT_GT(stats.span_seconds, 6.0 * sim::kDay);
}

TEST(Synthetic, IntensityScalesJobCount) {
  SyntheticConfig lo, hi;
  lo.mean_jobs_per_hour = 4;
  hi.mean_jobs_per_hour = 16;
  EXPECT_GT(generate(hi).size(), 2 * generate(lo).size());
}

TEST(Synthetic, DiurnalPatternPresent) {
  SyntheticConfig c;
  c.mean_jobs_per_hour = 60;  // dense sampling of the day profile
  c.span_seconds = 5 * sim::kDay;
  c.weekend_factor = 1.0;     // isolate the diurnal term
  const auto jobs = generate(c);
  // Compare arrivals in the 6 h around the peak phase (08:00 + 6h window)
  // with the opposite window.
  std::size_t peak = 0, trough = 0;
  for (const auto& j : jobs) {
    const double hour = std::fmod(j.submit, sim::kDay) / 3600.0;
    if (hour >= 11 && hour < 17) ++peak;      // around the sine maximum
    if (hour >= 23 || hour < 5) ++trough;     // around the minimum
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(Synthetic, WeekendDipPresent) {
  SyntheticConfig c;
  c.mean_jobs_per_hour = 40;
  c.diurnal_amplitude = 0;  // isolate the weekend term
  const auto jobs = generate(c);
  std::size_t weekday = 0, weekend = 0;
  for (const auto& j : jobs) {
    (static_cast<int>(j.submit / sim::kDay) % 7 >= 5 ? weekend : weekday)++;
  }
  // 5 weekdays vs 2 weekend days at factor 0.55: per-day rate ratio ~1.8.
  const double per_day_weekday = static_cast<double>(weekday) / 5.0;
  const double per_day_weekend = static_cast<double>(weekend) / 2.0;
  EXPECT_GT(per_day_weekday, 1.3 * per_day_weekend);
}

TEST(Synthetic, BatchesArriveTogether) {
  SyntheticConfig c;
  c.batch_mean = 8;
  const auto jobs = generate(c);
  // With batch arrivals, many consecutive jobs are within 120 s.
  std::size_t close = 0;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].submit - jobs[i - 1].submit < 120.0) ++close;
  }
  EXPECT_GT(close, jobs.size() / 2);
}

TEST(Synthetic, FaultToleranceDrawnWhenEnabled) {
  SyntheticConfig c;
  c.max_fault_tolerance = 0.05;
  const auto jobs = generate(c);
  bool any_positive = false;
  for (const auto& j : jobs) {
    EXPECT_GE(j.fault_tolerance, 0.0);
    EXPECT_LE(j.fault_tolerance, 0.05);
    any_positive |= j.fault_tolerance > 0;
  }
  EXPECT_TRUE(any_positive);
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, EmptyWorkload) {
  const auto s = compute_stats({});
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.core_hours, 0.0);
}

TEST(Stats, SingleJob) {
  Job j;
  j.submit = 10;
  j.dedicated_seconds = 7200;
  j.cpu_pct = 200;
  const auto s = compute_stats({j});
  EXPECT_EQ(s.jobs, 1u);
  EXPECT_DOUBLE_EQ(s.core_hours, 4.0);
  EXPECT_DOUBLE_EQ(s.mean_runtime_s, 7200.0);
  EXPECT_DOUBLE_EQ(s.peak_concurrent_cores, 2.0);
}

TEST(Stats, PeakCountsOverlapsOnly) {
  Job a, b;
  a.submit = 0;
  a.dedicated_seconds = 100;
  a.cpu_pct = 100;
  b.submit = 50;
  b.dedicated_seconds = 100;
  b.cpu_pct = 300;
  const auto s = compute_stats({a, b});
  EXPECT_DOUBLE_EQ(s.peak_concurrent_cores, 4.0);

  b.submit = 200;  // no overlap
  const auto s2 = compute_stats({a, b});
  EXPECT_DOUBLE_EQ(s2.peak_concurrent_cores, 3.0);
}

TEST(Stats, DescribeMentionsKeyNumbers) {
  const auto jobs = evaluation_workload();
  const auto text = describe(compute_stats(jobs));
  EXPECT_NE(text.find("jobs"), std::string::npos);
  EXPECT_NE(text.find("core-hours"), std::string::npos);
}

}  // namespace
}  // namespace easched::workload
