// Unit tests for CSV emission, table rendering and CLI parsing.
#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace easched::support {
namespace {

// ---- CSV -------------------------------------------------------------------

TEST(Csv, PlainFieldsUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, RowJoinsWithCommas) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b,c", "d"});
  EXPECT_EQ(out.str(), "a,\"b,c\",d\n");
}

TEST(Csv, NumericRowRoundTrips) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.numeric_row({1.5, -2.25, 1e-12});
  std::istringstream in(out.str());
  std::string field;
  std::getline(in, field, ',');
  EXPECT_DOUBLE_EQ(std::stod(field), 1.5);
  std::getline(in, field, ',');
  EXPECT_DOUBLE_EQ(std::stod(field), -2.25);
  std::getline(in, field);
  EXPECT_DOUBLE_EQ(std::stod(field), 1e-12);
}

// ---- TextTable -------------------------------------------------------------

TEST(TextTable, RendersHeaderRule) {
  TextTable t;
  t.header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, PadsColumnsToWidest) {
  TextTable t;
  t.header({"col", "x"});
  t.add_row({"longer-cell", "1"});
  const std::string out = t.render();
  // Header line must be as wide as the body line (trailing spaces trimmed,
  // so compare the position of the second column).
  const auto header_line = out.substr(0, out.find('\n'));
  EXPECT_GE(header_line.size(), std::string("col").size());
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t;
  t.header({"name", "value"});
  t.add_row({"x", "7"});
  const std::string out = t.render();
  // "7" must be right-aligned under "value": it appears at the line end.
  const auto last_line_start = out.rfind('\n', out.size() - 2);
  const std::string last = out.substr(last_line_start + 1);
  EXPECT_EQ(last.back(), '\n');
  EXPECT_EQ(last[last.size() - 2], '7');
}

TEST(TextTable, NumFormatsDecimals) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(-1.05, 1), "-1.1");
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("3"), std::string::npos);
}

// ---- CliArgs ---------------------------------------------------------------

TEST(Cli, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--policy", "SB", "--seed", "42"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get("policy", ""), "SB");
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(Cli, ParsesEqualsSyntax) {
  const char* argv[] = {"prog", "--lmin=0.4"};
  CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("lmin", 0), 0.4);
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--csv"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.get_bool("csv", false));
  EXPECT_TRUE(args.has("csv"));
}

TEST(Cli, MissingKeyYieldsFallback) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("absent", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(args.get_int("absent", -3), -3);
  EXPECT_FALSE(args.get_bool("absent", false));
  EXPECT_FALSE(args.has("absent"));
}

TEST(Cli, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "generate", "--out", "x.swf", "extra"};
  CliArgs args(5, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "generate");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a", "yes", "--b", "off", "--c", "1"};
  CliArgs args(7, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

TEST(Cli, FlagFollowedByFlag) {
  const char* argv[] = {"prog", "--csv", "--fast"};
  CliArgs args(3, argv);
  EXPECT_TRUE(args.get_bool("csv", false));
  EXPECT_TRUE(args.get_bool("fast", false));
}

TEST(Cli, DuplicateFlagLastOneWins) {
  const char* argv[] = {"prog", "--seed=1", "--policy", "SB", "--seed=2"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("seed", 0), 2);
  EXPECT_EQ(args.duplicate_count(), 1u);
  // Non-duplicated keys are unaffected.
  EXPECT_EQ(args.get("policy", ""), "SB");
}

TEST(Cli, DuplicateAcrossSyntaxes) {
  // `--k v` then `--k=v2` then bare `--k` are all the same key; the bare
  // form overwrites with "true" like any other last occurrence.
  const char* argv[] = {"prog", "--lmin", "0.2", "--lmin=0.4", "--lmin"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.get_bool("lmin", false));
  EXPECT_EQ(args.duplicate_count(), 2u);
}

TEST(Cli, NoDuplicatesCountsZero) {
  const char* argv[] = {"prog", "--a=1", "--b=2"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.duplicate_count(), 0u);
}

}  // namespace
}  // namespace easched::support
