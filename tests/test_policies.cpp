// Tests for the baseline policies (RD, RR, BF, DBF) and the score-based
// policy's action generation.
#include <gtest/gtest.h>

#include <set>

#include "core/score_based_policy.hpp"
#include "policies/backfilling.hpp"
#include "policies/dynamic_backfilling.hpp"
#include "policies/placement_common.hpp"
#include "policies/random_policy.hpp"
#include "policies/round_robin.hpp"
#include "test_fixtures.hpp"

namespace easched::policies {
namespace {

using datacenter::HostId;
using datacenter::VmId;
using datacenter::VmState;
using sched::Action;
using easched::testing::SmallDc;
using easched::testing::make_job;

struct PolicyHarness : SmallDc {
  support::Rng rng{123};
  explicit PolicyHarness(std::size_t n = 4,
                         datacenter::DatacenterConfig base = {})
      : SmallDc(n, std::move(base)) {}

  std::vector<Action> run_policy(sched::Policy& policy,
                                 std::vector<VmId> queue) {
    sched::SchedContext ctx{dc, queue, rng};
    return policy.schedule(ctx);
  }
};

// ---- helpers ---------------------------------------------------------------

TEST(PlacementCommon, OnHostsFiltersStates) {
  PolicyHarness f(3);
  f.dc.power_off(1);
  EXPECT_EQ(on_hosts(f.dc).size(), 2u);
  f.simulator.run_until(20.0);
  EXPECT_EQ(on_hosts(f.dc), (std::vector<HostId>{0, 2}));
}

TEST(PlacementCommon, BestFitPicksTightestHost) {
  PolicyHarness f(3);
  f.admit_and_place(make_job(200, 512, 10000), 1);
  f.simulator.run_until(100.0);
  const VmId v = f.dc.admit_job(make_job(100, 512));
  // Host 1 at 50 % CPU is the tightest feasible fit.
  EXPECT_EQ(best_fit_host(f.dc, v), 1u);
}

TEST(PlacementCommon, BestFitReturnsNoHostWhenNothingFits) {
  PolicyHarness f(1);
  f.admit_and_place(make_job(400, 512, 10000), 0);
  f.simulator.run_until(100.0);
  const VmId v = f.dc.admit_job(make_job(100, 512));
  EXPECT_EQ(best_fit_host(f.dc, v), datacenter::kNoHost);
}

// ---- Random ----------------------------------------------------------------

TEST(RandomPolicy, PlacesEveryQueuedVmSomewhereValid) {
  PolicyHarness f(4);
  RandomPolicy policy;
  std::vector<VmId> queue;
  for (int i = 0; i < 8; ++i) queue.push_back(f.dc.admit_job(make_job()));
  const auto actions = f.run_policy(policy, queue);
  EXPECT_EQ(actions.size(), 8u);
  for (const auto& a : actions) {
    EXPECT_EQ(a.kind, Action::Kind::kPlace);
    EXPECT_LT(a.host, 4u);
  }
}

TEST(RandomPolicy, SpreadsAcrossHosts) {
  PolicyHarness f(4);
  RandomPolicy policy;
  std::vector<VmId> queue;
  for (int i = 0; i < 40; ++i)
    queue.push_back(f.dc.admit_job(make_job(100, 50)));
  const auto actions = f.run_policy(policy, queue);
  std::set<HostId> used;
  for (const auto& a : actions) used.insert(a.host);
  EXPECT_EQ(used.size(), 4u);  // with 40 draws all 4 hosts get hit
}

TEST(RandomPolicy, OversubscribesCpuButNotMemory) {
  PolicyHarness f(1);
  f.admit_and_place(make_job(400, 3900, 10000), 0);
  f.simulator.run_until(100.0);
  RandomPolicy policy;
  // CPU-heavy VM: placeable despite CPU saturation.
  const VmId cpu_hungry = f.dc.admit_job(make_job(400, 100));
  EXPECT_EQ(f.run_policy(policy, {cpu_hungry}).size(), 1u);
  // Memory-heavy VM: not placeable.
  const VmId mem_hungry = f.dc.admit_job(make_job(50, 1000));
  EXPECT_TRUE(f.run_policy(policy, {mem_hungry}).empty());
}

TEST(RandomPolicy, NoOnlineHostsNoActions) {
  PolicyHarness f(2);
  f.dc.power_off(0);
  f.dc.power_off(1);
  f.simulator.run_until(20.0);
  RandomPolicy policy;
  const VmId v = f.dc.admit_job(make_job());
  EXPECT_TRUE(f.run_policy(policy, {v}).empty());
}

// ---- Round Robin -----------------------------------------------------------

TEST(RoundRobin, CyclesThroughHosts) {
  PolicyHarness f(4);
  RoundRobinPolicy policy;
  std::vector<VmId> queue;
  for (int i = 0; i < 4; ++i) queue.push_back(f.dc.admit_job(make_job()));
  const auto actions = f.run_policy(policy, queue);
  ASSERT_EQ(actions.size(), 4u);
  std::set<HostId> used;
  for (const auto& a : actions) used.insert(a.host);
  EXPECT_EQ(used.size(), 4u);  // one per host
}

TEST(RoundRobin, ContinuesCursorAcrossRounds) {
  PolicyHarness f(4);
  RoundRobinPolicy policy;
  const auto first = f.run_policy(policy, {f.dc.admit_job(make_job())});
  const auto second = f.run_policy(policy, {f.dc.admit_job(make_job())});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].host, second[0].host);
}

TEST(RoundRobin, SkipsMemoryFullHosts) {
  PolicyHarness f(2);
  f.admit_and_place(make_job(100, 4000, 10000), 0);
  f.simulator.run_until(100.0);
  RoundRobinPolicy policy;
  std::vector<VmId> queue{f.dc.admit_job(make_job(100, 512)),
                          f.dc.admit_job(make_job(100, 512))};
  const auto actions = f.run_policy(policy, queue);
  ASSERT_EQ(actions.size(), 2u);
  for (const auto& a : actions) EXPECT_EQ(a.host, 1u);
}

TEST(RoundRobin, AccountsForWithinRoundMemory) {
  PolicyHarness f(2);
  RoundRobinPolicy policy;
  // Two 3 GB VMs cannot share one 4 GB host even within a single round.
  std::vector<VmId> queue{f.dc.admit_job(make_job(100, 3000)),
                          f.dc.admit_job(make_job(100, 3000))};
  const auto actions = f.run_policy(policy, queue);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_NE(actions[0].host, actions[1].host);
}

// ---- Backfilling -----------------------------------------------------------

TEST(Backfilling, ConsolidatesOntoFewestHosts) {
  PolicyHarness f(4);
  BackfillingPolicy policy;
  std::vector<VmId> queue;
  for (int i = 0; i < 4; ++i)
    queue.push_back(f.dc.admit_job(make_job(100, 512)));
  const auto actions = f.run_policy(policy, queue);
  ASSERT_EQ(actions.size(), 4u);
  std::set<HostId> used;
  for (const auto& a : actions) used.insert(a.host);
  EXPECT_EQ(used.size(), 1u);  // all four 1-core VMs fit one 4-core host
}

TEST(Backfilling, NeverOversubscribes) {
  PolicyHarness f(2);
  BackfillingPolicy policy;
  std::vector<VmId> queue;
  for (int i = 0; i < 3; ++i)
    queue.push_back(f.dc.admit_job(make_job(300, 512)));
  const auto actions = f.run_policy(policy, queue);
  // 3 x 300 % over 2 x 400 %: only two fit; the third waits.
  EXPECT_EQ(actions.size(), 2u);
  EXPECT_NE(actions[0].host, actions[1].host);
}

TEST(Backfilling, PrefersPartiallyFilledHost) {
  PolicyHarness f(3);
  f.admit_and_place(make_job(200, 512, 10000), 2);
  f.simulator.run_until(100.0);
  BackfillingPolicy policy;
  const auto actions =
      f.run_policy(policy, {f.dc.admit_job(make_job(100, 512))});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].host, 2u);
}

TEST(Backfilling, NoMigrationCapability) {
  BackfillingPolicy policy;
  EXPECT_FALSE(policy.uses_migration());
  EXPECT_EQ(policy.name(), "BF");
}

// ---- Dynamic Backfilling ---------------------------------------------------

TEST(DynamicBackfilling, EmitsMigrationsToEmptyDonorHost) {
  PolicyHarness f(2);
  // Host 0 nearly full, host 1 has one small VM: host 1 is the donor.
  f.admit_and_place(make_job(200, 512, 50000), 0);
  f.admit_and_place(make_job(100, 512, 50000), 0);
  f.admit_and_place(make_job(100, 512, 50000), 1);
  f.simulator.run_until(200.0);

  DynamicBackfillingPolicy policy(4, /*consolidation_period_s=*/0);
  const auto actions = f.run_policy(policy, {});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, Action::Kind::kMigrate);
  EXPECT_EQ(actions[0].host, 0u);
  EXPECT_TRUE(policy.uses_migration());
}

TEST(DynamicBackfilling, NoMigrationWhenDonorCannotEmpty) {
  PolicyHarness f(2);
  f.admit_and_place(make_job(300, 512, 50000), 0);
  f.admit_and_place(make_job(200, 512, 50000), 1);
  f.simulator.run_until(200.0);
  DynamicBackfillingPolicy policy(4, 0);
  // Moving the 200 % VM to host 0 would exceed 400 %; nothing moves.
  EXPECT_TRUE(f.run_policy(policy, {}).empty());
}

TEST(DynamicBackfilling, PlacementTakesPriorityOverConsolidation) {
  PolicyHarness f(2);
  f.admit_and_place(make_job(100, 512, 50000), 1);
  f.simulator.run_until(200.0);
  DynamicBackfillingPolicy policy(4, 0);
  const auto actions =
      f.run_policy(policy, {f.dc.admit_job(make_job(100, 512))});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, Action::Kind::kPlace);
}

TEST(DynamicBackfilling, RespectsConsolidationPeriod) {
  PolicyHarness f(2);
  f.admit_and_place(make_job(200, 512, 50000), 0);
  f.admit_and_place(make_job(100, 512, 50000), 1);
  f.simulator.run_until(200.0);
  DynamicBackfillingPolicy policy(4, /*consolidation_period_s=*/1e9);
  // First sweep runs (last_consolidation starts at -inf)...
  EXPECT_EQ(f.run_policy(policy, {}).size(), 1u);
  // ...but a second sweep within the period is suppressed.
  EXPECT_TRUE(f.run_policy(policy, {}).empty());
}

// ---- Score-based policy ----------------------------------------------------

TEST(ScoreBased, PlacesQueuedVms) {
  PolicyHarness f(3);
  core::ScoreBasedPolicy policy(core::ScoreBasedConfig::sb0());
  std::vector<VmId> queue{f.dc.admit_job(make_job()),
                          f.dc.admit_job(make_job())};
  const auto actions = f.run_policy(policy, queue);
  EXPECT_EQ(actions.size(), 2u);
  for (const auto& a : actions) EXPECT_EQ(a.kind, Action::Kind::kPlace);
}

TEST(ScoreBased, ConsolidatesLikeBackfilling) {
  PolicyHarness f(4);
  core::ScoreBasedPolicy policy(core::ScoreBasedConfig::sb0());
  std::vector<VmId> queue;
  for (int i = 0; i < 4; ++i)
    queue.push_back(f.dc.admit_job(make_job(100, 512)));
  const auto actions = f.run_policy(policy, queue);
  ASSERT_EQ(actions.size(), 4u);
  std::set<HostId> used;
  for (const auto& a : actions) used.insert(a.host);
  EXPECT_EQ(used.size(), 1u);
}

TEST(ScoreBased, LeavesUnplaceableVmInQueue) {
  PolicyHarness f(1);
  f.admit_and_place(make_job(400, 512, 50000), 0);
  f.simulator.run_until(100.0);
  core::ScoreBasedPolicy policy(core::ScoreBasedConfig::sb0());
  const auto actions =
      f.run_policy(policy, {f.dc.admit_job(make_job(100, 512))});
  EXPECT_TRUE(actions.empty());
}

TEST(ScoreBased, Sb1PrefersFastCreationHosts) {
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::slow(), datacenter::HostSpec::fast()};
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(2);
  datacenter::Datacenter dc(simulator, config, recorder);
  support::Rng rng{1};

  const VmId v = dc.admit_job(make_job());
  std::vector<VmId> queue{v};
  sched::SchedContext ctx{dc, queue, rng};

  core::ScoreBasedPolicy sb1(core::ScoreBasedConfig::sb1());
  const auto actions = sb1.schedule(ctx);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].host, 1u);  // fast host: Cc 30 beats 60
}

TEST(ScoreBased, MigrationOnlyDuringConsolidationRounds) {
  PolicyHarness f(2);
  f.admit_and_place(make_job(200, 512, 50000), 0);
  f.admit_and_place(make_job(100, 512, 50000), 1);
  f.simulator.run_until(200.0);

  auto config = core::ScoreBasedConfig::sb();
  config.migration_period_s = 1e9;
  config.min_migration_gain = 1.0;
  core::ScoreBasedPolicy policy(config);
  // First round consolidates; the second is inside the period.
  const auto first = f.run_policy(policy, {});
  const auto second = f.run_policy(policy, {});
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(second.empty());
  for (const auto& a : first) EXPECT_EQ(a.kind, Action::Kind::kMigrate);
}

TEST(ScoreBased, ChoosePowerOffPrefersWorstOverheads) {
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::fast(), datacenter::HostSpec::slow()};
  config.duration_sigma_ratio = 0;
  sim::Simulator simulator;
  metrics::Recorder recorder(2);
  datacenter::Datacenter dc(simulator, config, recorder);
  support::Rng rng{1};
  std::vector<VmId> queue;
  sched::SchedContext ctx{dc, queue, rng};

  core::ScoreBasedPolicy policy(core::ScoreBasedConfig::sb());
  const auto chosen = policy.choose_power_off(ctx, {0, 1});
  EXPECT_EQ(chosen, 1u);  // slow node sheds first
}

TEST(ScoreBased, VariantLabelsAndFlags) {
  EXPECT_EQ(core::ScoreBasedConfig::sb0().label, "SB0");
  EXPECT_FALSE(core::ScoreBasedConfig::sb0().params.use_virt);
  EXPECT_TRUE(core::ScoreBasedConfig::sb1().params.use_virt);
  EXPECT_FALSE(core::ScoreBasedConfig::sb1().params.use_conc);
  EXPECT_TRUE(core::ScoreBasedConfig::sb2().params.use_conc);
  EXPECT_FALSE(core::ScoreBasedConfig::sb2().migration);
  EXPECT_TRUE(core::ScoreBasedConfig::sb().migration);
  EXPECT_TRUE(core::ScoreBasedConfig::sb_full().params.use_sla);
  EXPECT_TRUE(core::ScoreBasedConfig::sb_full().params.use_fault);
}

}  // namespace
}  // namespace easched::policies
