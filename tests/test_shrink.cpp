// Tests for the ddmin scenario shrinker (validate/shrink.hpp): convergence
// to the minimal failure-inducing job set on seeded 500-job scenarios,
// 1-minimality on monotone and interacting predicates, and the budget /
// non-reproducing edge cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "test_fixtures.hpp"
#include "validate/shrink.hpp"
#include "workload/synthetic.hpp"

namespace easched::validate {
namespace {

using easched::testing::make_job;

/// A `size`-job filler workload with distinctive mem_mb tags planted at the
/// given indices; the predicates below key on the tags, standing in for
/// "this combination of jobs trips the invariant".
workload::Workload tagged_workload(std::size_t size,
                                   const std::vector<std::size_t>& culprits) {
  workload::Workload jobs;
  for (std::size_t i = 0; i < size; ++i) {
    jobs.push_back(make_job(100, 512, 1000 + static_cast<double>(i), 1.5,
                            static_cast<double>(i) * 10));
    jobs.back().id = static_cast<std::uint32_t>(i);
  }
  for (std::size_t k = 0; k < culprits.size(); ++k) {
    jobs[culprits[k]].mem_mb = 7777 + static_cast<double>(k);
  }
  return jobs;
}

/// True when every planted tag [7777, 7777 + count) is still present.
bool has_all_tags(const workload::Workload& jobs, int count) {
  for (int k = 0; k < count; ++k) {
    const double tag = 7777 + k;
    const bool present =
        std::any_of(jobs.begin(), jobs.end(),
                    [tag](const workload::Job& j) { return j.mem_mb == tag; });
    if (!present) return false;
  }
  return true;
}

// The acceptance-criteria scenario: 500 jobs, 3 scattered culprits, and
// the shrinker must land at (well under) 20 jobs. For an independent-culprit
// predicate ddmin is 1-minimal, so it finds exactly the 3.
TEST(Shrink, FiveHundredJobsShrinkToTheCulprits) {
  const auto jobs = tagged_workload(500, {17, 250, 483});
  const auto result = shrink_workload(
      jobs, [](const workload::Workload& w) { return has_all_tags(w, 3); });
  EXPECT_TRUE(result.reproduced);
  EXPECT_LE(result.jobs.size(), 20u);
  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_TRUE(has_all_tags(result.jobs, 3));
  // ddmin replays runs, so the budget matters: well under the default cap.
  EXPECT_LT(result.tests_run, 500u);
}

TEST(Shrink, SingleCulpritShrinksToOneJob) {
  const auto jobs = tagged_workload(256, {200});
  const auto result = shrink_workload(
      jobs, [](const workload::Workload& w) { return has_all_tags(w, 1); });
  EXPECT_TRUE(result.reproduced);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].mem_mb, 7777.0);
}

TEST(Shrink, PairInteractionIsPreserved) {
  // The failure needs both tags at once — neither alone reproduces.
  const auto jobs = tagged_workload(300, {3, 296});
  const auto result = shrink_workload(
      jobs, [](const workload::Workload& w) { return has_all_tags(w, 2); });
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.jobs.size(), 2u);
  EXPECT_TRUE(has_all_tags(result.jobs, 2));
}

TEST(Shrink, MonotoneSizePredicateReachesTheThreshold) {
  // Fails iff >= 10 jobs survive: 1-minimality means exactly 10 remain.
  const auto jobs = tagged_workload(100, {});
  const auto result = shrink_workload(
      jobs, [](const workload::Workload& w) { return w.size() >= 10; });
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.jobs.size(), 10u);
}

TEST(Shrink, NonReproducingInputIsReturnedUnchanged) {
  const auto jobs = tagged_workload(50, {});
  const auto result =
      shrink_workload(jobs, [](const workload::Workload&) { return false; });
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.tests_run, 1u);
  EXPECT_EQ(result.jobs.size(), jobs.size());
}

TEST(Shrink, BudgetCapsPredicateEvaluations) {
  const auto jobs = tagged_workload(400, {40, 360});
  ShrinkOptions options;
  options.max_tests = 10;
  const auto result = shrink_workload(
      jobs, [](const workload::Workload& w) { return has_all_tags(w, 2); },
      options);
  EXPECT_TRUE(result.reproduced);
  EXPECT_LE(result.tests_run, 10u);
  // Whatever was reached still fails — the shrinker never returns a
  // non-failing reduction.
  EXPECT_TRUE(has_all_tags(result.jobs, 2));
}

TEST(Shrink, EmptyAndSingletonInputsAreHandled) {
  const auto always = [](const workload::Workload&) { return true; };
  const auto one = shrink_workload(tagged_workload(1, {}), always);
  EXPECT_TRUE(one.reproduced);
  EXPECT_EQ(one.jobs.size(), 1u);
  const auto none = shrink_workload({}, always);
  EXPECT_TRUE(none.reproduced);
  EXPECT_TRUE(none.jobs.empty());
}

}  // namespace
}  // namespace easched::validate
