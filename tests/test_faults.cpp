// Tests for the deterministic fault-injection layer (faults/) and its
// recovery half inside the Datacenter: plan parsing, the injector's
// determinism contract, the per-operation fail/hang/slow semantics, the
// quarantine state machine, and the end-to-end guarantee that a fault-heavy
// experiment still finishes every job with a bit-identical event trace
// across runs and solver thread counts.
#include <gtest/gtest.h>

#include <fstream>

#include "core/score_based_policy.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "test_fixtures.hpp"
#include "workload/synthetic.hpp"

namespace easched::faults {
namespace {

using datacenter::HostState;
using datacenter::VmState;
using easched::testing::chaos_experiment_plan;
using easched::testing::chaos_workload;
using easched::testing::InjectedDc;
using easched::testing::make_job;

// ---- plan parsing -----------------------------------------------------------

TEST(FaultPlanParse, InlineSpec) {
  const FaultPlan plan = parse_fault_plan(
      "seed=7,migrate.fail=0.05,create.hang=0.01,create.slow=0.1,"
      "create.slow_factor=2.5,lemon=3:8,timeout_factor=5,retry_base=2,"
      "retry_cap=60,retry_jitter=0.25,quarantine_budget=2,"
      "quarantine_window=600,quarantine_cooldown=300");
  EXPECT_TRUE(plan.enabled);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.spec(FaultOp::kMigrate).fail_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.spec(FaultOp::kCreate).hang_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.spec(FaultOp::kCreate).slow_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.spec(FaultOp::kCreate).slow_factor, 2.5);
  ASSERT_EQ(plan.lemons.size(), 1u);
  EXPECT_EQ(plan.lemons[0].host, 3u);
  EXPECT_DOUBLE_EQ(plan.lemons[0].multiplier, 8.0);
  EXPECT_DOUBLE_EQ(plan.op_timeout_factor, 5.0);
  EXPECT_DOUBLE_EQ(plan.retry_base_s, 2.0);
  EXPECT_DOUBLE_EQ(plan.retry_cap_s, 60.0);
  EXPECT_DOUBLE_EQ(plan.retry_jitter, 0.25);
  EXPECT_EQ(plan.quarantine_budget, 2);
  EXPECT_DOUBLE_EQ(plan.quarantine_window_s, 600.0);
  EXPECT_DOUBLE_EQ(plan.quarantine_cooldown_s, 300.0);
}

TEST(FaultPlanParse, FileSpecWithCommentsAndBlankLines) {
  const std::string path = ::testing::TempDir() + "fault_plan_test.txt";
  {
    std::ofstream out(path);
    out << "# chaos scenario\n"
        << "seed=11\n"
        << "\n"
        << "power_on.fail=0.2   # flaky BMCs\n"
        << "lemon=1:4\n"
        << "lemon=5:2\n";
  }
  const FaultPlan plan = parse_fault_plan(path);
  EXPECT_EQ(plan.seed, 11u);
  EXPECT_DOUBLE_EQ(plan.spec(FaultOp::kPowerOn).fail_prob, 0.2);
  ASSERT_EQ(plan.lemons.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.lemon_multiplier(1), 4.0);
  EXPECT_DOUBLE_EQ(plan.lemon_multiplier(5), 2.0);
  EXPECT_DOUBLE_EQ(plan.lemon_multiplier(0), 1.0);
}

TEST(FaultPlanParse, RoundTripsThroughToString) {
  FaultPlan plan;
  plan.seed = 99;
  plan.spec(FaultOp::kMigrate) = {0.05, 0.01, 0.2, 3.5};
  plan.spec(FaultOp::kCheckpoint).fail_prob = 0.3;
  plan.lemons.push_back({4, 6.0});
  plan.op_timeout_factor = 6;
  plan.retry_base_s = 3;
  plan.quarantine_budget = 5;

  const std::string path = ::testing::TempDir() + "fault_plan_roundtrip.txt";
  {
    std::ofstream out(path);
    out << plan.to_string();
  }
  const FaultPlan back = parse_fault_plan(path);
  EXPECT_EQ(back.seed, plan.seed);
  for (std::size_t i = 0; i < kNumFaultOps; ++i) {
    EXPECT_DOUBLE_EQ(back.ops[i].fail_prob, plan.ops[i].fail_prob) << i;
    EXPECT_DOUBLE_EQ(back.ops[i].hang_prob, plan.ops[i].hang_prob) << i;
    EXPECT_DOUBLE_EQ(back.ops[i].slow_prob, plan.ops[i].slow_prob) << i;
  }
  EXPECT_DOUBLE_EQ(back.spec(FaultOp::kMigrate).slow_factor, 3.5);
  ASSERT_EQ(back.lemons.size(), 1u);
  EXPECT_DOUBLE_EQ(back.lemon_multiplier(4), 6.0);
  EXPECT_DOUBLE_EQ(back.op_timeout_factor, 6.0);
  EXPECT_DOUBLE_EQ(back.retry_base_s, 3.0);
  EXPECT_EQ(back.quarantine_budget, 5);
}

TEST(FaultPlanParse, BreakerKeysParseAndRoundTrip) {
  const FaultPlan plan = parse_fault_plan(
      "breaker_threshold=2,breaker_probe_after=300,breaker_dead_after=4");
  EXPECT_EQ(plan.breaker_threshold, 2);
  EXPECT_DOUBLE_EQ(plan.breaker_probe_after_s, 300.0);
  EXPECT_EQ(plan.breaker_dead_after, 4);
  // Armed breakers survive the textual round trip; a default plan keeps
  // emitting the pre-breaker key set.
  std::string inline_spec = plan.to_string();
  for (char& c : inline_spec) {
    if (c == '\n') c = ',';
  }
  const FaultPlan back = parse_fault_plan(inline_spec);
  EXPECT_EQ(back.breaker_threshold, 2);
  EXPECT_DOUBLE_EQ(back.breaker_probe_after_s, 300.0);
  EXPECT_EQ(back.breaker_dead_after, 4);
  EXPECT_EQ(FaultPlan{}.to_string().find("breaker"), std::string::npos);
}

TEST(FaultPlanParse, RejectsBadInput) {
  EXPECT_THROW(parse_fault_plan("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("create.explode=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("migrate.fail=lots"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("lemon=3"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("lemon=3:-1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("/no/such/plan/file"), std::invalid_argument);
}

TEST(FaultPlan, LemonMultipliersCombine) {
  FaultPlan plan;
  plan.lemons.push_back({2, 3.0});
  plan.lemons.push_back({2, 2.0});
  EXPECT_DOUBLE_EQ(plan.lemon_multiplier(2), 6.0);
  EXPECT_DOUBLE_EQ(plan.lemon_multiplier(0), 1.0);
}

// ---- injector determinism ---------------------------------------------------

FaultPlan mixed_plan() {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = 1234;
  plan.spec(FaultOp::kCreate) = {0.2, 0.1, 0.1, 2.0};
  plan.spec(FaultOp::kMigrate) = {0.3, 0.05, 0.05, 3.0};
  plan.lemons.push_back({1, 2.0});
  return plan;
}

TEST(FaultInjector, SamePlanYieldsIdenticalDecisionsAndTrace) {
  FaultInjector a(mixed_plan());
  FaultInjector b(mixed_plan());
  for (int i = 0; i < 300; ++i) {
    const FaultOp op = i % 2 == 0 ? FaultOp::kCreate : FaultOp::kMigrate;
    const datacenter::HostId h = static_cast<datacenter::HostId>(i % 3);
    const FaultOutcome oa = a.decide(op, h, i * 10.0);
    const FaultOutcome ob = b.decide(op, h, i * 10.0);
    ASSERT_EQ(oa.kind, ob.kind) << "decision " << i;
    ASSERT_DOUBLE_EQ(oa.fail_fraction, ob.fail_fraction);
    ASSERT_DOUBLE_EQ(oa.slow_factor, ob.slow_factor);
  }
  EXPECT_GT(a.injected_count(), 0u);
  EXPECT_EQ(a.injected_count(), b.injected_count());
  EXPECT_EQ(a.trace(), b.trace());
}

TEST(FaultInjector, EditingOneOpNeverShiftsOtherDecisions) {
  // Two draws per decision regardless of outcome or probabilities: raising
  // the migrate probabilities must leave every create decision untouched.
  FaultPlan quiet = mixed_plan();
  quiet.spec(FaultOp::kMigrate) = {};
  FaultPlan noisy = mixed_plan();
  noisy.spec(FaultOp::kMigrate) = {0.9, 0.05, 0.05, 3.0};

  FaultInjector a(quiet);
  FaultInjector b(noisy);
  for (int i = 0; i < 300; ++i) {
    const FaultOp op = i % 2 == 0 ? FaultOp::kCreate : FaultOp::kMigrate;
    const FaultOutcome oa = a.decide(op, 0, i * 10.0);
    const FaultOutcome ob = b.decide(op, 0, i * 10.0);
    if (op == FaultOp::kCreate) {
      ASSERT_EQ(oa.kind, ob.kind) << "create decision " << i << " shifted";
      ASSERT_DOUBLE_EQ(oa.fail_fraction, ob.fail_fraction);
      ASSERT_DOUBLE_EQ(oa.slow_factor, ob.slow_factor);
    }
  }
}

TEST(FaultInjector, LemonHostConcentratesFaults) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kMigrate).fail_prob = 0.1;
  plan.lemons.push_back({5, 5.0});
  FaultInjector injector(plan);

  int lemon_faults = 0;
  int normal_faults = 0;
  for (int i = 0; i < 2000; ++i) {
    if (injector.decide(FaultOp::kMigrate, 5, i).injected()) ++lemon_faults;
    if (injector.decide(FaultOp::kMigrate, 0, i).injected()) ++normal_faults;
  }
  EXPECT_GT(normal_faults, 0);
  EXPECT_GT(lemon_faults, 3 * normal_faults);
}

TEST(FaultInjector, RenormalisesWhenLemonSpillsPastOne) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kCreate) = {0.5, 0.5, 0.0, 1.0};
  plan.lemons.push_back({0, 4.0});
  FaultInjector injector(plan);
  // Scaled sum is 4 -> renormalised to 1: every decision injects, and both
  // categories keep their relative weight (roughly half/half).
  int fails = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultOutcome out = injector.decide(FaultOp::kCreate, 0, i);
    ASSERT_TRUE(out.injected());
    if (out.kind == FaultOutcome::Kind::kFail) ++fails;
  }
  EXPECT_GT(fails, 50);
  EXPECT_LT(fails, 150);
}

TEST(FaultInjector, InertPlanInjectsNothing) {
  FaultInjector injector(FaultPlan{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.decide(FaultOp::kCreate, 0, i).injected());
  }
  EXPECT_EQ(injector.injected_count(), 0u);
  EXPECT_TRUE(injector.trace().empty());
}

// ---- datacenter recovery semantics ------------------------------------------

TEST(FaultedDatacenter, FailedCreationRequeuesTheVm) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kCreate).fail_prob = 1.0;
  InjectedDc t(plan);

  faults::FaultOp seen_op = faults::FaultOp::kMigrate;
  bool seen_timeout = true;
  t.f.dc.on_operation_failed = [&](faults::FaultOp op, datacenter::VmId,
                                   datacenter::HostId, bool timed_out) {
    seen_op = op;
    seen_timeout = timed_out;
  };

  const auto v = t.f.admit_and_place(make_job(), 0);
  // The injected failure shortens the creation (fraction in [0.1, 0.9] of
  // 40 s) and takes the failure path at its end.
  t.f.simulator.run_until(50.0);
  EXPECT_EQ(t.f.dc.vm(v).state, VmState::kQueued);
  EXPECT_EQ(t.f.dc.vm(v).restarts, 1u);
  EXPECT_EQ(t.f.recorder.counts.op_failures, 1u);
  EXPECT_EQ(t.f.recorder.counts.op_timeouts, 0u);
  EXPECT_EQ(seen_op, faults::FaultOp::kCreate);
  EXPECT_FALSE(seen_timeout);
  EXPECT_TRUE(t.f.dc.host(0).ops.empty());
}

TEST(FaultedDatacenter, HungCreationIsAbortedAtTheDeadline) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kCreate).hang_prob = 1.0;
  InjectedDc t(plan);

  const auto v = t.f.admit_and_place(make_job(), 0);
  // Deadline = timeout_factor (4) x mean creation (40 s) = 160 s.
  t.f.simulator.run_until(150.0);
  EXPECT_EQ(t.f.dc.vm(v).state, VmState::kCreating);  // still wedged
  t.f.simulator.run_until(200.0);
  EXPECT_EQ(t.f.dc.vm(v).state, VmState::kQueued);
  EXPECT_EQ(t.f.recorder.counts.op_failures, 1u);
  EXPECT_EQ(t.f.recorder.counts.op_timeouts, 1u);
  EXPECT_TRUE(t.f.dc.host(0).ops.empty());
}

TEST(FaultedDatacenter, SlowCreationStillCompletes) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kCreate) = {0.0, 0.0, 1.0, 2.0};
  InjectedDc t(plan);

  const auto v = t.f.admit_and_place(make_job(), 0);
  // Stretch factor is in [1.5, 2.5] -> creation lands in [60, 100] s,
  // comfortably inside the 160 s deadline.
  t.f.simulator.run_until(59.0);
  EXPECT_EQ(t.f.dc.vm(v).state, VmState::kCreating);
  t.f.simulator.run_until(120.0);
  EXPECT_EQ(t.f.dc.vm(v).state, VmState::kRunning);
  EXPECT_EQ(t.f.recorder.counts.op_failures, 0u);
}

TEST(FaultedDatacenter, FailedMigrationRollsBackToSource) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kMigrate).fail_prob = 1.0;
  InjectedDc t(plan);

  const auto v = t.f.admit_and_place(make_job(100, 512, 50000), 0);
  t.f.simulator.run_until(100.0);
  ASSERT_EQ(t.f.dc.vm(v).state, VmState::kRunning);
  t.f.dc.migrate(v, 1);
  t.f.simulator.run_until(200.0);

  EXPECT_EQ(t.f.dc.vm(v).state, VmState::kRunning);
  EXPECT_EQ(t.f.dc.vm(v).host, 0u);
  EXPECT_EQ(t.f.dc.vm(v).migration_source, datacenter::kNoHost);
  EXPECT_EQ(t.f.recorder.counts.rollbacks, 1u);
  EXPECT_TRUE(t.f.dc.host(1).residents.empty());
  EXPECT_TRUE(t.f.dc.host(0).ops.empty());
  EXPECT_TRUE(t.f.dc.host(1).ops.empty());
}

TEST(FaultedDatacenter, BootFaultMarksHostFailedToStart) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kPowerOn).fail_prob = 1.0;
  InjectedDc t(plan);

  bool boot_failed = false;
  t.f.dc.on_host_boot_failed = [&](datacenter::HostId h) {
    boot_failed = h == 0;
  };
  t.f.dc.power_off(0);
  t.f.simulator.run_until(20.0);
  ASSERT_EQ(t.f.dc.host(0).state, HostState::kOff);
  t.f.dc.power_on(0);
  t.f.simulator.run_until(400.0);  // shortened boot, then the failure

  EXPECT_EQ(t.f.dc.host(0).state, HostState::kOff);
  EXPECT_EQ(t.f.recorder.counts.boot_failures, 1u);
  EXPECT_TRUE(boot_failed);
}

TEST(FaultedDatacenter, QuarantineAfterBudgetThenCooldownRelease) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kCreate).fail_prob = 1.0;
  datacenter::QuarantinePolicy quarantine;
  quarantine.failure_budget = 2;
  quarantine.window_s = 3600;
  quarantine.cooldown_s = 100;
  InjectedDc t(plan, 1, quarantine);

  const auto v = t.f.admit_and_place(make_job(), 0);
  t.f.simulator.run_until(50.0);  // first injected creation failure
  ASSERT_EQ(t.f.dc.vm(v).state, VmState::kQueued);
  EXPECT_FALSE(t.f.dc.host(0).quarantined);

  t.f.dc.place(v, 0);  // second failure exhausts the budget
  t.f.simulator.run_until(100.0);
  EXPECT_TRUE(t.f.dc.host(0).quarantined);
  EXPECT_FALSE(t.f.dc.host(0).is_placeable());
  EXPECT_EQ(t.f.recorder.counts.quarantines, 1u);

  // After the cooldown the host earns another chance.
  t.f.simulator.run_until(250.0);
  EXPECT_FALSE(t.f.dc.host(0).quarantined);
  EXPECT_TRUE(t.f.dc.host(0).is_placeable());
}

// Regression for the failure-window boundary comparison: a fault landing
// exactly window_s after the window opened belongs to a fresh window. The
// old `>` comparison counted it against the stale window, so periodic
// faults spaced exactly one window apart (deadline aborts land on exact
// multiples of timeout_factor x the deterministic creation time, and a
// cooldown expiry can re-open the window on the same round boundary)
// re-quarantined a host that never accumulated the budget within any
// single window.
TEST(FaultedDatacenter, FaultExactlyOnWindowBoundaryOpensFreshWindow) {
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kCreate).hang_prob = 1.0;  // abort at exactly 4 x 40 s
  datacenter::QuarantinePolicy quarantine;
  quarantine.failure_budget = 2;
  quarantine.window_s = 320;  // second abort lands exactly on the boundary
  quarantine.cooldown_s = 100;
  InjectedDc t(plan, 1, quarantine);

  const auto v = t.f.admit_and_place(make_job(), 0);
  t.f.simulator.run_until(160.0);  // first deadline abort, in-window fault
  ASSERT_EQ(t.f.dc.vm(v).state, VmState::kQueued);
  ASSERT_FALSE(t.f.dc.host(0).quarantined);

  t.f.dc.place(v, 0);              // second hang, aborts at exactly t = 320
  t.f.simulator.run_until(320.0);
  ASSERT_EQ(t.f.dc.vm(v).state, VmState::kQueued);
  EXPECT_FALSE(t.f.dc.host(0).quarantined);
  EXPECT_EQ(t.f.recorder.counts.quarantines, 0u);
}

TEST(FaultedDatacenter, FaultStrictlyInsideWindowStillQuarantines) {
  // Sanity pair for the boundary test above: widen the window by one second
  // and the same two aborts do exhaust the budget.
  FaultPlan plan;
  plan.enabled = true;
  plan.spec(FaultOp::kCreate).hang_prob = 1.0;
  datacenter::QuarantinePolicy quarantine;
  quarantine.failure_budget = 2;
  quarantine.window_s = 321;
  quarantine.cooldown_s = 100;
  InjectedDc t(plan, 1, quarantine);

  const auto v = t.f.admit_and_place(make_job(), 0);
  t.f.simulator.run_until(160.0);
  ASSERT_FALSE(t.f.dc.host(0).quarantined);
  t.f.dc.place(v, 0);
  t.f.simulator.run_until(320.0);
  EXPECT_TRUE(t.f.dc.host(0).quarantined);
  EXPECT_EQ(t.f.recorder.counts.quarantines, 1u);
}

// ---- end-to-end: fault-heavy experiments ------------------------------------

experiments::RunResult run_chaos(int solver_threads) {
  experiments::RunConfig config;
  config.datacenter = {};
  config.datacenter.hosts = experiments::evaluation_hosts(2, 3, 2);
  config.datacenter.seed = 5;
  core::ScoreBasedConfig sb = core::ScoreBasedConfig::sb();
  sb.solver_threads = solver_threads;
  config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(sb);
  config.faults = chaos_experiment_plan();
  config.horizon_s = 30 * sim::kDay;
  return experiments::run_experiment(chaos_workload(), std::move(config));
}

TEST(FaultExperiment, FaultHeavyRunFinishesEveryJob) {
  const auto result = run_chaos(1);
  EXPECT_FALSE(result.hit_horizon);
  EXPECT_EQ(result.jobs_finished, result.jobs_submitted);
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_FALSE(result.fault_trace.empty());
  EXPECT_GT(result.report.op_failures, 0u);
  EXPECT_GT(result.report.retries, 0u);
  // The formatted robustness line only appears on fault-heavy runs.
  EXPECT_FALSE(result.report.robustness_to_string().empty());
}

TEST(FaultExperiment, TraceIsDeterministicAcrossRuns) {
  const auto a = run_chaos(1);
  const auto b = run_chaos(1);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_DOUBLE_EQ(a.report.energy_kwh, b.report.energy_kwh);
}

TEST(FaultExperiment, TraceIsDeterministicAcrossSolverThreadCounts) {
  const auto serial = run_chaos(1);
  const auto threaded = run_chaos(3);
  EXPECT_EQ(serial.fault_trace, threaded.fault_trace);
  EXPECT_EQ(serial.events_dispatched, threaded.events_dispatched);
  EXPECT_DOUBLE_EQ(serial.report.energy_kwh, threaded.report.energy_kwh);
}

TEST(FaultExperiment, DisabledPlanIsBitIdenticalToNoPlan) {
  const auto run = [](bool with_inert_plan) {
    experiments::RunConfig config;
    config.datacenter.hosts = experiments::evaluation_hosts(1, 2, 1);
    config.datacenter.seed = 3;
    config.policy = "BF";
    if (with_inert_plan) config.faults = FaultPlan{};  // enabled == false
    return experiments::run_experiment(chaos_workload(), std::move(config));
  };
  const auto bare = run(false);
  const auto inert = run(true);
  EXPECT_TRUE(inert.fault_trace.empty());
  EXPECT_EQ(inert.faults_injected, 0u);
  EXPECT_EQ(bare.events_dispatched, inert.events_dispatched);
  EXPECT_DOUBLE_EQ(bare.report.energy_kwh, inert.report.energy_kwh);
  EXPECT_EQ(bare.report.migrations, inert.report.migrations);
}

}  // namespace
}  // namespace easched::faults
