// Unit and property tests for the Table-I power model.
#include <gtest/gtest.h>

#include "datacenter/power_model.hpp"

namespace easched::datacenter {
namespace {

TEST(PowerModel, Table1BreakpointsExact) {
  const PowerModel m = PowerModel::table1();
  EXPECT_DOUBLE_EQ(m.watts_on(0, 400), 230.0);
  EXPECT_DOUBLE_EQ(m.watts_on(100, 400), 259.0);
  EXPECT_DOUBLE_EQ(m.watts_on(200, 400), 273.0);
  EXPECT_DOUBLE_EQ(m.watts_on(300, 400), 291.0);
  EXPECT_DOUBLE_EQ(m.watts_on(400, 400), 304.0);
}

TEST(PowerModel, InterpolatesBetweenBreakpoints) {
  const PowerModel m = PowerModel::table1();
  // Halfway between 0 and 100 % of one core: (230+259)/2.
  EXPECT_DOUBLE_EQ(m.watts_on(50, 400), 244.5);
  EXPECT_DOUBLE_EQ(m.watts_on(350, 400), 297.5);
}

TEST(PowerModel, ScalesWithCapacity) {
  const PowerModel m = PowerModel::table1();
  // Utilisation is what matters: 50 of 200 == 100 of 400 == 25 %.
  EXPECT_DOUBLE_EQ(m.watts_on(50, 200), m.watts_on(100, 400));
}

TEST(PowerModel, ClampsAboveCapacity) {
  const PowerModel m = PowerModel::table1();
  EXPECT_DOUBLE_EQ(m.watts_on(1000, 400), 304.0);
}

TEST(PowerModel, ClampsNegativeUsage) {
  const PowerModel m = PowerModel::table1();
  EXPECT_DOUBLE_EQ(m.watts_on(-5, 400), 230.0);
}

TEST(PowerModel, IdleAndAuxiliaryStates) {
  const PowerModel m = PowerModel::table1();
  EXPECT_DOUBLE_EQ(m.watts_idle(), 230.0);
  EXPECT_DOUBLE_EQ(m.watts_off(), 10.0);
  EXPECT_DOUBLE_EQ(m.watts_boot(), 230.0);
}

TEST(PowerModel, TurningOffSavesMoreThan200W) {
  // Section III: "turn off idle machines, which saves more than 200W".
  const PowerModel m = PowerModel::table1();
  EXPECT_GT(m.watts_idle() - m.watts_off(), 200.0);
}

TEST(PowerModel, ConstantModelIgnoresLoad) {
  const PowerModel m = PowerModel::constant(250.0);
  EXPECT_DOUBLE_EQ(m.watts_on(0, 400), 250.0);
  EXPECT_DOUBLE_EQ(m.watts_on(400, 400), 250.0);
  EXPECT_DOUBLE_EQ(m.watts_idle(), 250.0);
}

TEST(PowerModel, CustomBreakpoints) {
  const PowerModel m({{0.0, 100.0}, {1.0, 200.0}}, 5.0, 100.0);
  EXPECT_DOUBLE_EQ(m.watts_on(200, 400), 150.0);
  EXPECT_DOUBLE_EQ(m.watts_off(), 5.0);
}

/// Property: power is monotonically non-decreasing in utilisation.
class PowerMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(PowerMonotonic, NonDecreasing) {
  const PowerModel m = PowerModel::table1();
  const double capacity = GetParam();
  double last = -1;
  for (double u = 0; u <= capacity; u += capacity / 64) {
    const double w = m.watts_on(u, capacity);
    EXPECT_GE(w, last);
    last = w;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, PowerMonotonic,
                         ::testing::Values(100.0, 200.0, 400.0, 800.0));

/// Property: energy proportionality of the Table-I curve — the dynamic
/// range (max-idle) is a modest fraction of idle, as the paper laments
/// ("idle wattage level should be decreased in the industry").
TEST(PowerModel, DynamicRangeIsSmallerThanIdle) {
  const PowerModel m = PowerModel::table1();
  const double dynamic = m.watts_on(400, 400) - m.watts_idle();
  EXPECT_LT(dynamic, m.watts_idle());
  EXPECT_NEAR(dynamic, 74.0, 1e-9);
}

}  // namespace
}  // namespace easched::datacenter
