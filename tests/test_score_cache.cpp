// Property tests for the ScoreModel's incremental evaluation: across
// hundreds of randomized datacenters and random move sequences, every
// cached cell must equal a fresh recomputation at ZERO tolerance — the
// cache stores results of the same arithmetic, so even the last ulp must
// match. This is the lockdown of the cache-invalidation contract described
// in src/core/score_matrix.hpp.
#include <gtest/gtest.h>

#include <vector>

#include "core/score.hpp"
#include "core/score_matrix.hpp"
#include "core/solver_pool.hpp"
#include "test_random_instances.hpp"

namespace easched::core {
namespace {

using easched::testing::RandomInstance;
using easched::testing::make_random_instance;

/// Bitwise check of every cell against a cache-bypassing recomputation.
void expect_cache_fresh(const ScoreModel& model) {
  for (int r = 0; r < model.rows(); ++r) {
    for (int c = 0; c < model.cols(); ++c) {
      // EXPECT_EQ, not EXPECT_NEAR: tolerance is exactly zero.
      ASSERT_EQ(model.cell(r, c), model.recompute_cell(r, c))
          << "cache diverged at (" << r << ", " << c << ")";
    }
  }
}

/// Picks a random legal move: a movable column and a row it is not planned
/// on. Queued columns may also be evicted back to the virtual row.
bool random_move(support::Rng& rng, ScoreModel& model, int* out_r,
                 int* out_c) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int c = static_cast<int>(rng.uniform_int(0, model.cols() - 1));
    if (!model.movable(c)) continue;
    const int max_row = model.original_row(c) == model.virtual_row()
                            ? model.virtual_row()
                            : model.virtual_row() - 1;
    const int r = static_cast<int>(rng.uniform_int(0, max_row));
    if (r == model.plan_row(c)) continue;
    *out_r = r;
    *out_c = c;
    return true;
  }
  return false;
}

class ScoreCacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The headline property: 100 instances per seed x 5 seeds = 500 randomized
// datacenters, each driven through a random move sequence with a full
// cache-vs-fresh sweep after every apply.
TEST_P(ScoreCacheProperty, CachedCellsEqualFreshRecomputation) {
  const std::uint64_t seed = GetParam();
  support::Rng rng{seed};
  for (int instance = 0; instance < 100; ++instance) {
    RandomInstance inst = make_random_instance(rng, seed, instance);
    SCOPED_TRACE(inst.describe());
    ScoreModel model(inst.fixture->dc, inst.queue, inst.params,
                     inst.migration);
    if (model.cols() == 0) continue;

    expect_cache_fresh(model);  // cold cache / static-term build
    const int moves = static_cast<int>(rng.uniform_int(1, 12));
    for (int m = 0; m < moves; ++m) {
      int r = -1, c = -1;
      if (!random_move(rng, model, &r, &c)) break;
      model.move(r, c);
      expect_cache_fresh(model);
      ASSERT_EQ(model.plan_row(c), r);
    }
  }
}

// Read order must not matter: two models fed the same moves but read in
// different orders (one primed, one lazily and sparsely read) agree
// bitwise on every cell.
TEST_P(ScoreCacheProperty, ReadOrderDoesNotAffectValues) {
  const std::uint64_t seed = GetParam() * 1000003 + 17;
  support::Rng rng{seed};
  for (int instance = 0; instance < 40; ++instance) {
    RandomInstance inst = make_random_instance(rng, seed, instance);
    SCOPED_TRACE(inst.describe());
    ScoreModel primed(inst.fixture->dc, inst.queue, inst.params,
                      inst.migration);
    ScoreModel lazy(inst.fixture->dc, inst.queue, inst.params,
                    inst.migration);
    if (primed.cols() == 0) continue;
    primed.prime();

    const int moves = static_cast<int>(rng.uniform_int(1, 10));
    for (int m = 0; m < moves; ++m) {
      int r = -1, c = -1;
      if (!random_move(rng, primed, &r, &c)) break;
      primed.move(r, c);
      lazy.move(r, c);
      // Sparse random reads on the lazy model, warming an arbitrary subset.
      for (int k = 0; k < 5; ++k) {
        const int rr = static_cast<int>(rng.uniform_int(0, lazy.rows() - 1));
        const int cc = static_cast<int>(rng.uniform_int(0, lazy.cols() - 1));
        (void)lazy.cell(rr, cc);
      }
    }
    for (int r = 0; r < primed.rows(); ++r) {
      for (int c = 0; c < primed.cols(); ++c) {
        ASSERT_EQ(primed.cell(r, c), lazy.cell(r, c));
      }
    }
  }
}

// A pooled build must produce the exact cells of a serial build: the
// static-term construction and prime() sweep are partitioned by rows, and
// every partition computes the same arithmetic.
TEST_P(ScoreCacheProperty, PooledBuildMatchesSerialBuild) {
  const std::uint64_t seed = GetParam() * 7919 + 3;
  support::Rng rng{seed};
  SolverPool pool(4);
  for (int instance = 0; instance < 25; ++instance) {
    RandomInstance inst = make_random_instance(rng, seed, instance);
    SCOPED_TRACE(inst.describe());
    ScoreModel serial(inst.fixture->dc, inst.queue, inst.params,
                      inst.migration);
    ScoreModel pooled(inst.fixture->dc, inst.queue, inst.params,
                      inst.migration, &pool);
    pooled.prime();
    for (int r = 0; r < serial.rows(); ++r) {
      for (int c = 0; c < serial.cols(); ++c) {
        ASSERT_EQ(serial.cell(r, c), pooled.cell(r, c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreCacheProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// row_aggregate reads through the same cache; spot-check it tracks moves.
TEST(ScoreCache, RowAggregateTracksMoves) {
  support::Rng rng{42};
  RandomInstance inst = make_random_instance(rng, 42, 0);
  SCOPED_TRACE(inst.describe());
  ScoreModel model(inst.fixture->dc, inst.queue, inst.params,
                   inst.migration);
  ASSERT_GT(model.cols(), 0);

  int r = -1, c = -1;
  ASSERT_TRUE(random_move(rng, model, &r, &c));
  model.move(r, c);
  for (int row = 0; row < model.virtual_row(); ++row) {
    double expected = 0;
    int inf_count = 0;
    for (int col = 0; col < model.cols(); ++col) {
      const double s = model.recompute_cell(row, col);
      if (is_inf_score(s)) {
        ++inf_count;
      } else {
        expected += s;
      }
    }
    EXPECT_EQ(model.row_aggregate(row), inf_count * 1e9 + expected);
  }
}

}  // namespace
}  // namespace easched::core
