// Tests for the hill-climbing matrix solver (Algorithm 1), on toy models
// including the worked example of section III-B.
#include <gtest/gtest.h>

#include <vector>

#include "core/hill_climb.hpp"

namespace easched::core {
namespace {

/// Dense toy model: a fixed score matrix whose cells do not depend on the
/// plan (each move only changes the VM's own location), which makes the
/// solver's choices exactly predictable.
class ToyModel {
 public:
  ToyModel(std::vector<std::vector<double>> matrix, std::vector<int> current,
           std::vector<bool> new_vm)
      : matrix_(std::move(matrix)),
        plan_(std::move(current)),
        is_new_(std::move(new_vm)) {}

  [[nodiscard]] int rows() const { return static_cast<int>(matrix_.size()); }
  [[nodiscard]] int cols() const {
    return static_cast<int>(matrix_.front().size());
  }
  [[nodiscard]] int virtual_row() const { return rows() - 1; }
  [[nodiscard]] double cell(int r, int c) const {
    return matrix_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  }
  [[nodiscard]] int plan_row(int c) const {
    return plan_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] int original_row(int c) const {
    return is_new_[static_cast<std::size_t>(c)] ? virtual_row()
                                                : original_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] bool movable(int) const { return true; }

  struct Dirty {
    int col;
    int row_a;
    int row_b;
  };
  Dirty move(int r, int c) {
    moves.push_back({c, plan_[static_cast<std::size_t>(c)], r});
    const int old = plan_[static_cast<std::size_t>(c)];
    plan_[static_cast<std::size_t>(c)] = r;
    return {c, old == virtual_row() ? -1 : old, r};
  }

  std::vector<std::vector<double>> matrix_;
  std::vector<int> plan_;
  std::vector<int> original_ = plan_;
  std::vector<bool> is_new_;
  struct Move {
    int col, from, to;
  };
  std::vector<Move> moves;
};

constexpr double kInf = kInfScore;

TEST(HillClimb, EmptyModelNoMoves) {
  ToyModel m({{}}, {}, {});
  const auto stats = hill_climb(m, HillClimbLimits{});
  EXPECT_EQ(stats.moves, 0);
}

TEST(HillClimb, PlacesQueuedVmOnCheapestHost) {
  // One queued VM (current = virtual row 2), two hosts.
  ToyModel m({{5.0}, {3.0}, {kInf}}, {2}, {true});
  const auto stats = hill_climb(m, HillClimbLimits{});
  EXPECT_EQ(stats.moves, 1);
  EXPECT_EQ(m.plan_[0], 1);  // host with score 3
}

TEST(HillClimb, LeavesInfeasibleVmQueued) {
  ToyModel m({{kInf}, {kInf}, {kInf}}, {2}, {true});
  const auto stats = hill_climb(m, HillClimbLimits{});
  EXPECT_EQ(stats.moves, 0);
  EXPECT_EQ(m.plan_[0], 2);
}

TEST(HillClimb, MovesRunningVmOnlyForImprovement) {
  // VM on host 0 (score 10); host 1 offers 4 -> move. Then stable.
  ToyModel m({{10.0}, {4.0}, {kInf}}, {0}, {false});
  const auto stats = hill_climb(m, HillClimbLimits{});
  EXPECT_EQ(stats.moves, 1);
  EXPECT_EQ(m.plan_[0], 1);
  EXPECT_DOUBLE_EQ(stats.total_gain, 6.0);
}

TEST(HillClimb, NoMoveWhenAllDeltasPositive) {
  ToyModel m({{2.0}, {5.0}, {kInf}}, {0}, {false});
  const auto stats = hill_climb(m, HillClimbLimits{});
  EXPECT_EQ(stats.moves, 0);
}

TEST(HillClimb, PicksMostNegativeDeltaFirst) {
  // Two VMs; VM1's improvement (-8) beats VM0's (-3).
  ToyModel m({{10.0, 9.0}, {7.0, 1.0}, {kInf, kInf}}, {0, 0}, {false, false});
  hill_climb(m, HillClimbLimits{});
  ASSERT_GE(m.moves.size(), 1u);
  EXPECT_EQ(m.moves[0].col, 1);
  EXPECT_EQ(m.moves[0].to, 1);
}

TEST(HillClimb, QueuedPlacementDominatesMigration) {
  // A queued VM's delta is ~-kInf, always ahead of finite migrations.
  ToyModel m({{10.0, 50.0}, {4.0, 40.0}, {kInf, kInf}},
             {0, 2}, {false, true});
  hill_climb(m, HillClimbLimits{});
  ASSERT_GE(m.moves.size(), 2u);
  EXPECT_EQ(m.moves[0].col, 1);  // placement first
}

TEST(HillClimb, RespectsMoveLimit) {
  ToyModel m({{10.0, 10.0, 10.0}, {1.0, 1.0, 1.0}, {kInf, kInf, kInf}},
             {0, 0, 0}, {false, false, false});
  HillClimbLimits limits;
  limits.max_moves = 2;
  const auto stats = hill_climb(m, limits);
  EXPECT_EQ(stats.moves, 2);
  EXPECT_TRUE(stats.hit_move_limit);
}

TEST(HillClimb, RespectsMigrationBudget) {
  ToyModel m({{10.0, 10.0, 10.0}, {1.0, 1.0, 1.0}, {kInf, kInf, kInf}},
             {0, 0, 0}, {false, false, false});
  HillClimbLimits limits;
  limits.max_migration_moves = 1;
  const auto stats = hill_climb(m, limits);
  EXPECT_EQ(stats.moves, 1);
  EXPECT_EQ(stats.migration_moves, 1);
  EXPECT_FALSE(stats.hit_move_limit);
}

TEST(HillClimb, MigrationBudgetDoesNotBlockPlacements) {
  ToyModel m({{10.0, 5.0}, {1.0, 3.0}, {kInf, kInf}}, {0, 2}, {false, true});
  HillClimbLimits limits;
  limits.max_migration_moves = 0;
  const auto stats = hill_climb(m, limits);
  EXPECT_EQ(stats.moves, 1);
  EXPECT_EQ(stats.migration_moves, 0);
  EXPECT_EQ(m.plan_[1], 1);  // queued VM placed on its best host
  EXPECT_EQ(m.plan_[0], 0);  // running VM pinned by the budget
}

TEST(HillClimb, MinMigrationGainFiltersMarginalMoves) {
  // Improvement of 6 for the running VM; threshold 10 blocks it.
  ToyModel m({{10.0}, {4.0}, {kInf}}, {0}, {false});
  HillClimbLimits limits;
  limits.min_migration_gain = 10.0;
  EXPECT_EQ(hill_climb(m, limits).moves, 0);
  limits.min_migration_gain = 5.0;
  EXPECT_EQ(hill_climb(m, limits).moves, 1);
}

TEST(HillClimb, NeverMovesToVirtualRow) {
  // The virtual row would be "free" (score 0) but is excluded by rule.
  ToyModel m({{10.0}, {20.0}, {0.0}}, {0}, {false});
  const auto stats = hill_climb(m, HillClimbLimits{});
  EXPECT_EQ(stats.moves, 0);
  EXPECT_EQ(m.plan_[0], 0);
}

TEST(HillClimb, PaperWorkedExampleConverges) {
  // The 5x5 matrix of section III-B (VM columns 1..4 and N; host rows
  // H1..H3, HM, HV). Initial placements: VM1@HM, VM2@H3, VM3@H5->HM here,
  // VM4@H1, VMN@H6->H3 here (rows renumbered to fit 4 real hosts).
  ToyModel m(
      {
          {15.2, 15.2, kInf, 15.2, 10.0},
          {kInf, 7.8, 7.8, 7.8, kInf},
          {10.3, 10.3, kInf, 10.3, 10.5},
          {11.0, kInf, 11.0, 11.0, kInf},
          {kInf, kInf, kInf, kInf, kInf},  // HV
      },
      {3, 2, 3, 0, 2}, {false, false, false, false, false});
  const auto stats = hill_climb(m, HillClimbLimits{});
  // Expected first move: VM4's -7.4 (to H2, score 7.8 vs 15.2 at H1).
  ASSERT_GE(stats.moves, 1);
  EXPECT_EQ(m.moves[0].col, 3);
  EXPECT_EQ(m.moves[0].to, 1);
  // After convergence no negative delta remains.
  for (int c = 0; c < m.cols(); ++c) {
    const double keep = m.cell(m.plan_row(c), c);
    for (int r = 0; r < m.virtual_row(); ++r) {
      EXPECT_GE(m.cell(r, c) - keep, -1e-9);
    }
  }
}

TEST(HillClimb, TerminatesOnOscillatingModel) {
  // Adversarial model: scores flip so that a better row always "exists";
  // the move limit must still terminate the loop.
  class Oscillator {
   public:
    int rows() const { return 3; }
    int cols() const { return 1; }
    int virtual_row() const { return 2; }
    double cell(int r, int) const { return r == plan ? 10.0 : 5.0; }
    int plan_row(int) const { return plan; }
    int original_row(int) const { return 0; }
    bool movable(int) const { return true; }
    struct Dirty {
      int col, row_a, row_b;
    };
    Dirty move(int r, int) {
      const int old = plan;
      plan = r;
      return {0, old, r};
    }
    int plan = 0;
  } m;
  HillClimbLimits limits;
  limits.max_moves = 7;
  const auto stats = hill_climb(m, limits);
  EXPECT_EQ(stats.moves, 7);
  EXPECT_TRUE(stats.hit_move_limit);
}

}  // namespace
}  // namespace easched::core
