// Differential lockdown of the pooled event queue against the reference
// implementation (the pre-pool seed queue, kept as the executable spec in
// sim/reference_event_queue.hpp).
//
// Both queues are driven with the same randomized push / cancel /
// reschedule script — including cancels of already-fired events, double
// cancels and bursts of simultaneous timestamps — and must produce the
// identical pop sequence: same times, same payloads, same counters at
// every step. This is what licenses the pooled rewrite: whatever the
// internal representation does (slot recycling, lazy cancellation, heap
// compaction), nothing observable may change.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/reference_event_queue.hpp"
#include "support/rng.hpp"

namespace easched::sim {
namespace {

// The script drives both queues through a payload trace: each pushed action
// appends its tag to the owning queue's log, so identical logs mean
// identical pop order of identical events.
struct Pair {
  PooledEventQueue pooled;
  ReferenceEventQueue reference;
  std::vector<std::uint64_t> pooled_log;
  std::vector<std::uint64_t> reference_log;
  // Handles of every push, parallel across implementations; cancelled or
  // fired entries stay in place so the script can re-cancel them.
  std::vector<EventId> pooled_ids;
  std::vector<std::uint64_t> reference_ids;

  void push(SimTime t, std::uint64_t tag) {
    pooled_ids.push_back(
        pooled.push(t, [this, tag] { pooled_log.push_back(tag); }));
    reference_ids.push_back(
        reference.push(t, [this, tag] { reference_log.push_back(tag); }));
  }

  void cancel(std::size_t k) {
    pooled.cancel(pooled_ids[k]);
    reference.cancel(reference_ids[k]);
  }

  void pop() {
    ASSERT_FALSE(pooled.empty());
    ASSERT_FALSE(reference.empty());
    auto p = pooled.pop();
    auto r = reference.pop();
    ASSERT_EQ(p.time, r.time);
    p.action();
    r.action();
    ASSERT_EQ(pooled_log, reference_log);
  }

  void check_counters() const {
    ASSERT_EQ(pooled.size(), reference.size());
    ASSERT_EQ(pooled.empty(), reference.empty());
    ASSERT_EQ(pooled.cancelled(), reference.cancelled());
  }
};

TEST(EventQueueDifferential, RandomScriptsProduceIdenticalPopSequences) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    support::Rng rng(seed);
    Pair q;
    std::uint64_t tag = 0;
    for (int step = 0; step < 4000; ++step) {
      const double roll = rng.uniform01();
      if (roll < 0.45 || q.pooled.empty()) {
        // Coarse time grid on purpose: plenty of exactly-simultaneous
        // events to exercise the seq tie-break.
        q.push(static_cast<SimTime>(rng.uniform_int(0, 500)), tag++);
      } else if (roll < 0.70 && !q.pooled_ids.empty()) {
        // Cancel a random historical handle: sometimes live, sometimes
        // already fired, sometimes a double cancel. Both queues must agree
        // it is (or is not) a successful cancellation.
        q.cancel(static_cast<std::size_t>(
            rng.uniform_int(0, q.pooled_ids.size() - 1)));
      } else if (roll < 0.85 && !q.pooled_ids.empty()) {
        // Reschedule = cancel + push, the simulator's VM-finish pattern.
        q.cancel(static_cast<std::size_t>(
            rng.uniform_int(0, q.pooled_ids.size() - 1)));
        q.push(static_cast<SimTime>(rng.uniform_int(0, 500)), tag++);
      } else {
        q.pop();
      }
      q.check_counters();
    }
    while (!q.pooled.empty()) q.pop();
    q.check_counters();
    ASSERT_FALSE(q.pooled_log.empty());
    ASSERT_EQ(q.pooled_log, q.reference_log) << "seed " << seed;
  }
}

TEST(EventQueueDifferential, CancelHeavyScriptTriggersCompaction) {
  // Push far past the compaction threshold, cancel > half, then verify the
  // survivors pop identically. Exercises compact()'s Floyd rebuild.
  support::Rng rng(99);
  Pair q;
  for (std::uint64_t tag = 0; tag < 600; ++tag) {
    q.push(static_cast<SimTime>(rng.uniform_int(0, 100)), tag);
  }
  for (std::size_t k = 0; k < 600; ++k) {
    if (k % 3 != 0) q.cancel(k);  // cancel two thirds
  }
  q.check_counters();
  while (!q.pooled.empty()) q.pop();
  ASSERT_EQ(q.pooled_log.size(), 200u);
  ASSERT_EQ(q.pooled_log, q.reference_log);
}

TEST(EventQueueDifferential, StaleHandleOfRecycledSlotIsRejected) {
  PooledEventQueue q;
  int fired = 0;
  const EventId first = q.push(10, [&fired] { ++fired; });
  q.cancel(first);  // frees the slot
  ASSERT_EQ(q.cancelled(), 1u);

  // The next push recycles the freed slot; the old id must not be able to
  // cancel the new occupant.
  const EventId second = q.push(20, [&fired] { ++fired; });
  ASSERT_NE(first, second);
  q.cancel(first);  // stale: generation mismatch, must be a no-op
  ASSERT_EQ(q.cancelled(), 1u);
  ASSERT_EQ(q.size(), 1u);

  auto f = q.pop();
  ASSERT_EQ(f.time, 20);
  f.action();
  ASSERT_EQ(fired, 1);

  // And the id of a fired event is equally inert after recycling.
  q.cancel(second);
  ASSERT_EQ(q.cancelled(), 1u);
  ASSERT_TRUE(q.empty());
}

TEST(EventQueueDifferential, HandlesStayDistinctAcrossHeavyRecycling) {
  // One slot recycled many times must hand out a fresh id every time.
  PooledEventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    const EventId id = q.push(i, [] {});
    for (const EventId prior : ids) ASSERT_NE(id, prior);
    ids.push_back(id);
    q.pop();
  }
  // All historical ids are stale now; none may cancel anything.
  EventId live = q.push(1000, [] {});
  for (const EventId prior : ids) q.cancel(prior);
  ASSERT_EQ(q.size(), 1u);
  ASSERT_EQ(q.cancelled(), 0u);
  q.cancel(live);
  ASSERT_TRUE(q.empty());
}

}  // namespace
}  // namespace easched::sim
