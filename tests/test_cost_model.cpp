// Tests for the economic cost model.
#include <gtest/gtest.h>

#include "metrics/cost_model.hpp"

namespace easched::metrics {
namespace {

JobRecord job_record(double cpu_pct, double dedicated_s,
                     double satisfaction) {
  JobRecord r;
  r.cpu_pct = cpu_pct;
  r.dedicated_seconds = dedicated_s;
  r.satisfaction = satisfaction;
  r.deadline_seconds = dedicated_s * 1.5;
  return r;
}

TEST(CostModel, EmptyRunCostsOnlyEnergy) {
  Recorder rec(1);
  rec.watts.set(0, 0, 1000.0);  // 1 kW for 1 h = 1 kWh
  const auto cost = price_run(rec, 3600, {});
  EXPECT_DOUBLE_EQ(cost.revenue_eur, 0.0);
  EXPECT_NEAR(cost.energy_cost_eur, 0.12, 1e-9);
  EXPECT_NEAR(cost.profit_eur(), -0.12, 1e-9);
}

TEST(CostModel, RevenueScalesWithCoreHours) {
  Recorder rec(1);
  rec.jobs.add(job_record(200, 3600, 100.0));  // 2 core-hours, full S
  const auto cost = price_run(rec, 0, {});
  EXPECT_NEAR(cost.revenue_eur, 2 * 0.08, 1e-9);
}

TEST(CostModel, SatisfactionDiscountsRevenue) {
  Recorder rec(1);
  rec.jobs.add(job_record(100, 3600, 50.0));
  const auto cost = price_run(rec, 0, {});
  EXPECT_NEAR(cost.revenue_eur, 0.08 * 0.5, 1e-9);
}

TEST(CostModel, BreachPenaltyBelowThreshold) {
  Recorder rec(1);
  rec.jobs.add(job_record(100, 3600, 49.9));
  rec.jobs.add(job_record(100, 3600, 50.0));
  CostModelConfig config;
  config.breach_threshold_pct = 50.0;
  config.breach_penalty_eur = 2.5;
  const auto cost = price_run(rec, 0, config);
  EXPECT_EQ(cost.breached_jobs, 1u);
  EXPECT_NEAR(cost.breach_penalties_eur, 2.5, 1e-9);
}

TEST(CostModel, ProfitCombinesAllTerms) {
  Recorder rec(1);
  rec.watts.set(0, 0, 500.0);
  rec.jobs.add(job_record(400, 7200, 100.0));  // 8 core-h -> 0.64 EUR
  rec.jobs.add(job_record(100, 3600, 0.0));    // breached, no revenue
  CostModelConfig config;
  const auto cost = price_run(rec, 7200, config);
  const double energy = 0.5 * 2 * 0.12;  // 1 kWh
  EXPECT_NEAR(cost.profit_eur(),
              0.64 - energy - config.breach_penalty_eur, 1e-9);
}

TEST(CostModel, CustomTariff) {
  Recorder rec(1);
  rec.watts.set(0, 0, 1000.0);
  CostModelConfig config;
  config.energy_price_eur_kwh = 0.50;
  const auto cost = price_run(rec, 3600, config);
  EXPECT_NEAR(cost.energy_cost_eur, 0.50, 1e-9);
}

}  // namespace
}  // namespace easched::metrics
