// Observability layer tests: tracer determinism across solver thread
// counts, export formats (JSONL + Chrome trace_event golden snippet and
// structural validation), metrics-registry semantics (inclusive-le
// histogram buckets, sorted snapshots), phase-profiler rollups, the
// null-sink guarantees, and the CLI typo warning.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "core/score_based_policy.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "obs/obs.hpp"
#include "support/cli.hpp"
#include "workload/synthetic.hpp"

namespace easched {
namespace {

// ---- shared fixtures -------------------------------------------------------

workload::Workload small_workload(std::uint64_t seed = 77) {
  workload::SyntheticConfig c;
  c.seed = seed;
  c.span_seconds = 1.0 * sim::kDay;
  c.mean_jobs_per_hour = 8;
  return workload::generate(c);
}

/// SB policy with migration, pinned to `threads` solver workers, so runs
/// differ only in threading — the determinism contract under test.
experiments::RunConfig traced_config(int threads) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(3, 8, 4);
  config.datacenter.seed = 5;
  core::ScoreBasedConfig sb = core::ScoreBasedConfig::sb();
  sb.solver_threads = threads;
  config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(sb);
  config.horizon_s = 90 * sim::kDay;
  return config;
}

struct TracedRun {
  obs::Observability obs;
  experiments::RunResult result;
};

/// Runs the small workload with tracer + profiler enabled. The bundle must
/// not move after the run starts (the recorder holds a pointer), hence the
/// heap-allocated struct.
std::unique_ptr<TracedRun> run_traced(int threads) {
  auto run = std::make_unique<TracedRun>();
  run->obs.tracer.enable();
  run->obs.profiler.enable();
  auto config = traced_config(threads);
  config.obs = &run->obs;
  run->result = experiments::run_experiment(small_workload(), std::move(config));
  return run;
}

std::string jsonl_of(const obs::Tracer& tracer, bool include_wall) {
  std::ostringstream os;
  tracer.write_jsonl(os, include_wall);
  return os.str();
}

// ---- tracer core -----------------------------------------------------------

TEST(Tracer, NullSinkByDefault) {
  metrics::Recorder recorder(1);
  EXPECT_EQ(obs::tracer(recorder), nullptr);   // no bundle attached
  EXPECT_EQ(obs::profiler(recorder), nullptr);

  obs::Observability bundle;
  recorder.obs = &bundle;
  // Attached but not enabled: still a null sink.
  EXPECT_EQ(obs::tracer(recorder), nullptr);
  EXPECT_EQ(obs::profiler(recorder), nullptr);
  EXPECT_EQ(bundle.tracer.size(), 0u);

  bundle.tracer.enable();
  bundle.profiler.enable();
#if EASCHED_TRACE_ENABLED
  EXPECT_EQ(obs::tracer(recorder), &bundle.tracer);
  EXPECT_EQ(obs::profiler(recorder), &bundle.profiler);
#else
  EXPECT_EQ(obs::tracer(recorder), nullptr);
  EXPECT_EQ(obs::profiler(recorder), nullptr);
#endif
}

TEST(Tracer, RunWithoutEnabledInstrumentsEmitsNothing) {
  obs::Observability bundle;  // attached, never enabled
  auto config = traced_config(1);
  config.obs = &bundle;
  const auto with_obs = experiments::run_experiment(small_workload(), std::move(config));
  const auto without = experiments::run_experiment(small_workload(), traced_config(1));

  EXPECT_EQ(bundle.tracer.size(), 0u);
  EXPECT_TRUE(bundle.profiler.rollups().empty());
  // The null sink is also behaviourally invisible.
  EXPECT_DOUBLE_EQ(with_obs.report.energy_kwh, without.report.energy_kwh);
  EXPECT_EQ(with_obs.events_dispatched, without.events_dispatched);
  // The registry still receives the post-run publish (not hot-path).
  EXPECT_GT(bundle.registry.size(), 0u);
}

TEST(Tracer, SpanClampsNegativeDurationAndAssignsSequence) {
  obs::Tracer tracer;
  tracer.enable();
  auto& a = tracer.emit(5, obs::EventKind::kPowerOn);
  auto& b = tracer.span(10, 8, obs::EventKind::kHostOnline);
  EXPECT_EQ(a.seq, 0u);
  EXPECT_EQ(b.seq, 1u);
  EXPECT_DOUBLE_EQ(b.dur, 0.0);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.emit(0, obs::EventKind::kRound).seq, 0u);
}

TEST(Tracer, JsonlSortsBySimTimeAndMasksWallArgs) {
  obs::Tracer tracer;
  tracer.enable();
  auto& round = tracer.emit(100, obs::EventKind::kRound);
  round.arg("queue", 3).arg("wall_round_ms", 1.25);
  // A span emitted later but starting earlier must sort first.
  tracer.span(50, 150, obs::EventKind::kHostOnline).host = 2;

  const std::string with_wall = jsonl_of(tracer, true);
  EXPECT_EQ(with_wall,
            "{\"t\":50,\"dur\":100,\"seq\":1,\"kind\":\"host-online\","
            "\"host\":2}\n"
            "{\"t\":100,\"seq\":0,\"kind\":\"round\","
            "\"args\":{\"queue\":3,\"wall_round_ms\":1.25}}\n");
  const std::string masked = jsonl_of(tracer, false);
  EXPECT_EQ(masked.find("wall_"), std::string::npos);
  EXPECT_NE(masked.find("\"queue\":3"), std::string::npos);
}

// ---- Chrome export ---------------------------------------------------------

TEST(ChromeTrace, GoldenSnippet) {
  obs::Tracer tracer;
  tracer.enable();
  auto& begin = tracer.emit(0, obs::EventKind::kRunBegin);
  begin.label = "SB";
  begin.arg("hosts", 2).arg("jobs", 1);
  tracer.span(1.5, 3.5, obs::EventKind::kHostOnline).host = 0;
  auto& decision = tracer.emit(2, obs::EventKind::kDecision);
  decision.vm = 0;
  decision.host = 0;
  decision.arg("total", 30);

  std::ostringstream os;
  tracer.write_chrome(os);
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"easched\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"scheduler\"}},\n"
      "{\"name\":\"run-begin\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":0,"
      "\"pid\":0,\"tid\":0,\"s\":\"t\","
      "\"args\":{\"seq\":0,\"label\":\"SB\",\"hosts\":2,\"jobs\":1}},\n"
      "{\"name\":\"host-online\",\"cat\":\"host\",\"ph\":\"X\","
      "\"ts\":1500000,\"dur\":2000000,\"pid\":0,\"tid\":1,"
      "\"args\":{\"seq\":1}},\n"
      "{\"name\":\"decision\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":2000000,"
      "\"pid\":0,\"tid\":1,\"s\":\"t\",\"args\":{\"seq\":2,\"vm\":0,"
      "\"total\":30}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);

  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(os.str(), &error)) << error;
}

TEST(ChromeTrace, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("", &error));
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &error));
  EXPECT_NE(error.find("traceEvents"), std::string::npos);

  // Unknown phase letter.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]})",
      &error));
  EXPECT_NE(error.find("phase"), std::string::npos);

  // Complete event without its duration.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":0,"tid":0}]})",
      &error));
  EXPECT_NE(error.find("dur"), std::string::npos);

  // Missing timestamp on a timed event.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]})", &error));

  // Trailing garbage after the document.
  EXPECT_FALSE(obs::validate_chrome_trace(R"({"traceEvents":[]} junk)",
                                          &error));

  // Minimal valid documents pass.
  EXPECT_TRUE(obs::validate_chrome_trace(R"({"traceEvents":[]})", &error))
      << error;
  EXPECT_TRUE(obs::validate_chrome_trace(
      R"({"traceEvents":[{"name":"m","ph":"M","pid":0,"tid":0}]})", &error))
      << error;
}

// ---- end-to-end run traces -------------------------------------------------

TEST(RunTrace, ByteIdenticalAcrossSolverThreadCounts) {
#if !EASCHED_TRACE_ENABLED
  GTEST_SKIP() << "instrumentation compiled out (EASCHED_TRACE=OFF)";
#endif
  const auto serial = run_traced(1);
  const auto threaded = run_traced(4);
  ASSERT_GT(serial->obs.tracer.size(), 0u);
  // Same events, same order, same payloads once wall-clock profiling
  // fields are masked — sim results must match exactly too.
  EXPECT_EQ(jsonl_of(serial->obs.tracer, false),
            jsonl_of(threaded->obs.tracer, false));
  EXPECT_DOUBLE_EQ(serial->result.report.energy_kwh,
                   threaded->result.report.energy_kwh);
  EXPECT_EQ(serial->result.events_dispatched,
            threaded->result.events_dispatched);
}

TEST(RunTrace, RunPublishesKernelCountersToRegistry) {
  // The runner must feed the simulation-kernel counters through the
  // recorder into the attached registry; they mirror the RunResult fields.
  const auto run = run_traced(1);
  const auto snap = run->obs.registry.snapshot();
  const auto* dispatched = snap.find("sim.events_dispatched");
  const auto* cancelled = snap.find("sim.events_cancelled");
  ASSERT_NE(dispatched, nullptr);
  ASSERT_NE(cancelled, nullptr);
  EXPECT_GT(run->result.events_dispatched, 0u);
  EXPECT_DOUBLE_EQ(dispatched->value,
                   static_cast<double>(run->result.events_dispatched));
  EXPECT_DOUBLE_EQ(cancelled->value,
                   static_cast<double>(run->result.events_cancelled));
}

TEST(RunTrace, ChromeExportOfRealRunValidates) {
  const auto run = run_traced(1);
  std::ostringstream os;
  run->obs.tracer.write_chrome(os);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(os.str(), &error)) << error;
}

TEST(RunTrace, DecisionBreakdownsSumToTotal) {
#if !EASCHED_TRACE_ENABLED
  GTEST_SKIP() << "instrumentation compiled out (EASCHED_TRACE=OFF)";
#endif
  const auto run = run_traced(1);
  std::size_t decisions = 0;
  for (const auto& e : run->obs.tracer.events()) {
    if (e.kind != obs::EventKind::kDecision) continue;
    ++decisions;
    std::map<std::string, double> args(e.args.begin(), e.args.end());
    ASSERT_TRUE(args.count("total"));
    // Left-to-right accumulation mirrors ScoreModel::breakdown(), so the
    // equality is exact, not approximate.
    const double sum = args["req"] + args["res"] + args["virt"] +
                       args["conc"] + args["pwr"] + args["sla"] +
                       args["fault"];
    EXPECT_DOUBLE_EQ(sum, args["total"]);
    EXPECT_GE(e.vm, 0);
    EXPECT_GE(e.host, 0);
  }
  EXPECT_GT(decisions, 0u);
  // Every placed VM also produced lifecycle events.
  std::size_t arrivals = 0, finishes = 0;
  for (const auto& e : run->obs.tracer.events()) {
    arrivals += e.kind == obs::EventKind::kJobArrival;
    finishes += e.kind == obs::EventKind::kJobFinished;
  }
  EXPECT_EQ(arrivals, run->result.jobs_submitted);
  EXPECT_EQ(finishes, run->result.jobs_finished);
}

TEST(RunTrace, ProfilerCoversEveryRoundPhase) {
#if !EASCHED_TRACE_ENABLED
  GTEST_SKIP() << "instrumentation compiled out (EASCHED_TRACE=OFF)";
#endif
  const auto run = run_traced(1);
  const auto rollups = run->obs.profiler.rollups();
  ASSERT_FALSE(rollups.empty());
  std::size_t rounds = 0;
  for (const auto& r : rollups) {
    EXPECT_GT(r.n, 0u);
    EXPECT_GE(r.p95_ms, r.p50_ms);
    EXPECT_GE(r.max_ms, r.p99_ms);
    if (r.phase == obs::Phase::kRound) rounds = r.n;
  }
  // One kRound sample per scheduling round; the rebuild/climb/actuate
  // scopes live inside it.
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(run->obs.profiler.samples(obs::Phase::kClimb).size(), rounds);
  const std::string table = run->obs.profiler.to_string();
  EXPECT_NE(table.find("round"), std::string::npos);
  EXPECT_NE(table.find("climb"), std::string::npos);
}

// ---- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperBounds) {
  obs::Histogram h({1, 5, 10});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (le is inclusive)
  h.observe(1.001); // bucket 1
  h.observe(5.0);   // bucket 1
  h.observe(10.0);  // bucket 2
  h.observe(10.5);  // overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 5.0 + 10.0 + 10.5);
}

TEST(MetricsRegistry, SnapshotIsSortedAndLabelled) {
  obs::MetricsRegistry registry;
  registry.counter("zeta").inc(3);
  registry.gauge("alpha").set(1.5);
  registry.counter("ops", "op=create").inc();
  registry.histogram("lat", {1, 2}).observe(1.5);
  // Re-fetching returns the same instrument.
  registry.counter("zeta").inc(2);
  EXPECT_EQ(registry.size(), 4u);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.rows.size(), 4u);
  EXPECT_EQ(snap.rows[0].name, "alpha");
  EXPECT_EQ(snap.rows[1].name, "lat");
  EXPECT_EQ(snap.rows[2].name, "ops{op=create}");
  EXPECT_EQ(snap.rows[3].name, "zeta");

  const auto* zeta = snap.find("zeta");
  ASSERT_NE(zeta, nullptr);
  EXPECT_EQ(zeta->kind, obs::InstrumentKind::kCounter);
  EXPECT_DOUBLE_EQ(zeta->value, 5.0);
  EXPECT_EQ(snap.find("nope"), nullptr);

  const auto* lat = snap.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 1u);
  EXPECT_DOUBLE_EQ(lat->value, 1.5);  // histogram mean

  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("name,kind,value,count,sum,buckets"),
            std::string::npos);
  EXPECT_NE(csv.find("le=inf"), std::string::npos);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("ops{op=create}"), std::string::npos);
}

TEST(MetricsRegistry, CsvQuotesNamesWithCommasAndQuotes) {
  obs::MetricsRegistry registry;
  registry.counter("ops", "op=\"a,b\"").inc(2);
  registry.gauge("plain").set(1.0);
  const auto snap = registry.snapshot();

  const std::string csv = snap.to_csv();
  // RFC 4180: the whole field wrapped in quotes, embedded quotes doubled —
  // the comma inside the label no longer splits the row.
  EXPECT_NE(csv.find("\"ops{op=\"\"a,b\"\"}\",counter,2"),
            std::string::npos);
  // Unremarkable names stay unquoted.
  EXPECT_NE(csv.find("\nplain,gauge,1"), std::string::npos);

  // The JSON export escapes the embedded quotes too.
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("ops{op=\\\"a,b\\\"}"), std::string::npos);
}

TEST(MetricsRegistry, PublishGoldenKeySet) {
  // Golden catalogue of the metric families publish_run_metrics emits on
  // an attributed run. Renaming or dropping a family — including the
  // energy.* / decisions.* attribution families — must fail here loudly
  // instead of silently vanishing from every snapshot. When you add or
  // rename a metric on purpose, update this list (and bump the
  // run_summary schema if the artifact keys moved).
  auto run = std::make_unique<TracedRun>();
  run->obs.ledger.enable();
  run->obs.decisions.enable();
  auto config = traced_config(1);
  config.obs = &run->obs;
  run->result =
      experiments::run_experiment(small_workload(), std::move(config));

  std::set<std::string> families;
  for (const auto& row : run->obs.registry.snapshot().rows) {
    families.insert(row.name.substr(0, row.name.find('{')));
  }

  std::set<std::string> expected = {
      "ckpt.recoveries", "ckpt.taken", "hosts.failures",
      "ops.creations", "ops.migrations",
      "power.turn_offs", "power.turn_ons",
      "resilience.breaker_closes", "resilience.breaker_deaths",
      "resilience.breaker_opens", "resilience.breaker_probes",
      "resilience.jobs_deferred", "resilience.jobs_shed",
      "resilience.ladder_downshifts", "resilience.ladder_upshifts",
      "resilience.solver_breaches",
      "robust.boot_failures", "robust.op_failures", "robust.op_timeouts",
      "robust.quarantines", "robust.recovery_s", "robust.retries",
      "robust.rollbacks",
      "run.max_oversubscription",
      "sim.events_cancelled", "sim.events_dispatched",
      "sla.alarms", "vm.recreates",
  };
#if EASCHED_TRACE_ENABLED
  expected.insert({
      "decisions.count", "decisions.delta_total", "decisions.dominant",
      "decisions.mean_delta", "decisions.term_total",
      "decisions.with_runner_up",
      "energy.host.load_j", "energy.host.total_j", "energy.mgmt_j",
      "energy.rung.j", "energy.state.boot_j", "energy.state.idle_j",
      "energy.state.load_j", "energy.state.off_j", "energy.total_j",
      "energy.vm_class.j",
  });
#endif
  EXPECT_EQ(families, expected);
}

TEST(MetricsRegistry, PublishedRunMetricsMatchRecorderCounters) {
  metrics::Recorder recorder(2);
  recorder.counts.migrations = 7;
  recorder.counts.op_failures = 3;
  recorder.counts.retries = 4;
  recorder.recovery_s = {2, 120, 9000};
  recorder.max_oversubscription = 1.25;
  recorder.events_dispatched = 1234;
  recorder.events_cancelled = 56;

  obs::MetricsRegistry registry;
  obs::publish_run_metrics(recorder, registry);
  const auto snap = registry.snapshot();
  const auto value = [&snap](const char* name) {
    const auto* row = snap.find(name);
    return row == nullptr ? -1.0 : row->value;
  };
  EXPECT_DOUBLE_EQ(value("ops.migrations"), 7);
  EXPECT_DOUBLE_EQ(value("robust.op_failures"), 3);
  EXPECT_DOUBLE_EQ(value("robust.retries"), 4);
  EXPECT_DOUBLE_EQ(value("run.max_oversubscription"), 1.25);
  EXPECT_DOUBLE_EQ(value("sim.events_dispatched"), 1234);
  EXPECT_DOUBLE_EQ(value("sim.events_cancelled"), 56);
  const auto* recovery = snap.find("robust.recovery_s");
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->count, 3u);
  // 9000 s exceeds the last 7200 s bound — overflow bucket.
  EXPECT_EQ(recovery->buckets.back(), 1u);

  // The RunReport robustness line reads these same rows.
  const auto report = metrics::make_report(recorder, 1000, "SB", 0.2, 0.8);
  EXPECT_EQ(report.op_failures, 3u);
  EXPECT_EQ(report.retries, 4u);
  EXPECT_EQ(report.recoveries, 3u);
  const std::string line = report.robustness_to_string();
  EXPECT_NE(line.find("op-fail 3"), std::string::npos);
  EXPECT_NE(line.find("retries 4"), std::string::npos);
}

// ---- phase profiler --------------------------------------------------------

TEST(PhaseProfiler, NullScopeIsANoOp) {
  obs::PhaseProfiler::Scope scope(nullptr, obs::Phase::kClimb);
  EXPECT_DOUBLE_EQ(scope.elapsed_ms(), 0.0);
}

TEST(PhaseProfiler, RollupsSummariseSamples) {
  obs::PhaseProfiler profiler;
  profiler.enable();
  for (double ms : {1.0, 2.0, 3.0, 4.0}) {
    profiler.record(obs::Phase::kRebuild, ms);
  }
  profiler.record(obs::Phase::kActuate, 10.0);

  const auto rollups = profiler.rollups();
  ASSERT_EQ(rollups.size(), 2u);  // only phases with samples, Phase order
  EXPECT_EQ(rollups[0].phase, obs::Phase::kRebuild);
  EXPECT_EQ(rollups[0].n, 4u);
  EXPECT_DOUBLE_EQ(rollups[0].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(rollups[0].max_ms, 4.0);
  EXPECT_EQ(rollups[1].phase, obs::Phase::kActuate);
  EXPECT_DOUBLE_EQ(rollups[1].p50_ms, 10.0);

  profiler.clear();
  EXPECT_TRUE(profiler.rollups().empty());
}

// ---- CLI -------------------------------------------------------------------

TEST(CliArgs, WarnsOnUnrecognizedOptions) {
  const char* argv[] = {"prog", "--trace=out.jsonl", "--trce=typo",
                        "--bogus"};
  support::CliArgs args(4, argv);
  EXPECT_EQ(args.get("trace", ""), "out.jsonl");
  EXPECT_EQ(args.warn_unrecognized(), 2u);  // --trce and --bogus
  EXPECT_TRUE(args.get_bool("bogus", false));
  EXPECT_EQ(args.warn_unrecognized(), 1u);  // only --trce remains unknown
}

TEST(CliArgs, NoWarningWhenEverythingIsConsumed) {
  const char* argv[] = {"prog", "--a=1", "--b"};
  support::CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("a", 0), 1);
  EXPECT_TRUE(args.get_bool("b", false));
  EXPECT_EQ(args.warn_unrecognized(), 0u);
}

}  // namespace
}  // namespace easched
