// SweepRunner: deterministic parallel fan-out of independent runs.
//
// The contract under test: results come back in submission order and are
// bit-identical whatever the thread count — the sweep harness must be
// invisible in every number a bench prints.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiments/setup.hpp"
#include "experiments/sweep.hpp"
#include "workload/synthetic.hpp"

namespace easched::experiments {
namespace {

workload::Workload small_week(std::uint64_t seed = 77) {
  workload::SyntheticConfig c;
  c.seed = seed;
  c.span_seconds = 0.75 * sim::kDay;
  c.mean_jobs_per_hour = 8;
  return workload::generate(c);
}

SweepTask task(const workload::Workload& jobs, std::string policy,
               double lmin, double lmax) {
  return {&jobs, [policy = std::move(policy), lmin, lmax] {
            RunConfig config;
            config.datacenter.hosts = evaluation_hosts(4, 10, 6);
            config.datacenter.seed = 5;
            config.policy = policy;
            config.driver.power.lambda_min = lmin;
            config.driver.power.lambda_max = lmax;
            return config;
          }};
}

std::vector<SweepTask> grid(const workload::Workload& jobs) {
  std::vector<SweepTask> tasks;
  for (const char* policy : {"BF", "SB"}) {
    for (double lmin : {0.20, 0.40}) {
      tasks.push_back(task(jobs, policy, lmin, 0.90));
    }
  }
  return tasks;
}

// Every field a bench table or shape check reads.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.report.policy, b.report.policy);
  EXPECT_EQ(a.report.energy_kwh, b.report.energy_kwh);
  EXPECT_EQ(a.report.cpu_hours, b.report.cpu_hours);
  EXPECT_EQ(a.report.satisfaction, b.report.satisfaction);
  EXPECT_EQ(a.report.delay_pct, b.report.delay_pct);
  EXPECT_EQ(a.report.avg_working, b.report.avg_working);
  EXPECT_EQ(a.report.avg_online, b.report.avg_online);
  EXPECT_EQ(a.report.migrations, b.report.migrations);
  EXPECT_EQ(a.jobs_finished, b.jobs_finished);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.events_cancelled, b.events_cancelled);
  EXPECT_EQ(a.end_time_s, b.end_time_s);
}

TEST(Sweep, ResultsComeBackInSubmissionOrder) {
  const auto jobs = small_week();
  SweepRunner sweep(4);
  const auto results = sweep.run(grid(jobs));
  ASSERT_EQ(results.size(), 4u);
  // Task order was BF, BF, SB, SB.
  EXPECT_EQ(results[0].report.policy, "BF");
  EXPECT_EQ(results[1].report.policy, "BF");
  EXPECT_EQ(results[2].report.policy, results[3].report.policy);
  EXPECT_NE(results[2].report.policy, "BF");
  for (const auto& r : results) {
    EXPECT_GT(r.jobs_finished, 0u);
    EXPECT_GT(r.events_dispatched, 0u);
  }
}

TEST(Sweep, ThreadCountDoesNotChangeAnyResult) {
  const auto jobs = small_week();
  const auto serial = SweepRunner(1).run(grid(jobs));
  const auto threaded = SweepRunner(4).run(grid(jobs));
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], threaded[i]);
  }
  // More workers than tasks must also be harmless.
  const auto oversubscribed = SweepRunner(16).run(grid(jobs));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], oversubscribed[i]);
  }
}

TEST(Sweep, EnvThreadsParsesAndClamps) {
  // Only exercised when the variable is not already set by the harness.
  EXPECT_GE(SweepRunner::env_threads(), 1);
  EXPECT_LE(SweepRunner::env_threads(), 64);
  SweepRunner defaulted;
  EXPECT_EQ(defaulted.threads(), SweepRunner::env_threads());
  EXPECT_EQ(SweepRunner(0).threads(), 1);  // floor at one worker
}

TEST(Sweep, EmptyTaskListIsFine) {
  EXPECT_TRUE(SweepRunner(4).run({}).empty());
}

}  // namespace
}  // namespace easched::experiments
