// Tests for the simulated-annealing solver (the related-work alternative
// of section II).
#include <gtest/gtest.h>

#include "core/annealing.hpp"
#include "core/exhaustive.hpp"
#include "core/hill_climb.hpp"
#include "core/score_matrix.hpp"
#include "test_fixtures.hpp"

namespace easched::core {
namespace {

using datacenter::VmId;
using easched::testing::SmallDc;
using easched::testing::make_job;

double plan_cost(const ScoreModel& m) {
  double sum = 0;
  for (int c = 0; c < m.cols(); ++c) sum += m.cell(m.plan_row(c), c);
  return sum;
}

AnnealingParams fast_params(std::uint64_t seed = 1) {
  AnnealingParams p;
  p.seed = seed;
  return p;
}

TEST(Annealing, EmptyModelIsNoop) {
  SmallDc f(2);
  ScoreModel m(f.dc, {}, ScoreParams{}, false);
  const auto stats = anneal(m, fast_params());
  EXPECT_EQ(stats.proposals, 0);
}

TEST(Annealing, PlacesQueuedVm) {
  SmallDc f(2);
  const VmId v = f.dc.admit_job(make_job());
  ScoreModel m(f.dc, {v}, ScoreParams{}, false);
  anneal(m, fast_params());
  EXPECT_NE(m.plan_row(0), m.virtual_row());  // queue costs kInfScore
}

TEST(Annealing, NeverWorseThanInitialPlan) {
  SmallDc f(3);
  std::vector<VmId> queue;
  for (int i = 0; i < 4; ++i) queue.push_back(f.dc.admit_job(make_job()));
  ScoreModel m(f.dc, queue, ScoreParams{}, false);
  const double before = plan_cost(m);
  const auto stats = anneal(m, fast_params());
  EXPECT_LE(plan_cost(m), before + 1e-9);
  EXPECT_NEAR(plan_cost(m), stats.best_cost, 1e-9);
}

TEST(Annealing, DeterministicPerSeed) {
  SmallDc f(3);
  std::vector<VmId> queue;
  for (int i = 0; i < 3; ++i) queue.push_back(f.dc.admit_job(make_job()));
  ScoreModel a(f.dc, queue, ScoreParams{}, false);
  ScoreModel b(f.dc, queue, ScoreParams{}, false);
  const auto sa = anneal(a, fast_params(7));
  const auto sb = anneal(b, fast_params(7));
  EXPECT_DOUBLE_EQ(sa.best_cost, sb.best_cost);
  for (int c = 0; c < a.cols(); ++c) EXPECT_EQ(a.plan_row(c), b.plan_row(c));
}

TEST(Annealing, MatchesExhaustiveOnSmallInstances) {
  support::Rng rng{5};
  int matches = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    SmallDc f(3);
    std::vector<VmId> queue;
    for (int i = 0; i < 3; ++i) {
      queue.push_back(f.dc.admit_job(
          make_job(100.0 * static_cast<double>(rng.uniform_int(1, 3)),
                   rng.uniform(128, 1024))));
    }
    ScoreModel sa_model(f.dc, queue, ScoreParams{}, false);
    const auto sa = anneal(sa_model, fast_params(100 + static_cast<std::uint64_t>(t)));
    ScoreModel opt_model(f.dc, queue, ScoreParams{}, false);
    const auto opt = exhaustive_search(opt_model);
    EXPECT_GE(sa.best_cost, opt.best_cost - 1e-9);
    if (sa.best_cost <= opt.best_cost + 1e-6) ++matches;
  }
  EXPECT_GE(matches, trials - 2);  // SA should almost always find optimum
}

TEST(Annealing, AcceptsSomeUphillMovesWhenHot) {
  SmallDc f(3);
  std::vector<VmId> queue;
  for (int i = 0; i < 5; ++i)
    queue.push_back(f.dc.admit_job(make_job(100, 256)));
  ScoreModel m(f.dc, queue, ScoreParams{}, false);
  AnnealingParams p = fast_params();
  p.initial_temperature = 500.0;  // hot: uphill acceptance near certain
  const auto stats = anneal(m, p);
  EXPECT_GT(stats.uphill_accepted, 0);
  EXPECT_GE(stats.accepted, stats.uphill_accepted);
}

TEST(Annealing, ColdStartDegeneratesToDescent) {
  SmallDc f(3);
  std::vector<VmId> queue{f.dc.admit_job(make_job())};
  ScoreModel m(f.dc, queue, ScoreParams{}, false);
  AnnealingParams p = fast_params();
  p.initial_temperature = 1e-6;  // below min_temperature: no walk at all
  const auto stats = anneal(m, p);
  EXPECT_EQ(stats.proposals, 0);
  // Model untouched (still queued) because no proposals ran.
  EXPECT_EQ(m.plan_row(0), m.virtual_row());
}

}  // namespace
}  // namespace easched::core
