// Live telemetry plane: snapshot capture, ring eviction, JSONL/Prometheus
// serialisation, the alert engine's for-duration and hysteresis semantics,
// and the byte-identity of the stream across solver thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/runner.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry/dashboard.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "test_fixtures.hpp"

namespace easched::obs {
namespace {

// ---- SnapshotRing ----------------------------------------------------------

TelemetrySnapshot snap_at(double t, std::uint64_t seq = 0) {
  TelemetrySnapshot s;
  s.t = t;
  s.seq = seq;
  return s;
}

TEST(SnapshotRing, EvictsOldestAtCapacity) {
  SnapshotRing ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.push(snap_at(60.0 * i, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.total(), 5u);  // eviction does not lose the count
  EXPECT_EQ(ring.at(0).seq, 2u);  // oldest retained
  EXPECT_EQ(ring.at(1).seq, 3u);
  EXPECT_EQ(ring.latest().seq, 4u);
  EXPECT_DOUBLE_EQ(ring.latest().t, 240.0);
}

TEST(SnapshotRing, ZeroCapacityRetainsNothingButCounts) {
  SnapshotRing ring(0);
  ring.push(snap_at(0));
  ring.push(snap_at(60));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.total(), 2u);
}

TEST(SnapshotRing, ClearIsAFullReset) {
  SnapshotRing ring(4);
  ring.push(snap_at(0));
  ring.push(snap_at(60));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.total(), 0u);
  ring.push(snap_at(120, 9));
  EXPECT_EQ(ring.latest().seq, 9u);
}

// ---- serialisation ---------------------------------------------------------

TelemetrySnapshot sample_snapshot() {
  TelemetrySnapshot s;
  s.seq = 7;
  s.t = 420;
  s.hosts_on = 3;
  s.hosts_booting = 1;
  s.hosts_off = 2;
  s.hosts_failed = 1;
  s.working = 2;
  s.online = 4;
  s.ratio = 0.5;
  s.lambda_min = 0.3;
  s.lambda_max = 0.9;
  s.power_w = 1234.5;
  s.energy_kwh = 0.125;
  s.queue = 5;
  s.backoff = 2;
  s.running = 9;
  s.deferred = 3;
  s.shed = 1;
  s.sla = 98.75;
  s.rung = 2;
  s.breakers_open = 1;
  s.active_alerts = {"high-power"};
  s.hosts = {{2, 0, 75.5F, 280.0F}, {1, 1, 0.0F, 230.0F}};
  return s;
}

TEST(TelemetryJsonl, RoundTripsEveryField) {
  std::ostringstream os;
  write_snapshot_jsonl(os, sample_snapshot());
  const std::string line = os.str();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line

  TelemetrySnapshot back;
  ASSERT_TRUE(parse_snapshot_jsonl(line, &back));
  EXPECT_EQ(back.seq, 7u);
  EXPECT_DOUBLE_EQ(back.t, 420);
  EXPECT_EQ(back.hosts_on, 3);
  EXPECT_EQ(back.hosts_booting, 1);
  EXPECT_EQ(back.hosts_off, 2);
  EXPECT_EQ(back.hosts_failed, 1);
  EXPECT_EQ(back.working, 2);
  EXPECT_EQ(back.online, 4);
  EXPECT_DOUBLE_EQ(back.ratio, 0.5);
  EXPECT_DOUBLE_EQ(back.lambda_min, 0.3);
  EXPECT_DOUBLE_EQ(back.lambda_max, 0.9);
  EXPECT_DOUBLE_EQ(back.power_w, 1234.5);
  EXPECT_DOUBLE_EQ(back.energy_kwh, 0.125);
  EXPECT_EQ(back.queue, 5u);
  EXPECT_EQ(back.backoff, 2u);
  EXPECT_EQ(back.running, 9u);
  EXPECT_EQ(back.deferred, 3u);
  EXPECT_EQ(back.shed, 1u);
  EXPECT_DOUBLE_EQ(back.sla, 98.75);
  EXPECT_EQ(back.rung, 2);
  EXPECT_EQ(back.breakers_open, 1u);
  ASSERT_EQ(back.active_alerts.size(), 1u);
  EXPECT_EQ(back.active_alerts[0], "high-power");
  ASSERT_EQ(back.hosts.size(), 2u);
  EXPECT_EQ(back.hosts[0].state, 2);
  EXPECT_EQ(back.hosts[1].health, 1);
  EXPECT_FLOAT_EQ(back.hosts[0].util_pct, 75.5F);
  EXPECT_FLOAT_EQ(back.hosts[1].power_w, 230.0F);
}

TEST(TelemetryJsonl, RejectsNonSnapshotLines) {
  TelemetrySnapshot out;
  EXPECT_FALSE(parse_snapshot_jsonl("", &out));
  EXPECT_FALSE(parse_snapshot_jsonl("{\"kind\":\"run-begin\"}", &out));
  EXPECT_FALSE(parse_snapshot_jsonl("not json at all", &out));
}

// The Prometheus exposition is an external contract: scrape configs and
// recording rules key on these family names and labels. Any diff against
// the golden file is an intentional schema change — regenerate with
//   EASCHED_REGEN_GOLDEN=1 ./tests/test_telemetry \
//       --gtest_filter=TelemetryProm.MatchesGoldenExposition
TEST(TelemetryProm, MatchesGoldenExposition) {
  const std::string path =
      std::string(EASCHED_TEST_DATA_DIR) + "/telemetry_prom.golden";
  std::ostringstream os;
  write_snapshot_prom(os, sample_snapshot());
  const std::string got = os.str();

  if (std::getenv("EASCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << path << " missing; regenerate with EASCHED_REGEN_GOLDEN=1";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

// ---- alert spec parsing ----------------------------------------------------

TEST(AlertParse, ThresholdWithOptions) {
  const auto rules =
      parse_alert_rules("power_w>25000 for=300 resolve=24000 name=hot");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].series, AlertSeries::kPowerW);
  EXPECT_EQ(rules[0].kind, AlertKind::kThreshold);
  EXPECT_TRUE(rules[0].above);
  EXPECT_DOUBLE_EQ(rules[0].bound, 25000);
  EXPECT_DOUBLE_EQ(rules[0].for_s, 300);
  EXPECT_TRUE(rules[0].has_resolve);
  EXPECT_DOUBLE_EQ(rules[0].resolve, 24000);
  EXPECT_EQ(rules[0].name, "hot");
}

TEST(AlertParse, RateBurnAndCommaList) {
  const auto rules = parse_alert_rules(
      "queue_depth rate>0.05 window=600,"
      "sla_satisfaction burn>2x window=1800 slo=100 budget=5");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].kind, AlertKind::kRate);
  EXPECT_EQ(rules[0].series, AlertSeries::kQueueDepth);
  EXPECT_DOUBLE_EQ(rules[0].window_s, 600);
  EXPECT_EQ(rules[1].kind, AlertKind::kBurn);
  EXPECT_DOUBLE_EQ(rules[1].bound, 2);  // "2x" multiplier
  EXPECT_DOUBLE_EQ(rules[1].slo, 100);
  EXPECT_DOUBLE_EQ(rules[1].budget, 5);
}

TEST(AlertParse, BelowComparatorAndDefaults) {
  const auto rules = parse_alert_rules("working_ratio<0.3");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_FALSE(rules[0].above);
  EXPECT_DOUBLE_EQ(rules[0].for_s, 0);
  EXPECT_FALSE(rules[0].has_resolve);
  EXPECT_EQ(rules[0].name, "working_ratio<0.3");  // name defaults to spec
}

TEST(AlertParse, RejectsGarbage) {
  EXPECT_THROW(parse_alert_rules("no_such_series>1"), std::invalid_argument);
  EXPECT_THROW(parse_alert_rules("power_w>abc"), std::invalid_argument);
  EXPECT_THROW(parse_alert_rules("power_w>1 bogus=2"),
               std::invalid_argument);
}

// ---- alert engine semantics ------------------------------------------------

struct EngineHarness {
  AlertEngine engine;
  SnapshotRing history{64};
  double t = 0;
  std::uint64_t seq = 0;

  explicit EngineHarness(const std::string& spec) {
    engine.configure(parse_alert_rules(spec));
  }

  /// Feeds one sample at the 60 s cadence; returns active rule names.
  std::vector<std::string> feed(double power_w) {
    TelemetrySnapshot s = snap_at(t, seq++);
    s.power_w = power_w;
    const auto active = engine.evaluate(s, history, nullptr);
    history.push(std::move(s));
    t += 60;
    return active;
  }
};

TEST(AlertEngine, FiresExactlyAtForDurationBoundary) {
  // for=300 at a 60 s cadence: breach starts at t=60; the rule must fire
  // on the sample at t=360 (held 300 s), not at t=300 (held only 240 s).
  EngineHarness h("power_w>100 for=300");
  EXPECT_TRUE(h.feed(50).empty());  // t=0, below
  for (double expect_t : {60.0, 120.0, 180.0, 240.0, 300.0}) {
    EXPECT_TRUE(h.feed(150).empty())
        << "fired early at t=" << expect_t;
  }
  EXPECT_EQ(h.feed(150).size(), 1u);  // t=360: held exactly 300 s
  ASSERT_EQ(h.engine.log().size(), 1u);
  EXPECT_DOUBLE_EQ(h.engine.log()[0].fired_t, 360);
}

TEST(AlertEngine, InterruptedBreachRestartsTheClock) {
  EngineHarness h("power_w>100 for=120");
  h.feed(150);  // t=0: breach begins
  h.feed(150);  // t=60
  h.feed(50);   // t=120: dips below — streak resets
  h.feed(150);  // t=180: new streak
  EXPECT_TRUE(h.feed(150).empty());   // t=240: held only 60 s
  EXPECT_EQ(h.feed(150).size(), 1u);  // t=300: held 120 s since t=180
  EXPECT_DOUBLE_EQ(h.engine.log()[0].fired_t, 300);
}

TEST(AlertEngine, HysteresisHoldsUntilResolveLevel) {
  EngineHarness h("power_w>100 resolve=80");
  EXPECT_EQ(h.feed(150).size(), 1u);  // for=0: fires immediately
  EXPECT_EQ(h.feed(90).size(), 1u);   // below bound, above resolve: holds
  EXPECT_TRUE(h.feed(70).empty());    // below resolve: clears
  ASSERT_EQ(h.engine.log().size(), 1u);
  EXPECT_DOUBLE_EQ(h.engine.log()[0].fired_t, 0);
  EXPECT_DOUBLE_EQ(h.engine.log()[0].resolved_t, 120);
}

TEST(AlertEngine, UnresolvedEpisodeKeepsMinusOne) {
  EngineHarness h("power_w>100");
  h.feed(150);
  ASSERT_EQ(h.engine.log().size(), 1u);
  EXPECT_DOUBLE_EQ(h.engine.log()[0].resolved_t, -1);
  EXPECT_EQ(h.engine.active_count(), 1u);
  EXPECT_NE(h.engine.log_to_string().find("(active)"), std::string::npos);
}

// ---- dashboard -------------------------------------------------------------

TEST(Dashboard, SparklineScalesAndHandlesFlatSeries) {
  EXPECT_EQ(sparkline({}), "");
  const std::string ramp = sparkline({0, 1, 2, 3}, 4);
  EXPECT_FALSE(ramp.empty());
  // Flat series must not divide by zero; renders a mid-level row.
  const std::string flat = sparkline({5, 5, 5}, 3);
  EXPECT_FALSE(flat.empty());
}

TEST(Dashboard, RendersHeadlineAndAlerts) {
  SnapshotRing ring(8);
  TelemetrySnapshot s = sample_snapshot();
  ring.push(s);
  std::ostringstream os;
  DashboardOptions options;
  options.ansi = false;
  render_dashboard(os, ring, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("high-power"), std::string::npos);
  EXPECT_NE(out.find("DEGRADED"), std::string::npos);  // rung 2
  EXPECT_EQ(out.find("\x1b"), std::string::npos);      // ansi off
}

// ---- TelemetryPlane end-to-end ---------------------------------------------

#if EASCHED_TELEMETRY_ENABLED

/// Runs the shared small scenario with a telemetry plane attached and
/// returns the MemorySink's captured stream.
std::vector<TelemetrySnapshot> run_sampled(const std::string& alerts = "") {
  Observability obs;
  TelemetryConfig tc;
  tc.period_s = 600;
  obs.telemetry.enable(tc);
  auto* mem = static_cast<MemorySink*>(
      obs.telemetry.add_sink(std::make_unique<MemorySink>()));
  if (!alerts.empty()) {
    obs.telemetry.set_alert_rules(parse_alert_rules(alerts));
  }
  auto config = testing::small_config("SB");
  config.obs = &obs;
  experiments::run_experiment(testing::small_week(), std::move(config));
  return mem->snapshots();
}

std::string to_jsonl(const std::vector<TelemetrySnapshot>& snaps) {
  std::ostringstream os;
  for (const auto& s : snaps) {
    write_snapshot_jsonl(os, s);
    os << '\n';
  }
  return os.str();
}

TEST(TelemetryPlane, CaptureRollupsAreConsistent) {
  const auto snaps = run_sampled();
  ASSERT_GT(snaps.size(), 10u);
  const std::size_t fleet = 20;  // small_config: 4 fast + 10 medium + 6 slow
  std::uint64_t seq = 0;
  for (const auto& s : snaps) {
    EXPECT_EQ(s.seq, seq++);  // monotonic, gap-free
    EXPECT_EQ(s.hosts.size(), fleet);
    EXPECT_EQ(s.online, s.hosts_on + s.hosts_booting);
    EXPECT_EQ(s.hosts_on + s.hosts_booting + s.hosts_off + s.hosts_failed,
              static_cast<int>(fleet));
    EXPECT_LE(s.working, s.online);
    EXPECT_GE(s.power_w, 0);
    // Per-host power must add up to the fleet rollup.
    double host_sum = 0;
    for (const auto& h : s.hosts) host_sum += h.power_w;
    EXPECT_NEAR(host_sum, s.power_w, 1e-3);
  }
  // Energy is a cumulative integral: non-decreasing along the stream.
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].energy_kwh, snaps[i - 1].energy_kwh);
    EXPECT_GT(snaps[i].t, snaps[i - 1].t);
  }
}

TEST(TelemetryPlane, StreamIsByteIdenticalAcrossSolverThreads) {
  ::setenv("EASCHED_SOLVER_THREADS", "1", 1);
  const std::string t1 = to_jsonl(run_sampled("working_ratio<0.2 for=1200"));
  ::setenv("EASCHED_SOLVER_THREADS", "4", 1);
  const std::string t4 = to_jsonl(run_sampled("working_ratio<0.2 for=1200"));
  ::unsetenv("EASCHED_SOLVER_THREADS");
  EXPECT_EQ(t1, t4);
}

TEST(TelemetryPlane, AlertLogReachesRunReport) {
  Observability obs;
  TelemetryConfig tc;
  tc.period_s = 600;
  obs.telemetry.enable(tc);
  // hosts_online >= 1 holds from t=0 on: guaranteed to fire and never
  // resolve, so the report must carry exactly one open episode.
  obs.telemetry.set_alert_rules(
      parse_alert_rules("hosts_online>0.5 name=fleet-up"));
  auto config = testing::small_config("SB");
  config.obs = &obs;
  const auto result =
      experiments::run_experiment(testing::small_week(), std::move(config));
  ASSERT_EQ(result.report.alerts.size(), 1u);
  EXPECT_EQ(result.report.alerts[0].rule, "fleet-up");
  EXPECT_DOUBLE_EQ(result.report.alerts[0].resolved_t, -1);
  EXPECT_NE(result.report.alerts_to_string().find("fleet-up"),
            std::string::npos);
  // The fire transition also lands in the alerts.* metric family.
  const auto snap = obs.registry.snapshot();
  const auto* fired = snap.find("alerts.fired");
  ASSERT_NE(fired, nullptr);
  EXPECT_DOUBLE_EQ(fired->value, 1);
}

TEST(TelemetryPlane, FinishTakesClosingSampleAndSinksSeeEverySample) {
  // Ring smaller than the stream: file-style sinks must still see every
  // sample while the ring retains only the tail.
  Observability obs;
  TelemetryConfig tc;
  tc.period_s = 600;
  tc.ring_capacity = 4;
  obs.telemetry.enable(tc);
  auto* mem = static_cast<MemorySink*>(
      obs.telemetry.add_sink(std::make_unique<MemorySink>()));
  auto config = testing::small_config("SB");
  config.obs = &obs;
  const auto result =
      experiments::run_experiment(testing::small_week(), std::move(config));
  const auto& snaps = mem->snapshots();
  ASSERT_FALSE(snaps.empty());
  EXPECT_EQ(obs.telemetry.ring().size(), 4u);
  EXPECT_EQ(obs.telemetry.ring().total(), snaps.size());
  EXPECT_EQ(obs.telemetry.samples_taken(), snaps.size());
  // finish() closes the stream at the run's end time.
  EXPECT_DOUBLE_EQ(snaps.back().t, result.end_time_s);
}

#endif  // EASCHED_TELEMETRY_ENABLED

}  // namespace
}  // namespace easched::obs
