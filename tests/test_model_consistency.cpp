// Cross-layer property tests: the ScoreModel's hypothetical bookkeeping
// must agree with what the live Datacenter does once the plan is applied.
// The matrix is only trustworthy as a decision basis if its predicted
// occupations, feasibilities and emptiness judgments match reality.
#include <gtest/gtest.h>

#include "core/hill_climb.hpp"
#include "core/score_matrix.hpp"
#include "test_fixtures.hpp"

namespace easched::core {
namespace {

using datacenter::HostId;
using datacenter::VmId;
using easched::testing::SmallDc;
using easched::testing::make_job;

/// Builds a random scenario, plans with hill climbing, applies the plan to
/// the real datacenter and cross-checks the model's predictions.
class ModelConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelConsistency, PlannedOccupationMatchesReality) {
  support::Rng rng{GetParam()};
  SmallDc f(4);
  // Random running population.
  for (int i = 0; i < 5; ++i) {
    workload::Job job = make_job(
        100.0 * static_cast<double>(rng.uniform_int(1, 2)),
        rng.uniform(128, 900), 50000);
    const VmId v = f.dc.admit_job(job);
    std::vector<HostId> fitting;
    for (HostId h = 0; h < f.dc.num_hosts(); ++h) {
      if (f.dc.fits(h, v)) fitting.push_back(h);
    }
    ASSERT_FALSE(fitting.empty());
    f.dc.place(v, fitting[rng.uniform_int(0, fitting.size() - 1)]);
  }
  f.simulator.run_until(300.0);  // creations settle

  // Random queue.
  std::vector<VmId> queue;
  for (int i = 0; i < 3; ++i) {
    queue.push_back(f.dc.admit_job(
        make_job(100.0 * static_cast<double>(rng.uniform_int(1, 2)),
                 rng.uniform(128, 900))));
  }

  ScoreModel model(f.dc, queue, ScoreParams{}, false);
  hill_climb(model, HillClimbLimits{});

  // Apply the plan for queued columns and compare occupations.
  for (int c = 0; c < model.cols(); ++c) {
    const int planned = model.plan_row(c);
    if (planned == model.virtual_row()) continue;
    const VmId v = model.vm_at(c);
    const HostId h = model.host_at(planned);
    ASSERT_TRUE(f.dc.fits(h, v)) << "planned placement must be feasible";
    const double predicted = f.dc.occupation_if(h, v);
    f.dc.place(v, h);
    EXPECT_NEAR(f.dc.occupation(h), predicted, 1e-9);
    EXPECT_LE(f.dc.occupation(h), 1.0 + 1e-9);
  }
}

TEST_P(ModelConsistency, HillClimbIsDeterministic) {
  support::Rng rng{GetParam() * 17 + 3};
  SmallDc f(4);
  for (int i = 0; i < 4; ++i) {
    f.admit_and_place(make_job(100, rng.uniform(128, 700), 50000),
                      static_cast<HostId>(i % 4));
  }
  f.simulator.run_until(300.0);
  std::vector<VmId> queue{f.dc.admit_job(make_job()),
                          f.dc.admit_job(make_job(200))};

  ScoreModel a(f.dc, queue, ScoreParams{}, true);
  ScoreModel b(f.dc, queue, ScoreParams{}, true);
  HillClimbLimits limits;
  const auto sa = hill_climb(a, limits);
  const auto sb = hill_climb(b, limits);
  EXPECT_EQ(sa.moves, sb.moves);
  EXPECT_DOUBLE_EQ(sa.total_gain, sb.total_gain);
  for (int c = 0; c < a.cols(); ++c) EXPECT_EQ(a.plan_row(c), b.plan_row(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelConsistency,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(ModelConsistency, MatrixSnapshotDoesNotMutateDatacenter) {
  SmallDc f(3);
  f.admit_and_place(make_job(200, 700, 50000), 0);
  f.simulator.run_until(200.0);
  std::vector<VmId> queue{f.dc.admit_job(make_job())};
  const double occ_before = f.dc.occupation(0);
  const auto events_before = f.simulator.pending();

  ScoreModel model(f.dc, queue, ScoreParams{}, true);
  hill_climb(model, HillClimbLimits{});

  // Planning is pure: the live system is untouched until actions apply.
  EXPECT_DOUBLE_EQ(f.dc.occupation(0), occ_before);
  EXPECT_EQ(f.simulator.pending(), events_before);
  EXPECT_EQ(f.dc.vm(queue[0]).state, datacenter::VmState::kQueued);
}

}  // namespace
}  // namespace easched::core
