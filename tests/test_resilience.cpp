// Tests for the resilience control plane (src/resilience/): spec parsing,
// the solver-deadline watchdog and its degradation ladder (downshift on
// breach, hysteresis recovery), admission-control tiers, the per-host
// circuit-breaker state machine, the degraded policy rungs, and the
// end-to-end guarantees — a seeded overload scenario that downshifts,
// sheds and recovers deterministically across solver thread counts, and
// an enabled-but-inert controller that is bit-identical to no controller.
#include <gtest/gtest.h>

#include <memory>

#include "core/score_based_policy.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "metrics/accumulators.hpp"
#include "resilience/resilience.hpp"
#include "test_fixtures.hpp"
#include "workload/job.hpp"

namespace easched::resilience {
namespace {

using easched::testing::make_job;
using easched::testing::SmallDc;

// ---- spec parsing -----------------------------------------------------------

TEST(ResilienceSpec, OnOffAndDefaults) {
  EXPECT_TRUE(parse_resilience_spec("on").enabled);
  EXPECT_TRUE(parse_resilience_spec("").enabled);
  EXPECT_FALSE(parse_resilience_spec("off").enabled);
  const ResilienceConfig c = parse_resilience_spec("on");
  EXPECT_EQ(c.solver_budget_moves, 256);
  EXPECT_EQ(c.max_pending, 0u);  // admission off unless bounded explicitly
  EXPECT_EQ(c.breaker_threshold, 3);
  EXPECT_FALSE(ResilienceConfig{}.enabled);  // default-constructed is inert
}

TEST(ResilienceSpec, KeyValuePairs) {
  const ResilienceConfig c = parse_resilience_spec(
      "budget=64,degraded_budget=16,recovery_rounds=5,max_pending=32,"
      "defer_fill=0.5,shed_fill=0.9,defer_delay=30,max_defers=4,"
      "effort_alpha=0.5,effort_watermark=100,breaker_threshold=2,"
      "probe_after=120,dead_after=3");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.solver_budget_moves, 64);
  EXPECT_EQ(c.degraded_budget_moves, 16);
  EXPECT_EQ(c.recovery_rounds, 5);
  EXPECT_EQ(c.max_pending, 32u);
  EXPECT_DOUBLE_EQ(c.defer_fill, 0.5);
  EXPECT_DOUBLE_EQ(c.shed_fill, 0.9);
  EXPECT_DOUBLE_EQ(c.defer_delay_s, 30.0);
  EXPECT_EQ(c.max_defers_per_job, 4);
  EXPECT_DOUBLE_EQ(c.effort_alpha, 0.5);
  EXPECT_DOUBLE_EQ(c.effort_defer_watermark, 100.0);
  EXPECT_EQ(c.breaker_threshold, 2);
  EXPECT_DOUBLE_EQ(c.breaker_probe_after_s, 120.0);
  EXPECT_EQ(c.breaker_dead_after, 3);
}

TEST(ResilienceSpec, RejectsBadInput) {
  EXPECT_THROW(parse_resilience_spec("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_resilience_spec("budget"), std::invalid_argument);
  EXPECT_THROW(parse_resilience_spec("budget=lots"), std::invalid_argument);
  EXPECT_THROW(parse_resilience_spec("budget=-4"), std::invalid_argument);
  EXPECT_THROW(parse_resilience_spec("recovery_rounds=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_resilience_spec("defer_fill=0.9,shed_fill=0.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_resilience_spec("effort_alpha=0"), std::invalid_argument);
}

// ---- degradation ladder -----------------------------------------------------

struct ControllerFixture {
  metrics::Recorder recorder{4};
  ResilienceConfig config;
  std::unique_ptr<ResilienceController> rc;

  explicit ControllerFixture(ResilienceConfig c) : config(c) {
    config.enabled = true;
    rc = std::make_unique<ResilienceController>(config, recorder, 4);
  }

  /// One scheduling round reporting `moves` of solver effort at time `t`.
  void round(double t, int moves) {
    rc->begin_round(t);
    rc->note_solver_effort(t, moves);
    rc->end_round(t);
  }
};

ResilienceConfig watchdog_config() {
  ResilienceConfig c;
  c.solver_budget_moves = 10;
  c.degraded_budget_moves = 5;
  c.recovery_rounds = 2;
  c.breaker_threshold = 0;  // ladder-only
  return c;
}

TEST(Ladder, DownshiftsOneRungPerBreachingRound) {
  ControllerFixture f(watchdog_config());
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFull);
  EXPECT_EQ(f.rc->solver_budget(), 10);

  f.round(0, 10);  // hits the budget exactly: breach
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kCachedClimb);
  EXPECT_EQ(f.rc->solver_budget(), 5);

  f.round(60, 5);  // breaches the tightened budget
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFirstFit);
  EXPECT_EQ(f.rc->solver_budget(), 5);  // first-fit shares the tight budget

  EXPECT_EQ(f.recorder.counts.solver_breaches, 2u);
  EXPECT_EQ(f.recorder.counts.ladder_downshifts, 2u);
  EXPECT_EQ(f.rc->max_level_reached(), LadderLevel::kFirstFit);
}

TEST(Ladder, StaysBelowBudgetStaysAtFull) {
  ControllerFixture f(watchdog_config());
  for (int i = 0; i < 20; ++i) f.round(i * 60.0, 9);
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFull);
  EXPECT_EQ(f.recorder.counts.solver_breaches, 0u);
  EXPECT_EQ(f.recorder.counts.ladder_downshifts, 0u);
}

TEST(Ladder, RecoveryNeedsConsecutiveHealthyRounds) {
  ControllerFixture f(watchdog_config());
  f.round(0, 10);  // -> kCachedClimb
  ASSERT_EQ(f.rc->ladder(), LadderLevel::kCachedClimb);

  f.round(60, 1);   // healthy 1 of 2
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kCachedClimb);
  f.round(120, 5);  // breach resets the healthy streak -> kFirstFit
  ASSERT_EQ(f.rc->ladder(), LadderLevel::kFirstFit);

  f.round(180, 0);  // healthy 1 of 2
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFirstFit);
  f.round(240, 0);  // healthy 2 of 2 -> one rung up
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kCachedClimb);
  EXPECT_EQ(f.rc->healthy_rounds(), 0);  // streak restarts per rung

  f.round(300, 1);
  f.round(360, 1);
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFull);
  EXPECT_EQ(f.recorder.counts.ladder_upshifts, 2u);
  // The high-water mark survives the recovery.
  EXPECT_EQ(f.rc->max_level_reached(), LadderLevel::kFirstFit);
}

TEST(Ladder, FrozenIsTheFloorAndRecoversThroughFirstFit) {
  ControllerFixture f(watchdog_config());
  f.round(0, 999);  // kFull -> kCachedClimb (budget 10 breached)
  f.round(1, 999);  // kCachedClimb -> kFirstFit (budget 5 breached)
  f.round(2, 999);  // first-fit placements breach the shared budget too
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFrozen);
  EXPECT_EQ(f.rc->solver_budget(), 0);  // nothing runs while frozen

  // Frozen rounds report no effort against a zero budget: never a breach,
  // so the floor holds and the healthy streak starts counting.
  f.round(3, 999);
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFrozen);
  EXPECT_EQ(f.recorder.counts.ladder_downshifts, 3u);

  f.round(4, 0);  // healthy 2 of 2: thaw one rung, back to first-fit
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFirstFit);
  EXPECT_EQ(f.rc->max_level_reached(), LadderLevel::kFrozen);
}

TEST(Ladder, ZeroBudgetDisablesTheWatchdog) {
  ResilienceConfig c = watchdog_config();
  c.solver_budget_moves = 0;
  ControllerFixture f(c);
  for (int i = 0; i < 5; ++i) f.round(i * 60.0, 100000);
  EXPECT_EQ(f.rc->ladder(), LadderLevel::kFull);
  EXPECT_EQ(f.rc->solver_budget(), 0);  // 0 = unlimited
  EXPECT_EQ(f.recorder.counts.solver_breaches, 0u);
}

TEST(Ladder, EffortEwmaTracksRoundMoves) {
  ResilienceConfig c = watchdog_config();
  c.solver_budget_moves = 0;
  c.effort_alpha = 0.5;
  ControllerFixture f(c);
  f.round(0, 8);
  EXPECT_DOUBLE_EQ(f.rc->effort_ewma(), 4.0);
  f.round(60, 8);
  EXPECT_DOUBLE_EQ(f.rc->effort_ewma(), 6.0);
}

// ---- admission control ------------------------------------------------------

ResilienceConfig admission_config() {
  ResilienceConfig c;
  c.solver_budget_moves = 0;  // watchdog off
  c.breaker_threshold = 0;
  c.max_pending = 10;
  c.defer_fill = 0.75;
  c.shed_fill = 1.0;
  c.max_defers_per_job = 2;
  return c;
}

TEST(AdmissionControl, TiersFollowQueueDepth) {
  ControllerFixture f(admission_config());
  EXPECT_EQ(f.rc->admit(0, 0, 0), Admission::kAdmit);
  EXPECT_EQ(f.rc->admit(0, 7, 0), Admission::kAdmit);   // below 0.75 * 10
  EXPECT_EQ(f.rc->admit(0, 8, 0), Admission::kDefer);   // defer tier
  EXPECT_EQ(f.rc->admit(0, 9, 0), Admission::kDefer);
  EXPECT_EQ(f.rc->admit(0, 10, 0), Admission::kShed);   // at capacity
  EXPECT_EQ(f.rc->admit(0, 25, 0), Admission::kShed);
  EXPECT_EQ(f.recorder.counts.jobs_deferred, 2u);
  EXPECT_EQ(f.recorder.counts.jobs_shed, 2u);
}

TEST(AdmissionControl, ExhaustedDefersEscalateToShed) {
  ControllerFixture f(admission_config());
  EXPECT_EQ(f.rc->admit(0, 8, 1), Admission::kDefer);
  EXPECT_EQ(f.rc->admit(0, 8, 2), Admission::kShed);  // max_defers_per_job
  EXPECT_EQ(f.rc->admit(0, 8, 7), Admission::kShed);
}

TEST(AdmissionControl, EffortWatermarkDefersEvenWhenShallow) {
  ResilienceConfig c = admission_config();
  c.effort_alpha = 1.0;  // EWMA == last round's moves
  c.effort_defer_watermark = 50;
  ControllerFixture f(c);
  EXPECT_EQ(f.rc->admit(0, 1, 0), Admission::kAdmit);
  f.round(0, 80);  // hot round pushes the EWMA over the watermark
  EXPECT_EQ(f.rc->admit(1, 1, 0), Admission::kDefer);
  f.round(60, 0);  // effort subsides
  EXPECT_EQ(f.rc->admit(61, 1, 0), Admission::kAdmit);
}

TEST(AdmissionControl, UnboundedQueueAdmitsEverything) {
  ResilienceConfig c = admission_config();
  c.max_pending = 0;
  ControllerFixture f(c);
  EXPECT_EQ(f.rc->admit(0, 100000, 99), Admission::kAdmit);
  EXPECT_EQ(f.recorder.counts.jobs_shed, 0u);
}

// ---- circuit breakers -------------------------------------------------------

ResilienceConfig breaker_config() {
  ResilienceConfig c;
  c.solver_budget_moves = 0;
  c.max_pending = 0;
  c.breaker_threshold = 2;
  c.breaker_probe_after_s = 100;
  c.breaker_dead_after = 2;
  return c;
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  ControllerFixture f(breaker_config());
  f.rc->note_op_failure(0, 10);
  EXPECT_EQ(f.rc->health(0), HostHealth::kHealthy);
  EXPECT_TRUE(f.rc->allows_placement(0, 10));
  f.rc->note_op_failure(0, 20);
  EXPECT_EQ(f.rc->health(0), HostHealth::kSuspect);
  EXPECT_FALSE(f.rc->allows_placement(0, 20));  // probe delay not served
  EXPECT_EQ(f.recorder.counts.breaker_opens, 1u);
  // Other hosts are untouched.
  EXPECT_EQ(f.rc->health(1), HostHealth::kHealthy);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  ControllerFixture f(breaker_config());
  f.rc->note_op_failure(0, 10);
  f.rc->note_op_success(0, 20);
  f.rc->note_op_failure(0, 30);
  EXPECT_EQ(f.rc->health(0), HostHealth::kHealthy);
  EXPECT_EQ(f.recorder.counts.breaker_opens, 0u);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess) {
  ControllerFixture f(breaker_config());
  f.rc->note_op_failure(0, 0);
  f.rc->note_op_failure(0, 10);  // opens at t=10
  ASSERT_EQ(f.rc->health(0), HostHealth::kSuspect);

  EXPECT_FALSE(f.rc->allows_placement(0, 109));  // delay not served yet
  EXPECT_TRUE(f.rc->allows_placement(0, 110));   // half-open

  f.rc->note_op_start(0, 110);  // consumes the single probe slot
  EXPECT_EQ(f.recorder.counts.breaker_probes, 1u);
  EXPECT_FALSE(f.rc->allows_placement(0, 120));  // one probe at a time

  f.rc->note_op_success(0, 150);
  EXPECT_EQ(f.rc->health(0), HostHealth::kHealthy);
  EXPECT_TRUE(f.rc->allows_placement(0, 150));
  EXPECT_EQ(f.recorder.counts.breaker_closes, 1u);
}

TEST(CircuitBreaker, RepeatedProbeFailuresKillTheHost) {
  ControllerFixture f(breaker_config());
  f.rc->note_op_failure(0, 0);
  f.rc->note_op_failure(0, 10);  // open, streak 1
  ASSERT_EQ(f.rc->health(0), HostHealth::kSuspect);

  f.rc->note_op_start(0, 110);
  f.rc->note_op_failure(0, 120);  // probe fails: re-open, streak 2 -> dead
  EXPECT_EQ(f.rc->health(0), HostHealth::kDead);
  EXPECT_FALSE(f.rc->allows_placement(0, 1e9));
  EXPECT_FALSE(f.rc->allows_power_on(0));
  EXPECT_EQ(f.recorder.counts.breaker_opens, 2u);
  EXPECT_EQ(f.recorder.counts.breaker_deaths, 1u);
  EXPECT_EQ(f.rc->breakers_not_healthy(), 1u);

  // Hardware repair earns a fresh Suspect chance, probing again later.
  f.rc->note_host_repaired(0, 2000);
  EXPECT_EQ(f.rc->health(0), HostHealth::kSuspect);
  EXPECT_TRUE(f.rc->allows_power_on(0));
  EXPECT_TRUE(f.rc->allows_placement(0, 2100));
}

TEST(CircuitBreaker, QuarantineOverlaysAndReleasesToSuspect) {
  ControllerFixture f(breaker_config());
  f.rc->note_host_quarantined(0, 50);
  EXPECT_EQ(f.rc->health(0), HostHealth::kQuarantined);
  EXPECT_FALSE(f.rc->allows_placement(0, 60));
  EXPECT_TRUE(f.rc->allows_power_on(0));  // quarantine is not death

  f.rc->note_host_unquarantined(0, 500);
  EXPECT_EQ(f.rc->health(0), HostHealth::kSuspect);
  EXPECT_FALSE(f.rc->allows_placement(0, 510));  // must serve the probe delay
  EXPECT_TRUE(f.rc->allows_placement(0, 600));
}

TEST(CircuitBreaker, CrashOpensImmediately) {
  ControllerFixture f(breaker_config());
  f.rc->note_host_crashed(2, 30);
  EXPECT_EQ(f.rc->health(2), HostHealth::kSuspect);
  EXPECT_EQ(f.recorder.counts.breaker_opens, 1u);
}

TEST(CircuitBreaker, DisabledThresholdIsInert) {
  ResilienceConfig c = breaker_config();
  c.breaker_threshold = 0;
  ControllerFixture f(c);
  for (int i = 0; i < 10; ++i) f.rc->note_op_failure(0, i);
  EXPECT_EQ(f.rc->health(0), HostHealth::kHealthy);
  EXPECT_TRUE(f.rc->allows_placement(0, 100));
  EXPECT_EQ(f.recorder.counts.breaker_opens, 0u);
}

// ---- degraded policy rungs --------------------------------------------------

struct PolicyFixture {
  SmallDc f{3};
  support::Rng rng{11};
  core::ScoreBasedPolicy policy{core::ScoreBasedConfig::sb()};
  std::vector<datacenter::VmId> queue;

  void enqueue(int n) {
    // Half a host each (hosts are 4-way, 400% CPU): two VMs fill a host.
    for (int i = 0; i < n; ++i) {
      queue.push_back(f.dc.admit_job(make_job(200, 256)));
    }
  }
};

TEST(DegradedPolicy, FrozenRungEmitsNoActions) {
  PolicyFixture t;
  t.enqueue(3);
  sched::SchedContext ctx{t.f.dc, t.queue, t.rng};
  ctx.ladder = LadderLevel::kFrozen;
  EXPECT_TRUE(t.policy.schedule(ctx).empty());
}

TEST(DegradedPolicy, FirstFitRungPlacesGreedily) {
  PolicyFixture t;
  t.enqueue(3);
  sched::SchedContext ctx{t.f.dc, t.queue, t.rng};
  ctx.ladder = LadderLevel::kFirstFit;
  const auto actions = t.policy.schedule(ctx);
  ASSERT_EQ(actions.size(), 3u);
  for (const auto& a : actions) {
    EXPECT_EQ(a.kind, sched::Action::Kind::kPlace);
  }
  // Greedy ascending host order: the first placements stack on host 0
  // until its capacity is spoken for (two 200% VMs fill a 400% host).
  EXPECT_EQ(actions[0].host, 0u);
  EXPECT_EQ(actions[1].host, 0u);
  EXPECT_EQ(actions[2].host, 1u);
}

TEST(DegradedPolicy, FirstFitRespectsPlannedReservations) {
  PolicyFixture t;
  // Each job wants 300% CPU: only one fits per 400% host even though
  // fits() alone would accept a second before the first materialises.
  for (int i = 0; i < 3; ++i) {
    t.queue.push_back(t.f.dc.admit_job(make_job(300, 256)));
  }
  sched::SchedContext ctx{t.f.dc, t.queue, t.rng};
  ctx.ladder = LadderLevel::kFirstFit;
  const auto actions = t.policy.schedule(ctx);
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_EQ(actions[0].host, 0u);
  EXPECT_EQ(actions[1].host, 1u);
  EXPECT_EQ(actions[2].host, 2u);
}

TEST(DegradedPolicy, SolverBudgetCapsHillClimbMoves) {
  PolicyFixture t;
  t.enqueue(3);
  sched::SchedContext ctx{t.f.dc, t.queue, t.rng};
  ctx.ladder = LadderLevel::kCachedClimb;
  ctx.solver_budget = 2;
  t.policy.schedule(ctx);
  EXPECT_LE(t.policy.last_stats().moves, 2);
}

// ---- end-to-end: seeded overload scenario -----------------------------------

/// Arrival burst (40 jobs in the first 400 s) against a small fleet with
/// two lemon hosts; the resilience config bounds the queue and the solver.
workload::Workload burst_workload() {
  workload::Workload jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(make_job(100, 512, 2000 + 100 * (i % 7), 1.5,
                            /*submit=*/10.0 * i));
  }
  return jobs;
}

ResilienceConfig overload_resilience() {
  ResilienceConfig c;
  c.enabled = true;
  // The admission tiers cap the queue near defer_fill * max_pending = 6, so
  // burst rounds apply ~5-6 placement moves; a budget of 4 makes those
  // rounds breach while quiet rounds (a couple of moves) stay healthy.
  c.solver_budget_moves = 4;
  c.degraded_budget_moves = 2;
  c.recovery_rounds = 3;
  c.max_pending = 12;
  c.defer_fill = 0.5;
  c.shed_fill = 1.0;
  c.defer_delay_s = 120;
  c.max_defers_per_job = 6;
  c.breaker_threshold = 2;
  c.breaker_probe_after_s = 300;
  return c;
}

experiments::RunResult run_overload(int solver_threads) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(1, 3, 1);
  config.datacenter.seed = 5;
  core::ScoreBasedConfig sb = core::ScoreBasedConfig::sb();
  sb.solver_threads = solver_threads;
  config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(sb);
  config.faults = faults::parse_fault_plan(
      "seed=42,create.fail=0.15,migrate.fail=0.1,lemon=1:6,lemon=3:6,"
      "retry_base=5,retry_cap=60,quarantine_window=1800,"
      "quarantine_cooldown=600");
  config.resilience = overload_resilience();
  config.validate.enabled = true;  // ladder/breaker invariants checked live
  config.horizon_s = 30 * sim::kDay;
  return experiments::run_experiment(burst_workload(), std::move(config));
}

// The active-controller scenarios need the runner wiring, which folds away
// in EASCHED_RESILIENCE=OFF builds (the determinism-across-repeats and
// inert-identity tests below still hold there and stay enabled).
#if EASCHED_RESILIENCE_ENABLED

TEST(OverloadScenario, DownshiftsShedsRecoversAndFinishes) {
  const auto result = run_overload(1);
  EXPECT_FALSE(result.hit_horizon);
  // Every submitted job is accounted for: finished or deliberately shed.
  EXPECT_EQ(result.jobs_finished + result.jobs_shed, result.jobs_submitted);
  EXPECT_EQ(result.jobs_shed, result.report.jobs_shed);

  // The burst must actually exercise the control plane...
  EXPECT_GT(result.report.solver_breaches, 0u);
  EXPECT_GT(result.report.ladder_downshifts, 0u);
  EXPECT_GT(result.report.jobs_deferred, 0u);
  EXPECT_GE(result.report.max_ladder_level, 1);
  // ...and the ladder must find its way back up once the burst drains (the
  // run may end mid-recovery, so upshifts trail downshifts at most).
  EXPECT_GT(result.report.ladder_upshifts, 0u);
  EXPECT_GE(result.report.ladder_downshifts, result.report.ladder_upshifts);
  EXPECT_FALSE(result.report.resilience_to_string().empty());

  // Live invariant checking saw every transition and stayed silent.
  EXPECT_GT(result.invariant_checks, 0u);
  EXPECT_TRUE(result.violations.empty()) << result.violations.size();
}

TEST(OverloadScenario, DeterministicAcrossRepeats) {
  const auto a = run_overload(1);
  const auto b = run_overload(1);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_DOUBLE_EQ(a.report.energy_kwh, b.report.energy_kwh);
  EXPECT_EQ(a.report.jobs_shed, b.report.jobs_shed);
  EXPECT_EQ(a.report.ladder_downshifts, b.report.ladder_downshifts);
  EXPECT_EQ(a.report.metrics.to_csv(), b.report.metrics.to_csv());
}

TEST(OverloadScenario, DeterministicAcrossSolverThreadCounts) {
  // The watchdog budget is counted in solver moves, never wall time, so an
  // actively-degrading run must stay bit-identical when the matrix solver
  // fans out across threads.
  const auto serial = run_overload(1);
  const auto threaded = run_overload(3);
  ASSERT_GT(serial.report.ladder_downshifts, 0u);  // ladder was active
  EXPECT_EQ(serial.events_dispatched, threaded.events_dispatched);
  EXPECT_EQ(serial.fault_trace, threaded.fault_trace);
  EXPECT_DOUBLE_EQ(serial.report.energy_kwh, threaded.report.energy_kwh);
  EXPECT_EQ(serial.report.metrics.to_csv(), threaded.report.metrics.to_csv());
  EXPECT_EQ(serial.report.resilience_to_string(),
            threaded.report.resilience_to_string());
}

TEST(OverloadScenario, FaultPlanBreakerKeysArmTheBreakers) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(1, 3, 1);
  config.datacenter.seed = 5;
  config.policy = "SB";
  config.faults = faults::parse_fault_plan(
      "seed=42,create.fail=0.5,lemon=1:2,retry_base=5,retry_cap=60,"
      "quarantine_budget=50,breaker_threshold=2,breaker_probe_after=120");
  config.horizon_s = 30 * sim::kDay;
  const auto result =
      experiments::run_experiment(burst_workload(), std::move(config));
  EXPECT_FALSE(result.hit_horizon);
  EXPECT_EQ(result.jobs_finished, result.jobs_submitted);
  EXPECT_GT(result.report.breaker_opens, 0u);
}

#endif  // EASCHED_RESILIENCE_ENABLED

TEST(RunnerIdentity, InertControllerIsBitIdenticalToNoController) {
  const auto run = [](bool with_inert_controller) {
    experiments::RunConfig config;
    config.datacenter.hosts = experiments::evaluation_hosts(1, 3, 1);
    config.datacenter.seed = 5;
    config.policy = "SB";
    if (with_inert_controller) {
      // Enabled but with every mechanism neutralised: unlimited solver
      // budget, unbounded queue, breakers off. Must not perturb anything.
      ResilienceConfig c;
      c.enabled = true;
      c.solver_budget_moves = 0;
      c.max_pending = 0;
      c.breaker_threshold = 0;
      config.resilience = c;
    }
    config.horizon_s = 30 * sim::kDay;
    return experiments::run_experiment(burst_workload(), std::move(config));
  };
  const auto bare = run(false);
  const auto inert = run(true);
  EXPECT_EQ(bare.events_dispatched, inert.events_dispatched);
  EXPECT_DOUBLE_EQ(bare.report.energy_kwh, inert.report.energy_kwh);
  EXPECT_EQ(bare.report.migrations, inert.report.migrations);
  EXPECT_EQ(inert.report.solver_breaches, 0u);
  EXPECT_EQ(inert.report.jobs_shed, 0u);
  EXPECT_TRUE(inert.report.resilience_to_string().empty());
}

}  // namespace
}  // namespace easched::resilience
