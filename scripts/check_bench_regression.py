#!/usr/bin/env python3
"""Compare freshly generated benchmark JSON against the committed baselines.

Families (one per committed BENCH_*.json):

  fleet  — BENCH_fleet.json (bench_fleet --json): per (hosts, churn) row,
           the incremental scheduling round's median ms. The fresh file
           must also report identical_decisions on every row — a speedup
           bought with different decisions is a bug, not a regression, and
           fails regardless of threshold.
  solver — BENCH_solver.json (google-benchmark): per-benchmark median
           real_time (falls back to the plain entries when the file was
           generated without repetitions). Files whose context reports a
           debug google-benchmark library are skipped with a warning —
           timings through a debug harness are not comparable.
  sim    — BENCH_sim.json (bench_event_queue --json, before/after): per
           benchmark name, the "after" (pooled-queue) value.

Only names present in both files are compared, so a reduced fresh run
(fewer sizes, fewer rounds) checks just the overlap. A fresh value is a
regression when it exceeds baseline * (1 + threshold); faster is never
flagged. Exit status 1 names every regression; 0 otherwise.

stdlib only — runs anywhere the repo checks out.

Usage:
  scripts/check_bench_regression.py --fresh-dir build-bench \\
      [--baseline-dir .] [--threshold 0.25] [--families fleet,solver,sim]
"""

import argparse
import json
import os
import sys


def load(path):
    if not os.path.isfile(path):
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def gbench_medians(doc):
    """name -> median real_time from a google-benchmark JSON document."""
    out = {}
    plain = {}
    for b in doc.get("benchmarks", []):
        name = b.get("run_name", b.get("name"))
        if b.get("aggregate_name") == "median":
            out[name] = float(b["real_time"])
        elif "aggregate_name" not in b:
            plain[name] = float(b["real_time"])
    return out or plain


def solver_metrics(doc, label, warnings):
    if doc.get("context", {}).get("library_build_type") == "debug":
        warnings.append(
            f"solver: {label} file was produced against a debug "
            "google-benchmark library; family skipped"
        )
        return None
    return gbench_medians(doc)


def fleet_metrics(doc, label, errors):
    out = {}
    for row in doc.get("rows", []):
        key = f"hosts={row['hosts']}/churn={row['churn']}"
        out[key] = float(row["incremental_ms"]["median"])
        if label == "fresh" and not row.get("identical_decisions", False):
            errors.append(
                f"fleet: {key}: incremental and reference variants made "
                "different decisions (identical_decisions is false)"
            )
    return out


def sim_metrics(doc):
    return {
        b["name"]: float(b["value"])
        for b in doc.get("after", {}).get("benchmarks", [])
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh-dir", required=True,
                    help="directory holding the freshly generated BENCH_*.json")
    ap.add_argument("--baseline-dir", default=".",
                    help="directory holding the committed baselines "
                         "(default: current directory)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional slowdown before a metric is a "
                         "regression (default 0.25 = 25%%; wall-clock "
                         "benches on shared machines are noisy)")
    ap.add_argument("--families", default="fleet,solver,sim",
                    help="comma-separated subset of fleet,solver,sim")
    args = ap.parse_args()

    files = {
        "fleet": "BENCH_fleet.json",
        "solver": "BENCH_solver.json",
        "sim": "BENCH_sim.json",
    }
    regressions, errors, warnings = [], [], []
    compared = 0

    for family in [f.strip() for f in args.families.split(",") if f.strip()]:
        if family not in files:
            errors.append(f"unknown family {family!r} "
                          f"(expected one of {', '.join(files)})")
            continue
        base_doc = load(os.path.join(args.baseline_dir, files[family]))
        fresh_doc = load(os.path.join(args.fresh_dir, files[family]))
        if base_doc is None or fresh_doc is None:
            which = "baseline" if base_doc is None else "fresh"
            warnings.append(f"{family}: no {which} {files[family]}; skipped")
            continue
        if family == "solver":
            base = solver_metrics(base_doc, "baseline", warnings)
            fresh = solver_metrics(fresh_doc, "fresh", warnings)
            if base is None or fresh is None:
                continue
        elif family == "fleet":
            base = fleet_metrics(base_doc, "baseline", errors)
            fresh = fleet_metrics(fresh_doc, "fresh", errors)
        else:
            base = sim_metrics(base_doc)
            fresh = sim_metrics(fresh_doc)

        for name in sorted(set(base) & set(fresh)):
            compared += 1
            b, f = base[name], fresh[name]
            if b > 0 and f > b * (1.0 + args.threshold):
                regressions.append(
                    f"{family}: {name}: {f:.3f} vs baseline {b:.3f} "
                    f"(+{(f / b - 1.0) * 100.0:.1f}%, "
                    f"allowed +{args.threshold * 100.0:.0f}%)"
                )

    for w in warnings:
        print(f"note: {w}")
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    if regressions:
        print(f"{len(regressions)} benchmark regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
    if errors or regressions:
        return 1
    print(f"bench regression check OK ({compared} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
