#!/bin/sh
# Delta-minimises a failing scenario repro bundle with the shrink_tool
# example (see validate/shrink.hpp for the ddmin algorithm and
# validate/repro.hpp for the bundle format).
#
# Usage: scripts/shrink_repro.sh <bundle> [<out>] [<max-tests>]
#   bundle    — repro file written by a validated run (the runner writes it
#               to RunConfig.validate.repro_path on the first violation)
#   out       — minimised bundle path (default: <bundle>.min)
#   max-tests — replay budget for the shrinker (default 2000)
#
# Builds an up-to-date tree first (validation hooks ON) so the replayed
# scenario runs the same code that recorded the bundle.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"

if [ $# -lt 1 ]; then
  echo "usage: scripts/shrink_repro.sh <bundle> [<out>] [<max-tests>]" >&2
  exit 2
fi
bundle="$1"
out="${2:-$bundle.min}"
max_tests="${3:-2000}"

build_dir="$repo/build-validate"
cmake -S "$repo" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
  -DEASCHED_VALIDATE=ON -DEASCHED_BUILD_TESTS=OFF -DEASCHED_BUILD_BENCH=OFF \
  >/dev/null
cmake --build "$build_dir" --target shrink_tool -j"$(nproc)" >/dev/null

"$build_dir/examples/shrink_tool" \
  --bundle="$bundle" --out="$out" --max-tests="$max_tests"
