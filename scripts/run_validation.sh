#!/bin/sh
# Runs the invariant-checker validation matrix (see src/validate/ and
# docs/testing.md):
#
#   1. default build      — full test suite, then the validate-labelled
#                           tests again with run-time checking forced on
#                           for every experiment (EASCHED_VALIDATE=1)
#   2. AddressSanitizer   — validate + faults + resilience suites
#   3. ThreadSanitizer    — validate + solver + resilience suites (the
#                           threaded solver and the ladder's thread-count
#                           determinism under the checker)
#   4. EASCHED_VALIDATE=OFF — compile-out check: the hook call sites must
#                           vanish and the validate suite must still pass
#                           (the checker itself is always built)
#   5. EASCHED_RESILIENCE=OFF — same compile-out check for the resilience
#                           control plane (tests drive the controller
#                           directly, so its suite must still pass)
#   6. EASCHED_TELEMETRY=OFF — same compile-out check for the live
#                           telemetry plane (ring/serialisation/alert-engine
#                           tests drive the classes directly and must still
#                           pass; the sampling end-to-end tests compile out)
#
# Usage: scripts/run_validation.sh [fast]
#   fast — default build only (step 1); CI tier-1 runs this.
#
# Opt-in: EASCHED_BENCH_REGRESSION=1 appends a benchmark-regression step —
# a Release build of bench_fleet generates a reduced BENCH_fleet.json and
# scripts/check_bench_regression.py diffs it (plus any other fresh
# BENCH_*.json found in the build dir) against the committed baselines.
# Off by default: it is a wall-clock measurement and needs an idle machine.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
fast="${1:-}"

build() {
  dir="$1"
  shift
  cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DEASCHED_BUILD_BENCH=OFF -DEASCHED_BUILD_EXAMPLES=OFF "$@" >/dev/null
  cmake --build "$dir" -j"$(nproc)" >/dev/null
}

echo "== default build: full suite + validated experiments =="
build "$repo/build-validate"
ctest --test-dir "$repo/build-validate" --output-on-failure -j"$(nproc)"
EASCHED_VALIDATE=1 ctest --test-dir "$repo/build-validate" -L validate \
  --output-on-failure -j"$(nproc)"

if [ "${EASCHED_BENCH_REGRESSION:-}" = "1" ]; then
  echo "== benchmark regression check (opt-in) =="
  cmake -S "$repo" -B "$repo/build-bench-check" -DCMAKE_BUILD_TYPE=Release \
    -DEASCHED_BUILD_TESTS=OFF -DEASCHED_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$repo/build-bench-check" --target bench_fleet \
    -j"$(nproc)" >/dev/null
  # Reduced sweep: the checker compares only the (hosts, churn) rows that
  # exist in both files, so fewer sizes/rounds still gate the overlap.
  "$repo/build-bench-check/bench/bench_fleet" --json \
    --hosts=1000,4000 --rounds=12 --warmup=4 \
    > "$repo/build-bench-check/BENCH_fleet.json"
  python3 "$repo/scripts/check_bench_regression.py" \
    --baseline-dir "$repo" --fresh-dir "$repo/build-bench-check"
fi

if [ "$fast" = "fast" ]; then
  echo "validation (fast) OK"
  exit 0
fi

echo "== address-sanitized build: validate + faults + resilience + telemetry =="
build "$repo/build-validate-asan" -DEASCHED_SANITIZE=address
EASCHED_VALIDATE=1 ctest --test-dir "$repo/build-validate-asan" \
  -L "validate|faults|resilience|telemetry" --output-on-failure -j"$(nproc)"

echo "== thread-sanitized build: validate + solver + resilience =="
build "$repo/build-validate-tsan" -DEASCHED_SANITIZE=thread
EASCHED_VALIDATE=1 ctest --test-dir "$repo/build-validate-tsan" \
  -L "validate|solver|resilience" --output-on-failure -j"$(nproc)"

echo "== EASCHED_VALIDATE=OFF build: hooks compiled out =="
build "$repo/build-validate-off" -DEASCHED_VALIDATE=OFF
EASCHED_VALIDATE=1 ctest --test-dir "$repo/build-validate-off" -L validate \
  --output-on-failure -j"$(nproc)"

echo "== EASCHED_RESILIENCE=OFF build: control-plane hooks compiled out =="
build "$repo/build-resilience-off" -DEASCHED_RESILIENCE=OFF
ctest --test-dir "$repo/build-resilience-off" -L resilience \
  --output-on-failure -j"$(nproc)"

echo "== EASCHED_TELEMETRY=OFF build: sampling hooks compiled out =="
build "$repo/build-telemetry-off" -DEASCHED_TELEMETRY=OFF
ctest --test-dir "$repo/build-telemetry-off" -L telemetry \
  --output-on-failure -j"$(nproc)"

echo "validation matrix OK"
