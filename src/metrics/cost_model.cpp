#include "metrics/cost_model.hpp"

#include "support/contracts.hpp"

namespace easched::metrics {

CostReport price_run(const Recorder& recorder, double end_s,
                     const CostModelConfig& config) {
  EA_EXPECTS(config.energy_price_eur_kwh >= 0);
  EA_EXPECTS(config.revenue_eur_core_hour >= 0);
  CostReport out;
  for (const auto& job : recorder.jobs.records()) {
    // Revenue is for the *dedicated* work delivered (the client pays for
    // the job, not for its slowdown), discounted pro rata by satisfaction.
    const double core_hours =
        job.cpu_pct / 100.0 * job.dedicated_seconds / sim::kHour;
    out.revenue_eur += config.revenue_eur_core_hour * core_hours *
                       (job.satisfaction / 100.0);
    if (job.satisfaction < config.breach_threshold_pct) {
      out.breach_penalties_eur += config.breach_penalty_eur;
      ++out.breached_jobs;
    }
  }
  out.energy_cost_eur = recorder.energy_kwh(end_s) * config.energy_price_eur_kwh;
  return out;
}

}  // namespace easched::metrics
