#include "metrics/report.hpp"

#include <cstdio>
#include <sstream>

#include "obs/obs.hpp"
#include "support/stats.hpp"

namespace easched::metrics {

RunReport make_report(const Recorder& recorder, double end_s,
                      std::string policy_name, double lambda_min,
                      double lambda_max) {
  RunReport r;
  r.policy = std::move(policy_name);
  r.lambda_min = lambda_min;
  r.lambda_max = lambda_max;
  r.duration_s = end_s;
  r.avg_working = recorder.working.average(end_s);
  r.avg_online = recorder.online.average(end_s);
  r.cpu_hours = recorder.cpu_core_hours(end_s);
  r.energy_kwh = recorder.energy_kwh(end_s);
  r.satisfaction = recorder.jobs.mean_satisfaction();
  r.delay_pct = recorder.jobs.mean_delay_pct();
  r.migrations = recorder.counts.migrations;
  r.creations = recorder.counts.creations;
  r.turn_ons = recorder.counts.turn_ons;
  r.turn_offs = recorder.counts.turn_offs;
  r.failures = recorder.counts.failures;
  r.jobs_finished = recorder.jobs.count();

  // Robustness counters route through the metrics registry: publish once,
  // snapshot, then mirror the snapshot rows into the scalar fields.
  obs::MetricsRegistry registry;
  registry.set_sim_time(end_s);
  obs::publish_run_metrics(recorder, registry);
  r.metrics = registry.snapshot();
  const auto count = [&r](const char* name) -> std::uint64_t {
    const obs::SnapshotRow* row = r.metrics.find(name);
    return row == nullptr ? 0 : static_cast<std::uint64_t>(row->value);
  };
  r.op_failures = count("robust.op_failures");
  r.op_timeouts = count("robust.op_timeouts");
  r.retries = count("robust.retries");
  r.rollbacks = count("robust.rollbacks");
  r.quarantines = count("robust.quarantines");
  r.boot_failures = count("robust.boot_failures");
  r.checkpoint_recoveries = count("ckpt.recoveries");
  r.recreates = count("vm.recreates");
  const obs::SnapshotRow* recovery = r.metrics.find("robust.recovery_s");
  r.recoveries =
      recovery == nullptr ? 0 : static_cast<std::size_t>(recovery->count);
  r.solver_breaches = count("resilience.solver_breaches");
  r.ladder_downshifts = count("resilience.ladder_downshifts");
  r.ladder_upshifts = count("resilience.ladder_upshifts");
  r.jobs_shed = count("resilience.jobs_shed");
  r.jobs_deferred = count("resilience.jobs_deferred");
  r.breaker_opens = count("resilience.breaker_opens");
  r.breaker_closes = count("resilience.breaker_closes");
  r.breaker_deaths = count("resilience.breaker_deaths");
  const obs::SnapshotRow* max_level =
      r.metrics.find("resilience.max_ladder_level");
  r.max_ladder_level =
      max_level == nullptr ? 0 : static_cast<int>(max_level->value);
  if (!recorder.recovery_s.empty()) {
    r.recovery_p50_s = support::percentile(recorder.recovery_s, 50);
    r.recovery_p95_s = support::percentile(recorder.recovery_s, 95);
    r.recovery_max_s = support::percentile(recorder.recovery_s, 100);
  }
  return r;
}

std::string RunReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-8s l=%.0f-%.0f  Work/ON %.1f/%.1f  CPU %.1f h  "
                "Pwr %.1f kWh  S %.1f%%  delay %.1f%%  Mig %llu",
                policy.c_str(), lambda_min * 100, lambda_max * 100,
                avg_working, avg_online, cpu_hours, energy_kwh, satisfaction,
                delay_pct, static_cast<unsigned long long>(migrations));
  return buf;
}

std::string RunReport::robustness_to_string() const {
  if (op_failures == 0 && retries == 0 && quarantines == 0 &&
      boot_failures == 0 && recoveries == 0) {
    return {};
  }
  // One label per registry instrument — extending publish_run_metrics and
  // this table is all a new robustness counter needs to reach the report.
  static constexpr struct {
    const char* metric;
    const char* label;
  } kFields[] = {
      {"robust.op_failures", "op-fail"},
      {"robust.op_timeouts", "timeouts"},
      {"robust.retries", "retries"},
      {"robust.rollbacks", "rollbacks"},
      {"robust.quarantines", "quarantines"},
      {"robust.boot_failures", "boot-fail"},
      {"ckpt.recoveries", "ckpt-restore"},
      {"vm.recreates", "recreate"},
  };
  std::ostringstream os;
  os << "faults:";
  for (const auto& f : kFields) {
    const obs::SnapshotRow* row = metrics.find(f.metric);
    const auto v =
        row == nullptr ? 0ULL : static_cast<unsigned long long>(row->value);
    os << "  " << f.label << ' ' << v;
  }
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "  recover p50/p95/max %.0f/%.0f/%.0f s (n=%zu)",
                recovery_p50_s, recovery_p95_s, recovery_max_s, recoveries);
  os << buf;
  return os.str();
}

std::string RunReport::resilience_to_string() const {
  if (solver_breaches == 0 && ladder_downshifts == 0 && jobs_shed == 0 &&
      jobs_deferred == 0 && breaker_opens == 0 && breaker_deaths == 0) {
    return {};
  }
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "resilience:  breaches %llu  ladder down/up %llu/%llu (max rung %d)  "
      "shed %llu  deferred %llu  breaker open/close/dead %llu/%llu/%llu",
      static_cast<unsigned long long>(solver_breaches),
      static_cast<unsigned long long>(ladder_downshifts),
      static_cast<unsigned long long>(ladder_upshifts), max_ladder_level,
      static_cast<unsigned long long>(jobs_shed),
      static_cast<unsigned long long>(jobs_deferred),
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(breaker_closes),
      static_cast<unsigned long long>(breaker_deaths));
  return buf;
}

std::string RunReport::alerts_to_string() const {
  if (alerts.empty()) return {};
  std::ostringstream os;
  os << "alerts:";
  char buf[96];
  for (const auto& f : alerts) {
    os << "  " << f.rule;
    if (f.resolved_t >= 0) {
      std::snprintf(buf, sizeof buf, " fired@%.9g resolved@%.9g", f.fired_t,
                    f.resolved_t);
    } else {
      std::snprintf(buf, sizeof buf, " fired@%.9g (unresolved)", f.fired_t);
    }
    os << buf;
  }
  return os.str();
}

}  // namespace easched::metrics
