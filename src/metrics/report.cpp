#include "metrics/report.hpp"

#include <cstdio>

#include "support/stats.hpp"

namespace easched::metrics {

RunReport make_report(const Recorder& recorder, double end_s,
                      std::string policy_name, double lambda_min,
                      double lambda_max) {
  RunReport r;
  r.policy = std::move(policy_name);
  r.lambda_min = lambda_min;
  r.lambda_max = lambda_max;
  r.duration_s = end_s;
  r.avg_working = recorder.working.average(end_s);
  r.avg_online = recorder.online.average(end_s);
  r.cpu_hours = recorder.cpu_core_hours(end_s);
  r.energy_kwh = recorder.energy_kwh(end_s);
  r.satisfaction = recorder.jobs.mean_satisfaction();
  r.delay_pct = recorder.jobs.mean_delay_pct();
  r.migrations = recorder.counts.migrations;
  r.creations = recorder.counts.creations;
  r.turn_ons = recorder.counts.turn_ons;
  r.turn_offs = recorder.counts.turn_offs;
  r.failures = recorder.counts.failures;
  r.jobs_finished = recorder.jobs.count();

  r.op_failures = recorder.counts.op_failures;
  r.op_timeouts = recorder.counts.op_timeouts;
  r.retries = recorder.counts.retries;
  r.rollbacks = recorder.counts.rollbacks;
  r.quarantines = recorder.counts.quarantines;
  r.boot_failures = recorder.counts.boot_failures;
  r.checkpoint_recoveries = recorder.counts.checkpoint_recoveries;
  r.recreates = recorder.counts.recreates;
  r.recoveries = recorder.recovery_s.size();
  if (!recorder.recovery_s.empty()) {
    r.recovery_p50_s = support::percentile(recorder.recovery_s, 50);
    r.recovery_p95_s = support::percentile(recorder.recovery_s, 95);
    r.recovery_max_s = support::percentile(recorder.recovery_s, 100);
  }
  return r;
}

std::string RunReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-8s l=%.0f-%.0f  Work/ON %.1f/%.1f  CPU %.1f h  "
                "Pwr %.1f kWh  S %.1f%%  delay %.1f%%  Mig %llu",
                policy.c_str(), lambda_min * 100, lambda_max * 100,
                avg_working, avg_online, cpu_hours, energy_kwh, satisfaction,
                delay_pct, static_cast<unsigned long long>(migrations));
  return buf;
}

std::string RunReport::robustness_to_string() const {
  if (op_failures == 0 && retries == 0 && quarantines == 0 &&
      boot_failures == 0 && recoveries == 0) {
    return {};
  }
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "faults: op-fail %llu (timeout %llu)  retries %llu  rollbacks %llu  "
      "quarantines %llu  boot-fail %llu  ckpt-restore/recreate %llu/%llu  "
      "recover p50/p95/max %.0f/%.0f/%.0f s (n=%zu)",
      static_cast<unsigned long long>(op_failures),
      static_cast<unsigned long long>(op_timeouts),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(rollbacks),
      static_cast<unsigned long long>(quarantines),
      static_cast<unsigned long long>(boot_failures),
      static_cast<unsigned long long>(checkpoint_recoveries),
      static_cast<unsigned long long>(recreates), recovery_p50_s,
      recovery_p95_s, recovery_max_s, recoveries);
  return buf;
}

}  // namespace easched::metrics
