#include "metrics/report.hpp"

#include <cstdio>

namespace easched::metrics {

RunReport make_report(const Recorder& recorder, double end_s,
                      std::string policy_name, double lambda_min,
                      double lambda_max) {
  RunReport r;
  r.policy = std::move(policy_name);
  r.lambda_min = lambda_min;
  r.lambda_max = lambda_max;
  r.duration_s = end_s;
  r.avg_working = recorder.working.average(end_s);
  r.avg_online = recorder.online.average(end_s);
  r.cpu_hours = recorder.cpu_core_hours(end_s);
  r.energy_kwh = recorder.energy_kwh(end_s);
  r.satisfaction = recorder.jobs.mean_satisfaction();
  r.delay_pct = recorder.jobs.mean_delay_pct();
  r.migrations = recorder.counts.migrations;
  r.creations = recorder.counts.creations;
  r.turn_ons = recorder.counts.turn_ons;
  r.turn_offs = recorder.counts.turn_offs;
  r.failures = recorder.counts.failures;
  r.jobs_finished = recorder.jobs.count();
  return r;
}

std::string RunReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-8s l=%.0f-%.0f  Work/ON %.1f/%.1f  CPU %.1f h  "
                "Pwr %.1f kWh  S %.1f%%  delay %.1f%%  Mig %llu",
                policy.c_str(), lambda_min * 100, lambda_max * 100,
                avg_working, avg_online, cpu_hours, energy_kwh, satisfaction,
                delay_pct, static_cast<unsigned long long>(migrations));
  return buf;
}

}  // namespace easched::metrics
