#include "metrics/accumulators.hpp"

#include "support/contracts.hpp"

namespace easched::metrics {

void TimeWeighted::set(sim::SimTime t, double value) {
  if (!started_) {
    started_ = true;
    first_ = t;
    last_ = t;
    value_ = value;
    return;
  }
  EA_EXPECTS(t >= last_);
  sum_ += value_ * (t - last_);
  last_ = t;
  value_ = value;
}

double TimeWeighted::integral(sim::SimTime t) const {
  if (!started_) return 0;
  EA_EXPECTS(t >= last_);
  return sum_ + value_ * (t - last_);
}

double TimeWeighted::average(sim::SimTime t) const {
  if (!started_ || t <= first_) return 0;
  return integral(t) / (t - first_);
}

PerHostMeter::PerHostMeter(std::size_t num_hosts) : hosts_(num_hosts) {}

void PerHostMeter::set(sim::SimTime t, std::size_t h, double value) {
  EA_EXPECTS(h < hosts_.size());
  const double delta = value - hosts_[h].current();
  hosts_[h].set(t, value);
  total_.set(t, total_.current() + delta);
}

double PerHostMeter::host_integral(std::size_t h, sim::SimTime t) const {
  EA_EXPECTS(h < hosts_.size());
  return hosts_[h].integral(t);
}

double PerHostMeter::total_integral(sim::SimTime t) const {
  return total_.integral(t);
}

double PerHostMeter::host_current(std::size_t h) const {
  EA_EXPECTS(h < hosts_.size());
  return hosts_[h].current();
}

double PerHostMeter::total_current() const noexcept {
  return total_.current();
}

void JobLog::add(JobRecord rec) { records_.push_back(rec); }

double JobLog::mean_satisfaction() const {
  if (records_.empty()) return 0;
  double s = 0;
  for (const auto& r : records_) s += r.satisfaction;
  return s / static_cast<double>(records_.size());
}

double JobLog::mean_delay_pct() const {
  if (records_.empty()) return 0;
  double s = 0;
  for (const auto& r : records_) s += r.delay_pct;
  return s / static_cast<double>(records_.size());
}

}  // namespace easched::metrics
