#include "metrics/series.hpp"

#include "support/contracts.hpp"
#include "support/csv.hpp"

namespace easched::metrics {

SeriesRecorder::SeriesRecorder(sim::Simulator& simulator,
                               sim::SimTime period_s)
    : sim_(simulator) {
  EA_EXPECTS(period_s > 0);
  handle_ = sim_.every(period_s, [this] { sample(); });
}

SeriesRecorder::~SeriesRecorder() { sim_.cancel_periodic(handle_); }

void SeriesRecorder::add_channel(std::string name,
                                 std::function<double()> read) {
  EA_EXPECTS(read != nullptr);
  EA_EXPECTS(times_.empty());  // register channels before sampling starts
  channels_.push_back({std::move(name), std::move(read), {}});
}

void SeriesRecorder::sample() {
  times_.push_back(sim_.now());
  for (auto& ch : channels_) ch.values.push_back(ch.read());
}

const std::vector<double>& SeriesRecorder::channel(std::size_t i) const {
  EA_EXPECTS(i < channels_.size());
  return channels_[i].values;
}

const std::string& SeriesRecorder::channel_name(std::size_t i) const {
  EA_EXPECTS(i < channels_.size());
  return channels_[i].name;
}

void SeriesRecorder::write_csv(std::ostream& out) const {
  support::CsvWriter csv(out);
  std::vector<std::string> header{"t_s"};
  for (const auto& ch : channels_) header.push_back(ch.name);
  csv.row(header);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    std::vector<double> row{times_[i]};
    for (const auto& ch : channels_) row.push_back(ch.values[i]);
    csv.numeric_row(row);
  }
}

}  // namespace easched::metrics
