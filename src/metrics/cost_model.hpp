// Economic view of a run (the paper's "global revenue" / "economical
// decision making" thread, deferred there to future work).
//
// A provider earns revenue per delivered core-hour, discounted by the SLA:
// a job's payment scales with its client satisfaction S (a job at S = 50 %
// pays half; the deadline contract of section V maps S directly to the
// refund schedule). Energy is bought at a (possibly time-varying, see
// geo/energy_price.hpp) tariff. Profit = revenue - energy cost.
#pragma once

#include "metrics/accumulators.hpp"

namespace easched::metrics {

struct CostModelConfig {
  double energy_price_eur_kwh = 0.12;
  double revenue_eur_core_hour = 0.08;  ///< full-satisfaction rate
  /// Fixed penalty per job that ends below this satisfaction (a contract
  /// breach beyond the pro-rata discount), in EUR.
  double breach_threshold_pct = 50.0;
  double breach_penalty_eur = 1.0;
};

struct CostReport {
  double revenue_eur = 0;
  double energy_cost_eur = 0;
  double breach_penalties_eur = 0;
  std::size_t breached_jobs = 0;
  [[nodiscard]] double profit_eur() const {
    return revenue_eur - energy_cost_eur - breach_penalties_eur;
  }
};

/// Prices a finished run: per-job revenue from the job log, energy from the
/// meters at measurement end `end_s`.
CostReport price_run(const Recorder& recorder, double end_s,
                     const CostModelConfig& config = {});

}  // namespace easched::metrics
