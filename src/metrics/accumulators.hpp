// Time-weighted measurement of the simulated datacenter.
//
// Power, CPU usage and node counts are piecewise-constant signals that
// change only at events; each accumulator integrates its signal exactly by
// accumulating value * dt on every change, which is how the paper's
// simulator "measures power consumption" (section IV). No sampling error is
// introduced for the aggregate numbers in Tables II-V; the optional series
// sampler exists for Figure-1-style plots.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace easched::obs {
struct Observability;
}

namespace easched::validate {
class InvariantChecker;
}

namespace easched::resilience {
class ResilienceController;
}

namespace easched::metrics {

/// Exact integral of a piecewise-constant signal.
class TimeWeighted {
 public:
  /// Sets the signal value from time `t` onward. `t` must be >= the time of
  /// the previous call.
  void set(sim::SimTime t, double value);

  /// Integral of the signal over [t0, t]. Requires t >= time of last set().
  [[nodiscard]] double integral(sim::SimTime t) const;

  /// Time-average over [start, t] where `start` is the time of the first
  /// set() call (0 if none). Returns 0 for an empty interval.
  [[nodiscard]] double average(sim::SimTime t) const;

  [[nodiscard]] double current() const noexcept { return value_; }

 private:
  double value_ = 0;
  double sum_ = 0;  // integral up to last_
  sim::SimTime first_ = 0;
  sim::SimTime last_ = 0;
  bool started_ = false;
};

/// Per-host piecewise-constant signal with an exact aggregate integral.
/// Used twice: watts -> energy, and allocated CPU% -> core-hours.
class PerHostMeter {
 public:
  explicit PerHostMeter(std::size_t num_hosts);

  /// Sets host `h`'s signal value from time `t` onward.
  void set(sim::SimTime t, std::size_t h, double value);

  /// Integral of host h's signal up to time t.
  [[nodiscard]] double host_integral(std::size_t h, sim::SimTime t) const;

  /// Integral of the summed signal up to time t.
  [[nodiscard]] double total_integral(sim::SimTime t) const;

  [[nodiscard]] double host_current(std::size_t h) const;
  [[nodiscard]] double total_current() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return hosts_.size(); }

 private:
  std::vector<TimeWeighted> hosts_;
  TimeWeighted total_;
};

/// Outcome of one completed job, with the paper's QoS metrics attached.
struct JobRecord {
  std::uint32_t vm = 0;
  sim::SimTime submit = 0;
  sim::SimTime finish = 0;
  double dedicated_seconds = 0;  ///< runtime on a dedicated machine
  double deadline_seconds = 0;   ///< agreed deadline (relative to submit)
  double satisfaction = 0;       ///< S in [0, 100]
  double delay_pct = 0;          ///< 100*(Texec - Tded)/Tded, clamped >= 0
  double cpu_pct = 0;            ///< requested CPU (for billing)
};

/// Collects per-job records and aggregates the S / delay columns.
class JobLog {
 public:
  void add(JobRecord rec);
  [[nodiscard]] std::size_t count() const noexcept { return records_.size(); }
  [[nodiscard]] double mean_satisfaction() const;
  [[nodiscard]] double mean_delay_pct() const;
  [[nodiscard]] const std::vector<JobRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<JobRecord> records_;
};

/// Operation counters reported alongside the table metrics.
struct Counters {
  std::uint64_t creations = 0;
  std::uint64_t migrations = 0;
  std::uint64_t turn_ons = 0;
  std::uint64_t turn_offs = 0;
  std::uint64_t failures = 0;
  std::uint64_t sla_alarms = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_recoveries = 0;
  /// VMs recreated from scratch after a host failure because no checkpoint
  /// existed (complement of checkpoint_recoveries).
  std::uint64_t recreates = 0;

  // ---- robustness counters (fault-injection & recovery layer) ----------
  std::uint64_t op_failures = 0;    ///< actuator ops that failed partway
  std::uint64_t op_timeouts = 0;    ///< ops aborted by their deadline
  std::uint64_t retries = 0;        ///< backoff-delayed re-attempts scheduled
  std::uint64_t rollbacks = 0;      ///< migrations rolled back to the source
  std::uint64_t quarantines = 0;    ///< hosts exiled over the failure budget
  std::uint64_t boot_failures = 0;  ///< hosts that missed their boot deadline

  // ---- resilience counters (control plane, see src/resilience/) ---------
  std::uint64_t solver_breaches = 0;   ///< rounds that exhausted the budget
  std::uint64_t ladder_downshifts = 0; ///< degradation-ladder steps down
  std::uint64_t ladder_upshifts = 0;   ///< hysteresis recoveries back up
  std::uint64_t jobs_shed = 0;         ///< arrivals rejected by admission
  std::uint64_t jobs_deferred = 0;     ///< arrivals pushed back for later
  std::uint64_t breaker_opens = 0;     ///< host circuit breakers tripped
  std::uint64_t breaker_closes = 0;    ///< breakers closed by a good probe
  std::uint64_t breaker_probes = 0;    ///< half-open probe ops dispatched
  std::uint64_t breaker_deaths = 0;    ///< hosts written off as dead
};

/// One bundle with every accumulator a run needs; the Datacenter feeds the
/// meters, the SchedulerDriver feeds the job log and counters.
struct Recorder {
  explicit Recorder(std::size_t num_hosts)
      : watts(num_hosts), cpu_pct(num_hosts) {}

  PerHostMeter watts;     ///< electrical power per host [W]
  PerHostMeter cpu_pct;   ///< allocated CPU per host [% of one core]
  TimeWeighted working;   ///< #hosts hosting at least one VM or operation
  TimeWeighted online;    ///< #hosts powered on (incl. booting)
  JobLog jobs;
  Counters counts;

  /// Time-to-recover samples [s]: per disruption (host failure or failed
  /// creation) the delay until the affected VM was running again. The
  /// report aggregates these into p50/p95/max.
  std::vector<double> recovery_s;

  /// Simulation-kernel throughput counters, filled by the runner after the
  /// run (the recorder never touches the event queue itself); published as
  /// sim.events_dispatched / sim.events_cancelled.
  std::uint64_t events_dispatched = 0;
  std::uint64_t events_cancelled = 0;

  /// Highest guest-demand/capacity ratio any host ever reached (1.0 =
  /// never oversubscribed; dom0 management overhead not counted).
  /// Consolidating policies must keep this at 1; the Random/Round-Robin
  /// baselines push it above.
  double max_oversubscription = 1.0;

  /// Optional observability bundle for the run (tracer / metrics registry
  /// / phase profiler); not owned. The recorder already flows through
  /// every instrumented layer, so it carries the pointer — access it via
  /// the compile-gated helpers in obs/obs.hpp, never directly.
  obs::Observability* obs = nullptr;

  /// Optional run-time invariant checker (see validate/); not owned. Rides
  /// on the recorder for the same reason as `obs`: every instrumented
  /// layer already receives the recorder. Access via the compile-gated
  /// helper in validate/validate.hpp, never directly.
  validate::InvariantChecker* validator = nullptr;

  /// Optional resilience controller (see resilience/); not owned. Same
  /// ride-on-the-recorder pattern as `obs` and `validator`. Access via the
  /// compile-gated helper in resilience/resilience.hpp, never directly.
  resilience::ResilienceController* resilience = nullptr;

  /// Total energy in kWh up to time t.
  [[nodiscard]] double energy_kwh(sim::SimTime t) const {
    return watts.total_integral(t) / sim::kHour / 1000.0;
  }
  /// Total allocated CPU in core-hours up to time t.
  [[nodiscard]] double cpu_core_hours(sim::SimTime t) const {
    return cpu_pct.total_integral(t) / 100.0 / sim::kHour;
  }
};

}  // namespace easched::metrics
