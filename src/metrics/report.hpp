// Aggregation of a finished run into the columns the paper's Tables II-V
// report: average Working / ON nodes, CPU hours, power (kWh), client
// satisfaction S (%), delay (%), and number of migrations.
#pragma once

#include <string>

#include <vector>

#include "metrics/accumulators.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/telemetry/alerts.hpp"

namespace easched::metrics {

struct RunReport {
  std::string policy;
  double lambda_min = 0;
  double lambda_max = 0;
  double duration_s = 0;       ///< measurement window (submit of first job
                               ///< to finish of last job)
  double avg_working = 0;      ///< "Work" column
  double avg_online = 0;       ///< "ON" column
  double cpu_hours = 0;        ///< "CPU (h)" column
  double energy_kwh = 0;       ///< "Pwr (kW)" column
  double satisfaction = 0;     ///< "S (%)" column
  double delay_pct = 0;        ///< "delay (%)" column
  std::uint64_t migrations = 0;
  std::uint64_t creations = 0;
  std::uint64_t turn_ons = 0;
  std::uint64_t turn_offs = 0;
  std::uint64_t failures = 0;
  std::size_t jobs_finished = 0;

  // ---- robustness (fault-injection & recovery layer) ---------------------
  // Derived from `metrics` (the registry snapshot below) in make_report;
  // kept as scalars for ergonomic test/bench access.
  std::uint64_t op_failures = 0;
  std::uint64_t op_timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t boot_failures = 0;
  std::uint64_t checkpoint_recoveries = 0;
  std::uint64_t recreates = 0;
  std::size_t recoveries = 0;     ///< time-to-recover samples
  double recovery_p50_s = 0;
  double recovery_p95_s = 0;
  double recovery_max_s = 0;

  // ---- resilience (control plane: watchdog / ladder / admission /
  // breakers; see src/resilience/) ----------------------------------------
  std::uint64_t solver_breaches = 0;
  std::uint64_t ladder_downshifts = 0;
  std::uint64_t ladder_upshifts = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t jobs_deferred = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_deaths = 0;
  /// Deepest degradation rung the run visited (0 = stayed at full quality).
  int max_ladder_level = 0;

  /// Every run counter as named instruments (see obs::publish_run_metrics
  /// for the catalogue) — the single formatting/export path: CSV via
  /// metrics.to_csv(), JSON via metrics.to_json(), and the robustness line
  /// below, which reads these rows rather than dedicated fields.
  obs::MetricsSnapshot metrics;

  /// Telemetry alert firing log (empty unless the run carried an enabled
  /// AlertEngine; filled by the experiment runner after make_report).
  std::vector<obs::AlertFiring> alerts;

  /// One line in the style of the paper's tables.
  [[nodiscard]] std::string to_string() const;

  /// One line with the robustness counters and time-to-recover percentiles
  /// (empty when no faults were injected and nothing was recovered).
  [[nodiscard]] std::string robustness_to_string() const;

  /// One line with the resilience control-plane counters (empty when the
  /// controller never acted: no breaches, shed/deferred jobs or breaker
  /// trips).
  [[nodiscard]] std::string resilience_to_string() const;

  /// One line per alert firing episode (empty when no rule ever fired).
  [[nodiscard]] std::string alerts_to_string() const;
};

/// Builds the report from a recorder at measurement end time `end_s`.
RunReport make_report(const Recorder& recorder, double end_s,
                      std::string policy_name, double lambda_min,
                      double lambda_max);

}  // namespace easched::metrics
