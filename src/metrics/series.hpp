// Time-series sampling of a running simulation, for figures and debugging.
//
// The aggregate accumulators integrate exactly; this recorder additionally
// snapshots selected signals at a fixed cadence (like the paper's Figure 1
// power trace) so a run can be plotted. Samples are held in memory and
// dumped as CSV.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace easched::metrics {

/// Samples named channels every `period_s` for as long as the simulation
/// produces events. Channels are arbitrary read-out callbacks, evaluated at
/// sample time (e.g. [&]{ return recorder.watts.total_current(); }).
class SeriesRecorder {
 public:
  SeriesRecorder(sim::Simulator& simulator, sim::SimTime period_s);
  ~SeriesRecorder();

  SeriesRecorder(const SeriesRecorder&) = delete;
  SeriesRecorder& operator=(const SeriesRecorder&) = delete;

  /// Registers a channel; call before the simulation runs.
  void add_channel(std::string name, std::function<double()> read);

  [[nodiscard]] std::size_t num_samples() const { return times_.size(); }
  [[nodiscard]] const std::vector<sim::SimTime>& times() const {
    return times_;
  }
  /// Values of channel `i`, same length as times().
  [[nodiscard]] const std::vector<double>& channel(std::size_t i) const;
  [[nodiscard]] const std::string& channel_name(std::size_t i) const;
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }

  /// Writes "t,<name1>,<name2>,..." rows as CSV.
  void write_csv(std::ostream& out) const;

 private:
  void sample();

  sim::Simulator& sim_;
  sim::Simulator::PeriodicHandle handle_{};
  struct Channel {
    std::string name;
    std::function<double()> read;
    std::vector<double> values;
  };
  std::vector<Channel> channels_;
  std::vector<sim::SimTime> times_;
};

}  // namespace easched::metrics
