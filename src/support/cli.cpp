#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace easched::support {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      key = std::move(arg);
      value = argv[++i];
    } else {
      key = std::move(arg);
      value = "true";  // bare flag
    }
    // Deterministic last-one-wins on repeats, with a warning — a duplicated
    // flag is usually an edited command line where the stale copy survived.
    const auto it = values_.find(key);
    if (it != values_.end()) {
      ++duplicates_;
      std::fprintf(stderr,
                   "easched: warning: --%s given more than once; using "
                   "'%s' (was '%s')\n",
                   key.c_str(), value.c_str(), it->second.c_str());
      it->second = std::move(value);
    } else {
      values_.emplace(std::move(key), std::move(value));
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  seen_.insert(key);
  return values_.count(key) != 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  seen_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  seen_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(key);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "easched: bad numeric value for --%s: '%s'\n",
                 key.c_str(), it->second.c_str());
    std::exit(2);
  }
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  seen_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(key);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "easched: bad integer value for --%s: '%s'\n",
                 key.c_str(), it->second.c_str());
    std::exit(2);
  }
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  seen_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  std::fprintf(stderr, "easched: bad boolean value for --%s: '%s'\n",
               key.c_str(), v.c_str());
  std::exit(2);
}

std::size_t CliArgs::warn_unrecognized() const {
  std::size_t unknown = 0;
  for (const auto& [key, value] : values_) {
    if (seen_.count(key) != 0) continue;
    ++unknown;
    std::fprintf(stderr, "easched: warning: unrecognized option --%s%s%s\n",
                 key.c_str(), value == "true" ? "" : "=",
                 value == "true" ? "" : value.c_str());
  }
  return unknown;
}

}  // namespace easched::support
