// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (VM creation jitter, workload
// synthesis, failure injection, the Random policy) draws from this generator
// so that a (seed, configuration) pair fully determines a run. We implement
// xoshiro256** seeded via SplitMix64 rather than using std::mt19937 because
// the standard distributions are not bit-reproducible across library
// implementations; every distribution used by the simulator is implemented
// in distributions.hpp on top of this engine.
#pragma once

#include <cstdint>

namespace easched::support {

/// xoshiro256** engine (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64, which
  /// guarantees a well-mixed non-zero state for any seed (including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Derives an independent child generator; used to give each subsystem
  /// (workload, failures, creation jitter, ...) its own stream so adding a
  /// consumer does not perturb the draws seen by the others.
  Rng split() noexcept;

  /// A stream derived from (seed, name). XOR-ing the seed with a constant
  /// is NOT a safe way to carve out a subsystem stream — for the seed equal
  /// to that constant it collides with the default-seeded engine, and for
  /// any seed s it collides with the plain stream of seed s^constant.
  /// Hashing the name into the seed keeps every named stream disjoint from
  /// every plain-seeded one for all seeds.
  static Rng named(std::uint64_t seed, const char* name) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace easched::support
