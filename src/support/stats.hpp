// Small descriptive-statistics helpers for benches and tests (mean, sample
// standard deviation, percentiles, min/max summaries).
#pragma once

#include <vector>

namespace easched::support {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1); 0 for n < 2
  double min = 0;
  double max = 0;
};

/// Summarises a sample. Returns a zeroed Summary for empty input.
Summary summarize(const std::vector<double>& values);

/// Linear-interpolation percentile (p in [0, 100]). Requires non-empty
/// input; the input vector is copied and sorted internally.
double percentile(std::vector<double> values, double p);

}  // namespace easched::support
