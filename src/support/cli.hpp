// Tiny command-line option parser shared by the examples and bench
// binaries: `--key value` and `--key=value` pairs plus `--flag` booleans.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace easched::support {

/// Parses argv into a key->value map. Unrecognised positional arguments are
/// collected in `positional()`. Lookup helpers return the supplied default
/// when the option is absent and abort with a message when a value fails to
/// parse, so misspelled numeric options never silently run a wrong config.
///
/// Every lookup (has/get/...) marks its key as recognised; after all
/// options have been read, call warn_unrecognized() to flag typos like
/// `--trce=` that would otherwise be ignored silently.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Prints a stderr warning for each option that was supplied but never
  /// looked up. Call after the last get*(); returns the number of unknown
  /// options so callers can choose to make the typo fatal.
  std::size_t warn_unrecognized() const;

  /// Options that appeared more than once on the command line (each repeat
  /// warned at parse time; the last value deterministically wins).
  [[nodiscard]] std::size_t duplicate_count() const noexcept {
    return duplicates_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::size_t duplicates_ = 0;
  /// Keys the program has looked up — i.e. options it understands.
  mutable std::set<std::string> seen_;
};

}  // namespace easched::support
