// Tiny command-line option parser shared by the examples and bench
// binaries: `--key value` and `--key=value` pairs plus `--flag` booleans.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace easched::support {

/// Parses argv into a key->value map. Unrecognised positional arguments are
/// collected in `positional()`. Lookup helpers return the supplied default
/// when the option is absent and abort with a message when a value fails to
/// parse, so misspelled numeric options never silently run a wrong config.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace easched::support
