#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace easched::support {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.front();
  double sum = 0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return s;
}

double percentile(std::vector<double> values, double p) {
  EA_EXPECTS(!values.empty());
  EA_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  // Clamp the floor index: p=100 makes rank land exactly on size()-1, and
  // float rounding could push the truncation to size(), reading past the
  // last sample for tiny n.
  const std::size_t lo =
      std::min(static_cast<std::size_t>(rank), values.size() - 1);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace easched::support
