#include "support/csv.hpp"

#include <charconv>

namespace easched::support {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::numeric_row(const std::vector<double>& values) {
  char buf[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) *out_ << ',';
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof buf, values[i],
                      std::chars_format::general, 17);
    *out_ << std::string_view(buf, static_cast<std::size_t>(ptr - buf));
    (void)ec;
  }
  *out_ << '\n';
}

}  // namespace easched::support
