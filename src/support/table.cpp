#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

namespace easched::support {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

void append_padded(std::string& out, const std::string& cell,
                   std::size_t width) {
  const bool right = looks_numeric(cell);
  const std::size_t pad = width > cell.size() ? width - cell.size() : 0;
  if (right) out.append(pad, ' ');
  out += cell;
  if (!right) out.append(pad, ' ');
}

}  // namespace

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) measure(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < ncols; ++i) {
      if (i != 0) out += "  ";
      append_padded(out, i < r.size() ? r[i] : std::string{}, width[i]);
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < ncols; ++i) total += width[i] + (i ? 2 : 0);
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

}  // namespace easched::support
