// Lightweight contract macros in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations abort with a message identifying the failed condition and its
// source location. Contracts stay enabled in release builds: every check in
// this library guards simulation-state invariants whose silent violation
// would corrupt experiment results.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace easched::support {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "easched: %s violated: %s at %s:%d\n", kind, cond,
               file, line);
  std::abort();
}

}  // namespace easched::support

#define EA_EXPECTS(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::easched::support::contract_failure("precondition", #cond,         \
                                           __FILE__, __LINE__);           \
  } while (false)

#define EA_ENSURES(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::easched::support::contract_failure("postcondition", #cond,        \
                                           __FILE__, __LINE__);           \
  } while (false)

#define EA_ASSERT(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::easched::support::contract_failure("invariant", #cond,            \
                                           __FILE__, __LINE__);           \
  } while (false)
