// Fixed-width plain-text tables, used by the bench binaries to print the
// same rows the paper's Tables I-V report.
#pragma once

#include <string>
#include <vector>

namespace easched::support {

/// Accumulates rows of string cells and renders them with columns padded to
/// the widest cell. The first row added with `header()` is separated from
/// the body by a rule.
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);

  /// Renders the table; every column is left-aligned except cells that parse
  /// as numbers, which are right-aligned.
  [[nodiscard]] std::string render() const;

  /// Formats a double with `decimals` fractional digits.
  static std::string num(double v, int decimals = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace easched::support
