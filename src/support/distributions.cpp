#include "support/distributions.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace easched::support {

double normal01(Rng& rng) noexcept {
  // Marsaglia polar method; rejection keeps the transform numerically tame.
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double normal(Rng& rng, double mean, double stddev) noexcept {
  EA_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal01(rng);
}

double truncated_normal(Rng& rng, double mean, double stddev,
                        double lo) noexcept {
  EA_EXPECTS(stddev >= 0.0);
  if (stddev == 0.0) return mean < lo ? lo : mean;
  // Resampling is fine here: every caller keeps `lo` several sigma below the
  // mean (e.g. creation time N(40, 2.5) truncated at 1), so the acceptance
  // probability is ~1.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = normal(rng, mean, stddev);
    if (x >= lo) return x;
  }
  return lo;
}

double exponential(Rng& rng, double rate) noexcept {
  EA_EXPECTS(rate > 0.0);
  // 1 - uniform01() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - rng.uniform01()) / rate;
}

double lognormal(Rng& rng, double mu, double sigma) noexcept {
  return std::exp(normal(rng, mu, sigma));
}

double pareto(Rng& rng, double xm, double alpha) noexcept {
  EA_EXPECTS(xm > 0.0);
  EA_EXPECTS(alpha > 0.0);
  return xm / std::pow(1.0 - rng.uniform01(), 1.0 / alpha);
}

unsigned poisson(Rng& rng, double mean) noexcept {
  EA_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double p = 1.0;
    unsigned k = 0;
    do {
      ++k;
      p *= rng.uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double x = normal(rng, mean, std::sqrt(mean));
  return x < 0.5 ? 0U : static_cast<unsigned>(x + 0.5);
}

unsigned weighted_choice(Rng& rng, const double* weights, unsigned n) noexcept {
  EA_EXPECTS(n > 0);
  double total = 0.0;
  for (unsigned i = 0; i < n; ++i) {
    EA_EXPECTS(weights[i] >= 0.0);
    total += weights[i];
  }
  EA_EXPECTS(total > 0.0);
  double r = rng.uniform01() * total;
  for (unsigned i = 0; i + 1 < n; ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return n - 1;
}

}  // namespace easched::support
