// Reproducible statistical distributions used by the simulator.
//
// The paper models VM-creation duration with a normal distribution
// (mu = 40 s, sigma = 2.5 observed on the real testbed, section IV) and the
// workload synthesis needs exponential (Poisson arrivals), log-normal
// (heavy-tailed job runtimes), and Pareto draws. Implemented here instead of
// <random> distributions so results are identical on every platform.
#pragma once

#include "support/rng.hpp"

namespace easched::support {

/// Standard-normal draw via Box-Muller (polar rejection form).
double normal01(Rng& rng) noexcept;

/// Normal(mean, stddev). Requires stddev >= 0.
double normal(Rng& rng, double mean, double stddev) noexcept;

/// Normal(mean, stddev) truncated below at `lo` by resampling. Used for
/// durations that must stay positive (e.g. VM creation time).
double truncated_normal(Rng& rng, double mean, double stddev,
                        double lo) noexcept;

/// Exponential with the given rate (lambda > 0); mean = 1/rate.
double exponential(Rng& rng, double rate) noexcept;

/// Log-normal: exp(Normal(mu, sigma)) of the underlying normal.
double lognormal(Rng& rng, double mu, double sigma) noexcept;

/// Pareto with scale xm > 0 and shape alpha > 0.
double pareto(Rng& rng, double xm, double alpha) noexcept;

/// Poisson(mean) via inversion for small means, normal approximation for
/// large ones. Returns a non-negative count.
unsigned poisson(Rng& rng, double mean) noexcept;

/// Weighted choice: returns an index in [0, n) with probability
/// weights[i] / sum(weights). Requires n > 0 and non-negative weights with a
/// positive sum.
unsigned weighted_choice(Rng& rng, const double* weights, unsigned n) noexcept;

}  // namespace easched::support
