#include "support/rng.hpp"

#include "support/contracts.hpp"

namespace easched::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step; used only for seeding.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  EA_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  EA_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return (*this)();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + v % span;
}

Rng Rng::split() noexcept {
  return Rng{(*this)()};
}

Rng Rng::named(std::uint64_t seed, const char* name) noexcept {
  // FNV-1a over the stream name, then one SplitMix64 round to mix the
  // result into the seed. Distinct names give unrelated streams; equal
  // (seed, name) pairs give identical ones.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t mix = seed ^ h;
  return Rng{splitmix64(mix)};
}

}  // namespace easched::support
