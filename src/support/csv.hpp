// Minimal CSV emission for experiment output (series for Figures 1-3,
// per-run rows for Tables II-V). Quoting follows RFC 4180: fields containing
// a comma, quote, or newline are quoted and embedded quotes doubled.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace easched::support {

/// Streams rows of a CSV document to an std::ostream. The writer does not
/// own the stream; keep it alive for the writer's lifetime.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; each field is escaped as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with full round-trip precision.
  void numeric_row(const std::vector<double>& values);

  /// Escapes a single field per RFC 4180.
  static std::string escape(std::string_view field);

 private:
  std::ostream* out_;
};

}  // namespace easched::support
