#include "workload/swf.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "support/contracts.hpp"

namespace easched::workload {

Workload read_swf(std::istream& in, const SwfOptions& options) {
  Workload jobs;
  support::Rng rng{options.deadline_seed};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == ';') continue;  // comment / header

    std::istringstream fields(line);
    // SWF fields, 1-based as in the spec.
    double f[19];
    int n = 0;
    while (n < 18 && fields >> f[n + 1]) ++n;
    if (n < 5) {
      throw std::runtime_error("swf: malformed data line " +
                               std::to_string(lineno));
    }
    for (int i = n + 1; i <= 18; ++i) f[i] = -1;

    const double submit = f[2];
    const double runtime = f[4];
    double procs = f[5] > 0 ? f[5] : f[8];
    if (submit < 0 || runtime <= 0 || procs <= 0) continue;  // cancelled
    if (runtime < options.min_runtime_s) continue;

    Job job;
    job.id = static_cast<std::uint32_t>(jobs.size());
    job.submit = submit;
    job.dedicated_seconds = runtime;
    job.cpu_pct = std::min(procs * 100.0, options.max_cpu_pct);
    job.mem_mb = f[10] > 0 ? f[10] / 1024.0 * procs : options.default_mem_mb;
    job.deadline_factor =
        rng.uniform(options.deadline_factor_lo, options.deadline_factor_hi);
    jobs.push_back(job);
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  if (!jobs.empty()) {
    const sim::SimTime t0 = jobs.front().submit;
    for (auto& j : jobs) j.submit -= t0;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i)
    jobs[i].id = static_cast<std::uint32_t>(i);
  return jobs;
}

Workload read_swf_file(const std::string& path, const SwfOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("swf: cannot open " + path);
  return read_swf(in, options);
}

void write_swf(std::ostream& out, const Workload& jobs) {
  // Full round-trip precision for times (default ostream precision is 6
  // significant digits, which truncates week-scale timestamps).
  out.precision(15);
  out << "; SWF trace written by easched\n"
      << "; fields: id submit wait runtime procs avgcpu usedmem reqprocs "
         "reqtime reqmem status uid gid app queue partition prevjob "
         "thinktime\n";
  for (const auto& j : jobs) {
    const int procs = std::max(1, static_cast<int>(j.cpu_pct / 100.0 + 0.999));
    out << j.id + 1 << ' ' << j.submit << ' ' << -1 << ' '
        << j.dedicated_seconds << ' ' << procs << ' ' << -1 << ' ' << -1
        << ' ' << procs << ' ' << -1 << ' '
        << static_cast<long>(j.mem_mb * 1024.0 / procs) << ' ' << 1
        << " -1 -1 -1 -1 -1 -1 -1\n";
  }
}

}  // namespace easched::workload
