// The paper's QoS metric (section V): client satisfaction S as a function of
// execution time against the agreed deadline, and the execution-delay
// metric reported next to it in Tables II-V.
#pragma once

namespace easched::workload {

/// S = 100 if Texec < Tdead; otherwise 100 * max(1 - (Texec-Tdead)/Tdead, 0).
/// Reaches 0 when the job takes twice its deadline. Requires
/// deadline_seconds > 0.
double satisfaction(double exec_seconds, double deadline_seconds);

/// Execution delay in percent relative to the dedicated-machine runtime:
/// 100 * (Texec - Tded)/Tded, clamped at 0. Requires dedicated_seconds > 0.
double delay_pct(double exec_seconds, double dedicated_seconds);

}  // namespace easched::workload
