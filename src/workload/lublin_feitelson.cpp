#include "workload/lublin_feitelson.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace easched::workload {

namespace {

/// Gamma(shape, scale) via Marsaglia-Tsang for shape >= 1 (all our shapes
/// are), reproducible on top of the project Rng.
double gamma_draw(support::Rng& rng, double shape, double scale) {
  EA_EXPECTS(shape >= 1.0);
  EA_EXPECTS(scale > 0.0);
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    const double x = support::normal01(rng);
    const double v1 = 1.0 + c * x;
    if (v1 <= 0.0) continue;
    const double v = v1 * v1 * v1;
    const double u = rng.uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

/// Relative arrival intensity over the day (mean ~1).
double daily_cycle(const LublinFeitelsonConfig& c, double t) {
  const double hour = std::fmod(t, sim::kDay) / sim::kHour;
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  // Trough at trough_hour, broad daytime plateau via a second harmonic.
  const double main = -std::cos(kTwoPi * (hour - c.trough_hour) / 24.0);
  const double second = 0.25 * std::cos(kTwoPi * (hour - c.trough_hour) / 12.0);
  return std::max(1.0 + c.cycle_amplitude * (main + second), 0.0);
}

int draw_procs(support::Rng& rng, const LublinFeitelsonConfig& c) {
  if (rng.uniform01() < c.p_serial || c.max_procs <= 1) return 1;
  const int max_log2 =
      std::max(1, static_cast<int>(std::log2(static_cast<double>(c.max_procs))));
  if (rng.uniform01() < c.p_pow2) {
    // Power of two, uniform over the exponents 1..log2(max).
    const int exponent = 1 + static_cast<int>(rng.uniform_int(
                                 0, static_cast<std::uint64_t>(max_log2 - 1)));
    return std::min(1 << exponent, c.max_procs);
  }
  return 2 + static_cast<int>(rng.uniform_int(
                 0, static_cast<std::uint64_t>(c.max_procs - 2)));
}

}  // namespace

Workload generate_lublin_feitelson(const LublinFeitelsonConfig& c) {
  EA_EXPECTS(c.span_seconds > 0);
  EA_EXPECTS(c.mean_jobs_per_hour > 0);
  EA_EXPECTS(c.max_procs >= 1);

  support::Rng rng{c.seed};
  Workload jobs;

  const double rate_per_s = c.mean_jobs_per_hour / sim::kHour;
  const double max_intensity = 1.0 + 1.25 * c.cycle_amplitude;

  double t = 0;
  while (true) {
    // Thinned non-homogeneous Poisson arrivals.
    t += support::exponential(rng, rate_per_s * max_intensity);
    if (t >= c.span_seconds) break;
    if (rng.uniform01() > daily_cycle(c, t) / max_intensity) continue;

    Job job;
    job.id = static_cast<std::uint32_t>(jobs.size());
    job.submit = t;

    const int procs = draw_procs(rng, c);
    job.cpu_pct = 100.0 * procs;
    job.mem_mb = c.mem_per_proc_mb * procs;

    const double p_long =
        c.p_long_base +
        c.p_long_slope * static_cast<double>(procs) / c.max_procs;
    const double runtime =
        rng.uniform01() < p_long
            ? gamma_draw(rng, c.shape_long, c.scale_long)
            : gamma_draw(rng, c.shape_short, c.scale_short);
    job.dedicated_seconds =
        std::clamp(runtime, c.min_runtime_s, c.max_runtime_s);

    job.deadline_factor =
        rng.uniform(c.deadline_factor_lo, c.deadline_factor_hi);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace easched::workload
