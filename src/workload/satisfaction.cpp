#include "workload/satisfaction.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace easched::workload {

double satisfaction(double exec_seconds, double deadline_seconds) {
  EA_EXPECTS(deadline_seconds > 0);
  EA_EXPECTS(exec_seconds >= 0);
  if (exec_seconds < deadline_seconds) return 100.0;
  const double overrun = (exec_seconds - deadline_seconds) / deadline_seconds;
  return 100.0 * std::max(1.0 - overrun, 0.0);
}

double delay_pct(double exec_seconds, double dedicated_seconds) {
  EA_EXPECTS(dedicated_seconds > 0);
  EA_EXPECTS(exec_seconds >= 0);
  return std::max(0.0,
                  100.0 * (exec_seconds - dedicated_seconds) /
                      dedicated_seconds);
}

}  // namespace easched::workload
