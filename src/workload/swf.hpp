// Standard Workload Format (SWF) trace I/O.
//
// The paper drives its evaluation with "slightly modified real Grid traces"
// from the Grid Workloads Archive (Grid5000, week of 2007-10-01). The
// archive distributes traces in SWF; this reader lets a user who has the
// real file reproduce the paper on it, and the writer dumps our synthetic
// traces in the same format so they can be inspected with standard tools.
//
// SWF is line-oriented: comment lines start with ';', data lines hold 18
// whitespace-separated fields. We consume the fields the simulator needs:
//   1 job id, 2 submit time [s], 4 run time [s], 5 allocated processors,
//   8 requested processors, 10 requested memory [KB/proc].
#pragma once

#include <iosfwd>
#include <string>

#include "support/rng.hpp"
#include "workload/job.hpp"

namespace easched::workload {

/// Options controlling the SWF -> Job mapping.
struct SwfOptions {
  double default_mem_mb = 512;    ///< used when field 10 is absent (-1)
  double max_cpu_pct = 400;       ///< clamp: one VM fits one 4-core host
  double min_runtime_s = 30;      ///< drop sub-30 s jobs (noise in traces)
  double deadline_factor_lo = 1.2;  ///< per paper section V
  double deadline_factor_hi = 2.0;
  std::uint64_t deadline_seed = 42;  ///< factors are drawn deterministically
};

/// Parses an SWF stream. Jobs with non-positive runtime or submit time are
/// skipped (cancelled entries in archive traces). Submit times are shifted
/// so the first job arrives at t = 0. Throws std::runtime_error on malformed
/// data lines.
Workload read_swf(std::istream& in, const SwfOptions& options = {});

/// Convenience: opens and parses a file. Throws std::runtime_error when the
/// file cannot be opened.
Workload read_swf_file(const std::string& path,
                       const SwfOptions& options = {});

/// Writes a workload as SWF (fields we do not model are emitted as -1).
void write_swf(std::ostream& out, const Workload& jobs);

}  // namespace easched::workload
