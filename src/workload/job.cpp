#include "workload/job.hpp"

#include <algorithm>
#include <cstdio>

namespace easched::workload {

WorkloadStats compute_stats(const Workload& jobs) {
  WorkloadStats s;
  s.jobs = jobs.size();
  if (jobs.empty()) return s;

  sim::SimTime first = jobs.front().submit;
  sim::SimTime last = jobs.front().submit;
  // Sweep-line over (start, +cores) / (end, -cores) events for the peak.
  std::vector<std::pair<sim::SimTime, double>> edges;
  edges.reserve(jobs.size() * 2);
  for (const auto& j : jobs) {
    const double cores = j.cpu_pct / 100.0;
    s.core_hours += cores * j.dedicated_seconds / sim::kHour;
    s.mean_runtime_s += j.dedicated_seconds;
    s.max_runtime_s = std::max(s.max_runtime_s, j.dedicated_seconds);
    s.mean_cpu_pct += j.cpu_pct;
    first = std::min(first, j.submit);
    last = std::max(last, j.submit);
    edges.emplace_back(j.submit, cores);
    edges.emplace_back(j.submit + j.dedicated_seconds, -cores);
  }
  std::sort(edges.begin(), edges.end());
  double level = 0;
  for (const auto& [t, d] : edges) {
    level += d;
    s.peak_concurrent_cores = std::max(s.peak_concurrent_cores, level);
  }
  const double n = static_cast<double>(jobs.size());
  s.mean_runtime_s /= n;
  s.mean_cpu_pct /= n;
  s.span_seconds = last - first;
  return s;
}

std::string describe(const WorkloadStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%zu jobs, %.0f core-hours, mean runtime %.0f s, mean CPU "
                "%.0f%%, peak %.1f cores, span %.1f h",
                s.jobs, s.core_hours, s.mean_runtime_s, s.mean_cpu_pct,
                s.peak_concurrent_cores, s.span_seconds / sim::kHour);
  return buf;
}

}  // namespace easched::workload
