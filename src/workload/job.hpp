// The unit of work: an HPC job, encapsulated 1:1 in a VM (section I of the
// paper: "encapsulating jobs on virtual machines").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace easched::workload {

/// Hardware architecture tag used by the Preq (hardware requirement)
/// penalty. The evaluation datacenter is homogeneous in architecture, but
/// the policy supports mixed fleets (tests exercise this).
enum class Arch : std::uint8_t { kX86_64, kPpc64, kArm64 };

/// Software capability flags a host may offer and a job may require
/// (hypervisor flavour etc.), also consumed by Preq.
enum SoftwareFlags : std::uint32_t {
  kSwNone = 0,
  kSwXen = 1u << 0,
  kSwKvm = 1u << 1,
  kSwGpuRuntime = 1u << 2,
  kSwLargePages = 1u << 3,
};

/// One HPC job as read from a trace or synthesised.
struct Job {
  std::uint32_t id = 0;
  sim::SimTime submit = 0;       ///< arrival time [s]
  double dedicated_seconds = 0;  ///< runtime on a dedicated machine [s]
  double cpu_pct = 100;          ///< required CPU [% of one core; 400 = 4 cores]
  double mem_mb = 512;           ///< required memory [MB]
  double deadline_factor = 1.5;  ///< deadline = factor * dedicated_seconds
  Arch arch = Arch::kX86_64;
  std::uint32_t software = kSwXen;  ///< required SoftwareFlags
  double fault_tolerance = 0;    ///< Ftol in [0,1] for the Pfault penalty
  std::uint32_t weight = 256;    ///< Xen credit-scheduler weight

  /// Agreed deadline, relative to submission.
  [[nodiscard]] double deadline_seconds() const {
    return deadline_factor * dedicated_seconds;
  }
};

/// A workload is simply the arrival-ordered job list.
using Workload = std::vector<Job>;

/// Aggregate statistics used to sanity-check synthetic traces against the
/// published characteristics of the Grid5000 week.
struct WorkloadStats {
  std::size_t jobs = 0;
  double core_hours = 0;        ///< sum of cpu_pct/100 * dedicated/3600
  double mean_runtime_s = 0;
  double max_runtime_s = 0;
  double mean_cpu_pct = 0;
  double span_seconds = 0;      ///< last submit - first submit
  double peak_concurrent_cores = 0;  ///< max over time of dedicated demand
};

/// Computes the aggregate statistics of a workload. The peak-concurrency
/// figure assumes every job ran exactly its dedicated time from submission
/// (a lower bound on real concurrency, adequate for calibration).
WorkloadStats compute_stats(const Workload& jobs);

/// Human-readable one-line summary of the stats.
std::string describe(const WorkloadStats& stats);

}  // namespace easched::workload
