// Lublin-Feitelson-style parallel workload model.
//
// A second, independently grounded workload source next to the Grid-like
// generator: Lublin & Feitelson ("The workload on parallel supercomputers:
// modeling the characteristics of rigid jobs", JPDC 2003) is the standard
// statistical model of the traces collected in the Parallel Workloads
// Archive — the same archive family the paper's Grid5000 trace comes from.
// We implement its structural ingredients in simplified form:
//   * job size: with probability p_serial the job is serial; otherwise its
//     processor count is 2^U with U uniform over [1, log2(max)] biased
//     toward powers of two (the hallmark of rigid-job traces);
//   * runtime: hyper-Gamma — a mixture of two Gamma distributions, the
//     second (long) component chosen with a probability that grows with
//     the job's size;
//   * arrivals: non-homogeneous Poisson with the model's daily cycle
//     (quiet 4 a.m. trough, broad daytime plateau).
// Exact constants of the published model target MPP machines of the 90s;
// the defaults here are scaled so a week fills the paper's datacenter like
// the Grid5000 week does, and every constant is overridable.
#pragma once

#include <cstdint>

#include "workload/job.hpp"

namespace easched::workload {

struct LublinFeitelsonConfig {
  std::uint64_t seed = 1994;
  double span_seconds = 7 * 24 * 3600.0;
  double mean_jobs_per_hour = 10.0;

  // Size model (processor counts are capped to the 4-core hosts by the
  // caller or the cpu_cap below).
  double p_serial = 0.24;        ///< fraction of serial jobs
  double p_pow2 = 0.75;          ///< parallel jobs landing on a power of 2
  int max_procs = 4;             ///< cap (one VM per host in our setting)

  // Hyper-Gamma runtime: Gamma(shape_short, scale_short) or
  // Gamma(shape_long, scale_long); the long branch is taken with
  // probability p_long_base + p_long_slope * (procs / max_procs).
  double shape_short = 2.0;
  double scale_short = 300.0;    ///< mean 600 s
  double shape_long = 2.2;
  double scale_long = 4200.0;    ///< mean ~9240 s
  double p_long_base = 0.25;
  double p_long_slope = 0.25;
  double min_runtime_s = 60.0;
  double max_runtime_s = 48 * 3600.0;

  // Daily arrival cycle (the model's "gamma-distributed daily cycle" is
  // approximated with the classic two-term cosine fit).
  double cycle_amplitude = 0.65;
  double trough_hour = 4.0;

  // Memory and deadlines (deadline factor per the paper's section V).
  double mem_per_proc_mb = 384;
  double deadline_factor_lo = 1.2;
  double deadline_factor_hi = 2.0;
};

/// Generates the job list, sorted by submission, ids dense from 0.
Workload generate_lublin_feitelson(const LublinFeitelsonConfig& config);

}  // namespace easched::workload
