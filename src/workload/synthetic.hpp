// Synthetic Grid-like workload generator.
//
// The paper evaluates on one week of the Grid5000 trace (starting Monday
// 2007-10-01). That file is not redistributable here, so this generator
// synthesises a trace with the aggregate properties the results depend on
// (see DESIGN.md, substitutions):
//   * total demand ~6000 core-hours over a week on the 100-node datacenter
//     (Tables II-IV report CPU ~= 6055 h for the consolidating policies);
//   * diurnal arrival intensity (day/night factor ~3x) with a weekend dip;
//   * bursty submissions: grid users submit bags of tasks, so arrivals come
//     in Poisson-sized batches — the bursts are what separates the policies
//     on SLA fulfilment;
//   * heavy-tailed (log-normal) runtimes, minutes to a day;
//   * mostly single-core VMs with a tail of 2- and 4-core jobs;
//   * per-job deadline factor uniform in [1.2, 2.0] (section V).
#pragma once

#include <cstdint>

#include "workload/job.hpp"

namespace easched::workload {

/// Knobs of the synthetic generator. Defaults reproduce the evaluation
/// workload; tests and benches override selectively.
struct SyntheticConfig {
  std::uint64_t seed = 2007'10'01;
  double span_seconds = 7 * 24 * 3600.0;  ///< submission window
  double mean_jobs_per_hour = 11.2;       ///< average arrival intensity

  // Diurnal modulation: intensity is scaled by
  //   1 + diurnal_amplitude * sin(2*pi*(t - phase)/day)
  // and by weekend_factor on days 5-6 (trace starts on a Monday).
  double diurnal_amplitude = 0.7;
  double diurnal_phase_hours = 8.0;  ///< peak mid-afternoon
  double weekend_factor = 0.55;

  // Burstiness: each arrival event is a batch (a "bag of tasks");
  // batch size is 1 + Poisson(batch_mean - 1).
  double batch_mean = 6.0;

  // Runtime: lognormal(log(median_runtime_s), runtime_sigma), clamped.
  double median_runtime_s = 3600.0;
  double runtime_sigma = 1.25;
  double min_runtime_s = 60.0;
  double max_runtime_s = 24 * 3600.0;

  // CPU demand mix (weights, normalised internally).
  double w_half_core = 0.10;  ///< 50 %
  double w_one_core = 0.40;   ///< 100 %
  double w_two_core = 0.25;   ///< 200 %
  double w_four_core = 0.25;  ///< 400 %

  // Memory demand: uniform in [min, max] MB, scaled by cores/2 + 0.5 so
  // bigger jobs want more memory.
  double mem_min_mb = 256;
  double mem_max_mb = 1024;

  // Deadline factor range (paper section V).
  double deadline_factor_lo = 1.2;
  double deadline_factor_hi = 2.0;

  // Fault tolerance Ftol of jobs (0 everywhere in the paper's evaluation;
  // the reliability extension draws uniform in [0, max]).
  double max_fault_tolerance = 0.0;
};

/// Generates the job list, sorted by submission time, ids dense from 0.
Workload generate(const SyntheticConfig& config);

/// The exact workload used by the paper-reproduction benches: `generate`
/// with defaults, which lands within a few percent of 6055 core-hours.
Workload evaluation_workload(std::uint64_t seed = SyntheticConfig{}.seed);

}  // namespace easched::workload
