#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace easched::workload {

namespace {

/// Relative arrival intensity at time t (mean 1 over a weekday).
double intensity(const SyntheticConfig& c, double t) {
  const double day_frac = std::fmod(t, sim::kDay) / sim::kDay;
  const double phase = c.diurnal_phase_hours / 24.0;
  double f = 1.0 + c.diurnal_amplitude *
                       std::sin(2.0 * 3.14159265358979323846 *
                                (day_frac - phase));
  const int day = static_cast<int>(t / sim::kDay);
  if (day % 7 >= 5) f *= c.weekend_factor;
  return std::max(f, 0.0);
}

}  // namespace

Workload generate(const SyntheticConfig& c) {
  EA_EXPECTS(c.span_seconds > 0);
  EA_EXPECTS(c.mean_jobs_per_hour > 0);
  EA_EXPECTS(c.batch_mean >= 1.0);
  EA_EXPECTS(c.deadline_factor_lo <= c.deadline_factor_hi);

  support::Rng rng{c.seed};
  Workload jobs;

  // Thinned non-homogeneous Poisson process over batch events. The batch
  // event rate is the job rate divided by the mean batch size.
  const double batch_rate_per_s =
      c.mean_jobs_per_hour / sim::kHour / c.batch_mean;
  // Upper bound of the intensity for thinning.
  const double max_intensity = 1.0 + c.diurnal_amplitude;

  double t = 0;
  while (true) {
    t += support::exponential(rng, batch_rate_per_s * max_intensity);
    if (t >= c.span_seconds) break;
    if (rng.uniform01() > intensity(c, t) / max_intensity) continue;

    const unsigned batch =
        1 + support::poisson(rng, std::max(c.batch_mean - 1.0, 0.0));
    for (unsigned b = 0; b < batch; ++b) {
      Job job;
      job.id = static_cast<std::uint32_t>(jobs.size());
      // Jobs of one batch arrive within a couple of minutes of each other.
      job.submit = std::min(t + rng.uniform(0.0, 120.0), c.span_seconds);

      const double weights[4] = {c.w_half_core, c.w_one_core, c.w_two_core,
                                 c.w_four_core};
      static constexpr double kCpu[4] = {50, 100, 200, 400};
      job.cpu_pct = kCpu[support::weighted_choice(rng, weights, 4)];

      job.dedicated_seconds = std::clamp(
          support::lognormal(rng, std::log(c.median_runtime_s),
                             c.runtime_sigma),
          c.min_runtime_s, c.max_runtime_s);

      const double mem_scale = job.cpu_pct / 100.0 / 2.0 + 0.5;
      job.mem_mb = rng.uniform(c.mem_min_mb, c.mem_max_mb) * mem_scale;

      job.deadline_factor =
          rng.uniform(c.deadline_factor_lo, c.deadline_factor_hi);
      job.fault_tolerance =
          c.max_fault_tolerance > 0 ? rng.uniform(0.0, c.max_fault_tolerance)
                                    : 0.0;
      jobs.push_back(job);
    }
  }

  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.submit < b.submit;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i)
    jobs[i].id = static_cast<std::uint32_t>(i);
  return jobs;
}

Workload evaluation_workload(std::uint64_t seed) {
  SyntheticConfig c;
  c.seed = seed;
  return generate(c);
}

}  // namespace easched::workload
