#include "sim/simulator.hpp"

#include <utility>

#include "support/contracts.hpp"

namespace easched::sim {

EventId Simulator::at(SimTime t, std::function<void()> fn) {
  EA_EXPECTS(t >= now_);
  return queue_.push(t, std::move(fn));
}

EventId Simulator::after(SimTime dt, std::function<void()> fn) {
  EA_EXPECTS(dt >= 0);
  return queue_.push(now_ + dt, std::move(fn));
}

Simulator::PeriodicHandle Simulator::every(SimTime period,
                                           std::function<void()> fn) {
  EA_EXPECTS(period > 0);
  const std::uint64_t key = next_periodic_key_++;
  // The re-arming closure owns the task; it looks itself up in
  // periodic_next_ so cancel_periodic() can drop the pending occurrence.
  auto arm = std::make_shared<std::function<void()>>();
  *arm = [this, key, period, fn = std::move(fn), arm]() mutable {
    const auto it = periodic_next_.find(key);
    if (it == periodic_next_.end()) return;  // cancelled since queued
    it->second = queue_.push(now_ + period, *arm);
    fn();
  };
  periodic_next_[key] = queue_.push(now_ + period, *arm);
  return PeriodicHandle{key};
}

void Simulator::cancel_periodic(PeriodicHandle handle) {
  const auto it = periodic_next_.find(handle.key);
  if (it == periodic_next_.end()) return;
  queue_.cancel(it->second);
  periodic_next_.erase(it);
}

void Simulator::step() {
  auto fired = queue_.pop();
  EA_ASSERT(fired.time >= now_);
  now_ = fired.time;
  ++dispatched_;
  fired.action();
}

void Simulator::run() {
  stopping_ = false;
  while (!stopping_ && !queue_.empty()) step();
}

void Simulator::run_until(SimTime horizon) {
  EA_EXPECTS(horizon >= now_);
  stopping_ = false;
  while (!stopping_ && !queue_.empty() && queue_.next_time() <= horizon) {
    step();
  }
  // When stopped early the clock stays at the stop point; only a run that
  // exhausted the horizon advances to it.
  if (!stopping_ && now_ < horizon) now_ = horizon;
}

}  // namespace easched::sim
