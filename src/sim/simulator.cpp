#include "sim/simulator.hpp"

#include <utility>

#include "support/contracts.hpp"

namespace easched::sim {

Simulator::PeriodicHandle Simulator::every(SimTime period,
                                           std::function<void()> fn) {
  EA_EXPECTS(period > 0);
  const std::uint64_t key = next_periodic_key_++;
  auto task = std::make_shared<Periodic>();
  task->period = period;
  task->fn = std::move(fn);
  // The queued closure is only (this, key): it fits the event pool's inline
  // buffer, so periodic re-arming never allocates.
  task->next = queue_.push(now_ + period, [this, key] { fire_periodic(key); });
  periodics_.emplace(key, std::move(task));
  return PeriodicHandle{key};
}

void Simulator::fire_periodic(std::uint64_t key) {
  const auto it = periodics_.find(key);
  if (it == periodics_.end()) return;  // cancelled since queued
  // Local copy keeps the task alive while its body runs, even if the body
  // cancels the registration. Re-arm before calling so the body can cancel
  // the next occurrence too.
  const std::shared_ptr<Periodic> task = it->second;
  task->next =
      queue_.push(now_ + task->period, [this, key] { fire_periodic(key); });
  task->fn();
}

void Simulator::cancel_periodic(PeriodicHandle handle) {
  const auto it = periodics_.find(handle.key);
  if (it == periodics_.end()) return;
  queue_.cancel(it->second->next);
  periodics_.erase(it);
}

void Simulator::step() {
  auto fired = queue_.pop();
  EA_ASSERT(fired.time >= now_);
#if EASCHED_VALIDATE_ENABLED
  if (observer_ != nullptr) observer_->on_event_dispatched(fired.time);
#endif
  now_ = fired.time;
  ++dispatched_;
  fired.action();
}

void Simulator::run() {
  stopping_ = false;
  while (!stopping_ && !queue_.empty()) step();
}

void Simulator::run_until(SimTime horizon) {
  EA_EXPECTS(horizon >= now_);
  stopping_ = false;
  while (!stopping_ && !queue_.empty() && queue_.next_time() <= horizon) {
    step();
  }
  // When stopped early the clock stays at the stop point; only a run that
  // exhausted the horizon advances to it.
  if (!stopping_ && now_ < horizon) now_ = horizon;
}

}  // namespace easched::sim
