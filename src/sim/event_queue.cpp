#include "sim/event_queue.hpp"

#include <utility>

#include "support/contracts.hpp"

namespace easched::sim {

namespace {

/// EventId layout: high 32 bits = allocation-time generation (always odd),
/// low 32 bits = slot + 1 (so kNoEvent == 0 is never produced).
constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
  return (static_cast<EventId>(gen) << 32) |
         (static_cast<EventId>(slot) + 1);
}
constexpr std::uint32_t id_slot(EventId id) noexcept {
  return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
}
constexpr std::uint32_t id_gen(EventId id) noexcept {
  return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

EventId PooledEventQueue::push_impl(SimTime t, SmallFn fn) {
  EA_EXPECTS(static_cast<bool>(fn));
  std::uint32_t slot;
  if (free_head_ != kNpos) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;  // even -> odd: in use
  s.fn = std::move(fn);
  heap_.push_back(HeapEntry{t, next_seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(slot, s.gen);
}

void PooledEventQueue::free_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.gen;  // odd -> even: free; stale ids and heap entries now mismatch
  s.next_free = free_head_;
  free_head_ = slot;
}

void PooledEventQueue::cancel(EventId id) {
  if (id == kNoEvent) return;
  const std::uint32_t slot = id_slot(id);
  if (slot >= slots_.size()) return;
  if (slots_[slot].gen != id_gen(id)) return;  // fired, cancelled, or stale
  free_slot(slot);
  EA_ASSERT(live_ > 0);
  --live_;
  ++cancelled_total_;
  ++dead_in_heap_;
  if (heap_.size() >= kCompactMinHeap && dead_in_heap_ * 2 > heap_.size()) {
    compact();
  }
}

void PooledEventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void PooledEventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void PooledEventQueue::pop_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void PooledEventQueue::prune_top() {
  // The single invariant checkpoint of the lazy-cancel design: every
  // parked entry is either live or counted in dead_in_heap_.
  EA_ASSERT(heap_.size() == live_ + dead_in_heap_);
  while (!heap_.empty() && stale(heap_[0])) {
    pop_root();
    --dead_in_heap_;
  }
}

void PooledEventQueue::compact() {
  std::size_t kept = 0;
  for (const HeapEntry& e : heap_) {
    if (!stale(e)) heap_[kept++] = e;
  }
  heap_.resize(kept);
  dead_in_heap_ = 0;
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

SimTime PooledEventQueue::next_time() {
  EA_EXPECTS(!empty());
  // A cancel may have hit the current heap top since the last pop.
  prune_top();
  return heap_[0].time;
}

PooledEventQueue::Fired PooledEventQueue::pop() {
  EA_EXPECTS(!empty());
  prune_top();
  EA_ASSERT(!heap_.empty());
  const HeapEntry top = heap_[0];
  Fired fired{top.time, std::move(slots_[top.slot].fn)};
  free_slot(top.slot);
  pop_root();
  EA_ASSERT(live_ > 0);
  --live_;
  return fired;
}

}  // namespace easched::sim
