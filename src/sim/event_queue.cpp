#include "sim/event_queue.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace easched::sim {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  EA_EXPECTS(fn != nullptr);
  auto entry = std::make_unique<Entry>();
  entry->time = t;
  entry->seq = next_seq_++;
  entry->id = next_id_++;
  entry->fn = std::move(fn);
  const EventId id = entry->id;
  index_.emplace(id, entry.get());
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kNoEvent) return;
  const auto it = index_.find(id);
  if (it == index_.end()) return;  // already fired or cancelled
  it->second->fn = nullptr;
  index_.erase(it);
  EA_ASSERT(live_ > 0);
  --live_;
}

void EventQueue::prune_top() {
  while (!heap_.empty() && heap_.front()->fn == nullptr) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  EA_EXPECTS(!empty());
  // A cancel may have hit the current heap top since the last pop.
  prune_top();
  return heap_.front()->time;
}

EventQueue::Fired EventQueue::pop() {
  EA_EXPECTS(!empty());
  prune_top();
  EA_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  auto entry = std::move(heap_.back());
  heap_.pop_back();
  index_.erase(entry->id);
  EA_ASSERT(live_ > 0);
  --live_;
  Fired fired{entry->time, std::move(entry->fn)};
  prune_top();
  return fired;
}

}  // namespace easched::sim
