// The discrete-event simulator core.
//
// This replaces the OMNeT++ framework the paper built on: a clock plus an
// event queue plus helpers for relative scheduling and periodic tasks.
// Everything in the datacenter model is driven by callbacks scheduled here;
// there is no time-stepping loop, so simulating a week of wall time costs
// only as many steps as there are state changes (the paper's "time scale can
// be accelerated" property falls out of the event-driven design).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "support/contracts.hpp"

#ifndef EASCHED_VALIDATE_ENABLED
#define EASCHED_VALIDATE_ENABLED 1
#endif

namespace easched::sim {

/// Hook interface for run-time validation (see validate/). The simulator
/// notifies the attached observer on every dispatched event; with
/// EASCHED_VALIDATE=OFF the call site in step() is compiled out entirely,
/// with it ON but no observer attached the cost is one pointer test.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  virtual void on_event_dispatched(SimTime t) = 0;
};

class Simulator {
 public:
  /// Current simulation time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t`. Requires t >= now(). Accepts any
  /// void() callable; small captures are stored inline in the event pool.
  template <typename F>
  EventId at(SimTime t, F&& fn) {
    EA_EXPECTS(t >= now_);
    return queue_.push(t, std::forward<F>(fn));
  }

  /// Schedules `fn` after a delay of `dt` seconds. Requires dt >= 0.
  template <typename F>
  EventId after(SimTime dt, F&& fn) {
    EA_EXPECTS(dt >= 0);
    return queue_.push(now_ + dt, std::forward<F>(fn));
  }

  /// Schedules `fn` every `period` seconds, first firing at now() + period,
  /// until the returned handle is cancelled via `cancel_periodic()` or the
  /// run ends. Requires period > 0.
  struct PeriodicHandle {
    std::uint64_t key = 0;
  };
  PeriodicHandle every(SimTime period, std::function<void()> fn);
  void cancel_periodic(PeriodicHandle handle);

  /// Cancels a pending one-shot event (no-op if already fired/cancelled).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs until the queue drains or simulation time would exceed `horizon`;
  /// on return now() == horizon if events remained past it. Events exactly
  /// at the horizon still fire.
  void run_until(SimTime horizon);

  /// Requests the current run() / run_until() to return after the in-flight
  /// event completes.
  void stop() noexcept { stopping_ = true; }

  /// Number of events dispatched so far (for tests and perf reporting).
  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_;
  }

  /// Number of successful event cancellations so far.
  [[nodiscard]] std::uint64_t cancelled() const noexcept {
    return queue_.cancelled();
  }

  /// Live events still pending.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Attaches (or detaches, with nullptr) the validation observer. Not
  /// owned; the caller keeps it alive for the duration of the run.
  void set_observer(SimObserver* observer) noexcept { observer_ = observer; }

 private:
  /// A registered periodic task. Held by shared_ptr so the task body stays
  /// alive while it runs even if the body cancels its own registration.
  struct Periodic {
    SimTime period = 0;
    std::function<void()> fn;
    EventId next = kNoEvent;  ///< pending occurrence, for cancel_periodic
  };

  void step();
  void fire_periodic(std::uint64_t key);

  EventQueue queue_;
  SimObserver* observer_ = nullptr;
  SimTime now_ = 0;
  bool stopping_ = false;
  std::uint64_t dispatched_ = 0;
  std::uint64_t next_periodic_key_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Periodic>> periodics_;
};

}  // namespace easched::sim
