// Simulation time: seconds since the start of the run, as a double.
//
// A week-long run spans 604800 s; doubles hold that with sub-microsecond
// resolution, and the event queue breaks exact ties deterministically with a
// sequence number, so floating-point time is safe here.
#pragma once

namespace easched::sim {

using SimTime = double;

inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 24.0 * kHour;
inline constexpr SimTime kWeek = 7.0 * kDay;

}  // namespace easched::sim
