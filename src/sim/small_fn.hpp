// Small-buffer move-only callable for event actions.
//
// The kernel's closures are almost always tiny — `this` plus a couple of
// ids and a timestamp — yet `std::function` heap-allocates many of them
// and drags in RTTI it never uses. `SmallFn` stores any callable whose
// captures fit `kInlineBytes` directly inside the event-pool slot (no
// allocation on the push/pop hot path) and falls back to the heap only for
// oversized closures (e.g. the per-job arrival lambda that carries a whole
// `workload::Job` by value — cold, once per job).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace easched::sim {

class SmallFn {
 public:
  /// Sized to hold every hot-path kernel closure (`this` + ids + a time)
  /// with headroom; measured against the largest datacenter callback.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst from src, then destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace easched::sim
