// The pre-pool event queue, kept as an executable specification.
//
// This is the seed implementation the pooled queue replaced: one
// heap-allocated `Entry` per event carrying a `std::function` action, a
// `std::push_heap`-managed binary heap of owning pointers, and an
// `unordered_map` id index. It is deliberately naive — its pop order
// (time, then push sequence; cancelled entries skipped) *defines* the
// kernel's ordering semantics, and `tests/test_event_queue_differential.cpp`
// drives it and `PooledEventQueue` with identical scripts to prove the
// pooled rewrite changes nothing observable.
//
// It also remains buildable as the simulator's queue
// (`-DEASCHED_SIM_REFERENCE_QUEUE=ON`, see event_queue.hpp) so
// `scripts/refresh_bench.sh` can regenerate the pre-PR whole-run baseline
// in BENCH_sim.json, and `bench_event_queue --smoke` (ctest:
// `bench_sim_smoke`) can fail if the pooled queue ever regresses below it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "support/contracts.hpp"

namespace easched::sim {

class ReferenceEventQueue {
 public:
  template <typename F>
  std::uint64_t push(SimTime t, F&& fn) {
    auto entry = std::make_unique<Entry>();
    entry->time = t;
    entry->seq = next_seq_++;
    entry->id = next_id_++;
    entry->fn = std::forward<F>(fn);
    EA_EXPECTS(entry->fn != nullptr);
    const std::uint64_t id = entry->id;
    index_.emplace(id, entry.get());
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return id;
  }

  void cancel(std::uint64_t id) {
    if (id == 0) return;  // kNoEvent
    const auto it = index_.find(id);
    if (it == index_.end()) return;  // already fired or cancelled
    it->second->fn = nullptr;
    index_.erase(it);
    EA_ASSERT(live_ > 0);
    --live_;
    ++cancelled_;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }

  [[nodiscard]] SimTime next_time() {
    EA_EXPECTS(!empty());
    prune_top();
    return heap_.front()->time;
  }

  struct Fired {
    SimTime time;
    std::function<void()> action;
  };

  Fired pop() {
    EA_EXPECTS(!empty());
    prune_top();
    EA_ASSERT(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    auto entry = std::move(heap_.back());
    heap_.pop_back();
    index_.erase(entry->id);
    EA_ASSERT(live_ > 0);
    --live_;
    Fired fired{entry->time, std::move(entry->fn)};
    prune_top();
    return fired;
  }

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    std::function<void()> fn;  // empty once cancelled
  };
  struct Later {
    bool operator()(const std::unique_ptr<Entry>& a,
                    const std::unique_ptr<Entry>& b) const noexcept {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  void prune_top() {
    while (!heap_.empty() && heap_.front()->fn == nullptr) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  std::vector<std::unique_ptr<Entry>> heap_;
  std::unordered_map<std::uint64_t, Entry*> index_;  // live events only
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;
};

}  // namespace easched::sim
