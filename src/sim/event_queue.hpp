// Pending-event set of the discrete-event kernel.
//
// `PooledEventQueue` is a zero-allocation-on-the-hot-path event set:
//
//   * Entries live in a slab of fixed-size slots recycled through a free
//     list; actions are stored in `SmallFn` small-buffer callables, so the
//     common push (closure of `this` + a couple of ids) touches no
//     allocator at all.
//   * `EventId` packs (generation << 32 | slot + 1). Cancellation resolves
//     the slot with two array reads and a generation compare — no hashing,
//     no map — and a recycled slot's bumped generation makes every stale
//     handle inert (enforced by the stale-handle test).
//   * The pending set is a 4-ary implicit heap ordered by (time, sequence):
//     shallower than a binary heap and with all four children in one cache
//     line of 24-byte entries. The sequence number makes simultaneous
//     events pop in scheduling order — the reproducibility contract.
//   * Cancellation is lazy (the heap entry stays parked until it surfaces),
//     which matters because the simulator cancels and reschedules a
//     VM-finish event on every CPU reallocation. When parked-dead entries
//     exceed half the heap it is compacted in place, so lazy cancellation
//     cannot grow the heap unboundedly.
//
// Pop order is exactly (time, seq) — identical to `ReferenceEventQueue`
// (the pre-pool seed implementation, kept as the executable spec);
// `tests/test_event_queue_differential.cpp` holds the two to the same pop
// sequence under randomized push/cancel/reschedule scripts.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

#ifdef EASCHED_SIM_REFERENCE_QUEUE
#include "sim/reference_event_queue.hpp"
#endif

namespace easched::sim {

/// Identifies a scheduled event for cancellation. Value 0 is reserved for
/// "no event".
using EventId = std::uint64_t;

inline constexpr EventId kNoEvent = 0;

class PooledEventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Accepts any void() callable;
  /// captures up to SmallFn::kInlineBytes are stored in the pool slot
  /// without allocating.
  template <typename F>
  EventId push(SimTime t, F&& fn) {
    return push_impl(t, SmallFn(std::forward<F>(fn)));
  }

  /// Cancels a previously pushed event. Cancelling an already-fired,
  /// already-cancelled or stale (recycled-slot) id is a no-op; kNoEvent is
  /// ignored.
  void cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Cumulative number of successful cancellations.
  [[nodiscard]] std::uint64_t cancelled() const noexcept {
    return cancelled_total_;
  }

  /// Time of the earliest live event. Requires !empty(). Non-const because
  /// it prunes cancelled entries off the heap top.
  [[nodiscard]] SimTime next_time();

  /// Pops and returns the earliest live event's action together with its
  /// timestamp. Requires !empty().
  struct Fired {
    SimTime time;
    SmallFn action;
  };
  Fired pop();

 private:
  static constexpr std::uint32_t kNpos = ~std::uint32_t{0};
  /// Compaction kicks in only past this heap size: tiny queues never pay
  /// for it and the fraction test below is meaningful.
  static constexpr std::size_t kCompactMinHeap = 64;

  /// One pool slot. `gen` is odd while the slot holds a live event and
  /// even while it sits on the free list; it increments on every
  /// transition, so an id (which embeds the odd allocation-time gen) can
  /// never match a freed or recycled slot.
  struct Slot {
    SmallFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNpos;
  };

  /// 24-byte heap entry: ordering keys plus the slot handle. `gen` copies
  /// the slot's allocation-time generation so parked entries of cancelled
  /// (and possibly recycled) slots are recognisably stale.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  [[nodiscard]] bool stale(const HeapEntry& e) const noexcept {
    return slots_[e.slot].gen != e.gen;
  }

  EventId push_impl(SimTime t, SmallFn fn);
  void free_slot(std::uint32_t slot) noexcept;
  /// Removes the heap root (sift-down of the last entry).
  void pop_root();
  /// Drops stale entries off the heap top; the single home of lazy-cancel
  /// pruning (both next_time() and pop() route through it).
  void prune_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Rebuilds the heap without its stale entries (O(n) Floyd heapify).
  void compact();

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNpos;
  std::uint64_t next_seq_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::size_t live_ = 0;          ///< live events (== in-use slots)
  std::size_t dead_in_heap_ = 0;  ///< cancelled entries still parked
};

#ifdef EASCHED_SIM_REFERENCE_QUEUE
// Baseline-measurement builds: the simulator runs on the seed queue so
// whole-run before/after numbers come from the same source tree.
using EventQueue = ReferenceEventQueue;
#else
using EventQueue = PooledEventQueue;
#endif

}  // namespace easched::sim
