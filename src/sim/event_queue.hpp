// Pending-event set of the discrete-event kernel.
//
// A binary min-heap ordered by (time, sequence). The sequence number makes
// the pop order of simultaneous events equal to their scheduling order,
// which is what makes whole runs reproducible. Cancellation is lazy: a
// cancelled entry stays in the heap with its action cleared and is discarded
// when popped — O(1) cancel, which matters because the simulator cancels and
// reschedules a VM-finish event on every CPU reallocation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace easched::sim {

/// Identifies a scheduled event for cancellation. Value 0 is reserved for
/// "no event".
using EventId = std::uint64_t;

inline constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`.
  EventId push(SimTime t, std::function<void()> fn);

  /// Cancels a previously pushed event. Cancelling an already-fired or
  /// already-cancelled event is a no-op; kNoEvent is ignored.
  void cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty(). Non-const because
  /// it prunes cancelled entries off the heap top.
  [[nodiscard]] SimTime next_time();

  /// Pops and returns the earliest live event's action together with its
  /// timestamp. Requires !empty().
  struct Fired {
    SimTime time;
    std::function<void()> action;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventId id = kNoEvent;
    std::function<void()> fn;  // empty once cancelled
  };
  struct Later {
    bool operator()(const std::unique_ptr<Entry>& a,
                    const std::unique_ptr<Entry>& b) const noexcept {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  /// Drops cancelled entries from the heap top.
  void prune_top();

  std::vector<std::unique_ptr<Entry>> heap_;  // std::push/pop_heap managed
  std::unordered_map<EventId, Entry*> index_;  // live events only
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace easched::sim
