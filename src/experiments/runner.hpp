// One-call experiment runner: wire simulator + datacenter + driver + policy,
// run a workload to completion, return the table-row report.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datacenter/datacenter.hpp"
#include "faults/fault_plan.hpp"
#include "metrics/report.hpp"
#include "obs/obs.hpp"
#include "resilience/resilience.hpp"
#include "sched/driver.hpp"
#include "validate/invariant_checker.hpp"
#include "workload/job.hpp"

namespace easched::experiments {

/// Run-time invariant checking (see validate/). Enabled explicitly here or
/// via the EASCHED_VALIDATE environment variable (any non-empty value
/// other than "0"); a build with EASCHED_VALIDATE=OFF ignores both.
struct RunValidation {
  bool enabled = false;
  validate::CheckerConfig checker;
  /// Where to write the scenario repro bundle on the first violation;
  /// empty disables bundle writing.
  std::string repro_path;
};

struct RunConfig {
  datacenter::DatacenterConfig datacenter;
  sched::DriverConfig driver;
  std::string policy = "SB";

  /// Custom policy instance (overrides `policy` name when set). The runner
  /// takes ownership.
  std::unique_ptr<sched::Policy> policy_instance;

  /// Deterministic operation-fault injection (see faults/). When enabled
  /// the runner owns a FaultInjector for the run's duration and copies the
  /// plan's timeout/retry/quarantine knobs into the datacenter and driver
  /// configs. Parse from a CLI `--faults=` spec with parse_fault_plan().
  faults::FaultPlan faults;

  /// Resilience control plane (see resilience/): solver deadline watchdog
  /// with the degradation ladder, admission control, and per-host circuit
  /// breakers. Inert by default; parse from a CLI `--resilience=` spec with
  /// parse_resilience_spec(). A fault plan with breaker_threshold > 0 arms
  /// the breakers even when this is otherwise disabled. Ignored entirely in
  /// EASCHED_RESILIENCE=OFF builds.
  resilience::ResilienceConfig resilience;

  /// Hard simulation-time cap as a safety net against pathological stalls;
  /// runs normally end when the last job finishes. Zero disables the cap.
  sim::SimTime horizon_s = 0;

  /// Optional observability bundle (tracer / metrics registry / phase
  /// profiler; see obs/obs.hpp). Not owned; must outlive the run. The
  /// runner attaches it to the recorder, emits the run-begin event, and
  /// publishes the run counters into its registry at the end.
  obs::Observability* obs = nullptr;

  RunValidation validate;
};

struct RunResult {
  metrics::RunReport report;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_finished = 0;
  std::size_t jobs_shed = 0;  ///< arrivals rejected by admission control
  std::uint64_t events_dispatched = 0;
  std::uint64_t events_cancelled = 0;
  sim::SimTime end_time_s = 0;
  bool hit_horizon = false;

  /// Chronological fault-event trace (injections, aborts, quarantines…);
  /// empty unless the run had an injector. Bit-identical for identical
  /// (plan, workload, config) — the determinism contract.
  std::vector<std::string> fault_trace;
  std::uint64_t faults_injected = 0;

  /// Invariant-checker results (empty / zero when validation was off).
  std::vector<validate::Violation> violations;
  std::uint64_t invariant_checks = 0;
  /// Path of the repro bundle written on the first violation, if any.
  std::string repro_path;
};

/// Runs `jobs` under the configuration and returns the aggregated report.
/// The measurement window is [0, finish of last job].
RunResult run_experiment(const workload::Workload& jobs, RunConfig config);

}  // namespace easched::experiments
