#include "experiments/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "support/contracts.hpp"

namespace easched::experiments {

SweepRunner::SweepRunner(int threads) : threads_(std::max(1, threads)) {}

std::vector<RunResult> SweepRunner::run(std::vector<SweepTask> tasks) {
  for (const SweepTask& task : tasks) {
    EA_EXPECTS(task.jobs != nullptr);
    EA_EXPECTS(task.config != nullptr);
  }
  std::vector<RunResult> results(tasks.size());

  const auto execute = [&](std::size_t i) {
    results[i] = run_experiment(*tasks[i].jobs, tasks[i].config());
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads_), tasks.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) execute(i);
    return results;
  }

  // Dynamic claiming: each worker takes the next unclaimed index. Which
  // thread runs which task varies, but results are stored by index, so the
  // returned vector is independent of scheduling.
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        execute(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

int SweepRunner::env_threads() {
  const char* env = std::getenv("EASCHED_SWEEP_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long value = std::strtol(env, nullptr, 10);
  return static_cast<int>(std::clamp(value, 1L, 64L));
}

}  // namespace easched::experiments
