#include "experiments/runner.hpp"

#include <optional>

#include "experiments/setup.hpp"
#include "faults/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "support/contracts.hpp"

namespace easched::experiments {

RunResult run_experiment(const workload::Workload& jobs, RunConfig config) {
  EA_EXPECTS(!jobs.empty());

  sim::Simulator simulator;
  metrics::Recorder recorder(config.datacenter.hosts.size());
  recorder.obs = config.obs;

  std::optional<faults::FaultInjector> injector;
  if (config.faults.enabled) {
    injector.emplace(config.faults);
    config.datacenter.fault_injector = &*injector;
    // The plan is the single source of truth for the recovery knobs.
    config.datacenter.quarantine.failure_budget =
        config.faults.quarantine_budget;
    config.datacenter.quarantine.window_s = config.faults.quarantine_window_s;
    config.datacenter.quarantine.cooldown_s =
        config.faults.quarantine_cooldown_s;
    config.driver.retry.base_s = config.faults.retry_base_s;
    config.driver.retry.cap_s = config.faults.retry_cap_s;
    config.driver.retry.jitter = config.faults.retry_jitter;
  }

  datacenter::Datacenter dc(simulator, config.datacenter, recorder);

  std::unique_ptr<sched::Policy> policy =
      config.policy_instance ? std::move(config.policy_instance)
                             : make_policy(config.policy);

  sched::SchedulerDriver driver(simulator, dc, *policy, config.driver);
  if (auto* tr = obs::tracer(recorder)) {
    auto& e = tr->emit(simulator.now(), obs::EventKind::kRunBegin);
    e.label = policy->name();
    e.arg("hosts", static_cast<double>(config.datacenter.hosts.size()))
        .arg("jobs", static_cast<double>(jobs.size()));
  }
  driver.submit_workload(jobs);
  driver.on_all_done = [&simulator] { simulator.stop(); };

  if (config.horizon_s > 0) {
    simulator.run_until(config.horizon_s);
  } else {
    simulator.run();
  }

  RunResult result;
  result.end_time_s = simulator.now();
  result.jobs_submitted = driver.submitted();
  result.jobs_finished = driver.finished();
  result.events_dispatched = simulator.dispatched();
  result.events_cancelled = simulator.cancelled();
  result.hit_horizon = config.horizon_s > 0 && !driver.all_done();
  // Feed the kernel counters through the recorder before the report is
  // built, so sim.events_* rows land in every registry snapshot.
  recorder.events_dispatched = result.events_dispatched;
  recorder.events_cancelled = result.events_cancelled;
  result.report =
      make_report(recorder, simulator.now(), policy->name(),
                  config.driver.power.lambda_min,
                  config.driver.power.lambda_max);
  if (injector) {
    result.fault_trace = injector->trace();
    result.faults_injected = injector->injected_count();
  }
  // Post-run aggregation, not hot-path instrumentation: works even with
  // EASCHED_TRACE=OFF so --metrics-out survives instrumentation-free builds.
  if (config.obs != nullptr) {
    obs::publish_run_metrics(recorder, config.obs->registry);
  }
  return result;
}

}  // namespace easched::experiments
