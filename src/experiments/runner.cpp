#include "experiments/runner.hpp"

#include <cstdlib>
#include <optional>

#include "experiments/setup.hpp"
#include "faults/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "support/contracts.hpp"
#include "validate/repro.hpp"
#include "validate/validate.hpp"

namespace easched::experiments {

namespace {

/// FaultPlan::to_string() emits newline-separated key=value lines; the
/// comma-joined form is what parse_fault_plan() accepts inline, which is
/// what a repro bundle needs.
std::string inline_fault_spec(const faults::FaultPlan& plan) {
  std::string spec = plan.to_string();
  for (char& c : spec) {
    if (c == '\n') c = ',';
  }
  while (!spec.empty() && spec.back() == ',') spec.pop_back();
  return spec;
}

}  // namespace

RunResult run_experiment(const workload::Workload& jobs, RunConfig config) {
  EA_EXPECTS(!jobs.empty());

#if EASCHED_VALIDATE_ENABLED
  if (!config.validate.enabled) {
    // Runtime half of the switch: flip validation on without recompiling.
    const char* env = std::getenv("EASCHED_VALIDATE");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      config.validate.enabled = true;
    }
  }
#else
  config.validate.enabled = false;
#endif

  sim::Simulator simulator;
  metrics::Recorder recorder(config.datacenter.hosts.size());
  recorder.obs = config.obs;

  std::optional<faults::FaultInjector> injector;
  if (config.faults.enabled) {
    injector.emplace(config.faults);
    config.datacenter.fault_injector = &*injector;
    // The plan is the single source of truth for the recovery knobs.
    config.datacenter.quarantine.failure_budget =
        config.faults.quarantine_budget;
    config.datacenter.quarantine.window_s = config.faults.quarantine_window_s;
    config.datacenter.quarantine.cooldown_s =
        config.faults.quarantine_cooldown_s;
    config.driver.retry.base_s = config.faults.retry_base_s;
    config.driver.retry.cap_s = config.faults.retry_cap_s;
    config.driver.retry.jitter = config.faults.retry_jitter;
    // An armed breaker in the fault plan switches the resilience control
    // plane on for its circuit-breaker half even without a --resilience=
    // spec (watchdog and admission stay at their inert defaults).
    if (config.faults.breaker_threshold > 0) {
      config.resilience.enabled = true;
      config.resilience.breaker_threshold = config.faults.breaker_threshold;
      config.resilience.breaker_probe_after_s =
          config.faults.breaker_probe_after_s;
      config.resilience.breaker_dead_after = config.faults.breaker_dead_after;
    }
  }

#if EASCHED_RESILIENCE_ENABLED
  std::optional<resilience::ResilienceController> res;
  if (config.resilience.enabled) {
    res.emplace(config.resilience, recorder, config.datacenter.hosts.size());
    recorder.resilience = &*res;
  }
#else
  config.resilience.enabled = false;
#endif

  datacenter::Datacenter dc(simulator, config.datacenter, recorder);

  std::unique_ptr<sched::Policy> policy =
      config.policy_instance ? std::move(config.policy_instance)
                             : make_policy(config.policy);

  std::optional<validate::InvariantChecker> checker;
  std::string repro_written;
  if (config.validate.enabled) {
    checker.emplace(config.validate.checker);
    recorder.validator = &*checker;
    simulator.set_observer(&*checker);
    checker->on_violation = [&config, &jobs, &recorder, &policy,
                             &repro_written](const validate::Violation& v) {
      const std::string what =
          std::string(validate::to_string(v.rule)) + ": " + v.message;
      if (auto* tr = obs::tracer(recorder)) {
        auto& e = tr->emit(v.t, obs::EventKind::kInvariantViolation);
        e.label = what;
        e.arg("rule", static_cast<double>(static_cast<int>(v.rule)));
      }
      if (config.validate.repro_path.empty() || !repro_written.empty()) {
        return;
      }
      // First violation: capture the run's deterministic inputs plus the
      // workload slice submitted so far into a repro bundle.
      validate::ReproBundle bundle;
      bundle.policy = policy->name();
      bundle.dc_seed = config.datacenter.seed;
      for (const auto& spec : config.datacenter.hosts) {
        bundle.host_classes.push_back(spec.klass);
      }
      bundle.inject_failures = config.datacenter.inject_failures;
      bundle.checkpoint_enabled = config.datacenter.checkpoint.enabled;
      bundle.checkpoint_period_s = config.datacenter.checkpoint.period_s;
      bundle.lambda_min = config.driver.power.lambda_min;
      bundle.lambda_max = config.driver.power.lambda_max;
      bundle.horizon_s = config.horizon_s;
      if (config.faults.enabled) {
        bundle.fault_spec = inline_fault_spec(config.faults);
      }
      bundle.violation = what;
      bundle.violation_t = v.t;
      for (const auto& job : jobs) {
        if (job.submit <= v.t) bundle.jobs.push_back(job);
      }
      validate::write_repro_bundle_file(config.validate.repro_path, bundle);
      repro_written = config.validate.repro_path;
    };
  }

  sched::SchedulerDriver driver(simulator, dc, *policy, config.driver);
  if (auto* tr = obs::tracer(recorder)) {
    auto& e = tr->emit(simulator.now(), obs::EventKind::kRunBegin);
    e.label = policy->name();
    e.arg("hosts", static_cast<double>(config.datacenter.hosts.size()))
        .arg("jobs", static_cast<double>(jobs.size()));
  }
  driver.submit_workload(jobs);
  driver.on_all_done = [&simulator] { simulator.stop(); };

  // Live telemetry: register the sampling periodic only when a plane is
  // enabled — an untouched run schedules no extra events and stays
  // bit-identical to a build without the telemetry layer.
  obs::TelemetryPlane* telemetry = obs::telemetry(recorder);
  obs::TelemetryPlane::Sources telemetry_src;
  if (telemetry != nullptr) {
    telemetry_src.dc = &dc;
    telemetry_src.driver = &driver;
    telemetry_src.recorder = &recorder;
    telemetry_src.lambda_min = config.driver.power.lambda_min;
    telemetry_src.lambda_max = config.driver.power.lambda_max;
    telemetry->sample(simulator.now(), telemetry_src);  // t=0 baseline
    simulator.every(telemetry->config().period_s,
                    [telemetry, &telemetry_src, &simulator, &driver] {
                      // The adaptive-threshold extension moves the lambdas
                      // over time; snapshot the live band.
                      telemetry_src.lambda_min =
                          driver.thresholds().lambda_min;
                      telemetry_src.lambda_max =
                          driver.thresholds().lambda_max;
                      telemetry->sample(simulator.now(), telemetry_src);
                    });
  }

  if (config.horizon_s > 0) {
    simulator.run_until(config.horizon_s);
  } else {
    simulator.run();
  }

  RunResult result;
  result.end_time_s = simulator.now();
  result.jobs_submitted = driver.submitted();
  result.jobs_finished = driver.finished();
  result.jobs_shed = driver.shed();
  result.events_dispatched = simulator.dispatched();
  result.events_cancelled = simulator.cancelled();
  result.hit_horizon = config.horizon_s > 0 && !driver.all_done();
  // Feed the kernel counters through the recorder before the report is
  // built, so sim.events_* rows land in every registry snapshot.
  recorder.events_dispatched = result.events_dispatched;
  recorder.events_cancelled = result.events_cancelled;
  // Close the energy ledger's integration window at the same end time the
  // report integrates to, so the attributed joules and the aggregate
  // energy_kwh cover the identical interval.
  if (auto* el = obs::ledger(recorder)) {
    el->finish(simulator.now());
  }
  // Close the telemetry stream at the same end time: one final sample (when
  // the cadence missed the endpoint) and a sink flush, then absorb the
  // alert firing log into the report below.
  if (telemetry != nullptr) {
    telemetry->finish(simulator.now(), telemetry_src);
  }
  result.report =
      make_report(recorder, simulator.now(), policy->name(),
                  config.driver.power.lambda_min,
                  config.driver.power.lambda_max);
  if (telemetry != nullptr) {
    result.report.alerts = telemetry->alerts().log();
  }
  if (injector) {
    result.fault_trace = injector->trace();
    result.faults_injected = injector->injected_count();
  }
  if (checker) {
    result.violations = checker->violations();
    result.invariant_checks = checker->checks_run();
    result.repro_path = repro_written;
    simulator.set_observer(nullptr);
    recorder.validator = nullptr;
  }
  // Post-run aggregation, not hot-path instrumentation: works even with
  // EASCHED_TRACE=OFF so --metrics-out survives instrumentation-free builds.
  if (config.obs != nullptr) {
    config.obs->registry.set_sim_time(simulator.now());
    obs::publish_run_metrics(recorder, config.obs->registry);
  }
  return result;
}

}  // namespace easched::experiments
