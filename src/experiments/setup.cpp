#include "experiments/setup.hpp"

#include <stdexcept>

#include "core/score_based_policy.hpp"
#include "policies/backfilling.hpp"
#include "policies/dynamic_backfilling.hpp"
#include "policies/random_policy.hpp"
#include "policies/round_robin.hpp"

namespace easched::experiments {

std::vector<datacenter::HostSpec> evaluation_hosts(std::size_t fast,
                                                   std::size_t medium,
                                                   std::size_t slow) {
  std::vector<datacenter::HostSpec> hosts;
  hosts.reserve(fast + medium + slow);
  for (std::size_t i = 0; i < fast; ++i)
    hosts.push_back(datacenter::HostSpec::fast());
  for (std::size_t i = 0; i < medium; ++i)
    hosts.push_back(datacenter::HostSpec::medium());
  for (std::size_t i = 0; i < slow; ++i)
    hosts.push_back(datacenter::HostSpec::slow());
  return hosts;
}

datacenter::DatacenterConfig evaluation_datacenter(std::uint64_t seed) {
  datacenter::DatacenterConfig config;
  config.hosts = evaluation_hosts();
  config.seed = seed;
  return config;
}

std::unique_ptr<sched::Policy> make_policy(const std::string& name) {
  if (name == "RD") return std::make_unique<policies::RandomPolicy>();
  if (name == "RR") return std::make_unique<policies::RoundRobinPolicy>();
  if (name == "BF") return std::make_unique<policies::BackfillingPolicy>();
  if (name == "DBF")
    return std::make_unique<policies::DynamicBackfillingPolicy>();
  if (name == "SB0")
    return std::make_unique<core::ScoreBasedPolicy>(
        core::ScoreBasedConfig::sb0());
  if (name == "SB1")
    return std::make_unique<core::ScoreBasedPolicy>(
        core::ScoreBasedConfig::sb1());
  if (name == "SB2")
    return std::make_unique<core::ScoreBasedPolicy>(
        core::ScoreBasedConfig::sb2());
  if (name == "SB")
    return std::make_unique<core::ScoreBasedPolicy>(
        core::ScoreBasedConfig::sb());
  if (name == "SB-full")
    return std::make_unique<core::ScoreBasedPolicy>(
        core::ScoreBasedConfig::sb_full());
  throw std::invalid_argument("unknown policy: " + name);
}

}  // namespace easched::experiments
