// Shared configuration of the paper's evaluation environment (section V):
// the 100-node heterogeneous datacenter and helpers for building policies
// by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datacenter/datacenter.hpp"
#include "sched/policy.hpp"

namespace easched::experiments {

/// The evaluation datacenter: 15 fast, 50 medium and 35 slow nodes (their
/// Cc/Cm overheads per section V), all 4-way Table-I machines.
std::vector<datacenter::HostSpec> evaluation_hosts(
    std::size_t fast = 15, std::size_t medium = 50, std::size_t slow = 35);

/// Default DatacenterConfig over evaluation_hosts().
datacenter::DatacenterConfig evaluation_datacenter(std::uint64_t seed = 1);

/// Policy factory: "RD", "RR", "BF", "DBF", "SB0", "SB1", "SB2", "SB",
/// "SB-full". Throws std::invalid_argument for unknown names.
std::unique_ptr<sched::Policy> make_policy(const std::string& name);

}  // namespace easched::experiments
