// Deterministic parallel sweep harness.
//
// Figure/table reproductions sweep a grid of independent runs (thresholds ×
// policies × seeds). Each run already has fully isolated state — its own
// Simulator, Datacenter, Recorder and policy instance, no globals — so the
// sweep is embarrassingly parallel. `SweepRunner` fans the runs across a
// small thread pool and returns results in submission order, which makes
// the output of every bench byte-identical between 1 and N threads: the
// determinism contract extends from "same seed, same run" to "same grid,
// same table, any thread count".
//
// Thread count comes from EASCHED_SWEEP_THREADS (default 1, clamped to
// [1, 64]), mirroring the solver pool's EASCHED_SOLVER_THREADS knob. Note
// the two pools compose multiplicatively: a sweep worker running a config
// with solver threads > 1 spawns its own solver pool per run.
#pragma once

#include <functional>
#include <vector>

#include "experiments/runner.hpp"

namespace easched::experiments {

/// One sweep unit. `jobs` must outlive the sweep (tasks hold a pointer so a
/// shared workload is built once, not per grid point). `config` is a
/// factory rather than a value because RunConfig is move-only (it may own a
/// policy instance); it is invoked on the worker thread that executes the
/// task.
struct SweepTask {
  const workload::Workload* jobs = nullptr;
  std::function<RunConfig()> config;
};

class SweepRunner {
 public:
  /// Uses EASCHED_SWEEP_THREADS (see env_threads()).
  SweepRunner() : SweepRunner(env_threads()) {}
  explicit SweepRunner(int threads);

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Executes every task and returns the results in submission order
  /// (results[i] belongs to tasks[i], whatever thread ran it). Tasks are
  /// claimed dynamically, so an expensive grid point does not serialize the
  /// rest of the sweep behind it.
  std::vector<RunResult> run(std::vector<SweepTask> tasks);

  /// Reads EASCHED_SWEEP_THREADS; empty/unset means 1, values are clamped
  /// to [1, 64].
  static int env_threads();

 private:
  int threads_;
};

}  // namespace easched::experiments
