// Backfilling (BF) baseline of Table II: "tries to fill as much as possible
// the nodes".
//
// For each queued VM (FIFO), pick the powered-on host that ends up most
// occupied after the placement while still fitting (best-fit/tightest-fill
// consolidation — the grid-scheduling community's backfilling adapted to a
// space-shared virtualized cluster). Never oversubscribes CPU; a VM that
// fits nowhere waits. No migration.
#pragma once

#include "sched/policy.hpp"

namespace easched::policies {

class BackfillingPolicy : public sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "BF"; }
  std::vector<sched::Action> schedule(const sched::SchedContext& ctx) override;
};

}  // namespace easched::policies
