// Random (RD) baseline of Table II: "assigns the tasks randomly".
//
// Picks a uniformly random powered-on host whose hardware/software and
// *memory* can take the VM — it does not look at CPU occupation at all, so
// it freely oversubscribes CPU and suffers the contention the paper
// reports (S = 33 %, worst of all policies). No migration.
#pragma once

#include "sched/policy.hpp"

namespace easched::policies {

class RandomPolicy final : public sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "RD"; }
  std::vector<sched::Action> schedule(const sched::SchedContext& ctx) override;
};

}  // namespace easched::policies
