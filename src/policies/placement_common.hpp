// Helpers shared by the baseline policies.
#pragma once

#include <vector>

#include "datacenter/datacenter.hpp"
#include "sched/policy.hpp"

namespace easched::policies {

/// Hosts currently accepting placements (state On).
std::vector<datacenter::HostId> on_hosts(const datacenter::Datacenter& dc);

/// Best-fit choice: among On hosts where `v` fully fits (occupation <= 1),
/// the one whose occupation after placing `v` is highest — i.e. the
/// tightest fill, which is what consolidates. Returns kNoHost if none fits.
datacenter::HostId best_fit_host(const datacenter::Datacenter& dc,
                                 datacenter::VmId v);

}  // namespace easched::policies
