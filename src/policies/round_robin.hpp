// Round Robin (RR) baseline of Table II: "assigns a task to each available
// node, which implies a maximization of the amount of resources to a task
// but also a sparse usage of the resources".
//
// A cursor walks the powered-on hosts; each queued VM goes to the next host
// that satisfies hw/sw and memory. Like RD it ignores CPU occupation (the
// point of RR is spreading, not packing), so bursts still pile VMs onto the
// same node once the ring wraps. No migration.
#pragma once

#include "sched/policy.hpp"

namespace easched::policies {

class RoundRobinPolicy final : public sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "RR"; }
  std::vector<sched::Action> schedule(const sched::SchedContext& ctx) override;

 private:
  datacenter::HostId cursor_ = 0;
};

}  // namespace easched::policies
