#include "policies/dynamic_backfilling.hpp"

#include <algorithm>

#include "policies/placement_common.hpp"

namespace easched::policies {

using datacenter::Datacenter;
using datacenter::HostId;
using datacenter::HostState;
using datacenter::VmId;
using datacenter::VmState;

std::vector<sched::Action> DynamicBackfillingPolicy::schedule(
    const sched::SchedContext& ctx) {
  // Phase 1: place the queue exactly like BF.
  std::vector<sched::Action> actions = BackfillingPolicy::schedule(ctx);
  if (!actions.empty()) return actions;  // consolidate only in quiet rounds

  // Migration sweeps are periodic, like the score-based policy's.
  const double now = ctx.dc.simulator().now();
  if (now - last_consolidation_ < consolidation_period_s_) return actions;

  // Phase 2: consolidation sweep. Candidate donor = the working host with
  // the lowest occupation whose entire VM set fits elsewhere.
  const Datacenter& dc = ctx.dc;
  std::vector<HostId> working;
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    const auto& host = dc.host(h);
    if (!dc.placeable(h)) continue;
    if (host.residents.empty() || !host.ops.empty()) continue;
    // Only steady hosts (every resident running) are donors/receivers.
    bool steady = true;
    for (VmId v : host.residents) {
      if (dc.vm(v).state != VmState::kRunning) steady = false;
    }
    if (steady) working.push_back(h);
  }
  if (working.size() < 2) return actions;

  std::sort(working.begin(), working.end(), [&](HostId a, HostId b) {
    return dc.occupation(a) < dc.occupation(b);
  });

  const HostId donor = working.front();
  std::vector<VmId> movers = dc.host(donor).residents;
  if (static_cast<int>(movers.size()) > max_migrations_per_round_)
    return actions;
  last_consolidation_ = now;

  // Tentatively best-fit every mover into the *other* working hosts,
  // tracking hypothetical loads; abort unless the donor empties fully
  // (partial evictions don't let the controller switch anything off).
  std::vector<double> extra_cpu(dc.num_hosts(), 0.0);
  std::vector<double> extra_mem(dc.num_hosts(), 0.0);
  std::vector<sched::Action> moves;
  for (VmId v : movers) {
    const auto& job = dc.vm(v).job;
    HostId best = datacenter::kNoHost;
    double best_occ = -1;
    for (std::size_t i = 1; i < working.size(); ++i) {
      const HostId h = working[i];
      if (!dc.hw_sw_ok(h, v)) continue;
      const auto& spec = dc.host(h).spec;
      const double cpu = dc.reserved_cpu_pct(h) + extra_cpu[h] +
                         dc.vm(v).cpu_demand_pct;
      const double mem = dc.reserved_mem_mb(h) + extra_mem[h] + job.mem_mb;
      const double occ =
          std::max(cpu / spec.cpu_capacity_pct, mem / spec.mem_mb);
      if (occ > 1.0 + 1e-9) continue;
      if (occ > best_occ) {
        best_occ = occ;
        best = h;
      }
    }
    if (best == datacenter::kNoHost) return actions;  // donor can't empty
    extra_cpu[best] += dc.vm(v).cpu_demand_pct;
    extra_mem[best] += job.mem_mb;
    moves.push_back(sched::Action::migrate(v, best));
  }
  actions.insert(actions.end(), moves.begin(), moves.end());
  return actions;
}

}  // namespace easched::policies
