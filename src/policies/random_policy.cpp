#include "policies/random_policy.hpp"

#include "policies/placement_common.hpp"

namespace easched::policies {

std::vector<sched::Action> RandomPolicy::schedule(
    const sched::SchedContext& ctx) {
  std::vector<sched::Action> actions;
  for (datacenter::VmId v : ctx.queue) {
    std::vector<datacenter::HostId> candidates;
    for (datacenter::HostId h : on_hosts(ctx.dc)) {
      if (ctx.dc.fits_memory(h, v)) candidates.push_back(h);
    }
    if (candidates.empty()) continue;  // stays queued
    const auto pick = static_cast<std::size_t>(
        ctx.rng.uniform_int(0, candidates.size() - 1));
    actions.push_back(sched::Action::place(v, candidates[pick]));
  }
  return actions;
}

}  // namespace easched::policies
