#include "policies/backfilling.hpp"

#include <algorithm>

#include "policies/placement_common.hpp"

namespace easched::policies {

using datacenter::Datacenter;
using datacenter::HostId;
using datacenter::HostState;
using datacenter::VmId;

std::vector<datacenter::HostId> on_hosts(const Datacenter& dc) {
  std::vector<HostId> out;
  out.reserve(dc.num_hosts());
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    if (dc.placeable(h)) out.push_back(h);
  }
  return out;
}

HostId best_fit_host(const Datacenter& dc, VmId v) {
  HostId best = datacenter::kNoHost;
  double best_occ = -1;
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    if (!dc.fits(h, v)) continue;
    const double occ = dc.occupation_if(h, v);
    if (occ > best_occ) {
      best_occ = occ;
      best = h;
    }
  }
  return best;
}

std::vector<sched::Action> BackfillingPolicy::schedule(
    const sched::SchedContext& ctx) {
  std::vector<sched::Action> actions;
  // Hypothetical reservations made this round must be visible to later
  // queue entries; track them locally.
  std::vector<double> extra_cpu(ctx.dc.num_hosts(), 0.0);
  std::vector<double> extra_mem(ctx.dc.num_hosts(), 0.0);

  for (VmId v : ctx.queue) {
    const auto& job = ctx.dc.vm(v).job;
    HostId best = datacenter::kNoHost;
    double best_occ = -1;
    for (HostId h = 0; h < ctx.dc.num_hosts(); ++h) {
      if (!ctx.dc.placeable(h)) continue;
      if (!ctx.dc.hw_sw_ok(h, v)) continue;
      const auto& spec = ctx.dc.host(h).spec;
      const double cpu =
          ctx.dc.reserved_cpu_pct(h) + extra_cpu[h] + job.cpu_pct;
      const double mem =
          ctx.dc.reserved_mem_mb(h) + extra_mem[h] + job.mem_mb;
      const double occ =
          std::max(cpu / spec.cpu_capacity_pct, mem / spec.mem_mb);
      if (occ > 1.0 + 1e-9) continue;
      if (occ > best_occ) {
        best_occ = occ;
        best = h;
      }
    }
    if (best == datacenter::kNoHost) continue;  // waits for capacity
    extra_cpu[best] += job.cpu_pct;
    extra_mem[best] += job.mem_mb;
    actions.push_back(sched::Action::place(v, best));
  }
  return actions;
}

}  // namespace easched::policies
