#include "policies/round_robin.hpp"

#include "policies/placement_common.hpp"

namespace easched::policies {

std::vector<sched::Action> RoundRobinPolicy::schedule(
    const sched::SchedContext& ctx) {
  std::vector<sched::Action> actions;
  const auto hosts = on_hosts(ctx.dc);
  if (hosts.empty()) return actions;

  // Track hypothetical memory commitments within this round so a burst of
  // queued VMs spreads instead of all landing on the same cursor position.
  std::vector<double> extra_mem(ctx.dc.num_hosts(), 0.0);

  for (datacenter::VmId v : ctx.queue) {
    const auto& job = ctx.dc.vm(v).job;
    for (std::size_t step = 0; step < hosts.size(); ++step) {
      cursor_ = (cursor_ + 1) % hosts.size();
      const datacenter::HostId h = hosts[cursor_];
      if (!ctx.dc.hw_sw_ok(h, v)) continue;
      const double mem =
          ctx.dc.reserved_mem_mb(h) + extra_mem[h] + job.mem_mb;
      if (mem > ctx.dc.host(h).spec.mem_mb) continue;
      extra_mem[h] += job.mem_mb;
      actions.push_back(sched::Action::place(v, h));
      break;
    }
  }
  return actions;
}

}  // namespace easched::policies
