// Dynamic Backfilling (DBF) baseline of Table IV: "applies Backfilling and
// migrates VMs between nodes in order to provide a higher consolidation
// level".
//
// Placement is plain best-fit backfilling; additionally, each round tries
// to empty the least-occupied working host by migrating its VMs (best-fit)
// into the other working hosts, so the vacated node can be powered off by
// the controller. Migration is bounded per round to keep the churn
// realistic (the paper reports 124 migrations for the whole week).
#pragma once

#include "policies/backfilling.hpp"

namespace easched::policies {

class DynamicBackfillingPolicy final : public BackfillingPolicy {
 public:
  explicit DynamicBackfillingPolicy(int max_migrations_per_round = 4,
                                    double consolidation_period_s = 3600)
      : max_migrations_per_round_(max_migrations_per_round),
        consolidation_period_s_(consolidation_period_s) {}

  [[nodiscard]] std::string name() const override { return "DBF"; }
  [[nodiscard]] bool uses_migration() const override { return true; }
  std::vector<sched::Action> schedule(const sched::SchedContext& ctx) override;

 private:
  int max_migrations_per_round_;
  double consolidation_period_s_;     ///< min time between migration sweeps
  double last_consolidation_ = -1e18;
};

}  // namespace easched::policies
