#include "datacenter/failure_model.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"
#include "support/distributions.hpp"

namespace easched::datacenter {

namespace {
/// Floor for the implied MTBF. Reliability -> 0 sends MTBF -> 0, which
/// degenerates the exponential draw into "fails at every instant" and
/// wedges the simulation in a fail/repair hot-loop; one second keeps the
/// model meaningful ("this node is always broken") without the singularity.
constexpr double kMinMtbfS = 1.0;
}  // namespace

double FailureModel::mtbf_s(double reliability) const {
  // Out-of-range factors are clamped rather than rejected: reliabilities
  // estimated from observed uptime can drift past either boundary through
  // measurement noise.
  const double r = std::clamp(reliability, 0.0, 1.0);
  if (r >= 1.0) return std::numeric_limits<double>::infinity();
  return std::max(kMinMtbfS, mttr_s_ * r / (1.0 - r));
}

double FailureModel::draw_time_to_failure(support::Rng& rng,
                                          double reliability) const {
  const double mtbf = mtbf_s(reliability);
  if (!(mtbf < std::numeric_limits<double>::infinity()))
    return std::numeric_limits<double>::infinity();
  return support::exponential(rng, 1.0 / mtbf);
}

double FailureModel::draw_repair_time(support::Rng& rng) const {
  EA_EXPECTS(mttr_s_ > 0.0);
  return support::exponential(rng, 1.0 / mttr_s_);
}

}  // namespace easched::datacenter
