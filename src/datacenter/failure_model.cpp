#include "datacenter/failure_model.hpp"

#include <limits>

#include "support/contracts.hpp"
#include "support/distributions.hpp"

namespace easched::datacenter {

double FailureModel::mtbf_s(double reliability) const {
  EA_EXPECTS(reliability >= 0.0 && reliability <= 1.0);
  if (reliability >= 1.0) return std::numeric_limits<double>::infinity();
  if (reliability <= 0.0) return 0.0;
  return mttr_s_ * reliability / (1.0 - reliability);
}

double FailureModel::draw_time_to_failure(support::Rng& rng,
                                          double reliability) const {
  const double mtbf = mtbf_s(reliability);
  if (!(mtbf < std::numeric_limits<double>::infinity()))
    return std::numeric_limits<double>::infinity();
  if (mtbf <= 0.0) return 0.0;
  return support::exponential(rng, 1.0 / mtbf);
}

double FailureModel::draw_repair_time(support::Rng& rng) const {
  EA_EXPECTS(mttr_s_ > 0.0);
  return support::exponential(rng, 1.0 / mttr_s_);
}

}  // namespace easched::datacenter
