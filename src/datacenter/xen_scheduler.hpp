// Model of the Xen credit hyperscheduler (section IV: "the internal
// resource scheduling follows ... the Xen's resource scheduler", with
// "Virtual Machine Weights and Capabilities").
//
// Given the host's CPU capacity and the per-VM demands, weights and caps,
// computes a work-conserving weighted proportional-share allocation:
//   * when total demand fits, every VM gets its demand;
//   * otherwise capacity is distributed proportionally to weight, capped at
//     each VM's demand, with the leftover water-filled over the still-hungry
//     VMs (the credit scheduler's work-conserving behaviour).
//
// Management operations (VM creation / live migration, run in dom0) are
// modelled as high-priority demands served before guest VMs, reflecting the
// "CPU overload produced when creating new VMs or at migration time" that
// the paper measured and simulated.
#pragma once

#include <vector>

namespace easched::datacenter {

struct CpuDemand {
  double demand_pct = 0;   ///< requested CPU [% of one core]
  double weight = 256;     ///< Xen credit weight
  double cap_pct = 0;      ///< hard cap; 0 = uncapped (Xen convention)
};

struct XenAllocation {
  std::vector<double> vm_alloc_pct;  ///< per-VM allocation, same order as input
  double mgmt_alloc_pct = 0;         ///< allocated to management operations
  double used_pct = 0;               ///< total allocated (drives power)
  double oversubscription = 1.0;     ///< total demand / capacity, >= 1
};

/// Reusable work buffers for allocate_cpu(): at fleet scale the water
/// filler runs for every touched host of every reallocation, and its two
/// temporaries (effective demands, compacted active list) plus the output
/// vector dominated the allocator profile. Keep one XenScratch (and one
/// XenAllocation) per caller and the buffers are reused across calls.
struct XenScratch {
  std::vector<double> want;
  std::vector<std::size_t> active;
};

/// Computes the allocation. `mgmt_demand_pct` is the aggregate dom0 demand
/// of in-flight create/migrate operations. Requires capacity_pct > 0,
/// non-negative demands, positive weights.
XenAllocation allocate_cpu(double capacity_pct,
                           const std::vector<CpuDemand>& vms,
                           double mgmt_demand_pct = 0);

/// Allocation-free variant: identical arithmetic (golden traces hold the
/// equivalence), with the temporaries borrowed from `scratch` and the
/// result written into `out` in place.
void allocate_cpu(double capacity_pct, const std::vector<CpuDemand>& vms,
                  double mgmt_demand_pct, XenScratch& scratch,
                  XenAllocation& out);

}  // namespace easched::datacenter
