// The simulated virtualized datacenter.
//
// This class replaces the paper's OMNeT++ "VHost" component: it owns the
// hosts and VMs, executes the actuator operations the scheduler decides
// (VM creation, live migration, node power cycling — section III-C),
// advances job progress under the modelled Xen credit scheduler, injects
// failures, takes checkpoints, and feeds every power/CPU/node-count change
// into the metrics recorder.
//
// Execution model. Job progress is piecewise linear: between two events a
// running VM accrues work at
//     rate = (allocated / demanded) * efficiency(host)
// dedicated-seconds per second. Whenever anything on a host changes (VM
// arrives/leaves/finishes, an operation starts/ends, a demand is boosted)
// the host is *reallocated*: progress since the last change is integrated,
// new CPU shares are computed via allocate_cpu(), each resident's projected
// finish event is rescheduled, and the host's power draw is re-derived from
// its new total CPU usage.
//
// Contention. When a host is CPU-oversubscribed (only the Random and
// Round-Robin baselines create this state; the consolidating policies
// refuse placements with occupation > 1), VMs not only receive a smaller
// share but also progress less efficiently:
//     efficiency = 1 / (1 + contention_penalty * (oversubscription - 1)).
// This models the scheduling/cache interference the paper's testbed
// measurements attribute to contended hosts; it is why the Random policy
// burns far more CPU-hours than the consolidating policies in Table II.
#pragma once

#include <functional>
#include <vector>

#include "datacenter/checkpointer.hpp"
#include "datacenter/failure_model.hpp"
#include "datacenter/host.hpp"
#include "datacenter/ids.hpp"
#include "datacenter/vm.hpp"
#include "datacenter/xen_scheduler.hpp"
#include "faults/fault_plan.hpp"
#include "metrics/accumulators.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "workload/job.hpp"

namespace easched::faults {
class FaultInjector;
}  // namespace easched::faults

namespace easched::datacenter {

/// Quarantine (degraded-mode) policy: a host accumulating
/// `failure_budget` faults — crashes, failed/timed-out operations, missed
/// boot deadlines — within `window_s` is exiled from placement and
/// power-on choices for `cooldown_s`, then readmitted with a clean slate.
struct QuarantinePolicy {
  bool enabled = true;
  int failure_budget = 3;
  double window_s = 3600;
  double cooldown_s = 1800;
};

struct DatacenterConfig {
  std::vector<HostSpec> hosts;

  /// Contention-efficiency penalty factor k (see header comment).
  double contention_penalty = 2.0;
  /// dom0 CPU consumed while creating a VM / per migration leg.
  double creation_overhead_cpu_pct = 100;
  double migration_overhead_cpu_pct = 60;
  /// Operation durations are N(mean, mean * sigma_ratio) truncated at 1 s;
  /// the paper observed N(40, 2.5) for creations on the medium nodes.
  double duration_sigma_ratio = 2.5 / 40.0;

  /// Hosts powered on at t=0 (the power controller adjusts from there).
  /// Defaults to all hosts.
  std::size_t initially_on = static_cast<std::size_t>(-1);

  /// Failure injection (reliability extension). Failures only strike hosts
  /// with spec.reliability < 1.
  bool inject_failures = false;
  double mean_repair_s = 2 * sim::kHour;

  CheckpointPolicy checkpoint;

  /// Deterministic operation-level fault injection (see faults/). Not
  /// owned; null disables injection entirely — no extra RNG draws, no
  /// deadline events, bit-identical traces to a build without the layer.
  faults::FaultInjector* fault_injector = nullptr;

  QuarantinePolicy quarantine;

  std::uint64_t seed = 1;
};

class Datacenter {
 public:
  Datacenter(sim::Simulator& simulator, DatacenterConfig config,
             metrics::Recorder& recorder);

  Datacenter(const Datacenter&) = delete;
  Datacenter& operator=(const Datacenter&) = delete;

  // ---- queries -----------------------------------------------------------

  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  [[nodiscard]] const Host& host(HostId h) const;
  [[nodiscard]] const Vm& vm(VmId v) const;
  [[nodiscard]] std::size_t num_vms() const { return vms_.size(); }

  [[nodiscard]] int online_count() const;  ///< On or Booting
  [[nodiscard]] int working_count() const;
  [[nodiscard]] int offline_available_count() const;  ///< Off (not failed)
  [[nodiscard]] int booting_count() const;
  [[nodiscard]] int failed_count() const;
  /// VMs currently assigned to any host (Creating/Running/incoming
  /// Migrating) — the telemetry "jobs running" rollup.
  [[nodiscard]] std::size_t placed_vm_count() const;

  /// Host occupation: max over CPU and memory of reserved/capacity.
  /// Reservations count Creating/Running residents and incoming migrations
  /// at full demand and outgoing migrations at memory only.
  [[nodiscard]] double occupation(HostId h) const;
  /// Occupation of `h` if `v` were (also) placed there; if `v` already
  /// resides on `h` this equals occupation(h) (paper's O(h, vm)).
  [[nodiscard]] double occupation_if(HostId h, VmId v) const;

  /// Hardware + software requirement check (the Preq penalty).
  [[nodiscard]] bool hw_sw_ok(HostId h, VmId v) const;

  /// Whether `h` accepts new placements / incoming migrations at all:
  /// host.is_placeable() (On, no maintenance, no quarantine) AND — when a
  /// ResilienceController rides on the recorder — its circuit breaker
  /// allows placement (closed, or half-open with the probe slot free).
  /// Policies and solvers must consult this, not Host::is_placeable(),
  /// so plans never target a breaker-open host.
  [[nodiscard]] bool placeable(HostId h) const;

  /// True when `v` may be placed on / migrated to `h` without exceeding
  /// capacity: host placeable, hw/sw ok, occupation_if <= 1 (+epsilon).
  [[nodiscard]] bool fits(HostId h, VmId v) const;
  /// Like fits() but ignores the CPU dimension (memory and hw/sw only);
  /// used by the non-consolidating baselines, which oversubscribe CPU.
  [[nodiscard]] bool fits_memory(HostId h, VmId v) const;

  /// Reserved CPU / memory on a host (for policies building scores).
  [[nodiscard]] double reserved_cpu_pct(HostId h) const;
  [[nodiscard]] double reserved_mem_mb(HostId h) const;

  /// Current progress rate estimate a VM would enjoy on host `h`, assuming
  /// its demand is added to the present residents (1.0 = full speed). Used
  /// by the dynamic-SLA penalty to project fulfilment.
  [[nodiscard]] double projected_rate(HostId h, VmId v) const;

  /// All active (non-finished) VM ids.
  [[nodiscard]] std::vector<VmId> active_vms() const;

  /// Cross-round dirty journal for the incremental scheduling core
  /// (core/fleet.hpp). Every mutation that can change a host's
  /// score-relevant state — a reallocation (residents, reservations,
  /// demand, in-flight operations), a power transition, a maintenance /
  /// quarantine flip, a debug mutation hook — marks the host dirty.
  /// FleetState::refresh() drains the set once per round and re-reads only
  /// those hosts instead of snapshotting the whole fleet. Marking is
  /// deduplicated, so the journal stays bounded by num_hosts() even when
  /// nothing drains it (e.g. non-score policies). Draining appends the
  /// dirty ids (deduplicated, in first-marked order) to `out` and clears
  /// the journal; it is const because the single consumer reaches the
  /// Datacenter through a const SchedContext.
  void drain_fleet_dirty(std::vector<HostId>& out) const;
  [[nodiscard]] std::size_t fleet_dirty_count() const {
    return fleet_dirty_.size();
  }

  // ---- actuators (section III-C) -----------------------------------------

  /// Admits a job: materialises its VM in the Queued state and returns the
  /// id. The driver keeps the queue ordering.
  VmId admit_job(const workload::Job& job);

  /// Starts creating a queued VM on an On host. Requires fits_memory().
  void place(VmId v, HostId h);

  /// Starts a live migration of a Running VM to another On host.
  void migrate(VmId v, HostId to);

  /// Power cycling. power_on: Off -> Booting; power_off: idle On ->
  /// ShuttingDown (requires is_idle_on()).
  void power_on(HostId h);
  void power_off(HostId h);

  /// Maintenance (drain) mode: while set, the host accepts no placements
  /// or incoming migrations (fits()/fits_memory() return false).
  void set_maintenance(HostId h, bool on);

  /// Raises a running VM's CPU demand (dynamic SLA enforcement). Clamped to
  /// the host capacity; no-op for non-running VMs.
  void boost_demand(VmId v, double new_demand_pct);

  /// Multiplies a VM's Xen credit weight (dynamic SLA enforcement): under
  /// contention the VM's share grows toward its nominal demand without
  /// inflating what it consumes when uncontended. Weight is capped at 65536
  /// (Xen's maximum).
  void boost_weight(VmId v, double factor);

  /// Chaos/test hook: crashes an On host immediately, exactly as if the
  /// FailureModel had struck (residents requeued, checkpoints restored,
  /// repair scheduled). No-op unless the host is On.
  void inject_host_failure(HostId h);

  /// Mutation-test hooks for the invariant checker (see validate/): each
  /// corrupts the world in a way normal actuators never can, so the tests
  /// can prove the corresponding rule actually fires. debug_add_resident
  /// duplicates a resident-list entry (breaks VM conservation only);
  /// debug_force_place installs a queued VM as Running on `h` with
  /// *consistent* bookkeeping but without any capacity check (breaks
  /// capacity when the VM does not fit). Neither reallocates nor touches
  /// the meters.
  void debug_add_resident(HostId h, VmId v);
  void debug_force_place(VmId v, HostId h);

  // ---- notifications to the scheduler driver ------------------------------

  std::function<void(VmId)> on_vm_ready;     ///< creation completed
  std::function<void(VmId)> on_vm_finished;  ///< job completed
  std::function<void(VmId)> on_migration_done;
  std::function<void(HostId)> on_host_online;     ///< boot completed
  std::function<void(HostId)> on_host_off;        ///< shutdown completed
  std::function<void(HostId, std::vector<VmId>)> on_host_failed;
  std::function<void(HostId)> on_host_repaired;

  /// A create/migrate/checkpoint operation failed or was aborted by its
  /// deadline (`timed_out`). For creations the VM is back in Queued; for
  /// migrations it has been rolled back to its source host. The driver
  /// schedules the backoff-delayed retry.
  std::function<void(faults::FaultOp, VmId, HostId, bool timed_out)>
      on_operation_failed;
  std::function<void(HostId)> on_host_boot_failed;  ///< missed boot deadline
  std::function<void(HostId)> on_host_quarantined;
  std::function<void(HostId)> on_host_unquarantined;

  /// Exposes the simulator (policies need now(); tests drive time).
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const noexcept {
    return sim_;
  }
  [[nodiscard]] const DatacenterConfig& config() const noexcept {
    return config_;
  }
  /// Const overload included: recorder_ is a reference to caller-owned
  /// state, and observers (e.g. the score policy emitting trace events
  /// through a const SchedContext) legitimately reach it on a const
  /// Datacenter.
  [[nodiscard]] metrics::Recorder& recorder() const noexcept {
    return recorder_;
  }

  /// The attached fault injector (null when injection is disabled).
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept {
    return config_.fault_injector;
  }

 private:
  Host& host_mut(HostId h);
  Vm& vm_mut(VmId v);

  /// The single gateway for host power-state changes after construction:
  /// notifies the attached invariant checker (power-legality rule) before
  /// assigning, so every transition is validated or none are.
  void set_host_state(Host& h, HostState to);

  /// Records `h` in the fleet dirty journal (deduplicated).
  void mark_fleet_dirty(HostId h);

  /// Integrates progress and recomputes shares/power on a host.
  void reallocate(HostId h);
  /// Integrates operation progress and recomputes the dom0 I/O-channel
  /// shares; reschedules the operations' completion events.
  void reallocate_io(HostId h);
  void complete_operation(HostId h, Operation::Kind kind, VmId v);
  void integrate_progress(Vm& v);
  void reschedule_finish(Vm& v);
  void finish_vm(VmId v);
  void complete_creation(HostId h, VmId v);
  void complete_migration(HostId from, HostId to, VmId v);
  void complete_checkpoint(HostId h, VmId v);
  void remove_resident(Host& h, VmId v);
  void remove_op(Host& h, Operation::Kind kind, VmId v);
  void update_power(Host& h);
  void update_node_counters();
  void schedule_failure(HostId h);
  void cancel_failure(HostId h);
  void fail_host(HostId h);
  void maybe_checkpoint(Vm& v);
  double draw_duration(double mean_s);

  // ---- fault-injection & recovery internals -------------------------------
  /// Consults the injector for `op` on host `h` and applies the outcome to
  /// a freshly drawn operation (shorten-and-flag for fail, hang flag,
  /// stretched work for slow). No-op without an injector.
  void apply_injection(Operation& op, faults::FaultOp fop, HostId h);
  /// Arms the abort-at-timeout watchdog on the just-pushed operation
  /// (deadline = plan.op_timeout_factor x `mean_s`). Injector-gated.
  void arm_op_deadline(HostId h, double mean_s);
  void op_deadline_expired(HostId h, Operation::Kind kind, VmId v);
  /// Common failure path for create/migrate/checkpoint operations
  /// (`timed_out` distinguishes deadline aborts from injected failures).
  void fail_operation(HostId h, Operation::Kind kind, VmId v, bool timed_out);
  void fail_creation(HostId h, VmId v);
  void rollback_migration(VmId v);
  void fail_checkpoint(HostId h, VmId v);
  void boot_failed(HostId h);
  /// Charges one fault against `h`'s failure budget; quarantines the host
  /// when the budget is exceeded and schedules the cooldown.
  void note_host_fault(HostId h);
  /// Appends a recovery event line to the injector trace (if attached).
  void record_fault_event(const char* fmt, ...);
  Operation* find_op(Host& h, Operation::Kind kind, VmId v);

  sim::Simulator& sim_;
  DatacenterConfig config_;
  metrics::Recorder& recorder_;
  support::Rng rng_;
  std::vector<Host> hosts_;
  std::vector<Vm> vms_;
  std::vector<sim::EventId> failure_events_;
  FailureModel failure_model_;

  // Fleet dirty journal (see drain_fleet_dirty): `mutable` because the
  // drain is a const query from the scheduling policy's point of view.
  mutable std::vector<HostId> fleet_dirty_;
  mutable std::vector<unsigned char> fleet_dirty_flag_;

  // Water-filling scratch for reallocate(), reused across calls: at fleet
  // scale the per-call vectors were a measurable slice of the event
  // kernel. Safe because reallocate() never re-enters itself.
  std::vector<CpuDemand> xen_demands_;
  std::vector<VmId> xen_running_;
  XenScratch xen_scratch_;
  XenAllocation xen_alloc_;
};

}  // namespace easched::datacenter
