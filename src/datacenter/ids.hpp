// Opaque integer identifiers for hosts and VMs. Both index dense vectors
// inside Datacenter, so they are plain integers rather than wrapped types;
// the aliases exist to make signatures self-describing.
#pragma once

#include <cstdint>

namespace easched::datacenter {

using HostId = std::uint32_t;
using VmId = std::uint32_t;

inline constexpr HostId kNoHost = ~HostId{0};
inline constexpr VmId kNoVm = ~VmId{0};

}  // namespace easched::datacenter
