#include "datacenter/power_model.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace easched::datacenter {

PowerModel::PowerModel(std::vector<std::pair<double, double>> points,
                       double off_watts, double boot_watts)
    : points_(std::move(points)),
      off_watts_(off_watts),
      boot_watts_(boot_watts) {
  EA_EXPECTS(!points_.empty());
  EA_EXPECTS(points_.front().first == 0.0);
  EA_EXPECTS(std::is_sorted(points_.begin(), points_.end(),
                            [](const auto& a, const auto& b) {
                              return a.first < b.first;
                            }));
  EA_EXPECTS(off_watts >= 0.0);
  EA_EXPECTS(boot_watts >= 0.0);
}

PowerModel PowerModel::table1() {
  // Table I of the paper: 4-way machine; x re-expressed as utilisation.
  return PowerModel{{{0.00, 230.0},
                     {0.25, 259.0},
                     {0.50, 273.0},
                     {0.75, 291.0},
                     {1.00, 304.0}},
                    /*off_watts=*/10.0,
                    /*boot_watts=*/230.0};
}

PowerModel PowerModel::constant(double watts_on, double off_watts) {
  return PowerModel{{{0.0, watts_on}}, off_watts, watts_on};
}

double PowerModel::watts_on(double used_cpu_pct, double capacity_pct) const {
  EA_EXPECTS(capacity_pct > 0.0);
  const double u =
      std::clamp(used_cpu_pct / capacity_pct, 0.0, 1.0);
  if (u <= points_.front().first) return points_.front().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].first) {
      const auto& [x0, y0] = points_[i - 1];
      const auto& [x1, y1] = points_[i];
      return y0 + (y1 - y0) * (u - x0) / (x1 - x0);
    }
  }
  return points_.back().second;
}

}  // namespace easched::datacenter
