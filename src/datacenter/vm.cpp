#include "datacenter/vm.hpp"

namespace easched::datacenter {

const char* to_string(VmState state) noexcept {
  switch (state) {
    case VmState::kQueued:
      return "queued";
    case VmState::kCreating:
      return "creating";
    case VmState::kRunning:
      return "running";
    case VmState::kMigrating:
      return "migrating";
    case VmState::kFinished:
      return "finished";
  }
  return "?";
}

}  // namespace easched::datacenter
