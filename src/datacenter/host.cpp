#include "datacenter/host.hpp"

namespace easched::datacenter {

const char* to_string(HostState state) noexcept {
  switch (state) {
    case HostState::kOff:
      return "off";
    case HostState::kBooting:
      return "booting";
    case HostState::kOn:
      return "on";
    case HostState::kShuttingDown:
      return "shutting-down";
    case HostState::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace easched::datacenter
