// Runtime state of a virtual machine (one VM encapsulates one HPC job).
//
// Lifecycle:
//   Queued -> Creating -> Running -> Finished
//                 ^          |  ^
//                 |          v  |        (migration pauses execution for
//                 |      Migrating        the transfer, section III-A.3)
//                 |          |
//                 +----------+-- host failure requeues the VM, restoring
//                                the last checkpoint if one exists (III-C)
#pragma once

#include "datacenter/ids.hpp"
#include "sim/event_queue.hpp"
#include "workload/job.hpp"

namespace easched::datacenter {

enum class VmState : std::uint8_t {
  kQueued,     ///< waiting in the scheduler's virtual host
  kCreating,   ///< being created on `host`
  kRunning,    ///< executing on `host`
  kMigrating,  ///< moving from `migration_source` to `host`
  kFinished,   ///< job completed
};

const char* to_string(VmState state) noexcept;

struct Vm {
  VmId id = 0;
  workload::Job job;
  VmState state = VmState::kQueued;

  /// Current host (destination host while migrating); kNoHost when queued.
  HostId host = kNoHost;
  /// Source host while migrating, kNoHost otherwise.
  HostId migration_source = kNoHost;

  /// CPU demand [%]; starts at job.cpu_pct, may be raised by dynamic SLA
  /// enforcement (section III-A.5) up to the host capacity.
  double cpu_demand_pct = 0;

  /// Dedicated-machine-equivalent seconds of work completed / checkpointed.
  double work_done_s = 0;
  double work_checkpointed_s = 0;

  /// Xen-allocated CPU [% of one core] from the latest reallocate(); feeds
  /// the energy ledger's per-VM share split. Only meaningful while
  /// kRunning.
  double alloc_cpu_pct = 0;

  /// Progress bookkeeping: work accrues at `progress_rate` (dedicated
  /// seconds per wall second, in [0,1]) since `last_progress_update`.
  double progress_rate = 0;
  sim::SimTime last_progress_update = 0;
  sim::EventId finish_event = sim::kNoEvent;

  sim::SimTime finished_at = -1;
  int restarts = 0;            ///< times requeued after a host failure
  int migrations = 0;

  [[nodiscard]] double remaining_work_s() const {
    const double r = job.dedicated_seconds - work_done_s;
    return r > 0 ? r : 0;
  }
  /// True while a creation or migration involving this VM is in flight
  /// (the Pvirt penalty bars any further action on it).
  [[nodiscard]] bool operation_in_progress() const {
    return state == VmState::kCreating || state == VmState::kMigrating;
  }
  [[nodiscard]] bool is_active() const {
    return state != VmState::kFinished;
  }
};

}  // namespace easched::datacenter
