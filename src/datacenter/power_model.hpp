// Electrical power model of a virtualized server.
//
// Section IV-A of the paper measures a 4-way Xen host and finds that power
// depends only on the *total* CPU consumed by the VMs, not on how many VMs
// consume it (Table I): 230 W idle, 259/273/291/304 W at 100/200/300/400 %
// CPU. We interpolate exactly those points, normalised by utilisation so
// the same curve applies to hosts with a different core count.
#pragma once

#include <vector>

namespace easched::datacenter {

class PowerModel {
 public:
  /// Builds a model from (utilisation in [0,1], watts) breakpoints sorted by
  /// utilisation; values between breakpoints are linearly interpolated,
  /// values beyond the last breakpoint are clamped. Requires at least one
  /// point and the first at utilisation 0 (the idle power).
  PowerModel(std::vector<std::pair<double, double>> points,
             double off_watts, double boot_watts);

  /// The measured curve of the paper's testbed machine (Table I), with
  /// 10 W standby when off and idle power while booting.
  static PowerModel table1();

  /// A load-independent machine (the paper warns these "should be avoided"
  /// because consolidation cannot save anything); used by tests and the
  /// energy-proportionality ablation.
  static PowerModel constant(double watts_on, double off_watts = 10);

  /// Power draw [W] while on, for `used_cpu_pct` of `capacity_pct` total
  /// CPU. Requires capacity_pct > 0; used_cpu_pct is clamped to
  /// [0, capacity_pct].
  [[nodiscard]] double watts_on(double used_cpu_pct,
                                double capacity_pct) const;

  /// Power draw [W] when powered off (standby).
  [[nodiscard]] double watts_off() const noexcept { return off_watts_; }

  /// Power draw [W] while booting or shutting down.
  [[nodiscard]] double watts_boot() const noexcept { return boot_watts_; }

  /// Idle (utilisation 0) power while on.
  [[nodiscard]] double watts_idle() const { return points_.front().second; }

 private:
  std::vector<std::pair<double, double>> points_;
  double off_watts_;
  double boot_watts_;
};

}  // namespace easched::datacenter
