// Static description of a physical machine.
//
// The evaluation datacenter (section V) mixes three node classes that
// differ in their virtualization overheads: 15 fast (Cc=30 s, Cm=40 s),
// 50 medium (Cc=40 s, Cm=60 s), 35 slow (Cc=60 s, Cm=80 s). All are 4-way
// machines following the Table I power curve.
#pragma once

#include <string>

#include "datacenter/power_model.hpp"
#include "workload/job.hpp"

namespace easched::datacenter {

struct HostSpec {
  std::string klass = "medium";   ///< node class label (fast/medium/slow/...)
  double cpu_capacity_pct = 400;  ///< total CPU [%]; 400 = 4 cores
  double mem_mb = 4096;           ///< physical memory [MB]

  double creation_cost_s = 40;    ///< Cc: mean VM creation time on this node
  double migration_cost_s = 60;   ///< Cm: mean VM migration time to this node
  double boot_time_s = 300;       ///< powered-off -> usable
  double shutdown_time_s = 10;    ///< usable -> powered-off

  /// Parallelism of the dom0 I/O channel: 1.0 means one management
  /// operation (creation/migration/checkpoint) runs at full speed and `n`
  /// concurrent ones each progress at 1/n (disk race, section III-A.3).
  double dom0_io_channels = 1.0;

  double reliability = 1.0;       ///< Frel in [0,1]: fraction of time up
  workload::Arch arch = workload::Arch::kX86_64;
  std::uint32_t software = workload::kSwXen;  ///< offered SoftwareFlags

  PowerModel power = PowerModel::table1();

  /// The three node classes of the paper's evaluation datacenter.
  static HostSpec fast();
  static HostSpec medium();
  static HostSpec slow();

  /// A wimpy low-power node (the "hybrid datacenter" idea of Chun et al.
  /// [5], cited in section II): half the cores and memory, a fraction of
  /// the wattage, slower virtualization operations.
  static HostSpec low_power();
};

inline HostSpec HostSpec::fast() {
  HostSpec s;
  s.klass = "fast";
  s.creation_cost_s = 30;
  s.migration_cost_s = 40;
  s.boot_time_s = 150;
  return s;
}

inline HostSpec HostSpec::medium() {
  HostSpec s;
  s.klass = "medium";
  s.creation_cost_s = 40;
  s.migration_cost_s = 60;
  s.boot_time_s = 300;
  return s;
}

inline HostSpec HostSpec::slow() {
  HostSpec s;
  s.klass = "slow";
  s.creation_cost_s = 60;
  s.migration_cost_s = 80;
  s.boot_time_s = 450;
  return s;
}

inline HostSpec HostSpec::low_power() {
  HostSpec s;
  s.klass = "low-power";
  s.cpu_capacity_pct = 200;
  s.mem_mb = 2048;
  s.creation_cost_s = 70;
  s.migration_cost_s = 90;
  s.boot_time_s = 60;  // small boards boot fast
  s.power = PowerModel{{{0.00, 38.0},
                        {0.50, 52.0},
                        {1.00, 64.0}},
                       /*off_watts=*/2.0,
                       /*boot_watts=*/38.0};
  return s;
}

}  // namespace easched::datacenter
