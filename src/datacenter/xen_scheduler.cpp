#include "datacenter/xen_scheduler.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace easched::datacenter {

XenAllocation allocate_cpu(double capacity_pct,
                           const std::vector<CpuDemand>& vms,
                           double mgmt_demand_pct) {
  EA_EXPECTS(capacity_pct > 0);
  EA_EXPECTS(mgmt_demand_pct >= 0);

  XenAllocation out;
  out.vm_alloc_pct.assign(vms.size(), 0.0);

  // dom0 management work preempts guest VCPUs.
  out.mgmt_alloc_pct = std::min(mgmt_demand_pct, capacity_pct);
  double remaining = capacity_pct - out.mgmt_alloc_pct;

  double total_demand = mgmt_demand_pct;
  for (const auto& vm : vms) {
    EA_EXPECTS(vm.demand_pct >= 0);
    EA_EXPECTS(vm.weight > 0);
    EA_EXPECTS(vm.cap_pct >= 0);
    total_demand +=
        vm.cap_pct > 0 ? std::min(vm.demand_pct, vm.cap_pct) : vm.demand_pct;
  }
  out.oversubscription =
      total_demand > capacity_pct ? total_demand / capacity_pct : 1.0;

  // Effective demand per VM (cap applied), then iterative water-filling:
  // every round distributes `remaining` proportionally to the weights of
  // unsatisfied VMs; VMs whose share exceeds their demand are clamped and
  // their surplus is redistributed next round. Terminates in <= n rounds
  // because each round satisfies at least one VM.
  std::vector<double> want(vms.size());
  std::vector<bool> satisfied(vms.size(), false);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    want[i] = vms[i].cap_pct > 0 ? std::min(vms[i].demand_pct, vms[i].cap_pct)
                                 : vms[i].demand_pct;
    if (want[i] == 0) satisfied[i] = true;
  }

  while (remaining > 1e-9) {
    double active_weight = 0;
    for (std::size_t i = 0; i < vms.size(); ++i)
      if (!satisfied[i]) active_weight += vms[i].weight;
    if (active_weight == 0) break;

    bool clamped_any = false;
    const double budget = remaining;
    for (std::size_t i = 0; i < vms.size(); ++i) {
      if (satisfied[i]) continue;
      const double share = budget * vms[i].weight / active_weight;
      const double missing = want[i] - out.vm_alloc_pct[i];
      if (share >= missing) {
        out.vm_alloc_pct[i] += missing;
        remaining -= missing;
        satisfied[i] = true;
        clamped_any = true;
      } else {
        out.vm_alloc_pct[i] += share;
        remaining -= share;
      }
    }
    if (!clamped_any) break;  // everyone took a proportional share; done
  }

  out.used_pct = out.mgmt_alloc_pct;
  for (double a : out.vm_alloc_pct) out.used_pct += a;
  EA_ENSURES(out.used_pct <= capacity_pct + 1e-6);
  return out;
}

}  // namespace easched::datacenter
