#include "datacenter/xen_scheduler.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace easched::datacenter {

XenAllocation allocate_cpu(double capacity_pct,
                           const std::vector<CpuDemand>& vms,
                           double mgmt_demand_pct) {
  XenScratch scratch;
  XenAllocation out;
  allocate_cpu(capacity_pct, vms, mgmt_demand_pct, scratch, out);
  return out;
}

void allocate_cpu(double capacity_pct, const std::vector<CpuDemand>& vms,
                  double mgmt_demand_pct, XenScratch& scratch,
                  XenAllocation& out) {
  EA_EXPECTS(capacity_pct > 0);
  EA_EXPECTS(mgmt_demand_pct >= 0);

  out.vm_alloc_pct.assign(vms.size(), 0.0);
  out.mgmt_alloc_pct = 0;
  out.used_pct = 0;
  out.oversubscription = 1.0;

  // dom0 management work preempts guest VCPUs.
  out.mgmt_alloc_pct = std::min(mgmt_demand_pct, capacity_pct);
  double remaining = capacity_pct - out.mgmt_alloc_pct;

  double total_demand = mgmt_demand_pct;
  for (const auto& vm : vms) {
    EA_EXPECTS(vm.demand_pct >= 0);
    EA_EXPECTS(vm.weight > 0);
    EA_EXPECTS(vm.cap_pct >= 0);
    total_demand +=
        vm.cap_pct > 0 ? std::min(vm.demand_pct, vm.cap_pct) : vm.demand_pct;
  }
  out.oversubscription =
      total_demand > capacity_pct ? total_demand / capacity_pct : 1.0;

  // Effective demand per VM (cap applied), then iterative water-filling:
  // every round distributes `remaining` proportionally to the weights of
  // unsatisfied VMs; VMs whose share exceeds their demand are clamped and
  // their surplus is redistributed next round. Terminates in <= n rounds
  // because each round satisfies at least one VM.
  //
  // Unsatisfied VMs are tracked in a compacted index list, so each round
  // costs O(active), not O(n): once a VM is satisfied it is never visited
  // again. The list stays in ascending VM index order and active_weight is
  // recomputed by summing over it, so every floating-point operation — and
  // therefore every golden trace — is identical to a full rescan.
  std::vector<double>& want = scratch.want;
  std::vector<std::size_t>& active = scratch.active;
  want.assign(vms.size(), 0.0);
  active.clear();
  active.reserve(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    want[i] = vms[i].cap_pct > 0 ? std::min(vms[i].demand_pct, vms[i].cap_pct)
                                 : vms[i].demand_pct;
    if (want[i] > 0) active.push_back(i);
  }

  while (remaining > 1e-9 && !active.empty()) {
    double active_weight = 0;
    for (const std::size_t i : active) active_weight += vms[i].weight;
    EA_ASSERT(active_weight > 0);  // weights are positive by precondition

    bool clamped_any = false;
    const double budget = remaining;
    std::size_t kept = 0;
    for (const std::size_t i : active) {
      const double share = budget * vms[i].weight / active_weight;
      const double missing = want[i] - out.vm_alloc_pct[i];
      if (share >= missing) {
        out.vm_alloc_pct[i] += missing;
        remaining -= missing;
        clamped_any = true;  // satisfied: compacted out of the active list
      } else {
        out.vm_alloc_pct[i] += share;
        remaining -= share;
        active[kept++] = i;
      }
    }
    active.resize(kept);
    if (!clamped_any) break;  // everyone took a proportional share; done
  }

  out.used_pct = out.mgmt_alloc_pct;
  for (double a : out.vm_alloc_pct) out.used_pct += a;
  EA_ENSURES(out.used_pct <= capacity_pct + 1e-6);
}

}  // namespace easched::datacenter
