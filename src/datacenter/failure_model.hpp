// Failure-time mathematics for the reliability extension (section III-A.6).
//
// A host's reliability factor Frel in [0,1] is "the amount of time the node
// is up". Together with a mean repair time this pins down the mean time
// between failures:  Frel = MTBF / (MTBF + MTTR)  =>  MTBF = MTTR * Frel /
// (1 - Frel). Failures strike only while the node is powered on; time to
// failure is exponential with mean MTBF.
#pragma once

#include "support/rng.hpp"

namespace easched::datacenter {

class FailureModel {
 public:
  /// `mean_repair_s` is the MTTR used to convert reliability into MTBF.
  explicit FailureModel(double mean_repair_s) : mttr_s_(mean_repair_s) {}

  /// MTBF implied by a reliability factor. The factor is clamped into
  /// [0, 1]; values >= 1 yield +inf (never fails) and values <= 0 bottom
  /// out at a one-second floor instead of the degenerate MTBF = 0.
  [[nodiscard]] double mtbf_s(double reliability) const;

  /// Draws the next time-to-failure [s] for a node of the given
  /// reliability; +inf for a perfectly reliable node, always > 0.
  double draw_time_to_failure(support::Rng& rng, double reliability) const;

  /// Draws a repair duration (exponential around MTTR).
  double draw_repair_time(support::Rng& rng) const;

  [[nodiscard]] double mttr_s() const noexcept { return mttr_s_; }

 private:
  double mttr_s_;
};

}  // namespace easched::datacenter
