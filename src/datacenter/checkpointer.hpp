// Checkpoint cadence for the fault-tolerance extension (section III-C: a
// VM restarted after a node failure "tries to recover it from the more
// recent checkpoint, and if there is not available checkpoint, it recreates
// the VM").
//
// Pure policy object: decides *when* a VM is due for a checkpoint; the
// Datacenter performs the actual snapshot (a short dom0 operation).
#pragma once

#include "sim/time.hpp"

namespace easched::datacenter {

struct CheckpointPolicy {
  bool enabled = false;
  sim::SimTime period_s = 1800;        ///< snapshot every 30 min of progress
  double duration_s = 10;              ///< dom0 busy time per snapshot
  double overhead_cpu_pct = 50;        ///< dom0 CPU while snapshotting

  /// A VM is due when it has accumulated at least `period_s` of work since
  /// its last checkpoint (work-based rather than wall-clock so a starved VM
  /// is not checkpointed repeatedly without new progress to save).
  [[nodiscard]] bool due(double work_done_s, double work_checkpointed_s) const {
    return enabled && work_done_s - work_checkpointed_s >= period_s;
  }
};

}  // namespace easched::datacenter
