// Runtime state of a physical machine.
//
// Power states: Off -> Booting -> On -> ShuttingDown -> Off, plus Failed
// (crash under the failure model; repairs return the node to Off). Only On
// hosts accept placements. Management operations (VM creation, incoming /
// outgoing migration legs, checkpoints) are tracked per host because they
// consume dom0 CPU and feed the paper's concurrency penalty Pconc.
#pragma once

#include <vector>

#include "datacenter/host_spec.hpp"
#include "datacenter/ids.hpp"
#include "sim/event_queue.hpp"

namespace easched::datacenter {

enum class HostState : std::uint8_t {
  kOff,
  kBooting,
  kOn,
  kShuttingDown,
  kFailed,
};

const char* to_string(HostState state) noexcept;

/// An in-flight management operation on a host.
///
/// Operations race for the host's dom0 I/O channel (the paper:
/// "performing more than one action at the same time can generate a race
/// for the resources (e.g. disk, CPU) which will add an additional
/// overhead", section III-A.3): `n` concurrently active operations each
/// progress at 1/n of full speed, so a creation drawn at 40 s takes 80 s
/// when another creation runs beside it. This is what the Pconc penalty
/// pays off against. A kMigrateOut leg is passive — the transfer is paced
/// by the receiving host — but still burns dom0 CPU on the source.
struct Operation {
  enum class Kind : std::uint8_t {
    kCreate,       ///< creating `vm` here
    kMigrateIn,    ///< receiving `vm`
    kMigrateOut,   ///< sending `vm` away (passive leg)
    kCheckpoint,   ///< checkpointing `vm`
  };
  Kind kind = Kind::kCreate;
  VmId vm = 0;
  double overhead_cpu_pct = 0;  ///< dom0 CPU consumed while in flight
  sim::SimTime started = 0;
  sim::SimTime ends = 0;        ///< projected completion (updated on stretch)
  sim::EventId event = sim::kNoEvent;

  // Fault-injection state (see faults/fault_injector.hpp). A hung op burns
  // dom0 CPU but makes no progress and schedules no completion — only its
  // deadline can end it. An op with injected_fail set completes its
  // (shortened) work and then takes the failure path instead of the
  // success path.
  bool hung = false;
  bool injected_fail = false;
  sim::EventId deadline_event = sim::kNoEvent;  ///< abort-at-timeout

  // I/O-channel progress bookkeeping (active ops only).
  double work_s = 0;            ///< full-speed duration drawn at start
  double done_s = 0;            ///< progressed work
  double rate = 1.0;            ///< current speed (1 = full)
  sim::SimTime last_update = 0;

  /// Whether this operation competes for the dom0 I/O channel.
  [[nodiscard]] bool io_active() const {
    return kind != Kind::kMigrateOut;
  }
  [[nodiscard]] double remaining_s() const {
    const double r = work_s - done_s;
    return r > 0 ? r : 0;
  }
};

struct Host {
  HostId id = 0;
  HostSpec spec;
  HostState state = HostState::kOff;
  /// Maintenance (drain) mode: the host accepts no new placements; the
  /// driver migrates its residents away and powers it off once empty.
  bool maintenance = false;
  /// Quarantine (degraded mode): the host exceeded its failure budget and
  /// is excluded from placement and power-on choices until the cooldown
  /// un-quarantines it; the driver evacuates its residents meanwhile.
  bool quarantined = false;

  /// VMs assigned here: Creating, Running, and incoming Migrating VMs.
  /// (An outgoing migration keeps only a memory reservation, tracked via
  /// the kMigrateOut operation.)
  std::vector<VmId> residents;
  std::vector<Operation> ops;

  double used_cpu_pct = 0;  ///< current allocation total (drives power)
  sim::EventId transition_event = sim::kNoEvent;  ///< boot/shutdown end
  sim::EventId boot_deadline_event = sim::kNoEvent;  ///< failed-to-start watchdog

  // Failure-budget bookkeeping for the quarantine state machine: faults
  // attributed to this host within the sliding window, and the pending
  // cooldown event while quarantined.
  int fault_count = 0;
  sim::SimTime fault_window_start = 0;
  sim::EventId unquarantine_event = sim::kNoEvent;

  [[nodiscard]] bool is_online() const {
    return state == HostState::kOn || state == HostState::kBooting;
  }
  /// Accepts new placements / incoming migrations.
  [[nodiscard]] bool is_placeable() const {
    return state == HostState::kOn && !maintenance && !quarantined;
  }
  /// "Working" in the paper's sense: executing at least one VM (we include
  /// hosts busy with management operations, which also keep them non-idle).
  [[nodiscard]] bool is_working() const {
    return !residents.empty() || !ops.empty();
  }
  /// Eligible for a power-off decision.
  [[nodiscard]] bool is_idle_on() const {
    return state == HostState::kOn && residents.empty() && ops.empty();
  }
  [[nodiscard]] std::size_t vm_count() const { return residents.size(); }

  /// Aggregate dom0 demand of in-flight operations.
  [[nodiscard]] double mgmt_demand_pct() const {
    double d = 0;
    for (const auto& op : ops) d += op.overhead_cpu_pct;
    return d;
  }
};

}  // namespace easched::datacenter
