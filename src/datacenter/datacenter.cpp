#include "datacenter/datacenter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "datacenter/xen_scheduler.hpp"
#include "faults/fault_injector.hpp"
#include "obs/obs.hpp"
#include "resilience/resilience.hpp"
#include "support/contracts.hpp"
#include "validate/validate.hpp"
#include "support/distributions.hpp"
#include "workload/satisfaction.hpp"

namespace easched::datacenter {

namespace {
constexpr double kEps = 1e-9;
/// Slack tolerated when asserting a finish event hit zero remaining work.
constexpr double kFinishSlack = 1e-3;

const char* outcome_name(faults::FaultOutcome::Kind k) {
  switch (k) {
    case faults::FaultOutcome::Kind::kNone: return "none";
    case faults::FaultOutcome::Kind::kFail: return "fail";
    case faults::FaultOutcome::Kind::kHang: return "hang";
    case faults::FaultOutcome::Kind::kSlow: return "slow";
  }
  return "?";
}
}  // namespace

Datacenter::Datacenter(sim::Simulator& simulator, DatacenterConfig config,
                       metrics::Recorder& recorder)
    : sim_(simulator),
      config_(std::move(config)),
      recorder_(recorder),
      rng_(config_.seed),
      failure_model_(config_.mean_repair_s) {
  EA_EXPECTS(!config_.hosts.empty());
  EA_EXPECTS(recorder_.watts.size() == config_.hosts.size());
  hosts_.resize(config_.hosts.size());
  failure_events_.assign(config_.hosts.size(), sim::kNoEvent);
  fleet_dirty_flag_.assign(config_.hosts.size(), 0);
  const std::size_t on_count =
      std::min(config_.initially_on, config_.hosts.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i].id = static_cast<HostId>(i);
    hosts_[i].spec = config_.hosts[i];
    hosts_[i].state = i < on_count ? HostState::kOn : HostState::kOff;
    update_power(hosts_[i]);
    if (config_.inject_failures && hosts_[i].state == HostState::kOn) {
      schedule_failure(hosts_[i].id);
    }
  }
  update_node_counters();

  if (config_.checkpoint.enabled) {
    // Periodic scan; work-based due check in maybe_checkpoint().
    sim_.every(std::max(config_.checkpoint.period_s / 2.0, 1.0), [this] {
      for (auto& v : vms_) {
        if (v.state == VmState::kRunning) maybe_checkpoint(v);
      }
    });
  }
}

const Host& Datacenter::host(HostId h) const {
  EA_EXPECTS(h < hosts_.size());
  return hosts_[h];
}

Host& Datacenter::host_mut(HostId h) {
  EA_EXPECTS(h < hosts_.size());
  return hosts_[h];
}

const Vm& Datacenter::vm(VmId v) const {
  EA_EXPECTS(v < vms_.size());
  return vms_[v];
}

Vm& Datacenter::vm_mut(VmId v) {
  EA_EXPECTS(v < vms_.size());
  return vms_[v];
}

int Datacenter::online_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.is_online() ? 1 : 0;
  return n;
}

int Datacenter::working_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.is_working() ? 1 : 0;
  return n;
}

int Datacenter::offline_available_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.state == HostState::kOff ? 1 : 0;
  return n;
}

int Datacenter::booting_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.state == HostState::kBooting ? 1 : 0;
  return n;
}

int Datacenter::failed_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.state == HostState::kFailed ? 1 : 0;
  return n;
}

std::size_t Datacenter::placed_vm_count() const {
  std::size_t n = 0;
  for (const auto& h : hosts_) n += h.vm_count();
  return n;
}

double Datacenter::reserved_cpu_pct(HostId h) const {
  const Host& host = hosts_[h];
  double cpu = 0;
  for (VmId v : host.residents) cpu += vms_[v].cpu_demand_pct;
  return cpu;
}

double Datacenter::reserved_mem_mb(HostId h) const {
  const Host& host = hosts_[h];
  double mem = 0;
  for (VmId v : host.residents) mem += vms_[v].job.mem_mb;
  // Outgoing migrations keep their memory pinned until the transfer ends.
  for (const auto& op : host.ops) {
    if (op.kind == Operation::Kind::kMigrateOut) mem += vms_[op.vm].job.mem_mb;
  }
  return mem;
}

double Datacenter::occupation(HostId h) const {
  const Host& host = hosts_[h];
  return std::max(reserved_cpu_pct(h) / host.spec.cpu_capacity_pct,
                  reserved_mem_mb(h) / host.spec.mem_mb);
}

double Datacenter::occupation_if(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  const Vm& m = vms_[v];
  double cpu = reserved_cpu_pct(h);
  double mem = reserved_mem_mb(h);
  if (m.host != h) {
    cpu += m.state == VmState::kRunning ? m.cpu_demand_pct : m.job.cpu_pct;
    mem += m.job.mem_mb;
  }
  return std::max(cpu / host.spec.cpu_capacity_pct, mem / host.spec.mem_mb);
}

bool Datacenter::hw_sw_ok(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  const workload::Job& job = vms_[v].job;
  if (host.spec.arch != job.arch) return false;
  return (host.spec.software & job.software) == job.software;
}

bool Datacenter::placeable(HostId h) const {
  if (!hosts_[h].is_placeable()) return false;
  // may_veto_placement() keeps this per-cell hot path to an inline flag
  // test while every breaker is healthy.
  if (auto* rc = resilience::controller(recorder_)) {
    if (rc->may_veto_placement() && !rc->allows_placement(h, sim_.now())) {
      return false;
    }
  }
  return true;
}

bool Datacenter::fits(HostId h, VmId v) const {
  if (!placeable(h)) return false;
  if (!hw_sw_ok(h, v)) return false;
  return occupation_if(h, v) <= 1.0 + kEps;
}

bool Datacenter::fits_memory(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  if (!placeable(h)) return false;
  if (!hw_sw_ok(h, v)) return false;
  const Vm& m = vms_[v];
  double mem = reserved_mem_mb(h);
  if (m.host != h) mem += m.job.mem_mb;
  return mem <= host.spec.mem_mb + kEps;
}

double Datacenter::projected_rate(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  const Vm& m = vms_[v];
  const double demand_v =
      m.state == VmState::kRunning ? m.cpu_demand_pct : m.job.cpu_pct;
  double total = host.mgmt_demand_pct();
  bool counted = false;
  for (VmId r : host.residents) {
    const Vm& rv = vms_[r];
    if (rv.state != VmState::kRunning) continue;
    total += rv.cpu_demand_pct;
    if (r == v) counted = true;
  }
  if (!counted) total += demand_v;
  if (total <= host.spec.cpu_capacity_pct || total <= 0) return 1.0;
  const double over = total / host.spec.cpu_capacity_pct;
  const double share = host.spec.cpu_capacity_pct / total;
  const double eff = 1.0 / (1.0 + config_.contention_penalty * (over - 1.0));
  return share * eff;
}

std::vector<VmId> Datacenter::active_vms() const {
  std::vector<VmId> out;
  out.reserve(vms_.size());
  for (const auto& v : vms_) {
    if (v.is_active()) out.push_back(v.id);
  }
  return out;
}

VmId Datacenter::admit_job(const workload::Job& job) {
  Vm v;
  v.id = static_cast<VmId>(vms_.size());
  v.job = job;
  v.state = VmState::kQueued;
  v.cpu_demand_pct = job.cpu_pct;
  v.last_progress_update = sim_.now();
  if (auto* el = obs::ledger(recorder_)) {
    el->note_vm(v.id, job.cpu_pct);
  }
  vms_.push_back(std::move(v));
  return vms_.back().id;
}

double Datacenter::draw_duration(double mean_s) {
  return support::truncated_normal(
      rng_, mean_s, mean_s * config_.duration_sigma_ratio, 1.0);
}

void Datacenter::integrate_progress(Vm& v) {
  const sim::SimTime t = sim_.now();
  if (v.state == VmState::kRunning && v.progress_rate > 0) {
    v.work_done_s += v.progress_rate * (t - v.last_progress_update);
    v.work_done_s = std::min(v.work_done_s, v.job.dedicated_seconds);
  }
  v.last_progress_update = t;
}

void Datacenter::reschedule_finish(Vm& v) {
  sim_.cancel(v.finish_event);
  v.finish_event = sim::kNoEvent;
  if (v.state != VmState::kRunning || v.progress_rate <= 0) return;
  const double remaining = v.remaining_work_s();
  const VmId id = v.id;
  v.finish_event =
      sim_.after(remaining / v.progress_rate, [this, id] { finish_vm(id); });
}

void Datacenter::reallocate_io(HostId h) {
  Host& host = hosts_[h];
  const sim::SimTime t = sim_.now();
  mark_fleet_dirty(h);  // operation set / progress schedule changes

  // 1. Integrate progress of the active operations at their old rates.
  // A hung operation holds its channel slot (a wedged transfer still
  // occupies dom0) but accrues no progress and completes only through its
  // deadline abort.
  int active = 0;
  for (auto& op : host.ops) {
    if (!op.io_active()) continue;
    if (!op.hung) {
      op.done_s += op.rate * (t - op.last_update);
      op.done_s = std::min(op.done_s, op.work_s);
    }
    op.last_update = t;
    ++active;
  }
  if (active == 0) return;

  // 2. Equal shares of the dom0 I/O channel, capped at full speed.
  const double rate =
      std::min(1.0, host.spec.dom0_io_channels / active);

  // 3. Reschedule every active operation's completion.
  for (auto& op : host.ops) {
    if (!op.io_active()) continue;
    if (op.hung) {
      op.rate = 0;
      continue;  // `ends` stays at the abort deadline set when armed
    }
    op.rate = rate;
    sim_.cancel(op.event);
    const double eta = op.remaining_s() / rate;
    op.ends = t + eta;
    const Operation::Kind kind = op.kind;
    const VmId v = op.vm;
    op.event =
        sim_.after(eta, [this, h, kind, v] { complete_operation(h, kind, v); });
  }
}

void Datacenter::complete_operation(HostId h, Operation::Kind kind, VmId v) {
  // An operation with an injected failure runs its (shortened) course and
  // then takes the failure path — a migration that dies at switchover, a
  // creation that fails its health check.
  if (const Operation* op = find_op(hosts_[h], kind, v);
      op != nullptr && op->injected_fail) {
    fail_operation(h, kind, v, /*timed_out=*/false);
    return;
  }
  switch (kind) {
    case Operation::Kind::kCreate:
      complete_creation(h, v);
      break;
    case Operation::Kind::kMigrateIn:
      complete_migration(vm(v).migration_source, h, v);
      break;
    case Operation::Kind::kCheckpoint:
      complete_checkpoint(h, v);
      break;
    case Operation::Kind::kMigrateOut:
      EA_ASSERT(false);  // passive leg never schedules an event
      break;
  }
}

void Datacenter::reallocate(HostId h) {
  Host& host = hosts_[h];
  // Every resident/reservation/demand change funnels through here, so one
  // mark covers the bulk of the fleet dirty protocol.
  mark_fleet_dirty(h);

  // 1. Integrate progress of everything currently running here.
  for (VmId r : host.residents) integrate_progress(vms_[r]);

  // 2. Compute the new shares for the running residents. The scratch
  // vectors live on the Datacenter (reallocate never re-enters itself), so
  // the hottest event-kernel path stops allocating.
  std::vector<CpuDemand>& demands = xen_demands_;
  std::vector<VmId>& running = xen_running_;
  demands.clear();
  running.clear();
  demands.reserve(host.residents.size());
  for (VmId r : host.residents) {
    const Vm& rv = vms_[r];
    if (rv.state != VmState::kRunning) continue;
    demands.push_back({rv.cpu_demand_pct,
                       static_cast<double>(rv.job.weight), 0.0});
    running.push_back(r);
  }
  allocate_cpu(host.spec.cpu_capacity_pct, demands, host.mgmt_demand_pct(),
               xen_scratch_, xen_alloc_);
  const XenAllocation& alloc = xen_alloc_;
  double guest_demand = 0;
  for (const auto& d : demands) guest_demand += d.demand_pct;
  recorder_.max_oversubscription =
      std::max(recorder_.max_oversubscription,
               guest_demand / host.spec.cpu_capacity_pct);
  const double eff =
      1.0 / (1.0 + config_.contention_penalty * (alloc.oversubscription - 1.0));

  // 3. Update rates and projected finish events.
  for (std::size_t i = 0; i < running.size(); ++i) {
    Vm& rv = vms_[running[i]];
    const double demand = std::max(rv.cpu_demand_pct, kEps);
    rv.alloc_cpu_pct = alloc.vm_alloc_pct[i];
    rv.progress_rate = alloc.vm_alloc_pct[i] / demand * eff;
    reschedule_finish(rv);
  }

  // 4. Re-derive power from the new total CPU usage.
  host.used_cpu_pct = host.state == HostState::kOn ? alloc.used_pct : 0.0;
  update_power(host);
}

void Datacenter::update_power(Host& h) {
  double watts = 0;
  double cpu = 0;
  switch (h.state) {
    case HostState::kOn:
      watts = h.spec.power.watts_on(h.used_cpu_pct, h.spec.cpu_capacity_pct);
      cpu = h.used_cpu_pct;
      break;
    case HostState::kBooting:
    case HostState::kShuttingDown:
      watts = h.spec.power.watts_boot();
      break;
    case HostState::kOff:
    case HostState::kFailed:
      watts = h.spec.power.watts_off();
      break;
  }
  recorder_.watts.set(sim_.now(), h.id, watts);
  recorder_.cpu_pct.set(sim_.now(), h.id, cpu);

  if (auto* el = obs::ledger(recorder_)) {
    // Hand the ledger the same wattage, decomposed by state so it can
    // bucket joules and split the load share across the running residents.
    obs::EnergySample sample;
    switch (h.state) {
      case HostState::kOn: {
        sample.idle_w = std::min(watts, h.spec.power.watts_idle());
        sample.load_w = watts - sample.idle_w;
        sample.used_cpu_pct = h.used_cpu_pct;
        sample.shares.reserve(h.residents.size());
        for (VmId r : h.residents) {
          const Vm& rv = vms_[r];
          if (rv.state != VmState::kRunning || rv.alloc_cpu_pct <= 0) {
            continue;
          }
          sample.shares.push_back({rv.id, rv.alloc_cpu_pct});
        }
        break;
      }
      case HostState::kBooting:
      case HostState::kShuttingDown:
        sample.boot_w = watts;
        break;
      case HostState::kOff:
      case HostState::kFailed:
        sample.off_w = watts;
        break;
    }
    el->set_host_power(sim_.now(), static_cast<std::size_t>(h.id),
                       std::move(sample));
  }
}

void Datacenter::update_node_counters() {
  recorder_.working.set(sim_.now(), working_count());
  recorder_.online.set(sim_.now(), online_count());
}

void Datacenter::remove_resident(Host& h, VmId v) {
  const auto it = std::find(h.residents.begin(), h.residents.end(), v);
  EA_ASSERT(it != h.residents.end());
  h.residents.erase(it);
}

void Datacenter::remove_op(Host& h, Operation::Kind kind, VmId v) {
  const auto it =
      std::find_if(h.ops.begin(), h.ops.end(), [&](const Operation& op) {
        return op.kind == kind && op.vm == v;
      });
  EA_ASSERT(it != h.ops.end());
  sim_.cancel(it->event);
  sim_.cancel(it->deadline_event);
  h.ops.erase(it);
}

Operation* Datacenter::find_op(Host& h, Operation::Kind kind, VmId v) {
  const auto it =
      std::find_if(h.ops.begin(), h.ops.end(), [&](const Operation& op) {
        return op.kind == kind && op.vm == v;
      });
  return it == h.ops.end() ? nullptr : &*it;
}

void Datacenter::place(VmId v, HostId h) {
  Vm& m = vm_mut(v);
  Host& host = host_mut(h);
  EA_EXPECTS(m.state == VmState::kQueued);
  EA_EXPECTS(host.state == HostState::kOn);
  EA_EXPECTS(fits_memory(h, v));

  m.state = VmState::kCreating;
  m.host = h;
  m.cpu_demand_pct = m.job.cpu_pct;
  host.residents.push_back(v);

  Operation op;
  op.kind = Operation::Kind::kCreate;
  op.vm = v;
  op.overhead_cpu_pct = config_.creation_overhead_cpu_pct;
  op.started = sim_.now();
  op.last_update = sim_.now();
  op.work_s = draw_duration(host.spec.creation_cost_s);
  apply_injection(op, faults::FaultOp::kCreate, h);
  host.ops.push_back(op);
  arm_op_deadline(h, host.spec.creation_cost_s);
  ++recorder_.counts.creations;
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_op_start(h, sim_.now());
  }
  if (auto* tr = obs::tracer(recorder_)) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kCreateStart);
    e.vm = v;
    e.host = h;
  }

  reallocate_io(h);
  reallocate(h);
  update_node_counters();
}

void Datacenter::complete_creation(HostId h, VmId v) {
  Vm& m = vm_mut(v);
  Host& host = host_mut(h);
  EA_ASSERT(m.state == VmState::kCreating && m.host == h);
  if (auto* tr = obs::tracer(recorder_)) {
    sim::SimTime started = sim_.now();
    if (const Operation* op = find_op(host, Operation::Kind::kCreate, v)) {
      started = op->started;
    }
    auto& e = tr->span(started, sim_.now(), obs::EventKind::kVmReady);
    e.vm = v;
    e.host = h;
  }
  // Do not cancel our own (already fired) event: remove_op cancels a
  // kNoEvent-safe handle because cancel() ignores fired events.
  remove_op(host, Operation::Kind::kCreate, v);
  m.state = VmState::kRunning;
  m.last_progress_update = sim_.now();
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_op_success(h, sim_.now());
  }
  reallocate_io(h);
  reallocate(h);
  update_node_counters();
  if (on_vm_ready) on_vm_ready(v);
}

void Datacenter::migrate(VmId v, HostId to) {
  Vm& m = vm_mut(v);
  Host& dst = host_mut(to);
  EA_EXPECTS(m.state == VmState::kRunning);
  EA_EXPECTS(dst.state == HostState::kOn);
  EA_EXPECTS(m.host != to);
  EA_EXPECTS(fits_memory(to, v));
  const HostId from = m.host;
  Host& src = host_mut(from);

  // Freeze execution on the source for the duration of the transfer.
  integrate_progress(m);
  m.progress_rate = 0;
  sim_.cancel(m.finish_event);
  m.finish_event = sim::kNoEvent;
  remove_resident(src, v);

  m.state = VmState::kMigrating;
  m.migration_source = from;
  m.host = to;
  dst.residents.push_back(v);

  const double duration = draw_duration(dst.spec.migration_cost_s);
  Operation out_op;
  out_op.kind = Operation::Kind::kMigrateOut;
  out_op.vm = v;
  out_op.overhead_cpu_pct = config_.migration_overhead_cpu_pct;
  out_op.started = sim_.now();
  out_op.last_update = sim_.now();
  out_op.work_s = duration;
  out_op.ends = sim_.now() + duration;  // paced by the receiver in reality
  src.ops.push_back(out_op);

  Operation in_op = out_op;
  in_op.kind = Operation::Kind::kMigrateIn;
  // Injection is attributed to the destination: it paces the transfer, so
  // a lemon destination makes migrations into it flaky. Only the active
  // (in) leg carries the flags; the passive out leg just burns dom0 CPU.
  apply_injection(in_op, faults::FaultOp::kMigrate, to);
  dst.ops.push_back(in_op);
  arm_op_deadline(to, dst.spec.migration_cost_s);

  ++recorder_.counts.migrations;
  ++m.migrations;
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_op_start(to, sim_.now());
  }
  if (auto* tr = obs::tracer(recorder_)) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kMigrateStart);
    e.vm = v;
    e.host = to;
    e.host2 = from;
  }

  reallocate_io(to);
  reallocate(from);
  reallocate(to);
  update_node_counters();
}

void Datacenter::complete_migration(HostId from, HostId to, VmId v) {
  Vm& m = vm_mut(v);
  EA_ASSERT(m.state == VmState::kMigrating && m.host == to &&
            m.migration_source == from);
  if (auto* tr = obs::tracer(recorder_)) {
    sim::SimTime started = sim_.now();
    if (const Operation* op =
            find_op(host_mut(to), Operation::Kind::kMigrateIn, v)) {
      started = op->started;
    }
    auto& e = tr->span(started, sim_.now(), obs::EventKind::kMigrateDone);
    e.vm = v;
    e.host = to;
    e.host2 = from;
  }
  remove_op(host_mut(from), Operation::Kind::kMigrateOut, v);
  remove_op(host_mut(to), Operation::Kind::kMigrateIn, v);
  m.state = VmState::kRunning;
  m.migration_source = kNoHost;
  m.last_progress_update = sim_.now();
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_op_success(to, sim_.now());
  }
  reallocate_io(to);
  reallocate(from);
  reallocate(to);
  update_node_counters();
  if (on_migration_done) on_migration_done(v);
}

void Datacenter::finish_vm(VmId v) {
  Vm& m = vm_mut(v);
  EA_ASSERT(m.state == VmState::kRunning);
  integrate_progress(m);
  EA_ASSERT(m.remaining_work_s() <= kFinishSlack);
  m.work_done_s = m.job.dedicated_seconds;
  m.state = VmState::kFinished;
  m.finished_at = sim_.now();
  m.finish_event = sim::kNoEvent;
  m.progress_rate = 0;

  const double exec = m.finished_at - m.job.submit;
  metrics::JobRecord rec;
  rec.vm = v;
  rec.submit = m.job.submit;
  rec.finish = m.finished_at;
  rec.dedicated_seconds = m.job.dedicated_seconds;
  rec.deadline_seconds = m.job.deadline_seconds();
  rec.satisfaction = workload::satisfaction(exec, rec.deadline_seconds);
  rec.delay_pct = workload::delay_pct(exec, rec.dedicated_seconds);
  rec.cpu_pct = m.job.cpu_pct;
  recorder_.jobs.add(rec);
  if (auto* tr = obs::tracer(recorder_)) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kJobFinished);
    e.vm = v;
    e.host = m.host;
    e.arg("satisfaction", rec.satisfaction).arg("delay_pct", rec.delay_pct);
  }

  const HostId h = m.host;
  remove_resident(host_mut(h), v);
  m.host = kNoHost;
  reallocate(h);
  update_node_counters();
  if (on_vm_finished) on_vm_finished(v);
}

void Datacenter::maybe_checkpoint(Vm& v) {
  if (!config_.checkpoint.due(v.work_done_s, v.work_checkpointed_s)) {
    // Integrate first so the due check sees current progress.
    integrate_progress(v);
    if (!config_.checkpoint.due(v.work_done_s, v.work_checkpointed_s)) return;
  }
  Host& host = host_mut(v.host);
  // Skip when a checkpoint of this VM is already in flight.
  for (const auto& op : host.ops) {
    if (op.kind == Operation::Kind::kCheckpoint && op.vm == v.id) return;
  }
  Operation op;
  op.kind = Operation::Kind::kCheckpoint;
  op.vm = v.id;
  op.overhead_cpu_pct = config_.checkpoint.overhead_cpu_pct;
  op.started = sim_.now();
  op.last_update = sim_.now();
  op.work_s = config_.checkpoint.duration_s;
  apply_injection(op, faults::FaultOp::kCheckpoint, v.host);
  host.ops.push_back(op);
  arm_op_deadline(v.host, config_.checkpoint.duration_s);
  reallocate_io(v.host);
  reallocate(v.host);
  update_node_counters();
}

void Datacenter::complete_checkpoint(HostId h, VmId v) {
  Vm& m = vm_mut(v);
  remove_op(host_mut(h), Operation::Kind::kCheckpoint, v);
  if (m.state == VmState::kRunning && m.host == h) {
    integrate_progress(m);
    m.work_checkpointed_s = m.work_done_s;
    ++recorder_.counts.checkpoints;
  }
  reallocate_io(h);
  reallocate(h);
  update_node_counters();
}

void Datacenter::set_maintenance(HostId h, bool on) {
  host_mut(h).maintenance = on;
  mark_fleet_dirty(h);  // placeability flip
}

void Datacenter::power_on(HostId h) {
  Host& host = host_mut(h);
  EA_EXPECTS(host.state == HostState::kOff);
  set_host_state(host, HostState::kBooting);
  update_power(host);
  ++recorder_.counts.turn_ons;
  const sim::SimTime boot_began = sim_.now();
  if (auto* tr = obs::tracer(recorder_)) {
    tr->emit(boot_began, obs::EventKind::kPowerOn).host = h;
  }

  double boot_s = host.spec.boot_time_s;
  bool boot_will_fail = false;
  bool boot_hangs = false;
  if (config_.fault_injector != nullptr) {
    const faults::FaultOutcome out =
        config_.fault_injector->decide(faults::FaultOp::kPowerOn, h, sim_.now());
    if (out.kind != faults::FaultOutcome::Kind::kNone) {
      if (auto* tr = obs::tracer(recorder_)) {
        auto& e = tr->emit(sim_.now(), obs::EventKind::kFaultInjected);
        e.host = h;
        e.label = outcome_name(out.kind);
      }
    }
    switch (out.kind) {
      case faults::FaultOutcome::Kind::kNone:
        break;
      case faults::FaultOutcome::Kind::kFail:
        // Boot runs part way and dies (kernel panic, POST failure).
        boot_s = std::max(1.0, boot_s * out.fail_fraction);
        boot_will_fail = true;
        break;
      case faults::FaultOutcome::Kind::kHang:
        boot_hangs = true;  // only the boot deadline ends this
        break;
      case faults::FaultOutcome::Kind::kSlow:
        boot_s *= out.slow_factor;
        break;
    }
    // Failed-to-start watchdog: a host not On by the deadline is declared
    // boot-failed and returned to Off.
    const double deadline_s =
        config_.fault_injector->plan().op_timeout_factor *
        host.spec.boot_time_s;
    host.boot_deadline_event =
        sim_.after(deadline_s, [this, h] { boot_failed(h); });
  }
  if (!boot_hangs) {
    host.transition_event =
        sim_.after(boot_s, [this, h, boot_will_fail, boot_began] {
      Host& hh = host_mut(h);
      hh.transition_event = sim::kNoEvent;
      if (boot_will_fail) {
        boot_failed(h);
        return;
      }
      sim_.cancel(hh.boot_deadline_event);
      hh.boot_deadline_event = sim::kNoEvent;
      set_host_state(hh, HostState::kOn);
      update_power(hh);
      if (auto* tr = obs::tracer(recorder_)) {
        tr->span(boot_began, sim_.now(), obs::EventKind::kHostOnline).host = h;
      }
      if (config_.inject_failures) schedule_failure(h);
      update_node_counters();
      if (on_host_online) on_host_online(h);
    });
  }
  update_node_counters();
}

void Datacenter::power_off(HostId h) {
  Host& host = host_mut(h);
  EA_EXPECTS(host.is_idle_on());
  cancel_failure(h);
  set_host_state(host, HostState::kShuttingDown);
  update_power(host);
  ++recorder_.counts.turn_offs;
  const sim::SimTime shutdown_began = sim_.now();
  if (auto* tr = obs::tracer(recorder_)) {
    tr->emit(shutdown_began, obs::EventKind::kPowerOff).host = h;
  }

  double shutdown_s = host.spec.shutdown_time_s;
  bool off_fails = false;
  if (config_.fault_injector != nullptr) {
    const faults::FaultOutcome out = config_.fault_injector->decide(
        faults::FaultOp::kPowerOff, h, sim_.now());
    if (out.kind != faults::FaultOutcome::Kind::kNone) {
      if (auto* tr = obs::tracer(recorder_)) {
        auto& e = tr->emit(sim_.now(), obs::EventKind::kFaultInjected);
        e.host = h;
        e.label = outcome_name(out.kind);
      }
    }
    switch (out.kind) {
      case faults::FaultOutcome::Kind::kNone:
        break;
      case faults::FaultOutcome::Kind::kFail:
        shutdown_s = std::max(1.0, shutdown_s * out.fail_fraction);
        off_fails = true;
        break;
      case faults::FaultOutcome::Kind::kHang:
        // A wedged shutdown lingers until the timeout, then is abandoned
        // with the host still up.
        off_fails = true;
        shutdown_s =
            config_.fault_injector->plan().op_timeout_factor * shutdown_s;
        break;
      case faults::FaultOutcome::Kind::kSlow:
        shutdown_s *= out.slow_factor;
        break;
    }
  }
  host.transition_event =
      sim_.after(shutdown_s, [this, h, off_fails, shutdown_began] {
    Host& hh = host_mut(h);
    hh.transition_event = sim::kNoEvent;
    if (off_fails) {
      // Shutdown failed: the host is still drawing power and reports back
      // online so the power controller can fold it into future decisions.
      set_host_state(hh, HostState::kOn);
      update_power(hh);
      ++recorder_.counts.op_failures;
      record_fault_event("power-off-failed host=%u",
                         static_cast<unsigned>(h));
      if (auto* tr = obs::tracer(recorder_)) {
        auto& e = tr->emit(sim_.now(), obs::EventKind::kOpFailed);
        e.host = h;
        e.label = "power_off";
      }
      note_host_fault(h);
      if (config_.inject_failures) schedule_failure(h);
      update_node_counters();
      if (on_operation_failed)
        on_operation_failed(faults::FaultOp::kPowerOff, kNoVm, h,
                            /*timed_out=*/false);
      if (on_host_online) on_host_online(h);
      return;
    }
    set_host_state(hh, HostState::kOff);
    update_power(hh);
    if (auto* tr = obs::tracer(recorder_)) {
      tr->span(shutdown_began, sim_.now(), obs::EventKind::kHostOff).host = h;
    }
    update_node_counters();
    if (on_host_off) on_host_off(h);
  });
  update_node_counters();
}

void Datacenter::boost_demand(VmId v, double new_demand_pct) {
  Vm& m = vm_mut(v);
  if (m.state != VmState::kRunning) return;
  Host& host = host_mut(m.host);
  const double clamped =
      std::clamp(new_demand_pct, m.job.cpu_pct, host.spec.cpu_capacity_pct);
  if (clamped == m.cpu_demand_pct) return;
  m.cpu_demand_pct = clamped;
  reallocate(m.host);
}

void Datacenter::boost_weight(VmId v, double factor) {
  EA_EXPECTS(factor >= 1.0);
  Vm& m = vm_mut(v);
  const double boosted = std::min(m.job.weight * factor, 65536.0);
  m.job.weight = static_cast<std::uint32_t>(boosted);
  if (m.state == VmState::kRunning) reallocate(m.host);
}

void Datacenter::schedule_failure(HostId h) {
  const Host& host = hosts_[h];
  const double ttf =
      failure_model_.draw_time_to_failure(rng_, host.spec.reliability);
  if (!std::isfinite(ttf)) return;
  sim_.cancel(failure_events_[h]);
  failure_events_[h] = sim_.after(ttf, [this, h] { fail_host(h); });
}

void Datacenter::cancel_failure(HostId h) {
  sim_.cancel(failure_events_[h]);
  failure_events_[h] = sim::kNoEvent;
}

void Datacenter::fail_host(HostId h) {
  Host& host = host_mut(h);
  EA_ASSERT(host.state == HostState::kOn);
  failure_events_[h] = sim::kNoEvent;
  sim_.cancel(host.transition_event);
  host.transition_event = sim::kNoEvent;

  // Requeue every VM assigned here, restoring checkpointed progress. A VM
  // migrating *into* this host also loses its transfer; drop the matching
  // migrate-out leg on the (still alive) source.
  std::vector<VmId> lost = host.residents;
  for (VmId v : lost) {
    Vm& m = vm_mut(v);
    sim_.cancel(m.finish_event);
    m.finish_event = sim::kNoEvent;
    if (m.state == VmState::kMigrating && m.migration_source != kNoHost) {
      remove_op(host_mut(m.migration_source), Operation::Kind::kMigrateOut, v);
      reallocate(m.migration_source);
    }
    if (m.work_checkpointed_s > 0) {
      ++recorder_.counts.checkpoint_recoveries;
    } else {
      ++recorder_.counts.recreates;
    }
    m.work_done_s = m.work_checkpointed_s;
    m.state = VmState::kQueued;
    m.host = kNoHost;
    m.migration_source = kNoHost;
    m.progress_rate = 0;
    m.cpu_demand_pct = m.job.cpu_pct;
    ++m.restarts;
  }
  host.residents.clear();

  // Abort in-flight operations. An outgoing migration whose source just
  // died kills the transfer: the VM (resident at the destination) is
  // requeued and the destination's migrate-in leg dropped.
  std::vector<Operation> ops = std::move(host.ops);
  host.ops.clear();
  for (const auto& op : ops) {
    sim_.cancel(op.event);
    sim_.cancel(op.deadline_event);
    if (op.kind == Operation::Kind::kMigrateOut) {
      Vm& m = vm_mut(op.vm);
      if (m.state == VmState::kMigrating) {
        const HostId dest = m.host;
        remove_op(host_mut(dest), Operation::Kind::kMigrateIn, op.vm);
        remove_resident(host_mut(dest), op.vm);
        if (m.work_checkpointed_s > 0) {
          ++recorder_.counts.checkpoint_recoveries;
        } else {
          ++recorder_.counts.recreates;
        }
        m.work_done_s = m.work_checkpointed_s;
        m.state = VmState::kQueued;
        m.host = kNoHost;
        m.migration_source = kNoHost;
        m.progress_rate = 0;
        ++m.restarts;
        lost.push_back(op.vm);
        reallocate(dest);
      }
    }
  }

  set_host_state(host, HostState::kFailed);
  host.used_cpu_pct = 0;
  update_power(host);
  ++recorder_.counts.failures;
  record_fault_event("host-crash host=%u lost=%zu", static_cast<unsigned>(h),
                     lost.size());
  if (auto* tr = obs::tracer(recorder_)) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kHostFailed);
    e.host = h;
    e.arg("lost", static_cast<double>(lost.size()));
  }
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_host_crashed(h, sim_.now());
  }
  note_host_fault(h);

  const double repair = failure_model_.draw_repair_time(rng_);
  host.transition_event = sim_.after(repair, [this, h] {
    Host& hh = host_mut(h);
    set_host_state(hh, HostState::kOff);
    hh.transition_event = sim::kNoEvent;
    update_power(hh);
    if (auto* tr = obs::tracer(recorder_)) {
      tr->emit(sim_.now(), obs::EventKind::kHostRepaired).host = h;
    }
    if (auto* rc = resilience::controller(recorder_)) {
      rc->note_host_repaired(h, sim_.now());
    }
    update_node_counters();
    if (on_host_repaired) on_host_repaired(h);
  });

  update_node_counters();
  if (on_host_failed) on_host_failed(h, lost);
}

void Datacenter::inject_host_failure(HostId h) {
  if (hosts_[h].state != HostState::kOn) return;
  cancel_failure(h);
  fail_host(h);
}

void Datacenter::debug_add_resident(HostId h, VmId v) {
  host_mut(h).residents.push_back(v);
  mark_fleet_dirty(h);
}

void Datacenter::debug_force_place(VmId v, HostId h) {
  Vm& m = vm_mut(v);
  m.state = VmState::kRunning;
  m.host = h;
  host_mut(h).residents.push_back(v);
  mark_fleet_dirty(h);
}

void Datacenter::set_host_state(Host& h, HostState to) {
  if (auto* ck = validate::checker(recorder_)) {
    ck->on_host_transition(sim_.now(), h.id, h.state, to);
  }
  h.state = to;
  mark_fleet_dirty(h.id);
}

void Datacenter::mark_fleet_dirty(HostId h) {
  if (fleet_dirty_flag_[h] != 0) return;
  fleet_dirty_flag_[h] = 1;
  fleet_dirty_.push_back(h);
}

void Datacenter::drain_fleet_dirty(std::vector<HostId>& out) const {
  for (const HostId h : fleet_dirty_) {
    out.push_back(h);
    fleet_dirty_flag_[h] = 0;
  }
  fleet_dirty_.clear();
}

// ---- fault-injection & recovery internals ---------------------------------

void Datacenter::apply_injection(Operation& op, faults::FaultOp fop,
                                 HostId h) {
  if (config_.fault_injector == nullptr) return;
  const faults::FaultOutcome out =
      config_.fault_injector->decide(fop, h, sim_.now());
  if (out.kind != faults::FaultOutcome::Kind::kNone) {
    if (auto* tr = obs::tracer(recorder_)) {
      auto& e = tr->emit(sim_.now(), obs::EventKind::kFaultInjected);
      e.vm = op.vm;
      e.host = h;
      e.label = outcome_name(out.kind);
    }
  }
  switch (out.kind) {
    case faults::FaultOutcome::Kind::kNone:
      break;
    case faults::FaultOutcome::Kind::kFail:
      // The operation runs part of its course and then dies (a migration
      // failing at switchover, a creation flunking its health check):
      // shorten the work and take the failure path at completion.
      op.work_s = std::max(1.0, op.work_s * out.fail_fraction);
      op.injected_fail = true;
      break;
    case faults::FaultOutcome::Kind::kHang:
      op.hung = true;
      break;
    case faults::FaultOutcome::Kind::kSlow:
      op.work_s *= out.slow_factor;
      break;
  }
}

void Datacenter::arm_op_deadline(HostId h, double mean_s) {
  if (config_.fault_injector == nullptr) return;
  Host& host = hosts_[h];
  Operation& op = host.ops.back();
  const double deadline_s =
      config_.fault_injector->plan().op_timeout_factor * mean_s;
  const Operation::Kind kind = op.kind;
  const VmId v = op.vm;
  op.deadline_event = sim_.after(
      deadline_s, [this, h, kind, v] { op_deadline_expired(h, kind, v); });
  // A hung operation never completes; its projected end — which feeds the
  // Pconc concurrency penalty — is the abort deadline.
  if (op.hung) op.ends = sim_.now() + deadline_s;
}

void Datacenter::op_deadline_expired(HostId h, Operation::Kind kind, VmId v) {
  Operation* op = find_op(hosts_[h], kind, v);
  if (op == nullptr) return;  // completed in the same timestamp
  op->deadline_event = sim::kNoEvent;
  fail_operation(h, kind, v, /*timed_out=*/true);
}

void Datacenter::fail_operation(HostId h, Operation::Kind kind, VmId v,
                                bool timed_out) {
  ++recorder_.counts.op_failures;
  if (timed_out) ++recorder_.counts.op_timeouts;
  if (auto* tr = obs::tracer(recorder_)) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kOpFailed);
    e.vm = v;
    e.host = h;
    switch (kind) {
      case Operation::Kind::kCreate: e.label = "create"; break;
      case Operation::Kind::kMigrateIn: e.label = "migrate"; break;
      case Operation::Kind::kCheckpoint: e.label = "checkpoint"; break;
      case Operation::Kind::kMigrateOut: e.label = "migrate_out"; break;
    }
    e.arg("timeout", timed_out ? 1.0 : 0.0);
  }
  const char* why = timed_out ? "timeout" : "op-failed";
  faults::FaultOp fop = faults::FaultOp::kCreate;
  switch (kind) {
    case Operation::Kind::kCreate:
      fop = faults::FaultOp::kCreate;
      record_fault_event("%s create vm=%u host=%u", why,
                         static_cast<unsigned>(v), static_cast<unsigned>(h));
      fail_creation(h, v);
      break;
    case Operation::Kind::kMigrateIn:
      fop = faults::FaultOp::kMigrate;
      record_fault_event("%s migrate vm=%u dst=%u", why,
                         static_cast<unsigned>(v), static_cast<unsigned>(h));
      rollback_migration(v);
      break;
    case Operation::Kind::kCheckpoint:
      fop = faults::FaultOp::kCheckpoint;
      record_fault_event("%s checkpoint vm=%u host=%u", why,
                         static_cast<unsigned>(v), static_cast<unsigned>(h));
      fail_checkpoint(h, v);
      break;
    case Operation::Kind::kMigrateOut:
      EA_ASSERT(false);  // passive leg carries no injection flags
      return;
  }
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_op_failure(h, sim_.now());
  }
  note_host_fault(h);
  if (on_operation_failed) on_operation_failed(fop, v, h, timed_out);
}

void Datacenter::fail_creation(HostId h, VmId v) {
  Vm& m = vm_mut(v);
  Host& host = host_mut(h);
  EA_ASSERT(m.state == VmState::kCreating && m.host == h);
  remove_op(host, Operation::Kind::kCreate, v);
  remove_resident(host, v);
  m.state = VmState::kQueued;
  m.host = kNoHost;
  m.progress_rate = 0;
  m.cpu_demand_pct = m.job.cpu_pct;
  ++m.restarts;
  reallocate_io(h);
  reallocate(h);
  update_node_counters();
}

void Datacenter::rollback_migration(VmId v) {
  Vm& m = vm_mut(v);
  EA_ASSERT(m.state == VmState::kMigrating && m.migration_source != kNoHost);
  const HostId dst = m.host;
  const HostId src = m.migration_source;
  remove_op(host_mut(dst), Operation::Kind::kMigrateIn, v);
  remove_op(host_mut(src), Operation::Kind::kMigrateOut, v);
  remove_resident(host_mut(dst), v);
  // The source still pins the VM's memory (via its migrate-out leg), so
  // rollback is not a placement decision and needs no fits() check: the VM
  // simply resumes where it was.
  host_mut(src).residents.push_back(v);
  m.host = src;
  m.migration_source = kNoHost;
  m.state = VmState::kRunning;
  m.last_progress_update = sim_.now();
  ++recorder_.counts.rollbacks;
  if (auto* tr = obs::tracer(recorder_)) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kMigrateRollback);
    e.vm = v;
    e.host = dst;
    e.host2 = src;
  }
  reallocate_io(dst);
  reallocate_io(src);
  reallocate(dst);
  reallocate(src);
  update_node_counters();
}

void Datacenter::fail_checkpoint(HostId h, VmId v) {
  // No snapshot is recorded; the previous checkpoint (if any) stays valid.
  remove_op(host_mut(h), Operation::Kind::kCheckpoint, v);
  reallocate_io(h);
  reallocate(h);
  update_node_counters();
}

void Datacenter::boot_failed(HostId h) {
  Host& host = host_mut(h);
  EA_ASSERT(host.state == HostState::kBooting);
  sim_.cancel(host.transition_event);
  host.transition_event = sim::kNoEvent;
  sim_.cancel(host.boot_deadline_event);
  host.boot_deadline_event = sim::kNoEvent;
  set_host_state(host, HostState::kOff);
  host.used_cpu_pct = 0;
  update_power(host);
  ++recorder_.counts.boot_failures;
  record_fault_event("boot-failed host=%u", static_cast<unsigned>(h));
  if (auto* tr = obs::tracer(recorder_)) {
    tr->emit(sim_.now(), obs::EventKind::kBootFailed).host = h;
  }
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_op_failure(h, sim_.now());
  }
  note_host_fault(h);
  update_node_counters();
  if (on_host_boot_failed) on_host_boot_failed(h);
}

void Datacenter::note_host_fault(HostId h) {
  const QuarantinePolicy& q = config_.quarantine;
  if (!q.enabled) return;
  Host& host = host_mut(h);
  if (host.quarantined) return;
  const sim::SimTime now = sim_.now();
  if (now - host.fault_window_start >= q.window_s) {
    // Sliding-window approximation: restart the window at the first fault
    // after the previous window lapsed. The comparison is >=, not >: a
    // fault landing exactly one window after the window opened (e.g. a
    // cooldown expiring on a round boundary) belongs to a *fresh* window —
    // counting it against the stale one re-quarantines on stale faults.
    host.fault_window_start = now;
    host.fault_count = 0;
  }
  ++host.fault_count;
  if (host.fault_count < q.failure_budget) return;

  host.quarantined = true;
  mark_fleet_dirty(h);  // placeability flip
  ++recorder_.counts.quarantines;
  record_fault_event("quarantine host=%u cooldown=%.0fs",
                     static_cast<unsigned>(h), q.cooldown_s);
  if (auto* tr = obs::tracer(recorder_)) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kQuarantine);
    e.host = h;
    e.arg("cooldown_s", q.cooldown_s);
  }
  sim_.cancel(host.unquarantine_event);
  host.unquarantine_event = sim_.after(q.cooldown_s, [this, h] {
    Host& hh = host_mut(h);
    hh.unquarantine_event = sim::kNoEvent;
    hh.quarantined = false;
    hh.fault_count = 0;
    hh.fault_window_start = sim_.now();
    mark_fleet_dirty(h);  // placeability flip
    record_fault_event("unquarantine host=%u", static_cast<unsigned>(h));
    if (auto* tr = obs::tracer(recorder_)) {
      tr->emit(sim_.now(), obs::EventKind::kUnquarantine).host = h;
    }
    if (auto* rc = resilience::controller(recorder_)) {
      rc->note_host_unquarantined(h, sim_.now());
    }
    if (on_host_unquarantined) on_host_unquarantined(h);
  });
  if (auto* rc = resilience::controller(recorder_)) {
    rc->note_host_quarantined(h, sim_.now());
  }
  if (on_host_quarantined) on_host_quarantined(h);
}

void Datacenter::record_fault_event(const char* fmt, ...) {
  if (config_.fault_injector == nullptr) return;
  char buf[160];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  config_.fault_injector->record(sim_.now(), buf);
}

}  // namespace easched::datacenter
