#include "datacenter/datacenter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "datacenter/xen_scheduler.hpp"
#include "support/contracts.hpp"
#include "support/distributions.hpp"
#include "workload/satisfaction.hpp"

namespace easched::datacenter {

namespace {
constexpr double kEps = 1e-9;
/// Slack tolerated when asserting a finish event hit zero remaining work.
constexpr double kFinishSlack = 1e-3;
}  // namespace

Datacenter::Datacenter(sim::Simulator& simulator, DatacenterConfig config,
                       metrics::Recorder& recorder)
    : sim_(simulator),
      config_(std::move(config)),
      recorder_(recorder),
      rng_(config_.seed),
      failure_model_(config_.mean_repair_s) {
  EA_EXPECTS(!config_.hosts.empty());
  EA_EXPECTS(recorder_.watts.size() == config_.hosts.size());
  hosts_.resize(config_.hosts.size());
  failure_events_.assign(config_.hosts.size(), sim::kNoEvent);
  const std::size_t on_count =
      std::min(config_.initially_on, config_.hosts.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i].id = static_cast<HostId>(i);
    hosts_[i].spec = config_.hosts[i];
    hosts_[i].state = i < on_count ? HostState::kOn : HostState::kOff;
    update_power(hosts_[i]);
    if (config_.inject_failures && hosts_[i].state == HostState::kOn) {
      schedule_failure(hosts_[i].id);
    }
  }
  update_node_counters();

  if (config_.checkpoint.enabled) {
    // Periodic scan; work-based due check in maybe_checkpoint().
    sim_.every(std::max(config_.checkpoint.period_s / 2.0, 1.0), [this] {
      for (auto& v : vms_) {
        if (v.state == VmState::kRunning) maybe_checkpoint(v);
      }
    });
  }
}

const Host& Datacenter::host(HostId h) const {
  EA_EXPECTS(h < hosts_.size());
  return hosts_[h];
}

Host& Datacenter::host_mut(HostId h) {
  EA_EXPECTS(h < hosts_.size());
  return hosts_[h];
}

const Vm& Datacenter::vm(VmId v) const {
  EA_EXPECTS(v < vms_.size());
  return vms_[v];
}

Vm& Datacenter::vm_mut(VmId v) {
  EA_EXPECTS(v < vms_.size());
  return vms_[v];
}

int Datacenter::online_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.is_online() ? 1 : 0;
  return n;
}

int Datacenter::working_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.is_working() ? 1 : 0;
  return n;
}

int Datacenter::offline_available_count() const {
  int n = 0;
  for (const auto& h : hosts_) n += h.state == HostState::kOff ? 1 : 0;
  return n;
}

double Datacenter::reserved_cpu_pct(HostId h) const {
  const Host& host = hosts_[h];
  double cpu = 0;
  for (VmId v : host.residents) cpu += vms_[v].cpu_demand_pct;
  return cpu;
}

double Datacenter::reserved_mem_mb(HostId h) const {
  const Host& host = hosts_[h];
  double mem = 0;
  for (VmId v : host.residents) mem += vms_[v].job.mem_mb;
  // Outgoing migrations keep their memory pinned until the transfer ends.
  for (const auto& op : host.ops) {
    if (op.kind == Operation::Kind::kMigrateOut) mem += vms_[op.vm].job.mem_mb;
  }
  return mem;
}

double Datacenter::occupation(HostId h) const {
  const Host& host = hosts_[h];
  return std::max(reserved_cpu_pct(h) / host.spec.cpu_capacity_pct,
                  reserved_mem_mb(h) / host.spec.mem_mb);
}

double Datacenter::occupation_if(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  const Vm& m = vms_[v];
  double cpu = reserved_cpu_pct(h);
  double mem = reserved_mem_mb(h);
  if (m.host != h) {
    cpu += m.state == VmState::kRunning ? m.cpu_demand_pct : m.job.cpu_pct;
    mem += m.job.mem_mb;
  }
  return std::max(cpu / host.spec.cpu_capacity_pct, mem / host.spec.mem_mb);
}

bool Datacenter::hw_sw_ok(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  const workload::Job& job = vms_[v].job;
  if (host.spec.arch != job.arch) return false;
  return (host.spec.software & job.software) == job.software;
}

bool Datacenter::fits(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  if (!host.is_placeable()) return false;
  if (!hw_sw_ok(h, v)) return false;
  return occupation_if(h, v) <= 1.0 + kEps;
}

bool Datacenter::fits_memory(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  if (!host.is_placeable()) return false;
  if (!hw_sw_ok(h, v)) return false;
  const Vm& m = vms_[v];
  double mem = reserved_mem_mb(h);
  if (m.host != h) mem += m.job.mem_mb;
  return mem <= host.spec.mem_mb + kEps;
}

double Datacenter::projected_rate(HostId h, VmId v) const {
  const Host& host = hosts_[h];
  const Vm& m = vms_[v];
  const double demand_v =
      m.state == VmState::kRunning ? m.cpu_demand_pct : m.job.cpu_pct;
  double total = host.mgmt_demand_pct();
  bool counted = false;
  for (VmId r : host.residents) {
    const Vm& rv = vms_[r];
    if (rv.state != VmState::kRunning) continue;
    total += rv.cpu_demand_pct;
    if (r == v) counted = true;
  }
  if (!counted) total += demand_v;
  if (total <= host.spec.cpu_capacity_pct || total <= 0) return 1.0;
  const double over = total / host.spec.cpu_capacity_pct;
  const double share = host.spec.cpu_capacity_pct / total;
  const double eff = 1.0 / (1.0 + config_.contention_penalty * (over - 1.0));
  return share * eff;
}

std::vector<VmId> Datacenter::active_vms() const {
  std::vector<VmId> out;
  out.reserve(vms_.size());
  for (const auto& v : vms_) {
    if (v.is_active()) out.push_back(v.id);
  }
  return out;
}

VmId Datacenter::admit_job(const workload::Job& job) {
  Vm v;
  v.id = static_cast<VmId>(vms_.size());
  v.job = job;
  v.state = VmState::kQueued;
  v.cpu_demand_pct = job.cpu_pct;
  v.last_progress_update = sim_.now();
  vms_.push_back(std::move(v));
  return vms_.back().id;
}

double Datacenter::draw_duration(double mean_s) {
  return support::truncated_normal(
      rng_, mean_s, mean_s * config_.duration_sigma_ratio, 1.0);
}

void Datacenter::integrate_progress(Vm& v) {
  const sim::SimTime t = sim_.now();
  if (v.state == VmState::kRunning && v.progress_rate > 0) {
    v.work_done_s += v.progress_rate * (t - v.last_progress_update);
    v.work_done_s = std::min(v.work_done_s, v.job.dedicated_seconds);
  }
  v.last_progress_update = t;
}

void Datacenter::reschedule_finish(Vm& v) {
  sim_.cancel(v.finish_event);
  v.finish_event = sim::kNoEvent;
  if (v.state != VmState::kRunning || v.progress_rate <= 0) return;
  const double remaining = v.remaining_work_s();
  const VmId id = v.id;
  v.finish_event =
      sim_.after(remaining / v.progress_rate, [this, id] { finish_vm(id); });
}

void Datacenter::reallocate_io(HostId h) {
  Host& host = hosts_[h];
  const sim::SimTime t = sim_.now();

  // 1. Integrate progress of the active operations at their old rates.
  int active = 0;
  for (auto& op : host.ops) {
    if (!op.io_active()) continue;
    op.done_s += op.rate * (t - op.last_update);
    op.done_s = std::min(op.done_s, op.work_s);
    op.last_update = t;
    ++active;
  }
  if (active == 0) return;

  // 2. Equal shares of the dom0 I/O channel, capped at full speed.
  const double rate =
      std::min(1.0, host.spec.dom0_io_channels / active);

  // 3. Reschedule every active operation's completion.
  for (auto& op : host.ops) {
    if (!op.io_active()) continue;
    op.rate = rate;
    sim_.cancel(op.event);
    const double eta = op.remaining_s() / rate;
    op.ends = t + eta;
    const Operation::Kind kind = op.kind;
    const VmId v = op.vm;
    op.event =
        sim_.after(eta, [this, h, kind, v] { complete_operation(h, kind, v); });
  }
}

void Datacenter::complete_operation(HostId h, Operation::Kind kind, VmId v) {
  switch (kind) {
    case Operation::Kind::kCreate:
      complete_creation(h, v);
      break;
    case Operation::Kind::kMigrateIn:
      complete_migration(vm(v).migration_source, h, v);
      break;
    case Operation::Kind::kCheckpoint:
      complete_checkpoint(h, v);
      break;
    case Operation::Kind::kMigrateOut:
      EA_ASSERT(false);  // passive leg never schedules an event
      break;
  }
}

void Datacenter::reallocate(HostId h) {
  Host& host = hosts_[h];

  // 1. Integrate progress of everything currently running here.
  for (VmId r : host.residents) integrate_progress(vms_[r]);

  // 2. Compute the new shares for the running residents.
  std::vector<CpuDemand> demands;
  std::vector<VmId> running;
  demands.reserve(host.residents.size());
  for (VmId r : host.residents) {
    const Vm& rv = vms_[r];
    if (rv.state != VmState::kRunning) continue;
    demands.push_back({rv.cpu_demand_pct,
                       static_cast<double>(rv.job.weight), 0.0});
    running.push_back(r);
  }
  const XenAllocation alloc = allocate_cpu(
      host.spec.cpu_capacity_pct, demands, host.mgmt_demand_pct());
  double guest_demand = 0;
  for (const auto& d : demands) guest_demand += d.demand_pct;
  recorder_.max_oversubscription =
      std::max(recorder_.max_oversubscription,
               guest_demand / host.spec.cpu_capacity_pct);
  const double eff =
      1.0 / (1.0 + config_.contention_penalty * (alloc.oversubscription - 1.0));

  // 3. Update rates and projected finish events.
  for (std::size_t i = 0; i < running.size(); ++i) {
    Vm& rv = vms_[running[i]];
    const double demand = std::max(rv.cpu_demand_pct, kEps);
    rv.progress_rate = alloc.vm_alloc_pct[i] / demand * eff;
    reschedule_finish(rv);
  }

  // 4. Re-derive power from the new total CPU usage.
  host.used_cpu_pct = host.state == HostState::kOn ? alloc.used_pct : 0.0;
  update_power(host);
}

void Datacenter::update_power(Host& h) {
  double watts = 0;
  double cpu = 0;
  switch (h.state) {
    case HostState::kOn:
      watts = h.spec.power.watts_on(h.used_cpu_pct, h.spec.cpu_capacity_pct);
      cpu = h.used_cpu_pct;
      break;
    case HostState::kBooting:
    case HostState::kShuttingDown:
      watts = h.spec.power.watts_boot();
      break;
    case HostState::kOff:
    case HostState::kFailed:
      watts = h.spec.power.watts_off();
      break;
  }
  recorder_.watts.set(sim_.now(), h.id, watts);
  recorder_.cpu_pct.set(sim_.now(), h.id, cpu);
}

void Datacenter::update_node_counters() {
  recorder_.working.set(sim_.now(), working_count());
  recorder_.online.set(sim_.now(), online_count());
}

void Datacenter::remove_resident(Host& h, VmId v) {
  const auto it = std::find(h.residents.begin(), h.residents.end(), v);
  EA_ASSERT(it != h.residents.end());
  h.residents.erase(it);
}

void Datacenter::remove_op(Host& h, Operation::Kind kind, VmId v) {
  const auto it =
      std::find_if(h.ops.begin(), h.ops.end(), [&](const Operation& op) {
        return op.kind == kind && op.vm == v;
      });
  EA_ASSERT(it != h.ops.end());
  sim_.cancel(it->event);
  h.ops.erase(it);
}

void Datacenter::place(VmId v, HostId h) {
  Vm& m = vm_mut(v);
  Host& host = host_mut(h);
  EA_EXPECTS(m.state == VmState::kQueued);
  EA_EXPECTS(host.state == HostState::kOn);
  EA_EXPECTS(fits_memory(h, v));

  m.state = VmState::kCreating;
  m.host = h;
  m.cpu_demand_pct = m.job.cpu_pct;
  host.residents.push_back(v);

  Operation op;
  op.kind = Operation::Kind::kCreate;
  op.vm = v;
  op.overhead_cpu_pct = config_.creation_overhead_cpu_pct;
  op.started = sim_.now();
  op.last_update = sim_.now();
  op.work_s = draw_duration(host.spec.creation_cost_s);
  host.ops.push_back(op);
  ++recorder_.counts.creations;

  reallocate_io(h);
  reallocate(h);
  update_node_counters();
}

void Datacenter::complete_creation(HostId h, VmId v) {
  Vm& m = vm_mut(v);
  Host& host = host_mut(h);
  EA_ASSERT(m.state == VmState::kCreating && m.host == h);
  // Do not cancel our own (already fired) event: remove_op cancels a
  // kNoEvent-safe handle because cancel() ignores fired events.
  remove_op(host, Operation::Kind::kCreate, v);
  m.state = VmState::kRunning;
  m.last_progress_update = sim_.now();
  reallocate_io(h);
  reallocate(h);
  update_node_counters();
  if (on_vm_ready) on_vm_ready(v);
}

void Datacenter::migrate(VmId v, HostId to) {
  Vm& m = vm_mut(v);
  Host& dst = host_mut(to);
  EA_EXPECTS(m.state == VmState::kRunning);
  EA_EXPECTS(dst.state == HostState::kOn);
  EA_EXPECTS(m.host != to);
  EA_EXPECTS(fits_memory(to, v));
  const HostId from = m.host;
  Host& src = host_mut(from);

  // Freeze execution on the source for the duration of the transfer.
  integrate_progress(m);
  m.progress_rate = 0;
  sim_.cancel(m.finish_event);
  m.finish_event = sim::kNoEvent;
  remove_resident(src, v);

  m.state = VmState::kMigrating;
  m.migration_source = from;
  m.host = to;
  dst.residents.push_back(v);

  const double duration = draw_duration(dst.spec.migration_cost_s);
  Operation out_op;
  out_op.kind = Operation::Kind::kMigrateOut;
  out_op.vm = v;
  out_op.overhead_cpu_pct = config_.migration_overhead_cpu_pct;
  out_op.started = sim_.now();
  out_op.last_update = sim_.now();
  out_op.work_s = duration;
  out_op.ends = sim_.now() + duration;  // paced by the receiver in reality
  src.ops.push_back(out_op);

  Operation in_op = out_op;
  in_op.kind = Operation::Kind::kMigrateIn;
  dst.ops.push_back(in_op);

  ++recorder_.counts.migrations;
  ++m.migrations;

  reallocate_io(to);
  reallocate(from);
  reallocate(to);
  update_node_counters();
}

void Datacenter::complete_migration(HostId from, HostId to, VmId v) {
  Vm& m = vm_mut(v);
  EA_ASSERT(m.state == VmState::kMigrating && m.host == to &&
            m.migration_source == from);
  remove_op(host_mut(from), Operation::Kind::kMigrateOut, v);
  remove_op(host_mut(to), Operation::Kind::kMigrateIn, v);
  m.state = VmState::kRunning;
  m.migration_source = kNoHost;
  m.last_progress_update = sim_.now();
  reallocate_io(to);
  reallocate(from);
  reallocate(to);
  update_node_counters();
  if (on_migration_done) on_migration_done(v);
}

void Datacenter::finish_vm(VmId v) {
  Vm& m = vm_mut(v);
  EA_ASSERT(m.state == VmState::kRunning);
  integrate_progress(m);
  EA_ASSERT(m.remaining_work_s() <= kFinishSlack);
  m.work_done_s = m.job.dedicated_seconds;
  m.state = VmState::kFinished;
  m.finished_at = sim_.now();
  m.finish_event = sim::kNoEvent;
  m.progress_rate = 0;

  const double exec = m.finished_at - m.job.submit;
  metrics::JobRecord rec;
  rec.vm = v;
  rec.submit = m.job.submit;
  rec.finish = m.finished_at;
  rec.dedicated_seconds = m.job.dedicated_seconds;
  rec.deadline_seconds = m.job.deadline_seconds();
  rec.satisfaction = workload::satisfaction(exec, rec.deadline_seconds);
  rec.delay_pct = workload::delay_pct(exec, rec.dedicated_seconds);
  rec.cpu_pct = m.job.cpu_pct;
  recorder_.jobs.add(rec);

  const HostId h = m.host;
  remove_resident(host_mut(h), v);
  m.host = kNoHost;
  reallocate(h);
  update_node_counters();
  if (on_vm_finished) on_vm_finished(v);
}

void Datacenter::maybe_checkpoint(Vm& v) {
  if (!config_.checkpoint.due(v.work_done_s, v.work_checkpointed_s)) {
    // Integrate first so the due check sees current progress.
    integrate_progress(v);
    if (!config_.checkpoint.due(v.work_done_s, v.work_checkpointed_s)) return;
  }
  Host& host = host_mut(v.host);
  // Skip when a checkpoint of this VM is already in flight.
  for (const auto& op : host.ops) {
    if (op.kind == Operation::Kind::kCheckpoint && op.vm == v.id) return;
  }
  Operation op;
  op.kind = Operation::Kind::kCheckpoint;
  op.vm = v.id;
  op.overhead_cpu_pct = config_.checkpoint.overhead_cpu_pct;
  op.started = sim_.now();
  op.last_update = sim_.now();
  op.work_s = config_.checkpoint.duration_s;
  host.ops.push_back(op);
  reallocate_io(v.host);
  reallocate(v.host);
  update_node_counters();
}

void Datacenter::complete_checkpoint(HostId h, VmId v) {
  Vm& m = vm_mut(v);
  remove_op(host_mut(h), Operation::Kind::kCheckpoint, v);
  if (m.state == VmState::kRunning && m.host == h) {
    integrate_progress(m);
    m.work_checkpointed_s = m.work_done_s;
    ++recorder_.counts.checkpoints;
  }
  reallocate_io(h);
  reallocate(h);
  update_node_counters();
}

void Datacenter::set_maintenance(HostId h, bool on) {
  host_mut(h).maintenance = on;
}

void Datacenter::power_on(HostId h) {
  Host& host = host_mut(h);
  EA_EXPECTS(host.state == HostState::kOff);
  host.state = HostState::kBooting;
  update_power(host);
  ++recorder_.counts.turn_ons;
  host.transition_event = sim_.after(host.spec.boot_time_s, [this, h] {
    Host& hh = host_mut(h);
    hh.state = HostState::kOn;
    hh.transition_event = sim::kNoEvent;
    update_power(hh);
    if (config_.inject_failures) schedule_failure(h);
    update_node_counters();
    if (on_host_online) on_host_online(h);
  });
  update_node_counters();
}

void Datacenter::power_off(HostId h) {
  Host& host = host_mut(h);
  EA_EXPECTS(host.is_idle_on());
  cancel_failure(h);
  host.state = HostState::kShuttingDown;
  update_power(host);
  ++recorder_.counts.turn_offs;
  host.transition_event = sim_.after(host.spec.shutdown_time_s, [this, h] {
    Host& hh = host_mut(h);
    hh.state = HostState::kOff;
    hh.transition_event = sim::kNoEvent;
    update_power(hh);
    update_node_counters();
    if (on_host_off) on_host_off(h);
  });
  update_node_counters();
}

void Datacenter::boost_demand(VmId v, double new_demand_pct) {
  Vm& m = vm_mut(v);
  if (m.state != VmState::kRunning) return;
  Host& host = host_mut(m.host);
  const double clamped =
      std::clamp(new_demand_pct, m.job.cpu_pct, host.spec.cpu_capacity_pct);
  if (clamped == m.cpu_demand_pct) return;
  m.cpu_demand_pct = clamped;
  reallocate(m.host);
}

void Datacenter::boost_weight(VmId v, double factor) {
  EA_EXPECTS(factor >= 1.0);
  Vm& m = vm_mut(v);
  const double boosted = std::min(m.job.weight * factor, 65536.0);
  m.job.weight = static_cast<std::uint32_t>(boosted);
  if (m.state == VmState::kRunning) reallocate(m.host);
}

void Datacenter::schedule_failure(HostId h) {
  const Host& host = hosts_[h];
  const double ttf =
      failure_model_.draw_time_to_failure(rng_, host.spec.reliability);
  if (!std::isfinite(ttf)) return;
  sim_.cancel(failure_events_[h]);
  failure_events_[h] = sim_.after(ttf, [this, h] { fail_host(h); });
}

void Datacenter::cancel_failure(HostId h) {
  sim_.cancel(failure_events_[h]);
  failure_events_[h] = sim::kNoEvent;
}

void Datacenter::fail_host(HostId h) {
  Host& host = host_mut(h);
  EA_ASSERT(host.state == HostState::kOn);
  failure_events_[h] = sim::kNoEvent;
  sim_.cancel(host.transition_event);
  host.transition_event = sim::kNoEvent;

  // Requeue every VM assigned here, restoring checkpointed progress. A VM
  // migrating *into* this host also loses its transfer; drop the matching
  // migrate-out leg on the (still alive) source.
  std::vector<VmId> lost = host.residents;
  for (VmId v : lost) {
    Vm& m = vm_mut(v);
    sim_.cancel(m.finish_event);
    m.finish_event = sim::kNoEvent;
    if (m.state == VmState::kMigrating && m.migration_source != kNoHost) {
      remove_op(host_mut(m.migration_source), Operation::Kind::kMigrateOut, v);
      reallocate(m.migration_source);
    }
    if (m.work_checkpointed_s > 0) ++recorder_.counts.checkpoint_recoveries;
    m.work_done_s = m.work_checkpointed_s;
    m.state = VmState::kQueued;
    m.host = kNoHost;
    m.migration_source = kNoHost;
    m.progress_rate = 0;
    m.cpu_demand_pct = m.job.cpu_pct;
    ++m.restarts;
  }
  host.residents.clear();

  // Abort in-flight operations. An outgoing migration whose source just
  // died kills the transfer: the VM (resident at the destination) is
  // requeued and the destination's migrate-in leg dropped.
  std::vector<Operation> ops = std::move(host.ops);
  host.ops.clear();
  for (const auto& op : ops) {
    sim_.cancel(op.event);
    if (op.kind == Operation::Kind::kMigrateOut) {
      Vm& m = vm_mut(op.vm);
      if (m.state == VmState::kMigrating) {
        const HostId dest = m.host;
        remove_op(host_mut(dest), Operation::Kind::kMigrateIn, op.vm);
        remove_resident(host_mut(dest), op.vm);
        if (m.work_checkpointed_s > 0)
          ++recorder_.counts.checkpoint_recoveries;
        m.work_done_s = m.work_checkpointed_s;
        m.state = VmState::kQueued;
        m.host = kNoHost;
        m.migration_source = kNoHost;
        m.progress_rate = 0;
        ++m.restarts;
        lost.push_back(op.vm);
        reallocate(dest);
      }
    }
  }

  host.state = HostState::kFailed;
  host.used_cpu_pct = 0;
  update_power(host);
  ++recorder_.counts.failures;

  const double repair = failure_model_.draw_repair_time(rng_);
  host.transition_event = sim_.after(repair, [this, h] {
    Host& hh = host_mut(h);
    hh.state = HostState::kOff;
    hh.transition_event = sim::kNoEvent;
    update_power(hh);
    update_node_counters();
    if (on_host_repaired) on_host_repaired(h);
  });

  update_node_counters();
  if (on_host_failed) on_host_failed(h, lost);
}

}  // namespace easched::datacenter
