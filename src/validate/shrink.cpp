#include "validate/shrink.hpp"

#include <algorithm>

namespace easched::validate {
namespace {

/// The job list with chunk `drop` (of `n` even chunks) removed.
workload::Workload without_chunk(const workload::Workload& jobs,
                                 std::size_t n, std::size_t drop) {
  workload::Workload kept;
  kept.reserve(jobs.size());
  const std::size_t lo = drop * jobs.size() / n;
  const std::size_t hi = (drop + 1) * jobs.size() / n;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i < lo || i >= hi) kept.push_back(jobs[i]);
  }
  return kept;
}

}  // namespace

ShrinkResult shrink_workload(
    workload::Workload failing,
    const std::function<bool(const workload::Workload&)>& still_fails,
    ShrinkOptions options) {
  ShrinkResult result;
  result.tests_run = 1;
  result.reproduced = still_fails(failing);
  if (!result.reproduced) {
    result.jobs = std::move(failing);
    return result;
  }

  std::size_t n = 2;
  while (failing.size() >= 2 && result.tests_run < options.max_tests) {
    n = std::min(n, failing.size());
    bool reduced = false;
    for (std::size_t drop = 0;
         drop < n && result.tests_run < options.max_tests; ++drop) {
      workload::Workload candidate = without_chunk(failing, n, drop);
      if (candidate.size() == failing.size()) continue;  // empty chunk
      ++result.tests_run;
      if (still_fails(candidate)) {
        failing = std::move(candidate);
        n = std::max<std::size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= failing.size()) break;  // 1-minimal at single-job granularity
      n = std::min(n * 2, failing.size());
    }
  }

  result.jobs = std::move(failing);
  return result;
}

}  // namespace easched::validate
