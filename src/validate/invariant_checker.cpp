#include "validate/invariant_checker.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "core/fleet.hpp"
#include "core/score_matrix.hpp"
#include "datacenter/datacenter.hpp"
#include "datacenter/vm.hpp"

namespace easched::validate {
namespace {

using datacenter::Datacenter;
using datacenter::Host;
using datacenter::HostId;
using datacenter::HostState;
using datacenter::kNoHost;
using datacenter::Vm;
using datacenter::VmId;
using datacenter::VmState;

/// printf-style message builder; violations are rare, so the allocation
/// here is off every hot path.
std::string msg(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return std::string{buf};
}

/// Absolute slack for comparing recorded watts against the power model:
/// both sides run the same arithmetic, so anything beyond rounding noise
/// is a real divergence.
constexpr double kWattsTol = 1e-6;
/// Relative slack for integral aggregation (sums of many products).
constexpr double kIntegralRelTol = 1e-6;

}  // namespace

const char* to_string(Rule rule) noexcept {
  switch (rule) {
    case Rule::kVmConservation:
      return "vm-conservation";
    case Rule::kCapacity:
      return "capacity";
    case Rule::kPowerLegality:
      return "power-legality";
    case Rule::kScoreCache:
      return "score-cache";
    case Rule::kEventMonotonicity:
      return "event-monotonicity";
    case Rule::kEnergyConsistency:
      return "energy-consistency";
    case Rule::kLadderTransition:
      return "ladder-transition";
    case Rule::kBreakerTransition:
      return "breaker-transition";
    case Rule::kFleetSnapshot:
      return "fleet-snapshot";
    case Rule::kFleetIndex:
      return "fleet-index";
  }
  return "?";
}

InvariantChecker::InvariantChecker(CheckerConfig config) : config_(config) {}

void InvariantChecker::clear() {
  violations_.clear();
  for (auto& c : rule_counts_) c = 0;
  checks_ = 0;
  last_event_t_ = 0;
}

bool InvariantChecker::transition_legal(HostState from,
                                        HostState to) noexcept {
  switch (from) {
    case HostState::kOff:
      return to == HostState::kBooting;
    case HostState::kBooting:  // boot completes, or the boot itself fails
      return to == HostState::kOn || to == HostState::kOff;
    case HostState::kOn:  // orderly shutdown, or a crash
      return to == HostState::kShuttingDown || to == HostState::kFailed;
    case HostState::kShuttingDown:  // done, or the shutdown failed
      return to == HostState::kOff || to == HostState::kOn;
    case HostState::kFailed:  // repair returns the node to standby
      return to == HostState::kOff;
  }
  return false;
}

void InvariantChecker::on_host_transition(sim::SimTime t, HostId h,
                                          HostState from, HostState to) {
  ++checks_;
  if (!transition_legal(from, to)) {
    report(Rule::kPowerLegality, t,
           msg("host %u: illegal power transition %s -> %s", h,
               datacenter::to_string(from), datacenter::to_string(to)));
  }
}

void InvariantChecker::check_ladder_shift(sim::SimTime t,
                                          resilience::LadderLevel from,
                                          resilience::LadderLevel to,
                                          bool breach) {
  ++checks_;
  const int df = static_cast<int>(from);
  const int dt = static_cast<int>(to);
  const bool one_rung = breach ? dt == df + 1 : dt == df - 1;
  if (!one_rung || dt < 0 || dt >= resilience::kNumLadderLevels) {
    report(Rule::kLadderTransition, t,
           msg("illegal ladder shift %s -> %s (%s)", resilience::to_string(from),
               resilience::to_string(to), breach ? "breach" : "recovery"));
  }
}

void InvariantChecker::check_breaker_transition(sim::SimTime t,
                                                datacenter::HostId h,
                                                resilience::HostHealth from,
                                                resilience::HostHealth to) {
  ++checks_;
  if (!breaker_transition_legal(from, to)) {
    report(Rule::kBreakerTransition, t,
           msg("host %u: illegal health transition %s -> %s", h,
               resilience::to_string(from), resilience::to_string(to)));
  }
}

bool InvariantChecker::breaker_transition_legal(
    resilience::HostHealth from, resilience::HostHealth to) noexcept {
  using H = resilience::HostHealth;
  switch (from) {
    case H::kHealthy:
      // Opened by K consecutive failures / a crash, or overlaid by the
      // datacenter's quarantine.
      return to == H::kSuspect || to == H::kQuarantined;
    case H::kSuspect:
      // Closed by a good probe, overlaid by quarantine, or written off
      // after too many re-opens.
      return to == H::kHealthy || to == H::kQuarantined || to == H::kDead;
    case H::kQuarantined:
      // Cooldown release hands the host back as Suspect: it must prove
      // itself through a probe before taking load again.
      return to == H::kSuspect;
    case H::kDead:
      // Only hardware repair resurrects a dead host, and only to Suspect.
      return to == H::kSuspect;
  }
  return false;
}

void InvariantChecker::on_event_dispatched(sim::SimTime t) {
  ++checks_;
  if (t < last_event_t_) {
    report(Rule::kEventMonotonicity, t,
           msg("event dispatched at t=%.6f after t=%.6f", t, last_event_t_));
    return;  // keep the high-water mark so one glitch reports once
  }
  last_event_t_ = t;
}

void InvariantChecker::check_datacenter(const Datacenter& dc) {
  ++checks_;
  const sim::SimTime t = dc.simulator().now();
  check_conservation(dc, t);
  check_capacity(dc, t);
  check_energy(dc, t);
}

void InvariantChecker::check_conservation(const Datacenter& dc,
                                          sim::SimTime t) {
  // Pass 1: walk resident lists, counting appearances of every VM and
  // checking host-side coherence.
  std::vector<int> seen(dc.num_vms(), 0);
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    const Host& host = dc.host(h);
    if (!host.residents.empty() && host.state != HostState::kOn) {
      report(Rule::kVmConservation, t,
             msg("host %u holds %zu residents while %s", h,
                 host.residents.size(), datacenter::to_string(host.state)));
    }
    for (VmId v : host.residents) {
      ++seen[v];
      const Vm& m = dc.vm(v);
      if (m.host != h) {
        report(Rule::kVmConservation, t,
               msg("vm %u resident on host %u but points at host %d", v, h,
                   m.host == kNoHost ? -1 : static_cast<int>(m.host)));
      }
      if (m.state != VmState::kCreating && m.state != VmState::kRunning &&
          m.state != VmState::kMigrating) {
        report(Rule::kVmConservation, t,
               msg("vm %u resident on host %u in state %s", v, h,
                   datacenter::to_string(m.state)));
      }
    }
  }

  // Pass 2: every VM's back-pointers against the counts. A placed VM
  // lives exactly once; a queued/finished VM lives nowhere.
  for (VmId v = 0; v < dc.num_vms(); ++v) {
    const Vm& m = dc.vm(v);
    const bool placed = m.state == VmState::kCreating ||
                        m.state == VmState::kRunning ||
                        m.state == VmState::kMigrating;
    if (placed) {
      if (m.host == kNoHost) {
        report(Rule::kVmConservation, t,
               msg("vm %u is %s with no host", v,
                   datacenter::to_string(m.state)));
      } else if (seen[v] != 1) {
        report(Rule::kVmConservation, t,
               msg("vm %u appears %d times across resident lists "
                   "(state %s, host %u)",
                   v, seen[v], datacenter::to_string(m.state), m.host));
      }
    } else {
      if (m.host != kNoHost) {
        report(Rule::kVmConservation, t,
               msg("vm %u is %s but still points at host %u", v,
                   datacenter::to_string(m.state), m.host));
      }
      if (seen[v] != 0) {
        report(Rule::kVmConservation, t,
               msg("vm %u is %s but appears in %d resident lists", v,
                   datacenter::to_string(m.state), seen[v]));
      }
    }
    if (m.state == VmState::kMigrating && m.migration_source == kNoHost) {
      report(Rule::kVmConservation, t,
             msg("vm %u is Migrating with no source host", v));
    }
    if (m.state != VmState::kMigrating && m.migration_source != kNoHost) {
      report(Rule::kVmConservation, t,
             msg("vm %u keeps migration source %u in state %s", v,
                 m.migration_source, datacenter::to_string(m.state)));
    }
  }
}

void InvariantChecker::check_capacity(const Datacenter& dc, sim::SimTime t) {
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    const Host& host = dc.host(h);
    const double mem = dc.reserved_mem_mb(h);
    // Memory is a hard limit under any policy: reservations include
    // residents and the pinned memory of outgoing migrations.
    if (mem > host.spec.mem_mb * (1 + 1e-9) + 1e-9) {
      report(Rule::kCapacity, t,
             msg("host %u memory oversubscribed: %.1f MB reserved of "
                 "%.1f MB",
                 h, mem, host.spec.mem_mb));
    }
    if (!config_.allow_cpu_oversubscription) {
      const double cpu = dc.reserved_cpu_pct(h);
      if (cpu > host.spec.cpu_capacity_pct * (1 + 1e-9) + 1e-9) {
        report(Rule::kCapacity, t,
               msg("host %u CPU oversubscribed: %.1f%% reserved of %.1f%%",
                   h, cpu, host.spec.cpu_capacity_pct));
      }
    }
  }
}

void InvariantChecker::check_energy(const Datacenter& dc, sim::SimTime t) {
  const metrics::Recorder& rec = dc.recorder();
  double host_sum_w = 0;
  double host_sum_integral = 0;
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    const Host& host = dc.host(h);
    double expected = 0;
    switch (host.state) {
      case HostState::kOn:
        expected = host.spec.power.watts_on(host.used_cpu_pct,
                                            host.spec.cpu_capacity_pct);
        break;
      case HostState::kBooting:
      case HostState::kShuttingDown:
        expected = host.spec.power.watts_boot();
        break;
      case HostState::kOff:
      case HostState::kFailed:
        expected = host.spec.power.watts_off();
        break;
    }
    const double actual = rec.watts.host_current(h);
    if (std::abs(actual - expected) > kWattsTol) {
      report(Rule::kEnergyConsistency, t,
             msg("host %u (%s) draws %.3f W, power model says %.3f W", h,
                 datacenter::to_string(host.state), actual, expected));
    }
    host_sum_w += actual;
    host_sum_integral += rec.watts.host_integral(h, t);
  }
  const double total_w = rec.watts.total_current();
  if (std::abs(total_w - host_sum_w) >
      kIntegralRelTol * std::max(1.0, std::abs(host_sum_w))) {
    report(Rule::kEnergyConsistency, t,
           msg("aggregate power %.6f W != sum of hosts %.6f W", total_w,
               host_sum_w));
  }
  const double total_integral = rec.watts.total_integral(t);
  if (std::abs(total_integral - host_sum_integral) >
      kIntegralRelTol * std::max(1.0, std::abs(host_sum_integral))) {
    report(Rule::kEnergyConsistency, t,
           msg("energy integral %.6f Ws != sum of host integrals %.6f Ws",
               total_integral, host_sum_integral));
  }
}

void InvariantChecker::check_score_model(const core::ScoreModel& model,
                                         sim::SimTime t) {
  ++checks_;
  int r = -1;
  int c = -1;
  const int diverged = model.count_cache_divergences(&r, &c);
  if (diverged > 0) {
    report(Rule::kScoreCache, t,
           msg("%d cached score cells diverge from recomputation, "
               "first at (%d, %d)",
               diverged, r, c));
  }
}

void InvariantChecker::check_fleet(const core::FleetState& fleet,
                                   const datacenter::Datacenter& dc,
                                   sim::SimTime t) {
  ++checks_;
  const core::FleetSnapshot& snap = fleet.snapshot();
  const std::size_t n = dc.num_hosts();
  if (snap.size() != n) {
    report(Rule::kFleetSnapshot, t,
           msg("fleet snapshot covers %zu hosts, datacenter has %zu",
               snap.size(), n));
    return;
  }

  // kFleetSnapshot: every field of every host, bitwise, against the shared
  // read path. A divergence means the dirty journal (or the refresh's
  // out-of-band scans) missed a mutation.
  core::FleetSnapshot fresh;
  fresh.resize(n);
  for (HostId h = 0; h < n; ++h) {
    core::FleetState::read_host(dc, h, t, fresh);
    const bool same = snap.placeable[h] == fresh.placeable[h] &&
                      snap.cpu_cap[h] == fresh.cpu_cap[h] &&
                      snap.mem_cap[h] == fresh.mem_cap[h] &&
                      snap.cpu_res[h] == fresh.cpu_res[h] &&
                      snap.mem_res[h] == fresh.mem_res[h] &&
                      snap.vm_count[h] == fresh.vm_count[h] &&
                      snap.running_demand[h] == fresh.running_demand[h] &&
                      snap.mgmt_demand[h] == fresh.mgmt_demand[h] &&
                      snap.conc_remaining_s[h] == fresh.conc_remaining_s[h] &&
                      snap.creation_cost[h] == fresh.creation_cost[h] &&
                      snap.migration_cost[h] == fresh.migration_cost[h] &&
                      snap.reliability[h] == fresh.reliability[h] &&
                      snap.arch[h] == fresh.arch[h] &&
                      snap.software[h] == fresh.software[h];
    if (!same) {
      report(Rule::kFleetSnapshot, t,
             msg("host %u: fleet snapshot diverges from a fresh re-read "
                 "(stale dirty journal?)",
                 h));
    }
  }

  // kFleetIndex: margins, block maxima and the band histogram against the
  // snapshot they were built from (not `fresh` — a stale snapshot is the
  // other rule's violation; the index must mirror its own source).
  const core::HostBucketIndex& index = fleet.index();
  if (index.size() != n) {
    report(Rule::kFleetIndex, t,
           msg("fleet index covers %zu hosts, snapshot has %zu",
               index.size(), n));
    return;
  }
  for (HostId h = 0; h < n; ++h) {
    const double cpu = core::FleetState::expected_free_cpu(snap, h);
    const double mem = core::FleetState::expected_free_mem(snap, h);
    if (index.free_cpu(h) != cpu || index.free_mem(h) != mem) {
      report(Rule::kFleetIndex, t,
             msg("host %u: index margins (%.6f, %.6f) != snapshot-derived "
                 "(%.6f, %.6f)",
                 h, index.free_cpu(h), index.free_mem(h), cpu, mem));
    }
  }
  const std::vector<double>& block_cpu = index.block_free_cpu();
  const std::vector<double>& block_mem = index.block_free_mem();
  const std::size_t nblocks =
      (n + core::kArgminBlock - 1) /
      static_cast<std::size_t>(core::kArgminBlock);
  if (block_cpu.size() != nblocks || block_mem.size() != nblocks) {
    report(Rule::kFleetIndex, t,
           msg("fleet index has %zu blocks, expected %zu", block_cpu.size(),
               nblocks));
    return;
  }
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    double best_cpu = -1.0;
    double best_mem = -1.0;
    const std::size_t lo = blk * core::kArgminBlock;
    const std::size_t hi = std::min(n, lo + core::kArgminBlock);
    for (std::size_t h = lo; h < hi; ++h) {
      const auto id = static_cast<HostId>(h);
      best_cpu = std::max(best_cpu, core::FleetState::expected_free_cpu(snap, id));
      best_mem = std::max(best_mem, core::FleetState::expected_free_mem(snap, id));
    }
    if (block_cpu[blk] != best_cpu || block_mem[blk] != best_mem) {
      report(Rule::kFleetIndex, t,
             msg("block %zu: index maxima (%.6f, %.6f) != recomputed "
                 "(%.6f, %.6f)",
                 blk, block_cpu[blk], block_mem[blk], best_cpu, best_mem));
    }
  }
  std::vector<int> bands(core::HostBucketIndex::kBands, 0);
  for (HostId h = 0; h < n; ++h) {
    const int b = core::HostBucketIndex::band_of(
        core::FleetState::expected_free_cpu(snap, h));
    if (b >= 0) ++bands[b];
  }
  for (int b = 0; b < core::HostBucketIndex::kBands; ++b) {
    if (index.band_count(b) != bands[b]) {
      report(Rule::kFleetIndex, t,
             msg("band %d: index counts %d hosts, recount says %d", b,
                 index.band_count(b), bands[b]));
    }
  }
}

void InvariantChecker::report(Rule rule, sim::SimTime t,
                              std::string message) {
  ++rule_counts_[static_cast<int>(rule)];
  if (violations_.size() >= config_.max_violations) return;
  violations_.push_back(Violation{rule, t, std::move(message)});
  if (on_violation) on_violation(violations_.back());
  if (config_.abort_on_violation) {
    std::fprintf(stderr, "easched invariant violation [%s] at t=%.3f: %s\n",
                 to_string(rule), t, violations_.back().message.c_str());
    std::abort();
  }
}

}  // namespace easched::validate
