// Run-time invariant checking for the simulated datacenter.
//
// After four PRs of aggressive optimisation (cached score matrices, pooled
// event kernel, parallel sweeps) the paper's headline numbers rest on
// simulation state staying physically coherent; the fuzz tests only catch
// crashes, not silent drift. The InvariantChecker closes that gap: a set
// of pluggable rules, each checking one conservation law of the model, run
// against the live world at well-defined sync points (end of every
// scheduler round, every host power transition, every dispatched event).
//
// Rules:
//   kVmConservation    every active VM exists exactly once — resident
//                      lists and VM back-pointers agree across
//                      create/migrate/destroy/rollback paths
//   kCapacity          per-host memory is never oversubscribed; CPU only
//                      within the Xen-credit policy (the Random /
//                      Round-Robin baselines legitimately oversubscribe
//                      CPU — shares shrink — so that check is opt-in)
//   kPowerLegality     host power-state transitions follow the machine in
//                      host.hpp (incl. boot-failure and quarantine paths)
//   kScoreCache        every cached score-matrix cell equals a
//                      from-scratch recomputation
//   kEventMonotonicity the event queue pops in nondecreasing time order
//   kEnergyConsistency recorded power samples match the power model for
//                      the host's state, and the energy integral is the
//                      sum of the per-host integrals
//   kFleetSnapshot     the cross-round fleet snapshot (core/fleet.hpp) is
//                      bitwise equal to a fresh re-read of every host —
//                      i.e. the dirty journal missed nothing, which also
//                      implies a clean round's score matrix is byte-stable
//   kFleetIndex        the capacity-bucket index (margins, per-block
//                      maxima, band histogram) is consistent with the
//                      snapshot it was built from
//
// The checker is passive: it never mutates the world. On violation it
// records a Violation, invokes the `on_violation` callback (the runner
// uses this to emit an obs trace event and write a repro bundle), and —
// when configured — aborts the process for fail-fast debugging.
//
// Access from instrumented layers goes through validate/validate.hpp,
// which compiles to nothing under EASCHED_VALIDATE=OFF. This class itself
// is always built, so tests can drive it directly in either configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "datacenter/host.hpp"
#include "datacenter/ids.hpp"
#include "resilience/health.hpp"
#include "sim/simulator.hpp"

namespace easched::core {
class FleetState;
class ScoreModel;
}  // namespace easched::core

namespace easched::datacenter {
class Datacenter;
}  // namespace easched::datacenter

namespace easched::validate {

enum class Rule : std::uint8_t {
  kVmConservation,
  kCapacity,
  kPowerLegality,
  kScoreCache,
  kEventMonotonicity,
  kEnergyConsistency,
  kLadderTransition,
  kBreakerTransition,
  kFleetSnapshot,
  kFleetIndex,
};
inline constexpr int kNumRules = 10;

const char* to_string(Rule rule) noexcept;

struct Violation {
  Rule rule = Rule::kVmConservation;
  sim::SimTime t = 0;
  std::string message;
};

struct CheckerConfig {
  /// Abort the process on the first violation (fail-fast debugging).
  bool abort_on_violation = false;
  /// The Xen credit scheduler shrinks shares under contention, so the
  /// non-consolidating baselines may reserve more CPU than a host has;
  /// memory, by contrast, is never oversubscribable. Set to false when
  /// validating a consolidating policy to tighten the capacity rule.
  bool allow_cpu_oversubscription = true;
  /// Stop recording (but keep counting) violations past this cap, so a
  /// systemic breakage cannot balloon memory.
  std::size_t max_violations = 64;
};

class InvariantChecker : public sim::SimObserver {
 public:
  explicit InvariantChecker(CheckerConfig config = {});

  /// Full world sweep: VM conservation, capacity, quarantine legality and
  /// energy consistency. Called by the driver at the end of every round.
  void check_datacenter(const datacenter::Datacenter& dc);

  /// Cache-vs-recompute agreement over every warmed score-matrix cell.
  /// Called by the score policy after each hill-climb.
  void check_score_model(const core::ScoreModel& model, sim::SimTime t);

  /// Fleet-state coherence (kFleetSnapshot + kFleetIndex): the cross-round
  /// snapshot against a fresh re-read of every host, and the bucket index
  /// against the snapshot. Called by the score policy right after each
  /// incremental refresh, with `t` = the refresh's `now`.
  void check_fleet(const core::FleetState& fleet,
                   const datacenter::Datacenter& dc, sim::SimTime t);

  /// Power-state transition hook, called by the Datacenter *before* it
  /// assigns the new state.
  void on_host_transition(sim::SimTime t, datacenter::HostId h,
                          datacenter::HostState from,
                          datacenter::HostState to);

  /// sim::SimObserver: event-queue monotonicity.
  void on_event_dispatched(sim::SimTime t) override;

  [[nodiscard]] static bool transition_legal(
      datacenter::HostState from, datacenter::HostState to) noexcept;

  /// Degradation-ladder transition hook, called by the
  /// ResilienceController *before* it assigns the new level. Legal moves
  /// are exactly one rung, downward only on a budget breach and upward
  /// only on hysteresis recovery — so the level is monotone non-improving
  /// within a breach episode.
  void check_ladder_shift(sim::SimTime t, resilience::LadderLevel from,
                          resilience::LadderLevel to, bool breach);

  /// Host-health transition hook, called by the ResilienceController
  /// *before* it assigns the new state.
  void check_breaker_transition(sim::SimTime t, datacenter::HostId h,
                                resilience::HostHealth from,
                                resilience::HostHealth to);

  [[nodiscard]] static bool breaker_transition_legal(
      resilience::HostHealth from, resilience::HostHealth to) noexcept;

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  /// Total violations per rule (keeps counting past max_violations).
  [[nodiscard]] std::uint64_t count(Rule rule) const noexcept {
    return rule_counts_[static_cast<int>(rule)];
  }
  /// Number of check entry points executed (sweeps, transitions, events).
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_; }
  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  void clear();

  /// Fired once per recorded violation (not past max_violations). The
  /// runner hooks this to emit a trace event and write the repro bundle.
  std::function<void(const Violation&)> on_violation;

 private:
  void check_conservation(const datacenter::Datacenter& dc, sim::SimTime t);
  void check_capacity(const datacenter::Datacenter& dc, sim::SimTime t);
  void check_energy(const datacenter::Datacenter& dc, sim::SimTime t);
  void report(Rule rule, sim::SimTime t, std::string message);

  CheckerConfig config_;
  std::vector<Violation> violations_;
  std::uint64_t rule_counts_[kNumRules] = {};
  std::uint64_t checks_ = 0;
  sim::SimTime last_event_t_ = 0;
};

}  // namespace easched::validate
