// Scenario repro bundles: everything needed to replay a failing run.
//
// When the InvariantChecker trips mid-run, knowing *that* an invariant
// broke is worth little without a way to replay the scenario: the runner
// therefore captures the run's deterministic inputs — policy, datacenter
// seed and host classes, fault plan, power-range lambdas, and the workload
// slice submitted up to the violation — into a single self-describing text
// file. `scripts/shrink_repro.sh` feeds such a bundle to the shrinker
// (validate/shrink.hpp), which delta-minimises the job list while the
// violation still reproduces.
//
// Format (line-oriented, lossless):
//   # easched repro bundle v1
//   policy=SB
//   dc_seed=5
//   hosts=fast,fast,medium,slow
//   ...key=value headers...
//   --- jobs ---
//   <id> <submit> <dedicated_s> <cpu_pct> <mem_mb> <deadline_factor>
//        <arch> <software> <fault_tolerance> <weight>
//
// Jobs are serialised field-by-field with full precision rather than as
// SWF: the SWF reader re-shifts submit times, re-draws deadline factors
// and drops short jobs — all lossy for replay purposes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "datacenter/host_spec.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace easched::validate {

struct ReproBundle {
  std::string policy = "SB";
  std::uint64_t dc_seed = 1;
  /// One class token per host (HostSpec::klass); rebuilt via specs_for().
  std::vector<std::string> host_classes;
  bool inject_failures = false;
  bool checkpoint_enabled = false;
  double checkpoint_period_s = 1800;
  double lambda_min = 0.30;
  double lambda_max = 0.90;
  sim::SimTime horizon_s = 0;
  /// Inline fault-plan spec (FaultPlan::to_string() with commas); empty
  /// disables injection. parse_fault_plan() accepts it verbatim.
  std::string fault_spec;
  /// "<rule>: message" of the first violation, plus when it fired.
  std::string violation;
  sim::SimTime violation_t = 0;
  workload::Workload jobs;
};

/// Maps class tokens back to host specs ("fast", "medium", "slow",
/// "low-power"; unknown tokens fall back to medium).
std::vector<datacenter::HostSpec> specs_for(
    const std::vector<std::string>& classes);

void write_repro_bundle(std::ostream& out, const ReproBundle& bundle);
/// Throws std::runtime_error when the file cannot be written.
void write_repro_bundle_file(const std::string& path,
                             const ReproBundle& bundle);

/// Throws std::runtime_error on malformed input.
ReproBundle read_repro_bundle(std::istream& in);
ReproBundle read_repro_bundle_file(const std::string& path);

}  // namespace easched::validate
