// Delta-debugging shrinker for failing scenarios.
//
// A chaos or fuzz run that trips an invariant typically does so with
// hundreds of jobs in flight, almost all of them irrelevant. The shrinker
// applies the classic ddmin algorithm (Zeller & Hildebrandt, "Simplifying
// and Isolating Failure-Inducing Input"): partition the job list into n
// chunks, try dropping one chunk at a time (i.e. keep each complement),
// and whenever the reduced list still fails, restart from it with n-1
// chunks; when no complement fails, double the granularity. The result is
// 1-minimal with respect to the chunking — removing any single remaining
// chunk makes the failure disappear.
//
// The predicate is a caller-supplied closure (typically: rebuild the run
// from a repro bundle with this job list, return whether the invariant
// still trips), so the shrinker itself stays independent of the runner.
#pragma once

#include <cstddef>
#include <functional>

#include "workload/job.hpp"

namespace easched::validate {

struct ShrinkOptions {
  /// Hard cap on predicate evaluations; each one replays a run, so this
  /// bounds total shrink time. The result is whatever the search reached.
  std::size_t max_tests = 10000;
};

struct ShrinkResult {
  workload::Workload jobs;       ///< the minimised failing job list
  std::size_t tests_run = 0;     ///< predicate evaluations consumed
  bool reproduced = false;       ///< the input failed at all
};

/// Minimises `failing` while `still_fails` keeps returning true. The
/// predicate is first run on the input itself; when that does not fail the
/// input is returned unchanged with `reproduced = false`.
ShrinkResult shrink_workload(
    workload::Workload failing,
    const std::function<bool(const workload::Workload&)>& still_fails,
    ShrinkOptions options = {});

}  // namespace easched::validate
