// Compile-gated access path to the run's invariant checker.
//
// Mirrors obs/obs.hpp: the checker travels with the run's
// `metrics::Recorder` as a nullable pointer (`Recorder::validator`), so
// every layer that already receives the recorder (Datacenter,
// SchedulerDriver, ScoreBasedPolicy via the datacenter) can reach it
// without new plumbing. Instrumented call sites never touch the pointer
// directly; they go through the accessor below:
//
//   if (auto* ck = validate::checker(recorder)) {
//     ck->check_datacenter(dc);
//   }
//
// With EASCHED_VALIDATE=OFF the accessor is constexpr nullptr, the branch
// folds away, and the whole call site is dead code — the compile-time half
// of the zero-cost guarantee. With validation compiled in but no checker
// attached, each call site is one pointer load and test.
#pragma once

#include "metrics/accumulators.hpp"
#include "validate/invariant_checker.hpp"

#ifndef EASCHED_VALIDATE_ENABLED
#define EASCHED_VALIDATE_ENABLED 1
#endif

namespace easched::validate {

#if EASCHED_VALIDATE_ENABLED

/// The run's invariant checker, or nullptr when none is attached.
[[nodiscard]] inline InvariantChecker* checker(
    const metrics::Recorder& rec) noexcept {
  return rec.validator;
}

#else  // validation compiled out: accessor folds to constant nullptr

[[nodiscard]] constexpr InvariantChecker* checker(
    const metrics::Recorder&) noexcept {
  return nullptr;
}

#endif  // EASCHED_VALIDATE_ENABLED

}  // namespace easched::validate
