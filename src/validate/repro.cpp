#include "validate/repro.hpp"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace easched::validate {
namespace {

constexpr const char* kHeader = "# easched repro bundle v1";
constexpr const char* kJobsSeparator = "--- jobs ---";

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out.push_back(sep);
    out += p;
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

}  // namespace

std::vector<datacenter::HostSpec> specs_for(
    const std::vector<std::string>& classes) {
  std::vector<datacenter::HostSpec> specs;
  specs.reserve(classes.size());
  for (const auto& klass : classes) {
    if (klass == "fast") {
      specs.push_back(datacenter::HostSpec::fast());
    } else if (klass == "slow") {
      specs.push_back(datacenter::HostSpec::slow());
    } else if (klass == "low-power") {
      specs.push_back(datacenter::HostSpec::low_power());
    } else {
      specs.push_back(datacenter::HostSpec::medium());
    }
  }
  return specs;
}

void write_repro_bundle(std::ostream& out, const ReproBundle& bundle) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kHeader << '\n';
  out << "policy=" << bundle.policy << '\n';
  out << "dc_seed=" << bundle.dc_seed << '\n';
  out << "hosts=" << join(bundle.host_classes, ',') << '\n';
  out << "inject_failures=" << (bundle.inject_failures ? 1 : 0) << '\n';
  out << "checkpoint_enabled=" << (bundle.checkpoint_enabled ? 1 : 0) << '\n';
  out << "checkpoint_period_s=" << bundle.checkpoint_period_s << '\n';
  out << "lambda_min=" << bundle.lambda_min << '\n';
  out << "lambda_max=" << bundle.lambda_max << '\n';
  out << "horizon_s=" << bundle.horizon_s << '\n';
  if (!bundle.fault_spec.empty()) out << "faults=" << bundle.fault_spec << '\n';
  if (!bundle.violation.empty()) out << "violation=" << bundle.violation << '\n';
  out << "violation_t=" << bundle.violation_t << '\n';
  out << kJobsSeparator << '\n';
  for (const auto& job : bundle.jobs) {
    out << job.id << ' ' << job.submit << ' ' << job.dedicated_seconds << ' '
        << job.cpu_pct << ' ' << job.mem_mb << ' ' << job.deadline_factor
        << ' ' << static_cast<int>(job.arch) << ' ' << job.software << ' '
        << job.fault_tolerance << ' ' << job.weight << '\n';
  }
}

void write_repro_bundle_file(const std::string& path,
                             const ReproBundle& bundle) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write repro bundle: " + path);
  write_repro_bundle(out, bundle);
}

ReproBundle read_repro_bundle(std::istream& in) {
  ReproBundle bundle;
  bundle.policy.clear();
  std::string line;
  bool in_jobs = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (line == kJobsSeparator) {
      in_jobs = true;
      continue;
    }
    if (in_jobs) {
      std::istringstream fields(line);
      workload::Job job;
      int arch = 0;
      if (!(fields >> job.id >> job.submit >> job.dedicated_seconds >>
            job.cpu_pct >> job.mem_mb >> job.deadline_factor >> arch >>
            job.software >> job.fault_tolerance >> job.weight)) {
        throw std::runtime_error("malformed repro bundle job line: " + line);
      }
      job.arch = static_cast<workload::Arch>(arch);
      bundle.jobs.push_back(job);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("malformed repro bundle line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "policy") {
      bundle.policy = value;
    } else if (key == "dc_seed") {
      bundle.dc_seed = std::stoull(value);
    } else if (key == "hosts") {
      bundle.host_classes = split(value, ',');
    } else if (key == "inject_failures") {
      bundle.inject_failures = value != "0";
    } else if (key == "checkpoint_enabled") {
      bundle.checkpoint_enabled = value != "0";
    } else if (key == "checkpoint_period_s") {
      bundle.checkpoint_period_s = std::stod(value);
    } else if (key == "lambda_min") {
      bundle.lambda_min = std::stod(value);
    } else if (key == "lambda_max") {
      bundle.lambda_max = std::stod(value);
    } else if (key == "horizon_s") {
      bundle.horizon_s = std::stod(value);
    } else if (key == "faults") {
      bundle.fault_spec = value;
    } else if (key == "violation") {
      bundle.violation = value;
    } else if (key == "violation_t") {
      bundle.violation_t = std::stod(value);
    }
    // Unknown keys are skipped so newer writers stay readable.
  }
  if (bundle.policy.empty()) {
    throw std::runtime_error("repro bundle missing policy=");
  }
  return bundle;
}

ReproBundle read_repro_bundle_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read repro bundle: " + path);
  return read_repro_bundle(in);
}

}  // namespace easched::validate
