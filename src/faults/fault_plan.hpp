// Declarative description of a deterministic fault-injection scenario.
//
// A FaultPlan scripts how the Datacenter's actuator operations misbehave:
// per-operation probabilities of failing outright, hanging forever (until
// the recovery layer's deadline aborts them) or running slower than drawn,
// plus per-host "lemon" multipliers that concentrate trouble on specific
// machines. The plan also carries the knobs of the recovery half — the
// operation-timeout factor, the retry/backoff policy and the quarantine
// budget — so one `--faults=<spec|file>` argument configures a whole
// chaos-plus-recovery experiment.
//
// Determinism contract: a FaultPlan plus its seed fully determines every
// injection decision. The FaultInjector draws from its own dedicated RNG
// stream (never from the datacenter's or driver's), and performs a fixed
// number of draws per consulted operation, so enabling, disabling or
// editing one probability never perturbs the draws seen elsewhere; the
// same (plan, workload, config) triple reproduces a bit-identical fault
// event trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datacenter/ids.hpp"

namespace easched::faults {

/// Actuator operations the injector can intercept.
enum class FaultOp : std::uint8_t {
  kCreate,      ///< VM creation on a host
  kMigrate,     ///< live migration (decision attributed to the destination)
  kPowerOn,     ///< host boot
  kPowerOff,    ///< host shutdown
  kCheckpoint,  ///< VM checkpoint snapshot
};
inline constexpr std::size_t kNumFaultOps = 5;

const char* to_string(FaultOp op) noexcept;

/// Misbehaviour mix for one operation kind. Probabilities are evaluated in
/// the order fail, hang, slow against a single uniform draw, so their sum
/// is clamped to 1.
struct OpFaultSpec {
  double fail_prob = 0;  ///< operation aborts partway through
  double hang_prob = 0;  ///< operation never completes (deadline aborts it)
  double slow_prob = 0;  ///< operation stretched by ~slow_factor
  double slow_factor = 3.0;  ///< mean duration multiplier for slow outcomes
};

/// A host singled out for extra trouble: all of its fail/hang/slow
/// probabilities are multiplied by `multiplier` (capped so the category
/// sum stays <= 1).
struct LemonHost {
  datacenter::HostId host = 0;
  double multiplier = 1.0;
};

struct FaultPlan {
  /// Master switch; parse_fault_plan() sets it, and a default-constructed
  /// plan is inert so existing configurations stay bit-identical.
  bool enabled = false;

  /// Seed of the injector's dedicated RNG stream.
  std::uint64_t seed = 4242;

  /// Per-operation misbehaviour, indexed by FaultOp.
  OpFaultSpec ops[kNumFaultOps];

  std::vector<LemonHost> lemons;

  /// In-flight operations are aborted after timeout_factor x the mean
  /// duration of their kind (boot deadline: timeout_factor x boot_time_s).
  double op_timeout_factor = 4.0;

  // ---- recovery knobs (copied into the driver / datacenter configs by the
  // experiment runner so one spec scripts the whole scenario) -------------
  double retry_base_s = 5.0;     ///< first retry delay
  double retry_cap_s = 300.0;    ///< exponential backoff ceiling
  double retry_jitter = 0.5;     ///< delay *= 1 + jitter * U[0,1)
  int quarantine_budget = 3;     ///< faults within the window before exile
  double quarantine_window_s = 3600.0;
  double quarantine_cooldown_s = 1800.0;

  // ---- circuit-breaker knobs (resilience control plane) ------------------
  // When breaker_threshold > 0 the experiment runner enables the resilience
  // controller's per-host breakers with these settings, so a single
  // `--faults=` spec scripts chaos, recovery and breaker policy together.
  int breaker_threshold = 0;          ///< consecutive failures to open; 0 = off
  double breaker_probe_after_s = 600; ///< half-open probe delay after opening
  int breaker_dead_after = 0;         ///< re-opens before host is dead; 0 = never

  [[nodiscard]] const OpFaultSpec& spec(FaultOp op) const {
    return ops[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] OpFaultSpec& spec(FaultOp op) {
    return ops[static_cast<std::size_t>(op)];
  }
  /// Combined lemon multiplier for a host (1 when not a lemon).
  [[nodiscard]] double lemon_multiplier(datacenter::HostId h) const;

  /// Round-trippable textual form (one key=value per line).
  [[nodiscard]] std::string to_string() const;
};

/// Parses a plan from either an inline spec or a file.
///
/// An inline spec is a comma-separated list of key=value pairs:
///   seed=42,migrate.fail=0.05,create.hang=0.01,lemon=3:8,timeout_factor=4
/// Operation keys: create | migrate | power_on | power_off | checkpoint,
/// each with .fail / .hang / .slow / .slow_factor. Recovery keys:
/// timeout_factor, retry_base, retry_cap, retry_jitter, quarantine_budget,
/// quarantine_window, quarantine_cooldown, breaker_threshold,
/// breaker_probe_after, breaker_dead_after. `lemon=<host>:<multiplier>` may
/// repeat. A spec containing no '=' is treated as a path to a file holding
/// the same pairs, one per line ('#' starts a comment).
///
/// Throws std::invalid_argument on unknown keys or malformed values.
FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace easched::faults
