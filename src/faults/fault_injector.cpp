#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cstdio>

namespace easched::faults {

const char* to_string(FaultOutcome::Kind kind) noexcept {
  switch (kind) {
    case FaultOutcome::Kind::kNone:
      return "none";
    case FaultOutcome::Kind::kFail:
      return "fail";
    case FaultOutcome::Kind::kHang:
      return "hang";
    case FaultOutcome::Kind::kSlow:
      return "slow";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

FaultOutcome FaultInjector::decide(FaultOp op, datacenter::HostId h,
                                   sim::SimTime now) {
  // Fixed draw count: one categorical draw, one payload draw.
  const double u = rng_.uniform01();
  const double payload = rng_.uniform01();

  const OpFaultSpec& spec = plan_.spec(op);
  const double m = plan_.lemon_multiplier(h);
  // Scale by the lemon multiplier, then renormalise if the sum spills
  // past 1 so the categories keep their relative weights.
  double fail = spec.fail_prob * m;
  double hang = spec.hang_prob * m;
  double slow = spec.slow_prob * m;
  const double sum = fail + hang + slow;
  if (sum > 1.0) {
    fail /= sum;
    hang /= sum;
    slow /= sum;
  }

  FaultOutcome out;
  if (u < fail) {
    out.kind = FaultOutcome::Kind::kFail;
    out.fail_fraction = 0.1 + 0.8 * payload;
  } else if (u < fail + hang) {
    out.kind = FaultOutcome::Kind::kHang;
  } else if (u < fail + hang + slow) {
    out.kind = FaultOutcome::Kind::kSlow;
    // Stretch around the configured mean: factor in [1 + (f-1)/2, 1 + 3(f-1)/2].
    out.slow_factor = 1.0 + (spec.slow_factor - 1.0) * (0.5 + payload);
  }

  if (out.injected()) {
    ++injected_;
    char buf[128];
    std::snprintf(buf, sizeof buf, "inject %s host=%lu %s f=%.4f x=%.4f",
                  faults::to_string(op), static_cast<unsigned long>(h),
                  faults::to_string(out.kind), out.fail_fraction,
                  out.slow_factor);
    record(now, buf);
  }
  return out;
}

void FaultInjector::record(sim::SimTime now, const std::string& line) {
  char prefix[32];
  std::snprintf(prefix, sizeof prefix, "%.3f ", now);
  trace_.push_back(prefix + line);
}

}  // namespace easched::faults
