// The deterministic chaos engine.
//
// The Datacenter consults the injector at the start of every intercepted
// actuator operation; the injector rolls its dedicated RNG stream against
// the FaultPlan and returns an outcome (proceed / fail partway / hang /
// run slow). Every decision and every recovery action taken afterwards
// (abort, rollback, retry, quarantine) is appended to a formatted event
// trace, which is what the determinism tests compare: the same plan seed
// must yield the same trace across runs and solver thread counts.
//
// The injector performs exactly two RNG draws per decision regardless of
// the outcome, so editing one operation's probabilities never shifts the
// draws seen by later decisions of other kinds.
#pragma once

#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "sim/time.hpp"
#include "support/rng.hpp"

namespace easched::faults {

struct FaultOutcome {
  enum class Kind : std::uint8_t {
    kNone,  ///< operation proceeds normally
    kFail,  ///< aborts after `fail_fraction` of its work
    kHang,  ///< never completes; the deadline layer must abort it
    kSlow,  ///< duration multiplied by `slow_factor`
  };
  Kind kind = Kind::kNone;
  double fail_fraction = 1.0;  ///< in [0.1, 0.9] for kFail
  double slow_factor = 1.0;    ///< > 1 for kSlow

  [[nodiscard]] bool injected() const { return kind != Kind::kNone; }
};

const char* to_string(FaultOutcome::Kind kind) noexcept;

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Rolls the dice for one operation of kind `op` on host `h` at
  /// simulation time `now`. Records non-kNone outcomes in the trace.
  FaultOutcome decide(FaultOp op, datacenter::HostId h, sim::SimTime now);

  /// Appends a recovery-side event (retry/abort/rollback/quarantine...)
  /// to the trace; the caller formats the payload.
  void record(sim::SimTime now, const std::string& line);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const std::vector<std::string>& trace() const noexcept {
    return trace_;
  }
  /// Number of injected (non-kNone) decisions so far.
  [[nodiscard]] std::uint64_t injected_count() const noexcept {
    return injected_;
  }

 private:
  FaultPlan plan_;
  support::Rng rng_;
  std::vector<std::string> trace_;
  std::uint64_t injected_ = 0;
};

}  // namespace easched::faults
