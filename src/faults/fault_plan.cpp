#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace easched::faults {

namespace {

const char* kOpNames[kNumFaultOps] = {"create", "migrate", "power_on",
                                      "power_off", "checkpoint"};

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("faults: bad numeric value for '" + key +
                                "': '" + value + "'");
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("faults: bad integer value for '" + key +
                                "': '" + value + "'");
  }
}

/// `lemon=<host>:<multiplier>`.
LemonHost parse_lemon(const std::string& value) {
  const auto colon = value.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("faults: lemon wants <host>:<multiplier>, got '" +
                                value + "'");
  }
  LemonHost lemon;
  lemon.host = static_cast<datacenter::HostId>(
      parse_u64("lemon", value.substr(0, colon)));
  lemon.multiplier = parse_double("lemon", value.substr(colon + 1));
  if (lemon.multiplier < 0) {
    throw std::invalid_argument("faults: lemon multiplier must be >= 0");
  }
  return lemon;
}

void apply_pair(FaultPlan& plan, const std::string& key,
                const std::string& value) {
  if (key == "seed") {
    plan.seed = parse_u64(key, value);
    return;
  }
  if (key == "timeout_factor") {
    plan.op_timeout_factor = parse_double(key, value);
    return;
  }
  if (key == "retry_base") {
    plan.retry_base_s = parse_double(key, value);
    return;
  }
  if (key == "retry_cap") {
    plan.retry_cap_s = parse_double(key, value);
    return;
  }
  if (key == "retry_jitter") {
    plan.retry_jitter = parse_double(key, value);
    return;
  }
  if (key == "quarantine_budget") {
    plan.quarantine_budget = static_cast<int>(parse_u64(key, value));
    return;
  }
  if (key == "quarantine_window") {
    plan.quarantine_window_s = parse_double(key, value);
    return;
  }
  if (key == "quarantine_cooldown") {
    plan.quarantine_cooldown_s = parse_double(key, value);
    return;
  }
  if (key == "breaker_threshold") {
    plan.breaker_threshold = static_cast<int>(parse_u64(key, value));
    return;
  }
  if (key == "breaker_probe_after") {
    plan.breaker_probe_after_s = parse_double(key, value);
    return;
  }
  if (key == "breaker_dead_after") {
    plan.breaker_dead_after = static_cast<int>(parse_u64(key, value));
    return;
  }
  if (key == "lemon") {
    plan.lemons.push_back(parse_lemon(value));
    return;
  }
  // <op>.<field>
  const auto dot = key.find('.');
  if (dot != std::string::npos) {
    const std::string op_name = key.substr(0, dot);
    const std::string field = key.substr(dot + 1);
    for (std::size_t i = 0; i < kNumFaultOps; ++i) {
      if (op_name != kOpNames[i]) continue;
      OpFaultSpec& spec = plan.ops[i];
      const double v = parse_double(key, value);
      if (field == "fail") {
        spec.fail_prob = v;
      } else if (field == "hang") {
        spec.hang_prob = v;
      } else if (field == "slow") {
        spec.slow_prob = v;
      } else if (field == "slow_factor") {
        spec.slow_factor = v;
      } else {
        throw std::invalid_argument("faults: unknown field '" + field +
                                    "' for operation '" + op_name + "'");
      }
      return;
    }
  }
  throw std::invalid_argument("faults: unknown key '" + key + "'");
}

void apply_line(FaultPlan& plan, std::string line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  // Trim.
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return;
  const auto last = line.find_last_not_of(" \t\r\n");
  line = line.substr(first, last - first + 1);
  const auto eq = line.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("faults: expected key=value, got '" + line +
                                "'");
  }
  apply_pair(plan, line.substr(0, eq), line.substr(eq + 1));
}

}  // namespace

const char* to_string(FaultOp op) noexcept {
  const auto i = static_cast<std::size_t>(op);
  return i < kNumFaultOps ? kOpNames[i] : "?";
}

double FaultPlan::lemon_multiplier(datacenter::HostId h) const {
  double m = 1.0;
  for (const LemonHost& lemon : lemons) {
    if (lemon.host == h) m *= lemon.multiplier;
  }
  return m;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed << '\n';
  out << "timeout_factor=" << op_timeout_factor << '\n';
  for (std::size_t i = 0; i < kNumFaultOps; ++i) {
    const OpFaultSpec& spec = ops[i];
    if (spec.fail_prob > 0) {
      out << kOpNames[i] << ".fail=" << spec.fail_prob << '\n';
    }
    if (spec.hang_prob > 0) {
      out << kOpNames[i] << ".hang=" << spec.hang_prob << '\n';
    }
    if (spec.slow_prob > 0) {
      out << kOpNames[i] << ".slow=" << spec.slow_prob << '\n';
      out << kOpNames[i] << ".slow_factor=" << spec.slow_factor << '\n';
    }
  }
  for (const LemonHost& lemon : lemons) {
    out << "lemon=" << lemon.host << ':' << lemon.multiplier << '\n';
  }
  out << "retry_base=" << retry_base_s << '\n';
  out << "retry_cap=" << retry_cap_s << '\n';
  out << "retry_jitter=" << retry_jitter << '\n';
  out << "quarantine_budget=" << quarantine_budget << '\n';
  out << "quarantine_window=" << quarantine_window_s << '\n';
  out << "quarantine_cooldown=" << quarantine_cooldown_s << '\n';
  // Breakers are off by default; emitting the keys only when armed keeps
  // the textual form of pre-breaker plans unchanged.
  if (breaker_threshold > 0) {
    out << "breaker_threshold=" << breaker_threshold << '\n';
    out << "breaker_probe_after=" << breaker_probe_after_s << '\n';
    out << "breaker_dead_after=" << breaker_dead_after << '\n';
  }
  return out.str();
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  plan.enabled = true;
  if (spec.find('=') == std::string::npos) {
    // Treat as a file of key=value lines.
    std::ifstream in(spec);
    if (!in.is_open()) {
      throw std::invalid_argument("faults: cannot open plan file '" + spec +
                                  "'");
    }
    for (std::string line; std::getline(in, line);) apply_line(plan, line);
    return plan;
  }
  std::stringstream ss(spec);
  for (std::string item; std::getline(ss, item, ',');) apply_line(plan, item);
  return plan;
}

}  // namespace easched::faults
