// Time-varying energy tariff and carbon intensity of one datacenter site.
//
// Supports the multi-datacenter extension (the paper cites Le et al. [20]:
// distribute workload across locations "according to its power consumption
// and its source", and notes "our framework can be applied to this model").
// Price and carbon follow diurnal sine profiles offset by the site's
// timezone: cheap/green at night and when local renewables peak.
#pragma once

#include "sim/time.hpp"

namespace easched::geo {

struct EnergyProfile {
  double base_price_eur_kwh = 0.12;
  double price_amplitude = 0.3;     ///< relative swing (0.3 = +-30 %)
  double price_peak_hour = 19.0;    ///< local hour of the price maximum

  double base_carbon_g_kwh = 300;   ///< gCO2 per kWh
  double carbon_amplitude = 0.4;
  double carbon_peak_hour = 20.0;   ///< fossil peak in the local evening

  double timezone_offset_h = 0.0;   ///< site-local = UTC + offset

  /// Tariff [EUR/kWh] at absolute simulation time t (t=0 is UTC midnight).
  [[nodiscard]] double price_eur_kwh(sim::SimTime t) const;
  /// Carbon intensity [gCO2/kWh] at absolute simulation time t.
  [[nodiscard]] double carbon_g_kwh(sim::SimTime t) const;
};

}  // namespace easched::geo
