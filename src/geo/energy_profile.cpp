#include "geo/energy_profile.hpp"

#include <cmath>

namespace easched::geo {

namespace {

/// Sine with its maximum at `peak_hour` site-local time.
double diurnal(sim::SimTime t, double timezone_offset_h, double peak_hour,
               double amplitude) {
  const double local_h =
      std::fmod(t / sim::kHour + timezone_offset_h + 240.0, 24.0);
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  return 1.0 + amplitude * std::cos(kTwoPi * (local_h - peak_hour) / 24.0);
}

}  // namespace

double EnergyProfile::price_eur_kwh(sim::SimTime t) const {
  return base_price_eur_kwh *
         diurnal(t, timezone_offset_h, price_peak_hour, price_amplitude);
}

double EnergyProfile::carbon_g_kwh(sim::SimTime t) const {
  return base_carbon_g_kwh *
         diurnal(t, timezone_offset_h, carbon_peak_hour, carbon_amplitude);
}

}  // namespace easched::geo
