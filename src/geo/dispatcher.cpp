#include "geo/dispatcher.hpp"

#include <limits>

#include "experiments/setup.hpp"
#include "support/contracts.hpp"

namespace easched::geo {

const char* to_string(DispatchPolicy policy) noexcept {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kCheapestEnergy:
      return "cheapest-energy";
    case DispatchPolicy::kGreenest:
      return "greenest";
    case DispatchPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

namespace {

/// One fully wired site.
struct Site {
  SiteConfig config;
  std::unique_ptr<metrics::Recorder> recorder;
  std::unique_ptr<datacenter::Datacenter> dc;
  std::unique_ptr<sched::Policy> policy;
  std::unique_ptr<sched::SchedulerDriver> driver;
  std::size_t dispatched = 0;
  double cost_eur = 0;
  double carbon_g = 0;
};

std::size_t pick_site(const std::vector<std::unique_ptr<Site>>& sites,
                      DispatchPolicy policy, sim::SimTime now,
                      std::size_t round_robin_cursor) {
  EA_EXPECTS(!sites.empty());
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return round_robin_cursor % sites.size();
    case DispatchPolicy::kCheapestEnergy: {
      std::size_t best = 0;
      double best_price = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < sites.size(); ++i) {
        const double p = sites[i]->config.energy.price_eur_kwh(now);
        if (p < best_price) {
          best_price = p;
          best = i;
        }
      }
      return best;
    }
    case DispatchPolicy::kGreenest: {
      std::size_t best = 0;
      double best_carbon = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < sites.size(); ++i) {
        const double c = sites[i]->config.energy.carbon_g_kwh(now);
        if (c < best_carbon) {
          best_carbon = c;
          best = i;
        }
      }
      return best;
    }
    case DispatchPolicy::kLeastLoaded: {
      std::size_t best = 0;
      double best_load = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < sites.size(); ++i) {
        const double load =
            static_cast<double>(sites[i]->dc->working_count()) /
            static_cast<double>(sites[i]->dc->num_hosts());
        if (load < best_load) {
          best_load = load;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace

GeoResult run_geo(const workload::Workload& jobs, const GeoConfig& config) {
  EA_EXPECTS(!jobs.empty());
  EA_EXPECTS(!config.sites.empty());

  sim::Simulator simulator;
  std::vector<std::unique_ptr<Site>> sites;
  std::size_t finished_total = 0;

  for (const auto& site_config : config.sites) {
    auto site = std::make_unique<Site>();
    site->config = site_config;
    site->recorder = std::make_unique<metrics::Recorder>(
        site_config.datacenter.hosts.size());
    site->dc = std::make_unique<datacenter::Datacenter>(
        simulator, site_config.datacenter, *site->recorder);
    site->policy = experiments::make_policy(site_config.policy);
    site->driver = std::make_unique<sched::SchedulerDriver>(
        simulator, *site->dc, *site->policy, site_config.driver);
    site->driver->on_job_finished = [&finished_total, &simulator,
                                     total = jobs.size()](datacenter::VmId) {
      if (++finished_total == total) simulator.stop();
    };
    sites.push_back(std::move(site));
  }

  // Tariff-weighted cost integration (piecewise-constant sampling of the
  // slowly varying price/carbon curves).
  simulator.every(config.cost_sample_period_s, [&] {
    const sim::SimTime now = simulator.now();
    for (auto& site : sites) {
      const double kwh = site->recorder->watts.total_current() *
                         config.cost_sample_period_s / sim::kHour / 1000.0;
      site->cost_eur += kwh * site->config.energy.price_eur_kwh(now);
      site->carbon_g += kwh * site->config.energy.carbon_g_kwh(now);
    }
  });

  // Arrival events: route each job at its submit instant.
  std::size_t cursor = 0;
  for (const auto& job : jobs) {
    simulator.at(job.submit, [&, job] {
      const std::size_t target =
          pick_site(sites, config.dispatch, simulator.now(), cursor);
      ++cursor;
      sites[target]->driver->submit_job_now(job);
      ++sites[target]->dispatched;
    });
  }

  if (config.horizon_s > 0) {
    simulator.run_until(config.horizon_s);
  } else {
    simulator.run();
  }

  GeoResult result;
  result.end_time_s = simulator.now();
  result.hit_horizon = finished_total < jobs.size();
  double weighted_s = 0;
  std::size_t total_finished = 0;
  for (auto& site : sites) {
    SiteResult sr;
    sr.name = site->config.name;
    sr.report = metrics::make_report(
        *site->recorder, simulator.now(), site->config.policy,
        site->config.driver.power.lambda_min,
        site->config.driver.power.lambda_max);
    sr.jobs_dispatched = site->dispatched;
    sr.energy_cost_eur = site->cost_eur;
    sr.carbon_kg = site->carbon_g / 1000.0;
    result.total_energy_kwh += sr.report.energy_kwh;
    result.total_cost_eur += sr.energy_cost_eur;
    result.total_carbon_kg += sr.carbon_kg;
    weighted_s +=
        sr.report.satisfaction * static_cast<double>(sr.report.jobs_finished);
    total_finished += sr.report.jobs_finished;
    result.sites.push_back(std::move(sr));
  }
  result.mean_satisfaction =
      total_finished > 0 ? weighted_s / static_cast<double>(total_finished)
                         : 0.0;
  return result;
}

}  // namespace easched::geo
