// Multi-datacenter workload dispatch (extension of section II's outlook:
// Le et al. [20] distribute load across locations by power cost and source;
// the paper: "Our framework can be applied to this model").
//
// A GeoDispatcher owns several complete datacenter sites — each with its
// own Datacenter, scheduling policy, driver and power controller, all
// sharing one simulated clock — and routes every arriving job to a site
// according to a dispatch policy. Energy cost and carbon are integrated
// against each site's time-varying profile.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datacenter/datacenter.hpp"
#include "geo/energy_profile.hpp"
#include "metrics/report.hpp"
#include "sched/driver.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace easched::geo {

/// How arriving jobs are routed between sites.
enum class DispatchPolicy {
  kRoundRobin,      ///< spread blindly
  kCheapestEnergy,  ///< to the site with the lowest tariff right now
  kGreenest,        ///< to the site with the lowest carbon intensity now
  kLeastLoaded,     ///< to the site with the lowest working-node fraction
};

const char* to_string(DispatchPolicy policy) noexcept;

/// One site = local scheduling stack + energy profile.
struct SiteConfig {
  std::string name = "site";
  datacenter::DatacenterConfig datacenter;
  sched::DriverConfig driver;
  std::string policy = "SB";  ///< local scheduling policy (see make_policy)
  EnergyProfile energy;
};

struct GeoConfig {
  std::vector<SiteConfig> sites;
  DispatchPolicy dispatch = DispatchPolicy::kCheapestEnergy;
  /// Cadence at which watts x price are accumulated (tariffs move hourly,
  /// so minutes-scale sampling integrates them accurately).
  sim::SimTime cost_sample_period_s = 300;
  sim::SimTime horizon_s = 0;  ///< safety cap; 0 = none
};

struct SiteResult {
  std::string name;
  metrics::RunReport report;
  std::size_t jobs_dispatched = 0;
  double energy_cost_eur = 0;
  double carbon_kg = 0;
};

struct GeoResult {
  std::vector<SiteResult> sites;
  double total_energy_kwh = 0;
  double total_cost_eur = 0;
  double total_carbon_kg = 0;
  double mean_satisfaction = 0;  ///< weighted by finished jobs
  sim::SimTime end_time_s = 0;
  bool hit_horizon = false;
};

/// Runs `jobs` across the configured sites and returns per-site and
/// aggregate results.
GeoResult run_geo(const workload::Workload& jobs, const GeoConfig& config);

}  // namespace easched::geo
