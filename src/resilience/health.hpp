// Shared vocabulary of the resilience control plane (see resilience.hpp).
//
// These enums live in their own header because they cross layer
// boundaries: the SchedContext hands the current LadderLevel to every
// policy, and the invariant checker validates HostHealth transitions —
// neither should pull in the whole controller.
#pragma once

#include <cstdint>

namespace easched::resilience {

/// The policy degradation ladder, ordered from full service quality to
/// full protection. Level k+1 is strictly cheaper per round than level k;
/// the ResilienceController walks down one rung per solver-budget breach
/// and back up one rung after a run of healthy rounds (hysteresis).
enum class LadderLevel : std::uint8_t {
  kFull = 0,        ///< full score-based round (placements + consolidation)
  kCachedClimb = 1, ///< cached-score climb with a tight move budget, no
                    ///< consolidation migrations
  kFirstFit = 2,    ///< greedy first-fit/backfilling placements, no solver
  kFrozen = 3,      ///< freeze placements entirely (queue keeps building)
};
inline constexpr int kNumLadderLevels = 4;

const char* to_string(LadderLevel level) noexcept;

/// Per-host health as seen by the circuit breakers. Orthogonal to the
/// power state: a Suspect host keeps running its residents; it only stops
/// receiving new placements until a half-open probe succeeds.
enum class HostHealth : std::uint8_t {
  kHealthy = 0,     ///< breaker closed, host takes placements normally
  kSuspect = 1,     ///< breaker open after K consecutive op failures;
                    ///< half-open probes allowed after the probe delay
  kQuarantined = 2, ///< the datacenter's failure-budget quarantine is
                    ///< active (overrides the breaker until cooldown)
  kDead = 3,        ///< breaker re-opened too many times; host is written
                    ///< off until its hardware is repaired
};
inline constexpr int kNumHostHealthStates = 4;

const char* to_string(HostHealth health) noexcept;

/// Admission-control verdict for one arriving job.
enum class Admission : std::uint8_t {
  kAdmit = 0,  ///< enqueue normally
  kDefer = 1,  ///< re-submit the arrival after defer_delay_s
  kShed = 2,   ///< reject outright (counted, never enters the queue)
};

const char* to_string(Admission admission) noexcept;

}  // namespace easched::resilience
