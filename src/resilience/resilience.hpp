// The resilience control plane: solver deadline watchdog, policy
// degradation ladder, admission control and per-host circuit breakers.
//
// The paper's scheduler assumes every round has time for the full
// score-based optimisation and that every actuated operation lands
// cleanly. At production scale neither holds: a burst of arrivals blows
// the solver budget, and a flapping host turns retries into migration
// thrash. SLA-aware schedulers bound scheduler effort and isolate
// unhealthy hosts, trading a little consolidation quality for bounded
// round cost — the ResilienceController makes that trade-off explicit:
//
//   * Solver deadline watchdog — every round gets a deterministic step
//     budget (hill-climb moves, the unit the solver already counts). A
//     round that exhausts it is a *breach*; the controller walks one rung
//     down the degradation ladder (full -> cached-climb -> first-fit ->
//     frozen) and back up one rung only after `recovery_rounds`
//     consecutive healthy rounds (hysteresis). The budget is counted in
//     solver steps, not wall time, so the ladder walk is bit-identical
//     across machines and EASCHED_SOLVER_THREADS values.
//
//   * Admission control & backpressure — a bounded pending queue with
//     deferral and load-shedding tiers driven by queue depth and an EWMA
//     of per-round solver effort (the deterministic stand-in for round
//     duration). Shed and deferred jobs are counted in the RunReport.
//
//   * Per-host circuit breakers — K consecutive operation failures open a
//     host's breaker (Healthy -> Suspect); after a delay one half-open
//     probe placement is allowed, closing the breaker on success and
//     re-opening it on failure; too many re-opens write the host off
//     (Dead) until repair. The datacenter's quarantine (failure budget
//     within a window) overlays as its own health state. Placement paths
//     consult the controller through Datacenter::placeable().
//
// Plumbing mirrors obs/ and validate/: the controller travels with the
// run's metrics::Recorder as a nullable pointer (Recorder::resilience)
// behind the compile-gated accessor below. With EASCHED_RESILIENCE=OFF
// the accessor folds to constexpr nullptr and every call site is dead
// code; the class itself is always built so tests can drive it directly.
//
// Determinism contract: every input the controller consumes — solver
// move counts, queue depths, operation outcomes, sim-time stamps — is
// identical across runs and solver thread counts, so ladder walks,
// admission verdicts and breaker transitions (and therefore the whole
// RunReport) are too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datacenter/ids.hpp"
#include "metrics/accumulators.hpp"
#include "resilience/health.hpp"
#include "sim/time.hpp"

#ifndef EASCHED_RESILIENCE_ENABLED
#define EASCHED_RESILIENCE_ENABLED 1
#endif

namespace easched::resilience {

struct ResilienceConfig {
  /// Master switch; parse_resilience_spec() sets it, and a
  /// default-constructed config is inert so existing setups are
  /// bit-identical to a build without the controller.
  bool enabled = false;

  // ---- solver deadline watchdog + degradation ladder --------------------
  /// Per-round solver step budget at LadderLevel::kFull (hill-climb moves;
  /// annealing rounds are capped to the same count). 0 = unlimited, which
  /// disables the watchdog and pins the ladder at kFull.
  int solver_budget_moves = 256;
  /// Tighter budget at kCachedClimb (consolidation is also suspended).
  int degraded_budget_moves = 48;
  /// Consecutive healthy (non-breach) rounds before climbing one rung
  /// back up — the recovery hysteresis.
  int recovery_rounds = 3;

  // ---- admission control & backpressure ---------------------------------
  /// Bound on the pending (queued, unallocated) VM count. 0 = unlimited,
  /// which disables admission control entirely.
  std::size_t max_pending = 0;
  /// Deferral tier: arrivals are deferred once depth >= defer_fill *
  /// max_pending (or the effort EWMA crosses its watermark).
  double defer_fill = 0.75;
  /// Shedding tier: arrivals are shed once depth >= shed_fill * max_pending.
  double shed_fill = 1.0;
  /// How long a deferred arrival waits before re-attempting admission.
  double defer_delay_s = 60;
  /// A job deferred this many times is shed instead of deferred again, so
  /// a saturated system cannot defer forever.
  int max_defers_per_job = 8;
  /// EWMA weight of the latest round's solver effort (moves per round) —
  /// the deterministic proxy for round duration.
  double effort_alpha = 0.25;
  /// Deferral also triggers while the effort EWMA is at or above this
  /// value (0 disables the effort tier).
  double effort_defer_watermark = 0;

  // ---- per-host circuit breakers ----------------------------------------
  /// Consecutive operation failures on one host that open its breaker.
  /// 0 disables the breakers.
  int breaker_threshold = 3;
  /// Open -> half-open delay: after this long a single probe placement is
  /// allowed through.
  double breaker_probe_after_s = 600;
  /// Consecutive re-opens (probe failures without an intervening close)
  /// before the host is declared Dead. 0 = never.
  int breaker_dead_after = 0;
};

/// Parses "on" (defaults, enabled) or a comma-separated key=value spec:
///   budget, degraded_budget, recovery_rounds, max_pending, defer_fill,
///   shed_fill, defer_delay, max_defers, effort_alpha, effort_watermark,
///   breaker_threshold, probe_after, dead_after
/// e.g. "budget=128,max_pending=64,breaker_threshold=2,probe_after=300".
/// Throws std::invalid_argument on unknown keys or malformed values.
ResilienceConfig parse_resilience_spec(const std::string& spec);

class ResilienceController {
 public:
  /// `recorder` is where counters, trace events and invariant checks are
  /// routed; it must outlive the controller. `num_hosts` sizes the breaker
  /// table.
  ResilienceController(ResilienceConfig config, metrics::Recorder& recorder,
                       std::size_t num_hosts);

  ResilienceController(const ResilienceController&) = delete;
  ResilienceController& operator=(const ResilienceController&) = delete;

  // ---- round lifecycle (called by the SchedulerDriver) ------------------

  void begin_round(sim::SimTime now);
  /// Reported by the score-based policy after its climb; `moves` is the
  /// solver step count of this round. Exhausting the level's budget marks
  /// the round as a breach.
  void note_solver_effort(sim::SimTime now, int moves);
  /// Ends the round: applies breach/recovery ladder transitions and folds
  /// the round's effort into the EWMA.
  void end_round(sim::SimTime now);

  [[nodiscard]] LadderLevel ladder() const noexcept { return level_; }
  /// Solver step budget of the current ladder level (0 = unlimited). The
  /// cached-climb and first-fit rungs share the tightened budget — on the
  /// first-fit rung each greedy placement counts as one step, so a queue
  /// first-fit cannot drain breaches into the frozen rung.
  [[nodiscard]] int solver_budget() const noexcept;

  // ---- admission control (called by the driver on every arrival) --------

  /// Verdict for an arrival seeing `queue_depth` pending VMs after having
  /// been deferred `defers_so_far` times already. Counts shed/deferred
  /// jobs and emits their trace events (`vm` scopes them; -1 = unknown).
  Admission admit(sim::SimTime now, std::size_t queue_depth,
                  int defers_so_far, std::int64_t vm = -1);
  [[nodiscard]] double defer_delay_s() const noexcept {
    return config_.defer_delay_s;
  }

  // ---- circuit breakers -------------------------------------------------

  /// An actuator operation (creation / migration / boot) started on `h`;
  /// consumes the half-open probe slot when the breaker is probing.
  void note_op_start(datacenter::HostId h, sim::SimTime now);
  void note_op_success(datacenter::HostId h, sim::SimTime now);
  void note_op_failure(datacenter::HostId h, sim::SimTime now);
  /// Host crashed under the failure model: opens the breaker immediately.
  void note_host_crashed(datacenter::HostId h, sim::SimTime now);
  void note_host_quarantined(datacenter::HostId h, sim::SimTime now);
  void note_host_unquarantined(datacenter::HostId h, sim::SimTime now);
  /// Hardware repair gives a Dead host a fresh (Suspect) chance.
  void note_host_repaired(datacenter::HostId h, sim::SimTime now);

  /// True when some breaker could veto a placement (any host not
  /// Healthy). Inline so the per-cell fits/score hot path can skip the
  /// allows_placement() call entirely while the whole fleet is healthy —
  /// the common case, and the reason an idle controller stays within the
  /// bench_resilience_smoke overhead budget.
  [[nodiscard]] bool may_veto_placement() const noexcept {
    return not_healthy_ > 0;
  }
  /// Whether placements/migrations onto `h` are allowed right now:
  /// Healthy, or Suspect with the half-open probe slot free.
  [[nodiscard]] bool allows_placement(datacenter::HostId h,
                                      sim::SimTime now) const;
  /// Dead hosts are excluded from power-on choices.
  [[nodiscard]] bool allows_power_on(datacenter::HostId h) const;
  [[nodiscard]] HostHealth health(datacenter::HostId h) const;

  // ---- introspection (tests / report) -----------------------------------

  [[nodiscard]] const ResilienceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] double effort_ewma() const noexcept { return effort_ewma_; }
  [[nodiscard]] int healthy_rounds() const noexcept {
    return healthy_rounds_;
  }
  [[nodiscard]] LadderLevel max_level_reached() const noexcept {
    return max_level_;
  }
  /// Hosts whose breaker is currently not Healthy.
  [[nodiscard]] std::size_t breakers_not_healthy() const noexcept;

 private:
  struct Breaker {
    HostHealth state = HostHealth::kHealthy;
    int consecutive_failures = 0;
    int open_streak = 0;  ///< re-opens since the last close
    bool probe_inflight = false;
    sim::SimTime opened_at = 0;
  };

  void shift_ladder(sim::SimTime now, LadderLevel to, bool breach);
  void set_health(sim::SimTime now, datacenter::HostId h, HostHealth to);
  void open_breaker(sim::SimTime now, datacenter::HostId h, Breaker& b);

  ResilienceConfig config_;
  metrics::Recorder& recorder_;
  std::vector<Breaker> breakers_;

  LadderLevel level_ = LadderLevel::kFull;
  LadderLevel max_level_ = LadderLevel::kFull;
  bool in_round_ = false;
  bool breach_this_round_ = false;
  int round_moves_ = 0;
  int healthy_rounds_ = 0;
  double effort_ewma_ = 0;
  std::size_t not_healthy_ = 0;  ///< breakers currently not Healthy
};

#if EASCHED_RESILIENCE_ENABLED

/// The run's resilience controller, or nullptr when none is attached.
[[nodiscard]] inline ResilienceController* controller(
    const metrics::Recorder& rec) noexcept {
  return rec.resilience;
}

#else  // resilience compiled out: accessor folds to constant nullptr

[[nodiscard]] constexpr ResilienceController* controller(
    const metrics::Recorder&) noexcept {
  return nullptr;
}

#endif  // EASCHED_RESILIENCE_ENABLED

}  // namespace easched::resilience
