#include "resilience/resilience.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "validate/validate.hpp"

namespace easched::resilience {

const char* to_string(LadderLevel level) noexcept {
  switch (level) {
    case LadderLevel::kFull:        return "full";
    case LadderLevel::kCachedClimb: return "cached-climb";
    case LadderLevel::kFirstFit:    return "first-fit";
    case LadderLevel::kFrozen:      return "frozen";
  }
  return "?";
}

const char* to_string(HostHealth health) noexcept {
  switch (health) {
    case HostHealth::kHealthy:     return "healthy";
    case HostHealth::kSuspect:     return "suspect";
    case HostHealth::kQuarantined: return "quarantined";
    case HostHealth::kDead:        return "dead";
  }
  return "?";
}

const char* to_string(Admission admission) noexcept {
  switch (admission) {
    case Admission::kAdmit: return "admit";
    case Admission::kDefer: return "defer";
    case Admission::kShed:  return "shed";
  }
  return "?";
}

namespace {

[[noreturn]] void bad_spec(const std::string& why) {
  throw std::invalid_argument("resilience spec: " + why);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) bad_spec("trailing junk in " + key + "=" + value);
    return v;
  } catch (const std::invalid_argument&) {
    bad_spec("malformed number in " + key + "=" + value);
  } catch (const std::out_of_range&) {
    bad_spec("out-of-range number in " + key + "=" + value);
  }
}

int parse_int(const std::string& key, const std::string& value) {
  const double v = parse_double(key, value);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v || i < 0)
    bad_spec(key + " must be a non-negative integer, got " + value);
  return i;
}

}  // namespace

ResilienceConfig parse_resilience_spec(const std::string& spec) {
  ResilienceConfig c;
  c.enabled = true;
  if (spec.empty() || spec == "on") return c;
  if (spec == "off") {
    c.enabled = false;
    return c;
  }

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) bad_spec("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);

    if (key == "budget") {
      c.solver_budget_moves = parse_int(key, value);
    } else if (key == "degraded_budget") {
      c.degraded_budget_moves = parse_int(key, value);
    } else if (key == "recovery_rounds") {
      c.recovery_rounds = parse_int(key, value);
    } else if (key == "max_pending") {
      c.max_pending = static_cast<std::size_t>(parse_int(key, value));
    } else if (key == "defer_fill") {
      c.defer_fill = parse_double(key, value);
    } else if (key == "shed_fill") {
      c.shed_fill = parse_double(key, value);
    } else if (key == "defer_delay") {
      c.defer_delay_s = parse_double(key, value);
    } else if (key == "max_defers") {
      c.max_defers_per_job = parse_int(key, value);
    } else if (key == "effort_alpha") {
      c.effort_alpha = parse_double(key, value);
    } else if (key == "effort_watermark") {
      c.effort_defer_watermark = parse_double(key, value);
    } else if (key == "breaker_threshold") {
      c.breaker_threshold = parse_int(key, value);
    } else if (key == "probe_after") {
      c.breaker_probe_after_s = parse_double(key, value);
    } else if (key == "dead_after") {
      c.breaker_dead_after = parse_int(key, value);
    } else {
      bad_spec("unknown key '" + key + "'");
    }
  }

  if (c.recovery_rounds < 1) bad_spec("recovery_rounds must be >= 1");
  if (c.defer_fill > c.shed_fill) bad_spec("defer_fill must be <= shed_fill");
  if (c.effort_alpha <= 0 || c.effort_alpha > 1)
    bad_spec("effort_alpha must be in (0, 1]");
  return c;
}

ResilienceController::ResilienceController(ResilienceConfig config,
                                           metrics::Recorder& recorder,
                                           std::size_t num_hosts)
    : config_(config), recorder_(recorder), breakers_(num_hosts) {}

// ---- round lifecycle ------------------------------------------------------

void ResilienceController::begin_round(sim::SimTime) {
  in_round_ = true;
  round_moves_ = 0;
}

void ResilienceController::note_solver_effort(sim::SimTime, int moves) {
  round_moves_ += moves;
  const int budget = solver_budget();
  if (budget > 0 && round_moves_ >= budget) {
    if (!breach_this_round_) ++recorder_.counts.solver_breaches;
    breach_this_round_ = true;
  }
}

void ResilienceController::end_round(sim::SimTime now) {
  if (!in_round_) return;
  in_round_ = false;
  const bool watchdog_on = config_.enabled && config_.solver_budget_moves > 0;
  if (watchdog_on) {
    if (breach_this_round_) {
      healthy_rounds_ = 0;
      if (level_ != LadderLevel::kFrozen) {
        shift_ladder(now,
                     static_cast<LadderLevel>(static_cast<int>(level_) + 1),
                     /*breach=*/true);
      }
    } else {
      ++healthy_rounds_;
      if (level_ != LadderLevel::kFull &&
          healthy_rounds_ >= config_.recovery_rounds) {
        shift_ladder(now,
                     static_cast<LadderLevel>(static_cast<int>(level_) - 1),
                     /*breach=*/false);
        healthy_rounds_ = 0;
      }
    }
  }
  // Deterministic round-duration proxy: EWMA of solver moves per round.
  effort_ewma_ = config_.effort_alpha * round_moves_ +
                 (1.0 - config_.effort_alpha) * effort_ewma_;
  breach_this_round_ = false;
}

int ResilienceController::solver_budget() const noexcept {
  switch (level_) {
    case LadderLevel::kFull:
      return config_.enabled ? config_.solver_budget_moves : 0;
    case LadderLevel::kCachedClimb:
    case LadderLevel::kFirstFit:
      // The first-fit rung shares the tightened budget: its placements
      // count as effort, so a queue even first-fit cannot keep up with
      // breaches one more time and freezes the system.
      return config_.degraded_budget_moves;
    case LadderLevel::kFrozen:
      return 0;  // nothing runs; recovery is the only way out
  }
  return 0;
}

void ResilienceController::shift_ladder(sim::SimTime now, LadderLevel to,
                                        bool breach) {
  if (auto* ck = validate::checker(recorder_)) {
    ck->check_ladder_shift(now, level_, to, breach);
  }
  if (auto* tr = obs::tracer(recorder_)) {
    auto& ev = tr->emit(now, obs::EventKind::kLadderShift);
    ev.label = std::string(to_string(level_)) + "->" + to_string(to);
    ev.arg("from", static_cast<int>(level_))
        .arg("to", static_cast<int>(to))
        .arg("breach", breach ? 1 : 0);
  }
  if (breach) {
    ++recorder_.counts.ladder_downshifts;
  } else {
    ++recorder_.counts.ladder_upshifts;
  }
  level_ = to;
  max_level_ = std::max(max_level_, to);
}

// ---- admission control ----------------------------------------------------

Admission ResilienceController::admit(sim::SimTime now,
                                      std::size_t queue_depth,
                                      int defers_so_far, std::int64_t vm) {
  if (!config_.enabled || config_.max_pending == 0) return Admission::kAdmit;

  const double depth = static_cast<double>(queue_depth);
  const double cap = static_cast<double>(config_.max_pending);
  const bool shed_tier = depth >= config_.shed_fill * cap;
  const bool defer_tier = depth >= config_.defer_fill * cap;
  const bool effort_hot = config_.effort_defer_watermark > 0 &&
                          effort_ewma_ >= config_.effort_defer_watermark;

  Admission verdict = Admission::kAdmit;
  if (shed_tier) {
    verdict = Admission::kShed;
  } else if (defer_tier || effort_hot) {
    // A job bounced too often is shed, so saturation cannot defer forever.
    verdict = defers_so_far >= config_.max_defers_per_job ? Admission::kShed
                                                          : Admission::kDefer;
  }

  if (verdict == Admission::kShed) {
    ++recorder_.counts.jobs_shed;
    if (auto* tr = obs::tracer(recorder_)) {
      auto& ev = tr->emit(now, obs::EventKind::kJobShed);
      ev.vm = vm;
      ev.arg("queue", depth);
    }
  } else if (verdict == Admission::kDefer) {
    ++recorder_.counts.jobs_deferred;
    if (auto* tr = obs::tracer(recorder_)) {
      auto& ev = tr->emit(now, obs::EventKind::kJobDeferred);
      ev.vm = vm;
      ev.arg("queue", depth).arg("defers", defers_so_far + 1);
    }
  }
  return verdict;
}

// ---- circuit breakers -----------------------------------------------------

void ResilienceController::set_health(sim::SimTime now, datacenter::HostId h,
                                      HostHealth to) {
  Breaker& b = breakers_[h];
  if (b.state == to) return;
  if (auto* ck = validate::checker(recorder_)) {
    ck->check_breaker_transition(now, h, b.state, to);
  }
  if (b.state == HostHealth::kHealthy && to != HostHealth::kHealthy) {
    ++not_healthy_;
  } else if (b.state != HostHealth::kHealthy && to == HostHealth::kHealthy) {
    --not_healthy_;
  }
  b.state = to;
}

void ResilienceController::open_breaker(sim::SimTime now, datacenter::HostId h,
                                        Breaker& b) {
  set_health(now, h, HostHealth::kSuspect);
  b.opened_at = now;
  b.open_streak = 1;
  b.probe_inflight = false;
  ++recorder_.counts.breaker_opens;
  if (auto* tr = obs::tracer(recorder_)) {
    auto& ev = tr->emit(now, obs::EventKind::kBreakerOpen);
    ev.host = h;
    ev.arg("failures", b.consecutive_failures);
  }
}

void ResilienceController::note_op_start(datacenter::HostId h,
                                         sim::SimTime now) {
  if (!config_.enabled || config_.breaker_threshold == 0 ||
      h >= breakers_.size()) {
    return;
  }
  Breaker& b = breakers_[h];
  if (b.state == HostHealth::kSuspect && !b.probe_inflight &&
      now - b.opened_at >= config_.breaker_probe_after_s) {
    b.probe_inflight = true;
    ++recorder_.counts.breaker_probes;
    if (auto* tr = obs::tracer(recorder_)) {
      tr->emit(now, obs::EventKind::kBreakerProbe).host = h;
    }
  }
}

void ResilienceController::note_op_success(datacenter::HostId h,
                                           sim::SimTime now) {
  if (!config_.enabled || config_.breaker_threshold == 0 ||
      h >= breakers_.size()) {
    return;
  }
  Breaker& b = breakers_[h];
  b.consecutive_failures = 0;
  if (b.probe_inflight) {
    b.probe_inflight = false;
    if (b.state == HostHealth::kSuspect) {
      set_health(now, h, HostHealth::kHealthy);
      b.open_streak = 0;
      ++recorder_.counts.breaker_closes;
      if (auto* tr = obs::tracer(recorder_)) {
        tr->emit(now, obs::EventKind::kBreakerClose).host = h;
      }
    }
  }
}

void ResilienceController::note_op_failure(datacenter::HostId h,
                                           sim::SimTime now) {
  if (!config_.enabled || config_.breaker_threshold == 0 ||
      h >= breakers_.size()) {
    return;
  }
  Breaker& b = breakers_[h];
  if (b.probe_inflight) {
    // The half-open probe failed: re-open, and write the host off once it
    // has burned too many probes without an intervening close.
    b.probe_inflight = false;
    if (b.state == HostHealth::kSuspect) {
      b.opened_at = now;
      ++b.open_streak;
      ++recorder_.counts.breaker_opens;
      if (auto* tr = obs::tracer(recorder_)) {
        auto& ev = tr->emit(now, obs::EventKind::kBreakerOpen);
        ev.host = h;
        ev.arg("failures", b.consecutive_failures + 1).arg("reopen", 1);
      }
      if (config_.breaker_dead_after > 0 &&
          b.open_streak >= config_.breaker_dead_after) {
        set_health(now, h, HostHealth::kDead);
        ++recorder_.counts.breaker_deaths;
        if (auto* tr = obs::tracer(recorder_)) {
          tr->emit(now, obs::EventKind::kHostDead).host = h;
        }
      }
      return;
    }
  }
  ++b.consecutive_failures;
  if (b.state == HostHealth::kHealthy &&
      b.consecutive_failures >= config_.breaker_threshold) {
    open_breaker(now, h, b);
  }
}

void ResilienceController::note_host_crashed(datacenter::HostId h,
                                             sim::SimTime now) {
  if (!config_.enabled || config_.breaker_threshold == 0 ||
      h >= breakers_.size()) {
    return;
  }
  Breaker& b = breakers_[h];
  b.probe_inflight = false;
  ++b.consecutive_failures;
  if (b.state == HostHealth::kHealthy) open_breaker(now, h, b);
}

void ResilienceController::note_host_quarantined(datacenter::HostId h,
                                                 sim::SimTime now) {
  if (!config_.enabled || h >= breakers_.size()) return;
  Breaker& b = breakers_[h];
  if (b.state == HostHealth::kHealthy || b.state == HostHealth::kSuspect) {
    set_health(now, h, HostHealth::kQuarantined);
    b.probe_inflight = false;
  }
}

void ResilienceController::note_host_unquarantined(datacenter::HostId h,
                                                   sim::SimTime now) {
  if (!config_.enabled || h >= breakers_.size()) return;
  Breaker& b = breakers_[h];
  if (b.state == HostHealth::kQuarantined) {
    // Cooldown release hands the host back as Suspect; it must pass a
    // half-open probe before taking load again (unless breakers are off).
    set_health(now, h, HostHealth::kSuspect);
    b.opened_at = now;
    b.open_streak = std::max(b.open_streak, 1);
    b.consecutive_failures = 0;
    b.probe_inflight = false;
  }
}

void ResilienceController::note_host_repaired(datacenter::HostId h,
                                              sim::SimTime now) {
  if (!config_.enabled || h >= breakers_.size()) return;
  Breaker& b = breakers_[h];
  if (b.state == HostHealth::kDead) {
    set_health(now, h, HostHealth::kSuspect);
    b.opened_at = now;
    b.open_streak = 1;
    b.consecutive_failures = 0;
    b.probe_inflight = false;
  }
}

bool ResilienceController::allows_placement(datacenter::HostId h,
                                            sim::SimTime now) const {
  if (!config_.enabled || config_.breaker_threshold == 0 ||
      h >= breakers_.size()) {
    return true;
  }
  const Breaker& b = breakers_[h];
  switch (b.state) {
    case HostHealth::kHealthy:
      return true;
    case HostHealth::kSuspect:
      // One half-open probe at a time, and only after the probe delay.
      return !b.probe_inflight &&
             now - b.opened_at >= config_.breaker_probe_after_s;
    case HostHealth::kQuarantined:
    case HostHealth::kDead:
      return false;
  }
  return true;
}

bool ResilienceController::allows_power_on(datacenter::HostId h) const {
  if (!config_.enabled || config_.breaker_threshold == 0 ||
      h >= breakers_.size()) {
    return true;
  }
  return breakers_[h].state != HostHealth::kDead;
}

HostHealth ResilienceController::health(datacenter::HostId h) const {
  if (h >= breakers_.size()) return HostHealth::kHealthy;
  return breakers_[h].state;
}

std::size_t ResilienceController::breakers_not_healthy() const noexcept {
  return not_healthy_;
}

}  // namespace easched::resilience
