// Per-host / per-VM energy attribution ledger.
//
// The aggregate meters in metrics::Recorder answer "how many joules did the
// run burn"; the EnergyLedger answers "where did they go". It observes the
// exact same piecewise-constant power signal the Datacenter feeds into
// `recorder.watts` — every `update_power()` hands the ledger a decomposed
// sample — and integrates it into named buckets:
//
//   per host      off / transition (boot+shutdown) / idle / load joules
//   per VM        the host's load joules split by allocated CPU share
//                 (the dom0 management slice lands in a separate mgmt
//                 bucket, not on any VM)
//   per VM class  per-VM joules rolled up by requested core count
//   per rung      joules by the degradation-ladder level the scheduler was
//                 running at (resilience control plane; everything is
//                 "full" when no controller is attached)
//
// Because the ledger samples the identical wattage values at the identical
// simulation times as the recorder's meters, the sum of its per-host totals
// reproduces `RunReport::energy_kwh` up to floating-point association —
// tests hold this to 0.1 % and in practice it matches far tighter.
//
// Determinism contract: all samples arrive from the simulation thread at
// sim-time stamps; nothing here reads the wall clock or any thread count,
// so ledger state — and the run_summary.json built from it — is
// byte-identical across EASCHED_SOLVER_THREADS / EASCHED_SWEEP_THREADS.
//
// Like the Tracer, the ledger is a null sink until enable() is called and
// its instrumentation call sites are compiled out entirely with
// EASCHED_TRACE=OFF (see obs/obs.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace easched::obs {

/// One running VM's allocated CPU at the moment of a power change.
struct VmShare {
  std::int64_t vm = -1;
  double alloc_pct = 0;  ///< Xen-allocated CPU [% of one core]
};

/// Decomposed power draw of one host from a power change onward. Exactly
/// one group is non-zero per host state: off_w (Off/Failed), boot_w
/// (Booting/ShuttingDown), or idle_w + load_w (On; idle is the power
/// model's utilisation-0 draw, load the utilisation-dependent remainder).
struct EnergySample {
  double off_w = 0;
  double boot_w = 0;
  double idle_w = 0;
  double load_w = 0;
  double used_cpu_pct = 0;        ///< total allocation driving load_w
  std::vector<VmShare> shares;    ///< running residents' allocations
};

/// Joule totals of one host, by power-state bucket.
struct HostEnergy {
  double off_j = 0;
  double boot_j = 0;
  double idle_j = 0;
  double load_j = 0;
  [[nodiscard]] double total_j() const {
    return off_j + boot_j + idle_j + load_j;
  }
};

/// Maps a VM's requested CPU to its attribution class ("1core".."4core",
/// ">4core"). Stable identifiers used in metrics labels and run_summary.
[[nodiscard]] const char* vm_class_of(double cpu_pct) noexcept;

class EnergyLedger {
 public:
  void enable() noexcept { enabled_ = true; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Installs `sample` as host `h`'s power decomposition from time `t`
  /// onward, after integrating the previous decomposition over the elapsed
  /// interval. `t` must be >= the host's previous sample time.
  void set_host_power(sim::SimTime t, std::size_t h, EnergySample sample);

  /// Registers a VM's requested CPU so its joules can be rolled up by
  /// class. Idempotent per VM id.
  void note_vm(std::int64_t vm, double cpu_pct);

  /// Switches the degradation-ladder rung all *subsequent* joules are
  /// attributed to (0 = full .. 3 = frozen, resilience::LadderLevel
  /// values). Integrates every host up to `t` under the old rung first.
  void set_rung(sim::SimTime t, int rung);

  /// Integrates every host up to `t`. Call once when the run ends, before
  /// reading any totals.
  void finish(sim::SimTime t);

  // ---- totals (valid after finish(); joules) ------------------------------

  [[nodiscard]] const std::vector<HostEnergy>& hosts() const noexcept {
    return hosts_;
  }
  [[nodiscard]] double total_j() const;
  [[nodiscard]] double off_j() const;
  [[nodiscard]] double boot_j() const;
  [[nodiscard]] double idle_j() const;
  [[nodiscard]] double load_j() const;
  /// dom0 management slice of the load joules (not attributed to any VM).
  [[nodiscard]] double mgmt_j() const noexcept { return mgmt_j_; }

  /// Per-VM attributed load joules, indexed by VM id (0 for ids that never
  /// ran). Size = highest VM id seen + 1.
  [[nodiscard]] const std::vector<double>& vm_j() const noexcept {
    return vm_j_;
  }
  /// Per-VM-class rollup of vm_j(), keyed by vm_class_of().
  [[nodiscard]] std::map<std::string, double> vm_class_j() const;

  /// Joules by degradation-ladder rung (index = LadderLevel value).
  [[nodiscard]] const std::vector<double>& rung_j() const noexcept {
    return rung_j_;
  }

  /// Hosts with the largest total joules, descending (ties by lower host
  /// id), at most `n` entries. Pairs are (host id, joules).
  [[nodiscard]] std::vector<std::pair<std::size_t, double>> top_hosts(
      std::size_t n) const;

 private:
  struct HostSlot {
    EnergySample sample;
    sim::SimTime last_t = 0;
    bool started = false;
  };

  /// Integrates host `h`'s current sample over [last_t, t].
  void integrate(HostSlot& slot, HostEnergy& acc, sim::SimTime t);
  void ensure_host(std::size_t h);
  void ensure_vm(std::int64_t vm);

  bool enabled_ = false;
  int rung_ = 0;
  std::vector<HostSlot> slots_;
  std::vector<HostEnergy> hosts_;
  std::vector<double> vm_j_;
  std::vector<double> vm_cpu_pct_;  ///< requested CPU per VM id (class key)
  std::vector<double> rung_j_;
  double mgmt_j_ = 0;
};

}  // namespace easched::obs
