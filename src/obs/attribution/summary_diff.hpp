// Cross-run regression diffing over run_summary.json artifacts.
//
// A summary document is flattened into dotted-path → number entries
// ("energy.hosts.3.total_j" → 12345.6); two flattened maps are then
// compared metric-by-metric under a configurable relative threshold.
// Missing keys on either side always count as regressions (a renamed or
// dropped metric must not pass silently), as does a schema-id mismatch.
// `trace_tool diff` and the attribution ctest gate both drive this; the
// nonzero-exit-on-regression contract lives here so scripts and tests
// agree on what "regressed" means.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace easched::obs {

/// Flat numeric view of a JSON document: dotted object keys, array indices
/// as path segments, numeric leaves only (booleans as 0/1). String leaves
/// are kept separately so the schema id can be checked.
struct FlatSummary {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};

/// Parses `json` (a full JSON document) into its flat view. Returns false
/// on malformed input, in which case `error` (if non-null) gets a message.
/// The parser covers the JSON subset our writers emit (no \uXXXX escapes).
bool flatten_json(const std::string& json, FlatSummary& out,
                  std::string* error = nullptr);

struct DiffOptions {
  /// Relative threshold: |a-b| / max(|a|,|b|) above this is a delta.
  /// 0 means exact match required.
  double rel_threshold = 0.0;
  /// Per-prefix overrides, longest matching prefix wins (e.g.
  /// {"energy.", 0.01} relaxes every energy metric to 1%).
  std::vector<std::pair<std::string, double>> prefix_thresholds;
};

struct DiffEntry {
  std::string key;
  double a = 0;
  double b = 0;
  double rel = 0;           ///< relative difference (0 when missing)
  bool missing_a = false;   ///< key absent from run A
  bool missing_b = false;   ///< key absent from run B
};

struct DiffResult {
  std::vector<DiffEntry> deltas;  ///< entries exceeding their threshold
  bool schema_mismatch = false;
  [[nodiscard]] bool regressed() const noexcept {
    return schema_mismatch || !deltas.empty();
  }
};

/// Compares two flattened summaries. Keys are the union of both sides.
[[nodiscard]] DiffResult diff_summaries(const FlatSummary& a,
                                        const FlatSummary& b,
                                        const DiffOptions& options);

/// Human-readable report of a diff ("<key>: <a> -> <b> (rel ...)" lines,
/// or "no deltas"). `name_a`/`name_b` label the two runs.
[[nodiscard]] std::string format_diff(const DiffResult& result,
                                      const std::string& name_a,
                                      const std::string& name_b);

}  // namespace easched::obs
