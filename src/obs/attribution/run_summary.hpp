// Per-run `run_summary.json` artifact: the machine-readable digest a run
// leaves behind for cross-run regression diffing (`trace_tool diff`) and
// offline reporting (`report_tool`).
//
// The document carries a versioned schema id, the RunReport scalars, the
// EnergyLedger attribution (when enabled), the DecisionLog rollup (when
// enabled) and a flattened view of the metrics registry snapshot. Doubles
// are formatted with the repo-wide %.9g convention, keys are emitted in a
// fixed order and nothing wall-clock- or thread-count-dependent is written,
// so two runs of the same seed/config produce byte-identical files — the
// property the `obs` ctest gate asserts across solver/sweep thread counts.
//
// Bump kRunSummarySchema whenever a key is renamed, moved or dropped;
// additions are backward compatible and do not need a bump.
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/report.hpp"

namespace easched::obs {

struct Observability;

inline constexpr const char* kRunSummarySchema = "easched.run_summary/1";

/// Writes the summary document for a finished run. `obs` may be null (or
/// carry disabled instruments): the energy / decisions sections are only
/// emitted for enabled instruments, the rest of the document always is.
void write_run_summary(std::ostream& os, const metrics::RunReport& report,
                       const Observability* obs);

/// write_run_summary to `path`. Returns false (with a message on stderr)
/// when the file cannot be opened.
bool write_run_summary_file(const std::string& path,
                            const metrics::RunReport& report,
                            const Observability* obs);

}  // namespace easched::obs
