#include "obs/attribution/decision_log.hpp"

#include <cmath>

namespace easched::obs {

namespace {
constexpr const char* kTermNames[kDecisionTermCount] = {
    "req", "res", "virt", "conc", "pwr", "sla", "fault"};
}  // namespace

const char* decision_term_name(std::size_t term) noexcept {
  return term < kDecisionTermCount ? kTermNames[term] : "none";
}

const char* to_string(DecisionRecord::Kind kind) noexcept {
  switch (kind) {
    case DecisionRecord::Kind::kPlace: return "place";
    case DecisionRecord::Kind::kMigrate: return "migrate";
    case DecisionRecord::Kind::kFirstFit: return "first-fit";
  }
  return "unknown";
}

std::size_t DecisionRecord::dominant_term() const noexcept {
  std::size_t best = kDecisionTermCount;
  double best_mag = 0;
  for (std::size_t i = 0; i < kDecisionTermCount; ++i) {
    const double mag = std::fabs(terms[i]);
    if (mag > best_mag) {
      best_mag = mag;
      best = i;
    }
  }
  return best;
}

DecisionLog::Summary DecisionLog::summarize() const {
  Summary s;
  for (const DecisionRecord& r : records_) {
    switch (r.kind) {
      case DecisionRecord::Kind::kPlace: ++s.places; break;
      case DecisionRecord::Kind::kMigrate: ++s.migrations; break;
      case DecisionRecord::Kind::kFirstFit: ++s.first_fit; break;
    }
    for (std::size_t i = 0; i < kDecisionTermCount; ++i) {
      s.term_totals[i] += r.terms[i];
    }
    const std::size_t dom = r.dominant_term();
    if (dom < kDecisionTermCount) ++s.dominant_counts[dom];
    if (r.runner_up >= 0) {
      ++s.with_runner_up;
      s.delta_total += r.delta;
    }
  }
  return s;
}

}  // namespace easched::obs
