// Structured log of every placement / migration decision with its score
// attribution.
//
// The Tracer's kDecision events already carry the winner's score breakdown;
// the DecisionLog adds what a trace line cannot cheaply answer: who the
// runner-up host was and what taking it instead would have cost (the
// counterfactual score delta), plus run-level rollups — per-term
// contribution totals and "which penalty term dominated this decision"
// counts — that feed the `decisions.*` metrics family, run_summary.json and
// `report_tool`.
//
// Terms mirror core::ScoreBreakdown (req/res/virt/conc/pwr/sla/fault) but
// are stored as plain doubles so obs/ stays independent of the solver
// headers. Determinism: records are appended from the simulation thread in
// decision order; nothing here depends on thread counts or wall clock.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace easched::obs {

/// Index order of the score terms in DecisionRecord::terms. Names (see
/// decision_term_name) are stable identifiers used in metrics labels and
/// run_summary.json.
inline constexpr std::size_t kDecisionTermCount = 7;
[[nodiscard]] const char* decision_term_name(std::size_t term) noexcept;

struct DecisionRecord {
  enum class Kind : std::uint8_t { kPlace, kMigrate, kFirstFit };

  sim::SimTime t = 0;
  Kind kind = Kind::kPlace;
  std::int64_t vm = -1;
  std::int64_t host = -1;        ///< winning host
  std::int64_t from_host = -1;   ///< migration source (-1 for placements)
  std::int64_t runner_up = -1;   ///< second-best host (-1 when none finite)

  /// req, res, virt, conc, pwr, sla, fault — winner's penalty terms.
  /// All-zero for first-fit decisions (the degraded rung skips the model).
  std::array<double, kDecisionTermCount> terms{};
  double total = 0;           ///< winner's score (sum of terms)
  double runner_up_total = 0; ///< runner-up's score (0 when runner_up < 0)
  /// Counterfactual cost of the runner-up: runner_up_total - total
  /// (>= 0 when the solver found the true argmin; 0 when no runner-up).
  double delta = 0;

  /// Index of the largest-magnitude non-zero term (the decision's
  /// "dominant" penalty), or kDecisionTermCount when every term is 0.
  [[nodiscard]] std::size_t dominant_term() const noexcept;
};

[[nodiscard]] const char* to_string(DecisionRecord::Kind kind) noexcept;

class DecisionLog {
 public:
  void enable() noexcept { enabled_ = true; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void add(DecisionRecord rec) { records_.push_back(std::move(rec)); }

  [[nodiscard]] const std::vector<DecisionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Run-level rollup over the records.
  struct Summary {
    std::uint64_t places = 0;
    std::uint64_t migrations = 0;
    std::uint64_t first_fit = 0;
    /// Sum of each term's contribution over all decisions.
    std::array<double, kDecisionTermCount> term_totals{};
    /// How many decisions each term dominated (largest |contribution|).
    std::array<std::uint64_t, kDecisionTermCount> dominant_counts{};
    std::uint64_t with_runner_up = 0;
    double delta_total = 0;  ///< summed counterfactual deltas
    [[nodiscard]] std::uint64_t count() const noexcept {
      return places + migrations + first_fit;
    }
    [[nodiscard]] double mean_delta() const noexcept {
      return with_runner_up > 0
                 ? delta_total / static_cast<double>(with_runner_up)
                 : 0.0;
    }
  };
  [[nodiscard]] Summary summarize() const;

 private:
  bool enabled_ = false;
  std::vector<DecisionRecord> records_;
};

}  // namespace easched::obs
