#include "obs/attribution/run_summary.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/obs.hpp"

namespace easched::obs {
namespace {

// Matches the metrics/trace exporters' shortest round-trippable formatting.
void write_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

void write_key(std::ostream& os, const char* key, bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":";
}

void write_num(std::ostream& os, const char* key, double v, bool& first) {
  write_key(os, key, first);
  write_double(os, v);
}

void write_count(std::ostream& os, const char* key, std::uint64_t v,
                 bool& first) {
  write_key(os, key, first);
  os << v;
}

// Degradation-ladder rung names (resilience::LadderLevel order); kept local
// so the artifact writer does not depend on the resilience headers.
const char* rung_name(std::size_t rung) {
  switch (rung) {
    case 0: return "full";
    case 1: return "cached-climb";
    case 2: return "first-fit";
    case 3: return "frozen";
    default: return "beyond";
  }
}

// [[maybe_unused]]: only referenced when EASCHED_TRACE_ENABLED.
[[maybe_unused]] void write_energy(std::ostream& os,
                                   const EnergyLedger& ledger) {
  bool first = true;
  os << "\"energy\":{";
  write_num(os, "total_j", ledger.total_j(), first);
  write_num(os, "off_j", ledger.off_j(), first);
  write_num(os, "boot_j", ledger.boot_j(), first);
  write_num(os, "idle_j", ledger.idle_j(), first);
  write_num(os, "load_j", ledger.load_j(), first);
  write_num(os, "mgmt_j", ledger.mgmt_j(), first);

  write_key(os, "hosts", first);
  os << '[';
  const auto& hosts = ledger.hosts();
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (h > 0) os << ',';
    bool hf = true;
    os << '{';
    write_count(os, "host", h, hf);
    write_num(os, "off_j", hosts[h].off_j, hf);
    write_num(os, "boot_j", hosts[h].boot_j, hf);
    write_num(os, "idle_j", hosts[h].idle_j, hf);
    write_num(os, "load_j", hosts[h].load_j, hf);
    write_num(os, "total_j", hosts[h].total_j(), hf);
    os << '}';
  }
  os << ']';

  write_key(os, "vm_classes", first);
  os << '{';
  bool cf = true;
  for (const auto& [cls, joules] : ledger.vm_class_j()) {  // map: sorted
    if (!cf) os << ',';
    cf = false;
    write_json_string(os, cls);
    os << ':';
    write_double(os, joules);
  }
  os << '}';

  write_key(os, "rungs", first);
  os << '{';
  const auto& rungs = ledger.rung_j();
  for (std::size_t r = 0; r < rungs.size(); ++r) {
    if (r > 0) os << ',';
    os << '"' << rung_name(r) << "\":";
    write_double(os, rungs[r]);
  }
  os << '}';

  os << '}';
}

[[maybe_unused]] void write_decisions(std::ostream& os,
                                      const DecisionLog& log) {
  const DecisionLog::Summary s = log.summarize();
  bool first = true;
  os << "\"decisions\":{";
  write_count(os, "count", s.count(), first);
  write_count(os, "places", s.places, first);
  write_count(os, "migrations", s.migrations, first);
  write_count(os, "first_fit", s.first_fit, first);
  write_count(os, "with_runner_up", s.with_runner_up, first);
  write_num(os, "delta_total", s.delta_total, first);
  write_num(os, "mean_delta", s.mean_delta(), first);

  write_key(os, "term_totals", first);
  os << '{';
  for (std::size_t i = 0; i < kDecisionTermCount; ++i) {
    if (i > 0) os << ',';
    os << '"' << decision_term_name(i) << "\":";
    write_double(os, s.term_totals[i]);
  }
  os << '}';

  write_key(os, "dominant", first);
  os << '{';
  for (std::size_t i = 0; i < kDecisionTermCount; ++i) {
    if (i > 0) os << ',';
    os << '"' << decision_term_name(i) << "\":" << s.dominant_counts[i];
  }
  os << '}';

  os << '}';
}

void write_metrics(std::ostream& os, const MetricsSnapshot& snap) {
  os << "\"metrics\":{";
  bool first = true;
  for (const SnapshotRow& row : snap.rows) {  // sorted by name
    if (!first) os << ',';
    first = false;
    write_json_string(os, row.name);
    os << ':';
    if (row.kind == InstrumentKind::kHistogram) {
      // Flatten histograms to the two diffable scalars.
      os << "{\"count\":" << row.count << ",\"sum\":";
      write_double(os, row.sum);
      os << '}';
    } else {
      write_double(os, row.value);
    }
  }
  os << '}';
}

}  // namespace

void write_run_summary(std::ostream& os, const metrics::RunReport& report,
                       const Observability* obs) {
  os << "{\"schema\":\"" << kRunSummarySchema << "\",";

  os << "\"policy\":{\"name\":";
  write_json_string(os, report.policy);
  os << ",\"lambda_min\":";
  write_double(os, report.lambda_min);
  os << ",\"lambda_max\":";
  write_double(os, report.lambda_max);
  os << "},";

  {
    bool first = true;
    os << "\"report\":{";
    write_num(os, "duration_s", report.duration_s, first);
    write_num(os, "avg_working", report.avg_working, first);
    write_num(os, "avg_online", report.avg_online, first);
    write_num(os, "cpu_hours", report.cpu_hours, first);
    write_num(os, "energy_kwh", report.energy_kwh, first);
    write_num(os, "satisfaction", report.satisfaction, first);
    write_num(os, "delay_pct", report.delay_pct, first);
    write_count(os, "migrations", report.migrations, first);
    write_count(os, "creations", report.creations, first);
    write_count(os, "turn_ons", report.turn_ons, first);
    write_count(os, "turn_offs", report.turn_offs, first);
    write_count(os, "failures", report.failures, first);
    write_count(os, "jobs_finished", report.jobs_finished, first);
    os << "},";
  }

  // Emitted only when the run carried an enabled alert engine, so
  // summaries from alert-free runs stay byte-identical to older baselines.
  if (obs != nullptr && obs->telemetry.alerts().enabled()) {
    bool first = true;
    os << "\"alerts\":{";
    write_count(os, "rules", obs->telemetry.alerts().rules().size(), first);
    write_count(os, "episodes", report.alerts.size(), first);
    write_key(os, "log", first);
    os << '[';
    for (std::size_t i = 0; i < report.alerts.size(); ++i) {
      const auto& f = report.alerts[i];
      if (i > 0) os << ',';
      os << "{\"rule\":";
      write_json_string(os, f.rule);
      os << ",\"fired_t\":";
      write_double(os, f.fired_t);
      os << ",\"resolved_t\":";
      write_double(os, f.resolved_t);
      os << '}';
    }
    os << "]},";
  }

#if EASCHED_TRACE_ENABLED
  if (obs != nullptr && obs->ledger.enabled()) {
    write_energy(os, obs->ledger);
    os << ',';
  }
  if (obs != nullptr && obs->decisions.enabled()) {
    write_decisions(os, obs->decisions);
    os << ',';
  }
#else
  (void)obs;
#endif

  write_metrics(os, report.metrics);
  os << "}\n";
}

bool write_run_summary_file(const std::string& path,
                            const metrics::RunReport& report,
                            const Observability* obs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "run_summary: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  write_run_summary(out, report, obs);
  return true;
}

}  // namespace easched::obs
