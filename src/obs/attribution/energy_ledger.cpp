#include "obs/attribution/energy_ledger.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace easched::obs {

const char* vm_class_of(double cpu_pct) noexcept {
  if (cpu_pct <= 100.0) return "1core";
  if (cpu_pct <= 200.0) return "2core";
  if (cpu_pct <= 300.0) return "3core";
  if (cpu_pct <= 400.0) return "4core";
  return ">4core";
}

void EnergyLedger::ensure_host(std::size_t h) {
  if (h >= slots_.size()) {
    slots_.resize(h + 1);
    hosts_.resize(h + 1);
  }
}

void EnergyLedger::ensure_vm(std::int64_t vm) {
  EA_EXPECTS(vm >= 0);
  const auto idx = static_cast<std::size_t>(vm);
  if (idx >= vm_j_.size()) {
    vm_j_.resize(idx + 1, 0.0);
    vm_cpu_pct_.resize(idx + 1, 0.0);
  }
}

void EnergyLedger::integrate(HostSlot& slot, HostEnergy& acc, sim::SimTime t) {
  if (!slot.started) {
    slot.last_t = t;
    slot.started = true;
    return;
  }
  EA_EXPECTS(t >= slot.last_t);
  const double dt = t - slot.last_t;
  slot.last_t = t;
  if (dt <= 0) return;

  const EnergySample& s = slot.sample;
  acc.off_j += s.off_w * dt;
  acc.boot_j += s.boot_w * dt;
  acc.idle_j += s.idle_w * dt;
  const double load = s.load_w * dt;
  acc.load_j += load;
  if (rung_j_.size() <= static_cast<std::size_t>(rung_)) {
    rung_j_.resize(static_cast<std::size_t>(rung_) + 1, 0.0);
  }
  rung_j_[static_cast<std::size_t>(rung_)] +=
      (s.off_w + s.boot_w + s.idle_w + s.load_w) * dt;

  if (load > 0) {
    // Split the utilisation-dependent joules by CPU share: each running
    // resident gets alloc/used, dom0 management the remainder. used_cpu_pct
    // is the same total the power model derived load_w from, so the shares
    // partition the load exactly.
    const double used = s.used_cpu_pct;
    if (used > 0) {
      double guest = 0;
      for (const VmShare& sh : s.shares) {
        ensure_vm(sh.vm);
        vm_j_[static_cast<std::size_t>(sh.vm)] += load * sh.alloc_pct / used;
        guest += sh.alloc_pct;
      }
      const double mgmt = used - guest;
      if (mgmt > 0) mgmt_j_ += load * mgmt / used;
    } else {
      mgmt_j_ += load;  // defensive: load without allocation bookkeeping
    }
  }
}

void EnergyLedger::set_host_power(sim::SimTime t, std::size_t h,
                                  EnergySample sample) {
  ensure_host(h);
  integrate(slots_[h], hosts_[h], t);
  slots_[h].sample = std::move(sample);
}

void EnergyLedger::note_vm(std::int64_t vm, double cpu_pct) {
  ensure_vm(vm);
  vm_cpu_pct_[static_cast<std::size_t>(vm)] = cpu_pct;
}

void EnergyLedger::set_rung(sim::SimTime t, int rung) {
  EA_EXPECTS(rung >= 0);
  if (rung == rung_) return;
  for (std::size_t h = 0; h < slots_.size(); ++h) {
    integrate(slots_[h], hosts_[h], t);
  }
  rung_ = rung;
}

void EnergyLedger::finish(sim::SimTime t) {
  for (std::size_t h = 0; h < slots_.size(); ++h) {
    integrate(slots_[h], hosts_[h], t);
  }
}

double EnergyLedger::total_j() const {
  double j = 0;
  for (const HostEnergy& he : hosts_) j += he.total_j();
  return j;
}

double EnergyLedger::off_j() const {
  double j = 0;
  for (const HostEnergy& he : hosts_) j += he.off_j;
  return j;
}

double EnergyLedger::boot_j() const {
  double j = 0;
  for (const HostEnergy& he : hosts_) j += he.boot_j;
  return j;
}

double EnergyLedger::idle_j() const {
  double j = 0;
  for (const HostEnergy& he : hosts_) j += he.idle_j;
  return j;
}

double EnergyLedger::load_j() const {
  double j = 0;
  for (const HostEnergy& he : hosts_) j += he.load_j;
  return j;
}

std::map<std::string, double> EnergyLedger::vm_class_j() const {
  std::map<std::string, double> by_class;
  for (std::size_t v = 0; v < vm_j_.size(); ++v) {
    if (vm_j_[v] == 0) continue;
    by_class[vm_class_of(vm_cpu_pct_[v])] += vm_j_[v];
  }
  return by_class;
}

std::vector<std::pair<std::size_t, double>> EnergyLedger::top_hosts(
    std::size_t n) const {
  std::vector<std::pair<std::size_t, double>> ranked;
  ranked.reserve(hosts_.size());
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    ranked.emplace_back(h, hosts_[h].total_j());
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

}  // namespace easched::obs
