#include "obs/attribution/summary_diff.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace easched::obs {
namespace {

// Recursive-descent parser for the JSON subset the repo's writers emit:
// objects, arrays, numbers, strings (\" and \\ escapes), true/false/null.
// Leaves land in FlatSummary under their dotted path.
class Flattener {
 public:
  Flattener(const std::string& text, FlatSummary& out)
      : text_(text), out_(out) {}

  bool run(std::string* error) {
    skip_ws();
    if (!parse_value("")) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "parse error at offset " << pos_ << ": " << error_;
        *error = os.str();
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing content after document";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    error_ = msg;
    return false;
  }

  bool consume(char ch) {
    if (pos_ >= text_.size() || text_[pos_] != ch) return false;
    ++pos_;
    return true;
  }

  static std::string join(const std::string& path, const std::string& key) {
    return path.empty() ? key : path + "." + key;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      char ch = text_[pos_++];
      if (ch == '"') return true;
      if (ch == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return fail("unsupported escape");
        }
      } else {
        out += ch;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char ch = text_[pos_];
    if (ch == '{') return parse_object(path);
    if (ch == '[') return parse_array(path);
    if (ch == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out_.strings[path] = std::move(s);
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out_.numbers[path] = 1;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out_.numbers[path] = 0;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;  // null leaves are dropped
    }
    return parse_number(path);
  }

  bool parse_number(const std::string& path) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return fail("expected value");
    pos_ += static_cast<std::size_t>(end - start);
    out_.numbers[path] = v;
    return true;
  }

  bool parse_object(const std::string& path) {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      if (!parse_value(join(path, key))) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    std::size_t index = 0;
    while (true) {
      if (!parse_value(join(path, std::to_string(index++)))) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  FlatSummary& out_;
  std::size_t pos_ = 0;
  const char* error_ = "";
};

double threshold_for(const std::string& key, const DiffOptions& options) {
  double threshold = options.rel_threshold;
  std::size_t best_len = 0;
  for (const auto& [prefix, t] : options.prefix_thresholds) {
    if (prefix.size() >= best_len &&
        key.compare(0, prefix.size(), prefix) == 0) {
      best_len = prefix.size();
      threshold = t;
    }
  }
  return threshold;
}

void write_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

bool flatten_json(const std::string& json, FlatSummary& out,
                  std::string* error) {
  out.numbers.clear();
  out.strings.clear();
  return Flattener(json, out).run(error);
}

DiffResult diff_summaries(const FlatSummary& a, const FlatSummary& b,
                          const DiffOptions& options) {
  DiffResult result;

  const auto schema_a = a.strings.find("schema");
  const auto schema_b = b.strings.find("schema");
  if (schema_a == a.strings.end() || schema_b == b.strings.end() ||
      schema_a->second != schema_b->second) {
    result.schema_mismatch = true;
  }

  std::set<std::string> keys;
  for (const auto& [k, v] : a.numbers) keys.insert(k);
  for (const auto& [k, v] : b.numbers) keys.insert(k);

  for (const std::string& key : keys) {
    const auto ia = a.numbers.find(key);
    const auto ib = b.numbers.find(key);
    DiffEntry entry;
    entry.key = key;
    if (ia == a.numbers.end() || ib == b.numbers.end()) {
      entry.missing_a = ia == a.numbers.end();
      entry.missing_b = ib == b.numbers.end();
      if (!entry.missing_a) entry.a = ia->second;
      if (!entry.missing_b) entry.b = ib->second;
      result.deltas.push_back(std::move(entry));
      continue;
    }
    entry.a = ia->second;
    entry.b = ib->second;
    const double diff = std::fabs(entry.a - entry.b);
    if (diff == 0) continue;
    const double scale = std::max(std::fabs(entry.a), std::fabs(entry.b));
    entry.rel = scale > 0 ? diff / scale : 0.0;
    if (entry.rel > threshold_for(key, options)) {
      result.deltas.push_back(std::move(entry));
    }
  }
  return result;
}

std::string format_diff(const DiffResult& result, const std::string& name_a,
                        const std::string& name_b) {
  std::ostringstream os;
  if (result.schema_mismatch) {
    os << "schema mismatch between '" << name_a << "' and '" << name_b
       << "'\n";
  }
  for (const DiffEntry& e : result.deltas) {
    os << e.key << ": ";
    if (e.missing_a) {
      os << "(missing)";
    } else {
      write_double(os, e.a);
    }
    os << " -> ";
    if (e.missing_b) {
      os << "(missing)";
    } else {
      write_double(os, e.b);
    }
    if (!e.missing_a && !e.missing_b) {
      os << " (rel ";
      write_double(os, e.rel);
      os << ')';
    }
    os << '\n';
  }
  if (!result.regressed()) {
    os << "no deltas: '" << name_a << "' and '" << name_b
       << "' match within thresholds\n";
  }
  return os.str();
}

}  // namespace easched::obs
