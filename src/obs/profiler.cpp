#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "support/stats.hpp"

namespace easched::obs {

const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kInvalidate: return "invalidate";
    case Phase::kRebuild: return "rebuild";
    case Phase::kClimb: return "climb";
    case Phase::kActuate: return "actuate";
    case Phase::kPower: return "power";
    case Phase::kRound: return "round";
  }
  return "?";
}

std::vector<PhaseRollup> PhaseProfiler::rollups() const {
  std::vector<PhaseRollup> out;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::vector<double>& s = samples_[i];
    if (s.empty()) continue;
    PhaseRollup r;
    r.phase = static_cast<Phase>(i);
    r.n = s.size();
    r.total_ms = std::accumulate(s.begin(), s.end(), 0.0);
    r.p50_ms = support::percentile(s, 50.0);
    r.p95_ms = support::percentile(s, 95.0);
    r.p99_ms = support::percentile(s, 99.0);
    r.max_ms = *std::max_element(s.begin(), s.end());
    out.push_back(r);
  }
  return out;
}

std::string PhaseProfiler::to_string() const {
  const std::vector<PhaseRollup> rows = rollups();
  if (rows.empty()) return "";
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-12s %8s %12s %10s %10s %10s %10s\n",
                "phase", "n", "total_ms", "p50_ms", "p95_ms", "p99_ms",
                "max_ms");
  os << line;
  for (const PhaseRollup& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-12s %8zu %12.3f %10.4f %10.4f %10.4f %10.4f\n",
                  obs::to_string(r.phase), r.n, r.total_ms, r.p50_ms,
                  r.p95_ms, r.p99_ms, r.max_ms);
    os << line;
  }
  return os.str();
}

void PhaseProfiler::clear() {
  for (auto& s : samples_) s.clear();
}

}  // namespace easched::obs
