// Structured event tracing for a simulation run.
//
// The Tracer records simulator-time-stamped events — instants (a job
// arrival, a placement decision with its winning score breakdown) and spans
// (a migration from start to switchover, a host boot) — into an in-memory
// buffer that exports as JSON-lines for programmatic consumption
// (`trace_tool summarize`) or as Chrome `trace_event` JSON loadable in
// chrome://tracing and Perfetto.
//
// Determinism contract: every event is emitted from the simulation thread
// (solver-pool workers never emit), stamped with the simulation clock and a
// stable sequence id assigned in emission order. Exports sort stably by
// sim-time, so identical runs — including runs that differ only in
// EASCHED_SOLVER_THREADS — produce byte-identical traces. The only
// wall-clock data allowed in a trace are numeric args carrying the
// `wall_` prefix (round profiling), which `write_jsonl(os, false)` strips;
// tests/test_obs.cpp compares thread counts through that masked form.
//
// The tracer is a null sink until enable() is called: the instrumentation
// call sites (see obs.hpp) check enabled() through a single pointer load,
// so a run without --trace= pays one predicted branch per would-be event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace easched::obs {

/// The event taxonomy. Names (to_string) are stable identifiers used by the
/// JSONL format and `trace_tool summarize`; append, don't renumber.
enum class EventKind : std::uint8_t {
  kRunBegin,         ///< label = policy name; args: hosts, jobs
  kJobArrival,       ///< vm; args: cpu_pct, mem_mb
  kRound,            ///< one scheduling round; args: queue, eligible,
                     ///< actions (+ wall_* profiling fields)
  kDecision,         ///< solver decision for one VM; vm, host; args: the
                     ///< score breakdown req/res/virt/conc/pwr/sla/fault
                     ///< plus total (their left-to-right sum)
  kCreateStart,      ///< vm, host
  kVmReady,          ///< vm, host; span over the creation
  kJobFinished,      ///< vm, host; args: satisfaction, delay_pct
  kMigrateStart,     ///< vm, host = destination, host2 = source
  kMigrateDone,      ///< vm, host = destination, host2 = source; span
  kMigrateRollback,  ///< vm, host = abandoned destination, host2 = source
  kPowerOn,          ///< host
  kHostOnline,       ///< host; span over the boot
  kPowerOff,         ///< host
  kHostOff,          ///< host; span over the shutdown
  kHostFailed,       ///< host; args: lost (#VMs requeued)
  kHostRepaired,     ///< host
  kBootFailed,       ///< host
  kFaultInjected,    ///< host, vm (when VM-scoped); args: op, outcome
  kOpFailed,         ///< vm, host; args: op, timeout
  kQuarantine,       ///< host
  kUnquarantine,     ///< host
  kSlaAlarm,         ///< vm
  kRetry,            ///< vm; args: attempt, delay_s
  kInvariantViolation,  ///< label = "<rule>: message"; args: rule (index)
  kLadderShift,      ///< degradation-ladder move; label = "<from>-><to>";
                     ///< args: from, to, breach (1 = budget breach caused it)
  kJobShed,          ///< vm rejected by admission control; args: queue
  kJobDeferred,      ///< vm pushed back by admission; args: queue, defers
  kBreakerOpen,      ///< host circuit breaker tripped; args: failures
  kBreakerProbe,     ///< half-open probe op dispatched onto host
  kBreakerClose,     ///< breaker closed after a successful probe
  kHostDead,         ///< host written off after too many breaker re-opens
  kAlertFire,        ///< telemetry alert rule started firing; label = rule
                     ///< name; args: value, bound
  kAlertResolve,     ///< alert rule resolved; label = rule name; args:
                     ///< value, fired_t
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

struct TraceEvent {
  sim::SimTime t = 0;    ///< sim-time stamp (span start when dur > 0)
  sim::SimTime dur = 0;  ///< sim-time span length; 0 = instant event
  std::uint64_t seq = 0; ///< stable emission order (assigned by the tracer)
  EventKind kind = EventKind::kRunBegin;
  std::int64_t vm = -1;    ///< -1 = not VM-scoped
  std::int64_t host = -1;  ///< -1 = not host-scoped
  std::int64_t host2 = -1; ///< secondary host (migration source)
  std::string label;       ///< free-form tag (policy name on kRunBegin)
  /// Small named numeric payload. Keys with the `wall_` prefix carry
  /// wall-clock profiling data and are excluded from determinism checks.
  std::vector<std::pair<std::string, double>> args;

  TraceEvent& arg(std::string key, double value) {
    args.emplace_back(std::move(key), value);
    return *this;
  }
};

class Tracer {
 public:
  void enable() noexcept { enabled_ = true; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Appends an event and assigns its sequence id. The returned reference
  /// is valid until the next emit(); fill the scoping fields on it.
  TraceEvent& emit(sim::SimTime t, EventKind kind);
  /// Emits a span: stamped at `start`, lasting until `end` in sim time.
  TraceEvent& span(sim::SimTime start, sim::SimTime end, EventKind kind);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); next_seq_ = 0; }

  /// One JSON object per line, sorted stably by sim-time. When
  /// `include_wall` is false, args with the `wall_` prefix are dropped —
  /// the byte-deterministic form the thread-count determinism test diffs.
  void write_jsonl(std::ostream& os, bool include_wall = true) const;

  /// Chrome trace_event JSON ("JSON Object Format"): spans become "X"
  /// complete events, instants "i" events; `ts`/`dur` are microseconds of
  /// simulation time; `tid` is the host id (hosts render as Perfetto
  /// tracks) and the scheduler itself is tid 0.
  void write_chrome(std::ostream& os) const;

 private:
  /// Event indices sorted stably by sim-time (spans are stamped at their
  /// start, which can precede already-emitted instants).
  [[nodiscard]] std::vector<std::size_t> sorted_order() const;

  bool enabled_ = false;
  std::uint64_t next_seq_ = 0;
  std::vector<TraceEvent> events_;
};

/// Structural validation of a Chrome trace_event JSON document: parses the
/// whole text as JSON and checks the trace_event shape (a top-level object
/// with a `traceEvents` array whose entries carry `name`, `ph`, `ts`,
/// `pid`, `tid`, a known phase letter, and `dur` on complete events).
/// Returns true when valid; otherwise fills `error` (if non-null) with the
/// first problem found. Used by `trace_tool validate` and the obs tests.
bool validate_chrome_trace(const std::string& json, std::string* error);

}  // namespace easched::obs
