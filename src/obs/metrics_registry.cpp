#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace easched::obs {
namespace {

// Shortest round-trippable formatting, matching the trace exporters.
void write_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

std::string full_name(const std::string& name, const std::string& label) {
  if (label.empty()) return name;
  return name + "{" + label + "}";
}

// RFC 4180 quoting: names/labels are free-form, so a comma or quote in a
// label (e.g. `op={a,b}`) must not split or corrupt the CSV row.
void write_csv_field(std::ostream& os, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    os << field;
    return;
  }
  os << '"';
  for (char ch : field) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

}  // namespace

const char* to_string(InstrumentKind kind) noexcept {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += v;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& label) {
  return fetch(name, label, InstrumentKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& label) {
  return fetch(name, label, InstrumentKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& label) {
  Instrument& ins = fetch(name, label, InstrumentKind::kHistogram);
  if (ins.histogram.empty()) ins.histogram.emplace_back(std::move(bounds));
  return ins.histogram.front();
}

MetricsRegistry::Instrument& MetricsRegistry::fetch(const std::string& name,
                                                    const std::string& label,
                                                    InstrumentKind kind) {
  auto [it, inserted] = instruments_.try_emplace(full_name(name, label));
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    std::fprintf(stderr,
                 "obs: instrument '%s' re-registered as %s (was %s)\n",
                 it->first.c_str(), to_string(kind),
                 to_string(it->second.kind));
    std::abort();
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.sample_seq = next_sample_seq_++;
  snap.sim_time_s = sim_time_s_;
  snap.rows.reserve(instruments_.size());
  for (const auto& [name, ins] : instruments_) {  // std::map: name-sorted
    SnapshotRow row;
    row.name = name;
    row.kind = ins.kind;
    switch (ins.kind) {
      case InstrumentKind::kCounter:
        row.value = static_cast<double>(ins.counter.value());
        break;
      case InstrumentKind::kGauge:
        row.value = ins.gauge.value();
        break;
      case InstrumentKind::kHistogram:
        if (!ins.histogram.empty()) {
          const Histogram& h = ins.histogram.front();
          row.bounds = h.bounds();
          row.buckets = h.buckets();
          row.count = h.count();
          row.sum = h.sum();
          row.value = h.count() > 0
                          ? h.sum() / static_cast<double>(h.count())
                          : 0.0;
        }
        break;
    }
    snap.rows.push_back(std::move(row));
  }
  return snap;
}

const SnapshotRow* MetricsSnapshot::find(const std::string& name) const {
  auto it = std::lower_bound(
      rows.begin(), rows.end(), name,
      [](const SnapshotRow& r, const std::string& n) { return r.name < n; });
  if (it == rows.end() || it->name != name) return nullptr;
  return &*it;
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "# sample_seq=" << sample_seq << " sim_time_s=";
  write_double(os, sim_time_s);
  os << "\nname,kind,value,count,sum,buckets\n";
  for (const SnapshotRow& row : rows) {
    write_csv_field(os, row.name);
    os << ',' << to_string(row.kind) << ',';
    write_double(os, row.value);
    os << ',' << row.count << ',';
    write_double(os, row.sum);
    os << ',';
    if (row.kind == InstrumentKind::kHistogram) {
      for (std::size_t i = 0; i < row.buckets.size(); ++i) {
        if (i > 0) os << '|';
        os << "le=";
        if (i < row.bounds.size()) {
          write_double(os, row.bounds[i]);
        } else {
          os << "inf";
        }
        os << ':' << row.buckets[i];
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"sample_seq\":" << sample_seq << ",\"sim_time_s\":";
  write_double(os, sim_time_s);
  os << ",\"metrics\":[";
  bool first = true;
  for (const SnapshotRow& row : rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    for (char ch : row.name) {  // names are free-form; escape for JSON too
      if (ch == '"' || ch == '\\') os << '\\';
      os << ch;
    }
    os << "\",\"kind\":\""
       << to_string(row.kind) << "\",\"value\":";
    write_double(os, row.value);
    if (row.kind == InstrumentKind::kHistogram) {
      os << ",\"count\":" << row.count << ",\"sum\":";
      write_double(os, row.sum);
      os << ",\"bounds\":[";
      for (std::size_t i = 0; i < row.bounds.size(); ++i) {
        if (i > 0) os << ',';
        write_double(os, row.bounds[i]);
      }
      os << "],\"buckets\":[";
      for (std::size_t i = 0; i < row.buckets.size(); ++i) {
        if (i > 0) os << ',';
        os << row.buckets[i];
      }
      os << ']';
    }
    os << '}';
  }
  os << "]}\n";
  return os.str();
}

}  // namespace easched::obs
