// Named-instrument metrics registry: counters, gauges and fixed-bucket
// histograms, snapshotted into one CSV/JSON document per run.
//
// This is the single home for the run counters that previously grew ad hoc
// (`metrics::Counters` table counters, the PR 2 robustness counters): each
// instrument is declared once, by name (optionally with a `{key=value}`
// label suffix), and every consumer — the RunReport robustness line, the
// `--metrics-out=` CLI snapshot, tests — reads the same snapshot rows
// instead of hand-rolled struct fields.
//
// Instruments are plain in-memory values mutated from the simulation
// thread; no locks, no atomics. Snapshot rows are sorted by name so the
// CSV/JSON output is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace easched::obs {

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(InstrumentKind kind) noexcept;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges in ascending
/// order; an observation lands in the first bucket with value <= bound, or
/// in the implicit overflow bucket past the last bound. Tracks sum and
/// count exactly, so mean is always recoverable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// One instrument's state at snapshot time.
struct SnapshotRow {
  std::string name;  ///< full name including any {label} suffix
  InstrumentKind kind = InstrumentKind::kCounter;
  double value = 0;  ///< counter/gauge value; histogram mean (0 when empty)
  // Histogram detail (empty for counters/gauges):
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;
};

struct MetricsSnapshot {
  std::vector<SnapshotRow> rows;  ///< sorted by name

  /// Snapshot stamp: `sample_seq` counts snapshot() calls on the owning
  /// registry (monotonic per registry, never reset) and `sim_time_s` is
  /// the simulation clock last handed to set_sim_time() — together they
  /// make repeated exports from one process distinguishable.
  std::uint64_t sample_seq = 0;
  double sim_time_s = 0;

  [[nodiscard]] const SnapshotRow* find(const std::string& name) const;
  /// `# sample_seq=<n> sim_time_s=<t>` stamp line, the header, then
  /// `name,kind,value,count,sum,buckets` rows — histogram buckets
  /// flattened as `le=<bound>:<count>` pairs separated by '|'.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Instrument lookup-or-create. `label` (optional) is appended to the
  /// name as `name{label}` — e.g. counter("ops_failed", "op=create").
  /// Re-fetching an existing name returns the same instrument; fetching an
  /// existing name as a different kind aborts (a programming error).
  Counter& counter(const std::string& name, const std::string& label = "");
  Gauge& gauge(const std::string& name, const std::string& label = "");
  /// For histograms, `bounds` applies on first creation only.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& label = "");

  [[nodiscard]] std::size_t size() const noexcept {
    return instruments_.size();
  }
  /// Captures all instruments, stamped with the next sample_seq and the
  /// last set_sim_time() value.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Sets the simulation-time stamp carried by subsequent snapshots (the
  /// experiment runner calls this at measurement end).
  void set_sim_time(double t) noexcept { sim_time_s_ = t; }

 private:
  struct Instrument {
    InstrumentKind kind = InstrumentKind::kCounter;
    Counter counter;
    Gauge gauge;
    std::vector<Histogram> histogram;  ///< 0 or 1 entries (lazy)
  };
  Instrument& fetch(const std::string& name, const std::string& label,
                    InstrumentKind kind);

  std::map<std::string, Instrument> instruments_;
  double sim_time_s_ = 0;
  /// Snapshots taken so far; mutable because snapshot() is logically a
  /// read yet must hand out distinct sequence numbers.
  mutable std::uint64_t next_sample_seq_ = 0;
};

}  // namespace easched::obs
