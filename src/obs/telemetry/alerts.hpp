// Declarative SLO alerting over the live telemetry stream.
//
// Rules are parsed from a compact spec (`--alerts=`, same
// inline-spec-or-file convention as FaultPlan / the resilience spec) and
// evaluated against every TelemetrySnapshot the sampler captures. Three
// rule kinds:
//
//   threshold      power_w>25000 for=300 resolve=24000
//                  Fires when the sampled series breaches the bound
//                  continuously for `for` sim-seconds (>= at the boundary:
//                  with for=300 and a 60 s cadence the rule fires on the
//                  sample exactly 300 s after the first breaching one, not
//                  one sample early). `resolve=` is the hysteresis level:
//                  an active alert only resolves once the series is back
//                  on the good side of it (default: the firing bound).
//
//   rate-of-change queue_depth rate>0.05 window=600
//                  Fires on the trailing-window slope (units per
//                  sim-second) of the series, with the same for/resolve
//                  machinery applied to the derived signal.
//
//   SLO burn rate  sla_satisfaction burn>2x window=1800 slo=100 budget=5
//                  Classic burn-rate alerting: the mean shortfall below
//                  the SLO target over the trailing window, divided by the
//                  allowed shortfall (`budget`), must exceed the
//                  multiplier. burn>2x means "eating error budget at twice
//                  the sustainable rate".
//
// Firing and resolving emit kAlertFire / kAlertResolve trace instants and
// bump the `alerts.*` metric family; the per-rule firing log is absorbed
// into the RunReport and run_summary.json. Every input is simulation
// state, so the firing log is byte-identical across repeats and solver/
// sweep thread counts — the property the telemetry ctest gate asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace easched::metrics {
struct Recorder;
}

namespace easched::obs {

struct TelemetrySnapshot;
class SnapshotRing;

/// Sampled series an alert rule can watch. Names (series_name) are the
/// spec-grammar identifiers; append, don't renumber.
enum class AlertSeries : std::uint8_t {
  kPowerW,            ///< fleet electrical draw [W]
  kEnergyKwh,         ///< cumulative energy [kWh]
  kSlaSatisfaction,   ///< mean satisfaction of finished jobs [%]
  kQueueDepth,        ///< pending (unallocated) VMs
  kBackoff,           ///< VMs serving a post-failure backoff
  kJobsRunning,       ///< VMs currently placed
  kJobsDeferred,      ///< cumulative admission deferrals
  kJobsShed,          ///< cumulative admission sheds
  kWorkingRatio,      ///< working/online hosts (the λ control signal)
  kHostsOnline,       ///< on + booting hosts
  kHostsWorking,      ///< hosts executing >= 1 VM or operation
  kHostsFailed,       ///< hosts currently failed
  kLadderRung,        ///< degradation-ladder level (0 = full)
  kBreakerOpenRate,   ///< breakers not Healthy / fleet size
};

[[nodiscard]] const char* series_name(AlertSeries series) noexcept;

/// Reads one series out of a snapshot.
[[nodiscard]] double series_value(const TelemetrySnapshot& snap,
                                  AlertSeries series) noexcept;

enum class AlertKind : std::uint8_t {
  kThreshold,  ///< compare the raw series against the bound
  kRate,       ///< compare the trailing-window slope against the bound
  kBurn,       ///< compare the SLO burn rate against the multiplier
};

struct AlertRule {
  std::string name;     ///< label in logs/traces (defaults to the spec text)
  AlertSeries series = AlertSeries::kPowerW;
  AlertKind kind = AlertKind::kThreshold;
  bool above = true;    ///< '>' rule (false = '<')
  double bound = 0;     ///< threshold / slope bound / burn multiplier
  double for_s = 0;     ///< condition must hold this long before firing
  double window_s = 300;  ///< trailing window for rate/burn rules
  /// Hysteresis: an active alert resolves only when the condition signal
  /// is back on the good side of this level. NaN = use `bound`.
  double resolve = 0;
  bool has_resolve = false;
  // Burn-rate parameters.
  double slo = 100;     ///< SLO target the series should hold
  double budget = 5;    ///< sustainable mean shortfall from the target
};

/// One rule's firing episode. `resolved_t` is -1 while still active (and
/// stays -1 in the final log when the run ends mid-firing).
struct AlertFiring {
  std::string rule;
  double fired_t = 0;
  double resolved_t = -1;
};

/// Parses an alert spec: comma-separated rules, each `series[ rate|burn]`
/// + comparator + options (`for=`, `window=`, `resolve=`, `slo=`,
/// `budget=`, `name=`). A spec containing neither '>' nor '<' is treated
/// as a path to a file holding one rule per line ('#' starts a comment).
/// Throws std::invalid_argument on unknown series/keys or malformed
/// values.
std::vector<AlertRule> parse_alert_rules(const std::string& spec);

class AlertEngine {
 public:
  void configure(std::vector<AlertRule> rules);
  [[nodiscard]] bool enabled() const noexcept { return !rules_.empty(); }
  [[nodiscard]] const std::vector<AlertRule>& rules() const noexcept {
    return rules_;
  }

  /// Evaluates every rule against `snap` (the newest sample, not yet in
  /// `history`). Fire/resolve transitions append to the firing log and —
  /// when `recorder` carries an observability bundle — emit trace instants
  /// and alerts.* metrics. Returns the names of the currently active
  /// rules, in rule order.
  std::vector<std::string> evaluate(const TelemetrySnapshot& snap,
                                    const SnapshotRing& history,
                                    const metrics::Recorder* recorder);

  [[nodiscard]] std::size_t active_count() const noexcept;
  [[nodiscard]] bool is_active(std::size_t rule_index) const;
  /// Complete firing history (active episodes carry resolved_t = -1).
  [[nodiscard]] const std::vector<AlertFiring>& log() const noexcept {
    return log_;
  }

  /// Human-readable one-line-per-episode rendering of the firing log
  /// ("high-power fired@3600 resolved@7200"); empty string when nothing
  /// ever fired.
  [[nodiscard]] std::string log_to_string() const;

 private:
  struct RuleState {
    bool active = false;
    bool breaching = false;       ///< condition held at the last sample
    sim::SimTime breach_since = 0;  ///< when the current breach streak began
    std::size_t open_log_index = 0; ///< log_ entry of the active episode
  };

  /// The rule's condition signal at `snap` (raw value, slope, or burn
  /// rate), computed over `history` + `snap`.
  [[nodiscard]] double signal(const AlertRule& rule,
                              const TelemetrySnapshot& snap,
                              const SnapshotRing& history) const;

  std::vector<AlertRule> rules_;
  std::vector<RuleState> states_;
  std::vector<AlertFiring> log_;
};

}  // namespace easched::obs
