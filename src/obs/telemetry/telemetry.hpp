// Live telemetry plane: streaming time-series snapshots of a running
// simulation (or, one day, a real backend).
//
// The paper's whole argument is about time-varying signals — the
// working/online host ratio against λmin/λmax, per-host power draw, SLA
// satisfaction decay — yet traces and run summaries are post-hoc: you only
// learn a run went sideways after it ends. The TelemetryPlane is the live
// counterpart. A sim periodic (registered by the experiment runner) calls
// `sample()` at a fixed sim-time cadence; each call captures a
// fixed-schema TelemetrySnapshot — per-host state/utilisation/power/
// health, fleet rollups, queue depths, degradation rung, cumulative kWh —
// into a bounded ring buffer and hands it to every attached sink:
//
//   * JsonlSink   — one JSON object per line, streamed to a file
//                   (`--telemetry-out=`); survives ring eviction.
//   * PromSink    — Prometheus text exposition of the *latest* snapshot,
//                   rewritten atomically (tmp + rename) on every sample so
//                   an external scraper can poll the file (`--prom-out=`).
//   * MemorySink  — snapshots retained in memory, for tests.
//
// The AlertEngine (alerts.hpp) is evaluated between capture and sink
// emission, so every emitted snapshot carries the names of the alerts
// active at that instant and the live dashboard (dashboard.hpp) can render
// them without separate plumbing.
//
// Determinism contract: every sampled value derives from simulation state
// (sim clock, host/VM state, exact time-weighted integrals) — never from
// wall clock or thread scheduling — so the snapshot stream, the JSONL
// bytes and the alert firing log are byte-identical across repeats and
// across EASCHED_SOLVER_THREADS / EASCHED_SWEEP_THREADS values. The
// telemetry ctest gate asserts this.
//
// Compile-out mirrors EASCHED_TRACE: with EASCHED_TELEMETRY=OFF the
// `obs::telemetry()` accessor (obs.hpp) folds to constexpr nullptr and the
// runner's sampling periodic is dead code; the classes themselves are
// always built so tests can drive them directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/telemetry/alerts.hpp"
#include "sim/time.hpp"

#ifndef EASCHED_TELEMETRY_ENABLED
#define EASCHED_TELEMETRY_ENABLED 1
#endif

namespace easched::datacenter {
class Datacenter;
}
namespace easched::sched {
class SchedulerDriver;
}
namespace easched::metrics {
struct Recorder;
}

namespace easched::obs {

/// One host's slice of a snapshot. Kept small on purpose: a week-long run
/// at the default 60 s cadence samples the 100-node fleet ~10k times.
struct HostSample {
  std::uint8_t state = 0;   ///< datacenter::HostState numeric value
  std::uint8_t health = 0;  ///< resilience::HostHealth (0 = Healthy)
  float util_pct = 0;       ///< allocated CPU as % of host capacity
  float power_w = 0;        ///< current electrical draw [W]
};

/// The fixed-schema telemetry record. Field order here is the JSONL field
/// order; append new fields at the end, never reorder (docs/telemetry.md
/// documents the schema for external consumers).
struct TelemetrySnapshot {
  std::uint64_t seq = 0;   ///< monotonic sample number (never reset)
  sim::SimTime t = 0;      ///< sim-time stamp [s]

  // Fleet rollups.
  int hosts_on = 0;        ///< powered on (excluding booting)
  int hosts_booting = 0;
  int hosts_off = 0;       ///< off and available (not failed)
  int hosts_failed = 0;
  int working = 0;         ///< hosts executing >= 1 VM or operation
  int online = 0;          ///< on + booting (the paper's denominator)
  double ratio = 0;        ///< working/online (0 when online == 0)
  double lambda_min = 0;   ///< power controller band, for dashboards
  double lambda_max = 0;
  double power_w = 0;      ///< fleet electrical draw [W]
  double energy_kwh = 0;   ///< cumulative energy since t=0 [kWh]

  // Scheduler state.
  std::size_t queue = 0;       ///< pending (unallocated) VMs
  std::size_t backoff = 0;     ///< VMs serving a post-failure backoff
  std::size_t running = 0;     ///< VMs currently Creating/Running/Migrating
  std::uint64_t deferred = 0;  ///< cumulative admission deferrals
  std::uint64_t shed = 0;      ///< cumulative admission sheds
  double sla = 0;              ///< mean satisfaction of finished jobs [%]

  // Resilience state.
  int rung = 0;                ///< degradation-ladder level (0 = full)
  std::size_t breakers_open = 0;  ///< breakers currently not Healthy

  /// Names of the alert rules active (firing) at this instant, in rule
  /// order. Filled after AlertEngine evaluation, before sink emission.
  std::vector<std::string> active_alerts;

  std::vector<HostSample> hosts;
};

/// Serialises one snapshot as a single JSON line (no trailing newline).
/// Doubles use the repo-wide %.9g convention; the field order is the
/// struct order above, so output is byte-deterministic.
void write_snapshot_jsonl(std::ostream& os, const TelemetrySnapshot& snap);

/// Parses a line produced by write_snapshot_jsonl back into a snapshot
/// (used by `watch_tool` to replay/follow a telemetry file). Returns false
/// on lines that do not carry the expected schema.
bool parse_snapshot_jsonl(const std::string& line, TelemetrySnapshot* out);

/// Prometheus text exposition of one snapshot (the `easched_*` metric
/// family; see docs/telemetry.md for an example scrape config).
void write_snapshot_prom(std::ostream& os, const TelemetrySnapshot& snap);

/// Bounded FIFO of the most recent snapshots. Push beyond capacity evicts
/// the oldest; `total()` keeps counting so tests can assert eviction.
class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t capacity);

  void push(TelemetrySnapshot snap);
  void clear();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }
  /// Snapshots ever pushed (>= size() once eviction starts).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// i = 0 is the oldest retained snapshot, size()-1 the newest.
  [[nodiscard]] const TelemetrySnapshot& at(std::size_t i) const;
  [[nodiscard]] const TelemetrySnapshot& latest() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest retained snapshot
  std::uint64_t total_ = 0;
  std::vector<TelemetrySnapshot> buf_;
};

/// A snapshot consumer. Sinks are invoked on the simulation thread in
/// attachment order; they must not mutate simulation state.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_sample(const TelemetrySnapshot& snap) = 0;
  /// End of run: flush/close outputs. Default: nothing.
  virtual void finish() {}
};

/// Streams every snapshot as one JSON line to a file.
class JsonlSink : public TelemetrySink {
 public:
  /// Opens `path` for writing; `ok()` reports failure (the sink then drops
  /// samples rather than aborting the run).
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;
  [[nodiscard]] bool ok() const noexcept;
  void on_sample(const TelemetrySnapshot& snap) override;
  void finish() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Rewrites a Prometheus text-exposition file with the latest snapshot on
/// every sample. The write goes to `<path>.tmp` followed by an atomic
/// rename, so an external scraper tailing the file never sees a torn
/// exposition.
class PromSink : public TelemetrySink {
 public:
  explicit PromSink(std::string path);
  void on_sample(const TelemetrySnapshot& snap) override;

 private:
  std::string path_;
};

/// Retains every snapshot in memory; for tests and in-process consumers.
class MemorySink : public TelemetrySink {
 public:
  void on_sample(const TelemetrySnapshot& snap) override {
    snaps_.push_back(snap);
  }
  [[nodiscard]] const std::vector<TelemetrySnapshot>& snapshots() const {
    return snaps_;
  }

 private:
  std::vector<TelemetrySnapshot> snaps_;
};

struct TelemetryConfig {
  /// Sampling cadence in sim seconds.
  double period_s = 60;
  /// Ring-buffer capacity (snapshots retained in memory; file sinks see
  /// every sample regardless).
  std::size_t ring_capacity = 4096;
};

/// The live telemetry plane of one run: configuration, ring buffer, sinks
/// and the alert engine, bundled into obs::Observability (obs.hpp). The
/// experiment runner registers the sampling periodic and calls `sample()`;
/// everything else hangs off that.
class TelemetryPlane {
 public:
  /// What `sample()` reads. All pointers are non-owning and must outlive
  /// the run; `driver` may be null (no scheduler attached — queue fields
  /// sample as zero).
  struct Sources {
    const datacenter::Datacenter* dc = nullptr;
    const sched::SchedulerDriver* driver = nullptr;
    const metrics::Recorder* recorder = nullptr;
    double lambda_min = 0;
    double lambda_max = 0;
  };

  TelemetryPlane();

  void enable(TelemetryConfig config = {});
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }

  /// Attaches a sink (the plane takes ownership). Returns the raw pointer
  /// for callers that need to read the sink back (MemorySink in tests).
  TelemetrySink* add_sink(std::unique_ptr<TelemetrySink> sink);

  /// Installs the alert rules (see alerts.hpp for the grammar).
  void set_alert_rules(std::vector<AlertRule> rules);
  [[nodiscard]] AlertEngine& alerts() noexcept { return alerts_; }
  [[nodiscard]] const AlertEngine& alerts() const noexcept { return alerts_; }

  /// Captures one snapshot: reads the sources, evaluates the alert rules,
  /// pushes into the ring and feeds every sink. `recorder` (from sources)
  /// also routes the alert trace events / metrics. Returns the sequence
  /// number assigned.
  std::uint64_t sample(sim::SimTime now, const Sources& sources);

  /// End of run: takes a final sample when the last one is older than
  /// `now`, closes the alert log (open firings keep resolved_t = -1) and
  /// flushes the sinks.
  void finish(sim::SimTime now, const Sources& sources);

  [[nodiscard]] const SnapshotRing& ring() const noexcept { return ring_; }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return next_seq_;
  }

  /// Builds a snapshot from the sources without ring/sink/alert side
  /// effects (the sampling primitive; exposed for tests).
  [[nodiscard]] TelemetrySnapshot capture(sim::SimTime now,
                                          const Sources& sources) const;

 private:
  bool enabled_ = false;
  TelemetryConfig config_;
  std::uint64_t next_seq_ = 0;
  SnapshotRing ring_;
  AlertEngine alerts_;
  std::vector<std::unique_ptr<TelemetrySink>> sinks_;
};

}  // namespace easched::obs
