#include "obs/telemetry/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "datacenter/datacenter.hpp"
#include "obs/obs.hpp"
#include "resilience/resilience.hpp"
#include "sched/driver.hpp"

namespace easched::obs {

namespace {

/// Repo-wide deterministic double rendering (%.9g, like the trace and
/// run_summary writers) — round-trips every value telemetry carries.
void put_num(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

void write_snapshot_jsonl(std::ostream& os, const TelemetrySnapshot& snap) {
  os << "{\"seq\":" << snap.seq << ",\"t\":";
  put_num(os, snap.t);
  os << ",\"on\":" << snap.hosts_on << ",\"booting\":" << snap.hosts_booting
     << ",\"off\":" << snap.hosts_off << ",\"failed\":" << snap.hosts_failed
     << ",\"working\":" << snap.working << ",\"online\":" << snap.online
     << ",\"ratio\":";
  put_num(os, snap.ratio);
  os << ",\"lmin\":";
  put_num(os, snap.lambda_min);
  os << ",\"lmax\":";
  put_num(os, snap.lambda_max);
  os << ",\"power_w\":";
  put_num(os, snap.power_w);
  os << ",\"kwh\":";
  put_num(os, snap.energy_kwh);
  os << ",\"queue\":" << snap.queue << ",\"backoff\":" << snap.backoff
     << ",\"running\":" << snap.running << ",\"deferred\":" << snap.deferred
     << ",\"shed\":" << snap.shed << ",\"sla\":";
  put_num(os, snap.sla);
  os << ",\"rung\":" << snap.rung
     << ",\"breakers_open\":" << snap.breakers_open << ",\"alerts\":[";
  for (std::size_t i = 0; i < snap.active_alerts.size(); ++i) {
    if (i > 0) os << ',';
    os << '"';
    // Rule names come from the spec parser, which rejects quotes/backslashes,
    // so plain escaping of the two JSON-hostile characters suffices.
    for (char c : snap.active_alerts[i]) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  }
  os << "],\"hosts\":[";
  for (std::size_t i = 0; i < snap.hosts.size(); ++i) {
    const HostSample& h = snap.hosts[i];
    if (i > 0) os << ',';
    os << '[' << static_cast<int>(h.state) << ','
       << static_cast<int>(h.health) << ',';
    put_num(os, h.util_pct);
    os << ',';
    put_num(os, h.power_w);
    os << ']';
  }
  os << "]}";
}

namespace {

/// Minimal field extraction for the writer's own fixed schema; not a
/// general JSON parser.
bool find_field(const std::string& line, const char* key, std::size_t* pos) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *pos = at + needle.size();
  return true;
}

bool read_num(const std::string& line, const char* key, double* out) {
  std::size_t pos = 0;
  if (!find_field(line, key, &pos)) return false;
  *out = std::strtod(line.c_str() + pos, nullptr);
  return true;
}

}  // namespace

bool parse_snapshot_jsonl(const std::string& line, TelemetrySnapshot* out) {
  if (out == nullptr || line.empty() || line[0] != '{') return false;
  TelemetrySnapshot snap;
  double v = 0;
  if (!read_num(line, "seq", &v)) return false;
  snap.seq = static_cast<std::uint64_t>(v);
  if (!read_num(line, "t", &snap.t)) return false;
  if (!read_num(line, "on", &v)) return false;
  snap.hosts_on = static_cast<int>(v);
  if (!read_num(line, "booting", &v)) return false;
  snap.hosts_booting = static_cast<int>(v);
  if (!read_num(line, "off", &v)) return false;
  snap.hosts_off = static_cast<int>(v);
  if (!read_num(line, "failed", &v)) return false;
  snap.hosts_failed = static_cast<int>(v);
  if (!read_num(line, "working", &v)) return false;
  snap.working = static_cast<int>(v);
  if (!read_num(line, "online", &v)) return false;
  snap.online = static_cast<int>(v);
  if (!read_num(line, "ratio", &snap.ratio)) return false;
  if (!read_num(line, "lmin", &snap.lambda_min)) return false;
  if (!read_num(line, "lmax", &snap.lambda_max)) return false;
  if (!read_num(line, "power_w", &snap.power_w)) return false;
  if (!read_num(line, "kwh", &snap.energy_kwh)) return false;
  if (!read_num(line, "queue", &v)) return false;
  snap.queue = static_cast<std::size_t>(v);
  if (!read_num(line, "backoff", &v)) return false;
  snap.backoff = static_cast<std::size_t>(v);
  if (!read_num(line, "running", &v)) return false;
  snap.running = static_cast<std::size_t>(v);
  if (!read_num(line, "deferred", &v)) return false;
  snap.deferred = static_cast<std::uint64_t>(v);
  if (!read_num(line, "shed", &v)) return false;
  snap.shed = static_cast<std::uint64_t>(v);
  if (!read_num(line, "sla", &snap.sla)) return false;
  if (!read_num(line, "rung", &v)) return false;
  snap.rung = static_cast<int>(v);
  if (!read_num(line, "breakers_open", &v)) return false;
  snap.breakers_open = static_cast<std::size_t>(v);

  std::size_t pos = 0;
  if (!find_field(line, "alerts", &pos) || line[pos] != '[') return false;
  ++pos;
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] == '"') {
      std::string name;
      ++pos;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
        name += line[pos++];
      }
      snap.active_alerts.push_back(std::move(name));
    }
    ++pos;
  }

  if (!find_field(line, "hosts", &pos) || line[pos] != '[') return false;
  ++pos;
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] == '[') {
      ++pos;
      HostSample h;
      char* end = nullptr;
      const char* p = line.c_str() + pos;
      h.state = static_cast<std::uint8_t>(std::strtod(p, &end));
      p = end + 1;  // skip ','
      h.health = static_cast<std::uint8_t>(std::strtod(p, &end));
      p = end + 1;
      h.util_pct = static_cast<float>(std::strtod(p, &end));
      p = end + 1;
      h.power_w = static_cast<float>(std::strtod(p, &end));
      pos = static_cast<std::size_t>(end - line.c_str());
      snap.hosts.push_back(h);
      while (pos < line.size() && line[pos] != ']') ++pos;  // tuple close
      ++pos;
    } else {
      ++pos;
    }
  }

  *out = std::move(snap);
  return true;
}

namespace {

void prom_family(std::ostream& os, const char* name, const char* help,
                 const char* type) {
  os << "# HELP " << name << ' ' << help << "\n# TYPE " << name << ' '
     << type << '\n';
}

void prom_value(std::ostream& os, const char* name, double v,
                const std::string& labels = "") {
  os << name;
  if (!labels.empty()) os << '{' << labels << '}';
  os << ' ';
  put_num(os, v);
  os << '\n';
}

}  // namespace

void write_snapshot_prom(std::ostream& os, const TelemetrySnapshot& snap) {
  prom_family(os, "easched_sample_seq", "Telemetry sample sequence number",
              "counter");
  prom_value(os, "easched_sample_seq", static_cast<double>(snap.seq));
  prom_family(os, "easched_sim_time_seconds", "Simulation clock", "gauge");
  prom_value(os, "easched_sim_time_seconds", snap.t);

  prom_family(os, "easched_hosts", "Hosts by power state", "gauge");
  prom_value(os, "easched_hosts", snap.hosts_on, "state=\"on\"");
  prom_value(os, "easched_hosts", snap.hosts_booting, "state=\"booting\"");
  prom_value(os, "easched_hosts", snap.hosts_off, "state=\"off\"");
  prom_value(os, "easched_hosts", snap.hosts_failed, "state=\"failed\"");
  prom_family(os, "easched_hosts_working",
              "Hosts executing at least one VM or operation", "gauge");
  prom_value(os, "easched_hosts_working", snap.working);
  prom_family(os, "easched_hosts_online", "Hosts on or booting", "gauge");
  prom_value(os, "easched_hosts_online", snap.online);
  prom_family(os, "easched_working_ratio",
              "Working/online host ratio (the paper's control signal)",
              "gauge");
  prom_value(os, "easched_working_ratio", snap.ratio);
  prom_family(os, "easched_lambda_min", "Power controller lower threshold",
              "gauge");
  prom_value(os, "easched_lambda_min", snap.lambda_min);
  prom_family(os, "easched_lambda_max", "Power controller upper threshold",
              "gauge");
  prom_value(os, "easched_lambda_max", snap.lambda_max);

  prom_family(os, "easched_power_watts", "Fleet electrical draw", "gauge");
  prom_value(os, "easched_power_watts", snap.power_w);
  prom_family(os, "easched_energy_kwh_total",
              "Cumulative energy since simulation start", "counter");
  prom_value(os, "easched_energy_kwh_total", snap.energy_kwh);

  prom_family(os, "easched_queue_depth", "Pending (unallocated) VMs",
              "gauge");
  prom_value(os, "easched_queue_depth", static_cast<double>(snap.queue));
  prom_family(os, "easched_backoff", "VMs serving a post-failure backoff",
              "gauge");
  prom_value(os, "easched_backoff", static_cast<double>(snap.backoff));
  prom_family(os, "easched_jobs_running", "VMs currently placed", "gauge");
  prom_value(os, "easched_jobs_running", static_cast<double>(snap.running));
  prom_family(os, "easched_jobs_deferred_total",
              "Arrivals deferred by admission control", "counter");
  prom_value(os, "easched_jobs_deferred_total",
             static_cast<double>(snap.deferred));
  prom_family(os, "easched_jobs_shed_total",
              "Arrivals shed by admission control", "counter");
  prom_value(os, "easched_jobs_shed_total", static_cast<double>(snap.shed));
  prom_family(os, "easched_sla_satisfaction",
              "Mean satisfaction of finished jobs", "gauge");
  prom_value(os, "easched_sla_satisfaction", snap.sla);

  prom_family(os, "easched_degradation_rung",
              "Resilience degradation-ladder level (0 = full)", "gauge");
  prom_value(os, "easched_degradation_rung", snap.rung);
  prom_family(os, "easched_breakers_open",
              "Host circuit breakers currently not healthy", "gauge");
  prom_value(os, "easched_breakers_open",
             static_cast<double>(snap.breakers_open));

  prom_family(os, "easched_alert_active", "Alert rules currently firing",
              "gauge");
  for (const std::string& name : snap.active_alerts) {
    std::string label = "rule=\"";
    for (char c : name) {
      if (c == '"' || c == '\\') label += '\\';
      label += c;
    }
    label += '"';
    prom_value(os, "easched_alert_active", 1, label);
  }

  prom_family(os, "easched_host_state",
              "Per-host power state (datacenter::HostState value)", "gauge");
  for (std::size_t h = 0; h < snap.hosts.size(); ++h) {
    prom_value(os, "easched_host_state", snap.hosts[h].state,
               "host=\"" + std::to_string(h) + "\"");
  }
  prom_family(os, "easched_host_health",
              "Per-host breaker health (resilience::HostHealth value)",
              "gauge");
  for (std::size_t h = 0; h < snap.hosts.size(); ++h) {
    prom_value(os, "easched_host_health", snap.hosts[h].health,
               "host=\"" + std::to_string(h) + "\"");
  }
  prom_family(os, "easched_host_util_pct",
              "Per-host allocated CPU as % of capacity", "gauge");
  for (std::size_t h = 0; h < snap.hosts.size(); ++h) {
    prom_value(os, "easched_host_util_pct", snap.hosts[h].util_pct,
               "host=\"" + std::to_string(h) + "\"");
  }
  prom_family(os, "easched_host_power_watts", "Per-host electrical draw",
              "gauge");
  for (std::size_t h = 0; h < snap.hosts.size(); ++h) {
    prom_value(os, "easched_host_power_watts", snap.hosts[h].power_w,
               "host=\"" + std::to_string(h) + "\"");
  }
}

// ---- SnapshotRing ----------------------------------------------------------

SnapshotRing::SnapshotRing(std::size_t capacity) : capacity_(capacity) {
  buf_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void SnapshotRing::push(TelemetrySnapshot snap) {
  ++total_;
  if (capacity_ == 0) return;
  if (buf_.size() < capacity_) {
    buf_.push_back(std::move(snap));
    return;
  }
  buf_[head_] = std::move(snap);
  head_ = (head_ + 1) % capacity_;
}

void SnapshotRing::clear() {
  buf_.clear();
  head_ = 0;
  total_ = 0;
}

const TelemetrySnapshot& SnapshotRing::at(std::size_t i) const {
  return buf_[(head_ + i) % buf_.size()];
}

const TelemetrySnapshot& SnapshotRing::latest() const {
  return at(buf_.size() - 1);
}

// ---- sinks -----------------------------------------------------------------

struct JsonlSink::Impl {
  std::ofstream out;
};

JsonlSink::JsonlSink(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::trunc);
}

JsonlSink::~JsonlSink() = default;

bool JsonlSink::ok() const noexcept { return impl_->out.is_open(); }

void JsonlSink::on_sample(const TelemetrySnapshot& snap) {
  if (!impl_->out.is_open()) return;
  write_snapshot_jsonl(impl_->out, snap);
  impl_->out << '\n';
}

void JsonlSink::finish() {
  if (impl_->out.is_open()) impl_->out.flush();
}

PromSink::PromSink(std::string path) : path_(std::move(path)) {}

void PromSink::on_sample(const TelemetrySnapshot& snap) {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return;
    write_snapshot_prom(out, snap);
  }
  std::rename(tmp.c_str(), path_.c_str());
}

// ---- TelemetryPlane --------------------------------------------------------

TelemetryPlane::TelemetryPlane() : ring_(TelemetryConfig{}.ring_capacity) {}

void TelemetryPlane::enable(TelemetryConfig config) {
  enabled_ = true;
  config_ = config;
  if (config_.period_s <= 0) config_.period_s = 60;
  ring_ = SnapshotRing(config_.ring_capacity);
}

TelemetrySink* TelemetryPlane::add_sink(std::unique_ptr<TelemetrySink> sink) {
  sinks_.push_back(std::move(sink));
  return sinks_.back().get();
}

void TelemetryPlane::set_alert_rules(std::vector<AlertRule> rules) {
  alerts_.configure(std::move(rules));
}

TelemetrySnapshot TelemetryPlane::capture(sim::SimTime now,
                                          const Sources& sources) const {
  TelemetrySnapshot snap;
  snap.t = now;
  snap.lambda_min = sources.lambda_min;
  snap.lambda_max = sources.lambda_max;

  const resilience::ResilienceController* ctrl =
      sources.recorder != nullptr ? resilience::controller(*sources.recorder)
                                  : nullptr;

  if (sources.dc != nullptr) {
    const datacenter::Datacenter& dc = *sources.dc;
    snap.hosts.reserve(dc.num_hosts());
    for (std::size_t h = 0; h < dc.num_hosts(); ++h) {
      const datacenter::Host& host =
          dc.host(static_cast<datacenter::HostId>(h));
      HostSample hs;
      hs.state = static_cast<std::uint8_t>(host.state);
      if (ctrl != nullptr) {
        hs.health = static_cast<std::uint8_t>(
            ctrl->health(static_cast<datacenter::HostId>(h)));
      }
      const double cap = host.spec.cpu_capacity_pct;
      hs.util_pct = static_cast<float>(
          cap > 0 ? 100.0 * host.used_cpu_pct / cap : 0.0);
      if (sources.recorder != nullptr) {
        hs.power_w =
            static_cast<float>(sources.recorder->watts.host_current(h));
      }
      snap.hosts.push_back(hs);

      switch (host.state) {
        case datacenter::HostState::kOn:
          ++snap.hosts_on;
          break;
        case datacenter::HostState::kBooting:
          ++snap.hosts_booting;
          break;
        case datacenter::HostState::kFailed:
          ++snap.hosts_failed;
          break;
        // ShuttingDown is rolled into "off" — it no longer serves load; the
        // per-host state field keeps the exact value.
        case datacenter::HostState::kOff:
        case datacenter::HostState::kShuttingDown:
          ++snap.hosts_off;
          break;
      }
      if (host.is_working()) ++snap.working;
      if (host.is_online()) ++snap.online;
      snap.running += host.vm_count();
    }
    snap.ratio = snap.online > 0
                     ? static_cast<double>(snap.working) / snap.online
                     : 0.0;
  }

  if (sources.recorder != nullptr) {
    const metrics::Recorder& rec = *sources.recorder;
    snap.power_w = rec.watts.total_current();
    snap.energy_kwh = rec.energy_kwh(now);
    snap.deferred = rec.counts.jobs_deferred;
    snap.shed = rec.counts.jobs_shed;
    snap.sla = rec.jobs.mean_satisfaction();
  }
  if (sources.driver != nullptr) {
    snap.queue = sources.driver->queue().size();
    snap.backoff = sources.driver->backoff_count();
  }
  if (ctrl != nullptr) {
    snap.rung = static_cast<int>(ctrl->ladder());
    snap.breakers_open = ctrl->breakers_not_healthy();
  }
  return snap;
}

std::uint64_t TelemetryPlane::sample(sim::SimTime now,
                                     const Sources& sources) {
  TelemetrySnapshot snap = capture(now, sources);
  snap.seq = next_seq_++;
  if (alerts_.enabled()) {
    snap.active_alerts = alerts_.evaluate(snap, ring_, sources.recorder);
  }
  const std::uint64_t seq = snap.seq;
  // Sinks see the alert-annotated record even with a zero-capacity ring.
  for (auto& sink : sinks_) sink->on_sample(snap);
  ring_.push(std::move(snap));
  return seq;
}

void TelemetryPlane::finish(sim::SimTime now, const Sources& sources) {
  if (next_seq_ == 0 || (!ring_.empty() && ring_.latest().t < now)) {
    sample(now, sources);
  }
  for (auto& sink : sinks_) sink->finish();
}

}  // namespace easched::obs
