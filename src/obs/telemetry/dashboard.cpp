#include "obs/telemetry/dashboard.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "resilience/health.hpp"
#include "sim/time.hpp"

namespace easched::obs {

namespace {

// Eight block elements, lowest to highest fill.
const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

std::string format_sim_time(sim::SimTime t) {
  const long long total = static_cast<long long>(t);
  const long long days = total / static_cast<long long>(sim::kDay);
  const long long rem = total % static_cast<long long>(sim::kDay);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lldd %02lld:%02lld:%02lld", days,
                rem / 3600, (rem % 3600) / 60, rem % 60);
  return buf;
}

/// Reads one series out of the tail of the ring for a sparkline.
std::vector<double> tail_series(const SnapshotRing& ring, std::size_t width,
                                double (*get)(const TelemetrySnapshot&)) {
  const std::size_t n = ring.size();
  const std::size_t take = n < width ? n : width;
  std::vector<double> out;
  out.reserve(take);
  for (std::size_t i = n - take; i < n; ++i) out.push_back(get(ring.at(i)));
  return out;
}

}  // namespace

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  if (values.empty() || width == 0) return "";
  const std::size_t take = values.size() < width ? values.size() : width;
  const std::size_t first = values.size() - take;
  double lo = values[first];
  double hi = values[first];
  for (std::size_t i = first; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (std::size_t i = first; i < values.size(); ++i) {
    int level = 3;  // flat series render mid-height
    if (hi > lo) {
      level = static_cast<int>((values[i] - lo) / (hi - lo) * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

void render_dashboard(std::ostream& os, const SnapshotRing& ring,
                      const DashboardOptions& options) {
  if (ring.empty()) return;
  const TelemetrySnapshot& now = ring.latest();
  const std::size_t w = options.spark_width;
  char buf[256];

  if (options.ansi) os << "\x1b[H\x1b[2J";

  os << "easched live telemetry — t=" << format_sim_time(now.t)
     << "  (sample " << now.seq << ")\n";

  std::snprintf(buf, sizeof(buf),
                " hosts   on %d  booting %d  off %d  failed %d   "
                "working/online %.2f  [λ %.2f–%.2f]\n",
                now.hosts_on, now.hosts_booting, now.hosts_off,
                now.hosts_failed, now.ratio, now.lambda_min, now.lambda_max);
  os << buf;

  std::snprintf(buf, sizeof(buf), " power   %8.1f W   ", now.power_w);
  os << buf
     << sparkline(tail_series(ring, w,
                              [](const TelemetrySnapshot& s) {
                                return s.power_w;
                              }),
                  w);
  std::snprintf(buf, sizeof(buf), "   energy %.2f kWh\n", now.energy_kwh);
  os << buf;

  std::snprintf(buf, sizeof(buf), " sla     %7.2f %%   ", now.sla);
  os << buf
     << sparkline(tail_series(ring, w,
                              [](const TelemetrySnapshot& s) {
                                return s.sla;
                              }),
                  w)
     << '\n';

  std::snprintf(buf, sizeof(buf), " queue   %8zu     ", now.queue);
  os << buf
     << sparkline(tail_series(ring, w,
                              [](const TelemetrySnapshot& s) {
                                return static_cast<double>(s.queue);
                              }),
                  w);
  std::snprintf(buf, sizeof(buf),
                "   backoff %zu  running %zu  deferred %llu  shed %llu\n",
                now.backoff, now.running,
                static_cast<unsigned long long>(now.deferred),
                static_cast<unsigned long long>(now.shed));
  os << buf;

  os << " fleet   ";
  os << sparkline(tail_series(ring, w,
                              [](const TelemetrySnapshot& s) {
                                return static_cast<double>(s.working);
                              }),
                  w)
     << "  (working hosts)\n";

  // Degradation-rung banner: loud when degraded, quiet at full service.
  if (now.rung > 0 || now.breakers_open > 0) {
    const char* rung_name = resilience::to_string(
        static_cast<resilience::LadderLevel>(now.rung));
    os << (options.ansi ? "\x1b[1;33m" : "") << " DEGRADED  rung " << now.rung
       << " (" << rung_name << ")  breakers open: " << now.breakers_open
       << (options.ansi ? "\x1b[0m" : "") << '\n';
  } else {
    os << " rung 0 (full service)  breakers open: 0\n";
  }

  if (!now.active_alerts.empty()) {
    os << (options.ansi ? "\x1b[1;31m" : "") << " ALERTS ";
    for (std::size_t i = 0; i < now.active_alerts.size(); ++i) {
      os << (i > 0 ? ", " : "") << now.active_alerts[i];
    }
    os << (options.ansi ? "\x1b[0m" : "") << '\n';
  } else {
    os << " alerts  none\n";
  }
  os.flush();
}

DashboardSink::DashboardSink(std::ostream& os, DashboardOptions options,
                             int min_wall_ms)
    : os_(os),
      options_(options),
      min_wall_ms_(min_wall_ms),
      ring_(options.spark_width < 8 ? 8 : options.spark_width) {}

void DashboardSink::on_sample(const TelemetrySnapshot& snap) {
  ring_.push(snap);
  // Wall-clock throttle — display cadence only; the sampled data is
  // untouched, so determinism is unaffected.
  const long long now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  if (last_paint_ms_ >= 0 && min_wall_ms_ > 0 &&
      now_ms - last_paint_ms_ < min_wall_ms_) {
    return;
  }
  last_paint_ms_ = now_ms;
  render_dashboard(os_, ring_, options_);
}

void DashboardSink::finish() {
  render_dashboard(os_, ring_, options_);  // final frame always lands
}

}  // namespace easched::obs
