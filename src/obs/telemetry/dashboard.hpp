// Terminal dashboard over the live telemetry ring.
//
// Renders the most recent snapshots as a compact ANSI panel: fleet state,
// power/SLA/queue sparklines, the degradation-rung banner and the active
// alert list. Used two ways:
//
//   * `--live` on the example CLIs attaches a DashboardSink to the
//     TelemetryPlane, repainting in place as the simulation runs.
//   * `watch_tool` replays or follows a `--telemetry-out=` JSONL file and
//     feeds the same renderer, so the offline view is pixel-identical.
//
// Rendering is display-only: the sink never touches simulation state, and
// wall-clock throttling only affects how often the panel repaints — the
// sampled data, traces and JSONL bytes stay byte-identical with or without
// a dashboard attached.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/telemetry/telemetry.hpp"

namespace easched::obs {

/// Unicode block-element sparkline (▁▂▃▄▅▆▇█) of `values`, scaled to the
/// observed min/max; constant series render as a flat mid row. Empty input
/// yields an empty string.
[[nodiscard]] std::string sparkline(const std::vector<double>& values,
                                    std::size_t width = 32);

struct DashboardOptions {
  std::size_t spark_width = 32;  ///< sparkline columns
  bool ansi = true;              ///< repaint in place with ANSI escapes
};

/// Paints one frame of the dashboard from the ring's retained history (the
/// newest snapshot is the headline; sparklines read the whole ring tail).
/// No-op on an empty ring.
void render_dashboard(std::ostream& os, const SnapshotRing& ring,
                      const DashboardOptions& options = {});

/// TelemetrySink that repaints the dashboard on an ostream. `min_wall_ms`
/// rate-limits repaints by wall clock so a fast simulation does not flood
/// the terminal (0 = repaint on every sample).
class DashboardSink : public TelemetrySink {
 public:
  DashboardSink(std::ostream& os, DashboardOptions options = {},
                int min_wall_ms = 100);

  void on_sample(const TelemetrySnapshot& snap) override;
  void finish() override;

 private:
  std::ostream& os_;
  DashboardOptions options_;
  int min_wall_ms_;
  SnapshotRing ring_;
  long long last_paint_ms_ = -1;
};

}  // namespace easched::obs
