#include "obs/telemetry/alerts.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/telemetry/telemetry.hpp"

namespace easched::obs {

const char* series_name(AlertSeries series) noexcept {
  switch (series) {
    case AlertSeries::kPowerW:          return "power_w";
    case AlertSeries::kEnergyKwh:       return "energy_kwh";
    case AlertSeries::kSlaSatisfaction: return "sla_satisfaction";
    case AlertSeries::kQueueDepth:      return "queue_depth";
    case AlertSeries::kBackoff:         return "backoff";
    case AlertSeries::kJobsRunning:     return "jobs_running";
    case AlertSeries::kJobsDeferred:    return "jobs_deferred";
    case AlertSeries::kJobsShed:        return "jobs_shed";
    case AlertSeries::kWorkingRatio:    return "working_ratio";
    case AlertSeries::kHostsOnline:     return "hosts_online";
    case AlertSeries::kHostsWorking:    return "hosts_working";
    case AlertSeries::kHostsFailed:     return "hosts_failed";
    case AlertSeries::kLadderRung:      return "ladder_rung";
    case AlertSeries::kBreakerOpenRate: return "breaker_open_rate";
  }
  return "?";
}

double series_value(const TelemetrySnapshot& snap,
                    AlertSeries series) noexcept {
  switch (series) {
    case AlertSeries::kPowerW:          return snap.power_w;
    case AlertSeries::kEnergyKwh:       return snap.energy_kwh;
    case AlertSeries::kSlaSatisfaction: return snap.sla;
    case AlertSeries::kQueueDepth:
      return static_cast<double>(snap.queue);
    case AlertSeries::kBackoff:
      return static_cast<double>(snap.backoff);
    case AlertSeries::kJobsRunning:
      return static_cast<double>(snap.running);
    case AlertSeries::kJobsDeferred:
      return static_cast<double>(snap.deferred);
    case AlertSeries::kJobsShed:
      return static_cast<double>(snap.shed);
    case AlertSeries::kWorkingRatio:    return snap.ratio;
    case AlertSeries::kHostsOnline:     return snap.online;
    case AlertSeries::kHostsWorking:    return snap.working;
    case AlertSeries::kHostsFailed:     return snap.hosts_failed;
    case AlertSeries::kLadderRung:      return snap.rung;
    case AlertSeries::kBreakerOpenRate:
      return snap.hosts.empty()
                 ? 0.0
                 : static_cast<double>(snap.breakers_open) /
                       static_cast<double>(snap.hosts.size());
  }
  return 0;
}

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool parse_series(const std::string& name, AlertSeries* out) {
  for (int i = 0; i <= static_cast<int>(AlertSeries::kBreakerOpenRate); ++i) {
    const auto s = static_cast<AlertSeries>(i);
    if (name == series_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

double parse_value(const std::string& text, const std::string& rule) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  std::string rest = end != nullptr ? trim(end) : "";
  // Burn multipliers read naturally as "2x".
  if (rest == "x") rest.clear();
  if (end == text.c_str() || !rest.empty()) {
    throw std::invalid_argument("alert rule '" + rule +
                                "': malformed number '" + text + "'");
  }
  return v;
}

AlertRule parse_one_rule(const std::string& text) {
  const std::string rule = trim(text);
  const std::size_t cmp = rule.find_first_of("<>");
  if (cmp == std::string::npos || cmp == 0) {
    throw std::invalid_argument("alert rule '" + rule +
                                "': expected '<series> > <bound>'");
  }

  AlertRule out;
  out.name = rule;
  out.above = rule[cmp] == '>';

  // Left of the comparator: the series name, optionally followed by a rule
  // kind keyword ("queue_depth rate", "sla_satisfaction burn").
  std::istringstream lhs(rule.substr(0, cmp));
  std::string series_tok;
  std::string kind_tok;
  lhs >> series_tok >> kind_tok;
  if (!parse_series(series_tok, &out.series)) {
    throw std::invalid_argument("alert rule '" + rule +
                                "': unknown series '" + series_tok + "'");
  }
  if (kind_tok == "rate") {
    out.kind = AlertKind::kRate;
  } else if (kind_tok == "burn") {
    out.kind = AlertKind::kBurn;
  } else if (!kind_tok.empty()) {
    throw std::invalid_argument("alert rule '" + rule +
                                "': unknown rule kind '" + kind_tok + "'");
  }

  // Right of the comparator: the bound, then key=value options.
  std::istringstream rhs(rule.substr(cmp + 1));
  std::string tok;
  if (!(rhs >> tok)) {
    throw std::invalid_argument("alert rule '" + rule + "': missing bound");
  }
  out.bound = parse_value(tok, rule);
  while (rhs >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("alert rule '" + rule +
                                  "': expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "for") {
      out.for_s = parse_value(value, rule);
    } else if (key == "window") {
      out.window_s = parse_value(value, rule);
    } else if (key == "resolve") {
      out.resolve = parse_value(value, rule);
      out.has_resolve = true;
    } else if (key == "slo") {
      out.slo = parse_value(value, rule);
    } else if (key == "budget") {
      out.budget = parse_value(value, rule);
    } else if (key == "name") {
      out.name = value;
    } else {
      throw std::invalid_argument("alert rule '" + rule +
                                  "': unknown option '" + key + "'");
    }
  }
  return out;
}

}  // namespace

std::vector<AlertRule> parse_alert_rules(const std::string& spec) {
  std::vector<std::string> rule_texts;
  if (spec.find_first_of("<>") == std::string::npos) {
    // No comparator anywhere: a file path, one rule per line.
    std::ifstream in(spec);
    if (!in.is_open()) {
      throw std::invalid_argument("alerts: cannot open spec file '" + spec +
                                  "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      line = trim(line);
      if (!line.empty()) rule_texts.push_back(line);
    }
  } else {
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string piece = trim(
          spec.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start));
      if (!piece.empty()) rule_texts.push_back(piece);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  std::vector<AlertRule> rules;
  rules.reserve(rule_texts.size());
  for (const std::string& text : rule_texts) {
    rules.push_back(parse_one_rule(text));
  }
  return rules;
}

// ---- AlertEngine -----------------------------------------------------------

void AlertEngine::configure(std::vector<AlertRule> rules) {
  rules_ = std::move(rules);
  states_.assign(rules_.size(), RuleState{});
  log_.clear();
}

double AlertEngine::signal(const AlertRule& rule,
                           const TelemetrySnapshot& snap,
                           const SnapshotRing& history) const {
  switch (rule.kind) {
    case AlertKind::kThreshold:
      return series_value(snap, rule.series);
    case AlertKind::kRate: {
      // Slope over the trailing window: newest sample vs the oldest
      // retained one inside it. One sample (or an evicted window) → 0.
      const double cutoff = snap.t - rule.window_s;
      for (std::size_t i = 0; i < history.size(); ++i) {
        const TelemetrySnapshot& old = history.at(i);
        if (old.t < cutoff) continue;
        const double dt = snap.t - old.t;
        if (dt <= 0) return 0;
        return (series_value(snap, rule.series) -
                series_value(old, rule.series)) /
               dt;
      }
      return 0;
    }
    case AlertKind::kBurn: {
      // Mean shortfall below the SLO target over the trailing window,
      // normalised by the sustainable shortfall (the error budget).
      if (rule.budget <= 0) return 0;
      const double cutoff = snap.t - rule.window_s;
      double shortfall = 0;
      std::size_t n = 0;
      for (std::size_t i = 0; i < history.size(); ++i) {
        const TelemetrySnapshot& old = history.at(i);
        if (old.t < cutoff) continue;
        shortfall += std::max(0.0, rule.slo - series_value(old, rule.series));
        ++n;
      }
      shortfall += std::max(0.0, rule.slo - series_value(snap, rule.series));
      ++n;
      return shortfall / static_cast<double>(n) / rule.budget;
    }
  }
  return 0;
}

std::vector<std::string> AlertEngine::evaluate(
    const TelemetrySnapshot& snap, const SnapshotRing& history,
    const metrics::Recorder* recorder) {
  std::vector<std::string> active;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    RuleState& st = states_[i];
    const double value = signal(rule, snap, history);
    const bool breaching = rule.above ? value > rule.bound
                                      : value < rule.bound;

    if (!st.active) {
      if (breaching) {
        if (!st.breaching) st.breach_since = snap.t;
        st.breaching = true;
        // >= at the boundary: with for=300 and a 60 s cadence the rule
        // fires on the sample exactly 300 s after the first breaching one.
        if (snap.t - st.breach_since >= rule.for_s) {
          st.active = true;
          st.open_log_index = log_.size();
          log_.push_back(AlertFiring{rule.name, snap.t, -1});
          if (recorder != nullptr) {
            if (auto* tr = obs::tracer(*recorder)) {
              tr->emit(snap.t, EventKind::kAlertFire)
                  .arg("value", value)
                  .arg("bound", rule.bound)
                  .label = rule.name;
            }
            if (recorder->obs != nullptr) {
              recorder->obs->registry.counter("alerts.fired").inc();
            }
          }
        }
      } else {
        st.breaching = false;
      }
    } else {
      // Hysteresis: the episode only ends once the signal is back on the
      // good side of the resolve level (default: the firing bound).
      const double level = rule.has_resolve ? rule.resolve : rule.bound;
      const bool resolved = rule.above ? value <= level : value >= level;
      if (resolved) {
        st.active = false;
        st.breaching = false;
        log_[st.open_log_index].resolved_t = snap.t;
        if (recorder != nullptr) {
          if (auto* tr = obs::tracer(*recorder)) {
            tr->emit(snap.t, EventKind::kAlertResolve)
                .arg("value", value)
                .arg("fired_t", log_[st.open_log_index].fired_t)
                .label = rule.name;
          }
          if (recorder->obs != nullptr) {
            recorder->obs->registry.counter("alerts.resolved").inc();
          }
        }
      }
    }
    if (st.active) active.push_back(rule.name);
  }
  return active;
}

std::size_t AlertEngine::active_count() const noexcept {
  std::size_t n = 0;
  for (const RuleState& st : states_) {
    if (st.active) ++n;
  }
  return n;
}

bool AlertEngine::is_active(std::size_t rule_index) const {
  return states_.at(rule_index).active;
}

std::string AlertEngine::log_to_string() const {
  std::string out;
  char buf[96];
  for (const AlertFiring& f : log_) {
    if (!out.empty()) out += "; ";
    out += f.rule;
    if (f.resolved_t >= 0) {
      std::snprintf(buf, sizeof(buf), " fired@%.9g resolved@%.9g", f.fired_t,
                    f.resolved_t);
    } else {
      std::snprintf(buf, sizeof(buf), " fired@%.9g (active)", f.fired_t);
    }
    out += buf;
  }
  return out;
}

}  // namespace easched::obs
