#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <numeric>
#include <ostream>

namespace easched::obs {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRunBegin:        return "run-begin";
    case EventKind::kJobArrival:      return "job-arrival";
    case EventKind::kRound:           return "round";
    case EventKind::kDecision:        return "decision";
    case EventKind::kCreateStart:     return "create-start";
    case EventKind::kVmReady:         return "vm-ready";
    case EventKind::kJobFinished:     return "job-finished";
    case EventKind::kMigrateStart:    return "migrate-start";
    case EventKind::kMigrateDone:     return "migrate-done";
    case EventKind::kMigrateRollback: return "migrate-rollback";
    case EventKind::kPowerOn:         return "power-on";
    case EventKind::kHostOnline:      return "host-online";
    case EventKind::kPowerOff:        return "power-off";
    case EventKind::kHostOff:         return "host-off";
    case EventKind::kHostFailed:      return "host-failed";
    case EventKind::kHostRepaired:    return "host-repaired";
    case EventKind::kBootFailed:      return "boot-failed";
    case EventKind::kFaultInjected:   return "fault-injected";
    case EventKind::kOpFailed:        return "op-failed";
    case EventKind::kQuarantine:      return "quarantine";
    case EventKind::kUnquarantine:    return "unquarantine";
    case EventKind::kSlaAlarm:        return "sla-alarm";
    case EventKind::kRetry:           return "retry";
    case EventKind::kInvariantViolation:
      return "invariant-violation";
    case EventKind::kLadderShift:     return "ladder-shift";
    case EventKind::kJobShed:         return "job-shed";
    case EventKind::kJobDeferred:     return "job-deferred";
    case EventKind::kBreakerOpen:     return "breaker-open";
    case EventKind::kBreakerProbe:    return "breaker-probe";
    case EventKind::kBreakerClose:    return "breaker-close";
    case EventKind::kHostDead:        return "host-dead";
    case EventKind::kAlertFire:       return "alert-fire";
    case EventKind::kAlertResolve:    return "alert-resolve";
  }
  return "?";
}

namespace {

/// Category shown in the Chrome trace: where in the stack the event lives.
const char* category(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRunBegin:
    case EventKind::kJobArrival:
    case EventKind::kRound:
    case EventKind::kDecision:
    case EventKind::kSlaAlarm:
    case EventKind::kRetry:
      return "sched";
    case EventKind::kCreateStart:
    case EventKind::kVmReady:
    case EventKind::kJobFinished:
    case EventKind::kMigrateStart:
    case EventKind::kMigrateDone:
    case EventKind::kMigrateRollback:
      return "vm";
    case EventKind::kFaultInjected:
    case EventKind::kOpFailed:
      return "faults";
    case EventKind::kInvariantViolation:
      return "validate";
    case EventKind::kLadderShift:
    case EventKind::kJobShed:
    case EventKind::kJobDeferred:
    case EventKind::kBreakerOpen:
    case EventKind::kBreakerProbe:
    case EventKind::kBreakerClose:
    case EventKind::kHostDead:
      return "resilience";
    case EventKind::kAlertFire:
    case EventKind::kAlertResolve:
      return "telemetry";
    default:
      return "host";
  }
}

/// Shortest round-trip-ish decimal form, deterministic across runs and
/// platforms for the value ranges a trace carries.
void write_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

bool is_wall_arg(const std::string& key) {
  return key.rfind("wall_", 0) == 0;
}

}  // namespace

TraceEvent& Tracer::emit(sim::SimTime t, EventKind kind) {
  TraceEvent e;
  e.t = t;
  e.seq = next_seq_++;
  e.kind = kind;
  events_.push_back(std::move(e));
  return events_.back();
}

TraceEvent& Tracer::span(sim::SimTime start, sim::SimTime end,
                         EventKind kind) {
  TraceEvent& e = emit(start, kind);
  e.dur = std::max(0.0, end - start);
  return e;
}

std::vector<std::size_t> Tracer::sorted_order() const {
  std::vector<std::size_t> order(events_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Stable by sim-time: ties keep emission (seq) order, which is exactly
  // the deterministic (t, seq) total order the header promises.
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events_[a].t < events_[b].t;
                   });
  return order;
}

void Tracer::write_jsonl(std::ostream& os, bool include_wall) const {
  for (std::size_t i : sorted_order()) {
    const TraceEvent& e = events_[i];
    os << "{\"t\":";
    write_double(os, e.t);
    if (e.dur > 0) {
      os << ",\"dur\":";
      write_double(os, e.dur);
    }
    os << ",\"seq\":" << e.seq << ",\"kind\":\"" << to_string(e.kind) << '"';
    if (e.vm >= 0) os << ",\"vm\":" << e.vm;
    if (e.host >= 0) os << ",\"host\":" << e.host;
    if (e.host2 >= 0) os << ",\"host2\":" << e.host2;
    if (!e.label.empty()) {
      os << ",\"label\":\"";
      write_escaped(os, e.label);
      os << '"';
    }
    bool any = false;
    for (const auto& [key, value] : e.args) {
      if (!include_wall && is_wall_arg(key)) continue;
      os << (any ? "," : ",\"args\":{") << '"';
      write_escaped(os, key);
      os << "\":";
      write_double(os, value);
      any = true;
    }
    if (any) os << '}';
    os << "}\n";
  }
}

void Tracer::write_chrome(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"easched\"}},\n";
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"scheduler\"}}";
  for (std::size_t i : sorted_order()) {
    const TraceEvent& e = events_[i];
    os << ",\n{\"name\":\"" << to_string(e.kind) << "\",\"cat\":\""
       << category(e.kind) << "\",\"ph\":\"" << (e.dur > 0 ? 'X' : 'i')
       << "\",\"ts\":";
    write_double(os, e.t * 1e6);  // trace_event timestamps are microseconds
    if (e.dur > 0) {
      os << ",\"dur\":";
      write_double(os, e.dur * 1e6);
    }
    // Host-scoped events render as one Perfetto track per host (tid =
    // host + 1); everything else lands on the scheduler track (tid 0).
    os << ",\"pid\":0,\"tid\":" << (e.host >= 0 ? e.host + 1 : 0);
    if (e.dur <= 0) os << ",\"s\":\"t\"";  // instant scope: thread
    os << ",\"args\":{\"seq\":" << e.seq;
    if (e.vm >= 0) os << ",\"vm\":" << e.vm;
    if (e.host2 >= 0) os << ",\"host2\":" << e.host2;
    if (!e.label.empty()) {
      os << ",\"label\":\"";
      write_escaped(os, e.label);
      os << '"';
    }
    for (const auto& [key, value] : e.args) {
      os << ",\"";
      write_escaped(os, key);
      os << "\":";
      write_double(os, value);
    }
    os << "}}";
  }
  os << "\n]}\n";
}

// ---- Chrome trace_event structural validation ------------------------------
//
// A compact recursive-descent JSON parser sufficient for schema checking:
// it validates full JSON syntax and surfaces the value shapes the
// trace_event format requires. No external dependencies.

namespace {

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;
  std::string error{};

  [[nodiscard]] bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
};

bool parse_value(JsonCursor& in);

bool parse_string(JsonCursor& in, std::string* out) {
  if (!in.eat('"')) return false;
  std::string s;
  while (in.pos < in.text.size()) {
    const char c = in.text[in.pos++];
    if (c == '"') {
      if (out != nullptr) *out = std::move(s);
      return true;
    }
    if (c == '\\') {
      if (in.pos >= in.text.size()) return in.fail("bad escape");
      const char esc = in.text[in.pos++];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          if (in.pos >= in.text.size() ||
              !std::isxdigit(static_cast<unsigned char>(in.text[in.pos]))) {
            return in.fail("bad \\u escape");
          }
          ++in.pos;
        }
        s += '?';
      } else if (std::string("\"\\/bfnrt").find(esc) != std::string::npos) {
        s += esc;
      } else {
        return in.fail("bad escape character");
      }
    } else {
      s += c;
    }
  }
  return in.fail("unterminated string");
}

bool parse_number(JsonCursor& in) {
  const std::size_t start = in.pos;
  if (in.pos < in.text.size() && in.text[in.pos] == '-') ++in.pos;
  auto digits = [&in] {
    std::size_t n = 0;
    while (in.pos < in.text.size() &&
           std::isdigit(static_cast<unsigned char>(in.text[in.pos]))) {
      ++in.pos;
      ++n;
    }
    return n;
  };
  if (digits() == 0) return in.fail("bad number");
  if (in.pos < in.text.size() && in.text[in.pos] == '.') {
    ++in.pos;
    if (digits() == 0) return in.fail("bad fraction");
  }
  if (in.pos < in.text.size() &&
      (in.text[in.pos] == 'e' || in.text[in.pos] == 'E')) {
    ++in.pos;
    if (in.pos < in.text.size() &&
        (in.text[in.pos] == '+' || in.text[in.pos] == '-')) {
      ++in.pos;
    }
    if (digits() == 0) return in.fail("bad exponent");
  }
  return in.pos > start;
}

/// One parsed object member: the value's leading character as a cheap type
/// tag ('"' string, '{' object, '[' array, digit/'-' number, 't'/'f'/'n'
/// literal) plus the decoded text for string values.
struct Member {
  std::string key;
  char tag = '\0';
  std::string str;  ///< decoded value when tag == '"'
};

bool parse_object(JsonCursor& in, std::vector<Member>* members) {
  if (!in.eat('{')) return false;
  if (in.peek('}')) return in.eat('}');
  while (true) {
    Member m;
    if (!parse_string(in, &m.key)) return false;
    if (!in.eat(':')) return false;
    in.skip_ws();
    m.tag = in.pos < in.text.size() ? in.text[in.pos] : '\0';
    if (m.tag == '"') {
      if (!parse_string(in, &m.str)) return false;
    } else if (!parse_value(in)) {
      return false;
    }
    if (members != nullptr) members->push_back(std::move(m));
    if (in.peek(',')) {
      if (!in.eat(',')) return false;
      continue;
    }
    return in.eat('}');
  }
}

bool parse_array(JsonCursor& in) {
  if (!in.eat('[')) return false;
  if (in.peek(']')) return in.eat(']');
  while (true) {
    if (!parse_value(in)) return false;
    if (in.peek(',')) {
      if (!in.eat(',')) return false;
      continue;
    }
    return in.eat(']');
  }
}

bool parse_literal(JsonCursor& in, const char* word) {
  for (const char* p = word; *p != '\0'; ++p) {
    if (in.pos >= in.text.size() || in.text[in.pos] != *p) {
      return in.fail("bad literal");
    }
    ++in.pos;
  }
  return true;
}

bool parse_value(JsonCursor& in) {
  in.skip_ws();
  if (in.pos >= in.text.size()) return in.fail("unexpected end of input");
  switch (in.text[in.pos]) {
    case '"': return parse_string(in, nullptr);
    case '{': return parse_object(in, nullptr);
    case '[': return parse_array(in);
    case 't': return parse_literal(in, "true");
    case 'f': return parse_literal(in, "false");
    case 'n': return parse_literal(in, "null");
    default:  return parse_number(in);
  }
}

bool is_number_tag(char tag) {
  return tag == '-' || std::isdigit(static_cast<unsigned char>(tag)) != 0;
}

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error) {
  const auto report = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };

  JsonCursor in{json};
  // Top level: an object whose traceEvents member is an array of event
  // objects. Walk it with the same parser, intercepting the array.
  if (!in.eat('{')) return report(in.error);
  bool saw_trace_events = false;
  if (!in.peek('}')) {
    while (true) {
      std::string key;
      if (!parse_string(in, &key)) return report(in.error);
      if (!in.eat(':')) return report(in.error);
      if (key == "traceEvents") {
        saw_trace_events = true;
        if (!in.eat('[')) return report(in.error);
        std::size_t index = 0;
        if (!in.peek(']')) {
          while (true) {
            std::vector<Member> members;
            in.skip_ws();
            if (!parse_object(in, &members)) return report(in.error);
            const auto find = [&members](const char* k) -> const Member* {
              for (const auto& m : members) {
                if (m.key == k) return &m;
              }
              return nullptr;
            };
            const auto require = [&](const char* k, bool number) {
              const Member* m = find(k);
              if (m == nullptr) {
                return report("event " + std::to_string(index) +
                              ": missing \"" + k + "\"");
              }
              if (number ? !is_number_tag(m->tag) : m->tag != '"') {
                return report("event " + std::to_string(index) + ": \"" + k +
                              "\" has the wrong type");
              }
              return true;
            };
            if (!require("name", false)) return false;
            if (!require("ph", false)) return false;
            if (!require("pid", true)) return false;
            if (!require("tid", true)) return false;
            const Member* ph = find("ph");
            // The phase letters chrome://tracing / Perfetto understand (the
            // subset any producer may emit; ours uses X, i and M).
            static const std::string kPhases = "BEXiIMCbensfPSTpFOND";
            if (ph->str.size() != 1 ||
                kPhases.find(ph->str[0]) == std::string::npos) {
              return report("event " + std::to_string(index) +
                            ": unknown phase \"" + ph->str + "\"");
            }
            if (ph->str[0] != 'M') {
              // Every timed phase needs a timestamp; complete events also
              // carry their duration. Metadata ("M") events need neither.
              if (!require("ts", true)) return false;
              if (ph->str[0] == 'X' && !require("dur", true)) return false;
            }
            ++index;
            if (in.peek(',')) {
              if (!in.eat(',')) return report(in.error);
              continue;
            }
            if (!in.eat(']')) return report(in.error);
            break;
          }
        } else {
          if (!in.eat(']')) return report(in.error);
        }
      } else {
        if (!parse_value(in)) return report(in.error);
      }
      if (in.peek(',')) {
        if (!in.eat(',')) return report(in.error);
        continue;
      }
      if (!in.eat('}')) return report(in.error);
      break;
    }
  } else {
    if (!in.eat('}')) return report(in.error);
  }
  in.skip_ws();
  if (in.pos != json.size()) return report("trailing data after document");
  if (!saw_trace_events) return report("missing \"traceEvents\" array");
  return true;
}

}  // namespace easched::obs
