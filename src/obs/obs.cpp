#include "obs/obs.hpp"

#include "resilience/resilience.hpp"

namespace easched::obs {

void publish_run_metrics(const metrics::Recorder& rec,
                         MetricsRegistry& registry) {
  const metrics::Counters& c = rec.counts;
  registry.counter("ops.creations").set(c.creations);
  registry.counter("ops.migrations").set(c.migrations);
  registry.counter("power.turn_ons").set(c.turn_ons);
  registry.counter("power.turn_offs").set(c.turn_offs);
  registry.counter("hosts.failures").set(c.failures);
  registry.counter("sla.alarms").set(c.sla_alarms);
  registry.counter("ckpt.taken").set(c.checkpoints);
  registry.counter("ckpt.recoveries").set(c.checkpoint_recoveries);
  registry.counter("vm.recreates").set(c.recreates);
  registry.counter("robust.op_failures").set(c.op_failures);
  registry.counter("robust.op_timeouts").set(c.op_timeouts);
  registry.counter("robust.retries").set(c.retries);
  registry.counter("robust.rollbacks").set(c.rollbacks);
  registry.counter("robust.quarantines").set(c.quarantines);
  registry.counter("robust.boot_failures").set(c.boot_failures);
  registry.counter("sim.events_dispatched").set(rec.events_dispatched);
  registry.counter("sim.events_cancelled").set(rec.events_cancelled);
  registry.gauge("run.max_oversubscription").set(rec.max_oversubscription);
  registry.counter("resilience.solver_breaches").set(c.solver_breaches);
  registry.counter("resilience.ladder_downshifts").set(c.ladder_downshifts);
  registry.counter("resilience.ladder_upshifts").set(c.ladder_upshifts);
  registry.counter("resilience.jobs_shed").set(c.jobs_shed);
  registry.counter("resilience.jobs_deferred").set(c.jobs_deferred);
  registry.counter("resilience.breaker_opens").set(c.breaker_opens);
  registry.counter("resilience.breaker_closes").set(c.breaker_closes);
  registry.counter("resilience.breaker_probes").set(c.breaker_probes);
  registry.counter("resilience.breaker_deaths").set(c.breaker_deaths);
  if (const auto* rc = resilience::controller(rec)) {
    registry.gauge("resilience.ladder_level")
        .set(static_cast<double>(static_cast<int>(rc->ladder())));
    registry.gauge("resilience.max_ladder_level")
        .set(static_cast<double>(static_cast<int>(rc->max_level_reached())));
    registry.gauge("resilience.breaker_open")
        .set(static_cast<double>(rc->breakers_not_healthy()));
  }

  // Recovery times span VM re-creation (~minutes) through repair-gated
  // waits (~hours); bucket edges follow that spread.
  Histogram& recovery = registry.histogram(
      "robust.recovery_s", {1, 5, 15, 60, 300, 1800, 7200});
  for (double s : rec.recovery_s) recovery.observe(s);
}

}  // namespace easched::obs
