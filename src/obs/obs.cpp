#include "obs/obs.hpp"

namespace easched::obs {

void publish_run_metrics(const metrics::Recorder& rec,
                         MetricsRegistry& registry) {
  const metrics::Counters& c = rec.counts;
  registry.counter("ops.creations").set(c.creations);
  registry.counter("ops.migrations").set(c.migrations);
  registry.counter("power.turn_ons").set(c.turn_ons);
  registry.counter("power.turn_offs").set(c.turn_offs);
  registry.counter("hosts.failures").set(c.failures);
  registry.counter("sla.alarms").set(c.sla_alarms);
  registry.counter("ckpt.taken").set(c.checkpoints);
  registry.counter("ckpt.recoveries").set(c.checkpoint_recoveries);
  registry.counter("vm.recreates").set(c.recreates);
  registry.counter("robust.op_failures").set(c.op_failures);
  registry.counter("robust.op_timeouts").set(c.op_timeouts);
  registry.counter("robust.retries").set(c.retries);
  registry.counter("robust.rollbacks").set(c.rollbacks);
  registry.counter("robust.quarantines").set(c.quarantines);
  registry.counter("robust.boot_failures").set(c.boot_failures);
  registry.counter("sim.events_dispatched").set(rec.events_dispatched);
  registry.counter("sim.events_cancelled").set(rec.events_cancelled);
  registry.gauge("run.max_oversubscription").set(rec.max_oversubscription);

  // Recovery times span VM re-creation (~minutes) through repair-gated
  // waits (~hours); bucket edges follow that spread.
  Histogram& recovery = registry.histogram(
      "robust.recovery_s", {1, 5, 15, 60, 300, 1800, 7200});
  for (double s : rec.recovery_s) recovery.observe(s);
}

}  // namespace easched::obs
