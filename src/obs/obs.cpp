#include "obs/obs.hpp"

#include "resilience/resilience.hpp"

namespace easched::obs {

void publish_run_metrics(const metrics::Recorder& rec,
                         MetricsRegistry& registry) {
  const metrics::Counters& c = rec.counts;
  registry.counter("ops.creations").set(c.creations);
  registry.counter("ops.migrations").set(c.migrations);
  registry.counter("power.turn_ons").set(c.turn_ons);
  registry.counter("power.turn_offs").set(c.turn_offs);
  registry.counter("hosts.failures").set(c.failures);
  registry.counter("sla.alarms").set(c.sla_alarms);
  registry.counter("ckpt.taken").set(c.checkpoints);
  registry.counter("ckpt.recoveries").set(c.checkpoint_recoveries);
  registry.counter("vm.recreates").set(c.recreates);
  registry.counter("robust.op_failures").set(c.op_failures);
  registry.counter("robust.op_timeouts").set(c.op_timeouts);
  registry.counter("robust.retries").set(c.retries);
  registry.counter("robust.rollbacks").set(c.rollbacks);
  registry.counter("robust.quarantines").set(c.quarantines);
  registry.counter("robust.boot_failures").set(c.boot_failures);
  registry.counter("sim.events_dispatched").set(rec.events_dispatched);
  registry.counter("sim.events_cancelled").set(rec.events_cancelled);
  registry.gauge("run.max_oversubscription").set(rec.max_oversubscription);
  registry.counter("resilience.solver_breaches").set(c.solver_breaches);
  registry.counter("resilience.ladder_downshifts").set(c.ladder_downshifts);
  registry.counter("resilience.ladder_upshifts").set(c.ladder_upshifts);
  registry.counter("resilience.jobs_shed").set(c.jobs_shed);
  registry.counter("resilience.jobs_deferred").set(c.jobs_deferred);
  registry.counter("resilience.breaker_opens").set(c.breaker_opens);
  registry.counter("resilience.breaker_closes").set(c.breaker_closes);
  registry.counter("resilience.breaker_probes").set(c.breaker_probes);
  registry.counter("resilience.breaker_deaths").set(c.breaker_deaths);
  if (const auto* rc = resilience::controller(rec)) {
    registry.gauge("resilience.ladder_level")
        .set(static_cast<double>(static_cast<int>(rc->ladder())));
    registry.gauge("resilience.max_ladder_level")
        .set(static_cast<double>(static_cast<int>(rc->max_level_reached())));
    registry.gauge("resilience.breaker_open")
        .set(static_cast<double>(rc->breakers_not_healthy()));
  }

  // Recovery times span VM re-creation (~minutes) through repair-gated
  // waits (~hours); bucket edges follow that spread.
  Histogram& recovery = registry.histogram(
      "robust.recovery_s", {1, 5, 15, 60, 300, 1800, 7200});
  for (double s : rec.recovery_s) recovery.observe(s);

#if EASCHED_TRACE_ENABLED
  if (rec.obs != nullptr && rec.obs->ledger.enabled()) {
    const EnergyLedger& ledger = rec.obs->ledger;
    registry.gauge("energy.total_j").set(ledger.total_j());
    registry.gauge("energy.state.off_j").set(ledger.off_j());
    registry.gauge("energy.state.boot_j").set(ledger.boot_j());
    registry.gauge("energy.state.idle_j").set(ledger.idle_j());
    registry.gauge("energy.state.load_j").set(ledger.load_j());
    registry.gauge("energy.mgmt_j").set(ledger.mgmt_j());
    const auto& hosts = ledger.hosts();
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      const std::string label = "host=" + std::to_string(h);
      registry.gauge("energy.host.total_j", label).set(hosts[h].total_j());
      registry.gauge("energy.host.load_j", label).set(hosts[h].load_j);
    }
    for (const auto& [cls, joules] : ledger.vm_class_j()) {
      registry.gauge("energy.vm_class.j", "class=" + cls).set(joules);
    }
    const auto& rungs = ledger.rung_j();
    for (std::size_t r = 0; r < rungs.size(); ++r) {
      const char* name =
          r < static_cast<std::size_t>(resilience::kNumLadderLevels)
              ? resilience::to_string(
                    static_cast<resilience::LadderLevel>(r))
              : "beyond";
      registry.gauge("energy.rung.j", std::string("rung=") + name)
          .set(rungs[r]);
    }
  }
  if (rec.obs != nullptr && rec.obs->decisions.enabled()) {
    const DecisionLog::Summary s = rec.obs->decisions.summarize();
    registry.counter("decisions.count", "kind=place").set(s.places);
    registry.counter("decisions.count", "kind=migrate").set(s.migrations);
    registry.counter("decisions.count", "kind=first-fit").set(s.first_fit);
    registry.counter("decisions.with_runner_up").set(s.with_runner_up);
    registry.gauge("decisions.delta_total").set(s.delta_total);
    registry.gauge("decisions.mean_delta").set(s.mean_delta());
    for (std::size_t i = 0; i < kDecisionTermCount; ++i) {
      const std::string label =
          std::string("term=") + decision_term_name(i);
      registry.gauge("decisions.term_total", label).set(s.term_totals[i]);
      registry.counter("decisions.dominant", label)
          .set(s.dominant_counts[i]);
    }
  }
#endif  // EASCHED_TRACE_ENABLED
}

}  // namespace easched::obs
