// The observability bundle and its compile-gated access path.
//
// An `Observability` owns the three instruments a run can carry — event
// tracer, metrics registry, phase profiler — and travels with the run's
// `metrics::Recorder` as a nullable pointer (`Recorder::obs`), so every
// layer that already receives the recorder (Datacenter, SchedulerDriver,
// ScoreBasedPolicy via the datacenter) can reach it without new plumbing.
//
// Instrumentation call sites never touch the bundle directly; they go
// through the accessors below:
//
//   if (auto* tr = obs::tracer(recorder)) {
//     tr->emit(now, EventKind::kPowerOn).host = h;
//   }
//
// With EASCHED_TRACE=OFF the accessors are constexpr nullptr, the branch
// folds away, and the whole call site is dead code — the compile-time half
// of the zero-cost guarantee. With tracing compiled in but not enabled,
// each accessor is a pointer load plus a flag test — the runtime null
// sink.
#pragma once

#include "metrics/accumulators.hpp"
#include "obs/attribution/decision_log.hpp"
#include "obs/attribution/energy_ledger.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "obs/trace.hpp"

#ifndef EASCHED_TRACE_ENABLED
#define EASCHED_TRACE_ENABLED 1
#endif

namespace easched::obs {

/// Everything one run's observability needs, bundled so a single pointer
/// threads through the stack. Components start disabled (null sinks);
/// enable the ones a run asked for (see obs_cli.hpp for the CLI path).
struct Observability {
  Tracer tracer;
  MetricsRegistry registry;
  PhaseProfiler profiler;
  EnergyLedger ledger;
  DecisionLog decisions;
  TelemetryPlane telemetry;
};

#if EASCHED_TRACE_ENABLED

/// The run's tracer, or nullptr when absent or not enabled.
[[nodiscard]] inline Tracer* tracer(const metrics::Recorder& rec) noexcept {
  Observability* o = rec.obs;
  return (o != nullptr && o->tracer.enabled()) ? &o->tracer : nullptr;
}

/// The run's phase profiler, or nullptr when absent or not enabled.
[[nodiscard]] inline PhaseProfiler* profiler(
    const metrics::Recorder& rec) noexcept {
  Observability* o = rec.obs;
  return (o != nullptr && o->profiler.enabled()) ? &o->profiler : nullptr;
}

/// The run's energy ledger, or nullptr when absent or not enabled.
[[nodiscard]] inline EnergyLedger* ledger(
    const metrics::Recorder& rec) noexcept {
  Observability* o = rec.obs;
  return (o != nullptr && o->ledger.enabled()) ? &o->ledger : nullptr;
}

/// The run's decision log, or nullptr when absent or not enabled.
[[nodiscard]] inline DecisionLog* decisions(
    const metrics::Recorder& rec) noexcept {
  Observability* o = rec.obs;
  return (o != nullptr && o->decisions.enabled()) ? &o->decisions : nullptr;
}

#endif  // EASCHED_TRACE_ENABLED

#if EASCHED_TELEMETRY_ENABLED

/// The run's telemetry plane, or nullptr when absent or not enabled. Gated
/// by its own EASCHED_TELEMETRY option (mirroring EASCHED_TRACE) so the
/// sampling periodic and every capture call site compile out with it.
[[nodiscard]] inline TelemetryPlane* telemetry(
    const metrics::Recorder& rec) noexcept {
  Observability* o = rec.obs;
  return (o != nullptr && o->telemetry.enabled()) ? &o->telemetry : nullptr;
}

#else  // telemetry compiled out: accessor folds to constant nullptr

[[nodiscard]] constexpr TelemetryPlane* telemetry(
    const metrics::Recorder&) noexcept {
  return nullptr;
}

#endif  // EASCHED_TELEMETRY_ENABLED

#if !EASCHED_TRACE_ENABLED  // accessors fold to constant nullptr

[[nodiscard]] constexpr Tracer* tracer(const metrics::Recorder&) noexcept {
  return nullptr;
}
[[nodiscard]] constexpr PhaseProfiler* profiler(
    const metrics::Recorder&) noexcept {
  return nullptr;
}
[[nodiscard]] constexpr EnergyLedger* ledger(
    const metrics::Recorder&) noexcept {
  return nullptr;
}
[[nodiscard]] constexpr DecisionLog* decisions(
    const metrics::Recorder&) noexcept {
  return nullptr;
}

#endif  // EASCHED_TRACE_ENABLED

/// Publishes the recorder's run counters — the table counters and the PR 2
/// robustness counters — into `registry` as named instruments, plus the
/// recovery-time histogram and the oversubscription gauge. This is the one
/// place those counters are mapped to metric names; the RunReport
/// robustness line, `--metrics-out=` snapshots and the obs tests all read
/// the resulting snapshot.
void publish_run_metrics(const metrics::Recorder& rec,
                         MetricsRegistry& registry);

}  // namespace easched::obs
