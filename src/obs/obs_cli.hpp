// CLI wiring shared by the example binaries: parses the observability
// flags (`--trace=<path>`, `--trace-format=jsonl|chrome`,
// `--metrics-out=<path>`, `--summary-out=<path>`, `--attribution`,
// `--profile`) and the live-telemetry flags (`--telemetry-out=<path>`,
// `--prom-out=<path>`, `--alerts=<spec>`, `--live`,
// `--telemetry-period=<s>`, `--telemetry-ring=<n>`), enables the matching
// components on an Observability bundle, and writes the requested files
// when the run ends. Keeping this in one place means every example
// exposes the same flags with the same semantics.
#pragma once

#include <string>

#include "obs/obs.hpp"

namespace easched::metrics {
struct RunReport;
}
namespace easched::support {
class CliArgs;
}

namespace easched::obs {

struct ObsOptions {
  std::string trace_path;    ///< empty = no trace requested
  std::string trace_format = "jsonl";  ///< "jsonl" or "chrome"
  std::string metrics_path;  ///< empty = no metrics snapshot requested
  std::string summary_path;  ///< empty = no run_summary.json requested
  bool attribution = false;  ///< energy ledger + decision log on
  bool profile = false;      ///< print the phase-profiling rollup table

  // Live telemetry (see obs/telemetry/): any of these switches the
  // sampling periodic on.
  std::string telemetry_path;  ///< --telemetry-out= JSONL time series
  std::string prom_path;       ///< --prom-out= Prometheus exposition file
  std::string alerts_spec;     ///< --alerts= rule spec (inline or file)
  bool live = false;           ///< --live terminal dashboard
  double telemetry_period_s = 60;   ///< --telemetry-period= sim seconds
  std::size_t telemetry_ring = 4096;  ///< --telemetry-ring= snapshots
};

/// Reads the observability flags from parsed CLI args. Exits with an error
/// on a bare `--trace` (a path is required) or an unknown trace format.
ObsOptions options_from_cli(const support::CliArgs& args);

/// True when any output was requested, i.e. the run needs a bundle.
[[nodiscard]] bool wants_observability(const ObsOptions& opts);

/// Enables the bundle components the options ask for.
void configure(Observability& o, const ObsOptions& opts);

/// Writes the requested outputs: the trace file in the chosen format, the
/// metrics snapshot (CSV for paths ending in .csv, JSON otherwise; the
/// experiment runner already published the run counters into the
/// registry), the run summary (needs `report`; skipped with a warning when
/// --summary-out was given without one), and the profiling table to
/// stdout. Prints a one-line note per file written.
void finish(Observability& o, const ObsOptions& opts,
            const metrics::RunReport* report = nullptr);

}  // namespace easched::obs
