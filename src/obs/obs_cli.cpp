#include "obs/obs_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "obs/attribution/run_summary.hpp"
#include "obs/telemetry/dashboard.hpp"
#include "support/cli.hpp"

namespace easched::obs {

ObsOptions options_from_cli(const support::CliArgs& args) {
  ObsOptions opts;
  opts.trace_path = args.get("trace", "");
  opts.trace_format = args.get("trace-format", "jsonl");
  opts.metrics_path = args.get("metrics-out", "");
  opts.summary_path = args.get("summary-out", "");
  opts.attribution = args.get_bool("attribution", false);
  opts.profile = args.get_bool("profile", false);
  opts.telemetry_path = args.get("telemetry-out", "");
  opts.prom_path = args.get("prom-out", "");
  opts.alerts_spec = args.get("alerts", "");
  opts.live = args.get_bool("live", false);
  opts.telemetry_period_s = args.get_double("telemetry-period", 60);
  opts.telemetry_ring =
      static_cast<std::size_t>(args.get_int("telemetry-ring", 4096));
  for (const char* flag : {"telemetry-out", "prom-out", "alerts"}) {
    if (args.get(flag, "") == "true") {  // bare flag with no value
      std::fprintf(stderr, "easched: --%s requires a value\n", flag);
      std::exit(2);
    }
  }
  if (opts.telemetry_period_s <= 0) {
    std::fprintf(stderr, "easched: --telemetry-period must be > 0\n");
    std::exit(2);
  }
  if (opts.summary_path == "true") {  // bare `--summary-out` with no path
    std::fprintf(
        stderr,
        "easched: --summary-out requires a path (--summary-out=run.json)\n");
    std::exit(2);
  }
  if (opts.trace_path == "true") {  // bare `--trace` with no path
    std::fprintf(stderr, "easched: --trace requires a path (--trace=out.jsonl)\n");
    std::exit(2);
  }
  if (!opts.trace_path.empty() && opts.trace_format != "jsonl" &&
      opts.trace_format != "chrome") {
    std::fprintf(stderr, "easched: unknown --trace-format '%s' (jsonl|chrome)\n",
                 opts.trace_format.c_str());
    std::exit(2);
  }
  return opts;
}

namespace {

bool wants_telemetry(const ObsOptions& opts) {
  return !opts.telemetry_path.empty() || !opts.prom_path.empty() ||
         !opts.alerts_spec.empty() || opts.live;
}

}  // namespace

bool wants_observability(const ObsOptions& opts) {
  return !opts.trace_path.empty() || !opts.metrics_path.empty() ||
         !opts.summary_path.empty() || opts.attribution || opts.profile ||
         wants_telemetry(opts);
}

void configure(Observability& o, const ObsOptions& opts) {
  if (!opts.trace_path.empty()) o.tracer.enable();
  if (opts.profile) o.profiler.enable();
  // A summary is only useful with attribution data in it, so asking for
  // the artifact implies the instruments (both null sinks otherwise).
  if (opts.attribution || !opts.summary_path.empty()) {
    o.ledger.enable();
    o.decisions.enable();
  }
  if (wants_telemetry(opts)) {
#if !EASCHED_TELEMETRY_ENABLED
    std::fprintf(stderr,
                 "easched: warning: telemetry flags given but the build has "
                 "EASCHED_TELEMETRY=OFF; no samples will be taken\n");
#endif
    TelemetryConfig tc;
    tc.period_s = opts.telemetry_period_s;
    tc.ring_capacity = opts.telemetry_ring;
    o.telemetry.enable(tc);
    if (!opts.telemetry_path.empty()) {
      auto sink = std::make_unique<JsonlSink>(opts.telemetry_path);
      if (!sink->ok()) {
        std::fprintf(stderr, "easched: cannot write '%s'\n",
                     opts.telemetry_path.c_str());
        std::exit(1);
      }
      o.telemetry.add_sink(std::move(sink));
    }
    if (!opts.prom_path.empty()) {
      o.telemetry.add_sink(std::make_unique<PromSink>(opts.prom_path));
    }
    if (opts.live) {
      o.telemetry.add_sink(std::make_unique<DashboardSink>(std::cout));
    }
    if (!opts.alerts_spec.empty()) {
      try {
        o.telemetry.set_alert_rules(parse_alert_rules(opts.alerts_spec));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "easched: %s\n", e.what());
        std::exit(2);
      }
    }
  }
}

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::ofstream open_or_die(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "easched: cannot write '%s'\n", path.c_str());
    std::exit(1);
  }
  return os;
}

}  // namespace

void finish(Observability& o, const ObsOptions& opts,
            const metrics::RunReport* report) {
  if (!opts.trace_path.empty()) {
    std::ofstream os = open_or_die(opts.trace_path);
    if (opts.trace_format == "chrome") {
      o.tracer.write_chrome(os);
    } else {
      o.tracer.write_jsonl(os);
    }
    std::printf("trace: %zu events -> %s (%s)\n", o.tracer.size(),
                opts.trace_path.c_str(), opts.trace_format.c_str());
  }
  if (!opts.metrics_path.empty()) {
    const MetricsSnapshot snap = o.registry.snapshot();
    std::ofstream os = open_or_die(opts.metrics_path);
    os << (ends_with(opts.metrics_path, ".csv") ? snap.to_csv()
                                                : snap.to_json());
    std::printf("metrics: %zu instruments -> %s\n", snap.rows.size(),
                opts.metrics_path.c_str());
  }
  if (!opts.summary_path.empty()) {
    if (report == nullptr) {
      std::fprintf(stderr,
                   "easched: --summary-out needs a run report; no summary "
                   "written\n");
    } else if (write_run_summary_file(opts.summary_path, *report, &o)) {
      std::printf("summary: %s -> %s\n", kRunSummarySchema,
                  opts.summary_path.c_str());
    } else {
      std::exit(1);
    }
  }
  if (!opts.telemetry_path.empty()) {
    std::printf("telemetry: %llu samples -> %s\n",
                static_cast<unsigned long long>(o.telemetry.samples_taken()),
                opts.telemetry_path.c_str());
  }
  if (!opts.prom_path.empty()) {
    std::printf("telemetry: latest exposition -> %s\n",
                opts.prom_path.c_str());
  }
  if (o.telemetry.alerts().enabled()) {
    const std::string log = o.telemetry.alerts().log_to_string();
    std::printf("alerts: %s\n", log.empty() ? "none fired" : log.c_str());
  }
  if (opts.profile) {
    const std::string table = o.profiler.to_string();
    if (!table.empty()) {
      std::printf("\n-- phase profile (wall-clock) --\n%s", table.c_str());
    }
  }
}

}  // namespace easched::obs
