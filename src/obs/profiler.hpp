// Wall-clock phase profiling for the scheduler round.
//
// A PhaseProfiler collects per-phase duration samples via RAII Scope
// guards placed around the round's stages (dirty-row invalidation,
// score-matrix rebuild, hill-climb, actuation, power management). Samples
// are wall-clock and therefore non-deterministic by nature: they never
// feed back into simulation state, only into the profiling rollup and the
// `wall_`-prefixed trace args that determinism checks mask out.
//
// Disabled (the default), a Scope is a null guard — one branch on
// construction, nothing on destruction — so instrumented code paths cost
// nothing measurable when profiling is off.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace easched::obs {

/// Scheduler round stages, in execution order.
enum class Phase : std::uint8_t {
  kInvalidate,  ///< dirty-row invalidation in the score-matrix cache
  kRebuild,     ///< score-matrix (re)build / cache priming
  kClimb,       ///< hill-climb / annealing iterations
  kActuate,     ///< applying the plan to the datacenter
  kPower,       ///< lambda-threshold power management update
  kRound,       ///< the whole scheduling round, end to end
};
inline constexpr std::size_t kPhaseCount = 6;

[[nodiscard]] const char* to_string(Phase phase) noexcept;

/// One phase's latency rollup, in milliseconds.
struct PhaseRollup {
  Phase phase = Phase::kRound;
  std::size_t n = 0;
  double total_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

class PhaseProfiler {
 public:
  void enable() noexcept { enabled_ = true; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(Phase phase, double ms) {
    samples_[static_cast<std::size_t>(phase)].push_back(ms);
  }
  [[nodiscard]] const std::vector<double>& samples(Phase phase) const {
    return samples_[static_cast<std::size_t>(phase)];
  }

  /// Rollups for phases with at least one sample, in Phase order.
  [[nodiscard]] std::vector<PhaseRollup> rollups() const;
  /// Human-readable rollup table (empty string when nothing was sampled).
  [[nodiscard]] std::string to_string() const;
  void clear();

  /// RAII timing guard: records elapsed wall-clock milliseconds into
  /// `profiler` on destruction. A null profiler makes it a no-op.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, Phase phase) noexcept
        : profiler_(profiler), phase_(phase) {
      if (profiler_ != nullptr) {
        start_ = std::chrono::steady_clock::now();
      }
    }
    ~Scope() {
      if (profiler_ != nullptr) {
        profiler_->record(phase_, elapsed_ms());
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Milliseconds since construction (0 when the guard is a no-op).
    [[nodiscard]] double elapsed_ms() const noexcept {
      if (profiler_ == nullptr) return 0.0;
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start_)
          .count();
    }

   private:
    PhaseProfiler* profiler_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_{};
  };

 private:
  bool enabled_ = false;
  std::array<std::vector<double>, kPhaseCount> samples_{};
};

}  // namespace easched::obs
