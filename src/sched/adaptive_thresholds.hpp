// Dynamic turn-on/off thresholds (section V-A: "A next step would be to
// dynamically adjust these thresholds, which is part of our future work").
//
// A simple feedback controller over the (lambda_min, lambda_max) pair:
// every adjustment window it looks at the jobs finished in the window and
//   * backs off (lowers both thresholds -> more headroom) when the window's
//     mean satisfaction falls below `target_satisfaction`;
//   * tightens (raises lambda_min -> shed idle nodes sooner) when the
//     window was fully satisfied — probing for energy savings the static
//     setting leaves on the table.
// The thresholds move in `step` increments and stay inside [floor, ceil]
// bands, and lambda_min always keeps `gap` below lambda_max.
#pragma once

#include "metrics/accumulators.hpp"
#include "sched/power_controller.hpp"
#include "sim/simulator.hpp"

namespace easched::sched {

struct AdaptiveThresholdConfig {
  bool enabled = false;
  double target_satisfaction = 98.0;  ///< back off below this S (%)
  double step = 0.05;
  double lambda_min_floor = 0.10, lambda_min_ceil = 0.60;
  double lambda_max_floor = 0.50, lambda_max_ceil = 0.98;
  double gap = 0.20;                  ///< enforced lambda_max - lambda_min
  sim::SimTime window_s = 6 * sim::kHour;
};

/// Pure decision logic, separated from the driver for testability.
class AdaptiveThresholds {
 public:
  AdaptiveThresholds(AdaptiveThresholdConfig config,
                     PowerControllerConfig initial)
      : config_(config), current_(initial) {}

  /// Feeds one adjustment window: `window_satisfaction` is the mean S of
  /// the jobs finished in the window (ignored when `finished_in_window` is
  /// zero — an idle window carries no signal). Returns the new thresholds.
  PowerControllerConfig adjust(double window_satisfaction,
                               std::size_t finished_in_window);

  [[nodiscard]] const PowerControllerConfig& current() const noexcept {
    return current_;
  }
  [[nodiscard]] const AdaptiveThresholdConfig& config() const noexcept {
    return config_;
  }

 private:
  void clamp();

  AdaptiveThresholdConfig config_;
  PowerControllerConfig current_;
};

}  // namespace easched::sched
