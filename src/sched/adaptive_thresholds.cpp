#include "sched/adaptive_thresholds.hpp"

#include <algorithm>

namespace easched::sched {

void AdaptiveThresholds::clamp() {
  current_.lambda_min = std::clamp(current_.lambda_min,
                                   config_.lambda_min_floor,
                                   config_.lambda_min_ceil);
  current_.lambda_max = std::clamp(current_.lambda_max,
                                   config_.lambda_max_floor,
                                   config_.lambda_max_ceil);
  if (current_.lambda_max - current_.lambda_min < config_.gap) {
    current_.lambda_min =
        std::max(config_.lambda_min_floor, current_.lambda_max - config_.gap);
  }
}

PowerControllerConfig AdaptiveThresholds::adjust(
    double window_satisfaction, std::size_t finished_in_window) {
  if (finished_in_window == 0) return current_;
  if (window_satisfaction < config_.target_satisfaction) {
    // SLA pressure: give the fleet headroom on both sides.
    current_.lambda_min -= config_.step;
    current_.lambda_max -= config_.step;
  } else {
    // Fully satisfied: probe for savings by shedding idle nodes sooner.
    current_.lambda_min += config_.step;
    if (window_satisfaction >= 100.0 - 1e-9) {
      current_.lambda_max += config_.step / 2;
    }
  }
  clamp();
  return current_;
}

}  // namespace easched::sched
