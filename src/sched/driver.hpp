// The scheduler driver: glue between workload, policy, power controller and
// the simulated datacenter.
//
// This is the paper's "Scheduler" component, which is a *real* piece in
// their simulator too ("The Scheduler is a 'real' part in our simulator, it
// is not simulated", section IV). It owns the virtual-host queue of
// unallocated VMs, fires a scheduling round on every system change, applies
// the policy's decisions through the Datacenter actuators, runs the SLA
// monitor that raises violation alarms (and optionally boosts demands —
// the dynamic SLA enforcement extension), and invokes the power controller.
#pragma once

#include <vector>

#include "datacenter/datacenter.hpp"
#include "metrics/accumulators.hpp"
#include "sched/adaptive_thresholds.hpp"
#include "sched/policy.hpp"
#include "sched/power_controller.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace easched::sched {

/// Ordering discipline of the virtual-host queue. The paper's queue is
/// FIFO; EDF and SJF are extensions that change who wins when capacity is
/// scarce during a burst.
enum class QueueOrder : std::uint8_t {
  kFifo,  ///< arrival order (failed VMs re-enter at the front)
  kEdf,   ///< earliest absolute deadline first
  kSjf,   ///< shortest dedicated runtime first
};

const char* to_string(QueueOrder order) noexcept;

/// Capped exponential backoff with jitter for re-attempting failed
/// operations: attempt n waits min(cap, base * 2^(n-1)) * (1 + jitter*U).
struct RetryPolicy {
  double base_s = 5;
  double cap_s = 300;
  double jitter = 0.5;
};

struct DriverConfig {
  PowerControllerConfig power;

  RetryPolicy retry;

  QueueOrder queue_order = QueueOrder::kFifo;

  /// Period of the power-controller tick (also re-runs stuck rounds).
  sim::SimTime controller_period_s = 60;

  /// SLA monitor: period of the projection scan; 0 disables it entirely.
  sim::SimTime sla_check_period_s = 120;
  /// Raise scheduling rounds when a VM is projected to miss its deadline.
  bool sla_alarms = false;
  /// Dynamic SLA enforcement (section III-A.5 extension): multiply an
  /// at-risk VM's CPU demand by `boost_factor` (once per violation episode).
  bool dynamic_sla_boost = false;
  double boost_factor = 1.5;

  /// Dynamic-threshold extension (section V-A future work): adapt the
  /// power controller's lambdas to the observed satisfaction.
  AdaptiveThresholdConfig adaptive;

  std::uint64_t seed = 7;
};

class SchedulerDriver {
 public:
  SchedulerDriver(sim::Simulator& simulator, datacenter::Datacenter& dc,
                  Policy& policy, DriverConfig config);

  SchedulerDriver(const SchedulerDriver&) = delete;
  SchedulerDriver& operator=(const SchedulerDriver&) = delete;

  /// Schedules the arrival event of every job. Call once before running.
  void submit_workload(const workload::Workload& jobs);

  /// Injects a single job arriving *now* (used by the multi-datacenter
  /// dispatcher, which routes each arrival to a site at submit time).
  /// Returns the VM id.
  datacenter::VmId submit_job_now(const workload::Job& job);

  /// FIFO of queued (unallocated) VMs — the paper's virtual host HV.
  [[nodiscard]] const std::vector<datacenter::VmId>& queue() const {
    return queue_;
  }

  /// Jobs submitted / finished / shed by admission control so far.
  [[nodiscard]] std::size_t submitted() const { return submitted_; }
  [[nodiscard]] std::size_t finished() const { return finished_; }
  [[nodiscard]] std::size_t shed() const { return shed_; }
  [[nodiscard]] bool all_done() const {
    return submitted_ > 0 && finished_ + shed_ == submitted_;
  }

  /// Runs one scheduling round now (also invoked internally on events);
  /// exposed so tests and examples can step the system by hand.
  void round();

  /// Maintenance drain: flags the host unplaceable, live-migrates its
  /// residents away (best fit) as capacity allows, and powers it off once
  /// empty. Progress is re-attempted on every round. Idempotent.
  void drain_host(datacenter::HostId h);
  /// Aborts a drain: the host becomes placeable again (it is not powered
  /// back on if the drain already completed).
  void cancel_drain(datacenter::HostId h);
  [[nodiscard]] bool is_draining(datacenter::HostId h) const;

  /// Fired when the last submitted job finishes; the experiment runner uses
  /// it to stop the clock.
  std::function<void()> on_all_done;

  /// Observation hook: fired after a round's actions pass validation and
  /// are applied, with the subset that actually took effect. The
  /// golden-trace regression test records placement decisions through it.
  std::function<void(sim::SimTime, const std::vector<Action>&)> on_actions;

  /// Fired on every job completion (after metrics are recorded).
  std::function<void(datacenter::VmId)> on_job_finished;

  /// Current controller thresholds (changes over time when the adaptive
  /// extension is on).
  [[nodiscard]] const PowerControllerConfig& thresholds() const {
    return power_.config();
  }

  /// VMs currently serving a post-failure backoff delay (their retry is
  /// scheduled but not yet due). Exposed for tests.
  [[nodiscard]] std::size_t backoff_count() const;

 private:
  /// Per-VM recovery bookkeeping for the fault-injection layer.
  struct RetryState {
    int attempts = 0;              ///< consecutive failed attempts
    sim::SimTime not_before = 0;   ///< backoff gate for the next attempt
    sim::SimTime failed_at = -1;   ///< first disruption of this episode
  };

  /// Arrival entry point; `defers` counts how many times admission control
  /// already pushed this arrival back (resilience backpressure).
  void on_arrival(const workload::Job& job, int defers = 0);
  /// Applies the policy's actions (after defensive validation) and returns
  /// how many were actually executed.
  std::size_t apply(const std::vector<Action>& actions);
  void sla_scan();
  void adaptive_window();
  void progress_drains();
  void evacuate_quarantined();
  datacenter::HostId policies_best_fit(datacenter::VmId v);
  void remove_from_queue(datacenter::VmId v);
  RetryState& retry_state(datacenter::VmId v);
  [[nodiscard]] bool in_backoff(datacenter::VmId v) const;
  /// Schedules the backoff-delayed re-attempt after a failed operation.
  /// `track_recovery` stamps the episode start so on_vm_ready can sample
  /// the time-to-recover (placements only; migration rollbacks leave the
  /// VM running, so there is nothing to recover from).
  void schedule_retry(datacenter::VmId v, bool track_recovery);
  void mark_disrupted(datacenter::VmId v);
  void note_recovered(datacenter::VmId v);

  sim::Simulator& sim_;
  datacenter::Datacenter& dc_;
  Policy& policy_;
  DriverConfig config_;
  PowerController power_;
  AdaptiveThresholds adaptive_;
  std::size_t jobs_seen_by_adaptive_ = 0;
  support::Rng rng_;
  /// Independent stream for backoff jitter: drawing retry delays must not
  /// perturb the policy RNG, or enabling fault injection would shift every
  /// later scheduling decision.
  support::Rng retry_rng_;
  std::vector<datacenter::VmId> queue_;
  std::vector<datacenter::VmId> eligible_;  ///< round scratch: queue_ minus backoff
  std::vector<RetryState> retry_;
  std::vector<datacenter::HostId> draining_;
  std::vector<bool> boosted_;  ///< per-VM: demand already boosted
  std::size_t submitted_ = 0;
  std::size_t finished_ = 0;
  std::size_t shed_ = 0;  ///< arrivals rejected by admission control
  bool in_round_ = false;
};

}  // namespace easched::sched
