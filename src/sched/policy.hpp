// The scheduling-policy interface.
//
// A *scheduling round* (section III-A: started "when a new VM enters in the
// system, finishes its execution, a violation in its SLA is detected, or
// the reliability of a node changes") asks the policy for a set of actions:
// place queued VMs onto hosts and, for migrating policies, move running VMs
// between hosts. The SchedulerDriver validates and applies the actions via
// the Datacenter actuators, then lets the PowerController adjust the set of
// powered-on nodes.
#pragma once

#include <string>
#include <vector>

#include "datacenter/datacenter.hpp"
#include "datacenter/ids.hpp"
#include "resilience/health.hpp"
#include "support/rng.hpp"

namespace easched::sched {

struct Action {
  enum class Kind : std::uint8_t { kPlace, kMigrate };
  Kind kind = Kind::kPlace;
  datacenter::VmId vm = 0;
  datacenter::HostId host = 0;

  static Action place(datacenter::VmId v, datacenter::HostId h) {
    return {Kind::kPlace, v, h};
  }
  static Action migrate(datacenter::VmId v, datacenter::HostId h) {
    return {Kind::kMigrate, v, h};
  }
};

/// Read-only view a policy sees during a round.
struct SchedContext {
  const datacenter::Datacenter& dc;
  const std::vector<datacenter::VmId>& queue;  ///< FIFO of queued VMs
  support::Rng& rng;  ///< policy randomness (seeded per run)
  /// Degradation-ladder level of this round (resilience control plane);
  /// kFull when no ResilienceController is attached. The score-based
  /// policy degrades its round accordingly; cheap policies may ignore it.
  resilience::LadderLevel ladder = resilience::LadderLevel::kFull;
  /// Per-round solver step budget at that level (0 = unlimited).
  int solver_budget = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether the driver should permit kMigrate actions from this policy.
  [[nodiscard]] virtual bool uses_migration() const { return false; }

  /// Computes this round's actions.
  virtual std::vector<Action> schedule(const SchedContext& ctx) = 0;

  /// Power-controller hooks (section III-C: nodes to turn on are "selected
  /// according to ... reliability, boot time, etc."; nodes to turn off by
  /// their aggregated score). Defaults: turn on the node that becomes
  /// usable soonest and creates VMs fastest; turn off the node with the
  /// highest virtualization overheads. Candidate lists are non-empty.
  virtual datacenter::HostId choose_power_on(
      const SchedContext& ctx,
      const std::vector<datacenter::HostId>& off_hosts);
  virtual datacenter::HostId choose_power_off(
      const SchedContext& ctx,
      const std::vector<datacenter::HostId>& idle_hosts);
};

}  // namespace easched::sched
