#include "sched/power_controller.hpp"

#include <algorithm>

#include "resilience/resilience.hpp"
#include "support/contracts.hpp"

namespace easched::sched {

namespace {

using datacenter::Datacenter;
using datacenter::HostId;
using datacenter::HostState;

std::vector<HostId> hosts_off(const Datacenter& dc) {
  auto* rc = resilience::controller(dc.recorder());
  std::vector<HostId> out;
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    const auto& host = dc.host(h);
    if (host.state == HostState::kOff && !host.maintenance &&
        !host.quarantined &&
        (rc == nullptr || rc->allows_power_on(h))) {
      out.push_back(h);
    }
  }
  return out;
}

std::vector<HostId> hosts_idle_on(const Datacenter& dc) {
  std::vector<HostId> out;
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    if (dc.host(h).is_idle_on() && !dc.host(h).maintenance) out.push_back(h);
  }
  return out;
}

/// True when some queued VM fits no currently online host (booting hosts
/// count as "will fit soon", so only fully online hosts are checked but a
/// booting host suppresses the forced turn-on to avoid over-provisioning).
bool queue_starved(const SchedContext& ctx) {
  if (ctx.queue.empty()) return false;
  for (HostId h = 0; h < ctx.dc.num_hosts(); ++h) {
    if (ctx.dc.host(h).state == HostState::kBooting) return false;
  }
  for (datacenter::VmId v : ctx.queue) {
    bool placeable = false;
    for (HostId h = 0; h < ctx.dc.num_hosts(); ++h) {
      if (ctx.dc.fits(h, v)) {
        placeable = true;
        break;
      }
    }
    if (!placeable) return true;
  }
  return false;
}

}  // namespace

void PowerController::update(const SchedContext& ctx, Datacenter& dc,
                             Policy& policy) {
  if (!config_.enabled) return;

  // Turn-on side: ratio above lambda_max, nothing online at all while work
  // exists, or a queued VM that fits nowhere.
  auto off = hosts_off(dc);
  int online = dc.online_count();
  const int working = dc.working_count();
  const bool demand = working > 0 || !ctx.queue.empty();

  auto take_off_host = [&](HostId h) {
    const auto it = std::find(off.begin(), off.end(), h);
    EA_ASSERT(it != off.end());
    off.erase(it);
  };

  while (!off.empty() && demand &&
         (online < config_.minexec || online == 0 ||
          static_cast<double>(working) / online > config_.lambda_max)) {
    const HostId h = policy.choose_power_on(ctx, off);
    dc.power_on(h);
    take_off_host(h);
    ++online;
  }
  if (!off.empty() && queue_starved(ctx)) {
    const HostId h = policy.choose_power_on(ctx, off);
    dc.power_on(h);
    take_off_host(h);
    ++online;
  }

  // Turn-off side: only idle nodes, never below minexec, and never while
  // VMs wait in the queue (they are about to need the capacity).
  if (!ctx.queue.empty()) return;
  auto idle = hosts_idle_on(dc);
  while (!idle.empty() && online > config_.minexec && online > 0 &&
         static_cast<double>(working) / online < config_.lambda_min) {
    const HostId h = policy.choose_power_off(ctx, idle);
    dc.power_off(h);
    idle.erase(std::find(idle.begin(), idle.end(), h));
    --online;
  }
}

}  // namespace easched::sched
