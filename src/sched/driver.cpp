#include "sched/driver.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "obs/obs.hpp"
#include "resilience/resilience.hpp"
#include "support/contracts.hpp"
#include "validate/validate.hpp"
#include "workload/satisfaction.hpp"

namespace easched::sched {

using datacenter::HostId;
using datacenter::VmId;
using datacenter::VmState;

// ---- Policy default power hooks -------------------------------------------

HostId Policy::choose_power_on(const SchedContext& ctx,
                               const std::vector<HostId>& off_hosts) {
  EA_EXPECTS(!off_hosts.empty());
  HostId best = off_hosts.front();
  for (HostId h : off_hosts) {
    const auto& a = ctx.dc.host(h).spec;
    const auto& b = ctx.dc.host(best).spec;
    const auto key = [](const datacenter::HostSpec& s) {
      return std::tuple{s.boot_time_s, s.creation_cost_s, -s.reliability};
    };
    if (key(a) < key(b)) best = h;
  }
  return best;
}

HostId Policy::choose_power_off(const SchedContext& ctx,
                                const std::vector<HostId>& idle_hosts) {
  EA_EXPECTS(!idle_hosts.empty());
  HostId best = idle_hosts.front();
  for (HostId h : idle_hosts) {
    const auto& a = ctx.dc.host(h).spec;
    const auto& b = ctx.dc.host(best).spec;
    // Shed the nodes with the worst virtualization overheads first.
    const auto key = [](const datacenter::HostSpec& s) {
      return std::tuple{-s.creation_cost_s, -s.migration_cost_s,
                        s.reliability};
    };
    if (key(a) < key(b)) best = h;
  }
  return best;
}

// ---- SchedulerDriver -------------------------------------------------------

SchedulerDriver::SchedulerDriver(sim::Simulator& simulator,
                                 datacenter::Datacenter& dc, Policy& policy,
                                 DriverConfig config)
    : sim_(simulator),
      dc_(dc),
      policy_(policy),
      config_(config),
      power_(config.power),
      adaptive_(config.adaptive, config.power),
      rng_(config.seed),
      // A named stream, not seed^constant: the XOR form collides with the
      // default-seeded Rng at seed 0 (the constant is the default seed) and
      // with the policy stream of seed s^constant for every s — either way
      // the backoff jitter would replay another subsystem's draws.
      retry_rng_(support::Rng::named(config.seed, "sched.retry")) {
  dc_.on_vm_finished = [this](VmId v) {
    ++finished_;
    round();
    if (on_job_finished) on_job_finished(v);
    if (all_done() && on_all_done) on_all_done();
  };
  dc_.on_vm_ready = [this](VmId v) {
    note_recovered(v);
    round();
  };
  dc_.on_migration_done = [this](VmId v) {
    // A completed migration ends any migrate-retry episode.
    if (v < retry_.size()) retry_[v] = RetryState{};
    round();
  };
  dc_.on_host_online = [this](HostId) { round(); };
  dc_.on_host_off = [this](HostId) { /* no round needed */ };
  dc_.on_host_repaired = [this](HostId) { round(); };
  dc_.on_host_failed = [this](HostId, std::vector<VmId> lost) {
    // Failed VMs return to the virtual host with priority (they already
    // held resources); re-scheduling is a new round (section III-A).
    for (VmId v : lost) mark_disrupted(v);
    queue_.insert(queue_.begin(), lost.begin(), lost.end());
    round();
  };
  dc_.on_operation_failed = [this](faults::FaultOp op, VmId v, HostId,
                                   bool) {
    switch (op) {
      case faults::FaultOp::kCreate:
        // The Datacenter already put the VM back in Queued; re-enter the
        // virtual host with priority and gate the next attempt.
        queue_.insert(queue_.begin(), v);
        schedule_retry(v, /*track_recovery=*/true);
        break;
      case faults::FaultOp::kMigrate:
        // Rolled back to the source: the VM keeps running, but further
        // migrations of it are backed off.
        schedule_retry(v, /*track_recovery=*/false);
        break;
      case faults::FaultOp::kCheckpoint:
      case faults::FaultOp::kPowerOn:
      case faults::FaultOp::kPowerOff:
        break;  // periodic/controller-driven; no per-VM retry
    }
    round();
  };
  dc_.on_host_boot_failed = [this](HostId) { round(); };
  dc_.on_host_quarantined = [this](HostId) { round(); };  // start evacuating
  dc_.on_host_unquarantined = [this](HostId) { round(); };

  if (config_.controller_period_s > 0) {
    sim_.every(config_.controller_period_s, [this] { round(); });
  }
  if (config_.sla_check_period_s > 0 &&
      (config_.sla_alarms || config_.dynamic_sla_boost)) {
    sim_.every(config_.sla_check_period_s, [this] { sla_scan(); });
  }
  if (config_.adaptive.enabled) {
    sim_.every(config_.adaptive.window_s, [this] { adaptive_window(); });
  }
}

void SchedulerDriver::adaptive_window() {
  const auto& records = dc_.recorder().jobs.records();
  double sum = 0;
  std::size_t count = 0;
  for (std::size_t i = jobs_seen_by_adaptive_; i < records.size(); ++i) {
    sum += records[i].satisfaction;
    ++count;
  }
  jobs_seen_by_adaptive_ = records.size();
  const auto next =
      adaptive_.adjust(count > 0 ? sum / static_cast<double>(count) : 0.0,
                       count);
  power_.set_thresholds(next.lambda_min, next.lambda_max);
}

void SchedulerDriver::submit_workload(const workload::Workload& jobs) {
  for (const auto& job : jobs) {
    sim_.at(job.submit, [this, job] { on_arrival(job); });
  }
  submitted_ += jobs.size();
}

void SchedulerDriver::on_arrival(const workload::Job& job, int defers) {
  if (auto* rc = resilience::controller(dc_.recorder())) {
    switch (rc->admit(sim_.now(), queue_.size(), defers)) {
      case resilience::Admission::kAdmit:
        break;
      case resilience::Admission::kDefer:
        // Re-attempt admission after the backpressure delay; the job has
        // not been materialised, so nothing else changes.
        sim_.after(rc->defer_delay_s(),
                   [this, job, defers] { on_arrival(job, defers + 1); });
        return;
      case resilience::Admission::kShed:
        ++shed_;
        if (all_done() && on_all_done) on_all_done();
        return;
    }
  }
  const VmId v = dc_.admit_job(job);
  if (auto* tr = obs::tracer(dc_.recorder())) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kJobArrival);
    e.vm = v;
    e.arg("cpu_pct", job.cpu_pct).arg("mem_mb", job.mem_mb);
  }
  boosted_.resize(std::max<std::size_t>(boosted_.size(), v + 1), false);
  queue_.push_back(v);
  round();
}

VmId SchedulerDriver::submit_job_now(const workload::Job& job) {
  workload::Job stamped = job;
  stamped.submit = sim_.now();
  ++submitted_;
  const VmId v = dc_.admit_job(stamped);
  if (auto* tr = obs::tracer(dc_.recorder())) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kJobArrival);
    e.vm = v;
    e.arg("cpu_pct", stamped.cpu_pct).arg("mem_mb", stamped.mem_mb);
  }
  boosted_.resize(std::max<std::size_t>(boosted_.size(), v + 1), false);
  queue_.push_back(v);
  round();
  return v;
}

void SchedulerDriver::remove_from_queue(VmId v) {
  const auto it = std::find(queue_.begin(), queue_.end(), v);
  EA_ASSERT(it != queue_.end());
  queue_.erase(it);
}

std::size_t SchedulerDriver::apply(const std::vector<Action>& actions) {
  std::vector<Action> applied;
  for (const Action& a : actions) {
    const auto& vm = dc_.vm(a.vm);
    switch (a.kind) {
      case Action::Kind::kPlace:
        // Validate defensively: the policy may have raced a state change
        // (e.g. two actions for one VM).
        if (vm.state != VmState::kQueued) break;
        if (in_backoff(a.vm)) break;
        if (dc_.host(a.host).state != datacenter::HostState::kOn) break;
        if (!dc_.fits_memory(a.host, a.vm)) break;
        remove_from_queue(a.vm);
        dc_.place(a.vm, a.host);
        applied.push_back(a);
        break;
      case Action::Kind::kMigrate:
        if (!policy_.uses_migration()) break;
        if (vm.state != VmState::kRunning || vm.host == a.host) break;
        if (in_backoff(a.vm)) break;
        if (dc_.host(a.host).state != datacenter::HostState::kOn) break;
        if (!dc_.fits_memory(a.host, a.vm)) break;
        dc_.migrate(a.vm, a.host);
        applied.push_back(a);
        break;
    }
  }
  if (on_actions && !applied.empty()) on_actions(sim_.now(), applied);
  return applied.size();
}

const char* to_string(QueueOrder order) noexcept {
  switch (order) {
    case QueueOrder::kFifo:
      return "fifo";
    case QueueOrder::kEdf:
      return "edf";
    case QueueOrder::kSjf:
      return "sjf";
  }
  return "?";
}

void SchedulerDriver::round() {
  if (in_round_) return;  // actions can re-trigger notifications
  in_round_ = true;
  auto* rc = resilience::controller(dc_.recorder());
  if (rc != nullptr) rc->begin_round(sim_.now());
  obs::PhaseProfiler* prof = obs::profiler(dc_.recorder());
  obs::PhaseProfiler::Scope round_scope(prof, obs::Phase::kRound);
  switch (config_.queue_order) {
    case QueueOrder::kFifo:
      break;  // insertion order (failures re-enter at the front)
    case QueueOrder::kEdf:
      std::stable_sort(queue_.begin(), queue_.end(),
                       [this](VmId a, VmId b) {
                         const auto& ja = dc_.vm(a).job;
                         const auto& jb = dc_.vm(b).job;
                         return ja.submit + ja.deadline_seconds() <
                                jb.submit + jb.deadline_seconds();
                       });
      break;
    case QueueOrder::kSjf:
      std::stable_sort(queue_.begin(), queue_.end(),
                       [this](VmId a, VmId b) {
                         return dc_.vm(a).job.dedicated_seconds <
                                dc_.vm(b).job.dedicated_seconds;
                       });
      break;
  }
  // Hold VMs serving a retry backoff out of this round's view. The common
  // (fault-free) path hands the policy the live queue unfiltered so the
  // no-injector behaviour is bit-identical.
  const std::vector<VmId>* view = &queue_;
  if (backoff_count() > 0) {
    eligible_.clear();
    for (VmId v : queue_) {
      if (!in_backoff(v)) eligible_.push_back(v);
    }
    view = &eligible_;
  }
  SchedContext ctx{dc_, *view, rng_};
  if (rc != nullptr) {
    ctx.ladder = rc->ladder();
    ctx.solver_budget = rc->solver_budget();
  }
  if (auto* el = obs::ledger(dc_.recorder())) {
    // Attribute joules from here on to the rung this round runs at.
    el->set_rung(sim_.now(), static_cast<int>(ctx.ladder));
  }
  const std::vector<Action> actions = policy_.schedule(ctx);
  std::size_t applied = 0;
  {
    obs::PhaseProfiler::Scope scope(prof, obs::Phase::kActuate);
    applied = apply(actions);
  }
  progress_drains();
  evacuate_quarantined();
  {
    obs::PhaseProfiler::Scope scope(prof, obs::Phase::kPower);
    power_.update(ctx, dc_, policy_);
  }
  if (auto* tr = obs::tracer(dc_.recorder())) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kRound);
    e.arg("queue", static_cast<double>(queue_.size()))
        .arg("eligible", static_cast<double>(view->size()))
        .arg("actions", static_cast<double>(applied));
    if (prof != nullptr) e.arg("wall_round_ms", round_scope.elapsed_ms());
  }
  // Close the watchdog window: the controller judges this round's solver
  // effort and walks the degradation ladder before the next round begins.
  if (rc != nullptr) rc->end_round(sim_.now());
  // End-of-round sync point: every actuator decision of this round has
  // been applied, so the world must be coherent. Full invariant sweep.
  if (auto* ck = validate::checker(dc_.recorder())) {
    ck->check_datacenter(dc_);
  }
  in_round_ = false;
}

std::size_t SchedulerDriver::backoff_count() const {
  std::size_t n = 0;
  for (const RetryState& r : retry_) {
    if (r.not_before > sim_.now()) ++n;
  }
  return n;
}

SchedulerDriver::RetryState& SchedulerDriver::retry_state(VmId v) {
  if (v >= retry_.size()) retry_.resize(v + 1);
  return retry_[v];
}

bool SchedulerDriver::in_backoff(VmId v) const {
  return v < retry_.size() && retry_[v].not_before > sim_.now();
}

void SchedulerDriver::schedule_retry(VmId v, bool track_recovery) {
  RetryState& r = retry_state(v);
  ++r.attempts;
  if (track_recovery && r.failed_at < 0) r.failed_at = sim_.now();
  const RetryPolicy& rp = config_.retry;
  const double exponential =
      rp.base_s * std::pow(2.0, static_cast<double>(r.attempts - 1));
  const double delay = std::min(rp.cap_s, exponential) *
                       (1.0 + rp.jitter * retry_rng_.uniform01());
  r.not_before = sim_.now() + delay;
  ++dc_.recorder().counts.retries;
  if (auto* tr = obs::tracer(dc_.recorder())) {
    auto& e = tr->emit(sim_.now(), obs::EventKind::kRetry);
    e.vm = v;
    e.arg("attempt", static_cast<double>(r.attempts)).arg("delay_s", delay);
  }
  sim_.after(delay, [this] { round(); });
}

void SchedulerDriver::mark_disrupted(VmId v) {
  RetryState& r = retry_state(v);
  if (r.failed_at < 0) r.failed_at = sim_.now();
}

void SchedulerDriver::note_recovered(VmId v) {
  if (v >= retry_.size()) return;
  RetryState& r = retry_[v];
  if (r.failed_at >= 0) {
    dc_.recorder().recovery_s.push_back(sim_.now() - r.failed_at);
  }
  r = RetryState{};
}

void SchedulerDriver::drain_host(datacenter::HostId h) {
  if (is_draining(h)) return;
  dc_.set_maintenance(h, true);
  draining_.push_back(h);
  round();
}

void SchedulerDriver::cancel_drain(datacenter::HostId h) {
  const auto it = std::find(draining_.begin(), draining_.end(), h);
  if (it != draining_.end()) draining_.erase(it);
  // Clear the flag even when the drain already completed (the host is Off
  // with maintenance still set so the controller leaves it down).
  dc_.set_maintenance(h, false);
}

bool SchedulerDriver::is_draining(datacenter::HostId h) const {
  return std::find(draining_.begin(), draining_.end(), h) != draining_.end();
}

void SchedulerDriver::progress_drains() {
  for (std::size_t i = 0; i < draining_.size();) {
    const datacenter::HostId h = draining_[i];
    const auto& host = dc_.host(h);
    if (host.is_idle_on()) {
      dc_.power_off(h);
      draining_.erase(draining_.begin() + static_cast<long>(i));
      continue;  // maintenance flag stays: no controller turn-on
    }
    // Evict what can be evicted now; creations/migrations in flight finish
    // first and are retried on a later round.
    const std::vector<VmId> residents = host.residents;  // copy: mutation
    for (VmId v : residents) {
      if (dc_.vm(v).state != VmState::kRunning) continue;
      if (in_backoff(v)) continue;  // its last migration just failed
      const datacenter::HostId target = policies_best_fit(v);
      if (target != datacenter::kNoHost) dc_.migrate(v, target);
    }
    ++i;
  }
}

void SchedulerDriver::evacuate_quarantined() {
  // Degraded-mode scheduling: live-migrate residents off quarantined hosts
  // as capacity allows. Unlike a drain the host is not powered off here —
  // the cooldown decides when it may serve again (the controller may still
  // shed it once idle).
  for (datacenter::HostId h = 0; h < dc_.num_hosts(); ++h) {
    const auto& host = dc_.host(h);
    if (!host.quarantined || host.state != datacenter::HostState::kOn) {
      continue;
    }
    const std::vector<VmId> residents = host.residents;  // copy: mutation
    for (VmId v : residents) {
      if (dc_.vm(v).state != VmState::kRunning) continue;
      if (in_backoff(v)) continue;
      const datacenter::HostId target = policies_best_fit(v);
      if (target != datacenter::kNoHost) dc_.migrate(v, target);
    }
  }
}

datacenter::HostId SchedulerDriver::policies_best_fit(datacenter::VmId v) {
  datacenter::HostId best = datacenter::kNoHost;
  double best_occ = -1;
  for (datacenter::HostId h = 0; h < dc_.num_hosts(); ++h) {
    if (h == dc_.vm(v).host) continue;
    if (!dc_.fits(h, v)) continue;
    const double occ = dc_.occupation_if(h, v);
    if (occ > best_occ) {
      best_occ = occ;
      best = h;
    }
  }
  return best;
}

void SchedulerDriver::sla_scan() {
  bool at_risk_found = false;
  for (VmId v : dc_.active_vms()) {
    const auto& vm = dc_.vm(v);
    if (vm.state != VmState::kRunning) continue;
    const double elapsed = sim_.now() - vm.job.submit;
    const double rate = vm.progress_rate > 0 ? vm.progress_rate : 1.0;
    const double projected_exec = elapsed + vm.remaining_work_s() / rate;
    if (projected_exec <= vm.job.deadline_seconds()) continue;

    at_risk_found = true;
    ++dc_.recorder().counts.sla_alarms;
    if (auto* tr = obs::tracer(dc_.recorder())) {
      tr->emit(sim_.now(), obs::EventKind::kSlaAlarm).vm = v;
    }
    if (config_.dynamic_sla_boost && !boosted_[v]) {
      // Give the VM the priority it needs to catch up (III-A.5): a higher
      // credit weight pulls its share toward its nominal demand on
      // contended hosts; the PSLA term reconsiders its placement.
      dc_.boost_weight(v, 4.0 * config_.boost_factor);
      boosted_[v] = true;
    }
  }
  if (at_risk_found && config_.sla_alarms) round();
}

}  // namespace easched::sched
