// Node power controller (section III-C).
//
// Drives the number of operative nodes from the ratio of working nodes
// (hosting at least one VM) to online nodes (powered on):
//   * ratio > lambda_max  -> start booting stopped nodes;
//   * ratio < lambda_min  -> shut down idle nodes (down to `minexec`).
// Node choice is delegated to the Policy hooks. In addition, a queued VM
// that fits no online host forces a turn-on regardless of the ratio, so a
// large job cannot starve behind a low ratio.
#pragma once

#include "datacenter/datacenter.hpp"
#include "sched/policy.hpp"

namespace easched::sched {

struct PowerControllerConfig {
  double lambda_min = 0.30;  ///< paper's experimentally best value
  double lambda_max = 0.90;
  int minexec = 1;           ///< minimum set of operative machines
  bool enabled = true;
};

class PowerController {
 public:
  explicit PowerController(PowerControllerConfig config) : config_(config) {}

  /// Applies the thresholds once; called by the driver after every
  /// scheduling round and on its periodic tick.
  void update(const SchedContext& ctx, datacenter::Datacenter& dc,
              Policy& policy);

  [[nodiscard]] const PowerControllerConfig& config() const noexcept {
    return config_;
  }

  /// Replaces the thresholds at runtime (dynamic-threshold extension).
  void set_thresholds(double lambda_min, double lambda_max) {
    config_.lambda_min = lambda_min;
    config_.lambda_max = lambda_max;
  }

 private:
  PowerControllerConfig config_;
};

}  // namespace easched::sched
