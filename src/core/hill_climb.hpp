// Algorithm 1 of the paper: hill-climbing optimization of the allocation
// matrix.
//
// Iteratively pick the cell with the most negative delta — the score of
// planning the VM on a host minus the score of keeping it where it is — and
// apply that move, until no negative delta remains or the iteration limit
// hits ("a suboptimal solution much faster and cheaper than evaluating all
// possible configurations", section III-B).
//
// The solver is generic over the model so the paper's worked 5x6 example
// matrix (and any toy model in the tests) can be optimized with exactly the
// code the real policy uses. The model concept:
//   int rows(), int cols(), int virtual_row();
//   double cell(int r, int c);            // score under the current plan
//   int plan_row(int c); bool movable(int c);
//   Dirty move(int r, int c);             // Dirty{col, row_a, row_b}
#pragma once

#include <vector>

#include "core/score.hpp"

namespace easched::core {

struct HillClimbStats {
  int moves = 0;
  int migration_moves = 0;  ///< moves of columns that started on a real host
  bool hit_move_limit = false;
  double total_gain = 0;  ///< sum of (negative) deltas taken, as a positive
};

struct HillClimbLimits {
  int max_moves = 256;          ///< Algorithm 1 iteration limit
  int max_migration_moves = 256;  ///< budget for moves of running VMs
  /// Minimum improvement for a move; migrations additionally require
  /// `min_migration_gain` so marginal reshuffles of running VMs (whose
  /// real cost the matrix only approximates) are not taken.
  double min_gain = 1e-9;
  double min_migration_gain = 1e-9;
};

template <typename Model>
HillClimbStats hill_climb(Model& model, const HillClimbLimits& limits) {
  HillClimbStats stats;
  const int rows = model.rows();
  const int cols = model.cols();
  if (cols == 0 || rows <= 1) return stats;

  // Cache of Score(h, vm) under the current plan.
  std::vector<double> score(static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(cols));
  const auto at = [cols](int r, int c) {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
           static_cast<std::size_t>(c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) score[at(r, c)] = model.cell(r, c);
  }

  while (stats.moves < limits.max_moves) {
    // Scan for the most negative delta ("smallest position on CM").
    int best_r = -1, best_c = -1;
    double best_delta = -limits.min_gain;
    for (int c = 0; c < cols; ++c) {
      if (!model.movable(c)) continue;
      const bool is_migration = model.original_row(c) != model.virtual_row();
      if (is_migration &&
          stats.migration_moves >= limits.max_migration_moves) {
        continue;
      }
      const double threshold =
          is_migration ? -limits.min_migration_gain : -limits.min_gain;
      const double keep = score[at(model.plan_row(c), c)];
      for (int r = 0; r < rows; ++r) {
        if (r == model.plan_row(c) || r == model.virtual_row()) continue;
        const double delta = score[at(r, c)] - keep;
        if (delta < best_delta && delta <= threshold) {
          best_delta = delta;
          best_r = r;
          best_c = c;
        }
      }
    }
    if (best_c < 0) break;  // no negative values remain

    if (model.original_row(best_c) != model.virtual_row()) {
      ++stats.migration_moves;
    }
    const auto dirty = model.move(best_r, best_c);
    ++stats.moves;
    stats.total_gain -= best_delta;

    // Refresh the dirty region: the moved VM's column and every cell of the
    // two affected rows (their occupation changed for all columns).
    for (int r = 0; r < rows; ++r) {
      score[at(r, dirty.col)] = model.cell(r, dirty.col);
    }
    for (int c = 0; c < cols; ++c) {
      if (dirty.row_a >= 0) score[at(dirty.row_a, c)] = model.cell(dirty.row_a, c);
      if (dirty.row_b >= 0) score[at(dirty.row_b, c)] = model.cell(dirty.row_b, c);
    }
  }
  stats.hit_move_limit = stats.moves >= limits.max_moves;
  return stats;
}

}  // namespace easched::core
