// Algorithm 1 of the paper: hill-climbing optimization of the allocation
// matrix.
//
// Iteratively pick the cell with the most negative delta — the score of
// planning the VM on a host minus the score of keeping it where it is — and
// apply that move, until no negative delta remains or the iteration limit
// hits ("a suboptimal solution much faster and cheaper than evaluating all
// possible configurations", section III-B).
//
// Two implementations share one contract:
//
//   hill_climb_reference() — the executable specification: a full
//     O(rows x cols) delta scan per iteration, refreshing the dirty region
//     after each move. Kept verbatim for the differential tests and the
//     solver_scaling bench baseline.
//
//   hill_climb() — the production solver: it exploits the Dirty contract
//     (a move changes cells only in the moved column and the two touched
//     rows) to maintain a per-column blocked argmin incrementally, so an
//     iteration costs O(cols x (block + rows/block)) instead of
//     O(rows x cols) — an ~8x round speedup at 1600 hosts
//     (bench_micro solver_scaling, BENCH_solver.json).
//     With a SolverPool in the limits, the initial sweep and per-iteration
//     column updates run chunked over the pool; per-column state is
//     disjoint and the global reduction happens on the calling thread in
//     ascending column order, so serial and threaded runs are bit-identical
//     (tests/test_solver_equivalence.cpp compares full move traces).
//
// The solver is generic over the model so the paper's worked 5x6 example
// matrix (and any toy model in the tests) can be optimized with exactly the
// code the real policy uses. The model concept:
//   int rows(), int cols(), int virtual_row();
//   double cell(int r, int c);            // score under the current plan
//   int plan_row(int c); bool movable(int c);
//   Dirty move(int r, int c);             // Dirty{col, row_a, row_b}
// Optionally: void prime()                // pre-fill any internal cache
// Optionally (candidate pruning; both must be *conservative*, i.e. only
// ever true for cells whose delta against any keep score is >= 0, so the
// argmin provably never selects them and the move trace stays identical):
//   bool provably_inf(int r, int c);      // skip one candidate cell
//   bool skip_block(int c, int blk);      // skip a whole kArgminBlock
#pragma once

#include <algorithm>
#include <vector>

#include "core/score.hpp"
#include "core/solver_pool.hpp"

namespace easched::core {

/// One applied move, in application order (the equivalence tests compare
/// these traces across solver variants with exact equality).
struct HillClimbMove {
  int col = -1;
  int from_row = -1;
  int to_row = -1;
  double delta = 0;  ///< the (negative) score delta the move realized
};

inline bool operator==(const HillClimbMove& a, const HillClimbMove& b) {
  return a.col == b.col && a.from_row == b.from_row && a.to_row == b.to_row &&
         a.delta == b.delta;
}

struct HillClimbStats {
  int moves = 0;
  int migration_moves = 0;  ///< moves of columns that started on a real host
  bool hit_move_limit = false;
  double total_gain = 0;  ///< sum of (negative) deltas taken, as a positive
  std::vector<HillClimbMove> trace;  ///< applied moves, in order
};

struct HillClimbLimits {
  int max_moves = 256;          ///< Algorithm 1 iteration limit
  int max_migration_moves = 256;  ///< budget for moves of running VMs
  /// Minimum improvement for a move; migrations additionally require
  /// `min_migration_gain` so marginal reshuffles of running VMs (whose
  /// real cost the matrix only approximates) are not taken.
  double min_gain = 1e-9;
  double min_migration_gain = 1e-9;
  /// Optional thread pool (not owned) for the initial sweep and the
  /// per-iteration column updates. Null or single-threaded pools run
  /// serially; results are identical either way.
  SolverPool* pool = nullptr;
};

/// The executable specification (the seed implementation): full-matrix
/// scan each iteration. O(moves x rows x cols); use hill_climb() instead.
template <typename Model>
HillClimbStats hill_climb_reference(Model& model,
                                    const HillClimbLimits& limits) {
  HillClimbStats stats;
  const int rows = model.rows();
  const int cols = model.cols();
  if (cols == 0 || rows <= 1) return stats;

  // Cache of Score(h, vm) under the current plan.
  std::vector<double> score(static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(cols));
  const auto at = [cols](int r, int c) {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
           static_cast<std::size_t>(c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) score[at(r, c)] = model.cell(r, c);
  }

  while (stats.moves < limits.max_moves) {
    // Scan for the most negative delta ("smallest position on CM").
    int best_r = -1, best_c = -1;
    double best_delta = -limits.min_gain;
    for (int c = 0; c < cols; ++c) {
      if (!model.movable(c)) continue;
      const bool is_migration = model.original_row(c) != model.virtual_row();
      if (is_migration &&
          stats.migration_moves >= limits.max_migration_moves) {
        continue;
      }
      const double threshold =
          is_migration ? -limits.min_migration_gain : -limits.min_gain;
      const double keep = score[at(model.plan_row(c), c)];
      for (int r = 0; r < rows; ++r) {
        if (r == model.plan_row(c) || r == model.virtual_row()) continue;
        const double delta = score[at(r, c)] - keep;
        if (delta < best_delta && delta <= threshold) {
          best_delta = delta;
          best_r = r;
          best_c = c;
        }
      }
    }
    if (best_c < 0) break;  // no negative values remain

    if (model.original_row(best_c) != model.virtual_row()) {
      ++stats.migration_moves;
    }
    const int from = model.plan_row(best_c);
    const auto dirty = model.move(best_r, best_c);
    ++stats.moves;
    stats.total_gain -= best_delta;
    stats.trace.push_back({best_c, from, best_r, best_delta});

    // Refresh the dirty region: the moved VM's column and every cell of the
    // two affected rows (their occupation changed for all columns).
    for (int r = 0; r < rows; ++r) {
      score[at(r, dirty.col)] = model.cell(r, dirty.col);
    }
    for (int c = 0; c < cols; ++c) {
      if (dirty.row_a >= 0) score[at(dirty.row_a, c)] = model.cell(dirty.row_a, c);
      if (dirty.row_b >= 0) score[at(dirty.row_b, c)] = model.cell(dirty.row_b, c);
    }
  }
  stats.hit_move_limit = stats.moves >= limits.max_moves;
  return stats;
}

/// The production solver: identical move sequence to hill_climb_reference()
/// (bit-identical deltas and final plan), with incremental per-column
/// argmin maintenance and optional threading. See the header comment.
///
/// Per-column argmin structure: rows are grouped into fixed blocks of
/// kArgminBlock; each column keeps the lexicographic (delta, row) minimum
/// of every block, plus the reduction over blocks. A move dirties two rows
/// (the Dirty contract), so per column only the touched rows' blocks are
/// rescanned and the block minima re-reduced — O(kArgminBlock + rows /
/// kArgminBlock) instead of O(rows) — and nothing is ever stale. Deltas
/// are compared post-rounding in (delta, row) order, which is exactly the
/// reference scan's first-minimum behaviour, so traces match bit for bit.
template <typename Model>
HillClimbStats hill_climb(Model& model, const HillClimbLimits& limits) {
  HillClimbStats stats;
  const int rows = model.rows();
  const int cols = model.cols();
  const int vrow = model.virtual_row();
  if (cols == 0 || rows <= 1) return stats;

  SolverPool* pool =
      limits.pool != nullptr && limits.pool->threads() > 1 ? limits.pool
                                                           : nullptr;
  if constexpr (requires { model.prime(); }) {
    model.prime();  // row-partitioned initial matrix build (cached models)
  }

  // kArgminBlock (core/score.hpp) is shared with the fleet bucket index:
  // its per-block free-capacity maxima are what skip_block() consults.
  const int nblocks = (rows + kArgminBlock - 1) / kArgminBlock;
  struct Cand {
    double delta = 0;
    int row = -1;  ///< -1: no candidate
  };
  // Lexicographic (delta, row) "is d/r better than b": reproduces the
  // reference's ascending scan with strict <, i.e. first minimum wins.
  const auto better = [](double d, int r, const Cand& b) {
    return b.row < 0 || d < b.delta || (d == b.delta && r < b.row);
  };
  std::vector<Cand> block_best(static_cast<std::size_t>(cols) *
                               static_cast<std::size_t>(nblocks));
  std::vector<Cand> best(static_cast<std::size_t>(cols));

  const auto rescan_block = [&](int c, int blk) {
    const int plan = model.plan_row(c);
    const double keep = model.cell(plan, c);
    Cand b;
    const int lo = blk * kArgminBlock;
    const int hi = std::min(rows, lo + kArgminBlock);
    for (int r = lo; r < hi; ++r) {
      if (r == plan || r == vrow) continue;
      if constexpr (requires { model.provably_inf(r, c); }) {
        // A provably infeasible cell has delta >= 0 against any keep
        // score, so it can never be a candidate — skip the evaluation.
        if (model.provably_inf(r, c)) continue;
      }
      const double delta = model.cell(r, c) - keep;
      if (better(delta, r, b)) b = {delta, r};
    }
    block_best[static_cast<std::size_t>(c) *
                   static_cast<std::size_t>(nblocks) +
               static_cast<std::size_t>(blk)] = b;
  };
  // rescan_block with the block-level capacity prune in front: when the
  // model proves that no host in the block can fit the column's VM, every
  // cell in it is infeasible (delta >= 0) and the block's candidate slot
  // is *cleared* — a stale pre-move candidate must not survive a skip.
  const auto scan_block = [&](int c, int blk) {
    if constexpr (requires { model.skip_block(c, blk); }) {
      if (model.skip_block(c, blk)) {
        block_best[static_cast<std::size_t>(c) *
                       static_cast<std::size_t>(nblocks) +
                   static_cast<std::size_t>(blk)] = Cand{};
        return;
      }
    }
    rescan_block(c, blk);
  };
  const auto reduce_col = [&](int c) {
    Cand b;
    const std::size_t base = static_cast<std::size_t>(c) *
                             static_cast<std::size_t>(nblocks);
    for (int blk = 0; blk < nblocks; ++blk) {
      const Cand& bb = block_best[base + static_cast<std::size_t>(blk)];
      if (bb.row >= 0 && better(bb.delta, bb.row, b)) b = bb;
    }
    best[static_cast<std::size_t>(c)] = b;
  };
  const auto recompute_col = [&](int c) {
    for (int blk = 0; blk < nblocks; ++blk) scan_block(c, blk);
    reduce_col(c);
  };

  const auto for_cols = [&](const auto& fn) {
    if (pool != nullptr) {
      pool->parallel_for(cols, [&fn](int begin, int end) {
        for (int c = begin; c < end; ++c) fn(c);
      });
    } else {
      for (int c = 0; c < cols; ++c) fn(c);
    }
  };

  for_cols(recompute_col);

  while (stats.moves < limits.max_moves) {
    // Deterministic reduction over the per-column bests, in ascending
    // column order with strict <: the same winner as the reference's
    // column-major full scan.
    int best_r = -1, best_c = -1;
    double best_delta = -limits.min_gain;
    for (int c = 0; c < cols; ++c) {
      if (!model.movable(c)) continue;
      const bool is_migration = model.original_row(c) != vrow;
      if (is_migration &&
          stats.migration_moves >= limits.max_migration_moves) {
        continue;
      }
      const Cand& b = best[static_cast<std::size_t>(c)];
      if (b.row < 0) continue;
      const double threshold =
          is_migration ? -limits.min_migration_gain : -limits.min_gain;
      if (b.delta < best_delta && b.delta <= threshold) {
        best_delta = b.delta;
        best_r = b.row;
        best_c = c;
      }
    }
    if (best_c < 0) break;  // no negative values remain

    if (model.original_row(best_c) != vrow) {
      ++stats.migration_moves;
    }
    const int from = model.plan_row(best_c);
    const auto dirty = model.move(best_r, best_c);
    ++stats.moves;
    stats.total_gain -= best_delta;
    stats.trace.push_back({best_c, from, best_r, best_delta});

    // Update the per-column state for the dirty region:
    //  - the moved column (plan row, keep score and row exclusion changed,
    //    and per the Dirty contract all of its cells may have): full
    //    recompute;
    //  - columns planned on a touched row (their keep score changed, which
    //    shifts every delta): full recompute;
    //  - every other column: only the touched rows' cells changed, so
    //    rescanning their blocks and re-reducing is exact.
    const int ra = dirty.row_a;
    const int rb = dirty.row_b;
    for_cols([&](int c) {
      const int plan = model.plan_row(c);
      if (c == dirty.col || plan == ra || plan == rb) {
        recompute_col(c);
        return;
      }
      if (ra >= 0) scan_block(c, ra / kArgminBlock);
      if (rb >= 0 && (ra < 0 || rb / kArgminBlock != ra / kArgminBlock)) {
        scan_block(c, rb / kArgminBlock);
      }
      reduce_col(c);
    });
  }
  stats.hit_move_limit = stats.moves >= limits.max_moves;
  return stats;
}

}  // namespace easched::core
