// Simulated-annealing solver for the allocation matrix.
//
// Section II of the paper: "Meta-heuristic algorithms such as Tabu search
// and Simulated Annealing have been also proposed [12], [14], [15]" as
// alternatives to greedy mapping heuristics. This solver makes that
// comparison concrete: a Metropolis walk over plans (random column to a
// random feasible row, accepted when improving or with probability
// exp(-delta/T) otherwise) under a geometric cooling schedule. It can
// escape the local optima that trap Algorithm 1, at the price of many more
// score evaluations — exactly the trade-off the paper invokes to justify
// the greedy choice for an *online* scheduler.
#pragma once

#include <cmath>
#include <vector>

#include "core/score.hpp"
#include "support/rng.hpp"

namespace easched::core {

struct AnnealingParams {
  double initial_temperature = 50.0;  ///< in score units (seconds-like)
  double cooling = 0.97;              ///< geometric factor per step
  double min_temperature = 0.5;       ///< stop when T falls below
  int steps_per_temperature = 16;
  std::uint64_t seed = 1;
};

struct AnnealingStats {
  int proposals = 0;
  int accepted = 0;
  int uphill_accepted = 0;
  double best_cost = 0;
};

/// Anneals `model` (same concept as hill_climb; move() must support moving
/// queued columns back to the virtual row). The model is left in the best
/// plan encountered.
template <typename Model>
AnnealingStats anneal(Model& model, const AnnealingParams& params) {
  AnnealingStats stats;
  const int rows = model.rows();
  const int cols = model.cols();

  const auto total_cost = [&] {
    double sum = 0;
    for (int c = 0; c < cols; ++c) sum += model.cell(model.plan_row(c), c);
    return sum;
  };

  std::vector<int> best(static_cast<std::size_t>(cols));
  const auto snapshot = [&] {
    for (int c = 0; c < cols; ++c) best[static_cast<std::size_t>(c)] = model.plan_row(c);
  };
  double cost = total_cost();
  stats.best_cost = cost;
  snapshot();
  if (cols == 0 || rows <= 1) return stats;

  support::Rng rng{params.seed};
  std::vector<int> movable;
  for (int c = 0; c < cols; ++c) {
    if (model.movable(c)) movable.push_back(c);
  }
  if (movable.empty()) return stats;

  for (double t = params.initial_temperature; t >= params.min_temperature;
       t *= params.cooling) {
    for (int step = 0; step < params.steps_per_temperature; ++step) {
      const int c = movable[rng.uniform_int(0, movable.size() - 1)];
      const int from = model.plan_row(c);
      // Candidate row: any real host, or back to the queue for columns
      // that entered from it.
      int to;
      do {
        to = static_cast<int>(rng.uniform_int(
            0, static_cast<std::uint64_t>(rows - 1)));
      } while (to == from ||
               (to == model.virtual_row() &&
                model.original_row(c) != model.virtual_row()));

      ++stats.proposals;
      model.move(to, c);
      const double new_cost = total_cost();
      const double delta = new_cost - cost;
      const bool accept =
          delta <= 0 || rng.uniform01() < std::exp(-delta / t);
      if (accept) {
        cost = new_cost;
        ++stats.accepted;
        if (delta > 0) ++stats.uphill_accepted;
        if (cost < stats.best_cost) {
          stats.best_cost = cost;
          snapshot();
        }
      } else {
        model.move(from, c);
      }
    }
  }

  // Leave the model in the best plan seen.
  for (int c = 0; c < cols; ++c) {
    const int r = best[static_cast<std::size_t>(c)];
    if (model.plan_row(c) != r) model.move(r, c);
  }
  return stats;
}

}  // namespace easched::core
