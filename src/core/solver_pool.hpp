// A small persistent thread pool for the matrix solvers.
//
// The (M+1) x N score matrix is embarrassingly parallel in both directions:
// the initial cache build partitions *rows* (each worker fills the cells of
// a contiguous row range) and the per-iteration argmin sweep partitions
// *columns* (each worker maintains the per-column best of a contiguous
// column range). Determinism is part of the contract: `parallel_for` splits
// [0, n) into exactly `threads()` contiguous chunks whose boundaries depend
// only on (n, threads), every index is processed by exactly one worker with
// the same per-index arithmetic as a serial run, and callers reduce the
// per-chunk results on the calling thread in ascending chunk order — so a
// threaded sweep is bit-identical to a serial one (see
// docs/architecture.md, "Determinism contract").
//
// Workers must only touch disjoint state per chunk; the pool provides no
// synchronization beyond the fork/join barrier of each parallel_for call.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace easched::core {

class SolverPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates as chunk
  /// 0). `threads` is clamped to at least 1; a 1-thread pool runs inline.
  explicit SolverPool(int threads);
  ~SolverPool();

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Runs `fn(begin, end)` over a partition of [0, n) into threads() fixed
  /// contiguous chunks, concurrently, and returns when all chunks are done.
  /// `fn` must not throw and must only write state that is disjoint between
  /// chunks. Blocking: the calling thread executes chunk 0.
  void parallel_for(int n, const std::function<void(int, int)>& fn);

  /// Thread count requested via the EASCHED_SOLVER_THREADS environment
  /// variable; 1 (serial) when unset or unparsable, clamped to [1, 64].
  static int env_threads();

 private:
  void worker_loop(int index);
  void run_chunk(int index) const;

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* fn_ = nullptr;  // guarded by mutex_
  int n_ = 0;
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace easched::core
