// The individual penalty terms of the score matrix, as pure functions
// (section III-A.1 through III-A.7). Each mirrors one displayed equation of
// the paper; the ScoreModel composes them into Score(h, vm).
#pragma once

#include "core/score.hpp"

namespace easched::core {

/// III-A.1, Preq: infinity when the host cannot satisfy the VM's hardware /
/// software requirements, 0 otherwise.
double p_req(bool hw_sw_compatible);

/// III-A.2, Pres: infinity when the occupation of the host after allocating
/// the VM exceeds 100 %, 0 otherwise.
double p_res(double occupation_after);

/// III-A.3, the migration-cost term Pm:
///   Pm = 2*Cm                if Tr < Cm      (about to finish: migrating
///                                             costs more than it saves)
///   Pm = Cm^2 / (2*Tr)       if Tr >= Cm     (decays with remaining time)
/// Tr is the remaining execution time *according to the user estimate*
/// (Tu - time since submission) and may be negative for overdue jobs.
/// The paper typesets the second branch ambiguously (Cm/2 over Tr); we use
/// Cm^2/(2 Tr), which keeps the term in seconds like every other cost and
/// equals Cm/2 at the branch point Tr = Cm. Requires cm > 0.
double p_migration(double cm, double tr);

/// III-A.3, Pvirt: 0 when the VM already lives on this host; infinity while
/// an operation is in flight on the VM; the creation cost for a new VM; the
/// migration term otherwise. `pm` is p_migration(...) precomputed.
double p_virt(bool vm_in_host, bool operation_on_vm, bool vm_is_new,
              double cc, double pm);

/// III-A.3, Pconc: concurrency penalty — the summed remaining cost of the
/// operations (creations/migrations) already running on the host; 0 when
/// the VM is already there.
double p_conc(bool vm_in_host, double concurrent_ops_remaining_s);

/// III-A.4, Ppwr = Tempty(h)*Ce - O(h,vm)*Cf. `vm_count` is the number of
/// VMs the host currently hosts (the candidate VM not included).
double p_pwr(int vm_count, int th_empty, double c_empty,
             double occupation_after, double c_fill);

/// III-A.5, PSLA over the projected fulfilment in [0, 1]:
///   0 when fulfilment = 1; Csla when th_sla < fulfilment < 1;
///   infinity when fulfilment <= th_sla.
double p_sla(double fulfilment, double th_sla, double c_sla);

/// III-A.6, Pfault = ((1 - Frel) - Ftol) * Cfail. May be negative when the
/// VM tolerates more unavailability than the host exhibits (the paper keeps
/// the formula signed).
double p_fault(double reliability, double fault_tolerance, double c_fail);

}  // namespace easched::core
