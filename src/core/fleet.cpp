#include "core/fleet.hpp"

#include <algorithm>

#include "datacenter/datacenter.hpp"
#include "support/contracts.hpp"

namespace easched::core {

using datacenter::Datacenter;
using datacenter::HostId;
using datacenter::VmId;
using datacenter::VmState;

void FleetSnapshot::resize(std::size_t n) {
  placeable.assign(n, 0);
  cpu_cap.assign(n, 0.0);
  mem_cap.assign(n, 0.0);
  cpu_res.assign(n, 0.0);
  mem_res.assign(n, 0.0);
  vm_count.assign(n, 0);
  running_demand.assign(n, 0.0);
  mgmt_demand.assign(n, 0.0);
  conc_remaining_s.assign(n, 0.0);
  creation_cost.assign(n, 0.0);
  migration_cost.assign(n, 0.0);
  reliability.assign(n, 1.0);
  arch.assign(n, workload::Arch{});
  software.assign(n, 0);
}

void HostBucketIndex::reset(std::size_t num_hosts) {
  free_cpu_.assign(num_hosts, -1.0);
  free_mem_.assign(num_hosts, -1.0);
  const std::size_t nblocks =
      (num_hosts + kArgminBlock - 1) / static_cast<std::size_t>(kArgminBlock);
  block_free_cpu_.assign(nblocks, -1.0);
  block_free_mem_.assign(nblocks, -1.0);
  band_count_.assign(kBands, 0);
  band_of_host_.assign(num_hosts, -1);
}

int HostBucketIndex::band_of(double free_cpu_pct) {
  if (free_cpu_pct < 0) return -1;
  const int b = static_cast<int>(free_cpu_pct / kBandWidthPct);
  return b >= kBands ? kBands - 1 : b;
}

void HostBucketIndex::update(HostId h, const FleetSnapshot& snap) {
  free_cpu_[h] = FleetState::expected_free_cpu(snap, h);
  free_mem_[h] = FleetState::expected_free_mem(snap, h);
  const int band = band_of(free_cpu_[h]);
  if (band != band_of_host_[h]) {
    if (band_of_host_[h] >= 0) --band_count_[band_of_host_[h]];
    if (band >= 0) ++band_count_[band];
    band_of_host_[h] = static_cast<std::int8_t>(band);
  }
  rebuild_block(static_cast<int>(h) / kArgminBlock);
}

void HostBucketIndex::rebuild_block(int blk) {
  const int lo = blk * kArgminBlock;
  const int hi =
      std::min(static_cast<int>(free_cpu_.size()), lo + kArgminBlock);
  double best_cpu = -1.0;
  double best_mem = -1.0;
  for (int h = lo; h < hi; ++h) {
    best_cpu = std::max(best_cpu, free_cpu_[static_cast<std::size_t>(h)]);
    best_mem = std::max(best_mem, free_mem_[static_cast<std::size_t>(h)]);
  }
  block_free_cpu_[static_cast<std::size_t>(blk)] = best_cpu;
  block_free_mem_[static_cast<std::size_t>(blk)] = best_mem;
}

int HostBucketIndex::candidate_upper_bound(double cpu_need_pct) const {
  int band = band_of(std::max(cpu_need_pct, 0.0));
  if (band < 0) band = 0;
  int count = 0;
  for (int b = band; b < kBands; ++b) count += band_count_[b];
  return count;
}

void HostBucketIndex::debug_corrupt(HostId h, double delta) {
  free_cpu_[h] += delta;
}

double FleetState::expected_free_cpu(const FleetSnapshot& snap, HostId h) {
  if (snap.placeable[h] == 0) return -1.0;
  return snap.cpu_cap[h] * kFleetOverMargin - snap.cpu_res[h];
}

double FleetState::expected_free_mem(const FleetSnapshot& snap, HostId h) {
  if (snap.placeable[h] == 0) return -1.0;
  return snap.mem_cap[h] * kFleetOverMargin - snap.mem_res[h];
}

void FleetState::refresh(const Datacenter& dc,
                         const std::vector<VmId>& queued) {
  const sim::SimTime now = dc.simulator().now();
  const std::size_t n = dc.num_hosts();
  ++stats_.refreshes;

  dirty_scratch_.clear();
  const auto mark = [this](HostId h) {
    if (dirty_flag_[h] != 0) return;
    dirty_flag_[h] = 1;
    dirty_scratch_.push_back(h);
  };

  if (snap_.size() != n) {
    // First refresh (or a fleet-size change): full (re)initialization.
    snap_.resize(n);
    index_.reset(n);
    dirty_flag_.assign(n, 0);
    cols_.clear();
    queued_scratch_.clear();
    journal_scratch_.clear();
    dc.drain_fleet_dirty(journal_scratch_);  // flush the stale backlog
    journal_scratch_.clear();
    dirty_scratch_.reserve(n);
    for (HostId h = 0; h < n; ++h) mark(h);
  } else {
    // 1. Event-driven dirt: everything the Datacenter journalled since the
    //    last round (reallocations, power transitions, maintenance and
    //    quarantine flips, debug mutations).
    journal_scratch_.clear();
    dc.drain_fleet_dirty(journal_scratch_);
    for (const HostId h : journal_scratch_) mark(h);
    // 2. Out-of-band dirt the journal cannot see:
    //    - circuit breakers flip dc.placeable(h) from inside the
    //      resilience controller, without touching the Datacenter;
    //    - Σ max(0, op.ends - now) ages with the clock, so any host with
    //      in-flight operations (or a stale nonzero snapshot of them) must
    //      be re-read every round.
    for (HostId h = 0; h < n; ++h) {
      if (dirty_flag_[h] != 0) continue;
      if ((snap_.placeable[h] != 0) != dc.placeable(h)) {
        mark(h);
      } else if (!dc.host(h).ops.empty() || snap_.conc_remaining_s[h] != 0 ||
                 snap_.mgmt_demand[h] != 0) {
        mark(h);
      }
    }
  }

  for (const HostId h : dirty_scratch_) {
    read_host(dc, h, now, snap_);
    index_.update(h, snap_);
    dirty_flag_[h] = 0;
  }
  stats_.last_reread = dirty_scratch_.size();
  stats_.hosts_reread += dirty_scratch_.size();

  // 3. Persistent columns: drop VMs that left the queue, then invalidate
  //    the dirty hosts' cells in the survivors.
  queued_scratch_.assign(queued.begin(), queued.end());
  std::sort(queued_scratch_.begin(), queued_scratch_.end());
  for (auto it = cols_.begin(); it != cols_.end();) {
    if (!std::binary_search(queued_scratch_.begin(), queued_scratch_.end(),
                            it->first)) {
      it = cols_.erase(it);
      ++stats_.cols_dropped;
    } else {
      ++it;
    }
  }
  if (!cols_.empty()) {
    for (auto& [vm, col] : cols_) {
      (void)vm;
      for (const HostId h : dirty_scratch_) col.ok[h] = 0;
    }
  }
}

void FleetState::read_host(const Datacenter& dc, HostId h, sim::SimTime now,
                           FleetSnapshot& snap) {
  const auto& host = dc.host(h);
  snap.placeable[h] = dc.placeable(h) ? 1 : 0;
  snap.cpu_cap[h] = host.spec.cpu_capacity_pct;
  snap.mem_cap[h] = host.spec.mem_mb;
  snap.cpu_res[h] = dc.reserved_cpu_pct(h);
  snap.mem_res[h] = dc.reserved_mem_mb(h);
  snap.vm_count[h] = static_cast<int>(host.vm_count());
  snap.mgmt_demand[h] = host.mgmt_demand_pct();
  double conc = 0;
  for (const auto& op : host.ops) conc += std::max(0.0, op.ends - now);
  snap.conc_remaining_s[h] = conc;
  double running = 0;
  for (const VmId v : host.residents) {
    if (dc.vm(v).state == VmState::kRunning) {
      running += dc.vm(v).cpu_demand_pct;
    }
  }
  snap.running_demand[h] = running;
  snap.creation_cost[h] = host.spec.creation_cost_s;
  snap.migration_cost[h] = host.spec.migration_cost_s;
  snap.reliability[h] = host.spec.reliability;
  snap.arch[h] = host.spec.arch;
  snap.software[h] = host.spec.software;
}

FleetColCache* FleetState::col_cache(VmId v, std::size_t num_hosts) {
  FleetColCache& col = cols_[v];
  if (col.by_host.size() != num_hosts) {
    col.by_host.assign(num_hosts, 0.0);
    col.ok.assign(num_hosts, 0);
  }
  return &col;
}

void FleetState::debug_corrupt_snapshot(HostId h, double delta) {
  EA_EXPECTS(h < snap_.size());
  snap_.cpu_res[h] += delta;
}

void FleetState::debug_corrupt_index(HostId h, double delta) {
  EA_EXPECTS(h < index_.size());
  index_.debug_corrupt(h, delta);
}

}  // namespace easched::core
